// Command analyzer scans a workload database collected by the storage
// daemon, prints the recommendations, the Figure 6 cost diagram and
// the Figure 8 locks diagram, and optionally applies the recommended
// changes to the source database:
//
//	analyzer -dir /tmp/mydb            # report only
//	analyzer -dir /tmp/mydb -apply     # report and implement
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		dir   = flag.String("dir", "./ingresdb", "database directory (as used by ingresd/monitord)")
		apply = flag.Bool("apply", false, "apply the recommendations to the database")
	)
	flag.Parse()

	sys, err := core.Open(core.Options{Dir: *dir})
	if err != nil {
		fatal(err)
	}
	defer sys.Close()

	rep, err := sys.Analyze()
	if err != nil {
		fatal(err)
	}

	fmt.Println(rep.String())

	if locks, err := sys.Analyzer.LocksDiagram(); err == nil {
		fmt.Println(locks)
	}

	if trends, err := sys.Analyzer.Trends(); err == nil && len(trends) > 0 {
		fmt.Println("system statistics trends:")
		for _, tr := range trends {
			line := "  " + tr.String()
			// Predict when the workload DB would hit 1 GB, as a capacity
			// planning example.
			if tr.Metric == "db_bytes" {
				if when, ok := tr.PredictCrossing(1 << 30); ok {
					line += fmt.Sprintf(" — reaches 1 GB around %s", when.Format("2006-01-02 15:04"))
				}
			}
			fmt.Println(line)
		}
	}

	if *apply {
		if err := sys.Apply(rep); err != nil {
			fatal(err)
		}
		fmt.Printf("applied %d recommendations\n", len(rep.Recommendations))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyzer:", err)
	os.Exit(1)
}
