// Command ingresd is an interactive SQL shell over the monitored
// engine. It opens (or creates) a database with the integrated monitor
// and the IMA virtual tables registered, so the monitoring data is one
// SELECT away:
//
//	ingresd -dir /tmp/mydb
//	> CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(32))
//	> INSERT INTO t VALUES (1, 'hello')
//	> SELECT * FROM t
//	> SELECT query_text, frequency FROM ima_statements
//
// Meta commands: \q quits, \plan SQL explains, \whatif SQL explains
// admitting virtual indexes, \stats prints system statistics.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netsql"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
)

func main() {
	dir := flag.String("dir", "./ingresdb", "database directory")
	listen := flag.String("listen", "", "also serve remote SQL sessions on this address (e.g. 127.0.0.1:4333)")
	telemetryAddr := flag.String("telemetry.addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090); keep it on loopback or a management network")
	flag.Parse()

	sys, err := core.Open(core.Options{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingresd:", err)
		os.Exit(1)
	}
	defer sys.Close()
	if *listen != "" {
		srv := netsql.NewServer(sys.DB)
		srv.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		addr, err := srv.Listen(context.Background(), *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingresd:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("ingresd: remote SQL sessions on %s\n", addr)
	}
	if *telemetryAddr != "" {
		ts, err := telemetry.Serve(*telemetryAddr, sys.Telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingresd:", err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Printf("ingresd: telemetry on http://%s/metrics (pprof under /debug/pprof/)\n", ts.Addr())
	}
	sess := sys.Session()
	defer sess.Close()

	fmt.Printf("ingresd: database %s (monitoring active; try SELECT * FROM ima_statistics)\n", *dir)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		case strings.HasPrefix(line, `\plan `):
			explain(sess, strings.TrimPrefix(line, `\plan `), false)
			continue
		case strings.HasPrefix(line, `\whatif `):
			explain(sess, strings.TrimPrefix(line, `\whatif `), true)
			continue
		case line == `\stats`:
			st := sys.DB.Stats()
			fmt.Printf("%+v\n", st)
			continue
		}
		res, err := sess.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}

func explain(sess *engine.Session, sql string, whatIf bool) {
	plan, err := sess.Explain(sql, whatIf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(plan.String())
	fmt.Printf("estimated: cpu=%.0f io=%.0f rows=%.0f total=%.1f\n",
		plan.Est.CPU, plan.Est.IO, plan.Est.Rows, plan.Est.Total())
}

func printResult(res *engine.Result) {
	if len(res.Columns) == 0 {
		fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
		return
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			if v.T == sqltypes.Text && len(s) > 48 {
				s = s[:45] + "..."
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range res.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
	}
	fmt.Println()
	for i := range res.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	for _, row := range cells {
		for ci, s := range row {
			w := 0
			if ci < len(widths) {
				w = widths[ci]
			}
			fmt.Printf("%-*s  ", w, s)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
