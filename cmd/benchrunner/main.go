// Command benchrunner regenerates the paper's evaluation: every figure
// of §V plus the capacity and sensor-cost numbers from the text.
//
// Usage:
//
//	benchrunner [-fig 4|5|6|7|8] [-growth] [-sensorcost] [-all]
//	            [-bench-out path]
//	            [-scale N] [-complex N] [-joins N] [-selects N]
//	            [-dir path]
//
// -bench-out runs the engine bench trajectory (morsel scaling, point
// selects under updates) and writes the results as JSON to the given
// path, for machine comparison across commits; nothing else runs.
//
// Figure 6 (the cost diagram) is produced by the same analyzer run as
// Figure 7 and is printed with it.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (4, 5, 6, 7 or 8)")
		growth     = flag.Bool("growth", false, "run the workload-DB growth experiment")
		sensorcost = flag.Bool("sensorcost", false, "run the sensor-cost experiment")
		all        = flag.Bool("all", false, "run everything")
		scale      = flag.Int("scale", 8000, "NREF scale (number of proteins)")
		complexN   = flag.Int("complex", 50, "complex queries in the 50 test")
		joinsN     = flag.Int("joins", 5000, "statements in the 50k test")
		selectsN   = flag.Int("selects", 50000, "statements in the 1m test")
		dir        = flag.String("dir", "", "working directory (default: a temp dir)")
		benchOut   = flag.String("bench-out", "", "write the bench trajectory as JSON to this path and exit")
	)
	flag.Parse()

	workDir := *dir
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "repro-bench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(workDir)
	}
	cfg := experiments.Config{
		Dir:      workDir,
		Scale:    *scale,
		ComplexN: *complexN,
		JoinsN:   *joinsN,
		SelectsN: *selectsN,
	}

	if *benchOut != "" {
		rep, err := experiments.RunBenchTrajectory(cfg)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteFile(*benchOut); err != nil {
			fatal(err)
		}
		fmt.Print(rep.String())
		fmt.Printf("(written to %s)\n", *benchOut)
		return
	}

	runAll := *all || (*fig == 0 && !*growth && !*sensorcost)
	run := func(name string, f func() (fmt.Stringer, error)) {
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		res, err := f()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.String())
		fmt.Printf("(experiment wall time: %.1fs)\n\n", time.Since(start).Seconds())
	}

	if runAll || *fig == 4 {
		run("Figure 4: System Performance", func() (fmt.Stringer, error) {
			return experiments.RunFig4(cfg)
		})
	}
	if runAll || *fig == 5 {
		run("Figure 5: Share of Monitoring", func() (fmt.Stringer, error) {
			return experiments.RunFig5(cfg)
		})
	}
	if runAll || *fig == 6 || *fig == 7 {
		run("Figures 6 & 7: Cost Diagram and Analyser Results", func() (fmt.Stringer, error) {
			return experiments.RunFig7(cfg)
		})
	}
	if runAll || *fig == 8 {
		run("Figure 8: Locks Diagram", func() (fmt.Stringer, error) {
			return experiments.RunFig8(cfg)
		})
	}
	if runAll || *growth {
		run("Workload-DB growth (§V-A)", func() (fmt.Stringer, error) {
			return experiments.RunGrowth(cfg)
		})
	}
	if runAll || *sensorcost {
		run("Sensor cost (§V-A)", func() (fmt.Stringer, error) {
			return experiments.RunSensorCost(cfg)
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
