// Command monitord runs the storage daemon against an existing
// monitored database directory created with the core API or ingresd:
// it polls the monitor on the configured interval, appends the data to
// the workload database, prunes expired rows and prints fired alerts.
//
//	monitord -dir /tmp/mydb -interval 30s -retention 168h
//
// Because the engine is embedded, monitord opens the databases itself;
// it demonstrates running the collection loop as a long-lived process,
// like the paper's daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/telemetry"
)

func main() {
	var (
		dir           = flag.String("dir", "./ingresdb", "database directory (as used by ingresd)")
		interval      = flag.Duration("interval", daemon.DefaultInterval, "polling interval")
		retention     = flag.Duration("retention", daemon.DefaultRetention, "workload retention window")
		maxSess       = flag.Float64("alert-sessions", 0, "fire an alert when peak sessions reach this value (0 = off)")
		telemetryAddr = flag.String("telemetry.addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090); keep it on loopback or a management network")
	)
	flag.Parse()

	var alerts []daemon.Alert
	if *maxSess > 0 {
		alerts = append(alerts, daemon.Alert{
			Name:      "max-sessions",
			Query:     "SELECT peak_sessions FROM ima_statistics",
			Op:        ">=",
			Threshold: *maxSess,
			Action: func(e daemon.Event) {
				fmt.Printf("[alert] %s: value %.0f at %s\n", e.Alert, e.Value, e.When.Format(time.RFC3339))
			},
		})
	}
	sys, err := core.Open(core.Options{
		Dir:            *dir,
		DaemonInterval: *interval,
		Retention:      *retention,
		Alerts:         alerts,
		// Transient poll failures and broken alert rules are logged and
		// survived, not fatal: the daemon retries with backoff and
		// requeues drained entries until the workload DB recovers.
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitord:", err)
		os.Exit(1)
	}
	defer sys.Close()
	if *telemetryAddr != "" {
		ts, err := telemetry.Serve(*telemetryAddr, sys.Telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "monitord:", err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Printf("monitord: telemetry on http://%s/metrics (pprof under /debug/pprof/)\n", ts.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("monitord: polling every %s, retention %s (ctrl-c to stop)\n", *interval, *retention)
	if err := sys.RunDaemon(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "monitord:", err)
		os.Exit(1)
	}
	st := sys.Daemon.Stats()
	fmt.Printf("monitord: %d polls (%d errors, %d retries), %d rows appended, %d pruned, %d alerts (%d alert errors)\n",
		st.Polls, st.PollErrors, st.Retries, st.RowsAppended, st.RowsPruned, st.AlertsFired, st.AlertErrors)
	if st.CarryoverDepth > 0 || st.CarryoverDrops > 0 {
		fmt.Printf("monitord: %d drained entries still unflushed, %d dropped at the carryover cap\n",
			st.CarryoverDepth, st.CarryoverDrops)
	}
}
