// Package optimizer implements the cost-based query optimizer: access
// path selection (sequential scan vs. secondary index vs. primary
// B-Tree), greedy join ordering, histogram-based selectivity and a
// what-if mode that admits virtual indexes — the mechanism the paper's
// analyzer uses to let the DBMS itself decide which hypothetical
// indexes would actually be used.
package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Cost models a plan fragment's estimated resource usage in the units
// the monitor also records: tuple operations (CPU) and page I/Os.
type Cost struct {
	CPU  float64 // tuple operations
	IO   float64 // page reads/writes
	Rows float64 // output cardinality
}

// Total folds CPU and IO into one comparable number. A page I/O is
// weighted like 100 tuple operations, the classic rule of thumb the
// Ingres cost model also follows.
func (c Cost) Total() float64 { return c.IO + c.CPU/100 }

// Add combines child and own cost, keeping the receiver's cardinality.
func (c Cost) Add(other Cost) Cost {
	return Cost{CPU: c.CPU + other.CPU, IO: c.IO + other.IO, Rows: c.Rows}
}

// OutCol describes one column a plan node produces.
type OutCol struct {
	Table string // alias the column answers to ("" for computed)
	Name  string
	Type  sqltypes.Type
}

// Node is a physical plan operator.
type Node interface {
	// Out lists the columns the node produces, in order.
	Out() []OutCol
	// Est returns the cumulative estimated cost of the subtree.
	Est() Cost
}

// SeqScan reads a table front to back.
type SeqScan struct {
	Table  string
	Alias  string
	Cols   []OutCol
	Filter sqlparser.Expr // residual predicate, may be nil
	EstC   Cost
}

// IndexScan probes a secondary index (or the primary B-Tree when
// Primary is set) with an equality prefix and an optional range on the
// following key column, then fetches the base rows.
type IndexScan struct {
	Table   string
	Alias   string
	Index   string // index name; unused when Primary
	Primary bool
	Cols    []OutCol
	// Eq are the equality key expressions for a prefix of the index
	// columns (literals or params only).
	Eq []sqlparser.Expr
	// Optional range bound on the key column after the Eq prefix.
	Lo, Hi         sqlparser.Expr
	LoIncl, HiIncl bool
	Filter         sqlparser.Expr // residual predicate, may be nil
	EstC           Cost
}

// HashJoin builds a hash table on the right input and probes it with
// the left input on the equi-join keys.
type HashJoin struct {
	Left, Right Node
	// LeftKeys[i] joins with RightKeys[i].
	LeftKeys, RightKeys []sqlparser.Expr
	Residual            sqlparser.Expr // extra non-equi condition, may be nil
	EstC                Cost
}

// LoopJoin is a nested-loops join with an arbitrary condition; the
// right input is materialized and rescanned.
type LoopJoin struct {
	Left, Right Node
	Cond        sqlparser.Expr // may be nil (cross product)
	EstC        Cost
}

// IndexJoin probes an index of the right-hand table once per left row
// (index nested loops).
type IndexJoin struct {
	Left    Node
	Table   string
	Alias   string
	Index   string
	Primary bool
	Cols    []OutCol // columns of the right table
	// LeftKeys are expressions over the left input producing the probe
	// key for the index columns prefix.
	LeftKeys []sqlparser.Expr
	Residual sqlparser.Expr // may be nil
	EstC     Cost
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func     string // COUNT, SUM, AVG, MIN, MAX
	Star     bool
	Distinct bool
	Arg      sqlparser.Expr // nil for COUNT(*)
}

// Agg groups its input and computes aggregates; output columns are the
// group expressions followed by the aggregates, answering to the "#"
// qualifier.
type Agg struct {
	Input   Node
	GroupBy []sqlparser.Expr
	Aggs    []AggSpec
	Having  sqlparser.Expr // rewritten to reference "#" columns
	// ParallelSafe marks the subtree eligible for morsel-driven parallel
	// execution: the input is a leaf sequential scan (filter pushed
	// down), and every aggregate merges across partial states (no
	// DISTINCT). Joins, index scans and row-order-dependent inputs stay
	// serial.
	ParallelSafe bool
	outCols      []OutCol
	EstC         Cost
}

// SetOutCols sets the node's output layout: the group expressions
// followed by the aggregates, under the "#" qualifier. PlanSelect does
// this automatically; callers assembling plans by hand must call it.
func (n *Agg) SetOutCols(cols []OutCol) { n.outCols = cols }

// Project evaluates the select list.
type Project struct {
	Input Node
	Exprs []sqlparser.Expr
	Names []OutCol
	EstC  Cost
}

// Sort orders its input. Keys reference the input's output columns.
type Sort struct {
	Input Node
	Keys  []SortKey
	EstC  Cost
}

// SortKey is one sort criterion: a column offset in the input row.
type SortKey struct {
	Col  int
	Desc bool
}

// Strip drops hidden trailing columns (added for ORDER BY expressions
// that are not in the select list) after sorting.
type Strip struct {
	Input Node
	Keep  int
	EstC  Cost
}

// Distinct removes duplicate rows.
type Distinct struct {
	Input Node
	EstC  Cost
}

// Limit truncates its input.
type Limit struct {
	Input  Node
	N      int64
	Offset int64
	EstC   Cost
}

func (n *SeqScan) Out() []OutCol   { return n.Cols }
func (n *IndexScan) Out() []OutCol { return n.Cols }
func (n *HashJoin) Out() []OutCol {
	return append(append([]OutCol{}, n.Left.Out()...), n.Right.Out()...)
}
func (n *LoopJoin) Out() []OutCol {
	return append(append([]OutCol{}, n.Left.Out()...), n.Right.Out()...)
}
func (n *IndexJoin) Out() []OutCol { return append(append([]OutCol{}, n.Left.Out()...), n.Cols...) }
func (n *Agg) Out() []OutCol       { return n.outCols }
func (n *Project) Out() []OutCol   { return n.Names }
func (n *Strip) Out() []OutCol     { return n.Input.Out()[:n.Keep] }
func (n *Sort) Out() []OutCol      { return n.Input.Out() }
func (n *Distinct) Out() []OutCol  { return n.Input.Out() }
func (n *Limit) Out() []OutCol     { return n.Input.Out() }

func (n *SeqScan) Est() Cost   { return n.EstC }
func (n *IndexScan) Est() Cost { return n.EstC }
func (n *HashJoin) Est() Cost  { return n.EstC }
func (n *LoopJoin) Est() Cost  { return n.EstC }
func (n *IndexJoin) Est() Cost { return n.EstC }
func (n *Agg) Est() Cost       { return n.EstC }
func (n *Project) Est() Cost   { return n.EstC }
func (n *Strip) Est() Cost     { return n.EstC }
func (n *Sort) Est() Cost      { return n.EstC }
func (n *Distinct) Est() Cost  { return n.EstC }
func (n *Limit) Est() Cost     { return n.EstC }

// Plan is a complete optimized statement.
type Plan struct {
	Root Node
	Est  Cost
	// UsedIndexes lists index names the plan probes, with primary
	// structures reported as "<table>.primary" — the monitor's
	// "used indexes" sensor reads this.
	UsedIndexes []string
	// Attributes referenced by the statement, as "table.column".
	Attributes []string
}

// String renders the plan tree for EXPLAIN-style debugging.
func (p *Plan) String() string {
	var b strings.Builder
	var walk func(n Node, depth int)
	indent := func(d int) {
		for i := 0; i < d; i++ {
			b.WriteString("  ")
		}
	}
	walk = func(n Node, depth int) {
		indent(depth)
		switch x := n.(type) {
		case *SeqScan:
			fmt.Fprintf(&b, "SeqScan %s (as %s) rows=%.0f io=%.0f\n", x.Table, x.Alias, x.EstC.Rows, x.EstC.IO)
		case *IndexScan:
			name := x.Index
			if x.Primary {
				name = x.Table + ".primary"
			}
			fmt.Fprintf(&b, "IndexScan %s via %s rows=%.0f io=%.0f\n", x.Table, name, x.EstC.Rows, x.EstC.IO)
		case *HashJoin:
			fmt.Fprintf(&b, "HashJoin rows=%.0f\n", x.EstC.Rows)
			walk(x.Left, depth+1)
			walk(x.Right, depth+1)
		case *LoopJoin:
			fmt.Fprintf(&b, "LoopJoin rows=%.0f\n", x.EstC.Rows)
			walk(x.Left, depth+1)
			walk(x.Right, depth+1)
		case *IndexJoin:
			name := x.Index
			if x.Primary {
				name = x.Table + ".primary"
			}
			fmt.Fprintf(&b, "IndexJoin %s via %s rows=%.0f\n", x.Table, name, x.EstC.Rows)
			walk(x.Left, depth+1)
		case *Agg:
			fmt.Fprintf(&b, "Agg groups=%d aggs=%d\n", len(x.GroupBy), len(x.Aggs))
			walk(x.Input, depth+1)
		case *Project:
			fmt.Fprintf(&b, "Project cols=%d\n", len(x.Exprs))
			walk(x.Input, depth+1)
		case *Sort:
			fmt.Fprintf(&b, "Sort keys=%d\n", len(x.Keys))
			walk(x.Input, depth+1)
		case *Strip:
			fmt.Fprintf(&b, "Strip keep=%d\n", x.Keep)
			walk(x.Input, depth+1)
		case *Distinct:
			b.WriteString("Distinct\n")
			walk(x.Input, depth+1)
		case *Limit:
			fmt.Fprintf(&b, "Limit %d offset %d\n", x.N, x.Offset)
			walk(x.Input, depth+1)
		default:
			fmt.Fprintf(&b, "%T\n", n)
		}
	}
	walk(p.Root, 0)
	return b.String()
}

// TableStats is what the optimizer needs to know about a table's
// physical state at plan time.
type TableStats struct {
	Rows        int64
	Pages       uint32
	BTreeHeight int // primary structure height; 0 for heap tables
}

// IndexStats describes an index's physical state. Virtual indexes get
// estimates derived from the base table.
type IndexStats struct {
	Pages  uint32
	Height int
}

// CatalogView is the metadata surface the optimizer plans against. The
// engine implements it over the live catalog and storage; tests may
// fake it.
type CatalogView interface {
	Table(name string) *catalog.Table
	TableIndexes(name string, withVirtual bool) []*catalog.Index
	Histogram(table, col string) *catalog.Histogram
	TableStats(name string) (TableStats, bool)
	IndexStats(name string) (IndexStats, bool)
}
