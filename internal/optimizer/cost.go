package optimizer

import "math"

// Cost model constants. Units follow the monitor: CPU in tuple
// operations, IO in page accesses. One page I/O weighs like 100 tuple
// operations (see Cost.Total).
const (
	// entriesPerLeaf approximates how many index entries fit on one
	// B-Tree leaf page.
	entriesPerLeaf = 120
	// defaultEqSelectivity is assumed for equality predicates on
	// columns without statistics.
	defaultEqSelectivity = 0.01
	// defaultRangeSelectivity is assumed for range predicates without
	// statistics.
	defaultRangeSelectivity = 0.10
	// defaultLikeSelectivity is assumed for LIKE predicates.
	defaultLikeSelectivity = 0.05
	// defaultJoinDistinctFraction estimates the distinct count of a
	// join column without statistics as rows * fraction.
	defaultJoinDistinctFraction = 0.1
)

// seqScanCost prices a full scan with a filter of the given
// selectivity.
func seqScanCost(stats TableStats, sel float64) Cost {
	rows := float64(stats.Rows)
	out := math.Max(1, rows*sel)
	return Cost{
		CPU:  rows,
		IO:   float64(stats.Pages),
		Rows: out,
	}
}

// indexScanCost prices an index probe returning matchRows base rows.
// It covers both secondary indexes and the primary B-Tree: descend the
// tree, walk the matching leaf range, fetch each base row.
func indexScanCost(stats TableStats, ix IndexStats, matchRows float64) Cost {
	if matchRows < 1 {
		matchRows = 1
	}
	height := float64(ix.Height)
	if height <= 0 {
		height = btreeHeightEstimate(stats.Rows)
	}
	leafPages := math.Ceil(matchRows / entriesPerLeaf)
	// Base-row fetches are random but cannot exceed the table size.
	fetch := math.Min(matchRows, float64(stats.Pages))
	return Cost{
		CPU:  matchRows * 3,
		IO:   height + leafPages + fetch,
		Rows: matchRows,
	}
}

// btreeHeightEstimate estimates tree height from entry count.
func btreeHeightEstimate(rows int64) float64 {
	if rows <= entriesPerLeaf {
		return 1
	}
	return 1 + math.Ceil(math.Log(float64(rows)/entriesPerLeaf)/math.Log(entriesPerLeaf))
}

// estimateIndexStats derives physical stats for a virtual index (or a
// real one the engine cannot size) from the base table.
func estimateIndexStats(stats TableStats) IndexStats {
	pages := uint32(math.Ceil(float64(stats.Rows) / entriesPerLeaf))
	if pages < 2 {
		pages = 2
	}
	return IndexStats{Pages: pages, Height: int(btreeHeightEstimate(stats.Rows))}
}

// hashJoinCost prices building on the right input and probing with the
// left.
func hashJoinCost(left, right Cost, outRows float64) Cost {
	own := Cost{
		CPU:  left.Rows + right.Rows*1.5 + outRows,
		Rows: math.Max(1, outRows),
	}
	return own.Add(left).Add(right)
}

// loopJoinCost prices a nested-loops join with the right side
// materialized in memory.
func loopJoinCost(left, right Cost, outRows float64) Cost {
	own := Cost{
		CPU:  left.Rows*math.Max(1, right.Rows) + outRows,
		Rows: math.Max(1, outRows),
	}
	return own.Add(left).Add(right)
}

// indexJoinCost prices probing an index of the inner table once per
// outer row, with perProbe matching rows each.
func indexJoinCost(left Cost, inner TableStats, ix IndexStats, perProbe, outRows float64) Cost {
	if perProbe < 0.1 {
		perProbe = 0.1
	}
	height := float64(ix.Height)
	if height <= 0 {
		height = btreeHeightEstimate(inner.Rows)
	}
	own := Cost{
		CPU:  left.Rows * (3 + perProbe*2),
		IO:   left.Rows * (1 + perProbe),
		Rows: math.Max(1, outRows),
	}
	return own.Add(left)
}

func sortCost(in Cost) Cost {
	n := math.Max(2, in.Rows)
	own := Cost{CPU: n * math.Log2(n), Rows: in.Rows}
	return own.Add(in)
}

func aggCost(in Cost, groups int) Cost {
	outRows := 1.0
	if groups > 0 {
		outRows = math.Max(1, in.Rows*0.1)
	}
	own := Cost{CPU: in.Rows, Rows: outRows}
	return own.Add(in)
}

func distinctCost(in Cost) Cost {
	own := Cost{CPU: in.Rows, Rows: math.Max(1, in.Rows*0.9)}
	return own.Add(in)
}

func limitCost(in Cost, n int64) Cost {
	rows := in.Rows
	if n >= 0 && float64(n) < rows {
		rows = float64(n)
	}
	return Cost{CPU: in.CPU, IO: in.IO, Rows: rows}
}

func projectCost(in Cost) Cost {
	own := Cost{CPU: in.Rows, Rows: in.Rows}
	return own.Add(in)
}
