package optimizer

import (
	"fmt"
	"math"
	"reflect"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Options controls a planning run.
type Options struct {
	// WithVirtualIndexes admits catalog-only virtual indexes as access
	// paths — the what-if mode used by the analyzer. Plans produced
	// this way must not be executed.
	WithVirtualIndexes bool
	// Params supplies values for Param nodes so selectivity can be
	// estimated from the actual constants.
	Params []sqltypes.Value
}

// PlanSelect builds a physical plan for a SELECT statement.
func PlanSelect(st *sqlparser.SelectStmt, cat CatalogView, opt Options) (*Plan, error) {
	p := &planner{cat: cat, opt: opt, st: st}
	return p.plan()
}

type rel struct {
	idx   int
	name  string // table name as in the catalog
	alias string // lower-case alias (or name)
	meta  *catalog.Table
	stats TableStats

	preds  []sqlparser.Expr // single-table conjuncts
	sel    float64          // combined selectivity of preds
	access Node             // chosen access path
}

type joinPred struct {
	a, b         int
	aCol, bCol   sqlparser.ColumnRef // qualified with the rel alias
	raw          sqlparser.Expr
	aName, bName string // column names
}

type planner struct {
	cat  CatalogView
	opt  Options
	st   *sqlparser.SelectStmt
	rels []*rel

	joinPreds []joinPred
	residuals []residual

	usedIndexes []string
	attributes  map[string]bool

	agg       *Agg
	aggCalls  []sqlparser.FuncCall
	origItems []sqlparser.SelectItem
	project   *Project
}

type residual struct {
	rels map[int]bool
	e    sqlparser.Expr
	done bool
}

func (p *planner) plan() (*Plan, error) {
	p.attributes = map[string]bool{}
	if err := p.buildRels(); err != nil {
		return nil, err
	}
	if err := p.classifyPredicates(); err != nil {
		return nil, err
	}
	for _, r := range p.rels {
		p.chooseAccessPath(r)
	}
	root, err := p.joinOrder()
	if err != nil {
		return nil, err
	}
	root, err = p.applyAggregation(root)
	if err != nil {
		return nil, err
	}
	root, err = p.applyProjection(root)
	if err != nil {
		return nil, err
	}
	if p.st.Distinct {
		root = &Distinct{Input: root, EstC: distinctCost(root.Est())}
	}
	root, err = p.applyOrderBy(root)
	if err != nil {
		return nil, err
	}
	if p.st.Limit >= 0 || p.st.Offset > 0 {
		root = &Limit{Input: root, N: p.st.Limit, Offset: p.st.Offset, EstC: limitCost(root.Est(), p.st.Limit)}
	}
	plan := &Plan{Root: root, Est: root.Est(), UsedIndexes: p.usedIndexes}
	for a := range p.attributes {
		plan.Attributes = append(plan.Attributes, a)
	}
	return plan, nil
}

func (p *planner) buildRels() error {
	refs := append([]sqlparser.TableRef{}, p.st.From...)
	for _, j := range p.st.Joins {
		refs = append(refs, j.Table)
	}
	seen := map[string]bool{}
	for i, tr := range refs {
		meta := p.cat.Table(tr.Name)
		if meta == nil {
			return fmt.Errorf("optimizer: unknown table %q", tr.Name)
		}
		alias := strings.ToLower(tr.AliasOrName())
		if seen[alias] {
			return fmt.Errorf("optimizer: duplicate table alias %q", alias)
		}
		seen[alias] = true
		stats, ok := p.cat.TableStats(tr.Name)
		if !ok {
			stats = TableStats{Rows: meta.Rows, Pages: meta.MainPages}
		}
		if stats.Rows <= 0 {
			stats.Rows = 1
		}
		if stats.Pages == 0 {
			stats.Pages = 1
		}
		p.rels = append(p.rels, &rel{
			idx: i, name: meta.Name, alias: alias, meta: meta, stats: stats, sel: 1,
		})
	}
	return nil
}

// resolveColumn finds the rel and canonical column name for a
// reference.
func (p *planner) resolveColumn(c sqlparser.ColumnRef) (*rel, string, sqltypes.Type, error) {
	var found *rel
	var name string
	var typ sqltypes.Type
	for _, r := range p.rels {
		if c.Table != "" && !strings.EqualFold(c.Table, r.alias) {
			continue
		}
		idx := r.meta.Schema.ColIndex(c.Name)
		if idx < 0 {
			continue
		}
		if found != nil {
			return nil, "", 0, fmt.Errorf("optimizer: ambiguous column %q", c.Name)
		}
		found = r
		name = r.meta.Schema.Columns[idx].Name
		typ = r.meta.Schema.Columns[idx].Type
	}
	if found == nil {
		if c.Table != "" {
			return nil, "", 0, fmt.Errorf("optimizer: unknown column %s.%s", c.Table, c.Name)
		}
		return nil, "", 0, fmt.Errorf("optimizer: unknown column %q", c.Name)
	}
	return found, name, typ, nil
}

// exprRels returns the set of rel indices an expression references and
// records the attributes it touches.
func (p *planner) exprRels(e sqlparser.Expr) (map[int]bool, error) {
	out := map[int]bool{}
	var err error
	sqlparser.WalkExprs(e, func(x sqlparser.Expr) {
		if err != nil {
			return
		}
		if c, ok := x.(sqlparser.ColumnRef); ok {
			r, name, _, rerr := p.resolveColumn(c)
			if rerr != nil {
				err = rerr
				return
			}
			out[r.idx] = true
			p.attributes[strings.ToLower(r.name)+"."+strings.ToLower(name)] = true
		}
	})
	return out, err
}

func splitConjuncts(e sqlparser.Expr, out []sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return out
	}
	if b, ok := e.(sqlparser.BinaryExpr); ok && b.Op == "AND" {
		out = splitConjuncts(b.Left, out)
		return splitConjuncts(b.Right, out)
	}
	return append(out, e)
}

func (p *planner) classifyPredicates() error {
	var conjuncts []sqlparser.Expr
	conjuncts = splitConjuncts(p.st.Where, conjuncts)
	for _, j := range p.st.Joins {
		conjuncts = splitConjuncts(j.Cond, conjuncts)
	}
	for _, c := range conjuncts {
		rels, err := p.exprRels(c)
		if err != nil {
			return err
		}
		switch len(rels) {
		case 0:
			// Constant predicate: attach to the first rel as a filter.
			if len(p.rels) > 0 {
				p.rels[0].preds = append(p.rels[0].preds, c)
			}
		case 1:
			for idx := range rels {
				p.rels[idx].preds = append(p.rels[idx].preds, c)
			}
		case 2:
			if jp, ok := p.asEquiJoin(c, rels); ok {
				p.joinPreds = append(p.joinPreds, jp)
				continue
			}
			p.residuals = append(p.residuals, residual{rels: rels, e: c})
		default:
			p.residuals = append(p.residuals, residual{rels: rels, e: c})
		}
	}
	return nil
}

// asEquiJoin recognizes "a.x = b.y" between two different rels.
func (p *planner) asEquiJoin(e sqlparser.Expr, rels map[int]bool) (joinPred, bool) {
	b, ok := e.(sqlparser.BinaryExpr)
	if !ok || b.Op != "=" {
		return joinPred{}, false
	}
	lc, lok := b.Left.(sqlparser.ColumnRef)
	rc, rok := b.Right.(sqlparser.ColumnRef)
	if !lok || !rok {
		return joinPred{}, false
	}
	lr, lname, _, err1 := p.resolveColumn(lc)
	rr, rname, _, err2 := p.resolveColumn(rc)
	if err1 != nil || err2 != nil || lr.idx == rr.idx {
		return joinPred{}, false
	}
	return joinPred{
		a: lr.idx, b: rr.idx,
		aCol:  sqlparser.ColumnRef{Table: lr.alias, Name: lname},
		bCol:  sqlparser.ColumnRef{Table: rr.alias, Name: rname},
		aName: lname, bName: rname,
		raw: e,
	}, true
}

// sarg is a sargable single-table predicate usable for index probes and
// selectivity estimation.
type sarg struct {
	col  string // canonical column name
	op   string // "=", "<", "<=", ">", ">=", "between", "like", "in"
	val  sqlparser.Expr
	val2 sqlparser.Expr // BETWEEN upper bound
	n    int            // IN list length
}

// extractSargs pulls sargable predicates for rel r out of its
// conjuncts.
func (p *planner) extractSargs(r *rel) []sarg {
	var out []sarg
	for _, c := range r.preds {
		switch x := c.(type) {
		case sqlparser.BinaryExpr:
			if x.Op == "AND" || x.Op == "OR" {
				continue
			}
			lc, lok := x.Left.(sqlparser.ColumnRef)
			rc, rok := x.Right.(sqlparser.ColumnRef)
			switch {
			case lok && !rok && p.isConst(x.Right):
				if name, ok := p.colOf(r, lc); ok {
					out = append(out, sarg{col: name, op: x.Op, val: x.Right})
				}
			case rok && !lok && p.isConst(x.Left):
				if name, ok := p.colOf(r, rc); ok {
					out = append(out, sarg{col: name, op: flipOp(x.Op), val: x.Left})
				}
			}
		case sqlparser.BetweenExpr:
			if x.Not {
				continue
			}
			if lc, ok := x.Expr.(sqlparser.ColumnRef); ok && p.isConst(x.Lo) && p.isConst(x.Hi) {
				if name, ok := p.colOf(r, lc); ok {
					out = append(out, sarg{col: name, op: "between", val: x.Lo, val2: x.Hi})
				}
			}
		case sqlparser.InExpr:
			if x.Not {
				continue
			}
			lc, ok := x.Expr.(sqlparser.ColumnRef)
			if !ok {
				continue
			}
			constList := true
			for _, it := range x.List {
				if !p.isConst(it) {
					constList = false
					break
				}
			}
			if constList {
				if name, ok := p.colOf(r, lc); ok {
					out = append(out, sarg{col: name, op: "in", n: len(x.List)})
				}
			}
		}
	}
	return out
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// colOf resolves a column reference against a specific rel.
func (p *planner) colOf(r *rel, c sqlparser.ColumnRef) (string, bool) {
	if c.Table != "" && !strings.EqualFold(c.Table, r.alias) {
		return "", false
	}
	idx := r.meta.Schema.ColIndex(c.Name)
	if idx < 0 {
		return "", false
	}
	return r.meta.Schema.Columns[idx].Name, true
}

// isConst reports whether an expression contains no column references.
func (p *planner) isConst(e sqlparser.Expr) bool {
	isConst := true
	sqlparser.WalkExprs(e, func(x sqlparser.Expr) {
		if _, ok := x.(sqlparser.ColumnRef); ok {
			isConst = false
		}
	})
	return isConst
}

// constValue evaluates a constant expression with the bound params.
func (p *planner) constValue(e sqlparser.Expr) (sqltypes.Value, bool) {
	c, err := expr.Bind(e, emptyResolver{})
	if err != nil {
		return sqltypes.Value{}, false
	}
	v, err := c.Eval(&expr.Env{Params: p.opt.Params})
	if err != nil {
		return sqltypes.Value{}, false
	}
	return v, true
}

type emptyResolver struct{}

func (emptyResolver) Resolve(table, column string) (int, sqltypes.Type, error) {
	return 0, 0, fmt.Errorf("optimizer: column %s.%s in constant context", table, column)
}

// sargSelectivity estimates one sarg's selectivity.
func (p *planner) sargSelectivity(r *rel, s sarg) float64 {
	h := p.cat.Histogram(r.name, s.col)
	rows := float64(r.stats.Rows)
	switch s.op {
	case "=":
		if v, ok := p.constValue(s.val); ok && h != nil {
			return clampSel(h.SelectivityEq(v), rows)
		}
		if p.isUniqueKey(r, s.col) {
			return clampSel(1/rows, rows)
		}
		return defaultEqSelectivity
	case "<", "<=":
		if v, ok := p.constValue(s.val); ok && h != nil {
			return clampSel(h.SelectivityRange(sqltypes.Value{}, false, v, true), rows)
		}
		return defaultRangeSelectivity
	case ">", ">=":
		if v, ok := p.constValue(s.val); ok && h != nil {
			return clampSel(h.SelectivityRange(v, true, sqltypes.Value{}, false), rows)
		}
		return defaultRangeSelectivity
	case "between":
		lo, ok1 := p.constValue(s.val)
		hi, ok2 := p.constValue(s.val2)
		if ok1 && ok2 && h != nil {
			return clampSel(h.SelectivityRange(lo, true, hi, true), rows)
		}
		return defaultRangeSelectivity
	case "like":
		return defaultLikeSelectivity
	case "in":
		per := defaultEqSelectivity
		if p.isUniqueKey(r, s.col) {
			per = 1 / rows
		}
		return clampSel(per*float64(s.n), rows)
	}
	return 1
}

func clampSel(sel, rows float64) float64 {
	lo := 1 / math.Max(rows, 1)
	if sel < lo {
		return lo
	}
	if sel > 1 {
		return 1
	}
	return sel
}

// isUniqueKey reports whether col alone is the table's primary key or
// has a single-column unique index.
func (p *planner) isUniqueKey(r *rel, col string) bool {
	if len(r.meta.PrimaryKey) == 1 && strings.EqualFold(r.meta.PrimaryKey[0], col) {
		return true
	}
	for _, ix := range p.cat.TableIndexes(r.name, false) {
		if ix.Unique && len(ix.Columns) == 1 && strings.EqualFold(ix.Columns[0], col) {
			return true
		}
	}
	return false
}

// chooseAccessPath picks the cheapest access path for a rel and stores
// it in r.access.
func (p *planner) chooseAccessPath(r *rel) {
	sargs := p.extractSargs(r)
	// Count LIKE predicates for selectivity (not sargable for probes).
	for _, c := range r.preds {
		if b, ok := c.(sqlparser.BinaryExpr); ok && b.Op == "LIKE" {
			sargs = append(sargs, sarg{op: "like"})
		}
	}
	sel := 1.0
	for _, s := range sargs {
		sel *= p.sargSelectivity(r, s)
	}
	sel = clampSel(sel, float64(r.stats.Rows))
	if len(r.preds) == 0 {
		sel = 1
	}
	r.sel = sel

	filter := andAll(r.preds)
	cols := outColsFor(r)
	totalRows := math.Max(1, float64(r.stats.Rows)*sel)

	best := Node(&SeqScan{
		Table: r.name, Alias: r.alias, Cols: cols, Filter: filter,
		EstC: func() Cost {
			c := seqScanCost(r.stats, sel)
			c.Rows = totalRows
			return c
		}(),
	})
	bestName := ""

	consider := func(keyCols []string, ixName string, primary bool, ixStats IndexStats) {
		eq, lo, hi, loIncl, hiIncl, matchSel := p.matchKey(r, sargs, keyCols)
		if len(eq) == 0 && lo == nil && hi == nil {
			return
		}
		matchRows := math.Max(1, float64(r.stats.Rows)*matchSel)
		c := indexScanCost(r.stats, ixStats, matchRows)
		c.Rows = totalRows
		if c.Total() < best.Est().Total() {
			best = &IndexScan{
				Table: r.name, Alias: r.alias, Index: ixName, Primary: primary,
				Cols: cols, Eq: eq, Lo: lo, Hi: hi, LoIncl: loIncl, HiIncl: hiIncl,
				Filter: filter, EstC: c,
			}
			if primary {
				bestName = strings.ToLower(r.name) + ".primary"
			} else {
				bestName = ixName
			}
		}
	}

	if kc := storageKeyOf(r.meta); r.meta.Structure == catalog.BTree && len(kc) > 0 {
		consider(kc, "", true, IndexStats{Height: r.stats.BTreeHeight})
	}
	for _, ix := range p.cat.TableIndexes(r.name, p.opt.WithVirtualIndexes) {
		st, ok := p.cat.IndexStats(ix.Name)
		if !ok {
			st = estimateIndexStats(r.stats)
		}
		consider(ix.Columns, ix.Name, false, st)
	}

	if bestName != "" {
		p.usedIndexes = append(p.usedIndexes, bestName)
	}
	r.access = best
}

// matchKey matches sargs against an index key column list: the longest
// equality prefix plus an optional range on the next column. It
// returns the probe expressions and the combined selectivity of the
// matched sargs.
func (p *planner) matchKey(r *rel, sargs []sarg, keyCols []string) (eq []sqlparser.Expr, lo, hi sqlparser.Expr, loIncl, hiIncl bool, matchSel float64) {
	matchSel = 1.0
	for _, kc := range keyCols {
		var eqSarg *sarg
		for i := range sargs {
			if sargs[i].op == "=" && strings.EqualFold(sargs[i].col, kc) {
				eqSarg = &sargs[i]
				break
			}
		}
		if eqSarg == nil {
			// Range on this column ends the prefix.
			for i := range sargs {
				s := &sargs[i]
				if !strings.EqualFold(s.col, kc) {
					continue
				}
				switch s.op {
				case "<":
					hi, hiIncl = s.val, false
				case "<=":
					hi, hiIncl = s.val, true
				case ">":
					lo, loIncl = s.val, false
				case ">=":
					lo, loIncl = s.val, true
				case "between":
					lo, loIncl = s.val, true
					hi, hiIncl = s.val2, true
				default:
					continue
				}
				matchSel *= p.sargSelectivity(r, *s)
			}
			break
		}
		eq = append(eq, eqSarg.val)
		matchSel *= p.sargSelectivity(r, *eqSarg)
	}
	return eq, lo, hi, loIncl, hiIncl, matchSel
}

func andAll(preds []sqlparser.Expr) sqlparser.Expr {
	var out sqlparser.Expr
	for _, e := range preds {
		if out == nil {
			out = e
			continue
		}
		out = sqlparser.BinaryExpr{Op: "AND", Left: out, Right: e}
	}
	return out
}

func outColsFor(r *rel) []OutCol {
	cols := make([]OutCol, r.meta.Schema.Len())
	for i, c := range r.meta.Schema.Columns {
		cols[i] = OutCol{Table: r.alias, Name: c.Name, Type: c.Type}
	}
	return cols
}

// joinDistinct estimates the distinct count of a join column.
func (p *planner) joinDistinct(r *rel, col string) float64 {
	if h := p.cat.Histogram(r.name, col); h != nil && h.Distinct > 0 {
		return float64(h.Distinct)
	}
	if p.isUniqueKey(r, col) {
		return float64(r.stats.Rows)
	}
	return math.Max(10, float64(r.stats.Rows)*defaultJoinDistinctFraction)
}

// joinOrder builds a left-deep join tree greedily.
func (p *planner) joinOrder() (Node, error) {
	if len(p.rels) == 0 {
		return nil, fmt.Errorf("optimizer: no tables")
	}
	remaining := map[int]*rel{}
	for _, r := range p.rels {
		remaining[r.idx] = r
	}

	// Start with the relation with the fewest estimated output rows.
	var cur *rel
	for _, r := range remaining {
		if cur == nil || r.access.Est().Rows < cur.access.Est().Rows ||
			(r.access.Est().Rows == cur.access.Est().Rows && r.idx < cur.idx) {
			cur = r
		}
	}
	tree := cur.access
	inTree := map[int]bool{cur.idx: true}
	delete(remaining, cur.idx)

	for len(remaining) > 0 {
		type candidate struct {
			r     *rel
			node  Node
			preds []joinPred
		}
		var best *candidate
		for _, r := range remaining {
			preds := p.connecting(inTree, r.idx)
			node := p.buildJoin(tree, r, preds)
			if best == nil || node.Est().Total() < best.node.Est().Total() {
				best = &candidate{r: r, node: node, preds: preds}
			}
		}
		tree = best.node
		inTree[best.r.idx] = true
		delete(remaining, best.r.idx)
		tree = p.attachResiduals(tree, inTree)
	}
	return tree, nil
}

// connecting returns join predicates linking the tree to rel idx.
func (p *planner) connecting(inTree map[int]bool, idx int) []joinPred {
	var out []joinPred
	for _, jp := range p.joinPreds {
		if inTree[jp.a] && jp.b == idx {
			out = append(out, jp)
		} else if inTree[jp.b] && jp.a == idx {
			// Normalize: a-side in tree.
			out = append(out, joinPred{
				a: jp.b, b: jp.a, aCol: jp.bCol, bCol: jp.aCol,
				aName: jp.bName, bName: jp.aName, raw: jp.raw,
			})
		}
	}
	return out
}

// buildJoin picks the cheapest join method to combine tree with rel r.
func (p *planner) buildJoin(tree Node, r *rel, preds []joinPred) Node {
	treeCost := tree.Est()
	rCost := r.access.Est()

	if len(preds) == 0 {
		out := treeCost.Rows * rCost.Rows
		return &LoopJoin{Left: tree, Right: r.access, Cond: nil,
			EstC: loopJoinCost(treeCost, rCost, out)}
	}

	// Cardinality: apply each equi predicate's 1/max(distinct).
	outRows := treeCost.Rows * rCost.Rows
	for _, jp := range preds {
		d := p.joinDistinct(r, jp.bName)
		// The tree side's distinct is unknown after joins; use the
		// base rel's if the column came straight from one.
		if ar := p.relByIdx(jp.a); ar != nil {
			d = math.Max(d, p.joinDistinct(ar, jp.aName))
		}
		outRows /= math.Max(1, d)
	}
	outRows = math.Max(1, outRows)

	leftKeys := make([]sqlparser.Expr, len(preds))
	rightKeys := make([]sqlparser.Expr, len(preds))
	for i, jp := range preds {
		leftKeys[i] = jp.aCol
		rightKeys[i] = jp.bCol
	}
	var best Node = &HashJoin{
		Left: tree, Right: r.access, LeftKeys: leftKeys, RightKeys: rightKeys,
		EstC: hashJoinCost(treeCost, rCost, outRows),
	}

	// Index nested loops: an index on r whose prefix is covered by the
	// join columns.
	rCols := map[string]sqlparser.Expr{}
	for _, jp := range preds {
		rCols[strings.ToLower(jp.bName)] = jp.aCol
	}
	residualFilter := andAll(r.preds)
	perProbeBase := float64(r.stats.Rows)

	tryIndexJoin := func(keyCols []string, ixName string, primary bool, ixStats IndexStats) {
		var probe []sqlparser.Expr
		d := 1.0
		for _, kc := range keyCols {
			e, ok := rCols[strings.ToLower(kc)]
			if !ok {
				break
			}
			probe = append(probe, e)
			d *= p.joinDistinct(r, kc)
		}
		if len(probe) == 0 {
			return
		}
		perProbe := perProbeBase / math.Max(1, d)
		cost := indexJoinCost(treeCost, r.stats, ixStats, perProbe, outRows*r.sel)
		if cost.Total() < best.Est().Total() {
			best = &IndexJoin{
				Left: tree, Table: r.name, Alias: r.alias,
				Index: ixName, Primary: primary, Cols: outColsFor(r),
				LeftKeys: probe, Residual: residualFilter,
				EstC: cost,
			}
		}
	}

	if kc := storageKeyOf(r.meta); r.meta.Structure == catalog.BTree && len(kc) > 0 {
		tryIndexJoin(kc, "", true, IndexStats{Height: r.stats.BTreeHeight})
	}
	for _, ix := range p.cat.TableIndexes(r.name, p.opt.WithVirtualIndexes) {
		st, ok := p.cat.IndexStats(ix.Name)
		if !ok {
			st = estimateIndexStats(r.stats)
		}
		tryIndexJoin(ix.Columns, ix.Name, false, st)
	}

	if ij, ok := best.(*IndexJoin); ok {
		if ij.Primary {
			p.usedIndexes = append(p.usedIndexes, strings.ToLower(ij.Table)+".primary")
		} else {
			p.usedIndexes = append(p.usedIndexes, ij.Index)
		}
		// Remaining equi predicates not used for the probe become part
		// of the residual.
		var extras []sqlparser.Expr
		for _, jp := range preds {
			used := false
			for _, pk := range ij.LeftKeys {
				if reflect.DeepEqual(pk, jp.aCol) {
					used = true
					break
				}
			}
			if !used {
				extras = append(extras, jp.raw)
			}
		}
		if len(extras) > 0 {
			ij.Residual = andAll(append([]sqlparser.Expr{ij.Residual}, extras...))
			if ij.Residual == nil {
				ij.Residual = andAll(extras)
			}
		}
	}
	return best
}

func (p *planner) relByIdx(idx int) *rel {
	for _, r := range p.rels {
		if r.idx == idx {
			return r
		}
	}
	return nil
}

// attachResiduals ANDs any multi-table residual whose rels are all in
// the tree onto the top join node.
func (p *planner) attachResiduals(tree Node, inTree map[int]bool) Node {
	var ready []sqlparser.Expr
	for i := range p.residuals {
		res := &p.residuals[i]
		if res.done {
			continue
		}
		ok := true
		for idx := range res.rels {
			if !inTree[idx] {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, res.e)
			res.done = true
		}
	}
	if len(ready) == 0 {
		return tree
	}
	cond := andAll(ready)
	switch j := tree.(type) {
	case *HashJoin:
		j.Residual = andTwo(j.Residual, cond)
		return j
	case *LoopJoin:
		j.Cond = andTwo(j.Cond, cond)
		return j
	case *IndexJoin:
		j.Residual = andTwo(j.Residual, cond)
		return j
	default:
		// Single-table statements never produce multi-rel residuals.
		return tree
	}
}

func andTwo(a, b sqlparser.Expr) sqlparser.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return sqlparser.BinaryExpr{Op: "AND", Left: a, Right: b}
}

// storageKeyOf returns the BTREE storage structure's key columns: the
// explicit storage key if set, else the primary key.
func storageKeyOf(meta *catalog.Table) []string {
	if len(meta.StorageKey) > 0 {
		return meta.StorageKey
	}
	return meta.PrimaryKey
}
