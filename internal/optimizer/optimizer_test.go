package optimizer

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// fakeCatalog implements CatalogView over plain maps for direct
// optimizer tests without an engine.
type fakeCatalog struct {
	tables  map[string]*catalog.Table
	indexes []*catalog.Index
	hists   map[string]*catalog.Histogram
	stats   map[string]TableStats
}

func (f *fakeCatalog) Table(name string) *catalog.Table {
	return f.tables[strings.ToLower(name)]
}

func (f *fakeCatalog) TableIndexes(name string, withVirtual bool) []*catalog.Index {
	var out []*catalog.Index
	for _, ix := range f.indexes {
		if strings.EqualFold(ix.Table, name) && (withVirtual || !ix.Virtual) {
			out = append(out, ix)
		}
	}
	return out
}

func (f *fakeCatalog) Histogram(table, col string) *catalog.Histogram {
	return f.hists[strings.ToLower(table)+"."+strings.ToLower(col)]
}

func (f *fakeCatalog) TableStats(name string) (TableStats, bool) {
	st, ok := f.stats[strings.ToLower(name)]
	return st, ok
}

func (f *fakeCatalog) IndexStats(name string) (IndexStats, bool) {
	return IndexStats{}, false
}

func newFakeCatalog() *fakeCatalog {
	f := &fakeCatalog{
		tables: map[string]*catalog.Table{},
		hists:  map[string]*catalog.Histogram{},
		stats:  map[string]TableStats{},
	}
	add := func(name string, rows int64, pages uint32, pk []string, cols ...sqltypes.Column) {
		f.tables[name] = &catalog.Table{
			Name:       name,
			Schema:     sqltypes.NewSchema(cols...),
			Structure:  catalog.Heap,
			PrimaryKey: pk,
			Rows:       rows,
			MainPages:  1,
		}
		f.stats[name] = TableStats{Rows: rows, Pages: pages}
	}
	add("big", 100000, 2500, []string{"id"},
		sqltypes.Column{Name: "id", Type: sqltypes.Int},
		sqltypes.Column{Name: "grp", Type: sqltypes.Int},
		sqltypes.Column{Name: "txt", Type: sqltypes.Text},
	)
	add("small", 100, 3, []string{"k"},
		sqltypes.Column{Name: "k", Type: sqltypes.Int},
		sqltypes.Column{Name: "label", Type: sqltypes.Text},
	)
	f.indexes = append(f.indexes, &catalog.Index{
		Name: "pk_big", Table: "big", Columns: []string{"id"}, Unique: true,
	})
	return f
}

func planFor(t *testing.T, cat CatalogView, sql string, opt Options) *Plan {
	t.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanSelect(st.(*sqlparser.SelectStmt), cat, opt)
	if err != nil {
		t.Fatalf("PlanSelect(%q): %v", sql, err)
	}
	return plan
}

func TestAccessPathChoice(t *testing.T) {
	cat := newFakeCatalog()
	// Unique key lookup: index scan.
	p := planFor(t, cat, "SELECT txt FROM big WHERE id = 7", Options{})
	if !strings.Contains(p.String(), "IndexScan big via pk_big") {
		t.Errorf("pk lookup did not use the index:\n%s", p.String())
	}
	if p.Est.Rows != 1 {
		t.Errorf("pk lookup estimated rows = %v, want 1", p.Est.Rows)
	}
	// Unselective predicate: sequential scan.
	p = planFor(t, cat, "SELECT txt FROM big WHERE grp <> 1", Options{})
	if !strings.Contains(p.String(), "SeqScan big") {
		t.Errorf("unselective predicate should scan:\n%s", p.String())
	}
	// Tiny table: scan even with an available pk index path.
	p = planFor(t, cat, "SELECT label FROM small WHERE k = 3", Options{})
	if strings.Contains(p.String(), "IndexScan") {
		t.Errorf("tiny table should scan:\n%s", p.String())
	}
}

func TestRangePredicateUsesIndexWithHistogram(t *testing.T) {
	cat := newFakeCatalog()
	cat.indexes = append(cat.indexes, &catalog.Index{
		Name: "ix_grp", Table: "big", Columns: []string{"grp"},
	})
	// A histogram showing grp spans 0..999 uniformly: a narrow range is
	// selective enough for the index.
	var vals []sqltypes.Value
	for i := 0; i < 10000; i++ {
		vals = append(vals, sqltypes.NewInt(int64(i%1000)))
	}
	cat.hists["big.grp"] = catalog.BuildHistogram("big", "grp", vals, 20)

	p := planFor(t, cat, "SELECT id FROM big WHERE grp BETWEEN 10 AND 12", Options{})
	if !strings.Contains(p.String(), "IndexScan big via ix_grp") {
		t.Errorf("narrow range should probe the index:\n%s", p.String())
	}
	wide := planFor(t, cat, "SELECT id FROM big WHERE grp BETWEEN 10 AND 900", Options{})
	if strings.Contains(wide.String(), "IndexScan") {
		t.Errorf("wide range should scan:\n%s", wide.String())
	}
}

func TestVirtualIndexOnlyInWhatIfMode(t *testing.T) {
	cat := newFakeCatalog()
	cat.indexes = append(cat.indexes, &catalog.Index{
		Name: "vx_grp", Table: "big", Columns: []string{"grp"}, Virtual: true,
	})
	normal := planFor(t, cat, "SELECT id FROM big WHERE grp = 5", Options{})
	if strings.Contains(normal.String(), "vx_grp") {
		t.Errorf("virtual index used outside what-if:\n%s", normal.String())
	}
	whatIf := planFor(t, cat, "SELECT id FROM big WHERE grp = 5", Options{WithVirtualIndexes: true})
	if !strings.Contains(whatIf.String(), "vx_grp") {
		t.Errorf("what-if ignored the virtual index:\n%s", whatIf.String())
	}
	if whatIf.Est.Total() >= normal.Est.Total() {
		t.Errorf("what-if estimate %v not cheaper than %v", whatIf.Est, normal.Est)
	}
}

func TestJoinOrderSmallestFirstAndIndexJoin(t *testing.T) {
	cat := newFakeCatalog()
	p := planFor(t, cat, "SELECT big.txt FROM big JOIN small ON big.id = small.k", Options{})
	// The small side should drive an index join into big's pk index.
	s := p.String()
	if !strings.Contains(s, "IndexJoin big via pk_big") {
		t.Errorf("expected index nested loops into big:\n%s", s)
	}
	if !strings.Contains(s, "SeqScan small") {
		t.Errorf("expected small as the outer input:\n%s", s)
	}
}

func TestHashJoinForUnindexedEqui(t *testing.T) {
	cat := newFakeCatalog()
	p := planFor(t, cat, "SELECT COUNT(*) FROM big b JOIN small s ON b.grp = s.k", Options{})
	if !strings.Contains(p.String(), "HashJoin") {
		t.Errorf("expected a hash join:\n%s", p.String())
	}
}

func TestCrossJoinFallsBackToLoop(t *testing.T) {
	cat := newFakeCatalog()
	p := planFor(t, cat, "SELECT COUNT(*) FROM big, small", Options{})
	if !strings.Contains(p.String(), "LoopJoin") {
		t.Errorf("expected a loop join:\n%s", p.String())
	}
}

func TestPlanShapeNodes(t *testing.T) {
	cat := newFakeCatalog()
	p := planFor(t, cat, `SELECT grp, COUNT(*) c FROM big WHERE id > 5
		GROUP BY grp HAVING COUNT(*) > 2 ORDER BY c DESC LIMIT 3 OFFSET 1`, Options{})
	s := p.String()
	for _, node := range []string{"Limit 3 offset 1", "Sort", "Project", "Agg"} {
		if !strings.Contains(s, node) {
			t.Errorf("missing %s in:\n%s", node, s)
		}
	}
}

func TestUsedIndexesAndAttributes(t *testing.T) {
	cat := newFakeCatalog()
	p := planFor(t, cat, "SELECT txt FROM big WHERE id = 9", Options{})
	if len(p.UsedIndexes) != 1 || p.UsedIndexes[0] != "pk_big" {
		t.Errorf("UsedIndexes = %v", p.UsedIndexes)
	}
	attrs := strings.Join(p.Attributes, ",")
	for _, want := range []string{"big.id", "big.txt"} {
		if !strings.Contains(attrs, want) {
			t.Errorf("Attributes = %v, missing %s", p.Attributes, want)
		}
	}
}

func TestPlannerErrors(t *testing.T) {
	cat := newFakeCatalog()
	bad := []string{
		"SELECT x FROM missing",
		"SELECT nope FROM big",
		"SELECT b.id FROM big b, big b",                      // duplicate alias
		"SELECT grp, COUNT(*) FROM big",                      // bare column with aggregate
		"SELECT id FROM big HAVING COUNT(*) > 1 ORDER BY id", // HAVING without GROUP BY... actually allowed? no
		"SELECT DISTINCT id FROM big ORDER BY grp",           // DISTINCT + hidden order col
		"SELECT id FROM big ORDER BY 5",                      // position out of range
	}
	for _, sql := range bad {
		st, err := sqlparser.Parse(sql)
		if err != nil {
			continue // parser-level rejection also counts
		}
		if _, err := PlanSelect(st.(*sqlparser.SelectStmt), cat, Options{}); err == nil {
			t.Errorf("PlanSelect(%q) unexpectedly succeeded", sql)
		}
	}
}

func TestHavingWithGroupedAggregates(t *testing.T) {
	cat := newFakeCatalog()
	p := planFor(t, cat, "SELECT grp FROM big GROUP BY grp HAVING MAX(id) > 100", Options{})
	if !strings.Contains(p.String(), "Agg") {
		t.Errorf("missing Agg:\n%s", p.String())
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	cat := newFakeCatalog()
	p := planFor(t, cat, "SELECT txt FROM big ORDER BY grp DESC", Options{})
	s := p.String()
	if !strings.Contains(s, "Sort") {
		t.Errorf("missing sort:\n%s", s)
	}
	// Output must still be just the one visible column.
	if got := len(p.Root.Out()); got != 1 {
		t.Errorf("output cols = %d, want 1 (hidden order column stripped)", got)
	}
}

func TestParamSelectivityShapesPlan(t *testing.T) {
	cat := newFakeCatalog()
	cat.indexes = append(cat.indexes, &catalog.Index{
		Name: "ix_grp", Table: "big", Columns: []string{"grp"},
	})
	var vals []sqltypes.Value
	for i := 0; i < 10000; i++ {
		vals = append(vals, sqltypes.NewInt(int64(i%1000)))
	}
	cat.hists["big.grp"] = catalog.BuildHistogram("big", "grp", vals, 20)

	res, err := sqlparser.ParseNormalized("SELECT id FROM big WHERE grp = 77")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanSelect(res.Stmt.(*sqlparser.SelectStmt), cat, Options{Params: res.Params})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "IndexScan") {
		t.Errorf("parameterized equality did not probe index:\n%s", plan.String())
	}
}

func TestCostMonotonicity(t *testing.T) {
	// More selective predicates must not produce more expensive plans.
	cat := newFakeCatalog()
	eq := planFor(t, cat, "SELECT txt FROM big WHERE id = 1", Options{})
	scanAll := planFor(t, cat, "SELECT txt FROM big", Options{})
	if eq.Est.Total() >= scanAll.Est.Total() {
		t.Errorf("point lookup (%v) not cheaper than full scan (%v)", eq.Est.Total(), scanAll.Est.Total())
	}
	if eq.Est.Rows > scanAll.Est.Rows {
		t.Errorf("row estimates inverted: %v > %v", eq.Est.Rows, scanAll.Est.Rows)
	}
}
