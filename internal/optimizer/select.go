package optimizer

import (
	"fmt"
	"reflect"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// aggFuncs are the supported aggregate functions.
var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

// collectAggs walks an expression and appends every aggregate call,
// deduplicated structurally.
func collectAggs(e sqlparser.Expr, aggs []sqlparser.FuncCall) []sqlparser.FuncCall {
	sqlparser.WalkExprs(e, func(x sqlparser.Expr) {
		fc, ok := x.(sqlparser.FuncCall)
		if !ok || !aggFuncs[fc.Name] {
			return
		}
		for _, a := range aggs {
			if reflect.DeepEqual(a, fc) {
				return
			}
		}
		aggs = append(aggs, fc)
	})
	return aggs
}

// applyAggregation inserts an Agg node when the statement groups or
// aggregates, and prepares the rewriter used by projection and HAVING.
func (p *planner) applyAggregation(root Node) (Node, error) {
	var aggs []sqlparser.FuncCall
	for _, item := range p.st.Items {
		if !item.Star {
			aggs = collectAggs(item.Expr, aggs)
		}
	}
	aggs = collectAggs(p.st.Having, aggs)
	if len(aggs) == 0 && len(p.st.GroupBy) == 0 {
		if p.st.Having != nil {
			return nil, fmt.Errorf("optimizer: HAVING requires GROUP BY or aggregates")
		}
		return root, nil
	}

	// Record attributes referenced inside the aggregates and groups.
	for _, g := range p.st.GroupBy {
		if _, err := p.exprRels(g); err != nil {
			return nil, err
		}
	}
	for _, a := range aggs {
		for _, arg := range a.Args {
			if _, err := p.exprRels(arg); err != nil {
				return nil, err
			}
		}
	}

	specs := make([]AggSpec, len(aggs))
	outCols := make([]OutCol, 0, len(p.st.GroupBy)+len(aggs))
	for i, g := range p.st.GroupBy {
		typ := sqltypes.Null
		if c, ok := g.(sqlparser.ColumnRef); ok {
			if _, _, t, err := p.resolveColumn(c); err == nil {
				typ = t
			}
		}
		outCols = append(outCols, OutCol{Table: "#", Name: fmt.Sprintf("g%d", i), Type: typ})
	}
	for j, a := range aggs {
		specs[j] = AggSpec{Func: a.Name, Star: a.Star, Distinct: a.Distinct}
		if len(a.Args) > 0 {
			specs[j].Arg = a.Args[0]
		}
		typ := sqltypes.Float
		if a.Name == "COUNT" {
			typ = sqltypes.Int
		}
		outCols = append(outCols, OutCol{Table: "#", Name: fmt.Sprintf("a%d", j), Type: typ})
	}

	agg := &Agg{
		Input:   root,
		GroupBy: p.st.GroupBy,
		Aggs:    specs,
		outCols: outCols,
		EstC:    aggCost(root.Est(), len(p.st.GroupBy)),
	}
	// Parallel safety: only a leaf SeqScan input partitions into morsels
	// (the scan's pushed-down filter rides along); DISTINCT aggregates
	// cannot merge partial seen-sets without double counting.
	if _, isScan := root.(*SeqScan); isScan {
		agg.ParallelSafe = true
		for _, a := range specs {
			if a.Distinct {
				agg.ParallelSafe = false
				break
			}
		}
	}
	p.agg = agg
	p.aggCalls = aggs

	if p.st.Having != nil {
		hv, err := p.rewritePostAgg(p.st.Having)
		if err != nil {
			return nil, err
		}
		agg.Having = hv
	}
	return agg, nil
}

// rewritePostAgg rewrites an expression evaluated after aggregation so
// that group expressions and aggregate calls reference the Agg node's
// "#" output columns.
func (p *planner) rewritePostAgg(e sqlparser.Expr) (sqlparser.Expr, error) {
	if e == nil {
		return nil, nil
	}
	for i, g := range p.st.GroupBy {
		if reflect.DeepEqual(e, g) {
			return sqlparser.ColumnRef{Table: "#", Name: fmt.Sprintf("g%d", i)}, nil
		}
	}
	if fc, ok := e.(sqlparser.FuncCall); ok && aggFuncs[fc.Name] {
		for j, a := range p.aggCalls {
			if reflect.DeepEqual(a, fc) {
				return sqlparser.ColumnRef{Table: "#", Name: fmt.Sprintf("a%d", j)}, nil
			}
		}
		return nil, fmt.Errorf("optimizer: internal: aggregate %s not collected", fc.Name)
	}
	switch x := e.(type) {
	case sqlparser.ColumnRef:
		return nil, fmt.Errorf("optimizer: column %s must appear in GROUP BY or inside an aggregate", x.Name)
	case sqlparser.Literal, sqlparser.Param:
		return e, nil
	case sqlparser.BinaryExpr:
		l, err := p.rewritePostAgg(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := p.rewritePostAgg(x.Right)
		if err != nil {
			return nil, err
		}
		return sqlparser.BinaryExpr{Op: x.Op, Left: l, Right: r}, nil
	case sqlparser.UnaryExpr:
		o, err := p.rewritePostAgg(x.Operand)
		if err != nil {
			return nil, err
		}
		return sqlparser.UnaryExpr{Op: x.Op, Operand: o}, nil
	case sqlparser.InExpr:
		n, err := p.rewritePostAgg(x.Expr)
		if err != nil {
			return nil, err
		}
		list := make([]sqlparser.Expr, len(x.List))
		for i, it := range x.List {
			if list[i], err = p.rewritePostAgg(it); err != nil {
				return nil, err
			}
		}
		return sqlparser.InExpr{Not: x.Not, Expr: n, List: list}, nil
	case sqlparser.BetweenExpr:
		v, err := p.rewritePostAgg(x.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := p.rewritePostAgg(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := p.rewritePostAgg(x.Hi)
		if err != nil {
			return nil, err
		}
		return sqlparser.BetweenExpr{Not: x.Not, Expr: v, Lo: lo, Hi: hi}, nil
	case sqlparser.IsNullExpr:
		v, err := p.rewritePostAgg(x.Expr)
		if err != nil {
			return nil, err
		}
		return sqlparser.IsNullExpr{Not: x.Not, Expr: v}, nil
	default:
		return nil, fmt.Errorf("optimizer: unsupported expression %T after aggregation", e)
	}
}

// applyProjection builds the Project node from the select list.
func (p *planner) applyProjection(root Node) (Node, error) {
	var exprs []sqlparser.Expr
	var names []OutCol
	for _, item := range p.st.Items {
		if item.Star {
			if p.agg != nil {
				return nil, fmt.Errorf("optimizer: SELECT * cannot be combined with GROUP BY or aggregates")
			}
			for _, oc := range root.Out() {
				if item.Table != "" && !strings.EqualFold(item.Table, oc.Table) {
					continue
				}
				exprs = append(exprs, sqlparser.ColumnRef{Table: oc.Table, Name: oc.Name})
				names = append(names, oc)
			}
			if item.Table != "" && len(exprs) == 0 {
				return nil, fmt.Errorf("optimizer: unknown table %q in %s.*", item.Table, item.Table)
			}
			continue
		}
		e := item.Expr
		if p.agg != nil {
			var err error
			if e, err = p.rewritePostAgg(e); err != nil {
				return nil, err
			}
		} else if _, err := p.exprRels(e); err != nil {
			return nil, err
		}
		name := item.Alias
		typ := sqltypes.Null
		if c, ok := item.Expr.(sqlparser.ColumnRef); ok {
			if name == "" {
				name = c.Name
			}
			if p.agg == nil {
				if _, _, t, err := p.resolveColumn(c); err == nil {
					typ = t
				}
			}
		}
		if fc, ok := item.Expr.(sqlparser.FuncCall); ok && name == "" {
			name = strings.ToLower(fc.Name)
		}
		if name == "" {
			name = fmt.Sprintf("col%d", len(names)+1)
		}
		exprs = append(exprs, e)
		names = append(names, OutCol{Name: name, Type: typ})
	}
	p.origItems = p.st.Items
	p.project = &Project{Input: root, Exprs: exprs, Names: names, EstC: projectCost(root.Est())}
	return p.project, nil
}

// applyOrderBy resolves ORDER BY items against the projection output:
// by position (integer literal), by output column name/alias, or by
// structural equality with a select-list expression.
func (p *planner) applyOrderBy(root Node) (Node, error) {
	if len(p.st.OrderBy) == 0 {
		return root, nil
	}
	out := root.Out()
	var keys []SortKey
	for _, item := range p.st.OrderBy {
		idx := -1
		switch x := item.Expr.(type) {
		case sqlparser.Literal:
			if x.Val.T == sqltypes.Int {
				pos := int(x.Val.I)
				if pos < 1 || pos > len(out) {
					return nil, fmt.Errorf("optimizer: ORDER BY position %d out of range", pos)
				}
				idx = pos - 1
			}
		case sqlparser.ColumnRef:
			for i, oc := range out {
				if strings.EqualFold(oc.Name, x.Name) &&
					(x.Table == "" || strings.EqualFold(oc.Table, x.Table)) {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			// Try structural match with the original select items.
			for i, it := range p.origItems {
				if !it.Star && reflect.DeepEqual(it.Expr, item.Expr) {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			// The expression is not in the select list: evaluate it as
			// a hidden projection column, sort on it, and strip it
			// afterwards.
			if p.st.Distinct {
				return nil, fmt.Errorf("optimizer: ORDER BY expression must appear in the select list with DISTINCT")
			}
			if root != p.project || p.project == nil {
				return nil, fmt.Errorf("optimizer: ORDER BY expression must appear in the select list")
			}
			e := item.Expr
			if p.agg != nil {
				var err error
				if e, err = p.rewritePostAgg(e); err != nil {
					return nil, err
				}
			} else if _, err := p.exprRels(e); err != nil {
				return nil, err
			}
			p.project.Exprs = append(p.project.Exprs, e)
			p.project.Names = append(p.project.Names,
				OutCol{Name: fmt.Sprintf("#order%d", len(p.project.Names))})
			idx = len(p.project.Names) - 1
		}
		keys = append(keys, SortKey{Col: idx, Desc: item.Desc})
	}
	visible := len(p.project.Names)
	if p.project != nil && root == p.project {
		visible = len(p.st.Items)
		// Star items expand to several columns; recount the visible
		// prefix from the names that are not hidden order columns.
		visible = 0
		for _, n := range p.project.Names {
			if strings.HasPrefix(n.Name, "#order") {
				break
			}
			visible++
		}
	}
	var result Node = &Sort{Input: root, Keys: keys, EstC: sortCost(root.Est())}
	if root == p.project && visible < len(p.project.Names) {
		result = &Strip{Input: result, Keep: visible, EstC: result.Est()}
	}
	return result, nil
}
