package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func newTestFile(t *testing.T, pool *Pool) *File {
	t.Helper()
	if pool == nil {
		pool = NewPool(64)
	}
	f, err := OpenFile(filepath.Join(t.TempDir(), "test.dat"), pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestTIDPacking(t *testing.T) {
	tid := NewTID(123456, 789)
	if tid.Page() != 123456 || tid.Slot() != 789 {
		t.Fatalf("TID round trip broken: %v", tid)
	}
	if tid.String() != "123456.789" {
		t.Errorf("String = %q", tid.String())
	}
}

func TestHeapInsertGetScan(t *testing.T) {
	h := OpenHeap(newTestFile(t, nil), 1, 0)
	var tids []TID
	for i := 0; i < 500; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte("x"), i%50)))
		tid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	// The row counter is engine-maintained: raw Insert does not touch it.
	if h.Rows() != 0 {
		t.Fatalf("Rows = %d before AdjustRows", h.Rows())
	}
	h.AdjustRows(500)
	if h.Rows() != 500 {
		t.Fatalf("Rows = %d", h.Rows())
	}
	for i, tid := range tids {
		rec, ok, err := h.Get(tid)
		if err != nil || !ok {
			t.Fatalf("Get(%v): ok=%v err=%v", tid, ok, err)
		}
		if !bytes.HasPrefix(rec, []byte(fmt.Sprintf("record-%04d", i))) {
			t.Fatalf("Get(%v) returned wrong record %q", tid, rec)
		}
	}
	seen := 0
	if err := h.Scan(func(tid TID, rec []byte) (bool, error) {
		seen++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 500 {
		t.Fatalf("Scan visited %d records", seen)
	}
}

func TestHeapDeleteAndUpdate(t *testing.T) {
	h := OpenHeap(newTestFile(t, nil), 1, 0)
	t1, _ := h.Insert([]byte("alpha"))
	t2, _ := h.Insert([]byte("beta"))
	h.AdjustRows(2)
	if err := h.Delete(t1); err != nil {
		t.Fatal(err)
	}
	h.AdjustRows(-1)
	if _, ok, _ := h.Get(t1); ok {
		t.Error("deleted record still visible")
	}
	if h.Rows() != 1 {
		t.Errorf("Rows = %d after delete", h.Rows())
	}
	// Idempotent delete; the engine-maintained counter is untouched.
	if err := h.Delete(t1); err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 1 {
		t.Errorf("double delete changed row count: %d", h.Rows())
	}

	// In-place update (same size).
	nt, err := h.Update(t2, []byte("BETA"))
	if err != nil {
		t.Fatal(err)
	}
	if nt != t2 {
		t.Errorf("same-size update moved the record: %v -> %v", t2, nt)
	}
	rec, ok, _ := h.Get(nt)
	if !ok || string(rec) != "BETA" {
		t.Errorf("update lost data: %q ok=%v", rec, ok)
	}

	// Growing update must relocate.
	big := bytes.Repeat([]byte("z"), 300)
	nt2, err := h.Update(nt, big)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, _ = h.Get(nt2)
	if !ok || !bytes.Equal(rec, big) {
		t.Error("growing update lost data")
	}
	if h.Rows() != 1 {
		t.Errorf("Rows = %d after update", h.Rows())
	}
}

func TestHeapOverflowAccounting(t *testing.T) {
	h := OpenHeap(newTestFile(t, nil), 2, 0)
	rec := bytes.Repeat([]byte("r"), 400)
	for i := 0; i < 200; i++ {
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if h.Pages() <= 2 {
		t.Fatalf("expected growth beyond main pages, got %d pages", h.Pages())
	}
	if h.OverflowPages() != h.Pages()-2 {
		t.Errorf("OverflowPages = %d, want %d", h.OverflowPages(), h.Pages()-2)
	}
	h.SetMainPages(h.Pages())
	if h.OverflowPages() != 0 {
		t.Errorf("after SetMainPages, overflow = %d", h.OverflowPages())
	}
}

func TestHeapRejectsHugeRecord(t *testing.T) {
	h := OpenHeap(newTestFile(t, nil), 1, 0)
	if _, err := h.Insert(bytes.Repeat([]byte("x"), PageSize)); err == nil {
		t.Fatal("expected error for oversized record")
	}
}

func TestHeapPersistence(t *testing.T) {
	dir := t.TempDir()
	pool := NewPool(16)
	path := filepath.Join(dir, "h.dat")

	f, err := OpenFile(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	h := OpenHeap(f, 1, 0)
	var tids []TID
	for i := 0; i < 300; i++ {
		tid, err := h.Insert([]byte(fmt.Sprintf("row-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	rows := h.Rows()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenFile(path, NewPool(16))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	h2 := OpenHeap(f2, 1, rows)
	for i, tid := range tids {
		rec, ok, err := h2.Get(tid)
		if err != nil || !ok || string(rec) != fmt.Sprintf("row-%d", i) {
			t.Fatalf("after reopen, Get(%v) = %q ok=%v err=%v", tid, rec, ok, err)
		}
	}
}

func TestHeapTruncate(t *testing.T) {
	pool := NewPool(16)
	f, err := OpenFile(filepath.Join(t.TempDir(), "h.dat"), pool)
	if err != nil {
		t.Fatal(err)
	}
	h := OpenHeap(f, 1, 0)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(bytes.Repeat([]byte("a"), 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Truncate(); err != nil {
		t.Fatal(err)
	}
	defer h.File().Close()
	if h.Rows() != 0 || h.Pages() != 0 {
		t.Fatalf("after truncate: rows=%d pages=%d", h.Rows(), h.Pages())
	}
	if _, err := h.Insert([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	count := 0
	h.Scan(func(TID, []byte) (bool, error) { count++; return true, nil })
	if count != 1 {
		t.Fatalf("scan after truncate found %d rows", count)
	}
}

func TestHeapRandomizedAgainstModel(t *testing.T) {
	h := OpenHeap(newTestFile(t, nil), 1, 0)
	model := map[TID][]byte{}
	r := rand.New(rand.NewSource(42))
	var live []TID
	for op := 0; op < 3000; op++ {
		switch {
		case len(live) == 0 || r.Intn(3) > 0:
			rec := make([]byte, 1+r.Intn(200))
			r.Read(rec)
			tid, err := h.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			model[tid] = append([]byte(nil), rec...)
			live = append(live, tid)
		default:
			i := r.Intn(len(live))
			tid := live[i]
			if r.Intn(2) == 0 {
				if err := h.Delete(tid); err != nil {
					t.Fatal(err)
				}
				delete(model, tid)
				live = append(live[:i], live[i+1:]...)
			} else {
				rec := make([]byte, 1+r.Intn(300))
				r.Read(rec)
				nt, err := h.Update(tid, rec)
				if err != nil {
					t.Fatal(err)
				}
				delete(model, tid)
				model[nt] = append([]byte(nil), rec...)
				live[i] = nt
			}
		}
	}
	got := map[TID][]byte{}
	h.Scan(func(tid TID, rec []byte) (bool, error) {
		got[tid] = append([]byte(nil), rec...)
		return true, nil
	})
	if len(got) != len(model) {
		t.Fatalf("scan count %d != model %d", len(got), len(model))
	}
	for tid, want := range model {
		if !bytes.Equal(got[tid], want) {
			t.Fatalf("TID %v: scan %x, model %x", tid, got[tid], want)
		}
	}
}

// TestScanBatchMatchesScan asserts the batch scan sees exactly the
// records (and TIDs, in the same physical order) that the row scan
// sees, across multiple pages and with deleted slots interleaved.
func TestScanBatchMatchesScan(t *testing.T) {
	h := OpenHeap(newTestFile(t, nil), 1, 0)
	var tids []TID
	for i := 0; i < 700; i++ {
		rec := []byte(fmt.Sprintf("rec-%04d-%s", i, bytes.Repeat([]byte("y"), i%40)))
		tid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	// Kill every 7th record so dead slots appear on every page.
	for i := 0; i < len(tids); i += 7 {
		if err := h.Delete(tids[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wantTIDs []TID
	var wantRecs [][]byte
	if err := h.Scan(func(tid TID, rec []byte) (bool, error) {
		wantTIDs = append(wantTIDs, tid)
		wantRecs = append(wantRecs, append([]byte(nil), rec...))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, maxRows := range []int{0, 1, 64, 100000} {
		it := h.ScanBatch()
		var b RecBatch
		var gotTIDs []TID
		var gotRecs [][]byte
		batches := 0
		for {
			ok, err := it.NextBatchMax(&b, maxRows)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			batches++
			if b.Len() == 0 {
				t.Fatal("ok batch with zero records")
			}
			for i := range b.Recs {
				gotTIDs = append(gotTIDs, b.TIDs[i])
				gotRecs = append(gotRecs, append([]byte(nil), b.Recs[i]...))
			}
		}
		if len(gotTIDs) != len(wantTIDs) {
			t.Fatalf("maxRows=%d: %d records, want %d", maxRows, len(gotTIDs), len(wantTIDs))
		}
		for i := range wantTIDs {
			if gotTIDs[i] != wantTIDs[i] || !bytes.Equal(gotRecs[i], wantRecs[i]) {
				t.Fatalf("maxRows=%d: record %d mismatch: tid %v vs %v", maxRows, i, gotTIDs[i], wantTIDs[i])
			}
		}
		if maxRows == 100000 && batches != 1 {
			t.Fatalf("maxRows=100000: %d batches, want 1", batches)
		}
	}
}

func TestScanBatchEmptyHeap(t *testing.T) {
	h := OpenHeap(newTestFile(t, nil), 1, 0)
	var b RecBatch
	if ok, err := h.ScanBatch().NextBatch(&b); err != nil || ok {
		t.Fatalf("empty heap: ok=%v err=%v", ok, err)
	}
}

// TestScanBatchAllocs asserts the batch-scan inner loop is allocation
// free in the steady state: once the reused RecBatch has grown to its
// working size, a full scan performs 0 allocations per row (amortized
// well under 1 per batch). This is the invariant the CI bench-smoke
// step pins.
func TestScanBatchAllocs(t *testing.T) {
	h := OpenHeap(newTestFile(t, NewPool(256)), 1, 0)
	rec := make([]byte, 64)
	for i := 0; i < 4096; i++ {
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	var b RecBatch
	scan := func() {
		it := h.ScanBatch()
		for {
			ok, err := it.NextBatchMax(&b, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
		}
	}
	scan() // warm up: grow the batch buffers to working size
	// One allocation per scan remains (the HeapBatchIter itself).
	if allocs := testing.AllocsPerRun(10, scan); allocs > 2 {
		t.Fatalf("batch scan allocates %.1f times per full scan, want <= 2", allocs)
	}
}
