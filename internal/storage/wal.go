package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Physical redo/undo write-ahead log. Every page mutation is bracketed
// by a full-page before-image (captured on first touch per transaction,
// used to undo in-flight losers after a crash) and a full-page
// after-image at transaction finish (used to redo winners). Pages carry
// their last WAL LSN in an 8-byte trailer; the buffer pool refuses to
// write a page whose trailer exceeds the durable WAL LSN, which is the
// whole WAL-before-data invariant in one sentence.
//
// Group commit: appenders stage encoded records in an in-memory buffer
// under w.mu and park on their commit LSN; a single flusher goroutine
// writes and fsyncs the batch, amortizing one fsync across every
// committer that arrived during the flush window. A lone committer is
// flushed immediately — the batching delay only kicks in when there is
// a sibling to share the fsync with.

// Page trailer: the last PageTrailerSize bytes of every page hold the
// LSN of the WAL record that last touched it. Page-structure code must
// treat PageDataSize, not PageSize, as the usable payload.
const (
	PageTrailerSize = 8
	PageDataSize    = PageSize - PageTrailerSize
)

// PageLSN reads the page-LSN trailer.
func PageLSN(d []byte) uint64 {
	return binary.LittleEndian.Uint64(d[PageDataSize:PageSize])
}

// SetPageLSN stamps the page-LSN trailer.
func SetPageLSN(d []byte, lsn uint64) {
	binary.LittleEndian.PutUint64(d[PageDataSize:PageSize], lsn)
}

// WALFileName is the log's file name inside the database directory.
const WALFileName = "wal.log"

// WAL record types.
const (
	WALBeforeImage     byte = 1 // first touch of a page by a txn: pre-modification image
	WALAfterImage      byte = 2 // txn finish: post-modification image
	WALCommit          byte = 3 // statement finished, effects kept; payload: owning MVCC txn id
	WALCheckpointBegin byte = 4
	WALCheckpointEnd   byte = 5 // payload: redo scan start LSN
	WALTxnCommit       byte = 6 // MVCC transaction committed; payload: txn id
)

const (
	walMagic      = 0x57414c31 // "WAL1"
	walVersion    = 1
	walHeaderSize = 16
	// Record frame: u32 body length | u32 CRC32-IEEE(body) | body.
	// Body: u64 LSN | u64 txn | u8 type | payload.
	walFrameSize  = 8
	walBodyFixed  = 17
	walMaxBody    = walBodyFixed + 2 + 255 + 4 + 8 + PageSize // image record upper bound
	walCompactMin = 1 << 20 // compact the log at checkpoint once it exceeds this
)

// WALFile is the seam between the WAL and the OS file. Production code
// uses *os.File opened O_APPEND; the walfault package substitutes a
// truncating/torn-writing wrapper to simulate crashes at chosen byte
// offsets.
type WALFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

func defaultWALOpen(path string) (WALFile, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
}

// WALRecord is a decoded log record, as returned by ReadWALRecords.
type WALRecord struct {
	LSN       uint64
	Txn       uint64
	Type      byte
	File      string // base name of the page file (image records)
	Page      uint32
	PrevLSN   uint64 // page trailer value before this record's txn touched it
	Image     []byte // PageSize bytes for image records
	ScanStart uint64 // checkpoint-end payload
	Owner     uint64 // MVCC txn id (statement-commit and txn-commit records)
}

// WALLatencyBuckets mirrors monitor.NumLatencyBuckets: log2-ns buckets
// so the engine can convert fsync latencies straight into a
// monitor.LatencyCounts for the telemetry exporter.
const WALLatencyBuckets = 48

func walLatencyBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= WALLatencyBuckets {
		b = WALLatencyBuckets - 1
	}
	return b
}

// WALStats is a point-in-time snapshot of the log's counters.
type WALStats struct {
	Bytes      int64 // bytes appended to the log file
	Fsyncs     int64 // fsync calls issued
	Appends    int64 // records appended
	FsyncNanos int64 // cumulative wallclock nanoseconds inside fsync
	DurableLSN uint64
}

// WALOptions tunes OpenWAL.
type WALOptions struct {
	// GroupCommitInterval is the batching window: when more than one
	// committer is waiting, the flusher sleeps this long before the
	// write+fsync so siblings can pile on. <= 0 means synchronous
	// commit (every committer fsyncs on its own). Default 1ms.
	GroupCommitInterval time.Duration
	// OpenFile substitutes the log file implementation (test seam).
	OpenFile func(string) (WALFile, error)
}

// WAL is the write-ahead log. One instance per database directory.
type WAL struct {
	path     string
	openFile func(string) (WALFile, error)

	// mu guards the append state and is the condition lock for
	// durability waiters. Lock order: ioMu before mu, never inverted.
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	spare   []byte
	bufEnd  uint64            // LSN of the last staged record
	nextLSN uint64
	nextTxn uint64
	active  map[uint64]uint64 // txn id -> first LSN (for fuzzy checkpoint scan start)
	err     error
	closed  bool

	// ioMu serializes file writes, fsyncs and log compaction.
	ioMu      sync.Mutex
	f         WALFile
	fileBytes int64

	durable  atomic.Uint64
	interval atomic.Int64 // group-commit window in ns; <= 0 is synchronous
	waiters  atomic.Int64

	// ddlGate serializes DDL (writer) against transactions (readers):
	// every WalTxn holds the read side for its lifetime, so DDL sees a
	// quiesced log and can rebuild files without redo ever replaying a
	// stale pre-rebuild record onto them.
	ddlGate sync.RWMutex

	kick    chan struct{}
	done    chan struct{}
	stopped chan struct{}

	bytes      atomic.Int64
	fsyncs     atomic.Int64
	appends    atomic.Int64
	fsyncNanos atomic.Int64
	fsyncHist  [WALLatencyBuckets]atomic.Int64
}

// OpenWAL opens (creating if needed) the log at path and starts the
// group-commit flusher. Any torn tail beyond the last valid record is
// truncated away — recovery has already run by the time the engine
// calls this.
func OpenWAL(path string, opts WALOptions) (*WAL, error) {
	open := opts.OpenFile
	if open == nil {
		open = defaultWALOpen
	}
	iv := opts.GroupCommitInterval
	if iv == 0 {
		iv = time.Millisecond
	}
	recs, base, validLen, err := ReadWALRecords(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		if err := ResetWAL(path, 1); err != nil {
			return nil, err
		}
		base, validLen = 1, walHeaderSize
		recs = nil
	}
	if st, err := os.Stat(path); err == nil && st.Size() > validLen {
		if err := os.Truncate(path, validLen); err != nil {
			return nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	next := base
	if n := len(recs); n > 0 {
		next = recs[n-1].LSN + 1
	}
	f, err := open(path)
	if err != nil {
		return nil, err
	}
	// Make the (possibly truncated) prefix durable before acking
	// anything against it.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{
		path:     path,
		openFile: open,
		nextLSN:  next,
		active:   make(map[uint64]uint64),
		f:        f,
		fileBytes: validLen,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	w.bufEnd = next - 1
	w.durable.Store(next - 1)
	w.interval.Store(int64(iv))
	go w.flusher()
	return w, nil
}

// SetGroupCommitInterval changes the batching window at runtime.
// <= 0 switches to synchronous per-commit fsync.
func (w *WAL) SetGroupCommitInterval(d time.Duration) { w.interval.Store(int64(d)) }

// DurableLSN returns the highest LSN known to be fsynced.
func (w *WAL) DurableLSN() uint64 { return w.durable.Load() }

// Stats snapshots the log counters.
func (w *WAL) Stats() WALStats {
	if w == nil {
		return WALStats{}
	}
	return WALStats{
		Bytes:      w.bytes.Load(),
		Fsyncs:     w.fsyncs.Load(),
		Appends:    w.appends.Load(),
		FsyncNanos: w.fsyncNanos.Load(),
		DurableLSN: w.durable.Load(),
	}
}

// FsyncLatency returns the fsync latency histogram (log2-ns buckets,
// same scheme as the monitor's) and the cumulative nanosecond sum.
func (w *WAL) FsyncLatency() (buckets [WALLatencyBuckets]int64, sumNanos int64) {
	if w == nil {
		return
	}
	for i := range w.fsyncHist {
		buckets[i] = w.fsyncHist[i].Load()
	}
	return buckets, w.fsyncNanos.Load()
}

func (w *WAL) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Err returns the sticky log failure, if any. A failed log refuses all
// further appends: better to stop acking commits than to ack ones that
// can never become durable.
func (w *WAL) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *WAL) kickFlusher() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// appendLocked encodes a record into the staging buffer. Caller holds
// w.mu and has already claimed lsn from w.nextLSN. u64p is the
// single-u64 payload of commit/checkpoint-end records (owner or scan
// start).
func (w *WAL) appendLocked(lsn, txn uint64, typ byte, file string, page uint32, prev uint64, image []byte, u64p uint64) {
	bodyLen := walBodyFixed
	switch typ {
	case WALBeforeImage, WALAfterImage:
		bodyLen += 2 + len(file) + 4 + 8 + PageSize
	case WALCheckpointEnd, WALCommit, WALTxnCommit:
		bodyLen += 8
	}
	need := walFrameSize + bodyLen
	start := len(w.buf)
	if cap(w.buf)-start < need {
		nb := make([]byte, start, (start+need)*2+4096)
		copy(nb, w.buf)
		w.buf = nb
	}
	w.buf = w.buf[:start+need]
	b := w.buf[start:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(bodyLen))
	body := b[walFrameSize:]
	binary.LittleEndian.PutUint64(body[0:8], lsn)
	binary.LittleEndian.PutUint64(body[8:16], txn)
	body[16] = typ
	p := body[walBodyFixed:]
	switch typ {
	case WALBeforeImage, WALAfterImage:
		binary.LittleEndian.PutUint16(p[0:2], uint16(len(file)))
		copy(p[2:], file)
		o := 2 + len(file)
		binary.LittleEndian.PutUint32(p[o:o+4], page)
		binary.LittleEndian.PutUint64(p[o+4:o+12], prev)
		copy(p[o+12:], image)
	case WALCheckpointEnd, WALCommit, WALTxnCommit:
		binary.LittleEndian.PutUint64(p[0:8], u64p)
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(body))
	w.bufEnd = lsn
	w.appends.Add(1)
}

// flushNow writes the staged buffer and fsyncs if anything new needs
// durability. minLSN > 0 lets callers skip the work when their record
// is already durable.
func (w *WAL) flushNow(minLSN uint64) error {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if minLSN > 0 && w.durable.Load() >= minLSN {
		return nil
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	buf := w.buf
	if w.spare != nil {
		w.buf = w.spare[:0]
		w.spare = nil
	} else {
		w.buf = nil
	}
	target := w.bufEnd
	w.mu.Unlock()
	if len(buf) > 0 {
		if _, err := w.f.Write(buf); err != nil {
			err = fmt.Errorf("storage: wal write: %w", err)
			w.fail(err)
			return err
		}
		w.bytes.Add(int64(len(buf)))
		w.fileBytes += int64(len(buf))
	}
	if target > w.durable.Load() {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			err = fmt.Errorf("storage: wal fsync: %w", err)
			w.fail(err)
			return err
		}
		d := time.Since(start)
		w.fsyncs.Add(1)
		w.fsyncNanos.Add(d.Nanoseconds())
		w.fsyncHist[walLatencyBucket(d)].Add(1)
		w.mu.Lock()
		w.durable.Store(target)
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	w.mu.Lock()
	if w.spare == nil && buf != nil {
		w.spare = buf[:0]
	}
	w.mu.Unlock()
	return nil
}

// syncTo makes everything up to lsn durable. The buffer pool calls this
// as its WAL-before-data barrier ahead of every page write-back.
func (w *WAL) syncTo(lsn uint64) error {
	if w == nil || lsn == 0 || w.durable.Load() >= lsn {
		return nil
	}
	return w.flushNow(lsn)
}

// Sync forces the whole staged log to disk.
func (w *WAL) Sync() error {
	if w == nil {
		return nil
	}
	return w.flushNow(0)
}

// WaitDurable blocks until lsn is durable, parking on the group-commit
// flusher. In synchronous mode it performs the flush itself.
func (w *WAL) WaitDurable(lsn uint64) error {
	if w == nil || lsn == 0 || w.durable.Load() >= lsn {
		return nil
	}
	if w.interval.Load() <= 0 {
		return w.flushNow(lsn)
	}
	w.waiters.Add(1)
	defer w.waiters.Add(-1)
	w.kickFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable.Load() < lsn && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.durable.Load() < lsn {
		return fmt.Errorf("storage: wal closed before lsn %d became durable", lsn)
	}
	return nil
}

// flusher is the single goroutine that turns parked committers into
// one fsync per batch. The batching sleep only happens when more than
// one committer is waiting — a lone committer pays no added latency.
func (w *WAL) flusher() {
	defer close(w.stopped)
	for {
		select {
		case <-w.done:
			w.flushNow(0)
			return
		case <-w.kick:
		}
		if iv := time.Duration(w.interval.Load()); iv > 0 && w.waiters.Load() > 1 {
			time.Sleep(iv)
		}
		w.flushNow(0)
	}
}

// Close flushes the log and stops the flusher.
func (w *WAL) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	close(w.done)
	<-w.stopped
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	return w.f.Close()
}

// BeginExclusive blocks until every open transaction finishes and
// holds out new ones until the returned release func is called. DDL
// runs under this gate so file rebuilds never race a logged txn.
func (w *WAL) BeginExclusive() func() {
	if w == nil {
		return func() {}
	}
	w.ddlGate.Lock()
	return w.ddlGate.Unlock
}

// WalTxn is one logged transaction. A nil *WalTxn is valid and inert,
// so callers need not branch on whether a WAL is attached.
type WalTxn struct {
	w       *WAL
	id      uint64
	owner   uint64 // MVCC txn id this statement belongs to; 0 = none
	done    bool
	touched map[pageKey]walTouch
	order   []pageKey // touch order, for deterministic after-image LSNs
	prof    *WaitProf // wait attribution for flagged statements; usually nil
}

// SetOwner stamps the MVCC transaction id that owns this statement; it
// rides the statement's WALCommit record so recovery can tell which
// MVCC transactions have effects in the redo log.
func (t *WalTxn) SetOwner(owner uint64) {
	if t != nil {
		t.owner = owner
	}
}

// SetProf attaches a wait profiler to the transaction: Commit's
// after-image page gets count as I/O, its durability wait as fsync.
func (t *WalTxn) SetProf(prof *WaitProf) {
	if t != nil {
		t.prof = prof
	}
}

// Prof returns the attached wait profiler, or nil.
func (t *WalTxn) Prof() *WaitProf {
	if t == nil {
		return nil
	}
	return t.prof
}

type walTouch struct {
	f    *File
	page uint32
}

// Begin opens a logged transaction. It holds the DDL gate's read side
// until Commit.
func (w *WAL) Begin() *WalTxn {
	if w == nil {
		return nil
	}
	w.ddlGate.RLock()
	w.mu.Lock()
	w.nextTxn++
	id := w.nextTxn
	w.mu.Unlock()
	return &WalTxn{w: w, id: id, touched: make(map[pageKey]walTouch)}
}

// captureBefore logs a full-page before-image the first time t touches
// a page, stamps the page trailer with the new LSN, and marks the page
// dirty. Idempotent per (txn, page).
func (t *WalTxn) captureBefore(p *Page) error {
	if t == nil || t.done {
		return nil
	}
	k := p.fr.key
	if _, ok := t.touched[k]; ok {
		return nil
	}
	w := t.w
	prev := PageLSN(p.Data[:PageSize])
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("storage: wal closed")
	}
	lsn := w.nextLSN
	w.nextLSN++
	if _, ok := w.active[t.id]; !ok {
		w.active[t.id] = lsn
	}
	w.appendLocked(lsn, t.id, WALBeforeImage, p.f.base, k.page, prev, p.Data[:PageSize], 0)
	w.mu.Unlock()
	SetPageLSN(p.Data[:PageSize], lsn)
	p.fr.lsn.Store(lsn)
	p.MarkDirty()
	t.touched[k] = walTouch{f: p.f, page: k.page}
	t.order = append(t.order, k)
	return nil
}

// Commit logs after-images for every touched page plus a finish record,
// then (if wait) blocks until the finish record is durable. Rollback
// paths call this too with wait=false: the engine keeps a finished
// transaction's effects in place either way, so recovery must as well.
// Must be called before the session releases its table locks, so that
// a later transaction's images can never be durable while this one
// still looks in-flight.
func (t *WalTxn) Commit(wait bool) error {
	if t == nil || t.done {
		return nil
	}
	t.done = true
	w := t.w
	defer w.ddlGate.RUnlock()
	if len(t.touched) == 0 {
		return nil
	}
	var firstErr error
	for _, k := range t.order {
		tp := t.touched[k]
		p, err := tp.f.GetPageProf(tp.page, t.prof)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		w.mu.Lock()
		lsn := w.nextLSN
		w.nextLSN++
		SetPageLSN(p.Data[:PageSize], lsn)
		w.appendLocked(lsn, t.id, WALAfterImage, tp.f.base, tp.page, 0, p.Data[:PageSize], 0)
		w.mu.Unlock()
		p.fr.lsn.Store(lsn)
		p.MarkDirty()
		p.Release()
	}
	w.mu.Lock()
	clsn := w.nextLSN
	w.nextLSN++
	w.appendLocked(clsn, t.id, WALCommit, "", 0, 0, nil, t.owner)
	delete(w.active, t.id)
	err := w.err
	w.mu.Unlock()
	if firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return firstErr
	}
	if wait {
		if t.prof != nil {
			t0 := time.Now()
			err := w.WaitDurable(clsn)
			t.prof.AddFsync(time.Since(t0))
			return err
		}
		return w.WaitDurable(clsn)
	}
	w.kickFlusher()
	return nil
}

// CommitTxn logs the MVCC commit record for owner and, if wait, blocks
// until it is durable. This is the commit point of a multi-statement
// transaction: recovery treats an owner with no durable WALTxnCommit as
// aborted, so its versions stay invisible after a crash.
func (w *WAL) CommitTxn(owner uint64, wait bool) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("storage: wal closed")
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.appendLocked(lsn, 0, WALTxnCommit, "", 0, 0, nil, owner)
	w.mu.Unlock()
	if wait {
		return w.WaitDurable(lsn)
	}
	w.kickFlusher()
	return nil
}

// CheckpointBegin logs a begin-checkpoint record and returns the redo
// scan start: the oldest LSN any in-flight transaction might still
// need, or the checkpoint's own LSN when the log is quiet.
func (w *WAL) CheckpointBegin() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	lsn := w.nextLSN
	w.nextLSN++
	w.appendLocked(lsn, 0, WALCheckpointBegin, "", 0, 0, nil, 0)
	scan := lsn
	for _, first := range w.active {
		if first < scan {
			scan = first
		}
	}
	w.mu.Unlock()
	return scan
}

// CheckpointEnd logs the end-checkpoint record carrying scanStart,
// forces it durable, and opportunistically compacts the log.
func (w *WAL) CheckpointEnd(scanStart uint64) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	lsn := w.nextLSN
	w.nextLSN++
	w.appendLocked(lsn, 0, WALCheckpointEnd, "", 0, 0, nil, scanStart)
	w.mu.Unlock()
	if err := w.flushNow(lsn); err != nil {
		return err
	}
	w.maybeCompact()
	return nil
}

// maybeCompact truncates the log down to a fresh header when nothing in
// it can matter anymore: no transaction in flight, nothing staged,
// everything durable. The caller has just checkpointed, so every page
// image the old records could redo is already on disk.
func (w *WAL) maybeCompact() {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.fileBytes < walCompactMin {
		return
	}
	w.mu.Lock()
	ok := len(w.active) == 0 && len(w.buf) == 0 &&
		w.err == nil && !w.closed && w.durable.Load() == w.bufEnd
	base := w.nextLSN
	w.mu.Unlock()
	if !ok {
		return
	}
	if err := ResetWAL(w.path, base); err != nil {
		w.fail(err)
		return
	}
	nf, err := w.openFile(w.path)
	if err != nil {
		w.fail(err)
		return
	}
	w.f.Close()
	w.f = nf
	w.fileBytes = walHeaderSize
}

// ResetWAL atomically replaces the log at path with an empty one whose
// records will start at nextLSN. Used after recovery has replayed the
// old log, and by checkpoint compaction.
func ResetWAL(path string, nextLSN uint64) error {
	hdr := make([]byte, walHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], nextLSN)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadWALRecords decodes the log at path, stopping cleanly at the first
// torn or corrupt record — a crash mid-append leaves exactly such a
// tail, and everything before it is still trustworthy. Returns the
// decoded records, the header's base LSN, and the byte offset of the
// end of the last valid record.
func ReadWALRecords(path string) (recs []WALRecord, baseLSN uint64, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(data) < walHeaderSize {
		return nil, 0, 0, fmt.Errorf("storage: wal %s: short header", path)
	}
	if binary.LittleEndian.Uint32(data[0:4]) != walMagic {
		return nil, 0, 0, fmt.Errorf("storage: wal %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != walVersion {
		return nil, 0, 0, fmt.Errorf("storage: wal %s: unsupported version %d", path, v)
	}
	baseLSN = binary.LittleEndian.Uint64(data[8:16])
	off := int64(walHeaderSize)
	want := baseLSN
	for {
		rec, next, ok := decodeWALRecord(data, off, want)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off = next
		want = rec.LSN + 1
	}
	return recs, baseLSN, off, nil
}

// decodeWALRecord validates and decodes one record at off. wantLSN
// guards against stale bytes beyond a logical truncation point: LSNs
// must be exactly sequential.
func decodeWALRecord(data []byte, off int64, wantLSN uint64) (WALRecord, int64, bool) {
	var rec WALRecord
	if int64(len(data))-off < walFrameSize {
		return rec, 0, false
	}
	bodyLen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	if bodyLen < walBodyFixed || bodyLen > walMaxBody {
		return rec, 0, false
	}
	if int64(len(data))-off-walFrameSize < bodyLen {
		return rec, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	body := data[off+walFrameSize : off+walFrameSize+bodyLen]
	if crc32.ChecksumIEEE(body) != crc {
		return rec, 0, false
	}
	rec.LSN = binary.LittleEndian.Uint64(body[0:8])
	if rec.LSN != wantLSN {
		return rec, 0, false
	}
	rec.Txn = binary.LittleEndian.Uint64(body[8:16])
	rec.Type = body[16]
	p := body[walBodyFixed:]
	switch rec.Type {
	case WALBeforeImage, WALAfterImage:
		if len(p) < 2 {
			return rec, 0, false
		}
		nameLen := int(binary.LittleEndian.Uint16(p[0:2]))
		if len(p) != 2+nameLen+4+8+PageSize {
			return rec, 0, false
		}
		rec.File = string(p[2 : 2+nameLen])
		o := 2 + nameLen
		rec.Page = binary.LittleEndian.Uint32(p[o : o+4])
		rec.PrevLSN = binary.LittleEndian.Uint64(p[o+4 : o+12])
		rec.Image = p[o+12:]
	case WALCheckpointBegin:
		if len(p) != 0 {
			return rec, 0, false
		}
	case WALCommit, WALTxnCommit:
		// Pre-MVCC logs carried no payload on WALCommit; accept both.
		switch len(p) {
		case 0:
		case 8:
			rec.Owner = binary.LittleEndian.Uint64(p[0:8])
		default:
			return rec, 0, false
		}
	case WALCheckpointEnd:
		if len(p) != 8 {
			return rec, 0, false
		}
		rec.ScanStart = binary.LittleEndian.Uint64(p[0:8])
	default:
		return rec, 0, false
	}
	return rec, off + walFrameSize + bodyLen, true
}
