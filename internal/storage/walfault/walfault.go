// Package walfault provides a fault-injecting storage.WALFile for
// crash-simulation tests: it can drop every byte past a chosen offset
// (simulating a crash before those bytes reached the disk), tear the
// write that crosses the offset by appending garbage, or fail fsync.
// Inject it through engine.Config.WALOpen / storage.WALOptions.OpenFile.
package walfault

import (
	"math/rand"
	"os"
	"sync"

	"repro/internal/storage"
)

// File wraps an *os.File as a storage.WALFile with injectable faults.
type File struct {
	mu      sync.Mutex
	f       *os.File
	written int64 // bytes accepted so far (including dropped ones)
	limit   int64 // -1: no limit; else drop bytes past this offset
	torn    bool  // replace the cut with garbage instead of a clean stop
	failSync error
	syncs    int64
	rng      *rand.Rand
}

// Open opens path in append mode, wrapped for fault injection.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, written: st.Size(), limit: -1, rng: rand.New(rand.NewSource(1))}, nil
}

// Opener adapts Open to the storage.WALOptions.OpenFile seam, handing
// each opened file to register (so the test can arm faults on it).
func Opener(register func(*File)) func(string) (storage.WALFile, error) {
	return func(path string) (storage.WALFile, error) {
		f, err := Open(path)
		if err != nil {
			return nil, err
		}
		if register != nil {
			register(f)
		}
		return f, nil
	}
}

// SetLimit arms the fault: bytes at file offset >= limit are silently
// dropped, as if the process died before they hit the platter.
func (w *File) SetLimit(limit int64) {
	w.mu.Lock()
	w.limit = limit
	w.mu.Unlock()
}

// SetTorn makes the cut at the limit dirty: the truncated write's tail
// is replaced with pseudo-random garbage up to the attempted length,
// simulating a torn sector.
func (w *File) SetTorn(torn bool) {
	w.mu.Lock()
	w.torn = torn
	w.mu.Unlock()
}

// FailSync makes every subsequent Sync return err (nil re-arms success).
func (w *File) FailSync(err error) {
	w.mu.Lock()
	w.failSync = err
	w.mu.Unlock()
}

// Syncs returns the number of successful Sync calls.
func (w *File) Syncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Written returns the logical bytes appended so far (dropped or not).
func (w *File) Written() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Write appends p, applying the armed truncation/torn-write fault. It
// always reports full success to the caller — the process believes the
// write landed, exactly like a crash after write() but before fsync.
func (w *File) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := w.written
	w.written += int64(len(p))
	if w.limit < 0 || start+int64(len(p)) <= w.limit {
		if _, err := w.f.Write(p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	keep := w.limit - start
	if keep < 0 {
		keep = 0
	}
	out := p[:keep]
	if w.torn {
		garbage := make([]byte, len(p)-int(keep))
		w.rng.Read(garbage)
		out = append(append([]byte{}, out...), garbage...)
	}
	if len(out) > 0 {
		if _, err := w.f.Write(out); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Sync fsyncs the backing file unless armed to fail.
func (w *File) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failSync != nil {
		return w.failSync
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs++
	return nil
}

// Close closes the backing file.
func (w *File) Close() error { return w.f.Close() }
