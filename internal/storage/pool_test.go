package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fillPage writes a deterministic pattern for page pg into the file and
// flushes it, so later reads can verify frame integrity.
func fillPage(t *testing.T, f *File, pg uint32, tag byte) {
	t.Helper()
	p, err := f.GetPage(pg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Data {
		p.Data[i] = tag
	}
	p.MarkDirty()
	p.Release()
}

func pageTag(pg uint32, fileIdx int) byte {
	return byte(pg*7 + uint32(fileIdx)*13 + 1)
}

// TestPoolColdPageConcurrentGet hammers a single cold page from many
// goroutines. With the load latch, every getter must observe the fully
// read page — never a zero or partially filled frame (the old pool
// published the frame before the read completed).
func TestPoolColdPageConcurrentGet(t *testing.T) {
	pool := NewPool(32)
	f := newTestFile(t, pool)
	pg, _ := f.Allocate()
	fillPage(t, f, pg, 0xAB)
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, PageSize)

	for round := 0; round < 20; round++ {
		pool.dropFile(f) // make the page cold again
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, err := f.GetPage(pg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(p.Data, want) {
					t.Errorf("round %d: got partially loaded frame (first byte %#x)", round, p.Data[0])
				}
				p.Release()
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestPoolColdPageReadErrorObserved closes the underlying descriptor and
// then races many getters at a cold page: every one of them must see the
// read error through the load latch. None may succeed with garbage data.
func TestPoolColdPageReadErrorObserved(t *testing.T) {
	pool := NewPool(32)
	f, err := OpenFile(filepath.Join(t.TempDir(), "err.dat"), pool)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := f.Allocate()
	fillPage(t, f, pg, 0x55)
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	pool.dropFile(f)
	f.f.Close() // force every subsequent physical read to fail

	var wg sync.WaitGroup
	got := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := f.GetPage(pg)
			if err == nil {
				p.Release()
			}
			got[i] = err
		}(g)
	}
	wg.Wait()
	for i, err := range got {
		if err == nil {
			t.Fatalf("getter %d succeeded on a page whose read must fail", i)
		}
	}
	if res := pool.Resident(); res != 0 {
		t.Errorf("failed loads left %d resident frames", res)
	}
}

// TestPoolMixedStress runs concurrent get/release (clean and dirty),
// flushes and drops over two files sharing one overcommitted pool. Run
// under -race this exercises the shard locks, the load latch, the
// write-back latch and eviction against each other. Every read checks
// the page's deterministic pattern, so a lost update or stale re-read
// after eviction shows up as corruption.
func TestPoolMixedStress(t *testing.T) {
	const (
		nFiles       = 2
		pagesPerFile = 96
	)
	pool := NewPool(128) // 4 shards, overcommitted 1.5x
	files := make([]*File, nFiles)
	for i := range files {
		files[i] = newTestFile(t, pool)
		for pg := uint32(0); pg < pagesPerFile; pg++ {
			if _, err := files[i].Allocate(); err != nil {
				t.Fatal(err)
			}
			fillPage(t, files[i], pg, pageTag(pg, i))
		}
		if err := files[i].Flush(); err != nil {
			t.Fatal(err)
		}
	}

	iters := 4000
	if testing.Short() {
		iters = 800
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				fi := r.Intn(nFiles)
				f := files[fi]
				switch r.Intn(20) {
				case 0:
					if err := f.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				case 1:
					// Drop without closing: discards cached frames, the
					// file stays readable so later gets re-load from disk.
					pool.dropFile(f)
				default:
					pg := uint32(r.Intn(pagesPerFile))
					p, err := f.GetPage(pg)
					if err != nil {
						t.Errorf("get %d/%d: %v", fi, pg, err)
						return
					}
					if tag := pageTag(pg, fi); p.Data[0] != tag || p.Data[PageSize-1] != tag {
						t.Errorf("page %d/%d corrupt: %#x..%#x want %#x", fi, pg, p.Data[0], p.Data[PageSize-1], tag)
						p.Release()
						return
					}
					if r.Intn(4) == 0 {
						p.MarkDirty() // content unchanged; exercises write-back
					}
					p.Release()
				}
			}
		}(int64(g) * 7919)
	}
	wg.Wait()
	if res, c := pool.Resident(), pool.Capacity(); res > c {
		t.Errorf("resident %d exceeds capacity %d", res, c)
	}
}

// TestPoolFlushDuringConcurrentScan flushes a file repeatedly while
// readers scan all of its pages and a writer keeps re-dirtying them.
// Afterwards the on-disk image must match the deterministic pattern.
func TestPoolFlushDuringConcurrentScan(t *testing.T) {
	const pages = 64
	pool := NewPool(32) // half the working set: scans force eviction
	path := filepath.Join(t.TempDir(), "scan.dat")
	f, err := OpenFile(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	for pg := uint32(0); pg < pages; pg++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
		fillPage(t, f, pg, pageTag(pg, 0))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() { // scanner
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for pg := uint32(0); pg < pages; pg++ {
					p, err := f.GetPage(pg)
					if err != nil {
						t.Errorf("scan get %d: %v", pg, err)
						return
					}
					if tag := pageTag(pg, 0); p.Data[0] != tag {
						t.Errorf("scan page %d corrupt: %#x want %#x", pg, p.Data[0], tag)
						p.Release()
						return
					}
					p.Release()
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // writer re-dirtying pages with the same pattern
		defer wg.Done()
		r := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				return
			default:
			}
			pg := uint32(r.Intn(pages))
			p, err := f.GetPage(pg)
			if err != nil {
				t.Errorf("writer get %d: %v", pg, err)
				return
			}
			tag := pageTag(pg, 0)
			for i := range p.Data {
				p.Data[i] = tag
			}
			p.MarkDirty()
			p.Release()
		}
	}()

	flushes := 50
	if testing.Short() {
		flushes = 10
	}
	for i := 0; i < flushes; i++ {
		if err := f.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open with a fresh pool: what is on disk must be the pattern.
	f2, err := OpenFile(path, NewPool(pages))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for pg := uint32(0); pg < pages; pg++ {
		p, err := f2.GetPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		if tag := pageTag(pg, 0); p.Data[0] != tag || p.Data[PageSize-1] != tag {
			t.Errorf("disk page %d corrupt after flush storm: %#x want %#x", pg, p.Data[0], tag)
		}
		p.Release()
	}
}

// TestPoolEvictionWriteBackFailurePreservesData forces a dirty
// eviction whose write-back fails and checks that the victim's data is
// not lost: the frame must be re-published (still dirty) so later
// reads hit it in memory and a later flush can persist it. The old
// pool discarded the only up-to-date copy and silently served stale
// on-disk bytes afterwards.
func TestPoolEvictionWriteBackFailurePreservesData(t *testing.T) {
	pool := NewPool(8) // single shard
	path := filepath.Join(t.TempDir(), "wb.dat")
	f, err := OpenFile(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 8
	for pg := uint32(0); pg < pages; pg++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
		fillPage(t, f, pg, pageTag(pg, 0)) // dirty, never flushed
	}

	f.f.Close() // every physical write (and read) now fails
	extra, _ := f.Allocate()
	if _, err := f.GetPage(extra); err == nil {
		t.Fatal("get succeeded although the eviction write-back had to fail")
	}

	// Nothing may be lost: all original pages are still resident and
	// served from memory (the descriptor is closed, so any disk read
	// would fail).
	if res := pool.Resident(); res != pages {
		t.Fatalf("resident %d after failed write-back, want %d", res, pages)
	}
	for pg := uint32(0); pg < pages; pg++ {
		p, err := f.GetPage(pg)
		if err != nil {
			t.Fatalf("page %d no longer readable after failed write-back: %v", pg, err)
		}
		if tag := pageTag(pg, 0); p.Data[0] != tag || p.Data[PageSize-1] != tag {
			t.Errorf("page %d corrupt after failed write-back: %#x want %#x", pg, p.Data[0], tag)
		}
		p.Release()
	}

	// Restore the descriptor: the pages are still dirty, so a flush
	// must now persist every one of them.
	ff, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.f = ff
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFile(path, NewPool(pages))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for pg := uint32(0); pg < pages; pg++ {
		p, err := f2.GetPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		if tag := pageTag(pg, 0); p.Data[0] != tag || p.Data[PageSize-1] != tag {
			t.Errorf("disk page %d wrong after retried flush: %#x want %#x", pg, p.Data[0], tag)
		}
		p.Release()
	}
}

// TestPoolFlushConcurrentMutationNoTear flushes while mutators rewrite
// whole pages with changing byte values (each goroutine owns a
// disjoint page range, as engine-level locks guarantee). Flush must
// snapshot a page only while it is unpinned, so every on-disk page
// image is uniform; a flush that reads the frame while a mutator
// writes it shows up as a mixed ("torn") page — and as a data race
// under -race. Eviction pressure (pool holds half the pages) exercises
// the eviction write-back path the same way.
func TestPoolFlushConcurrentMutationNoTear(t *testing.T) {
	const (
		pages    = 64
		nWriters = 4
	)
	pool := NewPool(32)
	path := filepath.Join(t.TempDir(), "tear.dat")
	f, err := OpenFile(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	for pg := uint32(0); pg < pages; pg++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
		fillPage(t, f, pg, 1)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < nWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)*104729 + 1))
			lo, hi := g*pages/nWriters, (g+1)*pages/nWriters
			for {
				select {
				case <-stop:
					return
				default:
				}
				pg := uint32(lo + r.Intn(hi-lo))
				p, err := f.GetPage(pg)
				if err != nil {
					t.Errorf("writer get %d: %v", pg, err)
					return
				}
				tag := byte(r.Intn(255)) + 1
				for i := range p.Data {
					p.Data[i] = tag
				}
				p.MarkDirty()
				p.Release()
			}
		}(g)
	}

	flushes := 100
	if testing.Short() {
		flushes = 20
	}
	for i := 0; i < flushes; i++ {
		if err := f.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenFile(path, NewPool(pages))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for pg := uint32(0); pg < pages; pg++ {
		p, err := f2.GetPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		tag := p.Data[0]
		for i, b := range p.Data {
			if b != tag {
				t.Errorf("disk page %d torn: byte %d is %#x, byte 0 is %#x", pg, i, b, tag)
				break
			}
		}
		p.Release()
	}
}

// TestPoolPinWaitBackpressure pins every frame of a one-shard pool and
// checks that a further get blocks (counting a PinWait) until a pin is
// released, instead of failing immediately.
func TestPoolPinWaitBackpressure(t *testing.T) {
	pool := NewPool(8) // single shard
	if pool.Shards() != 1 {
		t.Fatalf("want 1 shard for capacity 8, got %d", pool.Shards())
	}
	f := newTestFile(t, pool)
	var pinned []*Page
	for i := 0; i < 8; i++ {
		pg, _ := f.Allocate()
		p, err := f.GetPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, p)
	}
	pg, _ := f.Allocate()
	done := make(chan error, 1)
	go func() {
		p, err := f.GetPage(pg)
		if err == nil {
			p.Release()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("get returned (%v) while all frames were pinned; want it to wait", err)
	case <-time.After(50 * time.Millisecond):
	}
	pinned[0].Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("get failed after a frame was unpinned: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("get still blocked after a frame was unpinned")
	}
	if pw := pool.Stats().PinWaits; pw == 0 {
		t.Error("expected PinWaits > 0 while the shard was fully pinned")
	}
	for _, p := range pinned[1:] {
		p.Release()
	}
}

// TestPoolZipfianHitRatio replays one Zipfian page trace through the
// sharded clock-sweep pool and through an exact-LRU simulator of the
// same capacity. Clock (second chance) approximates LRU; its hit ratio
// must stay within a few percentage points.
func TestPoolZipfianHitRatio(t *testing.T) {
	const (
		capacity = 64
		nPages   = 512
		trace    = 40000
	)
	pool := NewPool(capacity)
	f := newTestFile(t, pool)
	for pg := uint32(0); pg < nPages; pg++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	// Materialize on disk so replay reads are plain hits/misses.
	for pg := uint32(0); pg < nPages; pg++ {
		fillPage(t, f, pg, 1)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	pool.dropFile(f)

	r := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(r, 1.1, 1, nPages-1)
	pages := make([]uint32, trace)
	for i := range pages {
		pages[i] = uint32(zipf.Uint64())
	}

	// Exact LRU simulator.
	inCache := map[uint32]bool{}
	order := []uint32{} // front = most recent
	lruHits := 0
	for _, pg := range pages {
		if inCache[pg] {
			lruHits++
			for i, q := range order {
				if q == pg {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append([]uint32{pg}, order...)
			continue
		}
		if len(order) == capacity {
			victim := order[len(order)-1]
			order = order[:len(order)-1]
			delete(inCache, victim)
		}
		inCache[pg] = true
		order = append([]uint32{pg}, order...)
	}

	before := pool.Stats()
	for _, pg := range pages {
		p, err := f.GetPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	after := pool.Stats()

	clockRatio := float64(after.Hits-before.Hits) / float64(trace)
	lruRatio := float64(lruHits) / float64(trace)
	t.Logf("zipfian hit ratio: clock-sweep %.4f, exact LRU %.4f", clockRatio, lruRatio)
	if diff := lruRatio - clockRatio; diff > 0.05 {
		t.Errorf("clock-sweep hit ratio %.4f trails exact LRU %.4f by %.4f (> 0.05)", clockRatio, lruRatio, diff)
	}
	if ev := after.Evictions - before.Evictions; ev == 0 {
		t.Error("trace should have forced evictions")
	}
}
