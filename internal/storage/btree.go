package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
)

// B+Tree node page layout:
//
//	[0]     node type: 1 = leaf, 2 = internal
//	[1]     unused
//	[2:4)   uint16 entry count
//	[4:8)   uint32 next — leaf: right sibling (0 = none);
//	        internal: leftmost child
//	[8:10)  uint16 free-space end (entry bytes grow down from PageSize)
//	[10:..) slot directory: per entry uint16 offset, uint16 klen, uint16 vlen
//
// Page 0 is the meta page: magic, root page number and entry count.
const (
	btLeaf     = 1
	btInternal = 2

	btHeaderSize = 10
	btSlotSize   = 6

	btMagic = 0x42543031 // "BT01"
)

// MaxEntrySize bounds len(key)+len(value) for a single B-Tree entry so
// that at least three entries fit per node, keeping splits well-formed.
const MaxEntrySize = (PageDataSize-btHeaderSize)/3 - btSlotSize

func btType(d []byte) byte       { return d[0] }
func btCount(d []byte) int       { return int(binary.LittleEndian.Uint16(d[2:4])) }
func btNext(d []byte) uint32     { return binary.LittleEndian.Uint32(d[4:8]) }
func btFreeEnd(d []byte) int     { return int(binary.LittleEndian.Uint16(d[8:10])) }
func btSetType(d []byte, t byte) { d[0] = t }
func btSetCount(d []byte, n int) { binary.LittleEndian.PutUint16(d[2:4], uint16(n)) }
func btSetNext(d []byte, p uint32) {
	binary.LittleEndian.PutUint32(d[4:8], p)
}
func btSetFreeEnd(d []byte, n int) { binary.LittleEndian.PutUint16(d[8:10], uint16(n)) }

func btSlot(d []byte, i int) (off, klen, vlen int) {
	base := btHeaderSize + i*btSlotSize
	return int(binary.LittleEndian.Uint16(d[base : base+2])),
		int(binary.LittleEndian.Uint16(d[base+2 : base+4])),
		int(binary.LittleEndian.Uint16(d[base+4 : base+6]))
}

func btSetSlot(d []byte, i, off, klen, vlen int) {
	base := btHeaderSize + i*btSlotSize
	binary.LittleEndian.PutUint16(d[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(d[base+2:base+4], uint16(klen))
	binary.LittleEndian.PutUint16(d[base+4:base+6], uint16(vlen))
}

func btKey(d []byte, i int) []byte {
	off, klen, _ := btSlot(d, i)
	return d[off : off+klen]
}

func btVal(d []byte, i int) []byte {
	off, klen, vlen := btSlot(d, i)
	return d[off+klen : off+klen+vlen]
}

// btSearch returns the index of the first entry with key >= target and
// whether an exact match was found.
func btSearch(d []byte, target []byte) (int, bool) {
	lo, hi := 0, btCount(d)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(btKey(d, mid), target) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

func btFreeSpace(d []byte) int {
	free := btFreeEnd(d)
	if free == 0 {
		free = PageDataSize // fresh zero page; entries stop short of the LSN trailer
	}
	return free - btHeaderSize - btCount(d)*btSlotSize
}

// btInsertAt inserts (key, val) at index i, returning false if the node
// lacks space even after compaction.
func btInsertAt(d []byte, i int, key, val []byte) bool {
	need := btSlotSize + len(key) + len(val)
	if btFreeSpace(d) < need {
		if btLiveSpace(d)+need > PageDataSize-btHeaderSize {
			return false
		}
		btCompact(d)
		if btFreeSpace(d) < need {
			return false
		}
	}
	n := btCount(d)
	free := btFreeEnd(d)
	if free == 0 {
		free = PageDataSize
	}
	off := free - len(key) - len(val)
	copy(d[off:], key)
	copy(d[off+len(key):], val)
	// Shift the slot directory up to make room at i.
	base := btHeaderSize
	copy(d[base+(i+1)*btSlotSize:base+(n+1)*btSlotSize], d[base+i*btSlotSize:base+n*btSlotSize])
	btSetSlot(d, i, off, len(key), len(val))
	btSetCount(d, n+1)
	btSetFreeEnd(d, off)
	return true
}

// btRemoveAt deletes the entry at index i (its bytes become dead space
// until the next compaction).
func btRemoveAt(d []byte, i int) {
	n := btCount(d)
	base := btHeaderSize
	copy(d[base+i*btSlotSize:base+(n-1)*btSlotSize], d[base+(i+1)*btSlotSize:base+n*btSlotSize])
	btSetCount(d, n-1)
}

// btLiveSpace returns the bytes needed to store all live entries.
func btLiveSpace(d []byte) int {
	total := btCount(d) * btSlotSize
	for i := 0; i < btCount(d); i++ {
		_, klen, vlen := btSlot(d, i)
		total += klen + vlen
	}
	return total
}

// btCompact rewrites the node with entries packed contiguously.
func btCompact(d []byte) {
	n := btCount(d)
	type ent struct{ k, v []byte }
	ents := make([]ent, n)
	for i := 0; i < n; i++ {
		ents[i] = ent{append([]byte(nil), btKey(d, i)...), append([]byte(nil), btVal(d, i)...)}
	}
	free := PageDataSize
	for i, e := range ents {
		free -= len(e.k) + len(e.v)
		copy(d[free:], e.k)
		copy(d[free+len(e.k):], e.v)
		btSetSlot(d, i, free, len(e.k), len(e.v))
	}
	btSetFreeEnd(d, free)
}

// BTree is a disk-backed B+Tree mapping byte-string keys to values.
// Keys are unique; callers that need duplicates (secondary indexes)
// append the TID to the key. Access is latched with a per-tree
// RWMutex: lookups and iterator refills hold the read side, Put/Delete
// the write side. Under MVCC the engine serializes writers per table
// with its statement write gate, so the latch's job is to keep reader
// page accesses race-free against the one active writer.
type BTree struct {
	file  *File
	mu    sync.RWMutex
	root  uint32
	count int64
}

// CreateBTree initializes a new B+Tree in an empty file.
func CreateBTree(file *File) (*BTree, error) {
	if file.Pages() != 0 {
		return nil, fmt.Errorf("storage: CreateBTree on non-empty file %s", file.Path())
	}
	if _, err := file.Allocate(); err != nil { // meta
		return nil, err
	}
	rootPage, err := file.Allocate()
	if err != nil {
		return nil, err
	}
	t := &BTree{file: file, root: rootPage}
	p, err := file.GetPage(rootPage)
	if err != nil {
		return nil, err
	}
	if err := p.WillModify(); err != nil {
		p.Release()
		return nil, err
	}
	btSetType(p.Data, btLeaf)
	btSetFreeEnd(p.Data, PageDataSize)
	p.MarkDirty()
	p.Release()
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenBTree opens an existing B+Tree.
func OpenBTree(file *File) (*BTree, error) {
	p, err := file.GetPage(0)
	if err != nil {
		return nil, err
	}
	defer p.Release()
	if binary.LittleEndian.Uint32(p.Data[0:4]) != btMagic {
		return nil, fmt.Errorf("storage: %s is not a B-Tree file", file.Path())
	}
	return &BTree{
		file:  file,
		root:  binary.LittleEndian.Uint32(p.Data[4:8]),
		count: int64(binary.LittleEndian.Uint64(p.Data[8:16])),
	}, nil
}

func (t *BTree) writeMeta() error {
	p, err := t.file.GetPage(0)
	if err != nil {
		return err
	}
	if err := p.WillModify(); err != nil {
		p.Release()
		return err
	}
	binary.LittleEndian.PutUint32(p.Data[0:4], btMagic)
	binary.LittleEndian.PutUint32(p.Data[4:8], t.root)
	binary.LittleEndian.PutUint64(p.Data[8:16], uint64(t.count))
	p.MarkDirty()
	p.Release()
	return nil
}

// File returns the underlying page file.
func (t *BTree) File() *File { return t.file }

// Count returns the number of entries.
func (t *BTree) Count() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Height returns the tree height (1 = root is a leaf).
func (t *BTree) Height() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := 1
	page := t.root
	for {
		p, err := t.file.GetPage(page)
		if err != nil {
			return 0, err
		}
		if btType(p.Data) == btLeaf {
			p.Release()
			return h, nil
		}
		page = btNext(p.Data)
		p.Release()
		h++
	}
}

// Get returns the value stored under key.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	page := t.root
	for {
		p, err := t.file.GetPage(page)
		if err != nil {
			return nil, false, err
		}
		d := p.Data
		if btType(d) == btLeaf {
			i, exact := btSearch(d, key)
			if !exact {
				p.Release()
				return nil, false, nil
			}
			out := append([]byte(nil), btVal(d, i)...)
			p.Release()
			return out, true, nil
		}
		page = btChild(d, key)
		p.Release()
	}
}

// btChild returns the child page to follow for key in an internal node:
// the child associated with the greatest separator <= key, or the
// leftmost child if key precedes every separator.
func btChild(d []byte, key []byte) uint32 {
	i, exact := btSearch(d, key)
	if !exact {
		i--
	}
	if i < 0 {
		return btNext(d)
	}
	return binary.LittleEndian.Uint32(btVal(d, i))
}

type splitResult struct {
	split   bool
	sepKey  []byte
	newPage uint32
}

// Put inserts or overwrites key with val.
func (t *BTree) Put(key, val []byte) error {
	if len(key)+len(val) > MaxEntrySize {
		return fmt.Errorf("storage: B-Tree entry of %d bytes exceeds max %d", len(key)+len(val), MaxEntrySize)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	res, inserted, err := t.put(t.root, key, val)
	if err != nil {
		return err
	}
	if res.split {
		// Grow a new root.
		newRoot, err := t.file.Allocate()
		if err != nil {
			return err
		}
		p, err := t.file.GetPage(newRoot)
		if err != nil {
			return err
		}
		if err := p.WillModify(); err != nil {
			p.Release()
			return err
		}
		d := p.Data
		for i := range d[:PageDataSize] {
			d[i] = 0 // the LSN trailer survives the rebuild
		}
		btSetType(d, btInternal)
		btSetFreeEnd(d, PageDataSize)
		btSetNext(d, t.root)
		var child [4]byte
		binary.LittleEndian.PutUint32(child[:], res.newPage)
		btInsertAt(d, 0, res.sepKey, child[:])
		p.MarkDirty()
		p.Release()
		t.root = newRoot
	}
	if inserted {
		t.count++
	}
	return t.writeMeta()
}

func (t *BTree) put(page uint32, key, val []byte) (splitResult, bool, error) {
	p, err := t.file.GetPage(page)
	if err != nil {
		return splitResult{}, false, err
	}
	d := p.Data
	if btType(d) == btLeaf {
		i, exact := btSearch(d, key)
		if err := p.WillModify(); err != nil {
			p.Release()
			return splitResult{}, false, err
		}
		if exact {
			btRemoveAt(d, i)
			if !btInsertAt(d, i, key, val) {
				res, err := t.splitLeaf(p, page, i, key, val)
				return res, false, err
			}
			p.MarkDirty()
			p.Release()
			return splitResult{}, false, nil
		}
		if btInsertAt(d, i, key, val) {
			p.MarkDirty()
			p.Release()
			return splitResult{}, true, nil
		}
		res, err := t.splitLeaf(p, page, i, key, val)
		return res, true, err
	}

	childPage := btChild(d, key)
	p.Release()
	res, inserted, err := t.put(childPage, key, val)
	if err != nil || !res.split {
		return splitResult{}, inserted, err
	}
	// Insert the new separator into this internal node.
	p, err = t.file.GetPage(page)
	if err != nil {
		return splitResult{}, inserted, err
	}
	d = p.Data
	i, _ := btSearch(d, res.sepKey)
	var child [4]byte
	binary.LittleEndian.PutUint32(child[:], res.newPage)
	if err := p.WillModify(); err != nil {
		p.Release()
		return splitResult{}, inserted, err
	}
	if btInsertAt(d, i, res.sepKey, child[:]) {
		p.MarkDirty()
		p.Release()
		return splitResult{}, inserted, nil
	}
	up, err := t.splitInternal(p, page, i, res.sepKey, child[:])
	return up, inserted, err
}

// splitLeaf splits the full leaf p, inserting (key, val) at logical
// index i, and returns the separator for the parent. p is released.
func (t *BTree) splitLeaf(p *Page, page uint32, i int, key, val []byte) (splitResult, error) {
	ents := collectEntries(p.Data, i, key, val)
	next := btNext(p.Data)

	newPage, err := t.file.Allocate()
	if err != nil {
		p.Release()
		return splitResult{}, err
	}
	np, err := t.file.GetPage(newPage)
	if err != nil {
		p.Release()
		return splitResult{}, err
	}
	if err := np.WillModify(); err != nil {
		p.Release()
		np.Release()
		return splitResult{}, err
	}

	mid := splitPoint(ents)
	rebuildNode(p.Data, btLeaf, newPage, ents[:mid])
	rebuildNode(np.Data, btLeaf, next, ents[mid:])
	sep := append([]byte(nil), ents[mid].k...)

	p.MarkDirty()
	np.MarkDirty()
	p.Release()
	np.Release()
	return splitResult{split: true, sepKey: sep, newPage: newPage}, nil
}

// splitInternal splits the full internal node p, inserting (key, child)
// at index i. The middle separator moves up. p is released.
func (t *BTree) splitInternal(p *Page, page uint32, i int, key, child []byte) (splitResult, error) {
	ents := collectEntries(p.Data, i, key, child)
	leftmost := btNext(p.Data)

	newPage, err := t.file.Allocate()
	if err != nil {
		p.Release()
		return splitResult{}, err
	}
	np, err := t.file.GetPage(newPage)
	if err != nil {
		p.Release()
		return splitResult{}, err
	}
	if err := np.WillModify(); err != nil {
		p.Release()
		np.Release()
		return splitResult{}, err
	}

	mid := splitPoint(ents)
	if mid == len(ents)-1 {
		mid-- // the moved-up separator must leave the right side non-empty
	}
	if mid < 1 {
		mid = 1
	}
	up := ents[mid]
	rightLeftmost := binary.LittleEndian.Uint32(up.v)
	rebuildNode(p.Data, btInternal, leftmost, ents[:mid])
	rebuildNode(np.Data, btInternal, rightLeftmost, ents[mid+1:])
	sep := append([]byte(nil), up.k...)

	p.MarkDirty()
	np.MarkDirty()
	p.Release()
	np.Release()
	return splitResult{split: true, sepKey: sep, newPage: newPage}, nil
}

type btEnt struct{ k, v []byte }

// collectEntries copies all entries of a node plus the pending (key,
// val) inserted at index i, in order.
func collectEntries(d []byte, i int, key, val []byte) []btEnt {
	n := btCount(d)
	ents := make([]btEnt, 0, n+1)
	for j := 0; j < n; j++ {
		if j == i {
			ents = append(ents, btEnt{append([]byte(nil), key...), append([]byte(nil), val...)})
		}
		ents = append(ents, btEnt{
			append([]byte(nil), btKey(d, j)...),
			append([]byte(nil), btVal(d, j)...),
		})
	}
	if i >= n {
		ents = append(ents, btEnt{append([]byte(nil), key...), append([]byte(nil), val...)})
	}
	return ents
}

// splitPoint chooses the index that balances the byte weight of the two
// halves.
func splitPoint(ents []btEnt) int {
	total := 0
	for _, e := range ents {
		total += len(e.k) + len(e.v) + btSlotSize
	}
	acc := 0
	for i, e := range ents {
		acc += len(e.k) + len(e.v) + btSlotSize
		if acc >= total/2 {
			if i+1 >= len(ents) {
				return len(ents) - 1
			}
			return i + 1
		}
	}
	return len(ents) / 2
}

// rebuildNode rewrites d as a node of the given type containing ents,
// with the given next pointer.
func rebuildNode(d []byte, typ byte, next uint32, ents []btEnt) {
	for i := range d[:PageDataSize] {
		d[i] = 0 // the LSN trailer survives the rebuild
	}
	btSetType(d, typ)
	btSetNext(d, next)
	btSetFreeEnd(d, PageDataSize)
	for i, e := range ents {
		btInsertAt(d, i, e.k, e.v)
	}
}

// Delete removes key if present, reporting whether it was found. Leaves
// are not rebalanced (lazy deletion, as with heap slots).
func (t *BTree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	page := t.root
	for {
		p, err := t.file.GetPage(page)
		if err != nil {
			return false, err
		}
		d := p.Data
		if btType(d) == btLeaf {
			i, exact := btSearch(d, key)
			if !exact {
				p.Release()
				return false, nil
			}
			if err := p.WillModify(); err != nil {
				p.Release()
				return false, err
			}
			btRemoveAt(d, i)
			p.MarkDirty()
			p.Release()
			t.count--
			return true, t.writeMeta()
		}
		page = btChild(d, key)
		p.Release()
	}
}

// Iterator walks leaf entries in key order. It is key-stable under
// concurrent writers: instead of remembering a (page, index) position —
// which splits and deletions would silently shift — it buffers the
// remainder of one leaf per refill (copied into a reused arena under
// the tree's read latch) and re-seeks from the root for the successor
// of the last served key when the buffer drains. Between refills it
// holds no latch and no pins, so an iterator abandoned mid-scan cannot
// block writers.
type Iterator struct {
	t      *BTree
	prof   *WaitProf // wait attribution for flagged statements; usually nil
	err    error
	done   bool
	primed bool   // first refill happened; lastKey is the resume point
	start  []byte // original seek target
	last   []byte // last key served (resume at its successor)
	target []byte // reused successor buffer
	arena  []byte // backing bytes of the buffered entries
	ents   []btEntSpan
	pos    int
	key    []byte
	val    []byte
}

// btEntSpan locates one buffered entry inside the iterator arena.
type btEntSpan struct{ koff, kend, vend int }

// Seek positions an iterator at the first entry with key >= start (or
// the first entry overall if start is nil). The descent is deferred to
// the first Next call.
func (t *BTree) Seek(start []byte) *Iterator { return t.SeekProf(start, nil) }

// SeekProf is Seek with a wait profiler attached to every refill
// descent of the resulting iterator.
func (t *BTree) SeekProf(start []byte, prof *WaitProf) *Iterator {
	it := &Iterator{t: t, prof: prof}
	if start != nil {
		it.start = append([]byte(nil), start...)
	}
	return it
}

// Next advances the iterator, reporting whether an entry is available
// via Key/Value.
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	if it.pos >= len(it.ents) && !it.refill() {
		return false
	}
	e := it.ents[it.pos]
	it.pos++
	it.key = it.arena[e.koff:e.kend]
	it.val = it.arena[e.kend:e.vend]
	it.last = append(it.last[:0], it.key...)
	return true
}

// refill re-seeks from the root under the read latch and buffers the
// rest of the leaf holding the resume key (following right siblings
// while empty). Returns false at the end of the tree or on error.
func (it *Iterator) refill() bool {
	it.arena = it.arena[:0]
	it.ents = it.ents[:0]
	it.pos = 0
	target := it.start
	if it.primed {
		// Successor of the last served key: last || 0x00 is the
		// smallest byte string strictly greater than last.
		it.target = append(it.target[:0], it.last...)
		it.target = append(it.target, 0)
		target = it.target
	}
	it.primed = true

	it.t.mu.RLock()
	defer it.t.mu.RUnlock()
	page := it.t.root
	for {
		p, err := it.t.file.GetPageProf(page, it.prof)
		if err != nil {
			it.err = err
			it.done = true
			return false
		}
		d := p.Data
		if btType(d) == btLeaf {
			for {
				i, _ := btSearch(d, target)
				for n := btCount(d); i < n; i++ {
					koff := len(it.arena)
					it.arena = append(it.arena, btKey(d, i)...)
					kend := len(it.arena)
					it.arena = append(it.arena, btVal(d, i)...)
					it.ents = append(it.ents, btEntSpan{koff, kend, len(it.arena)})
				}
				next := btNext(d)
				p.Release()
				if len(it.ents) > 0 {
					return true
				}
				if next == 0 {
					it.done = true
					return false
				}
				p, err = it.t.file.GetPageProf(next, it.prof)
				if err != nil {
					it.err = err
					it.done = true
					return false
				}
				d = p.Data
			}
		}
		page = btChild(d, target)
		p.Release()
	}
}

// Key returns the current entry's key. Valid until the next call to
// Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current entry's value. Valid until the next call to
// Next.
func (it *Iterator) Value() []byte { return it.val }

// Err returns the first error the iterator encountered.
func (it *Iterator) Err() error { return it.err }
