// Package storage implements the paged storage substrate of the engine:
// a shared buffer pool over page files, slotted heap files with Ingres
// style main/overflow page accounting, and a disk-backed B+Tree used for
// the BTREE storage structure and for secondary indexes.
package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size of every on-disk page in bytes.
const PageSize = 4096

// PoolStats exposes buffer pool counters. All fields are cumulative.
type PoolStats struct {
	Hits      int64 // page requests served from memory
	Misses    int64 // page requests that required a disk read
	DiskReads int64 // physical page reads
	DiskWrite int64 // physical page writes
	Evictions int64 // frames evicted to make room
}

type pageKey struct {
	file uint32
	page uint32
}

type frame struct {
	key   pageKey
	file  *File
	data  [PageSize]byte
	dirty bool
	pins  int32
	lru   *list.Element
}

// Pool is a shared LRU buffer pool. A single pool serves every file of a
// database so that cache pressure is global, as in a real DBMS.
type Pool struct {
	mu       sync.Mutex
	capacity int
	frames   map[pageKey]*frame
	lru      *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	diskReads atomic.Int64
	diskWrite atomic.Int64
	evictions atomic.Int64
}

// NewPool creates a buffer pool holding up to capacity pages. Capacity
// below 8 is raised to 8.
func NewPool(capacity int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	return &Pool{
		capacity: capacity,
		frames:   make(map[pageKey]*frame, capacity),
		lru:      list.New(),
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		DiskReads: p.diskReads.Load(),
		DiskWrite: p.diskWrite.Load(),
		Evictions: p.evictions.Load(),
	}
}

// Capacity returns the configured frame capacity.
func (p *Pool) Capacity() int { return p.capacity }

// Resident returns the number of pages currently cached.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// get pins the frame for (f, page), reading it from disk on a miss.
// Callers must call p.unpin when done. If the page lies past the end of
// the file it is served as a zero page (the file grows on flush).
func (p *Pool) get(f *File, page uint32) (*frame, error) {
	key := pageKey{file: f.id, page: page}
	p.mu.Lock()
	if fr, ok := p.frames[key]; ok {
		fr.pins++
		p.lru.MoveToFront(fr.lru)
		p.mu.Unlock()
		p.hits.Add(1)
		return fr, nil
	}
	// Miss: make room while holding the lock, then read.
	if err := p.evictLocked(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	fr := &frame{key: key, file: f, pins: 1}
	fr.lru = p.lru.PushFront(fr)
	p.frames[key] = fr
	p.mu.Unlock()

	p.misses.Add(1)
	n, err := f.readPage(page, fr.data[:])
	if err != nil {
		p.mu.Lock()
		p.lru.Remove(fr.lru)
		delete(p.frames, key)
		p.mu.Unlock()
		return nil, err
	}
	if n > 0 {
		p.diskReads.Add(1)
	}
	return fr, nil
}

// evictLocked makes room for one more frame. p.mu must be held.
func (p *Pool) evictLocked() error {
	for len(p.frames) >= p.capacity {
		var victim *frame
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			fr := e.Value.(*frame)
			if fr.pins == 0 {
				victim = fr
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", p.capacity)
		}
		if victim.dirty {
			// Writing back outside the lock would be nicer; eviction is
			// rare at our scale and correctness is simpler this way.
			if err := victim.file.writePage(victim.key.page, victim.data[:]); err != nil {
				return err
			}
			p.diskWrite.Add(1)
		}
		p.lru.Remove(victim.lru)
		delete(p.frames, victim.key)
		p.evictions.Add(1)
	}
	return nil
}

// unpin releases a pinned frame, marking it dirty if it was modified.
func (p *Pool) unpin(fr *frame, dirty bool) {
	p.mu.Lock()
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	p.mu.Unlock()
}

// flushFile writes back every dirty frame belonging to f.
func (p *Pool) flushFile(f *File) error {
	p.mu.Lock()
	var dirty []*frame
	for key, fr := range p.frames {
		if key.file == f.id && fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	p.mu.Unlock()
	for _, fr := range dirty {
		p.mu.Lock()
		if !fr.dirty {
			p.mu.Unlock()
			continue
		}
		data := fr.data
		fr.dirty = false
		p.mu.Unlock()
		if err := f.writePage(fr.key.page, data[:]); err != nil {
			return err
		}
		p.diskWrite.Add(1)
	}
	return nil
}

// dropFile discards every cached frame of f without writing it back.
// Used when a file is truncated or deleted.
func (p *Pool) dropFile(f *File) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, fr := range p.frames {
		if key.file == f.id {
			p.lru.Remove(fr.lru)
			delete(p.frames, key)
		}
	}
}
