// Package storage implements the paged storage substrate of the engine:
// a shared buffer pool over page files, slotted heap files with Ingres
// style main/overflow page accounting, and a disk-backed B+Tree used for
// the BTREE storage structure and for secondary indexes.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the size of every on-disk page in bytes.
const PageSize = 4096

// PoolStats exposes buffer pool counters. All fields except Resident
// are cumulative.
type PoolStats struct {
	Hits      int64 // page requests served from memory
	Misses    int64 // page requests that required a disk read
	DiskReads int64 // physical page reads
	DiskWrite int64 // physical page writes
	Evictions int64 // frames evicted to make room
	PinWaits  int64 // backpressure waits because every frame in a shard was pinned
	Resident  int64 // pages currently cached (gauge)
	Fsyncs    int64 // data-file fsyncs issued through File.Sync
}

type pageKey struct {
	file uint32
	page uint32
}

// hash mixes the key through a splitmix64-style finalizer so that
// consecutive pages of one file spread across all shards.
func (k pageKey) hash() uint32 {
	x := uint64(k.file)<<32 | uint64(k.page)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}

// frame is one resident page. A frame is published in its shard's map
// only after its disk read completed (the load latch lives in the
// shard's loading table), so holding a *frame from a hit always means
// the data is valid. pins and dirty are atomics: unpin touches no lock.
type frame struct {
	key   pageKey
	file  *File
	pins  atomic.Int32  // > 0 blocks eviction
	ref   atomic.Uint32 // clock reference bit (second chance)
	dirty atomic.Uint32 // needs write-back before eviction
	lsn   atomic.Uint64 // page-LSN trailer mirror; gates write-back behind the WAL
	data  [PageSize]byte
}

// unpin releases one pin, optionally marking the frame dirty. It is
// lock-free: the dirty bit is set before the pin is released, so an
// evictor that observes pins == 0 also observes the dirty bit.
func (fr *frame) unpin(dirty bool) {
	if dirty {
		fr.dirty.Store(1)
	}
	fr.pins.Add(-1)
}

// pendingLoad is the load latch for a page being read from disk: a
// concurrent getter of the same page blocks on ready instead of
// observing a half-read frame, and sees err exactly as the reading
// goroutine did.
type pendingLoad struct {
	ready   chan struct{} // closed when the read finished
	err     error         // valid after ready is closed
	dropped bool          // set by dropFile: do not publish the frame
}

// pendingWrite is the write-back latch for a page whose latest content
// is in flight to disk but no longer (or not currently safely) in the
// map: a getter that misses must wait for it, or it could re-read the
// page's stale on-disk bytes into the cache (a lost update). At most
// one pendingWrite exists per key; evictors and flushers check the
// table before registering.
type pendingWrite struct {
	done chan struct{} // closed when the write finished
	err  error         // valid after done is closed
}

// poolShard is one partition of the pool: its own lock, frame map,
// fixed clock of frame slots, and in-flight load/write tables. Counter
// fields are atomics so Stats never takes a shard lock.
type poolShard struct {
	mu      sync.Mutex
	frames  map[pageKey]*frame       // published (fully loaded) frames
	loading map[pageKey]*pendingLoad // reads in flight
	writing map[pageKey]*pendingWrite
	clock   []*frame // slots; nil = free. Grows on Resize, never shrinks.
	free    []int    // indices of free clock slots, all < limit
	limit   int      // slots [0, limit) are usable; the rest are retired
	hand    int      // clock hand

	hits      atomic.Int64
	misses    atomic.Int64
	diskReads atomic.Int64
	diskWrite atomic.Int64
	evictions atomic.Int64
	pinWaits  atomic.Int64
	resident  atomic.Int64

	_ [64]byte // keep neighbouring shards off this shard's cache lines
}

// Sharding parameters: enough shards that concurrent sessions rarely
// collide, but never so many that one shard cannot absorb a batch
// scan's maxBatchPins pinned pages with room to spare.
const (
	maxPoolShards      = 16
	minFramesPerShard  = 32
	defaultPinWaitStep = time.Millisecond
	defaultPinWaitMax  = 2 * time.Second

	// flushFrame needs a moment where the frame is unpinned to take a
	// consistent snapshot of the page; pins are short-lived, so it polls
	// on a fine step. The cap only guards against a leaked pin turning a
	// checkpoint into a silent hang.
	flushPinWaitStep = 100 * time.Microsecond
	flushPinWaitMax  = 30 * time.Second
)

// Pool is a shared buffer pool. A single pool serves every file of a
// database so that cache pressure is global, as in a real DBMS. Frames
// are partitioned into power-of-two shards by page-key hash; each
// shard runs an independent clock-sweep (second chance) eviction, so
// there is no global lock and no O(resident) scan on eviction.
type Pool struct {
	capacity  atomic.Int64 // current frame budget; Resize changes it at runtime
	shardMask uint32
	shards    []*poolShard

	// Backpressure instead of hard failure when every frame of a shard
	// is pinned: get retries every pinWaitStep up to pinWaitMax before
	// reporting exhaustion, counting each wait in PinWaits.
	pinWaitStep time.Duration
	pinWaitMax  time.Duration

	resizeMu sync.Mutex // serializes Resize calls

	fsyncs atomic.Int64 // data-file fsyncs (incremented by File.Sync)
}

// NewPool creates a buffer pool holding up to capacity pages. Capacity
// below 8 is raised to 8.
func NewPool(capacity int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	nshards := 1
	for nshards < maxPoolShards && nshards*2*minFramesPerShard <= capacity {
		nshards *= 2
	}
	p := &Pool{
		shardMask:   uint32(nshards - 1),
		shards:      make([]*poolShard, nshards),
		pinWaitStep: defaultPinWaitStep,
		pinWaitMax:  defaultPinWaitMax,
	}
	p.capacity.Store(int64(capacity))
	base, rem := capacity/nshards, capacity%nshards
	for i := range p.shards {
		c := base
		if i < rem {
			c++
		}
		sh := &poolShard{
			frames:  make(map[pageKey]*frame, c),
			loading: map[pageKey]*pendingLoad{},
			writing: map[pageKey]*pendingWrite{},
			clock:   make([]*frame, c),
			free:    make([]int, c),
			limit:   c,
		}
		for s := 0; s < c; s++ {
			sh.free[s] = c - 1 - s // pop from the tail: slot 0 first
		}
		p.shards[i] = sh
	}
	return p
}

// freeSlotLocked returns a clock slot to the shard's free list unless a
// shrink retired it while it was in use — retired slots simply vanish,
// which is how a live Resize converges without waiting on pinned frames
// or in-flight write-backs. sh.mu must be held.
func (sh *poolShard) freeSlotLocked(slot int) {
	if slot < sh.limit {
		sh.free = append(sh.free, slot)
	}
}

// Resize changes the pool's frame budget at runtime and returns the
// effective new capacity. The shard count is fixed at construction;
// each shard's slot limit is raised (new slots appended and freed) or
// lowered (free list filtered, resident frames in retired slots
// evicted — dirty ones written back behind the usual write latch).
// Frames that are pinned or mid-write when a shrink runs stay resident
// and drain later: every slot-free path discards retired slots, so the
// pool converges to the new budget without stalling the workload. The
// requested size is floored at 8 frames per shard so a shrink can never
// starve a shard below what a batch scan pins.
func (p *Pool) Resize(n int) int {
	p.resizeMu.Lock()
	defer p.resizeMu.Unlock()
	nshards := len(p.shards)
	if min := 8 * nshards; n < min {
		n = min
	}
	base, rem := n/nshards, n%nshards
	total := 0
	for i, sh := range p.shards {
		c := base
		if i < rem {
			c++
		}
		total += c
		p.resizeShard(sh, c)
	}
	p.capacity.Store(int64(total))
	return total
}

// resizeShard applies a new slot limit to one shard. Growing is cheap:
// extend the clock slice and free the new slots. Shrinking filters the
// free list and actively evicts frames sitting in retired slots; a
// dirty victim is written back outside the shard lock exactly like an
// eviction in get, including the failure path that re-publishes the
// frame so data is never lost to a resize.
func (p *Pool) resizeShard(sh *poolShard, c int) {
	sh.mu.Lock()
	old := sh.limit
	sh.limit = c
	if c >= old {
		for len(sh.clock) < c {
			sh.clock = append(sh.clock, nil)
		}
		for s := old; s < c; s++ {
			sh.free = append(sh.free, s)
		}
		sh.mu.Unlock()
		return
	}
	keep := sh.free[:0]
	for _, s := range sh.free {
		if s < c {
			keep = append(keep, s)
		}
	}
	sh.free = keep
	for slot := c; slot < len(sh.clock); slot++ {
		fr := sh.clock[slot]
		if fr == nil || fr.pins.Load() != 0 {
			continue // pinned frames drain via freeSlotLocked later
		}
		if _, busy := sh.writing[fr.key]; busy {
			continue // flush in flight relies on the frame staying put
		}
		sh.evictFrameLocked(fr, slot)
		if fr.dirty.Load() == 0 {
			sh.evictions.Add(1)
			continue
		}
		wb := &pendingWrite{done: make(chan struct{})}
		sh.writing[fr.key] = wb
		sh.mu.Unlock()
		werr := fr.file.walBarrier(fr.data[:])
		if werr == nil {
			werr = fr.file.writePage(fr.key.page, fr.data[:])
		}
		sh.mu.Lock()
		delete(sh.writing, fr.key)
		if werr != nil {
			// Same rule as get: the frame holds the only up-to-date
			// copy, so re-publish it (still dirty, before wb.done
			// closes) and leave it for a later flush or eviction.
			sh.frames[fr.key] = fr
			sh.clock[slot] = fr
			sh.resident.Add(1)
		} else {
			sh.diskWrite.Add(1)
			sh.evictions.Add(1)
		}
		wb.err = werr
		close(wb.done)
	}
	sh.mu.Unlock()
}

// SetPinWaitBudget bounds how long get waits for a pinned-full shard
// to free a frame before failing (tests shrink it; zero disables
// waiting entirely, restoring the old fail-fast behaviour).
func (p *Pool) SetPinWaitBudget(max time.Duration) { p.pinWaitMax = max }

// Stats returns a snapshot of the pool counters, summed over shards
// without taking any shard lock.
func (p *Pool) Stats() PoolStats {
	var st PoolStats
	for _, sh := range p.shards {
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.DiskReads += sh.diskReads.Load()
		st.DiskWrite += sh.diskWrite.Load()
		st.Evictions += sh.evictions.Load()
		st.PinWaits += sh.pinWaits.Load()
		st.Resident += sh.resident.Load()
	}
	st.Fsyncs = p.fsyncs.Load()
	return st
}

// Capacity returns the current frame capacity.
func (p *Pool) Capacity() int { return int(p.capacity.Load()) }

// Shards returns the number of shards (observability and tests).
func (p *Pool) Shards() int { return len(p.shards) }

// Resident returns the number of pages currently cached.
func (p *Pool) Resident() int {
	var n int64
	for _, sh := range p.shards {
		n += sh.resident.Load()
	}
	return int(n)
}

// PinnedFrames counts frames currently pinned, across all shards. The
// count is a consistent-enough snapshot for leak assertions: with no
// scan in flight it must be zero — every batch iterator releases its
// pins on exhaustion or Close, including the per-worker iterators of a
// parallel scan that was cancelled mid-flight.
func (p *Pool) PinnedFrames() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, fr := range sh.frames {
			if fr.pins.Load() > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// get pins the frame for (f, page), reading it from disk on a miss.
// Callers must unpin the frame when done. If the page lies past the
// end of the on-disk file it is served as a zero page (the file grows
// on flush). A frame becomes visible to other getters only after its
// read completed: concurrent getters of a cold page block on the load
// latch and observe the read error if the read failed.
//
// prof, when non-nil, receives the time this call spent waiting —
// page reads, load/write latch waits and victim write-backs as I/O,
// victim WAL barriers as fsync, pinned-full backpressure as pin wait.
// The nil case (every unprofiled statement) adds no clock reads.
func (p *Pool) get(f *File, page uint32, prof *WaitProf) (*frame, error) {
	key := pageKey{file: f.id, page: page}
	sh := p.shards[key.hash()&p.shardMask]
	var waited time.Duration
	for {
		sh.mu.Lock()
		if fr, ok := sh.frames[key]; ok {
			fr.pins.Add(1)
			fr.ref.Store(1)
			sh.mu.Unlock()
			sh.hits.Add(1)
			return fr, nil
		}
		if ld, ok := sh.loading[key]; ok {
			sh.mu.Unlock()
			if prof != nil {
				t0 := time.Now()
				<-ld.ready
				prof.AddIO(time.Since(t0))
			} else {
				<-ld.ready
			}
			if ld.err != nil {
				return nil, ld.err
			}
			continue // the loader published the frame; hit it
		}
		if wb, ok := sh.writing[key]; ok {
			// The latest content is mid-flight to disk; wait for it so
			// the re-read below cannot resurrect stale bytes. The
			// write's outcome belongs to its writer, not this read: on
			// success the retry re-reads the fresh bytes, on failure
			// the writer re-published the frame (still dirty) and the
			// retry hits it in memory.
			sh.mu.Unlock()
			if prof != nil {
				t0 := time.Now()
				<-wb.done
				prof.AddIO(time.Since(t0))
			} else {
				<-wb.done
			}
			continue
		}

		// True miss: reserve a clock slot, evicting if necessary.
		var slot int
		if n := len(sh.free); n > 0 {
			slot = sh.free[n-1]
			sh.free = sh.free[:n-1]
		} else {
			victim, vslot := sh.sweepLocked()
			if victim == nil {
				// Every frame pinned (or write-locked): backpressure.
				sh.mu.Unlock()
				sh.pinWaits.Add(1)
				if waited >= p.pinWaitMax {
					return nil, fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned; waited %v)", p.Capacity(), waited)
				}
				time.Sleep(p.pinWaitStep)
				waited += p.pinWaitStep
				if prof != nil {
					prof.AddPinWait(p.pinWaitStep)
				}
				continue
			}
			sh.evictFrameLocked(victim, vslot)
			slot = vslot
			if victim.dirty.Load() != 0 {
				// Write the victim back outside the shard lock. It is
				// unreachable (not in frames, pins == 0), so its data is
				// immutable; the pendingWrite entry keeps re-readers of
				// the victim's page away until the write lands.
				wb := &pendingWrite{done: make(chan struct{})}
				sh.writing[victim.key] = wb
				sh.mu.Unlock()
				// WAL-before-data: the victim's image must not reach disk
				// before the log records that produced it are durable.
				var werr error
				if prof != nil {
					t0 := time.Now()
					werr = victim.file.walBarrier(victim.data[:])
					t1 := time.Now()
					prof.AddFsync(t1.Sub(t0))
					if werr == nil {
						werr = victim.file.writePage(victim.key.page, victim.data[:])
						prof.AddIO(time.Since(t1))
					}
				} else {
					werr = victim.file.walBarrier(victim.data[:])
					if werr == nil {
						werr = victim.file.writePage(victim.key.page, victim.data[:])
					}
				}
				sh.mu.Lock()
				delete(sh.writing, victim.key)
				if werr != nil {
					// The frame holds the only up-to-date copy of the
					// victim's page: re-publish it (still dirty) so the
					// data survives and a later flush or eviction
					// retries the write, then surface the failure. The
					// re-insert happens before wb.done closes, so a
					// getter of the victim's page that waited on wb
					// retries and hits the frame in memory.
					sh.frames[victim.key] = victim
					sh.clock[slot] = victim
					sh.resident.Add(1)
					sh.mu.Unlock()
					wb.err = werr
					close(wb.done)
					return nil, fmt.Errorf("storage: write-back of page %d of %s while evicting: %w", victim.key.page, victim.file.path, werr)
				}
				sh.diskWrite.Add(1)
				sh.evictions.Add(1)
				sh.freeSlotLocked(slot)
				sh.mu.Unlock()
				close(wb.done)
				continue // re-run from the top: our key may have appeared
			}
			sh.evictions.Add(1)
			if slot >= sh.limit {
				// A shrink retired this slot while its frame lingered;
				// the eviction freed the frame but the slot is gone.
				sh.mu.Unlock()
				continue
			}
		}

		// Load the page outside the lock, behind the load latch.
		ld := &pendingLoad{ready: make(chan struct{})}
		sh.loading[key] = ld
		sh.misses.Add(1)
		sh.mu.Unlock()

		fr := &frame{key: key, file: f}
		fr.pins.Store(1)
		fr.ref.Store(1)
		var n int
		var err error
		if prof != nil {
			t0 := time.Now()
			n, err = f.readPage(page, fr.data[:])
			prof.AddIO(time.Since(t0))
		} else {
			n, err = f.readPage(page, fr.data[:])
		}
		if err == nil && f.wal != nil {
			fr.lsn.Store(PageLSN(fr.data[:]))
		}

		sh.mu.Lock()
		delete(sh.loading, key)
		if err != nil {
			sh.freeSlotLocked(slot)
			sh.mu.Unlock()
			ld.err = err
			close(ld.ready)
			return nil, err
		}
		if ld.dropped || slot >= sh.limit {
			// dropFile ran mid-load (hand the frame to the caller but do
			// not cache it), or a shrink retired the slot while the read
			// was in flight.
			sh.freeSlotLocked(slot)
		} else {
			sh.frames[key] = fr
			sh.clock[slot] = fr
			sh.resident.Add(1)
		}
		sh.mu.Unlock()
		if n > 0 {
			sh.diskReads.Add(1)
		}
		close(ld.ready)
		return fr, nil
	}
}

// sweepLocked runs the clock hand over the shard's slots looking for
// an unpinned frame whose reference bit is clear, clearing reference
// bits as it passes (second chance). Frames with a write already in
// flight are skipped: registering a second write for the same page
// could reorder the two writes, and a flush in progress relies on the
// frame staying resident so a failed write can re-mark it dirty.
// Returns nil if every frame is pinned. sh.mu must be held.
func (sh *poolShard) sweepLocked() (*frame, int) {
	n := len(sh.clock)
	for i := 0; i < 2*n; i++ {
		idx := sh.hand
		sh.hand++
		if sh.hand == n {
			sh.hand = 0
		}
		fr := sh.clock[idx]
		if fr == nil || fr.pins.Load() != 0 {
			continue
		}
		if fr.ref.Load() != 0 {
			fr.ref.Store(0) // second chance
			continue
		}
		if _, busy := sh.writing[fr.key]; busy {
			continue
		}
		return fr, idx
	}
	return nil, -1
}

// evictFrameLocked removes fr from the shard's map and clock. The
// caller owns the freed slot and counts the eviction once it is final
// (a failed dirty write-back re-publishes the frame instead). sh.mu
// must be held.
func (sh *poolShard) evictFrameLocked(fr *frame, slot int) {
	delete(sh.frames, fr.key)
	sh.clock[slot] = nil
	sh.resident.Add(-1)
}

// flushFile writes back every dirty frame belonging to f, and waits
// for write-backs of f's pages that were already in flight, so a nil
// return is a real durability barrier: every page that was dirty when
// the flush began is on disk. The dirty set is snapshotted per shard
// in one pass; each frame is then persisted by flushFrame from a
// private copy of the page image.
func (p *Pool) flushFile(f *File) error {
	var (
		dirty        []*frame
		inflight     []*pendingWrite
		inflightKeys []pageKey
	)
	for _, sh := range p.shards {
		sh.mu.Lock()
		for key, fr := range sh.frames {
			if key.file == f.id && fr.dirty.Load() != 0 {
				dirty = append(dirty, fr)
			}
		}
		for key, wb := range sh.writing {
			if key.file == f.id {
				inflight = append(inflight, wb)
				inflightKeys = append(inflightKeys, key)
			}
		}
		sh.mu.Unlock()
	}
	// Writes already in flight (eviction write-backs, an overlapping
	// flush) carry content that was dirty before this flush began; the
	// barrier must include them. A failed write-back re-published its
	// frame still dirty — pick it up for retry below.
	for i, wb := range inflight {
		<-wb.done
		if wb.err == nil {
			continue
		}
		key := inflightKeys[i]
		sh := p.shards[key.hash()&p.shardMask]
		sh.mu.Lock()
		if fr, ok := sh.frames[key]; ok && fr.dirty.Load() != 0 {
			dirty = append(dirty, fr)
		}
		sh.mu.Unlock()
	}
	var buf [PageSize]byte
	for _, fr := range dirty {
		if err := p.flushFrame(f, fr, &buf); err != nil {
			return err
		}
	}
	return nil
}

// flushFrame persists one dirty frame. The page image is copied into
// buf under the shard lock at a moment when the frame is unpinned:
// mutating a page requires a pin and pinning requires the shard lock,
// so the copy is a consistent snapshot and the disk write never reads
// the shared frame — a concurrent session can neither race the write
// nor tear the on-disk page. The pendingWrite entry excludes other
// writers of the same page and (via sweepLocked) keeps the frame
// resident until the write lands, so a failure simply re-marks the
// frame dirty. It is flushFrame, not the caller, that retries when a
// concurrent write of the same page is in flight — skipping would let
// Sync fsync before the page's newest content reached disk.
func (p *Pool) flushFrame(f *File, fr *frame, buf *[PageSize]byte) error {
	sh := p.shards[fr.key.hash()&p.shardMask]
	var waited time.Duration
	for {
		sh.mu.Lock()
		if cur, ok := sh.frames[fr.key]; !ok || cur != fr {
			// Evicted since the snapshot: the evictor's write-back
			// persists the content. Wait for it if it is still in
			// flight; if it failed, the frame was re-published dirty,
			// so retry from the top.
			wb := sh.writing[fr.key]
			sh.mu.Unlock()
			if wb != nil {
				<-wb.done
				if wb.err != nil {
					continue
				}
			}
			return nil
		}
		if wb, busy := sh.writing[fr.key]; busy {
			sh.mu.Unlock()
			<-wb.done
			continue
		}
		if fr.dirty.Load() == 0 {
			sh.mu.Unlock()
			return nil
		}
		if fr.pins.Load() != 0 {
			// A pinned frame may be mid-mutation; copying it now could
			// capture a torn page. Pins are short-lived: wait for a gap.
			sh.mu.Unlock()
			if waited >= flushPinWaitMax {
				return fmt.Errorf("storage: flush page %d of %s: frame continuously pinned for %v", fr.key.page, f.path, waited)
			}
			time.Sleep(flushPinWaitStep)
			waited += flushPinWaitStep
			continue
		}
		fr.dirty.Store(0)
		wb := &pendingWrite{done: make(chan struct{})}
		sh.writing[fr.key] = wb
		copy(buf[:], fr.data[:])
		sh.mu.Unlock()

		// WAL-before-data: hold the page write until the log covering
		// its trailer LSN is durable.
		err := f.walBarrier(buf[:])
		if err == nil {
			err = f.writePage(fr.key.page, buf[:])
		}
		if err == nil {
			sh.diskWrite.Add(1)
		}
		sh.mu.Lock()
		delete(sh.writing, fr.key)
		sh.mu.Unlock()
		wb.err = err
		close(wb.done)
		if err != nil {
			fr.dirty.Store(1) // still dirty; retried by the next flush
			return err
		}
		return nil
	}
}

// dropFile discards every cached frame of f without writing it back.
// Used when a file is truncated or deleted. Write-backs of f's pages
// already in flight are drained first, so a failed one cannot
// re-publish a frame after the drop and no write can land on (or
// error against) a descriptor the caller is about to close. Loads in
// flight for f are marked so their frames are handed to their callers
// but not cached.
func (p *Pool) dropFile(f *File) {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for {
			var pending []*pendingWrite
			for key, wb := range sh.writing {
				if key.file == f.id {
					pending = append(pending, wb)
				}
			}
			if pending == nil {
				break
			}
			sh.mu.Unlock()
			for _, wb := range pending {
				<-wb.done
			}
			sh.mu.Lock()
		}
		// The lock is held and no write-back of f is in flight; after
		// the frames are removed none can start, because registering
		// one requires a resident frame of f.
		for slot, fr := range sh.clock {
			if fr != nil && fr.key.file == f.id {
				delete(sh.frames, fr.key)
				sh.clock[slot] = nil
				sh.freeSlotLocked(slot)
				sh.resident.Add(-1)
			}
		}
		for key, ld := range sh.loading {
			if key.file == f.id {
				ld.dropped = true
			}
		}
		sh.mu.Unlock()
	}
}
