package storage

import (
	"encoding/binary"
	"fmt"
)

// MVCC version header, prefixed to every heap record the engine stores.
// The header lives inside the record payload, so the slotted-page layout
// and the WAL's physical page-image framing are unchanged:
//
//	[0:8)   xmin — id of the transaction that created this version
//	[8:16)  xmax — id of the deleting/superseding transaction (0 = live)
//	[16:24) prev — TID of the version this one superseded (0 = first)
//
// Visibility is decided by the engine against a snapshot; the storage
// layer only reads and writes the fields. xmax is the single mutable
// field: SetXmax stamps it in place (the header is fixed-size, so the
// record never moves), under the caller's statement WAL transaction.
const VersionHeaderSize = 24

// VersionHeader is the decoded MVCC header of one heap record.
type VersionHeader struct {
	Xmin uint64
	Xmax uint64
	Prev TID
}

// PutVersionHeader encodes h into the first VersionHeaderSize bytes of
// dst.
func PutVersionHeader(dst []byte, h VersionHeader) {
	binary.LittleEndian.PutUint64(dst[0:8], h.Xmin)
	binary.LittleEndian.PutUint64(dst[8:16], h.Xmax)
	binary.LittleEndian.PutUint64(dst[16:24], uint64(h.Prev))
}

// ReadVersionHeader decodes the MVCC header of a heap record.
func ReadVersionHeader(rec []byte) VersionHeader {
	return VersionHeader{
		Xmin: binary.LittleEndian.Uint64(rec[0:8]),
		Xmax: binary.LittleEndian.Uint64(rec[8:16]),
		Prev: TID(binary.LittleEndian.Uint64(rec[16:24])),
	}
}

// VersionPayload returns the row bytes behind the MVCC header.
func VersionPayload(rec []byte) []byte { return rec[VersionHeaderSize:] }

// SetXmax stamps the xmax field of the record at tid in place. The
// caller's statement WAL transaction captures the page's before-image
// through the usual WillModify hook. Stamping a dead slot is an error —
// the engine only stamps records it holds a row lock on, and vacuum
// never reclaims a slot a live transaction can still reference.
func (h *Heap) SetXmax(tid TID, xmax uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.file.GetPage(tid.Page())
	if err != nil {
		return err
	}
	defer p.Release()
	if int(tid.Slot()) >= pageSlotCount(p.Data) {
		return fmt.Errorf("storage: set xmax %s: slot out of range", tid)
	}
	off, length := slotEntry(p.Data, int(tid.Slot()))
	if off == deadSlot || length < VersionHeaderSize {
		return fmt.Errorf("storage: set xmax %s: dead or unversioned slot", tid)
	}
	if err := p.WillModify(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(p.Data[off+8:off+16], xmax)
	p.MarkDirty()
	return nil
}

// FreeSlot marks the slot at tid dead and queues it for reuse by a
// later Insert. It is vacuum's reclaim primitive: unlike Delete it does
// not touch the row counter (the version it reclaims was never counted
// or was already uncounted at commit time). The free list is in-memory
// only; slots freed in a previous process lifetime are simply not
// reused until a vacuum pass rediscovers... they hold no record, so
// nothing is lost beyond the slot-directory bytes.
func (h *Heap) FreeSlot(tid TID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.file.GetPage(tid.Page())
	if err != nil {
		return err
	}
	defer p.Release()
	if int(tid.Slot()) >= pageSlotCount(p.Data) {
		return fmt.Errorf("storage: free %s: slot out of range", tid)
	}
	off, length := slotEntry(p.Data, int(tid.Slot()))
	if off == deadSlot {
		return nil
	}
	if err := p.WillModify(); err != nil {
		return err
	}
	setSlotEntry(p.Data, int(tid.Slot()), deadSlot, length)
	p.MarkDirty()
	if len(h.freeSlots) < maxFreeSlots {
		h.freeSlots = append(h.freeSlots, tid)
	}
	return nil
}

// maxFreeSlots bounds the in-memory reuse list; beyond it vacuum still
// kills slots, they just will not be reused until a table rebuild.
const maxFreeSlots = 1 << 16
