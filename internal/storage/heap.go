package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// TID identifies a record: page number in the high 32 bits, slot in the
// low 16. This mirrors the Ingres tuple identifier that secondary
// indexes store next to the key.
type TID uint64

// NewTID packs a page/slot pair.
func NewTID(page uint32, slot uint16) TID {
	return TID(uint64(page)<<16 | uint64(slot))
}

// Page returns the page component.
func (t TID) Page() uint32 { return uint32(t >> 16) }

// Slot returns the slot component.
func (t TID) Slot() uint16 { return uint16(t) }

// String renders the TID as "page.slot".
func (t TID) String() string { return fmt.Sprintf("%d.%d", t.Page(), t.Slot()) }

// Slotted page layout (heap data pages):
//
//	[0:2)  uint16 slot count
//	[2:4)  uint16 free-space end (records grow down from PageSize)
//	[4:..) slot directory: per slot uint16 offset, uint16 length
//
// A slot with offset 0xFFFF is dead (deleted).
const (
	heapHeaderSize = 4
	slotSize       = 4
	deadSlot       = 0xFFFF
)

func pageSlotCount(d []byte) int   { return int(binary.LittleEndian.Uint16(d[0:2])) }
func pageFreeEnd(d []byte) int     { return int(binary.LittleEndian.Uint16(d[2:4])) }
func setSlotCount(d []byte, n int) { binary.LittleEndian.PutUint16(d[0:2], uint16(n)) }
func setFreeEnd(d []byte, n int)   { binary.LittleEndian.PutUint16(d[2:4], uint16(n)) }

func slotEntry(d []byte, i int) (off, length int) {
	base := heapHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(d[base : base+2])),
		int(binary.LittleEndian.Uint16(d[base+2 : base+4]))
}

func setSlotEntry(d []byte, i, off, length int) {
	base := heapHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(d[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(d[base+2:base+4], uint16(length))
}

func pageFreeSpace(d []byte) int {
	free := pageFreeEnd(d)
	if free == 0 {
		free = PageDataSize // fresh zero page; records stop short of the LSN trailer
	}
	used := heapHeaderSize + pageSlotCount(d)*slotSize
	return free - used
}

// MaxRecordSize is the largest record a heap page (or B-Tree entry) can
// hold. Records above this are rejected at insert time.
const MaxRecordSize = PageDataSize - heapHeaderSize - slotSize - 64

// Heap is an unordered record file: the Ingres HEAP storage structure.
// Pages allocated before FinishLoad (or up to MainPages at creation)
// are "main" pages; growth beyond that is counted as overflow pages,
// which is exactly the signal the analyzer's restructuring rule uses.
// Heap access is latched with a per-heap RWMutex: readers (Get, Iter,
// Scan, batch fills) hold the read side per operation — the batch
// iterator for the life of a batch, since its records alias pinned
// frames — and mutators (Insert, Delete, SetXmax, vacuum's FreeSlot)
// hold the write side. Under MVCC, readers run concurrently with one
// writer per table (the engine's statement write gate serializes
// writers), so the latch is what keeps page bytes race-free.
type Heap struct {
	file      *File
	mainPages uint32 // pages considered part of the initial extent
	rows      atomic.Int64
	lastPage  uint32 // insertion hint
	mu        sync.RWMutex
	freeSlots []TID // vacuum-reclaimed slots awaiting reuse
}

// OpenHeap opens a heap over the given file. mainPages is the size of
// the initial extent for overflow accounting; rows is the persisted row
// count (the catalog stores both).
func OpenHeap(file *File, mainPages uint32, rows int64) *Heap {
	if mainPages == 0 {
		mainPages = 1
	}
	h := &Heap{file: file, mainPages: mainPages}
	h.rows.Store(rows)
	if n := file.Pages(); n > 0 {
		h.lastPage = n - 1
	}
	return h
}

// File returns the underlying page file.
func (h *Heap) File() *File { return h.file }

// Rows returns the live record count. Under MVCC this counts committed
// visible rows: Insert/Delete do not touch it; the engine applies each
// transaction's net delta at commit via AdjustRows, so aborted inserts
// and vacuumed dead versions are never counted.
func (h *Heap) Rows() int64 { return h.rows.Load() }

// AdjustRows applies a committed transaction's net row delta.
func (h *Heap) AdjustRows(delta int64) { h.rows.Add(delta) }

// Pages returns the total number of data pages.
func (h *Heap) Pages() uint32 { return h.file.Pages() }

// MainPages returns the size of the initial extent.
func (h *Heap) MainPages() uint32 { return h.mainPages }

// OverflowPages returns the number of pages beyond the initial extent.
func (h *Heap) OverflowPages() uint32 {
	total := h.file.Pages()
	if total <= h.mainPages {
		return 0
	}
	return total - h.mainPages
}

// SetMainPages resets the initial extent, e.g. after a MODIFY rebuild
// where every page becomes a main page again.
func (h *Heap) SetMainPages(n uint32) {
	if n == 0 {
		n = 1
	}
	h.mainPages = n
}

// Insert stores a record and returns its TID, preferring a
// vacuum-reclaimed slot whose page has room before appending to the
// tail. It does not touch the row counter — the engine applies the
// committed net delta via AdjustRows.
func (h *Heap) Insert(rec []byte) (TID, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if tid, ok, err := h.insertIntoFreeSlot(rec); err != nil || ok {
		return tid, err
	}
	need := len(rec) + slotSize
	for {
		if h.file.Pages() == 0 {
			if _, err := h.file.Allocate(); err != nil {
				return 0, err
			}
			h.lastPage = 0
		}
		p, err := h.file.GetPage(h.lastPage)
		if err != nil {
			return 0, err
		}
		if pageFreeSpace(p.Data) >= need {
			tid, err := insertIntoPage(p, h.lastPage, rec)
			p.Release()
			return tid, err
		}
		p.Release()
		page, err := h.file.Allocate()
		if err != nil {
			return 0, err
		}
		h.lastPage = page
	}
}

// insertIntoFreeSlot tries a few reclaimed slots: the slot-directory
// entry is reused, the record bytes land in the page's free space (the
// old record's bytes stay dead until a MODIFY rebuild compacts them,
// as before). Candidates whose page is too full go back on the list.
func (h *Heap) insertIntoFreeSlot(rec []byte) (TID, bool, error) {
	const tries = 4
	for i := 0; i < tries && len(h.freeSlots) > 0; i++ {
		tid := h.freeSlots[len(h.freeSlots)-1]
		h.freeSlots = h.freeSlots[:len(h.freeSlots)-1]
		p, err := h.file.GetPage(tid.Page())
		if err != nil {
			return 0, false, err
		}
		d := p.Data
		slotOK := int(tid.Slot()) < pageSlotCount(d)
		off := deadSlot
		if slotOK {
			off, _ = slotEntry(d, int(tid.Slot()))
		}
		if !slotOK || off != deadSlot || pageFreeSpace(d) < len(rec) {
			p.Release()
			if slotOK && off == deadSlot {
				h.freeSlots = append([]TID{tid}, h.freeSlots...)
			}
			continue
		}
		if err := p.WillModify(); err != nil {
			p.Release()
			return 0, false, err
		}
		free := pageFreeEnd(d)
		if free == 0 {
			free = PageDataSize
		}
		newOff := free - len(rec)
		copy(d[newOff:], rec)
		setSlotEntry(d, int(tid.Slot()), newOff, len(rec))
		setFreeEnd(d, newOff)
		p.MarkDirty()
		p.Release()
		return tid, true, nil
	}
	return 0, false, nil
}

func insertIntoPage(p *Page, pageNo uint32, rec []byte) (TID, error) {
	if err := p.WillModify(); err != nil {
		return 0, err
	}
	d := p.Data
	n := pageSlotCount(d)
	free := pageFreeEnd(d)
	if free == 0 {
		free = PageDataSize
	}
	off := free - len(rec)
	copy(d[off:], rec)
	setSlotEntry(d, n, off, len(rec))
	setSlotCount(d, n+1)
	setFreeEnd(d, off)
	p.MarkDirty()
	return NewTID(pageNo, uint16(n)), nil
}

// Get returns the record stored at tid, or ok=false if it was deleted.
func (h *Heap) Get(tid TID) (rec []byte, ok bool, err error) {
	return h.GetProf(tid, nil)
}

// GetProf is Get with an explicit wait profiler for phase-2 flagged
// statements (index fetch paths run under shared locks, so the
// profiler is threaded per call rather than per file).
func (h *Heap) GetProf(tid TID, prof *WaitProf) (rec []byte, ok bool, err error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if tid.Page() >= h.file.Pages() {
		return nil, false, fmt.Errorf("storage: TID %s past end of heap", tid)
	}
	p, err := h.file.GetPageProf(tid.Page(), prof)
	if err != nil {
		return nil, false, err
	}
	defer p.Release()
	if int(tid.Slot()) >= pageSlotCount(p.Data) {
		return nil, false, fmt.Errorf("storage: TID %s slot out of range", tid)
	}
	off, length := slotEntry(p.Data, int(tid.Slot()))
	if off == deadSlot {
		return nil, false, nil
	}
	out := make([]byte, length)
	copy(out, p.Data[off:off+length])
	return out, true, nil
}

// Delete removes the record at tid. Space is not reclaimed until the
// table is rebuilt (MODIFY), matching Ingres heap behaviour. Like
// Insert, it leaves the row counter to commit-time AdjustRows.
func (h *Heap) Delete(tid TID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.file.GetPage(tid.Page())
	if err != nil {
		return err
	}
	defer p.Release()
	if int(tid.Slot()) >= pageSlotCount(p.Data) {
		return fmt.Errorf("storage: delete %s: slot out of range", tid)
	}
	off, length := slotEntry(p.Data, int(tid.Slot()))
	if off == deadSlot {
		return nil
	}
	if err := p.WillModify(); err != nil {
		return err
	}
	setSlotEntry(p.Data, int(tid.Slot()), deadSlot, length)
	p.MarkDirty()
	return nil
}

// Update replaces the record at tid. If the new record fits in place it
// is updated there and the same TID is returned; otherwise the old slot
// is killed and the record reinserted, returning its new TID.
func (h *Heap) Update(tid TID, rec []byte) (TID, error) {
	h.mu.Lock()
	p, err := h.file.GetPage(tid.Page())
	if err != nil {
		h.mu.Unlock()
		return 0, err
	}
	off, length := slotEntry(p.Data, int(tid.Slot()))
	if off != deadSlot && len(rec) <= length {
		if err := p.WillModify(); err != nil {
			p.Release()
			h.mu.Unlock()
			return 0, err
		}
		copy(p.Data[off:off+len(rec)], rec)
		setSlotEntry(p.Data, int(tid.Slot()), off, len(rec))
		p.MarkDirty()
		p.Release()
		h.mu.Unlock()
		return tid, nil
	}
	if off != deadSlot {
		if err := p.WillModify(); err != nil {
			p.Release()
			h.mu.Unlock()
			return 0, err
		}
		setSlotEntry(p.Data, int(tid.Slot()), deadSlot, length)
		p.MarkDirty()
	}
	p.Release()
	h.mu.Unlock()
	return h.Insert(rec)
}

// Scan calls fn for every live record in physical order. Returning
// false from fn stops the scan early.
func (h *Heap) Scan(fn func(tid TID, rec []byte) (bool, error)) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	pages := h.file.Pages()
	for pg := uint32(0); pg < pages; pg++ {
		p, err := h.file.GetPage(pg)
		if err != nil {
			return err
		}
		n := pageSlotCount(p.Data)
		for s := 0; s < n; s++ {
			off, length := slotEntry(p.Data, s)
			if off == deadSlot {
				continue
			}
			cont, err := fn(NewTID(pg, uint16(s)), p.Data[off:off+length])
			if err != nil || !cont {
				p.Release()
				return err
			}
		}
		p.Release()
	}
	return nil
}

// ScanChunk resumes a physical-order scan at (page, slot), calls fn
// for up to maxRows live records, and returns the position at which
// the next chunk should resume. done is true once the scan passed the
// last page that existed when this chunk ran. A (page, slot) position
// is stable across interleaved DML: deletes mark slots dead but never
// compact them, and inserts only land at or past the current last
// page — so an online index build can release the table lock between
// chunks without missing or double-visiting a record that existed at
// build start.
func (h *Heap) ScanChunk(page uint32, slot int, maxRows int, fn func(tid TID, rec []byte) error) (nextPage uint32, nextSlot int, done bool, err error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	pages := h.file.Pages()
	visited := 0
	for pg := page; pg < pages; pg++ {
		p, err := h.file.GetPage(pg)
		if err != nil {
			return pg, slot, false, err
		}
		n := pageSlotCount(p.Data)
		s := 0
		if pg == page {
			s = slot
		}
		for ; s < n; s++ {
			if visited >= maxRows {
				p.Release()
				return pg, s, false, nil
			}
			off, length := slotEntry(p.Data, s)
			if off == deadSlot {
				continue
			}
			if err := fn(NewTID(pg, uint16(s)), p.Data[off:off+length]); err != nil {
				p.Release()
				return pg, s, false, err
			}
			visited++
		}
		p.Release()
	}
	return pages, 0, true, nil
}

// Truncate drops every record, resetting the heap to a single empty
// main page extent.
func (h *Heap) Truncate() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	path := h.file.Path()
	pool := h.file.pool
	wal := h.file.wal
	if err := h.file.Remove(); err != nil {
		return err
	}
	nf, err := OpenFile(path, pool)
	if err != nil {
		return err
	}
	nf.wal = wal // keep the WAL-before-data barrier across the rebuild
	h.file = nf
	h.rows.Store(0)
	h.lastPage = 0
	h.mainPages = 1
	h.freeSlots = nil
	return nil
}

// ResetRows overrides the in-memory row count. Crash recovery recounts
// rows by scanning after redo and calls this to resynchronize the
// counter the catalog persists.
func (h *Heap) ResetRows(n int64) { h.rows.Store(n) }

// RecBatch is a reusable batch of raw heap records. Recs slices alias
// the page frames the filling iterator keeps pinned for the life of
// the batch (zero-copy): they are valid only until the next NextBatch
// or Close call on the iterator that filled them. Callers that retain
// a record beyond that must copy it.
type RecBatch struct {
	TIDs []TID
	Recs [][]byte
	// Sel is the batch's visibility selection vector: when non-nil,
	// only the record indexes it lists are visible to the filling
	// statement's snapshot and the rest must be skipped. The engine
	// fills it after each NextBatch without copying any record, so the
	// batch path stays zero-copy under MVCC. nil means every record is
	// selected.
	Sel []int
}

// Len returns the number of records in the batch.
func (b *RecBatch) Len() int { return len(b.Recs) }

// reset clears the batch for refilling, keeping all capacity.
func (b *RecBatch) reset() {
	b.TIDs = b.TIDs[:0]
	b.Recs = b.Recs[:0]
	b.Sel = nil
}

// appendRec records one record slice (aliasing a pinned frame).
func (b *RecBatch) appendRec(tid TID, rec []byte) {
	b.TIDs = append(b.TIDs, tid)
	b.Recs = append(b.Recs, rec)
}

// maxBatchPins bounds the pages one batch may keep pinned, so a batch
// over sparse pages cannot monopolize a small buffer pool. When the
// cap is hit the batch simply comes up short of maxRows; the next call
// continues from the following page.
const maxBatchPins = 16

// HeapBatchIter scans a heap page-at-a-time: each page is pinned once
// and all its live slots are handed to the caller's RecBatch as slices
// aliasing the pinned frame — no per-record copy or allocation, unlike
// HeapIter.Next which does one GetPage call and one record allocation
// per row. The pins are held until the next NextBatch or Close call,
// which is what keeps the aliased records valid for the life of the
// batch. Not safe for concurrent use.
type HeapBatchIter struct {
	h       *Heap
	page    uint32
	bound   uint32 // exclusive page bound for morsel scans; 0 = whole heap
	pins    [maxBatchPins]Page // frames backing the current batch
	npins   int
	err     error
	latched bool      // read latch held for the life of the current batch
	prof    *WaitProf // wait attribution for flagged statements; usually nil
}

// ScanBatch returns a batch iterator positioned before the first page.
func (h *Heap) ScanBatch() *HeapBatchIter { return &HeapBatchIter{h: h} }

// ScanBatchProf is ScanBatch with a wait profiler attached to every
// page pin of the scan.
func (h *Heap) ScanBatchProf(prof *WaitProf) *HeapBatchIter {
	return &HeapBatchIter{h: h, prof: prof}
}

// ScanBatchRange returns a batch iterator over the page range [lo, hi)
// — one morsel of a parallel scan. Disjoint ranges touch disjoint pages
// and slot directories, so concurrent iterators (each confined to its
// own worker goroutine) never share mutable state; they contend only on
// the heap's read latch, which admits any number of readers. Pages past
// the heap's current end are simply absent, so a stale hi is safe.
func (h *Heap) ScanBatchRange(lo, hi uint32, prof *WaitProf) *HeapBatchIter {
	return &HeapBatchIter{h: h, page: lo, bound: hi, prof: prof}
}

// release unpins every frame backing the current batch and drops the
// heap read latch the batch held (writers were excluded while the
// caller consumed records aliasing the pinned frames).
func (it *HeapBatchIter) release() {
	for i := 0; i < it.npins; i++ {
		it.pins[i].Release()
	}
	it.npins = 0
	if it.latched {
		it.latched = false
		it.h.mu.RUnlock()
	}
}

// Close releases the frames pinned for the last batch. Callers that
// abandon the iterator before exhaustion must call it; an exhausted
// iterator holds no pins, so Close is then a no-op.
func (it *HeapBatchIter) Close() error {
	it.release()
	return nil
}

// NextBatch fills b with live records, whole pages at a time, until at
// least maxRows records are batched, maxBatchPins pages are pinned, or
// the heap is exhausted (the last page added may overshoot maxRows; a
// page is never split across batches). maxRows <= 0 means one
// non-empty page per batch. Returns false when no records remain. The
// records in b alias pages the iterator keeps pinned and are
// invalidated by the next NextBatch or Close call on it.
func (it *HeapBatchIter) NextBatch(b *RecBatch) (bool, error) {
	if it.err != nil {
		return false, it.err
	}
	return it.nextBatch(b, 0)
}

// NextBatchMax is NextBatch with an explicit row target.
func (it *HeapBatchIter) NextBatchMax(b *RecBatch, maxRows int) (bool, error) {
	if it.err != nil {
		return false, it.err
	}
	return it.nextBatch(b, maxRows)
}

func (it *HeapBatchIter) nextBatch(b *RecBatch, maxRows int) (bool, error) {
	it.release() // invalidates the previous batch's records
	b.reset()
	it.h.mu.RLock()
	it.latched = true
	pages := it.h.file.Pages()
	if it.bound > 0 && it.bound < pages {
		pages = it.bound
	}
	for it.page < pages && it.npins < maxBatchPins {
		p := &it.pins[it.npins]
		if err := it.h.file.PinPageProf(it.page, p, it.prof); err != nil {
			it.err = err
			it.release()
			return false, err
		}
		d := p.Data
		n := pageSlotCount(d)
		before := len(b.Recs)
		for s := 0; s < n; s++ {
			off, length := slotEntry(d, s)
			if off == deadSlot {
				continue
			}
			b.appendRec(NewTID(it.page, uint16(s)), d[off:off+length])
		}
		if len(b.Recs) == before {
			p.Release() // no live records: nothing aliases this frame
		} else {
			it.npins++
		}
		it.page++
		if maxRows > 0 {
			if len(b.Recs) >= maxRows {
				break
			}
		} else if len(b.Recs) > 0 {
			break
		}
	}
	if len(b.Recs) == 0 {
		it.release() // exhausted: hold neither pins nor the latch
		return false, nil
	}
	return true, nil
}

// HeapIter is a pull-style iterator over live heap records.
type HeapIter struct {
	h    *Heap
	page uint32
	slot int
	err  error
	prof *WaitProf // wait attribution for flagged statements; usually nil
	pg   Page      // reused pin handle; always released before Next returns
}

// Iter returns an iterator positioned before the first record.
func (h *Heap) Iter() *HeapIter { return &HeapIter{h: h} }

// IterProf is Iter with a wait profiler attached to every page get of
// the scan.
func (h *Heap) IterProf(prof *WaitProf) *HeapIter { return &HeapIter{h: h, prof: prof} }

// Next returns the next live record (copied out of the page) or
// ok=false at the end. The record is freshly allocated and the caller
// may retain it; hot per-row loops use NextBuf instead.
func (it *HeapIter) Next() (TID, []byte, bool, error) {
	return it.next(nil)
}

// NextBuf is Next with a caller-supplied record buffer: the returned
// record is buf with the record bytes appended, so a loop that passes
// the same buffer sliced to [:0] each call scans without per-row
// allocation. The returned record is only valid until the caller
// reuses the buffer.
func (it *HeapIter) NextBuf(buf []byte) (TID, []byte, bool, error) {
	if buf == nil {
		buf = []byte{}
	}
	return it.next(buf)
}

func (it *HeapIter) next(buf []byte) (TID, []byte, bool, error) {
	if it.err != nil {
		return 0, nil, false, it.err
	}
	it.h.mu.RLock()
	defer it.h.mu.RUnlock()
	pages := it.h.file.Pages()
	for it.page < pages {
		if err := it.h.file.PinPageProf(it.page, &it.pg, it.prof); err != nil {
			it.err = err
			return 0, nil, false, err
		}
		n := pageSlotCount(it.pg.Data)
		for it.slot < n {
			s := it.slot
			it.slot++
			off, length := slotEntry(it.pg.Data, s)
			if off == deadSlot {
				continue
			}
			rec := buf
			if rec == nil {
				rec = make([]byte, 0, length)
			}
			rec = append(rec, it.pg.Data[off:off+length]...)
			it.pg.Release()
			return NewTID(it.page, uint16(s)), rec, true, nil
		}
		it.pg.Release()
		it.page++
		it.slot = 0
	}
	return 0, nil, false, nil
}
