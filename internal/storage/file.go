package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

var nextFileID atomic.Uint32

// File is a page-addressed file managed through a buffer pool. All page
// access goes through Read/Write page handles so that every physical
// I/O is counted — the optimizer's cost model and the monitor both feed
// on these counters.
type File struct {
	id   uint32
	path string
	base string // filepath.Base(path): the stable name WAL records carry
	pool *Pool

	// wal, when set, makes every write-back of this file's pages wait
	// for the WAL to be durable up to the page's LSN, and curTxn (the
	// statement transaction currently mutating this file, set under the
	// table's statement write gate) receives before-image capture calls
	// from Page.WillModify. Atomic because MVCC readers run GetPage
	// concurrently with the writer installing/clearing these.
	wal     *WAL
	curTxn  atomic.Pointer[WalTxn]
	curProf atomic.Pointer[WaitProf]

	mu    sync.Mutex
	f     *os.File
	pages uint32 // number of allocated pages
}

// OpenFile opens (or creates) the page file at path, attached to pool.
func OpenFile(path string, pool *Pool) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s has non-page-aligned size %d", path, st.Size())
	}
	return &File{
		id:    nextFileID.Add(1),
		path:  path,
		base:  filepath.Base(path),
		pool:  pool,
		f:     f,
		pages: uint32(st.Size() / PageSize),
	}, nil
}

// AttachWAL wires the file into the write-ahead log: page write-backs
// respect the WAL-before-data barrier and WillModify routes to the
// current transaction. Must be called before any page of the file is
// modified under logging.
func (f *File) AttachWAL(w *WAL) { f.wal = w }

// SetWALTxn points WillModify at the statement transaction currently
// mutating this file. Callers hold the table's statement write gate, so
// at most one non-nil value is installed at a time; the atomic only
// protects concurrent readers.
func (f *File) SetWALTxn(t *WalTxn) { f.curTxn.Store(t) }

// SetProf attaches a wait profiler to every page get on this file, for
// the DML write path of a phase-2 flagged statement. Same safety
// argument as SetWALTxn.
func (f *File) SetProf(prof *WaitProf) { f.curProf.Store(prof) }

// walBarrier enforces WAL-before-data: the page image about to be
// written carries its last LSN in the trailer, and the log must be
// durable at least that far before the page may reach disk.
func (f *File) walBarrier(data []byte) error {
	if f.wal == nil {
		return nil
	}
	return f.wal.syncTo(PageLSN(data))
}

// Path returns the file's path on disk.
func (f *File) Path() string { return f.path }

// Pages returns the number of allocated pages.
func (f *File) Pages() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pages
}

// SizeBytes returns the logical file size in bytes.
func (f *File) SizeBytes() int64 { return int64(f.Pages()) * PageSize }

// Allocate extends the file by one zero page and returns its number.
// The page is materialized lazily: it hits disk when flushed.
func (f *File) Allocate() (uint32, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	page := f.pages
	f.pages++
	return page, nil
}

// readPage reads the given page into buf. Pages past the current end of
// the on-disk file read as zeroes with n == 0 (they exist only in the
// pool until flushed).
func (f *File) readPage(page uint32, buf []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if page >= f.pages {
		return 0, fmt.Errorf("storage: read past end: page %d of %d in %s", page, f.pages, f.path)
	}
	n, err := f.f.ReadAt(buf, int64(page)*PageSize)
	if err == io.EOF || (err == nil && n < PageSize) {
		// Allocated but never flushed: serve zeroes.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: read page %d of %s: %w", page, f.path, err)
	}
	return n, nil
}

// writePage writes buf to the given page on disk.
func (f *File) writePage(page uint32, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.f.WriteAt(buf, int64(page)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d of %s: %w", page, f.path, err)
	}
	return nil
}

// Flush writes back all dirty cached pages of this file.
func (f *File) Flush() error { return f.pool.flushFile(f) }

// Sync flushes dirty pages and fsyncs the file.
func (f *File) Sync() error {
	if err := f.Flush(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.pool.fsyncs.Add(1)
	return nil
}

// Close flushes and closes the file.
func (f *File) Close() error {
	if err := f.Flush(); err != nil {
		return err
	}
	f.pool.dropFile(f)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.f.Close()
}

// Remove closes the file, discards its cached pages and deletes it from
// disk. Used by DROP TABLE / DROP INDEX and MODIFY rebuilds.
func (f *File) Remove() error {
	f.pool.dropFile(f)
	f.mu.Lock()
	ff := f.f
	path := f.path
	f.pages = 0
	f.mu.Unlock()
	if err := ff.Close(); err != nil {
		return err
	}
	return os.Remove(path)
}

// Page is a pinned page handle. Data is valid until Release.
type Page struct {
	f     *File
	fr    *frame
	Data  []byte
	dirty bool
}

// GetPage pins the given page for reading or writing. Wait time is
// attributed to the file's current profiler, if any (the DML write
// path under the table's exclusive lock).
func (f *File) GetPage(page uint32) (*Page, error) {
	return f.GetPageProf(page, f.curProf.Load())
}

// GetPageProf is GetPage with an explicit wait profiler: read paths
// (which run under shared locks and cannot use the per-file field)
// thread theirs through here. A nil prof falls back to the file's
// current profiler.
func (f *File) GetPageProf(page uint32, prof *WaitProf) (*Page, error) {
	if prof == nil {
		prof = f.curProf.Load()
	}
	fr, err := f.pool.get(f, page, prof)
	if err != nil {
		return nil, err
	}
	return &Page{f: f, fr: fr, Data: fr.data[:]}, nil
}

// PinPage pins the given page into a caller-owned handle, avoiding the
// per-call allocation of GetPage. p must be released (or never pinned)
// before being reused. Batch scans pin one page per batch step through
// a single reused handle.
func (f *File) PinPage(page uint32, p *Page) error {
	return f.PinPageProf(page, p, f.curProf.Load())
}

// PinPageProf is PinPage with an explicit wait profiler (see
// GetPageProf).
func (f *File) PinPageProf(page uint32, p *Page, prof *WaitProf) error {
	if prof == nil {
		prof = f.curProf.Load()
	}
	fr, err := f.pool.get(f, page, prof)
	if err != nil {
		return err
	}
	p.f, p.fr, p.Data, p.dirty = f, fr, fr.data[:], false
	return nil
}

// MarkDirty records that the caller modified the page.
func (p *Page) MarkDirty() { p.dirty = true }

// WillModify must be called before mutating the page's bytes. When a
// logged transaction owns the file it captures the before-image (once
// per page per transaction) and stamps the page LSN; otherwise it is
// free. Mutators still call MarkDirty as before.
func (p *Page) WillModify() error {
	if p.f == nil || p.f.wal == nil {
		return nil
	}
	return p.f.curTxn.Load().captureBefore(p)
}

// Release unpins the page. The unpin is lock-free: it touches only
// the frame's own atomics, never a pool or shard lock.
func (p *Page) Release() {
	if p.fr == nil {
		return
	}
	p.fr.unpin(p.dirty)
	p.fr = nil
	p.Data = nil
}
