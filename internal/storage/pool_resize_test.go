package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolResizeGrowShrink exercises the live resize paths directly:
// capacity moves, resident count converges under the new limit, and
// every page read after a shrink still returns intact data (dirty
// victims of the shrink were written back, not dropped).
func TestPoolResizeGrowShrink(t *testing.T) {
	pool := NewPool(64)
	f := newTestFile(t, pool)
	const pages = 128
	for pg := uint32(0); pg < pages; pg++ {
		got, _ := f.Allocate()
		if got != pg {
			t.Fatalf("allocate returned %d, want %d", got, pg)
		}
		fillPage(t, f, pg, pageTag(pg, 0))
	}

	if c := pool.Resize(256); c != 256 {
		t.Fatalf("grow: capacity %d, want 256", c)
	}
	for pg := uint32(0); pg < pages; pg++ {
		p, err := f.GetPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	if r := pool.Resident(); r != pages {
		t.Fatalf("after grow all %d pages should be resident, got %d", pages, r)
	}

	// Dirty a spread of pages, then shrink below the working set: the
	// retired frames must be written back, not lost.
	for pg := uint32(0); pg < pages; pg += 3 {
		fillPage(t, f, pg, pageTag(pg, 1))
	}
	shrunk := pool.Resize(32)
	if shrunk >= 256 {
		t.Fatalf("shrink: capacity %d did not decrease", shrunk)
	}
	if r := pool.Resident(); r > shrunk {
		t.Fatalf("resident %d exceeds shrunken capacity %d", r, shrunk)
	}
	for pg := uint32(0); pg < pages; pg++ {
		tag := pageTag(pg, 0)
		if pg%3 == 0 {
			tag = pageTag(pg, 1)
		}
		p, err := f.GetPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Data, bytes.Repeat([]byte{tag}, PageSize)) {
			p.Release()
			t.Fatalf("page %d lost its contents across the shrink", pg)
		}
		p.Release()
	}

	// Floor: a resize below 8 frames per shard is clamped, never zero.
	if c := pool.Resize(1); c < pool.Shards()*8 {
		t.Fatalf("resize(1) returned %d, below the per-shard floor", c)
	}
}

// TestPoolResizeUnderLoad races readers, writers and repeated
// grow/shrink cycles. Run with -race; the invariants are that no read
// ever observes torn or foreign data and the pool keeps serving pages
// across every capacity change.
func TestPoolResizeUnderLoad(t *testing.T) {
	pool := NewPool(64)
	f := newTestFile(t, pool)
	const pages = 96
	for pg := uint32(0); pg < pages; pg++ {
		f.Allocate()
		fillPage(t, f, pg, pageTag(pg, 0))
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				pg := uint32(rng.Intn(pages))
				p, err := f.GetPage(pg)
				if err != nil {
					errCh <- err
					return
				}
				if p.Data[0] != pageTag(pg, 0) || p.Data[PageSize-1] != pageTag(pg, 0) {
					errCh <- fmt.Errorf("page %d: foreign or torn frame (byte %#x)", pg, p.Data[0])
					p.Release()
					return
				}
				p.Release()
			}
		}(int64(g) + 1)
	}
	sizes := []int{16, 200, 48, 128, 24, 96}
	for round := 0; round < 30; round++ {
		pool.Resize(sizes[round%len(sizes)])
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if r, c := pool.Resident(), pool.Capacity(); r > c {
		t.Fatalf("resident %d exceeds capacity %d after resize storm", r, c)
	}
}
