package storage

import (
	"sync/atomic"
	"time"
)

// WaitProf accumulates one statement's storage-level wait time, split
// by cause. The engine attaches a profiler only to statements the
// monitor has phase-2 flagged, so the unprofiled path pays nothing but
// nil checks. Counters are atomics: a statement's page gets all run on
// its session goroutine, but the profiler also rides WAL transactions
// whose group-commit waits resolve against a background flusher, and
// atomics keep every accumulation unordered-safe for the few wait
// events (microseconds and up) being measured.
type WaitProf struct {
	ioNs    atomic.Int64 // page loads, write-backs, load/write latch waits
	fsyncNs atomic.Int64 // WAL durability waits (group commit, barriers)
	pinNs   atomic.Int64 // backpressure on a fully pinned pool shard
}

// AddIO records d of page-I/O wait.
func (p *WaitProf) AddIO(d time.Duration) { p.ioNs.Add(int64(d)) }

// AddFsync records d of WAL-durability wait.
func (p *WaitProf) AddFsync(d time.Duration) { p.fsyncNs.Add(int64(d)) }

// AddPinWait records d of pinned-full-shard backpressure.
func (p *WaitProf) AddPinWait(d time.Duration) { p.pinNs.Add(int64(d)) }

// Totals returns the accumulated nanoseconds per bucket.
func (p *WaitProf) Totals() (ioNs, fsyncNs, pinNs int64) {
	return p.ioNs.Load(), p.fsyncNs.Load(), p.pinNs.Load()
}

// Reset zeroes the counters so pooled profilers can be reused.
func (p *WaitProf) Reset() {
	p.ioNs.Store(0)
	p.fsyncNs.Store(0)
	p.pinNs.Store(0)
}
