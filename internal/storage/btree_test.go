package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

func newTestBTree(t *testing.T, poolPages int) *BTree {
	t.Helper()
	f := newTestFile(t, NewPool(poolPages))
	bt, err := CreateBTree(f)
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

func TestBTreePutGet(t *testing.T) {
	bt := newTestBTree(t, 64)
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v := []byte(fmt.Sprintf("val-%d", i*i))
		if err := bt.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Count() != 1000 {
		t.Fatalf("Count = %d", bt.Count())
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v, ok, err := bt.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", k, ok, err)
		}
		if want := fmt.Sprintf("val-%d", i*i); string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
	}
	if _, ok, _ := bt.Get([]byte("nope")); ok {
		t.Error("found a key that was never inserted")
	}
	h, err := bt.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("expected the tree to have split, height = %d", h)
	}
}

func TestBTreeOverwrite(t *testing.T) {
	bt := newTestBTree(t, 32)
	if err := bt.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := bt.Put([]byte("k"), []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	if bt.Count() != 1 {
		t.Errorf("overwrite changed count: %d", bt.Count())
	}
	v, ok, _ := bt.Get([]byte("k"))
	if !ok || string(v) != "v2-longer" {
		t.Errorf("Get = %q ok=%v", v, ok)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := newTestBTree(t, 32)
	for i := 0; i < 200; i++ {
		bt.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	found, err := bt.Delete([]byte("k100"))
	if err != nil || !found {
		t.Fatalf("Delete: found=%v err=%v", found, err)
	}
	if _, ok, _ := bt.Get([]byte("k100")); ok {
		t.Error("deleted key still found")
	}
	if bt.Count() != 199 {
		t.Errorf("Count = %d", bt.Count())
	}
	found, err = bt.Delete([]byte("missing"))
	if err != nil || found {
		t.Errorf("Delete(missing): found=%v err=%v", found, err)
	}
}

func TestBTreeIteratorFullScan(t *testing.T) {
	bt := newTestBTree(t, 64)
	keys := make([]string, 0, 500)
	perm := rand.New(rand.NewSource(3)).Perm(500)
	for _, i := range perm {
		k := fmt.Sprintf("key-%05d", i)
		keys = append(keys, k)
		if err := bt.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(keys)
	it := bt.Seek(nil)
	i := 0
	for it.Next() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("position %d: got %q want %q", i, it.Key(), keys[i])
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != 500 {
		t.Fatalf("iterator yielded %d entries", i)
	}
}

func TestBTreeSeekRange(t *testing.T) {
	bt := newTestBTree(t, 64)
	for i := 0; i < 100; i++ {
		bt.Put([]byte(fmt.Sprintf("k%03d", i*2)), []byte("v")) // even keys
	}
	it := bt.Seek([]byte("k101")) // between k100 and k102
	if !it.Next() {
		t.Fatal("expected an entry")
	}
	if string(it.Key()) != "k102" {
		t.Fatalf("Seek landed on %q, want k102", it.Key())
	}
	// Seek past the end.
	it = bt.Seek([]byte("z"))
	if it.Next() {
		t.Fatalf("Seek(z) yielded %q", it.Key())
	}
}

func TestBTreePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bt.dat")
	f, err := OpenFile(path, NewPool(64))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := CreateBTree(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		bt.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenFile(path, NewPool(64))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	bt2, err := OpenBTree(f2)
	if err != nil {
		t.Fatal(err)
	}
	if bt2.Count() != 2000 {
		t.Fatalf("Count after reopen = %d", bt2.Count())
	}
	for _, i := range []int{0, 1, 999, 1999} {
		v, ok, err := bt2.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d after reopen: %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestOpenBTreeRejectsGarbage(t *testing.T) {
	f := newTestFile(t, nil)
	h := OpenHeap(f, 1, 0)
	h.Insert([]byte("not a btree"))
	f.Flush()
	if _, err := OpenBTree(f); err == nil {
		t.Fatal("expected magic check to fail")
	}
}

func TestBTreeRejectsHugeEntry(t *testing.T) {
	bt := newTestBTree(t, 32)
	if err := bt.Put(bytes.Repeat([]byte("k"), MaxEntrySize), []byte("v")); err == nil {
		t.Fatal("expected error for oversized entry")
	}
}

// TestBTreeAgainstModel drives random Put/Delete/Get/scan operations and
// checks the tree against an in-memory map, including after large keys
// and values that force frequent splits, with a tiny buffer pool to
// exercise eviction.
func TestBTreeAgainstModel(t *testing.T) {
	bt := newTestBTree(t, 10) // tiny pool: forces eviction + write-back
	model := map[string]string{}
	r := rand.New(rand.NewSource(99))
	randKey := func() string {
		return fmt.Sprintf("%04d-%s", r.Intn(800), bytes.Repeat([]byte("k"), r.Intn(40)))
	}
	for op := 0; op < 5000; op++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			k := randKey()
			v := fmt.Sprintf("value-%d-%s", op, bytes.Repeat([]byte("v"), r.Intn(120)))
			if err := bt.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 6, 7: // delete
			k := randKey()
			found, err := bt.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			_, want := model[k]
			if found != want {
				t.Fatalf("Delete(%q) found=%v want=%v", k, found, want)
			}
			delete(model, k)
		default: // get
			k := randKey()
			v, ok, err := bt.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := model[k]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("Get(%q) = %q/%v, want %q/%v", k, v, ok, want, wantOK)
			}
		}
	}
	if int(bt.Count()) != len(model) {
		t.Fatalf("count drift: tree=%d model=%d", bt.Count(), len(model))
	}
	// Full ordered scan must match the sorted model exactly.
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	it := bt.Seek(nil)
	i := 0
	for it.Next() {
		if i >= len(keys) {
			t.Fatalf("iterator yielded extra key %q", it.Key())
		}
		if string(it.Key()) != keys[i] || string(it.Value()) != model[keys[i]] {
			t.Fatalf("scan position %d: got %q=%q, want %q=%q",
				i, it.Key(), it.Value(), keys[i], model[keys[i]])
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != len(keys) {
		t.Fatalf("scan yielded %d of %d keys", i, len(keys))
	}
}

func TestPoolStatsAndEviction(t *testing.T) {
	pool := NewPool(8)
	f, err := OpenFile(filepath.Join(t.TempDir(), "p.dat"), pool)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := OpenHeap(f, 1, 0)
	rec := bytes.Repeat([]byte("d"), 1000)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Scan(func(TID, []byte) (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions with a small pool")
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("expected both hits and misses: %+v", st)
	}
	if pool.Resident() > pool.Capacity() {
		t.Errorf("resident %d exceeds capacity %d", pool.Resident(), pool.Capacity())
	}
}

func TestPoolAllPinnedError(t *testing.T) {
	pool := NewPool(8)
	pool.SetPinWaitBudget(10 * time.Millisecond)
	f, err := OpenFile(filepath.Join(t.TempDir(), "p.dat"), pool)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var pages []*Page
	for i := 0; i < 8; i++ {
		pg, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p, err := f.GetPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	pg, _ := f.Allocate()
	if _, err := f.GetPage(pg); err == nil {
		t.Error("expected pool-exhausted error with everything pinned")
	}
	if pw := pool.Stats().PinWaits; pw == 0 {
		t.Error("expected PinWaits > 0 after exhausting a fully pinned pool")
	}
	for _, p := range pages {
		p.Release()
	}
	if _, err := f.GetPage(pg); err != nil {
		t.Errorf("after unpinning, GetPage failed: %v", err)
	}
}
