package expr

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// parseWhere extracts the WHERE expression from "SELECT * FROM t WHERE ...".
func parseWhere(t *testing.T, cond string) sqlparser.Expr {
	t.Helper()
	st, err := sqlparser.Parse("SELECT * FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	return st.(*sqlparser.SelectStmt).Where
}

func testResolver() *SimpleResolver {
	return &SimpleResolver{Cols: []ResolvedCol{
		{Table: "t", Name: "a", Type: sqltypes.Int},
		{Table: "t", Name: "b", Type: sqltypes.Float},
		{Table: "t", Name: "s", Type: sqltypes.Text},
		{Table: "u", Name: "a", Type: sqltypes.Int}, // ambiguous with t.a
	}}
}

func evalCond(t *testing.T, cond string, row sqltypes.Row) sqltypes.Value {
	t.Helper()
	c, err := Bind(parseWhere(t, cond), testResolver())
	if err != nil {
		t.Fatalf("bind %q: %v", cond, err)
	}
	v, err := c.Eval(&Env{Row: row})
	if err != nil {
		t.Fatalf("eval %q: %v", cond, err)
	}
	return v
}

func TestComparisonsAndLogic(t *testing.T) {
	row := sqltypes.Row{
		sqltypes.NewInt(5), sqltypes.NewFloat(2.5), sqltypes.NewText("hello"), sqltypes.NewInt(9),
	}
	cases := []struct {
		cond string
		want bool
	}{
		{"t.a = 5", true},
		{"t.a <> 5", false},
		{"t.a < 6 AND b > 2", true},
		{"t.a < 5 OR b > 2", true},
		{"NOT t.a = 5", false},
		{"t.a >= 5 AND t.a <= 5", true},
		{"b = 2.5", true},
		{"s = 'hello'", true},
		{"s LIKE 'he%'", true},
		{"s LIKE '%llo'", true},
		{"s LIKE 'h_llo'", true},
		{"s LIKE 'h_l%'", true},
		{"s LIKE 'x%'", false},
		{"s NOT LIKE 'x%'", true},
		{"t.a IN (1, 5, 9)", true},
		{"t.a NOT IN (1, 5, 9)", false},
		{"t.a IN (1, 2)", false},
		{"t.a BETWEEN 1 AND 9", true},
		{"t.a NOT BETWEEN 6 AND 9", true},
		{"t.a + 1 = 6", true},
		{"t.a * 2 - 3 = 7", true},
		{"t.a / 2 = 2", true}, // integer division
		{"t.a % 2 = 1", true},
		{"b * 2 = 5.0", true},
		{"-t.a = -5", true},
		{"u.a = 9", true},
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond, row); got.Bool() != c.want {
			t.Errorf("%q = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	row := sqltypes.Row{
		sqltypes.NullValue(), sqltypes.NewFloat(1), sqltypes.NullValue(), sqltypes.NewInt(0),
	}
	// NULL comparisons yield NULL.
	if v := evalCond(t, "t.a = 5", row); !v.IsNull() {
		t.Errorf("NULL = 5 should be NULL, got %v", v)
	}
	// NULL AND false = false; NULL AND true = NULL.
	if v := evalCond(t, "t.a = 5 AND b = 2", row); v.IsNull() || v.Bool() {
		t.Errorf("NULL AND false = %v, want false", v)
	}
	if v := evalCond(t, "t.a = 5 AND b = 1", row); !v.IsNull() {
		t.Errorf("NULL AND true = %v, want NULL", v)
	}
	// NULL OR true = true; NULL OR false = NULL.
	if v := evalCond(t, "t.a = 5 OR b = 1", row); v.IsNull() || !v.Bool() {
		t.Errorf("NULL OR true = %v, want true", v)
	}
	if v := evalCond(t, "t.a = 5 OR b = 2", row); !v.IsNull() {
		t.Errorf("NULL OR false = %v, want NULL", v)
	}
	// IS NULL / IS NOT NULL.
	if v := evalCond(t, "t.a IS NULL", row); !v.Bool() {
		t.Error("IS NULL failed")
	}
	if v := evalCond(t, "b IS NOT NULL", row); !v.Bool() {
		t.Error("IS NOT NULL failed")
	}
	// NOT NULL = NULL.
	if v := evalCond(t, "NOT t.a = 5", row); !v.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", v)
	}
	// IN with NULL needle is NULL; IN list containing NULL with no match is NULL.
	if v := evalCond(t, "t.a IN (1, 2)", row); !v.IsNull() {
		t.Errorf("NULL IN (...) = %v, want NULL", v)
	}
	if v := evalCond(t, "u.a IN (1, s)", row); !v.IsNull() {
		t.Errorf("0 IN (1, NULL) = %v, want NULL", v)
	}
	// BETWEEN with NULL bound is NULL.
	if v := evalCond(t, "b BETWEEN t.a AND 10", row); !v.IsNull() {
		t.Errorf("BETWEEN NULL = %v, want NULL", v)
	}
}

func TestArithmeticErrors(t *testing.T) {
	row := sqltypes.Row{
		sqltypes.NewInt(1), sqltypes.NewFloat(0), sqltypes.NewText("x"), sqltypes.NewInt(0),
	}
	for _, cond := range []string{"t.a / u.a = 1", "t.a % u.a = 1", "t.a / b = 1"} {
		c, err := Bind(parseWhere(t, cond), testResolver())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Eval(&Env{Row: row}); err == nil {
			t.Errorf("%q: expected division error", cond)
		}
	}
	// Text arithmetic other than + is an error.
	c, _ := Bind(parseWhere(t, "s * 2 = 2"), testResolver())
	if _, err := c.Eval(&Env{Row: row}); err == nil {
		t.Error("text multiply accepted")
	}
}

func TestStringConcat(t *testing.T) {
	row := sqltypes.Row{
		sqltypes.NewInt(1), sqltypes.NewFloat(0), sqltypes.NewText("ab"), sqltypes.NewInt(0),
	}
	v := evalCond(t, "s + 'cd' = 'abcd'", row)
	if !v.Bool() {
		t.Errorf("concat failed: %v", v)
	}
}

func TestParams(t *testing.T) {
	res, err := sqlparser.ParseNormalized("SELECT * FROM t WHERE t.a = 42 AND s = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Bind(res.Stmt.(*sqlparser.SelectStmt).Where, testResolver())
	if err != nil {
		t.Fatal(err)
	}
	row := sqltypes.Row{
		sqltypes.NewInt(42), sqltypes.NewFloat(0), sqltypes.NewText("x"), sqltypes.NewInt(0),
	}
	v, err := c.Eval(&Env{Row: row, Params: res.Params})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bool() {
		t.Error("parameterized predicate failed")
	}
	// Rebinding different params flips the result without recompiling.
	v2, _ := c.Eval(&Env{Row: row, Params: []sqltypes.Value{
		sqltypes.NewInt(1), sqltypes.NewText("x"),
	}})
	if v2.Bool() {
		t.Error("stale parameter value used")
	}
	// Missing params error out.
	if _, err := c.Eval(&Env{Row: row}); err == nil {
		t.Error("missing params accepted")
	}
}

func TestBindErrors(t *testing.T) {
	r := testResolver()
	// Unknown column.
	if _, err := Bind(parseWhere(t, "zz = 1"), r); err == nil {
		t.Error("unknown column bound")
	}
	// Ambiguous column (a exists in t and u).
	if _, err := Bind(parseWhere(t, "a = 1"), r); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column: %v", err)
	}
	// Aggregates are not allowed in scalar binding.
	if _, err := Bind(parseWhere(t, "COUNT(*) > 1"), r); err == nil {
		t.Error("aggregate bound in scalar context")
	}
	// Unknown qualifier.
	if _, err := Bind(parseWhere(t, "x.a = 1"), r); err == nil {
		t.Error("unknown qualifier bound")
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "___", true},
		{"abc", "__", false},
		{"abc", "a_c", true},
		{"abc", "%%%", true},
		{"NF00123", "NF%", true},
		{"xNF", "NF%", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}
