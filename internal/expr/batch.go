package expr

import (
	"fmt"

	"repro/internal/sqltypes"
)

// EvalBatch evaluates one compiled expression over every row of a
// batch, appending the results (one value per row, in row order) to
// dst and returning the extended slice. env supplies the parameters;
// its Row field is clobbered during the call and restored before
// returning. Column references and literals take allocation-free fast
// paths; everything else falls back to per-row Eval, so EvalBatch is
// exactly equivalent to evaluating row-at-a-time.
func EvalBatch(c Compiled, env *Env, rows []sqltypes.Row, dst []sqltypes.Value) ([]sqltypes.Value, error) {
	switch n := c.(type) {
	case colNode:
		for _, r := range rows {
			if n.idx >= len(r) {
				return dst, fmt.Errorf("expr: column offset %d out of range (%d)", n.idx, len(r))
			}
			dst = append(dst, r[n.idx])
		}
		return dst, nil
	case litNode:
		for range rows {
			dst = append(dst, n.v)
		}
		return dst, nil
	case binNode:
		if out, ok, err := evalCmpBatch(n, env, rows, dst); ok {
			return out, err
		}
	}
	return evalBatchSlow(c, env, rows, dst)
}

func evalBatchSlow(c Compiled, env *Env, rows []sqltypes.Row, dst []sqltypes.Value) ([]sqltypes.Value, error) {
	saved := env.Row
	defer func() { env.Row = saved }()
	for _, r := range rows {
		env.Row = r
		v, err := c.Eval(env)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// leafOperand resolves an expression that is constant per batch (a
// column reference, literal or bound parameter) into either a column
// index (col >= 0) or a value. ok=false for any other shape.
func leafOperand(c Compiled, env *Env) (col int, v sqltypes.Value, ok bool) {
	switch x := c.(type) {
	case colNode:
		return x.idx, sqltypes.Value{}, true
	case litNode:
		return -1, x.v, true
	case paramNode:
		if x.idx >= len(env.Params) {
			return 0, sqltypes.Value{}, false
		}
		return -1, env.Params[x.idx], true
	}
	return 0, sqltypes.Value{}, false
}

// evalCmpBatch vectorizes comparisons whose operands are column
// references, literals or parameters — the common pushed-down filter
// shape — avoiding the per-row double expression dispatch. ok=false
// means the expression is not of that shape and the caller falls back
// to per-row Eval. Semantics match binNode.Eval exactly: NULL operands
// compare to NULL, everything else through sqltypes.Compare ordering.
func evalCmpBatch(n binNode, env *Env, rows []sqltypes.Row, dst []sqltypes.Value) ([]sqltypes.Value, bool, error) {
	switch n.op {
	case opEq, opNe, opLt, opLe, opGt, opGe:
	default:
		return dst, false, nil
	}
	lcol, lval, lok := leafOperand(n.l, env)
	rcol, rval, rok := leafOperand(n.r, env)
	if !lok || !rok {
		return dst, false, nil
	}
	for _, row := range rows {
		lv := lval
		if lcol >= 0 {
			if lcol >= len(row) {
				return dst, true, fmt.Errorf("expr: column offset %d out of range (%d)", lcol, len(row))
			}
			lv = row[lcol]
		}
		rv := rval
		if rcol >= 0 {
			if rcol >= len(row) {
				return dst, true, fmt.Errorf("expr: column offset %d out of range (%d)", rcol, len(row))
			}
			rv = row[rcol]
		}
		if lv.IsNull() || rv.IsNull() {
			dst = append(dst, sqltypes.NullValue())
			continue
		}
		var c int
		if lv.T == sqltypes.Int && rv.T == sqltypes.Int {
			switch {
			case lv.I < rv.I:
				c = -1
			case lv.I > rv.I:
				c = 1
			}
		} else {
			c = sqltypes.Compare(lv, rv)
		}
		var out bool
		switch n.op {
		case opEq:
			out = c == 0
		case opNe:
			out = c != 0
		case opLt:
			out = c < 0
		case opLe:
			out = c <= 0
		case opGt:
			out = c > 0
		case opGe:
			out = c >= 0
		}
		dst = append(dst, sqltypes.NewBool(out))
	}
	return dst, true, nil
}
