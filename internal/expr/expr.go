// Package expr compiles parser expression ASTs against a row layout
// and evaluates them with SQL three-valued-logic semantics. Compiled
// expressions are immutable and safe for concurrent evaluation with
// separate environments.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Env carries the per-row evaluation state.
type Env struct {
	Row    sqltypes.Row     // combined input row
	Params []sqltypes.Value // bound statement parameters
}

// Compiled is an executable expression.
type Compiled interface {
	Eval(env *Env) (sqltypes.Value, error)
}

// Resolver maps a (table qualifier, column name) pair to an offset in
// the combined row and the column's declared type.
type Resolver interface {
	Resolve(table, column string) (int, sqltypes.Type, error)
}

// Bind compiles a parser expression against a resolver. Aggregate
// function calls are rejected — the executor rewrites them to column
// references over aggregated rows before binding.
func Bind(e sqlparser.Expr, r Resolver) (Compiled, error) {
	switch x := e.(type) {
	case sqlparser.Literal:
		return litNode{v: x.Val}, nil
	case sqlparser.Param:
		return paramNode{idx: x.Idx}, nil
	case sqlparser.ColumnRef:
		idx, _, err := r.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return colNode{idx: idx}, nil
	case sqlparser.BinaryExpr:
		l, err := Bind(x.Left, r)
		if err != nil {
			return nil, err
		}
		rt, err := Bind(x.Right, r)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("expr: unsupported operator %q", x.Op)
		}
		return binNode{op: op, opName: x.Op, l: l, r: rt}, nil
	case sqlparser.UnaryExpr:
		operand, err := Bind(x.Operand, r)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return notNode{operand}, nil
		case "-":
			return negNode{operand}, nil
		}
		return nil, fmt.Errorf("expr: unsupported unary operator %q", x.Op)
	case sqlparser.InExpr:
		needle, err := Bind(x.Expr, r)
		if err != nil {
			return nil, err
		}
		list := make([]Compiled, len(x.List))
		for i, it := range x.List {
			if list[i], err = Bind(it, r); err != nil {
				return nil, err
			}
		}
		return inNode{not: x.Not, needle: needle, list: list}, nil
	case sqlparser.BetweenExpr:
		v, err := Bind(x.Expr, r)
		if err != nil {
			return nil, err
		}
		lo, err := Bind(x.Lo, r)
		if err != nil {
			return nil, err
		}
		hi, err := Bind(x.Hi, r)
		if err != nil {
			return nil, err
		}
		return betweenNode{not: x.Not, v: v, lo: lo, hi: hi}, nil
	case sqlparser.IsNullExpr:
		v, err := Bind(x.Expr, r)
		if err != nil {
			return nil, err
		}
		return isNullNode{not: x.Not, v: v}, nil
	case sqlparser.FuncCall:
		return nil, fmt.Errorf("expr: aggregate %s not allowed in this context", x.Name)
	case nil:
		return nil, fmt.Errorf("expr: nil expression")
	default:
		return nil, fmt.Errorf("expr: unsupported expression %T", e)
	}
}

type litNode struct{ v sqltypes.Value }

func (n litNode) Eval(*Env) (sqltypes.Value, error) { return n.v, nil }

type paramNode struct{ idx int }

func (n paramNode) Eval(env *Env) (sqltypes.Value, error) {
	if n.idx >= len(env.Params) {
		return sqltypes.Value{}, fmt.Errorf("expr: parameter %d out of range", n.idx)
	}
	return env.Params[n.idx], nil
}

type colNode struct{ idx int }

func (n colNode) Eval(env *Env) (sqltypes.Value, error) {
	if n.idx >= len(env.Row) {
		return sqltypes.Value{}, fmt.Errorf("expr: column offset %d out of range (%d)", n.idx, len(env.Row))
	}
	return env.Row[n.idx], nil
}

type binOp uint8

const (
	opEq binOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opAnd
	opOr
	opLike
)

var binOps = map[string]binOp{
	"=": opEq, "<>": opNe, "<": opLt, "<=": opLe, ">": opGt, ">=": opGe,
	"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "%": opMod,
	"AND": opAnd, "OR": opOr, "LIKE": opLike,
}

type binNode struct {
	op     binOp
	opName string
	l, r   Compiled
}

func (n binNode) Eval(env *Env) (sqltypes.Value, error) {
	// AND/OR need three-valued logic with short circuits.
	if n.op == opAnd || n.op == opOr {
		return n.evalLogic(env)
	}
	lv, err := n.l.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	rv, err := n.r.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	switch n.op {
	case opEq, opNe, opLt, opLe, opGt, opGe:
		if lv.IsNull() || rv.IsNull() {
			return sqltypes.NullValue(), nil
		}
		c := sqltypes.Compare(lv, rv)
		var out bool
		switch n.op {
		case opEq:
			out = c == 0
		case opNe:
			out = c != 0
		case opLt:
			out = c < 0
		case opLe:
			out = c <= 0
		case opGt:
			out = c > 0
		case opGe:
			out = c >= 0
		}
		return sqltypes.NewBool(out), nil
	case opAdd, opSub, opMul, opDiv, opMod:
		return arith(n.op, n.opName, lv, rv)
	case opLike:
		if lv.IsNull() || rv.IsNull() {
			return sqltypes.NullValue(), nil
		}
		return sqltypes.NewBool(likeMatch(lv.String(), rv.String())), nil
	}
	return sqltypes.Value{}, fmt.Errorf("expr: unhandled operator %s", n.opName)
}

func (n binNode) evalLogic(env *Env) (sqltypes.Value, error) {
	lv, err := n.l.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if n.op == opAnd {
		if !lv.IsNull() && !lv.Bool() {
			return sqltypes.NewBool(false), nil
		}
		rv, err := n.r.Eval(env)
		if err != nil {
			return sqltypes.Value{}, err
		}
		switch {
		case !rv.IsNull() && !rv.Bool():
			return sqltypes.NewBool(false), nil
		case lv.IsNull() || rv.IsNull():
			return sqltypes.NullValue(), nil
		default:
			return sqltypes.NewBool(true), nil
		}
	}
	// OR
	if !lv.IsNull() && lv.Bool() {
		return sqltypes.NewBool(true), nil
	}
	rv, err := n.r.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	switch {
	case !rv.IsNull() && rv.Bool():
		return sqltypes.NewBool(true), nil
	case lv.IsNull() || rv.IsNull():
		return sqltypes.NullValue(), nil
	default:
		return sqltypes.NewBool(false), nil
	}
}

func arith(op binOp, opName string, a, b sqltypes.Value) (sqltypes.Value, error) {
	if a.IsNull() || b.IsNull() {
		return sqltypes.NullValue(), nil
	}
	if a.T == sqltypes.Text || b.T == sqltypes.Text {
		if op == opAdd && a.T == sqltypes.Text && b.T == sqltypes.Text {
			return sqltypes.NewText(a.S + b.S), nil // string concatenation
		}
		return sqltypes.Value{}, fmt.Errorf("expr: operator %s not defined on text", opName)
	}
	if a.T == sqltypes.Int && b.T == sqltypes.Int {
		switch op {
		case opAdd:
			return sqltypes.NewInt(a.I + b.I), nil
		case opSub:
			return sqltypes.NewInt(a.I - b.I), nil
		case opMul:
			return sqltypes.NewInt(a.I * b.I), nil
		case opDiv:
			if b.I == 0 {
				return sqltypes.Value{}, fmt.Errorf("expr: division by zero")
			}
			return sqltypes.NewInt(a.I / b.I), nil
		case opMod:
			if b.I == 0 {
				return sqltypes.Value{}, fmt.Errorf("expr: modulo by zero")
			}
			return sqltypes.NewInt(a.I % b.I), nil
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case opAdd:
		return sqltypes.NewFloat(af + bf), nil
	case opSub:
		return sqltypes.NewFloat(af - bf), nil
	case opMul:
		return sqltypes.NewFloat(af * bf), nil
	case opDiv:
		if bf == 0 {
			return sqltypes.Value{}, fmt.Errorf("expr: division by zero")
		}
		return sqltypes.NewFloat(af / bf), nil
	case opMod:
		return sqltypes.Value{}, fmt.Errorf("expr: modulo requires integers")
	}
	return sqltypes.Value{}, fmt.Errorf("expr: unhandled arithmetic %s", opName)
}

type notNode struct{ v Compiled }

func (n notNode) Eval(env *Env) (sqltypes.Value, error) {
	v, err := n.v.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if v.IsNull() {
		return sqltypes.NullValue(), nil
	}
	return sqltypes.NewBool(!v.Bool()), nil
}

type negNode struct{ v Compiled }

func (n negNode) Eval(env *Env) (sqltypes.Value, error) {
	v, err := n.v.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	switch v.T {
	case sqltypes.Null:
		return v, nil
	case sqltypes.Int:
		return sqltypes.NewInt(-v.I), nil
	case sqltypes.Float:
		return sqltypes.NewFloat(-v.F), nil
	}
	return sqltypes.Value{}, fmt.Errorf("expr: cannot negate %s", v.T)
}

type inNode struct {
	not    bool
	needle Compiled
	list   []Compiled
}

func (n inNode) Eval(env *Env) (sqltypes.Value, error) {
	nv, err := n.needle.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if nv.IsNull() {
		return sqltypes.NullValue(), nil
	}
	sawNull := false
	for _, item := range n.list {
		iv, err := item.Eval(env)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if sqltypes.Equal(nv, iv) {
			return sqltypes.NewBool(!n.not), nil
		}
	}
	if sawNull {
		return sqltypes.NullValue(), nil
	}
	return sqltypes.NewBool(n.not), nil
}

type betweenNode struct {
	not       bool
	v, lo, hi Compiled
}

func (n betweenNode) Eval(env *Env) (sqltypes.Value, error) {
	v, err := n.v.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	lo, err := n.lo.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	hi, err := n.hi.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqltypes.NullValue(), nil
	}
	in := sqltypes.Compare(v, lo) >= 0 && sqltypes.Compare(v, hi) <= 0
	if n.not {
		in = !in
	}
	return sqltypes.NewBool(in), nil
}

type isNullNode struct {
	not bool
	v   Compiled
}

func (n isNullNode) Eval(env *Env) (sqltypes.Value, error) {
	v, err := n.v.Eval(env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	res := v.IsNull()
	if n.not {
		res = !res
	}
	return sqltypes.NewBool(res), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single
// byte), matching case-sensitively as Ingres does.
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// SimpleResolver resolves column names against a single flat schema
// with optional table qualifiers per column.
type SimpleResolver struct {
	Cols []ResolvedCol
}

// ResolvedCol is one column visible to a SimpleResolver.
type ResolvedCol struct {
	Table string // qualifier this column answers to (lower-case ok)
	Name  string
	Type  sqltypes.Type
}

// Resolve implements Resolver with case-insensitive matching and
// ambiguity detection.
func (r *SimpleResolver) Resolve(table, column string) (int, sqltypes.Type, error) {
	found := -1
	var typ sqltypes.Type
	for i, c := range r.Cols {
		if !strings.EqualFold(c.Name, column) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, 0, fmt.Errorf("expr: ambiguous column %q", column)
		}
		found = i
		typ = c.Type
	}
	if found < 0 {
		if table != "" {
			return 0, 0, fmt.Errorf("expr: unknown column %s.%s", table, column)
		}
		return 0, 0, fmt.Errorf("expr: unknown column %q", column)
	}
	return found, typ, nil
}
