package expr

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

func bindExprForTest(t *testing.T, cond string) Compiled {
	t.Helper()
	st, err := sqlparser.Parse("SELECT * FROM x WHERE " + cond)
	if err != nil {
		t.Fatal(err)
	}
	r := &SimpleResolver{Cols: []ResolvedCol{
		{Name: "a", Type: sqltypes.Int},
		{Name: "b", Type: sqltypes.Float},
		{Name: "c", Type: sqltypes.Text},
	}}
	c, err := Bind(st.(*sqlparser.SelectStmt).Where, r)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEvalBatchMatchesEval asserts that for randomized rows and a mix
// of expression shapes (including the colNode/litNode fast paths),
// EvalBatch produces exactly the per-row Eval results.
func TestEvalBatchMatchesEval(t *testing.T) {
	exprs := []string{
		"a",                   // colNode fast path
		"7",                   // litNode fast path
		"a + b * 2",           // arithmetic
		"a > 3 AND b < 100.0", // three-valued logic
		"c LIKE 'v%'",         // text
		"a IN (1, 2, 3) OR c IS NULL",
	}
	gen := func(vals []int64, nulls []bool) bool {
		n := len(vals)
		if len(nulls) < n {
			n = len(nulls)
		}
		rows := make([]sqltypes.Row, n)
		for i := 0; i < n; i++ {
			if nulls[i] {
				rows[i] = sqltypes.Row{sqltypes.NullValue(), sqltypes.NullValue(), sqltypes.NullValue()}
			} else {
				rows[i] = sqltypes.Row{
					sqltypes.NewInt(vals[i] % 10),
					sqltypes.NewFloat(float64(vals[i]%1000) / 4),
					sqltypes.NewText(fmt.Sprintf("v%d", vals[i]%5)),
				}
			}
		}
		env := &Env{}
		for _, src := range exprs {
			c := bindExprForTest(t, src)
			batch, err := EvalBatch(c, env, rows, nil)
			if err != nil {
				return false
			}
			if len(batch) != len(rows) {
				return false
			}
			for i, r := range rows {
				env.Row = r
				want, err := c.Eval(env)
				if err != nil {
					return false
				}
				got := batch[i]
				if got.T != want.T || (!got.IsNull() && !sqltypes.Equal(got, want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalBatchError asserts the fallback path surfaces evaluation
// errors (division by zero) instead of swallowing them.
func TestEvalBatchError(t *testing.T) {
	c := bindExprForTest(t, "a / 0 > 1")
	rows := []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewFloat(0), sqltypes.NewText("")}}
	if _, err := EvalBatch(c, &Env{}, rows, nil); err == nil {
		t.Fatal("division by zero not surfaced")
	}
	// env.Row must be restored even on error.
	env := &Env{Row: rows[0]}
	EvalBatch(c, env, rows, nil)
	if len(env.Row) != 3 {
		t.Fatal("env.Row clobbered after EvalBatch")
	}
}
