package workloaddb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
)

func openDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.Config{Dir: t.TempDir(), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestEnsureSchemaIdempotent(t *testing.T) {
	db := openDB(t)
	if err := EnsureSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := EnsureSchema(db); err != nil {
		t.Fatalf("second EnsureSchema: %v", err)
	}
	s := db.NewSession()
	defer s.Close()
	for _, tbl := range AllTables {
		if _, err := s.Exec("SELECT COUNT(*) FROM " + tbl); err != nil {
			t.Errorf("table %s: %v", tbl, err)
		}
	}
}

func TestPrune(t *testing.T) {
	db := openDB(t)
	if err := EnsureSchema(db); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	now := time.Now()
	old := now.Add(-48 * time.Hour).UnixMicro()
	fresh := now.Add(-time.Hour).UnixMicro()
	for _, ts := range []int64{old, fresh} {
		if _, err := s.Exec(fmt.Sprintf(
			"INSERT INTO %s VALUES (%d, 1, 1, 1, 1, 1, 1, 1.0, 1.0, 1.0, 1, 1, 0)",
			Workload, ts)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	removed, err := Prune(db, 24*time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	s2 := db.NewSession()
	defer s2.Close()
	res, _ := s2.Exec("SELECT COUNT(*) FROM " + Workload)
	if res.Rows[0][0].I != 1 {
		t.Errorf("surviving rows = %v", res.Rows[0][0])
	}
}

func TestGrowthModelMath(t *testing.T) {
	g := GrowthModel{StatementsPerSecond: 10, BytesPerWorkloadRow: 100, Retention: 10 * time.Hour}
	if got := g.BytesPerHour(); got != 10*100*3600 {
		t.Errorf("BytesPerHour = %v", got)
	}
	if got := g.CapBytes(); got != 10*100*3600*10 {
		t.Errorf("CapBytes = %v", got)
	}
}

func TestStatementTextMaxMatchesEngine(t *testing.T) {
	// The daemon's truncation bound, the ws_statements VARCHAR width
	// and the engine's hard row limit must agree, or appends of
	// near-limit statement text fail at insert time.
	if StatementTextMax != engine.MaxTextBytes {
		t.Errorf("StatementTextMax = %d, engine.MaxTextBytes = %d", StatementTextMax, engine.MaxTextBytes)
	}
}

func TestStatisticsSchemaHasDaemonCounters(t *testing.T) {
	db := openDB(t)
	if err := EnsureSchema(db); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	defer s.Close()
	res, err := s.Exec("SELECT poll_errors, retries, carryover_depth, alert_errors FROM " + Statistics)
	if err != nil {
		t.Fatalf("daemon counters missing from %s: %v", Statistics, err)
	}
	_ = res
}
