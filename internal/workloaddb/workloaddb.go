// Package workloaddb defines the persistent workload database: a
// native database (in the same engine) holding timestamped copies of
// the IMA tables, appended by the storage daemon. Because it is an
// ordinary database, "handling the collected data is most simple and
// can be done with standard SQL" — the analyzer and the alerting rules
// run plain queries against it.
package workloaddb

import (
	"fmt"
	"time"

	"repro/internal/engine"
)

// Table names in the workload database. Every table carries a ts_us
// column: the poll timestamp in unix microseconds, enabling the trend
// analysis the paper collects data for.
const (
	Statements = "ws_statements"
	Workload   = "ws_workload"
	References = "ws_references"
	Tables     = "ws_tables"
	Attributes = "ws_attributes"
	Indexes    = "ws_indexes"
	Statistics = "ws_statistics"
	Latency    = "ws_latency"
	Actions    = "ws_actions"
	Waits      = "ws_waits"
	Mvcc       = "ws_mvcc"
)

// StatementTextMax bounds persisted statement text in bytes. It
// matches both the query_text VARCHAR(512) column below and the
// engine's MaxTextBytes row limit; the daemon truncates statement
// text to this many bytes on a rune boundary before appending.
const StatementTextMax = 512

// schemaDDL creates the workload tables.
var schemaDDL = []string{
	`CREATE TABLE IF NOT EXISTS ` + Statements + ` (
		ts_us BIGINT, hash BIGINT, query_text VARCHAR(512), kind VARCHAR(32),
		frequency BIGINT, first_seen_us BIGINT, last_seen_us BIGINT)`,
	`CREATE TABLE IF NOT EXISTS ` + Workload + ` (
		ts_us BIGINT, hash BIGINT, start_us BIGINT, wall_us BIGINT, opt_us BIGINT,
		exec_cpu BIGINT, exec_io BIGINT, est_cpu FLOAT, est_io FLOAT, est_rows FLOAT,
		rows BIGINT, mon_ns BIGINT, error BIGINT)`,
	`CREATE TABLE IF NOT EXISTS ` + References + ` (
		ts_us BIGINT, hash BIGINT, obj_type VARCHAR(16), obj_name VARCHAR(128),
		table_name VARCHAR(64))`,
	`CREATE TABLE IF NOT EXISTS ` + Tables + ` (
		ts_us BIGINT, table_name VARCHAR(64), frequency BIGINT, structure VARCHAR(16),
		data_pages BIGINT, overflow_pages BIGINT, row_count BIGINT)`,
	`CREATE TABLE IF NOT EXISTS ` + Attributes + ` (
		ts_us BIGINT, attr_name VARCHAR(128), table_name VARCHAR(64),
		frequency BIGINT, has_histogram BIGINT)`,
	`CREATE TABLE IF NOT EXISTS ` + Indexes + ` (
		ts_us BIGINT, index_name VARCHAR(64), table_name VARCHAR(64),
		frequency BIGINT, is_virtual BIGINT)`,
	// After db_bytes come the storage daemon's own health counters,
	// sampled each poll so the collector's failure history is queryable
	// (and trendable) like any other statistic. The trailing three
	// buffer-manager columns (evictions, resident, pin waits) are
	// appended — never inserted mid-row — so older workload databases
	// stay readable by position.
	`CREATE TABLE IF NOT EXISTS ` + Statistics + ` (
		ts_us BIGINT, current_sessions BIGINT, peak_sessions BIGINT, statements BIGINT,
		locks_held BIGINT, lock_waits BIGINT, deadlocks BIGINT, cache_hits BIGINT,
		cache_misses BIGINT, disk_reads BIGINT, disk_writes BIGINT, db_bytes BIGINT,
		poll_errors BIGINT, retries BIGINT, carryover_depth BIGINT, alert_errors BIGINT,
		cache_evictions BIGINT, cache_resident BIGINT, pin_waits BIGINT,
		wal_bytes BIGINT, wal_fsyncs BIGINT, redo_records BIGINT, redo_nanos BIGINT,
		apply_failures BIGINT,
		parallel_queries BIGINT, morsels_dispatched BIGINT, parallel_worker_nanos BIGINT)`,
	// One row per non-empty histogram bucket per poll. Counts are
	// cumulative since monitor start (counter semantics, like
	// Prometheus); the analyzer differences successive snapshots to get
	// per-interval distributions and quantiles.
	`CREATE TABLE IF NOT EXISTS ` + Latency + ` (
		ts_us BIGINT, scope VARCHAR(8), bucket BIGINT, lo_ns BIGINT, hi_ns BIGINT,
		bucket_count BIGINT)`,
	// The persisted audit trail of the analyzer's apply state machine:
	// one row per action state transition, mirroring ima_actions. seq is
	// monotone within one applier lifetime; the daemon uses it as an
	// append watermark.
	`CREATE TABLE IF NOT EXISTS ` + Actions + ` (
		ts_us BIGINT, seq BIGINT, action_id BIGINT, kind VARCHAR(32),
		target VARCHAR(64), sql_text VARCHAR(512), state VARCHAR(16),
		baseline_us BIGINT, observed_us BIGINT, delta_pct FLOAT,
		samples BIGINT, at_us BIGINT, detail VARCHAR(512))`,
	// Phase-2 wait attribution: one row per flagged statement per poll,
	// with cumulative nanosecond counters per wait class (counter
	// semantics, like ws_latency: the analyzer differences successive
	// snapshots of the same hash for per-interval breakdowns).
	`CREATE TABLE IF NOT EXISTS ` + Waits + ` (
		ts_us BIGINT, hash BIGINT, query_text VARCHAR(512), reason VARCHAR(16),
		samples BIGINT, wall_ns BIGINT, exec_ns BIGINT, lock_ns BIGINT,
		io_ns BIGINT, fsync_ns BIGINT, pinwait_ns BIGINT)`,
	// MVCC snapshot-isolation health: one row per poll, mirroring
	// ima_mvcc. Counter columns (begins/commits/aborts/conflicts,
	// vacuum_*) are cumulative; gauge columns (inflight, snapshots,
	// oldest_snapshot_ns, chain_len_p95) are instantaneous.
	`CREATE TABLE IF NOT EXISTS ` + Mvcc + ` (
		ts_us BIGINT, txn_begins BIGINT, txn_commits BIGINT, txn_aborts BIGINT,
		write_conflicts BIGINT, inflight_txns BIGINT, active_snapshots BIGINT,
		aborted_ids BIGINT, oldest_snapshot_ns BIGINT, vacuum_runs BIGINT,
		vacuum_reclaimed BIGINT, vacuum_cleared BIGINT, retired_ids BIGINT,
		chain_len_p95 BIGINT)`,
}

// AllTables lists every workload table, for pruning and reporting.
var AllTables = []string{Statements, Workload, References, Tables, Attributes, Indexes, Statistics, Latency, Actions, Waits, Mvcc}

// EnsureSchema creates the workload tables if they do not exist.
func EnsureSchema(db *engine.DB) error {
	s := db.NewSession()
	defer s.Close()
	for _, ddl := range schemaDDL {
		if _, err := s.Exec(ddl); err != nil {
			return fmt.Errorf("workloaddb: %w", err)
		}
	}
	return nil
}

// Prune deletes rows older than the retention window from every table.
// It returns the number of rows removed.
func Prune(db *engine.DB, retention time.Duration, now time.Time) (int64, error) {
	cutoff := now.Add(-retention).UnixMicro()
	s := db.NewSession()
	defer s.Close()
	var removed int64
	for _, t := range AllTables {
		res, err := s.Exec(fmt.Sprintf("DELETE FROM %s WHERE ts_us < %d", t, cutoff))
		if err != nil {
			return removed, fmt.Errorf("workloaddb: prune %s: %w", t, err)
		}
		removed += res.RowsAffected
	}
	return removed, nil
}

// GrowthModel captures the paper's §V-A capacity computation: at a
// given statement logging rate the workload DB grows linearly and is
// capped by the retention window.
type GrowthModel struct {
	StatementsPerSecond float64
	BytesPerWorkloadRow float64
	Retention           time.Duration
}

// BytesPerHour returns the modelled growth rate.
func (g GrowthModel) BytesPerHour() float64 {
	return g.StatementsPerSecond * g.BytesPerWorkloadRow * 3600
}

// CapBytes returns the steady-state size after retention pruning.
func (g GrowthModel) CapBytes() float64 {
	return g.BytesPerHour() * g.Retention.Hours()
}
