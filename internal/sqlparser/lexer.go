// Package sqlparser implements the SQL dialect of the engine: a lexer,
// a recursive-descent parser producing an AST, and a normalizer that
// extracts literals as parameters so that structurally identical
// statements share a plan-cache entry.
package sqlparser

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keyword/ident/symbol text (keywords upper-cased)
	pos  int
}

// keywordList enumerates the keywords recognized by the lexer.
// Identifiers matching these (case insensitive) become keyword tokens.
var keywordList = []string{
	"SELECT", "DISTINCT", "FROM", "WHERE",
	"GROUP", "BY", "HAVING", "ORDER",
	"ASC", "DESC", "LIMIT", "OFFSET",
	"JOIN", "INNER", "LEFT", "ON", "AS",
	"AND", "OR", "NOT", "IN", "BETWEEN",
	"LIKE", "IS", "NULL",
	"CREATE", "TABLE", "DROP", "INDEX",
	"VIRTUAL", "UNIQUE", "PRIMARY", "KEY",
	"INSERT", "INTO", "VALUES",
	"UPDATE", "SET", "DELETE",
	"MODIFY", "TO", "HEAP", "BTREE",
	"STATISTICS", "FOR", "EXPLAIN", "WHATIF", "ANALYZE",
	"INTEGER", "INT", "BIGINT",
	"FLOAT", "REAL", "DOUBLE",
	"VARCHAR", "CHAR", "TEXT",
	"COUNT", "SUM", "AVG", "MIN", "MAX",
	"IF", "EXISTS", "ONLINE",
}

// keywords maps the upper-cased spelling to an interned canonical
// string, so keyword tokens never allocate.
var keywords = func() map[string]string {
	m := make(map[string]string, len(keywordList))
	for _, k := range keywordList {
		m[k] = k
	}
	return m
}()

// maxKeywordLen bounds the upper-casing scratch buffer.
const maxKeywordLen = 10 // "STATISTICS"

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns a descriptive error with byte position
// on bad input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, toks: make([]token, 0, len(src)/4+4)}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			word := l.src[start:l.pos]
			if kw, ok := lookupKeyword(word); ok {
				l.toks = append(l.toks, token{kind: tokKeyword, text: kw, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9':
			kind := tokInt
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.pos < len(l.src) && l.src[l.pos] == '.' {
				kind = tokFloat
				l.pos++
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
				kind = tokFloat
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				if l.pos >= len(l.src) || !isDigit(l.src[l.pos]) {
					return nil, fmt.Errorf("sql: malformed number at byte %d", start)
				}
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			bodyStart := l.pos
			escaped := false
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string starting at byte %d", start)
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						escaped = true
						l.pos += 2
						continue
					}
					break
				}
				l.pos++
			}
			text := l.src[bodyStart:l.pos] // no copy in the common case
			l.pos++
			if escaped {
				text = strings.ReplaceAll(text, "''", "'")
			}
			l.toks = append(l.toks, token{kind: tokString, text: text, pos: start})
		case strings.IndexByte("(),*.+-/%=;", c) >= 0:
			l.pos++
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		case c == '<':
			l.pos++
			sym := "<"
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
				sym += string(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		case c == '>':
			l.pos++
			sym := ">"
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				sym = ">="
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				l.toks = append(l.toks, token{kind: tokSymbol, text: "<>", pos: start})
				break
			}
			return nil, fmt.Errorf("sql: unexpected '!' at byte %d", start)
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at byte %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
func isDigit(c byte) bool     { return c >= '0' && c <= '9' }

// lookupKeyword reports whether word is a keyword, returning the
// interned upper-case spelling. It upper-cases into a stack buffer so
// the lookup never allocates.
func lookupKeyword(word string) (string, bool) {
	if len(word) > maxKeywordLen {
		return "", false
	}
	var buf [maxKeywordLen]byte
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	kw, ok := keywords[string(buf[:len(word)])]
	return kw, ok
}
