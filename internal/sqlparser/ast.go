package sqlparser

import (
	"strings"

	"repro/internal/sqltypes"
)

// Statement is the interface implemented by all parsed statements.
type Statement interface {
	stmt()
	// Kind returns a short tag ("SELECT", "INSERT", ...) used by the
	// monitor and the plan cache.
	Kind() string
}

// Expr is the interface implemented by all expression nodes.
type Expr interface{ expr() }

// ColumnRef names a column, optionally qualified ("t.a" or "a").
type ColumnRef struct {
	Table string // may be empty
	Name  string
}

// Literal is a constant value in the statement text.
type Literal struct {
	Val sqltypes.Value
}

// Param is a literal extracted by the normalizer; Idx indexes into the
// statement's parameter list.
type Param struct {
	Idx int
}

// BinaryExpr applies Op to two operands. Ops: = <> < <= > >= + - * / %
// AND OR LIKE.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr applies Op ("NOT" or "-") to an operand.
type UnaryExpr struct {
	Op      string
	Operand Expr
}

// InExpr tests membership: Expr [NOT] IN (list).
type InExpr struct {
	Not  bool
	Expr Expr
	List []Expr
}

// BetweenExpr tests Expr [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	Not    bool
	Expr   Expr
	Lo, Hi Expr
}

// IsNullExpr tests Expr IS [NOT] NULL.
type IsNullExpr struct {
	Not  bool
	Expr Expr
}

// FuncCall is an aggregate or scalar function call. Star marks
// COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Star     bool
	Distinct bool
	Args     []Expr
}

func (ColumnRef) expr()   {}
func (Literal) expr()     {}
func (Param) expr()       {}
func (BinaryExpr) expr()  {}
func (UnaryExpr) expr()   {}
func (InExpr) expr()      {}
func (BetweenExpr) expr() {}
func (IsNullExpr) expr()  {}
func (FuncCall) expr()    {}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	Star  bool   // bare * or t.*
	Table string // qualifier for t.*
	Expr  Expr
	Alias string
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// AliasOrName returns the alias if present, else the table name.
func (t TableRef) AliasOrName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an explicit "JOIN t ON cond" member of the FROM list.
type JoinClause struct {
	Table TableRef
	Cond  Expr // nil for a plain cross member
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []JoinClause // explicit JOIN ... ON appended after From[0]
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 if absent
	Offset   int64 // 0 if absent
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       sqltypes.Type
	PrimaryKey bool
}

// CreateTableStmt creates a base table.
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string // from a table-level PRIMARY KEY (...) clause
}

// DropTableStmt drops a base table.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// CreateIndexStmt creates a secondary index. Virtual indexes exist only
// in the catalog: the optimizer may cost them but the executor refuses
// to use them (the AutoAdmin-style what-if mechanism).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Virtual bool
	// Online requests a concurrent build: the heap is backfilled in
	// batches while DML proceeds, with a side-log replayed before the
	// final catch-up under the DDL gate.
	Online bool
}

// DropIndexStmt drops a secondary index.
type DropIndexStmt struct {
	Name     string
	IfExists bool
}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table   string
	Columns []string // optional
	Rows    [][]Expr
}

// UpdateStmt updates rows in place.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one "col = expr" assignment.
type SetClause struct {
	Column string
	Expr   Expr
}

// DeleteStmt deletes rows.
type DeleteStmt struct {
	Table string
	Where Expr
}

// ModifyStmt changes a table's storage structure, rebuilding it:
// MODIFY t TO BTREE [ON col, ...] | MODIFY t TO HEAP.
type ModifyStmt struct {
	Table     string
	Structure string   // "BTREE" or "HEAP"
	KeyCols   []string // for BTREE; defaults to the primary key
}

// ExplainStmt plans a SELECT: EXPLAIN [WHATIF|ANALYZE] SELECT ... .
// WHATIF admits virtual indexes, exposing the analyzer's what-if
// interface directly in SQL. ANALYZE also executes the statement and
// annotates every operator with actual rows and time next to the
// optimizer's estimates (WHATIF and ANALYZE are mutually exclusive:
// virtual indexes cannot be executed).
type ExplainStmt struct {
	WhatIf  bool
	Analyze bool
	Select  *SelectStmt
}

// CreateStatisticsStmt collects histograms, the equivalent of Ingres
// optimizedb: CREATE STATISTICS FOR t [(col, ...)].
type CreateStatisticsStmt struct {
	Table   string
	Columns []string // empty = all columns
}

// SetStmt is a session configuration statement: SET <name> [=] <int>
// (for example SET PARALLEL 4). The name is lower-cased by the parser.
type SetStmt struct {
	Name  string
	Value int64
}

func (*SelectStmt) stmt()           {}
func (*CreateTableStmt) stmt()      {}
func (*DropTableStmt) stmt()        {}
func (*CreateIndexStmt) stmt()      {}
func (*DropIndexStmt) stmt()        {}
func (*InsertStmt) stmt()           {}
func (*UpdateStmt) stmt()           {}
func (*DeleteStmt) stmt()           {}
func (*ModifyStmt) stmt()           {}
func (*CreateStatisticsStmt) stmt() {}
func (*ExplainStmt) stmt()          {}
func (*SetStmt) stmt()              {}

func (*SelectStmt) Kind() string           { return "SELECT" }
func (*CreateTableStmt) Kind() string      { return "CREATE TABLE" }
func (*DropTableStmt) Kind() string        { return "DROP TABLE" }
func (*CreateIndexStmt) Kind() string      { return "CREATE INDEX" }
func (*DropIndexStmt) Kind() string        { return "DROP INDEX" }
func (*InsertStmt) Kind() string           { return "INSERT" }
func (*UpdateStmt) Kind() string           { return "UPDATE" }
func (*DeleteStmt) Kind() string           { return "DELETE" }
func (*ModifyStmt) Kind() string           { return "MODIFY" }
func (*CreateStatisticsStmt) Kind() string { return "CREATE STATISTICS" }
func (*ExplainStmt) Kind() string          { return "EXPLAIN" }
func (*SetStmt) Kind() string              { return "SET" }

// ReferencedTables lists every table named in the statement, in
// first-appearance order. Used by the lock manager and the monitor.
func ReferencedTables(s Statement) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		key := strings.ToLower(name)
		if name != "" && !seen[key] {
			seen[key] = true
			out = append(out, name)
		}
	}
	switch st := s.(type) {
	case *SelectStmt:
		for _, t := range st.From {
			add(t.Name)
		}
		for _, j := range st.Joins {
			add(j.Table.Name)
		}
	case *InsertStmt:
		add(st.Table)
	case *UpdateStmt:
		add(st.Table)
	case *DeleteStmt:
		add(st.Table)
	case *CreateIndexStmt:
		add(st.Table)
	case *ModifyStmt:
		add(st.Table)
	case *CreateStatisticsStmt:
		add(st.Table)
	case *CreateTableStmt:
		add(st.Name)
	case *DropTableStmt:
		add(st.Name)
	case *ExplainStmt:
		return ReferencedTables(st.Select)
	}
	return out
}

// WalkExprs calls fn for every expression node reachable from e,
// including e itself.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case BinaryExpr:
		WalkExprs(x.Left, fn)
		WalkExprs(x.Right, fn)
	case UnaryExpr:
		WalkExprs(x.Operand, fn)
	case InExpr:
		WalkExprs(x.Expr, fn)
		for _, it := range x.List {
			WalkExprs(it, fn)
		}
	case BetweenExpr:
		WalkExprs(x.Expr, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case IsNullExpr:
		WalkExprs(x.Expr, fn)
	case FuncCall:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	}
}
