package sqlparser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser mutated fragments of valid
// SQL and random byte soup; it may reject them but must never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a, b FROM t WHERE a = 5 AND b LIKE 'x%' ORDER BY a DESC LIMIT 3",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10))",
		"UPDATE t SET a = a + 1 WHERE b IN (1, 2, 3)",
		"MODIFY t TO BTREE ON a",
		"CREATE STATISTICS FOR t (a)",
		"SELECT COUNT(*) FROM a JOIN b ON a.x = b.y GROUP BY z HAVING COUNT(*) > 1",
	}
	r := rand.New(rand.NewSource(123))
	mutate := func(s string) string {
		b := []byte(s)
		switch r.Intn(5) {
		case 0: // drop a range
			if len(b) > 4 {
				i := r.Intn(len(b) - 2)
				j := i + 1 + r.Intn(len(b)-i-1)
				b = append(b[:i], b[j:]...)
			}
		case 1: // random byte flip
			if len(b) > 0 {
				b[r.Intn(len(b))] = byte(r.Intn(256))
			}
		case 2: // duplicate a chunk
			if len(b) > 4 {
				i := r.Intn(len(b) - 2)
				b = append(b[:i], append([]byte(string(b[i:])), b[i:]...)...)
			}
		case 3: // truncate
			b = b[:r.Intn(len(b)+1)]
		case 4: // insert noise
			noise := []string{"'", "(", ")", ",", "SELECT", "%", "--", "\x00", "🦉"}
			n := noise[r.Intn(len(noise))]
			i := r.Intn(len(b) + 1)
			b = append(b[:i], append([]byte(n), b[i:]...)...)
		}
		return string(b)
	}
	for i := 0; i < 20000; i++ {
		s := seeds[r.Intn(len(seeds))]
		for m := 0; m < 1+r.Intn(3); m++ {
			s = mutate(s)
		}
		// Both entry points must survive.
		Parse(s)           //nolint:errcheck
		ParseNormalized(s) //nolint:errcheck
	}
}

// TestNormalizedRoundTripStable checks that normalizing the normalized
// text is a fixed point for a corpus of valid statements.
func TestNormalizedRoundTripStable(t *testing.T) {
	corpus := []string{
		"SELECT a FROM t WHERE a = 5",
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY 2 DESC LIMIT 7",
		"SELECT x.a, y.b FROM x JOIN y ON x.k = y.k WHERE y.n BETWEEN 1 AND 9",
		"INSERT INTO t VALUES (1, 'two', 3.5)",
		"DELETE FROM t WHERE a IN (1, 2) OR b IS NOT NULL",
	}
	for _, sql := range corpus {
		r1, err := ParseNormalized(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		// Re-normalizing should produce an equivalent cache key: parse
		// the normalized text with '?' placeholders removed is not
		// possible, so instead check stability through a literal
		// round-trip: substituting the params back yields the same key.
		sub := r1.Normalized
		for _, p := range r1.Params {
			sub = strings.Replace(sub, "?", p.SQLLiteral(), 1)
		}
		r2, err := ParseNormalized(sub)
		if err != nil {
			t.Fatalf("re-parse %q: %v", sub, err)
		}
		if r2.Normalized != r1.Normalized {
			t.Errorf("normalization not stable:\n%q\n%q", r1.Normalized, r2.Normalized)
		}
		if len(r2.Params) != len(r1.Params) {
			t.Errorf("param count changed: %d vs %d", len(r2.Params), len(r1.Params))
		}
	}
}
