package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqltypes"
)

// ParseResult carries a parsed statement together with its normalized
// text and extracted parameters. Two statements that differ only in
// literal values share the same Normalized text, which is the plan
// cache key.
type ParseResult struct {
	Stmt       Statement
	Normalized string
	Params     []sqltypes.Value
}

// Parse parses a single SQL statement with literals left inline.
func Parse(sql string) (Statement, error) {
	res, err := parse(sql, false)
	if err != nil {
		return nil, err
	}
	return res.Stmt, nil
}

// ParseNormalized parses a single SQL statement, extracting every
// literal into Params and replacing it with a Param node.
func ParseNormalized(sql string) (*ParseResult, error) {
	return parse(sql, true)
}

func parse(sql string, extract bool) (*ParseResult, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{src: sql, toks: toks, extract: extract}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	res := &ParseResult{Stmt: stmt, Params: p.params}
	if extract {
		res.Normalized = p.normalized(toks)
	}
	return res, nil
}

type parser struct {
	src       string
	toks      []token
	pos       int
	extract   bool
	params    []sqltypes.Value
	extracted map[int]bool // token indices replaced by params
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return token{kind: tokEOF}
}
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near byte %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errorf("expected %s, found %q", kw, t.text)
	}
	p.next()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind != tokSymbol || t.text != sym {
		return p.errorf("expected %q, found %q", sym, t.text)
	}
	p.next()
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

// identLike accepts an identifier, or a keyword used in an identifier
// position (column names like "key" or "text" appear in the schemas).
func (p *parser) identLike() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	if t.kind == tokKeyword {
		p.next()
		return strings.ToLower(t.text), nil
	}
	return "", p.errorf("expected identifier, found %q", t.text)
}

// normalized reconstructs the statement text, replacing exactly the
// literals that were extracted as parameters with '?'. Plan-shaping
// constants (LIMIT/OFFSET, ORDER BY positions, type lengths) were not
// extracted and stay inline.
func (p *parser) normalized(toks []token) string {
	var b strings.Builder
	for i, t := range toks {
		switch {
		case t.kind == tokEOF:
		case p.extracted[i]:
			b.WriteString("? ")
		case t.kind == tokIdent:
			b.WriteString(strings.ToLower(t.text))
			b.WriteByte(' ')
		case t.kind == tokString:
			b.WriteByte('\'')
			b.WriteString(t.text)
			b.WriteString("' ")
		default:
			b.WriteString(t.text)
			b.WriteByte(' ')
		}
	}
	return strings.TrimSpace(b.String())
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected a statement, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "MODIFY":
		return p.parseModify()
	case "SET":
		// SET <name> [=] <int> — session configuration (SET PARALLEL 4).
		// The value is a plain integer constant, like LIMIT/OFFSET: it is
		// never extracted into the parameter vector.
		p.next()
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		p.acceptSymbol("=")
		v, err := p.parseIntConst()
		if err != nil {
			return nil, err
		}
		return &SetStmt{Name: strings.ToLower(name), Value: v}, nil
	case "EXPLAIN":
		p.next()
		var whatIf, analyze bool
		for { // WHATIF and ANALYZE modifiers, in either order
			if !whatIf && p.acceptKeyword("WHATIF") {
				whatIf = true
				continue
			}
			if !analyze && p.acceptKeyword("ANALYZE") {
				analyze = true
				continue
			}
			break
		}
		if p.peek().kind != tokKeyword || p.peek().text != "SELECT" {
			return nil, p.errorf("EXPLAIN supports SELECT only")
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{WhatIf: whatIf, Analyze: analyze, Select: sel}, nil
	default:
		return nil, p.errorf("unsupported statement %q", t.text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	p.next() // SELECT
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = append(st.From, ref)
		// Explicit joins attach to the FROM list.
		for {
			inner := false
			if p.acceptKeyword("INNER") {
				inner = true
			}
			if !p.acceptKeyword("JOIN") {
				if inner {
					return nil, p.errorf("expected JOIN after INNER")
				}
				break
			}
			jref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, JoinClause{Table: jref, Cond: cond})
		}
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			var e Expr
			// A bare integer is a positional reference, which shapes
			// the plan: keep it a literal, never a parameter.
			if p.peek().kind == tokInt && isOrderTerminator(p.peek2()) {
				n, err := p.parseIntConst()
				if err != nil {
					return nil, err
				}
				e = Literal{Val: sqltypes.NewInt(n)}
			} else {
				var err error
				if e, err = p.parseExpr(); err != nil {
					return nil, err
				}
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntConst()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		if p.acceptKeyword("OFFSET") {
			o, err := p.parseIntConst()
			if err != nil {
				return nil, err
			}
			st.Offset = o
		}
	}
	return st, nil
}

// parseIntConst parses a plain integer (LIMIT/OFFSET), never extracted
// as a parameter since it shapes the plan.
func (p *parser) parseIntConst() (int64, error) {
	t := p.peek()
	if t.kind != tokInt {
		return 0, p.errorf("expected integer, found %q", t.text)
	}
	p.next()
	return strconv.ParseInt(t.text, 10, 64)
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if p.peek().kind == tokIdent && p.peek2().kind == tokSymbol && p.peek2().text == "." {
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
			tbl := p.next().text
			p.next() // .
			p.next() // *
			return SelectItem{Star: true, Table: tbl}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.identLike()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.identLike()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.identLike()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar, loosest to tightest:
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((=|<>|<|<=|>|>=|LIKE) add | IS [NOT] NULL |
//	               [NOT] IN (list) | [NOT] BETWEEN add AND add)?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | primary
//	primary:= literal | funcall | columnref | ( or )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "NOT", Operand: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: t.text, Left: left, Right: right}, nil
		}
	}
	if t.kind == tokKeyword {
		not := false
		if t.text == "NOT" {
			nt := p.peek2()
			if nt.kind == tokKeyword && (nt.text == "IN" || nt.text == "BETWEEN" || nt.text == "LIKE") {
				p.next()
				not = true
				t = p.peek()
			}
		}
		switch t.text {
		case "LIKE":
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			var e Expr = BinaryExpr{Op: "LIKE", Left: left, Right: right}
			if not {
				e = UnaryExpr{Op: "NOT", Operand: e}
			}
			return e, nil
		case "IS":
			p.next()
			isNot := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return IsNullExpr{Not: isNot, Expr: left}, nil
		case "IN":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return InExpr{Not: not, Expr: left, List: list}, nil
		case "BETWEEN":
			p.next()
			lo, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BetweenExpr{Not: not, Expr: left, Lo: lo, Hi: hi}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().kind == tokSymbol && p.peek().text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of literals so "-5" is one literal. (In
		// extracting mode primaries come back as Param, handled below.)
		if lit, ok := e.(Literal); ok {
			switch lit.Val.T {
			case sqltypes.Int:
				return Literal{Val: sqltypes.NewInt(-lit.Val.I)}, nil
			case sqltypes.Float:
				return Literal{Val: sqltypes.NewFloat(-lit.Val.F)}, nil
			}
		}
		if prm, ok := e.(Param); ok && p.extract {
			// The literal was already extracted; negate the stored value.
			v := p.params[prm.Idx]
			switch v.T {
			case sqltypes.Int:
				p.params[prm.Idx] = sqltypes.NewInt(-v.I)
			case sqltypes.Float:
				p.params[prm.Idx] = sqltypes.NewFloat(-v.F)
			}
			return prm, nil
		}
		return UnaryExpr{Op: "-", Operand: e}, nil
	}
	return p.parsePrimary()
}

// literal wraps a constant, extracting it as a parameter when the
// parser runs in normalizing mode. tokIdx is the index of the literal
// token, recorded so the normalizer replaces exactly this token.
func (p *parser) literal(v sqltypes.Value, tokIdx int) Expr {
	if !p.extract {
		return Literal{Val: v}
	}
	if p.extracted == nil {
		p.extracted = map[int]bool{}
	}
	p.extracted[tokIdx] = true
	p.params = append(p.params, v)
	return Param{Idx: len(p.params) - 1}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		idx := p.pos
		p.next()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return p.literal(sqltypes.NewInt(i), idx), nil
	case tokFloat:
		idx := p.pos
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float %q", t.text)
		}
		return p.literal(sqltypes.NewFloat(f), idx), nil
	case tokString:
		idx := p.pos
		p.next()
		return p.literal(sqltypes.NewText(t.text), idx), nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return Literal{Val: sqltypes.NullValue()}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseFuncCall()
		}
		// Keyword in column position ("key", "text", ...).
		if p.peek2().kind == tokSymbol && p.peek2().text == "." {
			return p.parseColumnRef()
		}
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		return ColumnRef{Name: name}, nil
	case tokIdent:
		// Function call on an identifier? Only aggregates are supported,
		// so a bare ident followed by "(" is an error caught later.
		return p.parseColumnRef()
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

func (p *parser) parseColumnRef() (Expr, error) {
	first, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.next()
		second, err := p.identLike()
		if err != nil {
			return nil, err
		}
		return ColumnRef{Table: first, Name: second}, nil
	}
	return ColumnRef{Name: first}, nil
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := p.next().text // aggregate keyword
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	fc := FuncCall{Name: name}
	if p.acceptSymbol("*") {
		fc.Star = true
	} else {
		fc.Distinct = p.acceptKeyword("DISTINCT")
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, arg)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("UNIQUE"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true, false)
	case p.acceptKeyword("VIRTUAL"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(false, true)
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(false, false)
	case p.acceptKeyword("STATISTICS"):
		return p.parseCreateStatistics()
	default:
		return nil, p.errorf("expected TABLE, INDEX, VIRTUAL INDEX or STATISTICS after CREATE")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	st := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		// Table-level PRIMARY KEY (...).
		if p.peek().kind == tokKeyword && p.peek().text == "PRIMARY" {
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.identLike()
				if err != nil {
					return nil, err
				}
				st.PrimaryKey = append(st.PrimaryKey, col)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.identLike()
	if err != nil {
		return ColumnDef{}, err
	}
	t := p.peek()
	if t.kind != tokKeyword {
		return ColumnDef{}, p.errorf("expected a type for column %s, found %q", name, t.text)
	}
	var typ sqltypes.Type
	switch t.text {
	case "INT", "INTEGER", "BIGINT":
		typ = sqltypes.Int
	case "FLOAT", "REAL", "DOUBLE":
		typ = sqltypes.Float
	case "VARCHAR", "CHAR", "TEXT":
		typ = sqltypes.Text
	default:
		return ColumnDef{}, p.errorf("unknown type %q for column %s", t.text, name)
	}
	p.next()
	// Optional length: VARCHAR(200). Parsed and ignored.
	if p.acceptSymbol("(") {
		if _, err := p.parseIntConst(); err != nil {
			return ColumnDef{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return ColumnDef{}, err
		}
	}
	def := ColumnDef{Name: name, Type: typ}
	if p.acceptKeyword("PRIMARY") {
		if err := p.expectKeyword("KEY"); err != nil {
			return ColumnDef{}, err
		}
		def.PrimaryKey = true
	}
	return def, nil
}

func (p *parser) parseCreateIndex(unique, virtual bool) (Statement, error) {
	st := &CreateIndexStmt{Unique: unique, Virtual: virtual}
	name, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st.Table = tbl
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.identLike()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("ONLINE") {
		if st.Virtual {
			return nil, p.errorf("ONLINE does not apply to virtual indexes")
		}
		st.Online = true
	}
	return st, nil
}

func (p *parser) parseCreateStatistics() (Statement, error) {
	if err := p.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	tbl, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st := &CreateStatisticsStmt{Table: tbl}
	if p.acceptSymbol("(") {
		for {
			col, err := p.identLike()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	switch {
	case p.acceptKeyword("TABLE"):
		st := &DropTableStmt{}
		if p.acceptKeyword("IF") {
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			st.IfExists = true
		}
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		st.Name = name
		return st, nil
	case p.acceptKeyword("INDEX"):
		st := &DropIndexStmt{}
		if p.acceptKeyword("IF") {
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			st.IfExists = true
		}
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		st.Name = name
		return st, nil
	default:
		return nil, p.errorf("expected TABLE or INDEX after DROP")
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: tbl}
	if p.acceptSymbol("(") {
		for {
			col, err := p.identLike()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	tbl, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: tbl}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.identLike()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col, Expr: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: tbl}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseModify() (Statement, error) {
	p.next() // MODIFY
	tbl, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st := &ModifyStmt{Table: tbl}
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("BTREE"):
		st.Structure = "BTREE"
		if p.acceptKeyword("ON") {
			for {
				col, err := p.identLike()
				if err != nil {
					return nil, err
				}
				st.KeyCols = append(st.KeyCols, col)
				if !p.acceptSymbol(",") {
					break
				}
			}
		}
	case p.acceptKeyword("HEAP"):
		st.Structure = "HEAP"
	default:
		return nil, p.errorf("expected BTREE or HEAP after TO")
	}
	return st, nil
}

// isOrderTerminator reports whether a token can follow a positional
// ORDER BY reference.
func isOrderTerminator(t token) bool {
	switch t.kind {
	case tokEOF:
		return true
	case tokSymbol:
		return t.text == "," || t.text == ";"
	case tokKeyword:
		return t.text == "DESC" || t.text == "ASC" || t.text == "LIMIT" || t.text == "OFFSET"
	}
	return false
}
