package sqlparser

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseSimpleSelect(t *testing.T) {
	st := mustParse(t, "SELECT a, b FROM t WHERE a = 5").(*SelectStmt)
	if len(st.Items) != 2 || len(st.From) != 1 || st.From[0].Name != "t" {
		t.Fatalf("unexpected AST: %+v", st)
	}
	be, ok := st.Where.(BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("Where = %#v", st.Where)
	}
	if cr, ok := be.Left.(ColumnRef); !ok || cr.Name != "a" {
		t.Fatalf("left = %#v", be.Left)
	}
	if lit, ok := be.Right.(Literal); !ok || lit.Val.I != 5 {
		t.Fatalf("right = %#v", be.Right)
	}
}

func TestParseSelectStarAndAliases(t *testing.T) {
	st := mustParse(t, "select p.*, count(*) as cnt from protein p").(*SelectStmt)
	if !st.Items[0].Star || st.Items[0].Table != "p" {
		t.Errorf("first item: %+v", st.Items[0])
	}
	if st.Items[1].Alias != "cnt" {
		t.Errorf("second item alias: %+v", st.Items[1])
	}
	if st.From[0].Alias != "p" || st.From[0].AliasOrName() != "p" {
		t.Errorf("alias: %+v", st.From[0])
	}
}

func TestParseExplicitJoin(t *testing.T) {
	sql := "select p.nref_id, sequence, ordinal from protein p join organism o on p.nref_id = o.nref_id where p.nref_id = 'NF001'"
	st := mustParse(t, sql).(*SelectStmt)
	if len(st.From) != 1 || len(st.Joins) != 1 {
		t.Fatalf("from/joins: %d/%d", len(st.From), len(st.Joins))
	}
	if st.Joins[0].Table.AliasOrName() != "o" {
		t.Errorf("join alias: %+v", st.Joins[0].Table)
	}
	if st.Joins[0].Cond == nil {
		t.Error("missing join condition")
	}
	tables := ReferencedTables(st)
	if !reflect.DeepEqual(tables, []string{"protein", "organism"}) {
		t.Errorf("ReferencedTables = %v", tables)
	}
}

func TestParseCommaJoinAndOperatorPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT * FROM a, b WHERE a.x = b.y AND a.z > 3 OR NOT a.w = 1").(*SelectStmt)
	if len(st.From) != 2 {
		t.Fatalf("From = %+v", st.From)
	}
	or, ok := st.Where.(BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op should be OR: %#v", st.Where)
	}
	and, ok := or.Left.(BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("left of OR should be AND: %#v", or.Left)
	}
	not, ok := or.Right.(UnaryExpr)
	if !ok || not.Op != "NOT" {
		t.Fatalf("right of OR should be NOT: %#v", or.Right)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT 1 + 2 * 3 - 4 FROM t").(*SelectStmt)
	// ((1 + (2*3)) - 4)
	top := st.Items[0].Expr.(BinaryExpr)
	if top.Op != "-" {
		t.Fatalf("top = %v", top.Op)
	}
	add := top.Left.(BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("add = %v", add.Op)
	}
	mul := add.Right.(BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("mul = %v", mul.Op)
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	sql := `SELECT taxonomy_id, COUNT(*), AVG(length) FROM protein
	        GROUP BY taxonomy_id HAVING COUNT(*) > 10
	        ORDER BY taxonomy_id DESC, 2 ASC LIMIT 20 OFFSET 5`
	st := mustParse(t, sql).(*SelectStmt)
	if len(st.GroupBy) != 1 || st.Having == nil {
		t.Fatalf("group/having: %+v", st)
	}
	if len(st.OrderBy) != 2 || !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Fatalf("order: %+v", st.OrderBy)
	}
	if st.Limit != 20 || st.Offset != 5 {
		t.Fatalf("limit/offset: %d/%d", st.Limit, st.Offset)
	}
}

func TestParsePredicates(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 4 AND 5 AND c IS NOT NULL AND d LIKE 'x%' AND e NOT IN (9)").(*SelectStmt)
	var in, between, isnull, like, notin int
	WalkExprs(st.Where, func(e Expr) {
		switch x := e.(type) {
		case InExpr:
			if x.Not {
				notin++
			} else {
				in++
			}
		case BetweenExpr:
			between++
		case IsNullExpr:
			if x.Not {
				isnull++
			}
		case BinaryExpr:
			if x.Op == "LIKE" {
				like++
			}
		}
	})
	if in != 1 || between != 1 || isnull != 1 || like != 1 || notin != 1 {
		t.Errorf("predicate counts: in=%d between=%d isnotnull=%d like=%d notin=%d",
			in, between, isnull, like, notin)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a = -5 AND b = -2.5").(*SelectStmt)
	var ints []int64
	var floats []float64
	WalkExprs(st.Where, func(e Expr) {
		if lit, ok := e.(Literal); ok {
			switch lit.Val.T {
			case sqltypes.Int:
				ints = append(ints, lit.Val.I)
			case sqltypes.Float:
				floats = append(floats, lit.Val.F)
			}
		}
	})
	if len(ints) != 1 || ints[0] != -5 || len(floats) != 1 || floats[0] != -2.5 {
		t.Errorf("literals: %v %v", ints, floats)
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE protein (
		nref_id VARCHAR(32) PRIMARY KEY,
		taxonomy_id INTEGER,
		mol_weight FLOAT,
		name TEXT
	)`).(*CreateTableStmt)
	if st.Name != "protein" || len(st.Columns) != 4 {
		t.Fatalf("AST: %+v", st)
	}
	if !st.Columns[0].PrimaryKey || st.Columns[0].Type != sqltypes.Text {
		t.Errorf("col0: %+v", st.Columns[0])
	}
	if st.Columns[1].Type != sqltypes.Int || st.Columns[2].Type != sqltypes.Float {
		t.Errorf("types: %+v", st.Columns)
	}

	st2 := mustParse(t, "CREATE TABLE IF NOT EXISTS t (a INT, b INT, PRIMARY KEY (a, b))").(*CreateTableStmt)
	if !st2.IfNotExists || !reflect.DeepEqual(st2.PrimaryKey, []string{"a", "b"}) {
		t.Errorf("AST: %+v", st2)
	}
}

func TestParseIndexStatements(t *testing.T) {
	ci := mustParse(t, "CREATE INDEX ix_tax ON protein (taxonomy_id)").(*CreateIndexStmt)
	if ci.Name != "ix_tax" || ci.Table != "protein" || ci.Virtual || ci.Unique {
		t.Errorf("AST: %+v", ci)
	}
	vi := mustParse(t, "CREATE VIRTUAL INDEX vx ON protein (name, length)").(*CreateIndexStmt)
	if !vi.Virtual || len(vi.Columns) != 2 {
		t.Errorf("AST: %+v", vi)
	}
	ui := mustParse(t, "CREATE UNIQUE INDEX ux ON t (a)").(*CreateIndexStmt)
	if !ui.Unique {
		t.Errorf("AST: %+v", ui)
	}
	di := mustParse(t, "DROP INDEX IF EXISTS ix_tax").(*DropIndexStmt)
	if di.Name != "ix_tax" || !di.IfExists {
		t.Errorf("AST: %+v", di)
	}
}

func TestParseDML(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("AST: %+v", ins)
	}
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 'z' WHERE a < 10").(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("AST: %+v", up)
	}
	del := mustParse(t, "DELETE FROM t WHERE b = 'y'").(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("AST: %+v", del)
	}
}

func TestParseModifyAndStatistics(t *testing.T) {
	m := mustParse(t, "MODIFY protein TO BTREE ON nref_id").(*ModifyStmt)
	if m.Structure != "BTREE" || !reflect.DeepEqual(m.KeyCols, []string{"nref_id"}) {
		t.Errorf("AST: %+v", m)
	}
	m2 := mustParse(t, "MODIFY protein TO HEAP").(*ModifyStmt)
	if m2.Structure != "HEAP" {
		t.Errorf("AST: %+v", m2)
	}
	cs := mustParse(t, "CREATE STATISTICS FOR protein (taxonomy_id, length)").(*CreateStatisticsStmt)
	if cs.Table != "protein" || len(cs.Columns) != 2 {
		t.Errorf("AST: %+v", cs)
	}
	cs2 := mustParse(t, "CREATE STATISTICS FOR protein").(*CreateStatisticsStmt)
	if len(cs2.Columns) != 0 {
		t.Errorf("AST: %+v", cs2)
	}
}

func TestParseKeywordsAsIdentifiers(t *testing.T) {
	// "key" and "text" are keywords but are common column names.
	st := mustParse(t, "SELECT key, text FROM statements WHERE key = 5").(*SelectStmt)
	if cr, ok := st.Items[0].Expr.(ColumnRef); !ok || cr.Name != "key" {
		t.Errorf("item0: %#v", st.Items[0].Expr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"INSERT INTO t VALUES",
		"INSERT t VALUES (1)",
		"CREATE TABLE t",
		"CREATE TABLE t (a)",
		"CREATE TABLE t (a BOGUS)",
		"CREATE INDEX i ON t",
		"MODIFY t TO HASH",
		"DROP VIEW v",
		"UPDATE t SET",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t; SELECT * FROM u",
		"SELECT * FROM t WHERE a ! b",
		"SELECT * FROM t LIMIT x",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", sql)
		}
	}
}

func TestParseNormalizedExtractsParams(t *testing.T) {
	r1, err := ParseNormalized("SELECT a FROM t WHERE a = 5 AND b = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseNormalized("select a from t where a = 99 and b = 'other'")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Normalized != r2.Normalized {
		t.Errorf("normalized forms differ:\n%q\n%q", r1.Normalized, r2.Normalized)
	}
	if len(r1.Params) != 2 || r1.Params[0].I != 5 || r1.Params[1].S != "x" {
		t.Errorf("params: %v", r1.Params)
	}
	if len(r2.Params) != 2 || r2.Params[0].I != 99 || r2.Params[1].S != "other" {
		t.Errorf("params: %v", r2.Params)
	}
	// The WHERE clause must reference Param nodes now.
	var nparams int
	WalkExprs(r1.Stmt.(*SelectStmt).Where, func(e Expr) {
		if _, ok := e.(Param); ok {
			nparams++
		}
	})
	if nparams != 2 {
		t.Errorf("Param nodes in AST: %d", nparams)
	}
}

func TestParseNormalizedNegativeParam(t *testing.T) {
	r, err := ParseNormalized("SELECT a FROM t WHERE a = -42")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Params) != 1 || r.Params[0].I != -42 {
		t.Fatalf("params: %v", r.Params)
	}
}

func TestParseNormalizedKeepsLimitInline(t *testing.T) {
	r1, _ := ParseNormalized("SELECT a FROM t LIMIT 10")
	r2, _ := ParseNormalized("SELECT a FROM t LIMIT 20")
	if r1.Normalized == r2.Normalized {
		t.Error("different LIMITs must not share a plan-cache key")
	}
}

func TestParseComments(t *testing.T) {
	st := mustParse(t, "SELECT a -- trailing comment\nFROM t -- another\n").(*SelectStmt)
	if len(st.Items) != 1 || st.From[0].Name != "t" {
		t.Errorf("AST: %+v", st)
	}
}

func TestParseStringEscapes(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a = 'o''neil'").(*SelectStmt)
	lit := st.Where.(BinaryExpr).Right.(Literal)
	if lit.Val.S != "o'neil" {
		t.Errorf("escaped string = %q", lit.Val.S)
	}
}

func TestParseFloatForms(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM t WHERE a = 1.5",
		"SELECT * FROM t WHERE a = 1.5e3",
		"SELECT * FROM t WHERE a = 2E-2",
	} {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
	if _, err := Parse("SELECT * FROM t WHERE a = 1e"); err == nil {
		t.Error("malformed exponent accepted")
	}
}

func TestNormalizedIsStable(t *testing.T) {
	r, err := ParseNormalized("SELECT  A,B FROM  T  WHERE a=1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Normalized, "  ") {
		t.Errorf("normalized text has double spaces: %q", r.Normalized)
	}
	r2, _ := ParseNormalized("select a , b from t where A = 2")
	if r.Normalized != r2.Normalized {
		t.Errorf("case/spacing should normalize away:\n%q\n%q", r.Normalized, r2.Normalized)
	}
}
