package sqlparser

import "testing"

func TestParseExplainModifiers(t *testing.T) {
	cases := []struct {
		sql     string
		whatIf  bool
		analyze bool
	}{
		{"EXPLAIN SELECT a FROM t", false, false},
		{"EXPLAIN WHATIF SELECT a FROM t", true, false},
		{"EXPLAIN ANALYZE SELECT a FROM t", false, true},
		{"explain analyze select a from t", false, true},
		// Modifier order is free; the engine rejects the combination.
		{"EXPLAIN WHATIF ANALYZE SELECT a FROM t", true, true},
		{"EXPLAIN ANALYZE WHATIF SELECT a FROM t", true, true},
	}
	for _, c := range cases {
		st := mustParse(t, c.sql).(*ExplainStmt)
		if st.WhatIf != c.whatIf || st.Analyze != c.analyze {
			t.Errorf("Parse(%q): WhatIf=%v Analyze=%v, want %v/%v",
				c.sql, st.WhatIf, st.Analyze, c.whatIf, c.analyze)
		}
		if st.Select == nil {
			t.Errorf("Parse(%q): nil Select", c.sql)
		}
	}
}

func TestParseExplainErrors(t *testing.T) {
	for _, sql := range []string{
		"EXPLAIN",
		"EXPLAIN ANALYZE",
		"EXPLAIN ANALYZE ANALYZE SELECT a FROM t",
		"EXPLAIN ANALYZE INSERT INTO t VALUES (1)",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}
