package nref

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

func loadSmall(t *testing.T) (*engine.DB, *engine.Session) {
	t.Helper()
	db, err := engine.Open(engine.Config{Dir: t.TempDir(), PoolPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	g := NewGenerator(500, 1)
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	t.Cleanup(s.Close)
	return db, s
}

func TestLoadCreatesAllTables(t *testing.T) {
	db, s := loadSmall(t)
	for _, tbl := range Tables {
		res, err := s.Exec("SELECT COUNT(*) FROM " + tbl)
		if err != nil {
			t.Fatalf("%s: %v", tbl, err)
		}
		if res.Rows[0][0].I == 0 {
			t.Errorf("table %s is empty", tbl)
		}
	}
	// Only pk indexes exist.
	for _, ix := range db.Catalog().Indexes() {
		if !strings.HasPrefix(ix.Name, "pk_") {
			t.Errorf("unexpected index %s on unoptimized load", ix.Name)
		}
	}
	// Tables are heap structured.
	if db.Catalog().Table("protein").Structure != "HEAP" {
		t.Error("protein not HEAP")
	}
}

func TestLoadIsDeterministic(t *testing.T) {
	_, s1 := loadSmall(t)
	_, s2 := loadSmall(t)
	q := "SELECT nref_id, name, length, taxonomy_id FROM protein WHERE nref_id = 'NF00000042'"
	r1, err := s1.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 1 || len(r2.Rows) != 1 {
		t.Fatalf("rows: %d/%d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows[0] {
		if r1.Rows[0][i].String() != r2.Rows[0][i].String() {
			t.Errorf("col %d differs: %v vs %v", i, r1.Rows[0][i], r2.Rows[0][i])
		}
	}
}

func TestForeignKeysLineUp(t *testing.T) {
	_, s := loadSmall(t)
	// Every organism row joins back to a protein.
	res, err := s.Exec(`SELECT COUNT(*) FROM organism o JOIN protein p ON o.nref_id = p.nref_id`)
	if err != nil {
		t.Fatal(err)
	}
	orgs, err := s.Exec("SELECT COUNT(*) FROM organism")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != orgs.Rows[0][0].I {
		t.Errorf("dangling organisms: joined %v of %v", res.Rows[0][0], orgs.Rows[0][0])
	}
	// Taxonomy ids in range.
	res, err = s.Exec("SELECT COUNT(*) FROM protein p JOIN taxonomy t ON p.taxonomy_id = t.taxonomy_id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 500 {
		t.Errorf("protein-taxonomy join count = %v, want 500", res.Rows[0][0])
	}
}

func TestSkewExists(t *testing.T) {
	_, s := loadSmall(t)
	res, err := s.Exec(`SELECT taxonomy_id, COUNT(*) c FROM protein GROUP BY taxonomy_id ORDER BY c DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Rows[0][1].I
	if top < 5 { // 500 proteins over ~10 taxa with quadratic skew
		t.Errorf("no visible skew: top taxon has %d proteins", top)
	}
}

func TestWorkloadStatements(t *testing.T) {
	if got := PointSelectStatement(3, 500); !strings.Contains(got, "NF00000003") {
		t.Errorf("point select: %s", got)
	}
	if got := PointSelectStatement(503, 500); !strings.Contains(got, "NF00000003") {
		t.Errorf("point select wraps scale: %s", got)
	}
	if got := SimpleJoinStatement(7, 500); !strings.Contains(got, "JOIN organism") {
		t.Errorf("simple join: %s", got)
	}

	qs := Complex50(500)
	if len(qs) != 50 {
		t.Fatalf("Complex50 returned %d queries", len(qs))
	}
	// Deterministic.
	qs2 := Complex50(500)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatalf("query %d differs between calls", i)
		}
	}
}

func TestComplex50AllExecute(t *testing.T) {
	_, s := loadSmall(t)
	for i, q := range Complex50(500) {
		if _, err := s.Exec(q); err != nil {
			t.Errorf("query %d failed: %v\n%s", i, err, q)
		}
	}
}

func TestSimpleWorkloadsExecute(t *testing.T) {
	_, s := loadSmall(t)
	for i := 0; i < 20; i++ {
		res, err := s.Exec(PointSelectStatement(i, 500))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("point select %d returned %d rows", i, len(res.Rows))
		}
		if _, err := s.Exec(SimpleJoinStatement(i, 500)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReferenceIndexesApply(t *testing.T) {
	_, s := loadSmall(t)
	idx := ReferenceIndexes()
	if len(idx) != 33 {
		t.Fatalf("reference set has %d indexes, want 33", len(idx))
	}
	for _, ddl := range idx {
		if _, err := s.Exec(ddl); err != nil {
			t.Errorf("%s: %v", ddl, err)
		}
	}
}
