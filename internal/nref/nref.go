// Package nref generates a deterministic synthetic stand-in for the
// Non-Redundant Reference Protein (NREF) database the paper evaluates
// on. The real NREF is 100 M rows / ≈6.5 GB of protein data; this
// generator produces the same six-table schema with realistic skew at
// a configurable scale, plus the paper's three workloads:
//
//   - Complex50: 50 multi-join analysis queries (the NREF2J/NREF3J mix)
//   - SimpleJoinStatements: two-table point joins (the "50k" test)
//   - PointSelectStatements: single-table point selects (the "1m" test)
//
// Everything is seeded, so repeated runs see identical data and
// workloads.
package nref

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/sqltypes"
)

// DefaultScale is the default number of proteins. The full NREF is
// vastly larger; this default keeps experiments laptop-sized while
// leaving the data well above buffer-pool capacity at default
// settings.
const DefaultScale = 20000

// Tables lists the six NREF tables.
var Tables = []string{"protein", "organism", "sequence", "taxonomy", "source", "annotation"}

// DDL returns the CREATE TABLE statements. Only primary keys, no other
// indexes — the paper's unoptimized setup ("using only primary keys
// and no other indexes", default storage structure heap).
func DDL() []string {
	return []string{
		`CREATE TABLE protein (
			nref_id VARCHAR(16) PRIMARY KEY,
			name VARCHAR(64),
			length INTEGER,
			taxonomy_id INTEGER,
			source_id INTEGER,
			mol_weight FLOAT)`,
		`CREATE TABLE organism (
			organism_id INTEGER,
			nref_id VARCHAR(16),
			organism_name VARCHAR(64),
			taxonomy_id INTEGER,
			PRIMARY KEY (nref_id, organism_id))`,
		`CREATE TABLE sequence (
			nref_id VARCHAR(16) PRIMARY KEY,
			sequence VARCHAR(256),
			crc VARCHAR(16),
			length INTEGER)`,
		`CREATE TABLE taxonomy (
			taxonomy_id INTEGER PRIMARY KEY,
			lineage VARCHAR(128),
			rank VARCHAR(16),
			parent_id INTEGER)`,
		`CREATE TABLE source (
			source_id INTEGER PRIMARY KEY,
			source_name VARCHAR(32),
			db_name VARCHAR(16),
			release_no INTEGER)`,
		`CREATE TABLE annotation (
			annotation_id INTEGER,
			nref_id VARCHAR(16),
			ordinal INTEGER,
			feature VARCHAR(32),
			val VARCHAR(64),
			PRIMARY KEY (nref_id, annotation_id))`,
	}
}

// NrefID formats the i-th protein identifier, matching the paper's
// "NF..." key style.
func NrefID(i int) string { return fmt.Sprintf("NF%08d", i) }

var (
	aminoAcids = "ACDEFGHIKLMNPQRSTVWY"
	ranks      = []string{"species", "genus", "family", "order", "class", "phylum"}
	features   = []string{"domain", "motif", "site", "repeat", "signal", "transit", "chain", "helix"}
	genera     = []string{
		"Escherichia", "Homo", "Mus", "Drosophila", "Saccharomyces", "Arabidopsis",
		"Bacillus", "Thermus", "Methanococcus", "Rattus", "Danio", "Caenorhabditis",
	}
)

// Generator produces the synthetic tables.
type Generator struct {
	Scale int // number of proteins
	Seed  int64
}

// NewGenerator returns a generator at the given scale (0 uses
// DefaultScale).
func NewGenerator(scale int, seed int64) *Generator {
	if scale <= 0 {
		scale = DefaultScale
	}
	return &Generator{Scale: scale, Seed: seed}
}

// TaxonomyCount returns the number of taxonomy rows at this scale.
func (g *Generator) TaxonomyCount() int {
	n := g.Scale / 50
	if n < 10 {
		n = 10
	}
	return n
}

// SourceCount returns the number of source rows.
func (g *Generator) SourceCount() int { return 20 }

func randSeq(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = aminoAcids[r.Intn(len(aminoAcids))]
	}
	return string(b)
}

// Load creates the six tables in db and fills them. Tables keep the
// default HEAP structure with primary keys only. The batch size trades
// memory for load speed.
func (g *Generator) Load(db *engine.DB) error {
	s := db.NewSession()
	defer s.Close()
	for _, ddl := range DDL() {
		if _, err := s.Exec(ddl); err != nil {
			return fmt.Errorf("nref: %w", err)
		}
	}
	r := rand.New(rand.NewSource(g.Seed))
	taxCount := g.TaxonomyCount()
	srcCount := g.SourceCount()

	// taxonomy
	var rows []sqltypes.Row
	for i := 0; i < taxCount; i++ {
		genus := genera[r.Intn(len(genera))]
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewText(fmt.Sprintf("%s;clade%d;group%d", genus, i%37, i%11)),
			sqltypes.NewText(ranks[i%len(ranks)]),
			sqltypes.NewInt(int64(i / 7)),
		})
	}
	if err := db.BulkInsert("taxonomy", rows); err != nil {
		return err
	}

	// source
	rows = rows[:0]
	for i := 0; i < srcCount; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewText(fmt.Sprintf("source_db_%02d", i)),
			sqltypes.NewText([]string{"swissprot", "trembl", "pdb", "genbank"}[i%4]),
			sqltypes.NewInt(int64(40 + i)),
		})
	}
	if err := db.BulkInsert("source", rows); err != nil {
		return err
	}

	const batch = 2000
	// protein + sequence + organism + annotation, generated together so
	// foreign keys line up.
	var prot, seq, org, ann []sqltypes.Row
	orgID, annID := 0, 0
	flush := func() error {
		for _, p := range []struct {
			table string
			rows  *[]sqltypes.Row
		}{
			{"protein", &prot}, {"sequence", &seq}, {"organism", &org}, {"annotation", &ann},
		} {
			if len(*p.rows) == 0 {
				continue
			}
			if err := db.BulkInsert(p.table, *p.rows); err != nil {
				return err
			}
			*p.rows = (*p.rows)[:0]
		}
		return nil
	}
	for i := 0; i < g.Scale; i++ {
		id := NrefID(i)
		// Zipf-ish skew: low taxonomy ids are much more common, as in
		// real protein data where model organisms dominate.
		tax := int(float64(taxCount) * r.Float64() * r.Float64())
		length := 50 + r.Intn(950)
		prot = append(prot, sqltypes.Row{
			sqltypes.NewText(id),
			sqltypes.NewText(fmt.Sprintf("%s protein %d", features[i%len(features)], i)),
			sqltypes.NewInt(int64(length)),
			sqltypes.NewInt(int64(tax)),
			sqltypes.NewInt(int64(r.Intn(srcCount))),
			sqltypes.NewFloat(float64(length) * (105.0 + r.Float64()*10)),
		})
		seq = append(seq, sqltypes.Row{
			sqltypes.NewText(id),
			sqltypes.NewText(randSeq(r, 40+r.Intn(200))),
			sqltypes.NewText(fmt.Sprintf("%08X", r.Uint32())),
			sqltypes.NewInt(int64(length)),
		})
		// 1–2 organisms per protein.
		norg := 1 + r.Intn(2)
		for j := 0; j < norg; j++ {
			org = append(org, sqltypes.Row{
				sqltypes.NewInt(int64(orgID)),
				sqltypes.NewText(id),
				sqltypes.NewText(fmt.Sprintf("%s sp. %d", genera[tax%len(genera)], tax)),
				sqltypes.NewInt(int64(tax)),
			})
			orgID++
		}
		// 0–4 annotations per protein.
		nann := r.Intn(5)
		for j := 0; j < nann; j++ {
			ann = append(ann, sqltypes.Row{
				sqltypes.NewInt(int64(annID)),
				sqltypes.NewText(id),
				sqltypes.NewInt(int64(j)),
				sqltypes.NewText(features[r.Intn(len(features))]),
				sqltypes.NewText(fmt.Sprintf("pos %d..%d", r.Intn(length), r.Intn(length))),
			})
			annID++
		}
		if len(prot) >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return db.Checkpoint()
}

// PointSelectStatement is the paper's 1m-test statement for protein i:
// the simplest possible primary-key select.
func PointSelectStatement(i, scale int) string {
	return fmt.Sprintf("SELECT p.nref_id FROM protein p WHERE p.nref_id = '%s'", NrefID(i%scale))
}

// SimpleJoinStatement is the paper's 50k-test statement for protein i:
// a two-table join restricted to one key, cycling through ids so "the
// monitor logs each statement as a new one".
func SimpleJoinStatement(i, scale int) string {
	return fmt.Sprintf(
		"SELECT p.nref_id, o.organism_name, o.taxonomy_id FROM protein p JOIN organism o ON p.nref_id = o.nref_id WHERE p.nref_id = '%s'",
		NrefID(i%scale))
}

// Complex50 returns the 50-query analysis mix standing in for the
// NREF2J/NREF3J sets: multi-way joins, range predicates, aggregation
// and sorting — "expensive joins and many full table scans".
func Complex50(scale int) []string {
	if scale <= 0 {
		scale = DefaultScale
	}
	r := rand.New(rand.NewSource(77))
	var qs []string
	add := func(q string) { qs = append(qs, q) }

	for len(qs) < 50 {
		switch len(qs) % 10 {
		case 0: // 2-join aggregate by taxonomy rank
			add(fmt.Sprintf(`SELECT t.rank, COUNT(*), AVG(p.mol_weight)
				FROM protein p JOIN taxonomy t ON p.taxonomy_id = t.taxonomy_id
				WHERE p.length > %d GROUP BY t.rank ORDER BY t.rank`, 100+r.Intn(400)))
		case 1: // 3-join drilling into a narrow key window
			lo := r.Intn(scale - scale/20 - 1)
			add(fmt.Sprintf(`SELECT p.nref_id, s.crc, t.lineage
				FROM protein p JOIN sequence s ON p.nref_id = s.nref_id
				JOIN taxonomy t ON p.taxonomy_id = t.taxonomy_id
				WHERE p.nref_id BETWEEN '%s' AND '%s' AND t.rank = '%s'
				ORDER BY p.nref_id LIMIT 500`,
				NrefID(lo), NrefID(lo+scale/20), ranks[r.Intn(len(ranks))]))
		case 2: // organism counts per genus-ish prefix
			add(fmt.Sprintf(`SELECT o.organism_name, COUNT(*) cnt
				FROM organism o JOIN protein p ON o.nref_id = p.nref_id
				WHERE p.source_id < %d GROUP BY o.organism_name
				HAVING COUNT(*) > 1 ORDER BY cnt DESC LIMIT 50`, 4+r.Intn(12)))
		case 3: // annotation drill-down for one protein window
			lo := r.Intn(scale - scale/50 - 1)
			add(fmt.Sprintf(`SELECT a.feature, COUNT(*), MAX(p.length)
				FROM annotation a JOIN protein p ON a.nref_id = p.nref_id
				WHERE a.nref_id BETWEEN '%s' AND '%s'
				GROUP BY a.feature ORDER BY a.feature`,
				NrefID(lo), NrefID(lo+scale/50)))
		case 4: // heavy 3-join with sort
			add(fmt.Sprintf(`SELECT p.nref_id, p.name, o.organism_name
				FROM protein p JOIN organism o ON p.nref_id = o.nref_id
				JOIN source sr ON p.source_id = sr.source_id
				WHERE sr.db_name = '%s' AND p.length > %d
				ORDER BY p.mol_weight DESC LIMIT 200`,
				[]string{"swissprot", "trembl", "pdb", "genbank"}[r.Intn(4)], 200+r.Intn(500)))
		case 5: // distinct lineages in a narrow weight band
			lo := 10000 + r.Intn(60000)
			add(fmt.Sprintf(`SELECT DISTINCT t.lineage
				FROM taxonomy t JOIN protein p ON t.taxonomy_id = p.taxonomy_id
				WHERE p.mol_weight BETWEEN %d AND %d LIMIT 300`,
				lo, lo+2500))
		case 6: // self-ish chain: sequence stats per source
			add(fmt.Sprintf(`SELECT sr.source_name, COUNT(*), AVG(s.length)
				FROM protein p JOIN sequence s ON p.nref_id = s.nref_id
				JOIN source sr ON p.source_id = sr.source_id
				WHERE s.length < %d GROUP BY sr.source_name ORDER BY 2 DESC`,
				300+r.Intn(600)))
		case 7: // annotations for a narrow window of proteins
			lo := r.Intn(scale - scale/30 - 1)
			add(fmt.Sprintf(`SELECT a.nref_id, COUNT(*) n
				FROM annotation a
				WHERE a.nref_id BETWEEN '%s' AND '%s' AND a.ordinal >= %d
				GROUP BY a.nref_id HAVING COUNT(*) >= %d ORDER BY n DESC LIMIT 100`,
				NrefID(lo), NrefID(lo+scale/30), r.Intn(2), 1+r.Intn(2)))
		case 8: // taxonomy rollup
			add(fmt.Sprintf(`SELECT t.parent_id, COUNT(*), MIN(p.length), MAX(p.length)
				FROM protein p JOIN taxonomy t ON p.taxonomy_id = t.taxonomy_id
				WHERE t.taxonomy_id < %d GROUP BY t.parent_id ORDER BY 1`,
				scale/100+r.Intn(scale/100+2)))
		case 9: // wide 4-join
			add(fmt.Sprintf(`SELECT COUNT(*)
				FROM protein p JOIN organism o ON p.nref_id = o.nref_id
				JOIN taxonomy t ON o.taxonomy_id = t.taxonomy_id
				JOIN source sr ON p.source_id = sr.source_id
				WHERE t.rank = '%s' AND sr.release_no > %d AND p.length > %d`,
				ranks[r.Intn(len(ranks))], 42+r.Intn(10), 100+r.Intn(300)))
		}
	}
	return qs
}

// ReferenceIndexes returns the 33-index reference set standing in for
// the manually tuned configuration of [Consens et al. 2005] that the
// paper compares against: a broad, partly redundant set a careful DBA
// might build without workload knowledge.
func ReferenceIndexes() []string {
	mk := func(name, table, cols string) string {
		return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", name, table, cols)
	}
	return []string{
		mk("rx01", "protein", "name"),
		mk("rx02", "protein", "length"),
		mk("rx03", "protein", "taxonomy_id"),
		mk("rx04", "protein", "source_id"),
		mk("rx05", "protein", "mol_weight"),
		mk("rx06", "protein", "taxonomy_id, length"),
		mk("rx07", "protein", "source_id, length"),
		mk("rx08", "protein", "length, mol_weight"),
		mk("rx09", "organism", "nref_id"),
		mk("rx10", "organism", "organism_name"),
		mk("rx11", "organism", "taxonomy_id"),
		mk("rx12", "organism", "nref_id, taxonomy_id"),
		mk("rx13", "organism", "organism_name, taxonomy_id"),
		mk("rx14", "sequence", "length"),
		mk("rx15", "sequence", "crc"),
		mk("rx16", "sequence", "length, crc"),
		mk("rx17", "taxonomy", "lineage"),
		mk("rx18", "taxonomy", "rank"),
		mk("rx19", "taxonomy", "parent_id"),
		mk("rx20", "taxonomy", "rank, parent_id"),
		mk("rx21", "taxonomy", "parent_id, rank"),
		mk("rx22", "source", "source_name"),
		mk("rx23", "source", "db_name"),
		mk("rx24", "source", "release_no"),
		mk("rx25", "source", "db_name, release_no"),
		mk("rx26", "annotation", "nref_id"),
		mk("rx27", "annotation", "feature"),
		mk("rx28", "annotation", "ordinal"),
		mk("rx29", "annotation", "nref_id, ordinal"),
		mk("rx30", "annotation", "feature, ordinal"),
		mk("rx31", "annotation", "nref_id, feature"),
		mk("rx32", "protein", "name, length"),
		mk("rx33", "organism", "taxonomy_id, organism_name"),
	}
}
