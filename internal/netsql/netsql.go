// Package netsql provides a minimal remote SQL interface over TCP —
// newline-delimited JSON requests and responses. It exists for the
// paper's remote-monitoring story: because the monitor's data is
// exposed through IMA virtual tables, "it is possible to easily access
// in-memory structures within the DBMS over standard SQL which allows
// remote monitoring of the DBMS without having to implement a new
// interface or communications protocol" — any SQL channel suffices,
// and this package is the engine's network channel.
//
// Protocol: the client sends one JSON object per line
// {"sql": "SELECT ..."} and receives one JSON object per line
// {"columns": [...], "rows": [[...]], "rows_affected": n} or
// {"error": "..."}. One engine session lives per connection, so
// Begin/Commit work across requests.
package netsql

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/sqltypes"
)

// Request is one client command.
type Request struct {
	SQL string `json:"sql"`
}

// Response is the server's reply.
type Response struct {
	Columns      []string           `json:"columns,omitempty"`
	Rows         [][]sqltypes.Value `json:"rows,omitempty"`
	RowsAffected int64              `json:"rows_affected,omitempty"`
	Error        string             `json:"error,omitempty"`
}

// maxLine bounds request/response line sizes.
const maxLine = 4 << 20

// Server serves engine sessions over TCP.
type Server struct {
	db *engine.DB

	// Logf, when set before Listen, receives protocol-level errors
	// (oversized or unreadable request lines). Nil discards them.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	lineErrors atomic.Int64
}

// NewServer wraps a database.
func NewServer(db *engine.DB) *Server {
	return &Server{db: db, conns: map[net.Conn]struct{}{}}
}

// LineErrors returns the number of request lines the server could not
// read (scanner errors, e.g. a line exceeding the protocol limit).
func (s *Server) LineErrors() int64 { return s.lineErrors.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving continues until ctx is cancelled or Close is
// called.
func (s *Server) Listen(ctx context.Context, addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = ln
	s.closed = false
	s.mu.Unlock()
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			// Lost the race with Close: a connection accepted during
			// shutdown must not be registered after Close cleared the
			// map (it would never be closed again — a leak). Drop it.
			conn.Close()
			return
		}
		go s.serveConn(conn)
	}
}

// track registers a live connection, refusing once Close has run.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

// Close stops the listener and disconnects every client. Connections
// still in flight inside the accept loop are refused by track.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
		s.listener = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sess := s.db.NewSession()
	defer sess.Close()

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			enc.Encode(Response{Error: "bad request: " + err.Error()})
			continue
		}
		resp := s.execute(sess, req.SQL)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
	// A scanner error (most likely a request line over the protocol
	// limit) used to end the connection silently; tell the client why,
	// log it and count it. The connection still closes — the stream is
	// desynchronized past a bad line.
	if err := sc.Err(); err != nil {
		s.lineErrors.Add(1)
		s.logf("netsql: %s: request read error: %v", conn.RemoteAddr(), err)
		enc.Encode(Response{Error: fmt.Sprintf(
			"request read error (lines are limited to %d bytes): %v", maxLine, err)})
	}
}

func (s *Server) execute(sess *engine.Session, sql string) Response {
	switch sql {
	case "BEGIN", "begin":
		sess.Begin()
		return Response{}
	case "COMMIT", "commit":
		sess.Commit()
		return Response{}
	case "ROLLBACK", "rollback":
		sess.Rollback()
		return Response{}
	}
	res, err := sess.Exec(sql)
	if err != nil {
		return Response{Error: err.Error()}
	}
	out := Response{Columns: res.Columns, RowsAffected: res.RowsAffected}
	out.Rows = make([][]sqltypes.Value, len(res.Rows))
	for i, r := range res.Rows {
		out.Rows[i] = r
	}
	return out
}

// Client is a remote session.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
	mu   sync.Mutex
}

// Dial connects to a netsql server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	return &Client{conn: conn, sc: sc, enc: json.NewEncoder(conn)}, nil
}

// Exec runs one statement on the remote session.
func (c *Client) Exec(sql string) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Request{SQL: sql}); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("netsql: server closed the connection")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return &resp, fmt.Errorf("netsql: %s", resp.Error)
	}
	return &resp, nil
}

// Close disconnects, ending the remote session.
func (c *Client) Close() error { return c.conn.Close() }
