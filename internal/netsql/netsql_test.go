package netsql

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
)

func startServer(t *testing.T) (string, *engine.DB) {
	t.Helper()
	mon := monitor.New(monitor.Config{})
	db, err := engine.Open(engine.Config{Dir: t.TempDir(), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := ima.Register(db, mon); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	ctx, cancel := context.WithCancel(context.Background())
	addr, err := srv.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		srv.Close()
		db.Close()
	})
	return addr.String(), db
}

func TestRemoteRoundTrip(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE r (id INTEGER PRIMARY KEY, v VARCHAR(16))"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Exec("INSERT INTO r VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowsAffected != 2 {
		t.Errorf("rows affected = %d", resp.RowsAffected)
	}
	resp, err = c.Exec("SELECT id, v FROM r ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 2 || resp.Rows[0][0].I != 1 || resp.Rows[1][1].S != "y" {
		t.Errorf("rows: %+v", resp.Rows)
	}
	if len(resp.Columns) != 2 || resp.Columns[0] != "id" {
		t.Errorf("columns: %v", resp.Columns)
	}
}

// TestRemoteMonitoring is the paper's point: the monitoring data is
// one remote SQL query away, no extra protocol.
func TestRemoteMonitoring(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Exec("CREATE TABLE w (id INTEGER PRIMARY KEY)")
	c.Exec("INSERT INTO w VALUES (1)")
	c.Exec("SELECT COUNT(*) FROM w")

	resp, err := c.Exec("SELECT query_text, frequency FROM ima_statements WHERE kind = 'SELECT'")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range resp.Rows {
		if strings.Contains(r[0].S, "COUNT(*) FROM w") {
			found = true
		}
	}
	if !found {
		t.Errorf("remote monitoring query missed the statement: %+v", resp.Rows)
	}
	resp, err = c.Exec("SELECT statements FROM ima_statistics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rows[0][0].I < 3 {
		t.Errorf("statistics: %+v", resp.Rows)
	}
}

func TestRemoteErrorsKeepSessionAlive(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("remote error not surfaced")
	}
	// The session survives the error.
	if _, err := c.Exec("CREATE TABLE ok (a INTEGER PRIMARY KEY)"); err != nil {
		t.Fatalf("session dead after error: %v", err)
	}
}

func TestRemoteTransactions(t *testing.T) {
	addr, db := startServer(t)
	c1, _ := Dial(addr)
	defer c1.Close()
	if _, err := c1.Exec("CREATE TABLE tx (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("INSERT INTO tx VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if db.LockStats().Held == 0 {
		t.Error("remote transaction holds no locks")
	}
	if _, err := c1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if db.LockStats().Held != 0 {
		t.Error("locks leaked after remote COMMIT")
	}
}

func TestConcurrentRemoteClients(t *testing.T) {
	addr, _ := startServer(t)
	setup, _ := Dial(addr)
	if _, err := setup.Exec("CREATE TABLE cc (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const clients = 8
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		g := g
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				id := g*1000 + i
				if _, err := c.Exec(fmt.Sprintf("INSERT INTO cc VALUES (%d, %d)", id, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	check, _ := Dial(addr)
	defer check.Close()
	resp, err := check.Exec("SELECT COUNT(*) FROM cc")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rows[0][0].I != clients*20 {
		t.Errorf("rows = %v, want %d", resp.Rows[0][0], clients*20)
	}
}

func TestBadRequestLine(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Raw garbage through the connection: server answers with an error
	// line and keeps going.
	if _, err := c.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if !c.sc.Scan() {
		t.Fatal("no response to bad request")
	}
	if !strings.Contains(c.sc.Text(), "bad request") {
		t.Errorf("response: %s", c.sc.Text())
	}
	if _, err := c.Exec("CREATE TABLE g (a INTEGER PRIMARY KEY)"); err != nil {
		t.Fatalf("connection dead after bad request: %v", err)
	}
}
