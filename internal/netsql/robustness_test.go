package netsql

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
)

// TestOversizedRequestLineReportsError sends a request line beyond the
// protocol limit: the server must reply with an error Response, count
// it and log it — not drop the connection silently.
func TestOversizedRequestLineReportsError(t *testing.T) {
	db, err := engine.Open(engine.Config{Dir: t.TempDir(), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := NewServer(db)
	var logMu sync.Mutex
	var logged []string
	srv.Logf = func(format string, args ...any) {
		logMu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	addr, err := srv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One giant line, no newline needed: the scanner fails as soon as
	// the buffered line exceeds maxLine.
	junk := make([]byte, 64<<10)
	for i := range junk {
		junk[i] = 'x'
	}
	for written := 0; written <= maxLine; written += len(junk) {
		if _, err := conn.Write(junk); err != nil {
			t.Fatalf("write after %d bytes: %v", written, err)
		}
	}

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	if !sc.Scan() {
		t.Fatalf("no error response before disconnect: %v", sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("bad response %q: %v", sc.Text(), err)
	}
	if !strings.Contains(resp.Error, "request read error") {
		t.Errorf("response error = %q, want a read-error explanation", resp.Error)
	}
	if got := srv.LineErrors(); got != 1 {
		t.Errorf("LineErrors = %d, want 1", got)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) != 1 || !strings.Contains(logged[0], "request read error") {
		t.Errorf("logged = %q, want one read-error line", logged)
	}
}

// TestWellFormedErrorsDoNotCountAsLineErrors: SQL failures and bad
// JSON are protocol-level replies, not read errors.
func TestWellFormedErrorsDoNotCountAsLineErrors(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT broken FROM nowhere"); err == nil {
		t.Fatal("bad SQL succeeded")
	}
	// The connection survives a SQL error.
	if _, err := c.Exec("SELECT COUNT(*) FROM ima_statements"); err != nil {
		t.Fatalf("connection dead after SQL error: %v", err)
	}
}

// TestTrackRefusesAfterClose covers the accept/Close race: a
// connection that reaches track after Close must be refused (and
// closed by the accept loop) instead of being registered in a map that
// no one will ever clean again.
func TestTrackRefusesAfterClose(t *testing.T) {
	db, err := engine.Open(engine.Config{Dir: t.TempDir(), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := NewServer(db)
	if _, err := srv.Listen(context.Background(), "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if !srv.track(c1) {
		t.Fatal("track refused a connection while the server is open")
	}
	srv.Close()
	c3, c4 := net.Pipe()
	defer c3.Close()
	defer c4.Close()
	if srv.track(c3) {
		t.Error("track accepted a connection after Close")
	}
	// Listen resets the flag, so a restarted server accepts again.
	if _, err := srv.Listen(context.Background(), "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c5, c6 := net.Pipe()
	defer c5.Close()
	defer c6.Close()
	if !srv.track(c5) {
		t.Error("track refused after the server was reopened")
	}
}

// TestCloseWhileAccepting hammers Listen/Dial/Close concurrently; run
// under -race this exercises the accept/Close path for leaks and
// races.
func TestCloseWhileAccepting(t *testing.T) {
	db, err := engine.Open(engine.Config{Dir: t.TempDir(), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for round := 0; round < 20; round++ {
		srv := NewServer(db)
		addr, err := srv.Listen(context.Background(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr.String())
				if err != nil {
					return // racing Close; refusal is fine
				}
				conn.Close()
			}()
		}
		srv.Close()
		wg.Wait()
		srv.mu.Lock()
		if n := len(srv.conns); n != 0 {
			t.Fatalf("round %d: %d connections leaked past Close", round, n)
		}
		srv.mu.Unlock()
	}
}
