package monitor

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRingInvariants drives random statement streams through monitors
// of random capacities and checks the structural invariants: the
// statement ring never exceeds its capacity, survivors are the most
// recent distinct statements, frequencies sum to the number of
// executions of surviving statements, and the workload ring holds
// min(total, capacity) entries.
func TestRingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stmtCap := 2 + r.Intn(30)
		workCap := 2 + r.Intn(50)
		m := New(Config{StatementCapacity: stmtCap, WorkloadCapacity: workCap})
		total := 1 + r.Intn(300)
		distinctPool := 1 + r.Intn(60)

		counts := map[string]int64{}
		var order []string // last-seen order of distinct statements
		for i := 0; i < total; i++ {
			text := fmt.Sprintf("SELECT %d", r.Intn(distinctPool))
			h := m.StartStatement(text)
			h.Parsed("SELECT", []string{"t"})
			h.Finish(1, 0, 1, nil)
			counts[text]++
			for j, s := range order {
				if s == text {
					order = append(order[:j], order[j+1:]...)
					break
				}
			}
			order = append(order, text)
		}

		snap := m.Snapshot()
		if len(snap.Statements) > stmtCap {
			return false
		}
		if len(snap.Workload) != min(total, workCap) {
			return false
		}
		if m.TotalStatements() != int64(total) {
			return false
		}
		// A statement that was evicted and re-observed restarts its
		// frequency, so the surviving frequency is bounded by the true
		// count but must stay positive.
		for _, si := range snap.Statements {
			if si.Frequency < 1 || si.Frequency > counts[si.Text] {
				return false
			}
		}
		// When no eviction was possible, frequencies are exact.
		if distinctPool <= stmtCap {
			for _, si := range snap.Statements {
				if si.Frequency != counts[si.Text] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestQuickEvictionMatchesSingleRingModel checks, for random streams,
// capacities and shard counts, that the sharded statement table is
// observably identical to the seed's single ring: the survivors are
// exactly the model's (overwrite-oldest FIFO over distinct statements)
// and the snapshot returns them in insertion order. This pins down the
// tentpole requirement that sharding must not change eviction
// semantics, whichever shard each statement hashes to.
func TestQuickEvictionMatchesSingleRingModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stmtCap := 1 + r.Intn(24)
		shards := 1 << r.Intn(4) // 1..8 ways
		m := New(Config{StatementCapacity: stmtCap, Shards: shards})

		var model []string // distinct statements, oldest first
		inModel := map[string]bool{}
		total := 1 + r.Intn(400)
		pool := 1 + r.Intn(50)
		for i := 0; i < total; i++ {
			text := fmt.Sprintf("SELECT %d", r.Intn(pool))
			h := m.StartStatement(text)
			h.Parsed("SELECT", []string{"t"})
			h.Finish(1, 0, 1, nil)
			if !inModel[text] {
				if len(model) == stmtCap {
					evicted := model[0]
					model = model[1:]
					delete(inModel, evicted)
				}
				model = append(model, text)
				inModel[text] = true
			}
		}

		snap := m.SnapshotStatements()
		if len(snap) != len(model) {
			return false
		}
		for i, si := range snap {
			if si.Text != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickWorkloadDrainRoundTrip checks, for random capacities (odd
// and even), shard counts and random interleavings of commits and
// drains, that the sequence-ordered merge of the per-shard workload
// rings round-trips against a single-ring model: each drain returns
// exactly the newest min(outstanding, capacity) entries, oldest first,
// and clears them.
func TestQuickWorkloadDrainRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		workCap := 1 + r.Intn(40)
		shards := 1 << r.Intn(4)
		m := New(Config{StatementCapacity: 16, WorkloadCapacity: workCap, Shards: shards})

		var model []int64 // Rows values of buffered entries, oldest first
		ops := 1 + r.Intn(500)
		for op := 0; op < ops; op++ {
			if r.Intn(10) == 0 {
				got := m.DrainWorkload()
				if len(got) != len(model) {
					return false
				}
				for i, e := range got {
					if e.Rows != model[i] {
						return false
					}
				}
				model = model[:0]
				continue
			}
			h := m.StartStatement(fmt.Sprintf("SELECT %d", op%8))
			h.Parsed("SELECT", []string{"t"})
			h.Finish(1, 0, int64(op), nil) // Rows carries the op index
			model = append(model, int64(op))
			if len(model) > workCap {
				model = model[len(model)-workCap:]
			}
		}
		got := m.DrainWorkload()
		if len(got) != len(model) {
			return false
		}
		for i, e := range got {
			if e.Rows != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotIsConsistentUnderLoad takes snapshots while writers run
// and checks each snapshot is internally consistent (run with -race to
// catch synchronization bugs).
func TestSnapshotIsConsistentUnderLoad(t *testing.T) {
	m := New(Config{StatementCapacity: 20, WorkloadCapacity: 50})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ {
			h := m.StartStatement(fmt.Sprintf("SELECT %d", i%40))
			h.Parsed("SELECT", []string{"t"})
			h.Finish(1, 0, 1, nil)
		}
	}()
	for i := 0; i < 200; i++ {
		snap := m.Snapshot()
		if len(snap.Statements) > 20 || len(snap.Workload) > 50 {
			t.Fatalf("snapshot exceeds capacities: %d stmts, %d workload",
				len(snap.Statements), len(snap.Workload))
		}
		for _, si := range snap.Statements {
			if si.Frequency <= 0 {
				t.Fatalf("non-positive frequency: %+v", si)
			}
		}
	}
	<-done
}
