package monitor

import (
	"sort"
	"time"
)

// Snapshot is a consistent copy of all ring buffers, taken by the IMA
// layer and the storage daemon.
type Snapshot struct {
	Taken      time.Time
	Statements []StatementInfo
	Workload   []WorkloadEntry
	References []Reference
	TableFreq  map[string]int64
	AttrFreq   map[string]int64
	IndexFreq  map[string]int64
}

// statementsLocked copies the live statements of every shard, merged
// in global insertion order (each statement carries its insertion
// sequence). Caller holds all statement shard locks.
func (m *Monitor) statementsLocked() []StatementInfo {
	var out []StatementInfo
	for i := range m.shards {
		for _, si := range m.shards[i].stmts {
			out = append(out, *si)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// referencesLocked merges the per-shard reference rings in global
// insertion order. Caller holds all statement shard locks.
func (m *Monitor) referencesLocked() []Reference {
	type seqRef struct {
		seq uint64
		r   Reference
	}
	var tagged []seqRef
	for i := range m.shards {
		sh := &m.shards[i]
		start := sh.refPos - sh.refLen
		if start < 0 {
			start += sh.refCap
		}
		for j := 0; j < sh.refLen; j++ {
			p := (start + j) % sh.refCap
			tagged = append(tagged, seqRef{seq: sh.refSeqs[p], r: sh.refs[p]})
		}
	}
	sort.Slice(tagged, func(a, b int) bool { return tagged[a].seq < tagged[b].seq })
	out := make([]Reference, len(tagged))
	for i, t := range tagged {
		out[i] = t.r
	}
	return out
}

// frequenciesLocked sums the per-shard frequency maps. Caller holds
// all statement shard locks.
func (m *Monitor) frequenciesLocked() (table, attr, index map[string]int64) {
	table = map[string]int64{}
	attr = map[string]int64{}
	index = map[string]int64{}
	for i := range m.shards {
		sh := &m.shards[i]
		for k, v := range sh.tableFreq {
			table[k] += v
		}
		for k, v := range sh.attrFreq {
			attr[k] += v
		}
		for k, v := range sh.indexFreq {
			index[k] += v
		}
	}
	return table, attr, index
}

// workloadLocked merges the per-shard workload rings in execution
// order (oldest first). Caller holds all workload shard locks.
func (m *Monitor) workloadLocked() []WorkloadEntry {
	type seqEntry struct {
		seq uint64
		e   WorkloadEntry
	}
	var tagged []seqEntry
	for i := range m.workShards {
		ws := &m.workShards[i]
		start := ws.pos - ws.n
		if start < 0 {
			start += len(ws.ring)
		}
		for j := 0; j < ws.n; j++ {
			p := (start + j) % len(ws.ring)
			tagged = append(tagged, seqEntry{seq: ws.seqs[p], e: ws.ring[p]})
		}
	}
	sort.Slice(tagged, func(a, b int) bool { return tagged[a].seq < tagged[b].seq })
	out := make([]WorkloadEntry, len(tagged))
	for i, t := range tagged {
		out[i] = t.e
	}
	return out
}

// Snapshot copies the current monitor state. Workload entries are
// returned oldest first. It holds every shard lock at once, so it sees
// one consistent cut across all structures; the narrower Snapshot*
// accessors are cheaper when only one table is read (the IMA
// providers' per-table reads).
func (m *Monitor) Snapshot() Snapshot {
	m.lockStmtShards()
	m.lockWorkShards()
	defer m.unlockWorkShards()
	defer m.unlockStmtShards()

	s := Snapshot{Taken: time.Now()}
	s.Statements = m.statementsLocked()
	s.References = m.referencesLocked()
	s.TableFreq, s.AttrFreq, s.IndexFreq = m.frequenciesLocked()
	s.Workload = m.workloadLocked()
	return s
}

// SnapshotStatementSide copies the statement-side state — statements,
// references and object frequencies — in one consistent cut, without
// locking the workload shards (the Workload field is left nil). The
// storage daemon pairs it with DrainWorkload so a poll never blocks
// concurrent workload commits while it merges the statement table.
func (m *Monitor) SnapshotStatementSide() Snapshot {
	m.lockStmtShards()
	defer m.unlockStmtShards()

	s := Snapshot{Taken: time.Now()}
	s.Statements = m.statementsLocked()
	s.References = m.referencesLocked()
	s.TableFreq, s.AttrFreq, s.IndexFreq = m.frequenciesLocked()
	return s
}

// SnapshotStatements copies the statement table in insertion order.
func (m *Monitor) SnapshotStatements() []StatementInfo {
	m.lockStmtShards()
	defer m.unlockStmtShards()
	return m.statementsLocked()
}

// SnapshotReferences copies the reference rings in insertion order.
func (m *Monitor) SnapshotReferences() []Reference {
	m.lockStmtShards()
	defer m.unlockStmtShards()
	return m.referencesLocked()
}

// SnapshotFrequencies copies the per-object frequency maps (tables,
// attributes, indexes), summed across shards.
func (m *Monitor) SnapshotFrequencies() (table, attr, index map[string]int64) {
	m.lockStmtShards()
	defer m.unlockStmtShards()
	return m.frequenciesLocked()
}

// SnapshotWorkload copies the workload ring, oldest first, without
// draining it.
func (m *Monitor) SnapshotWorkload() []WorkloadEntry {
	m.lockWorkShards()
	defer m.unlockWorkShards()
	return m.workloadLocked()
}

// DrainWorkload returns and clears the workload ring. The daemon uses
// it so that each poll sees every execution exactly once even when the
// poll interval is long.
func (m *Monitor) DrainWorkload() []WorkloadEntry {
	m.lockWorkShards()
	out := m.workloadLocked()
	for i := range m.workShards {
		ws := &m.workShards[i]
		ws.pos = 0
		ws.n = 0
	}
	// All workload locks are held, so no Finish can be racing its
	// liveWork update here; the counter is exactly the buffered count.
	m.liveWork.Store(0)
	m.unlockWorkShards()
	m.fullFired.Store(false)
	return out
}
