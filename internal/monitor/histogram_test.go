package monitor

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLatencyBucketBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{time.Duration(1) << 50, NumLatencyBuckets - 1},
	}
	for _, c := range cases {
		if got := latencyBucket(c.d); got != c.want {
			t.Errorf("latencyBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's bounds must cover exactly the durations mapped to
	// it (the last bucket also absorbs the clamped tail).
	for b := 0; b < NumLatencyBuckets-1; b++ {
		lo, hi := LatencyBucketBounds(b)
		if lo > 0 && latencyBucket(lo) != b {
			t.Errorf("bucket %d: lo %d maps to %d", b, lo, latencyBucket(lo))
		}
		if latencyBucket(hi-1) != b {
			t.Errorf("bucket %d: hi-1 %d maps to %d", b, hi-1, latencyBucket(hi-1))
		}
		if latencyBucket(hi) != b+1 {
			t.Errorf("bucket %d: hi %d maps to %d, want %d", b, hi, latencyBucket(hi), b+1)
		}
	}
}

func TestLatencyCountsQuantile(t *testing.T) {
	var c LatencyCounts
	if got := c.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 90 samples in bucket 10 ([512, 1024)), 10 in bucket 20.
	c[10] = 90
	c[20] = 10
	if got := c.Quantile(0.5); got != 1024 {
		t.Errorf("p50 = %v, want 1024ns", got)
	}
	_, hi20 := LatencyBucketBounds(20)
	if got := c.Quantile(0.99); got != hi20 {
		t.Errorf("p99 = %v, want %v", got, hi20)
	}
	if got := c.Total(); got != 100 {
		t.Errorf("Total = %d, want 100", got)
	}
}

// TestFinishPopulatesHistograms checks the core invariants: the global
// wall histogram total equals the number of executions, and each
// statement's histogram total equals its frequency exactly (they are
// updated in the same critical section).
func TestFinishPopulatesHistograms(t *testing.T) {
	m := New(Config{StatementCapacity: 100, WorkloadCapacity: 64})
	const perStmt = 7
	stmts := []string{"SELECT 1", "SELECT 2", "SELECT 3"}
	for _, text := range stmts {
		for i := 0; i < perStmt; i++ {
			h := m.StartStatement(text)
			h.Parsed("SELECT", nil)
			h.Optimized(1, 1, 1, nil, nil, time.Microsecond)
			h.Finish(1, 0, 1, nil)
		}
	}
	wall, opt := m.SnapshotLatency()
	wantTotal := int64(len(stmts) * perStmt)
	if got := wall.Total(); got != wantTotal {
		t.Errorf("wall histogram total = %d, want %d", got, wantTotal)
	}
	if got := opt.Total(); got != wantTotal {
		t.Errorf("opt histogram total = %d, want %d", got, wantTotal)
	}
	wallSum, optSum := m.LatencySums()
	if wallSum <= 0 {
		t.Errorf("wall sum = %v, want > 0", wallSum)
	}
	if optSum != time.Duration(wantTotal)*time.Microsecond {
		t.Errorf("opt sum = %v, want %v", optSum, time.Duration(wantTotal)*time.Microsecond)
	}
	for _, si := range m.SnapshotStatements() {
		if got := si.Lat.Total(); got != si.Frequency {
			t.Errorf("stmt %q: histogram total %d != frequency %d", si.Text, got, si.Frequency)
		}
	}
}

// TestHistogramsConcurrent hammers the hot path from many goroutines
// and checks the merged totals; run under -race it also proves the
// lock-free counters are sound.
func TestHistogramsConcurrent(t *testing.T) {
	m := New(Config{StatementCapacity: 64, WorkloadCapacity: 256})
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h := m.StartStatement(fmt.Sprintf("SELECT %d", i%10))
				h.Parsed("SELECT", nil)
				h.Finish(1, 0, 1, nil)
				if i%100 == 0 {
					m.SnapshotLatency() // concurrent lock-free reads
				}
			}
		}(g)
	}
	wg.Wait()
	wall, _ := m.SnapshotLatency()
	if got, want := wall.Total(), int64(goroutines*perG); got != want {
		t.Fatalf("wall total = %d, want %d", got, want)
	}
	var freq, lat int64
	for _, si := range m.SnapshotStatements() {
		freq += si.Frequency
		lat += si.Lat.Total()
	}
	if freq != lat {
		t.Fatalf("Σ frequency %d != Σ per-statement histogram %d", freq, lat)
	}
}

func TestTraceRing(t *testing.T) {
	m := New(Config{TraceCapacity: 4})
	for i := 0; i < 6; i++ {
		seq := m.RecordTrace(Trace{
			Hash: uint64(i),
			Text: fmt.Sprintf("SELECT %d", i),
			Wall: time.Duration(i) * time.Millisecond,
			Spans: []TraceSpan{
				{Op: "SeqScan", Rows: int64(i), Depth: 0},
			},
		})
		if seq != uint64(i+1) {
			t.Fatalf("RecordTrace seq = %d, want %d", seq, i+1)
		}
	}
	traces := m.SnapshotTraces()
	if len(traces) != 4 {
		t.Fatalf("got %d traces, want 4 (ring capacity)", len(traces))
	}
	// Oldest two evicted; remaining are 2..5 oldest-first.
	for i, tr := range traces {
		if want := uint64(i + 3); tr.Seq != want {
			t.Errorf("trace %d: seq %d, want %d", i, tr.Seq, want)
		}
	}
	if got := m.TraceCount(); got != 4 {
		t.Errorf("TraceCount = %d, want 4", got)
	}
	// Disabled monitor records nothing.
	m.SetEnabled(false)
	if seq := m.RecordTrace(Trace{}); seq != 0 {
		t.Errorf("disabled RecordTrace seq = %d, want 0", seq)
	}
	if got := m.TraceCount(); got != 4 {
		t.Errorf("TraceCount after disabled record = %d, want 4", got)
	}
}
