package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Phase-1 overhead benchmarks and the zero-alloc guard behind the CI
// overhead-regression smoke step. The Call benchmarks run the complete
// record path (StartStatement → Parsed → Optimized → Finish) the way
// the engine drives it; the Parallel16 variant is the acceptance
// number: with the flagger compiled in but nothing flagged, phase 2
// must cost exactly one extra atomic load.

func benchMonitorCall(b *testing.B, par int, flagged bool) {
	m := New(Config{})
	const text = "SELECT a FROM t WHERE a = 1"
	tables := []string{"t"}
	attrs := []string{"t.a"}
	if flagged {
		m.Flag(text, FlagReasonManual, true, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				h := m.StartStatement(text)
				h.Parsed("SELECT", tables)
				h.Optimized(10, 5, 100, attrs, nil, time.Microsecond)
				if h.Profiled() {
					h.AddLockWait(100)
					h.AddWaits(1000, 100, 100, 0)
				}
				h.Finish(120, 7, 100, nil)
				h.FlushWaits()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkMonitorCallParallel1(b *testing.B)  { benchMonitorCall(b, 1, false) }
func BenchmarkMonitorCallParallel16(b *testing.B) { benchMonitorCall(b, 16, false) }

// The phase-2-on counterpart, for the EXPERIMENTS.md overhead table.
func BenchmarkMonitorCallFlaggedParallel1(b *testing.B)  { benchMonitorCall(b, 1, true) }
func BenchmarkMonitorCallFlaggedParallel16(b *testing.B) { benchMonitorCall(b, 16, true) }

// benchMonitorCallFraction sweeps the flagged fraction: 16 distinct
// statements round-robin across 16 goroutines, with 0/4/16 of them
// flagged — the EXPERIMENTS.md overhead-vs-coverage curve.
func benchMonitorCallFraction(b *testing.B, flaggedOf16 int) {
	m := New(Config{})
	texts := make([]string, 16)
	for i := range texts {
		texts[i] = "SELECT a FROM t WHERE a = " + string(rune('a'+i))
		if i < flaggedOf16 {
			m.Flag(texts[i], FlagReasonManual, true, 0)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				h := m.StartStatement(texts[n%16])
				h.Parsed("SELECT", nil)
				if h.Profiled() {
					h.AddLockWait(100)
					h.AddWaits(1000, 100, 100, 0)
				}
				h.Finish(120, 7, 100, nil)
				h.FlushWaits()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkMonitorCallFlagged0of16(b *testing.B)  { benchMonitorCallFraction(b, 0) }
func BenchmarkMonitorCallFlagged4of16(b *testing.B)  { benchMonitorCallFraction(b, 4) }
func BenchmarkMonitorCallFlagged16of16(b *testing.B) { benchMonitorCallFraction(b, 16) }

// TestPhase1RecordPathZeroAlloc asserts the idle-flagger record path
// allocates nothing per execution — the PR 1 envelope the adaptive
// layer must not disturb. CI runs it as the overhead-regression smoke
// step next to the benchmark above.
func TestPhase1RecordPathZeroAlloc(t *testing.T) {
	m := New(Config{})
	const text = "SELECT a FROM t WHERE a = 1"
	tables := []string{"t"}
	record(m, text, tables) // first call inserts the statement row
	allocs := testing.AllocsPerRun(200, func() {
		h := m.StartStatement(text)
		h.Parsed("SELECT", tables)
		h.Optimized(10, 5, 100, nil, nil, time.Microsecond)
		if h.Profiled() {
			t.Fatal("statement profiled with empty flag set")
		}
		h.Finish(120, 7, 100, nil)
		h.FlushWaits()
	})
	if allocs != 0 {
		t.Fatalf("phase-1 record path allocates %.1f/op, want 0", allocs)
	}
}
