package monitor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The monitor's hot path is sharded: the statement table, the
// reference ring and the per-object frequency maps are split into a
// power-of-two number of shards keyed by statement hash, and the
// workload ring into shards keyed round-robin by a global execution
// sequence. Each shard has its own mutex, so concurrent sessions only
// contend when their statements hash to the same shard. Global
// invariants — the statement capacity with overwrite-oldest eviction
// across shards, cumulative totals, the §IV-B near-full flush trigger
// — are enforced with atomic counters and a lock-free global FIFO of
// statement insertions, and the per-shard state is merged (ordered by
// sequence number) only at Snapshot/Drain time.

// maxShards caps the default shard count; beyond ~64 ways the locks
// stop being the bottleneck and the fixed per-shard memory dominates.
const maxShards = 64

// defaultShards is the next power of two ≥ GOMAXPROCS, clamped to
// [1, maxShards].
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// ceilPow2 rounds n up to a power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// largestPow2Dividing returns the largest power of two that divides n
// (1 for odd n). The workload shard count must divide the configured
// capacity so that the union of per-shard rings is exactly the newest
// C entries, as a single ring of capacity C would keep.
func largestPow2Dividing(n int) int {
	return n & -n
}

// stmtShard holds one shard of the statement table, the reference ring
// slice and the frequency maps. All fields are guarded by mu.
type stmtShard struct {
	mu sync.Mutex

	stmts map[uint64]*StatementInfo
	free  []*StatementInfo // reclaimed StatementInfos, reused by inserts

	refCap  int
	refs    []Reference
	refSeqs []uint64
	refPos  int
	refLen  int

	tableFreq map[string]int64
	attrFreq  map[string]int64
	indexFreq map[string]int64

	_ [64]byte // pad against false sharing between neighbouring shards
}

func (sh *stmtShard) init(refCap int) {
	sh.stmts = map[uint64]*StatementInfo{}
	sh.refCap = refCap
	sh.refs = make([]Reference, refCap)
	sh.refSeqs = make([]uint64, refCap)
	sh.tableFreq = map[string]int64{}
	sh.attrFreq = map[string]int64{}
	sh.indexFreq = map[string]int64{}
}

// maxFreeStmts bounds each shard's StatementInfo freelist; hashes are
// uniform, so evictions (which feed a victim shard's freelist) and
// inserts (which drain the inserting shard's) stay balanced and the
// bound is rarely hit.
const maxFreeStmts = 64

// removeLocked evicts one statement and reclaims its StatementInfo.
func (sh *stmtShard) removeLocked(hash uint64) {
	if si, ok := sh.stmts[hash]; ok {
		delete(sh.stmts, hash)
		if len(sh.free) < maxFreeStmts {
			sh.free = append(sh.free, si)
		}
	}
}

// newStmtLocked returns a StatementInfo for an insert, reusing a
// reclaimed one when available so steady-state statement churn does not
// allocate.
func (sh *stmtShard) newStmtLocked() *StatementInfo {
	if n := len(sh.free); n > 0 {
		si := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		return si
	}
	return new(StatementInfo)
}

// addRefLocked appends one reference, tagged with its global sequence.
func (sh *stmtShard) addRefLocked(r Reference, seq uint64) {
	sh.refs[sh.refPos] = r
	sh.refSeqs[sh.refPos] = seq
	sh.refPos = (sh.refPos + 1) % sh.refCap
	if sh.refLen < sh.refCap {
		sh.refLen++
	}
}

// workShard is one shard of the workload ring. Entries are appended in
// arrival order and tagged with their global execution sequence; the
// snapshot/drain merge sorts by sequence to reconstruct global order.
// The cumulative totals live here too: they are updated under the same
// lock the ring commit already takes, instead of bouncing two global
// atomics on every statement.
type workShard struct {
	mu   sync.Mutex
	ring []WorkloadEntry
	seqs []uint64
	pos  int
	n    int

	// cumulative counters; survive ring wraparound and drains.
	stmtTotal      int64
	monNanosTotal  int64
	wallNanosTotal int64 // Σ statement wallclock, the histogram's _sum
	optNanosTotal  int64 // Σ optimizer time

	// Global latency histograms, sharded like the ring but updated
	// with atomic counters outside the lock (see Handle.Finish). Kept
	// inside workShard so the padding below also separates them.
	wallHist latHist
	optHist  latHist

	_ [64]byte // pad against false sharing
}

// evictFIFO is a lock-free bounded queue of statement insertions in
// global order. Inserters publish (seq, hash) at the tail under their
// shard lock; evictors claim the head slot with a CAS and then delete
// the hash from whichever shard owns it. Because hashes distribute
// uniformly, evictions fan out over all shards instead of serializing
// on the one shard that happens to hold the oldest statement.
//
// A slot is published by storing its absolute sequence number, so a
// reader can tell an old lap from the current one without a separate
// flag. The queue is sized ≥ 2× the statement capacity: live
// statements never exceed the capacity, so the tail can never lap an
// unconsumed head slot (writers double-check and yield, for safety,
// under extreme reservation storms).
type evictFIFO struct {
	mask  uint64
	slots []evictSlot
	head  atomic.Uint64 // last consumed sequence
	tail  atomic.Uint64 // last published sequence (claimed via Add)
}

type evictSlot struct {
	seq  atomic.Uint64
	hash uint64
}

func (q *evictFIFO) init(stmtCap int) {
	n := ceilPow2(2*stmtCap + 256)
	q.slots = make([]evictSlot, n)
	q.mask = uint64(n - 1)
}

// publish appends one insertion and returns its global sequence.
func (q *evictFIFO) publish(hash uint64) uint64 {
	seq := q.tail.Add(1)
	for seq-q.head.Load() > uint64(len(q.slots)) {
		// Only reachable when more goroutines than queue slack are
		// simultaneously inserting; wait for evictors to consume.
		runtime.Gosched()
	}
	slot := &q.slots[seq&q.mask]
	slot.hash = hash
	slot.seq.Store(seq)
	return seq
}

// claimOldest pops the oldest published insertion, returning ok=false
// when none is published (empty, or the head insert is still being
// written).
func (q *evictFIFO) claimOldest() (hash uint64, ok bool) {
	for {
		h := q.head.Load()
		next := h + 1
		slot := &q.slots[next&q.mask]
		if slot.seq.Load() != next {
			return 0, false
		}
		// Read the payload before claiming: until head moves past
		// next, no writer may reuse this slot, so the read is stable.
		hash = slot.hash
		if q.head.CompareAndSwap(h, next) {
			return hash, true
		}
	}
}

// acquireStmtSlot obtains the right to insert one new statement,
// either by reserving unused capacity (CAS on the live counter) or —
// when the table is full — by evicting the globally oldest statement
// and taking over its slot, leaving the counter untouched. In the
// steady state of a statement-churn workload the counter is therefore
// only read, never written, so it stops being a contended cache line.
// The caller must not hold any shard lock (eviction locks the
// victim's shard); evicted reports which kind of slot was obtained,
// so a caller that loses a racing insert can return it correctly.
func (m *Monitor) acquireStmtSlot() (evicted bool) {
	for {
		n := m.liveStmts.Load()
		if n < int64(m.stmtCap) {
			if m.liveStmts.CompareAndSwap(n, n+1) {
				return false
			}
			continue
		}
		if m.evictOldest() {
			return true
		}
		// Table full but nothing published to evict: the capacity is
		// held by in-flight inserts. Let them land, then retry.
		runtime.Gosched()
	}
}

// evictOldest removes the statement with the globally smallest
// insertion sequence. The freed capacity slot is NOT returned to the
// live counter — the caller reuses it for its own insert.
func (m *Monitor) evictOldest() bool {
	hash, ok := m.evict.claimOldest()
	if !ok {
		return false
	}
	sh := &m.shards[hash&m.shardMask]
	sh.mu.Lock()
	// The claimed slot is exactly one liveness interval of this hash:
	// the entry cannot have been evicted by anyone else (slots are
	// consumed once), nor re-inserted (re-insert requires the eviction
	// to have happened), so it is present.
	sh.removeLocked(hash)
	sh.mu.Unlock()
	return true
}

// lockStmtShards acquires every statement shard lock in index order
// (the only multi-lock paths are snapshot-style readers, which all use
// this order, so they cannot deadlock with the single-lock hot path).
func (m *Monitor) lockStmtShards() {
	for i := range m.shards {
		m.shards[i].mu.Lock()
	}
}

func (m *Monitor) unlockStmtShards() {
	for i := range m.shards {
		m.shards[i].mu.Unlock()
	}
}

func (m *Monitor) lockWorkShards() {
	for i := range m.workShards {
		m.workShards[i].mu.Lock()
	}
}

func (m *Monitor) unlockWorkShards() {
	for i := range m.workShards {
		m.workShards[i].mu.Unlock()
	}
}
