package monitor

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Latency histograms use log-spaced buckets: bucket b counts durations
// in [2^(b-1), 2^b) nanoseconds (bucket 0 counts ≤ 0, which only a
// stopped clock produces). Power-of-two bounds make the bucket index a
// single bits.Len64 — no float math, no search — so recording a sample
// is one shift-class instruction plus one counter increment. 48 buckets
// cover up to 2^47 ns ≈ 39 hours; longer samples clamp into the last
// bucket.

// NumLatencyBuckets is the number of log-spaced histogram buckets.
const NumLatencyBuckets = 48

// latencyBucket maps a duration to its bucket index.
func latencyBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= NumLatencyBuckets {
		return NumLatencyBuckets - 1
	}
	return b
}

// LatencyBucketBounds returns bucket i's half-open range [lo, hi) in
// nanoseconds. Bucket 0 is [0, 1); the last bucket is unbounded above
// but reported with its nominal upper bound.
func LatencyBucketBounds(i int) (lo, hi time.Duration) {
	if i <= 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// LatencyCounts is a merged histogram snapshot: per-bucket sample
// counts, index as in LatencyBucketBounds.
type LatencyCounts [NumLatencyBuckets]int64

// Total returns the number of recorded samples.
func (c *LatencyCounts) Total() int64 {
	var n int64
	for _, v := range c {
		n += v
	}
	return n
}

// Merge adds o's counts into c.
func (c *LatencyCounts) Merge(o *LatencyCounts) {
	for i, v := range o {
		c[i] += v
	}
}

// Quantile returns a conservative estimate of the q-quantile
// (0 < q ≤ 1): the upper bound of the first bucket at which the
// cumulative count reaches q of the total. Zero samples yield 0.
func (c *LatencyCounts) Quantile(q float64) time.Duration {
	total := c.Total()
	if total == 0 {
		return 0
	}
	need := int64(q * float64(total))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i, v := range c {
		cum += v
		if cum >= need {
			_, hi := LatencyBucketBounds(i)
			return hi
		}
	}
	_, hi := LatencyBucketBounds(NumLatencyBuckets - 1)
	return hi
}

// latHist is the live, lock-free form: one atomic counter per bucket.
// It is embedded per work shard and never copied (see workShard).
type latHist struct {
	buckets [NumLatencyBuckets]atomic.Int64
}

// record adds one sample. Safe under concurrent use without any lock.
func (h *latHist) record(d time.Duration) {
	h.buckets[latencyBucket(d)].Add(1)
}

// addTo accumulates the live counters into a snapshot.
func (h *latHist) addTo(c *LatencyCounts) {
	for i := range h.buckets {
		c[i] += h.buckets[i].Load()
	}
}

// SnapshotLatency returns the merged global wallclock and optimize-time
// histograms. The counters are lock-free, so this takes no shard lock
// and can run at any frequency without perturbing the hot path.
func (m *Monitor) SnapshotLatency() (wall, opt LatencyCounts) {
	for i := range m.workShards {
		m.workShards[i].wallHist.addTo(&wall)
		m.workShards[i].optHist.addTo(&opt)
	}
	return wall, opt
}

// LatencySums returns the cumulative wallclock and optimize time across
// all monitored executions (the `_sum` companions of SnapshotLatency,
// in the Prometheus sense).
func (m *Monitor) LatencySums() (wall, opt time.Duration) {
	m.lockWorkShards()
	defer m.unlockWorkShards()
	var w, o int64
	for i := range m.workShards {
		w += m.workShards[i].wallNanosTotal
		o += m.workShards[i].optNanosTotal
	}
	return time.Duration(w), time.Duration(o)
}
