// Two-phase adaptive monitoring: phase 1 is the always-on lock-free
// statement path (monitor.go); phase 2 is deep wait-state attribution,
// enabled per statement by *flagging* it. The flag set is a bounded,
// copy-on-write map keyed by statement hash: readers (the statement
// hot path) load one atomic pointer and do a map lookup, writers
// (the Flagger policy, manual overrides, TTL expiry) copy and swap
// under a mutex. A single atomic counter — flaggedCount — gates the
// whole machinery: with zero flagged statements the hot path pays one
// extra atomic load and nothing else, keeping the phase-1 record path
// allocation-free and inside its PR 1 latency envelope.
//
// The design follows the Tigris two-phase scheme (PAPERS.md): cheap
// always-on sensors select the few statements worth deep
// instrumentation, so monitoring overhead stays flat as statement
// volume grows.
package monitor

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flag reasons recorded in ima_flags.
const (
	FlagReasonManual = "manual"
	FlagReasonP95    = "p95-threshold"
	FlagReasonTrend  = "trend"
)

// DefaultMaxFlagged bounds the phase-2 flag set: deep instrumentation
// is only ever active for a handful of statements at a time.
const DefaultMaxFlagged = 16

// flagEntry is the phase-2 accumulator for one flagged statement. The
// wait counters are atomics: concurrent sessions executing the same
// flagged statement commit their breakdowns without a lock.
type flagEntry struct {
	hash   uint64
	text   string
	reason string
	manual bool
	since  time.Time
	expiry atomic.Int64 // unix nanos; 0 = never (manual flags)

	samples atomic.Int64
	wallNs  atomic.Int64
	execNs  atomic.Int64
	lockNs  atomic.Int64
	ioNs    atomic.Int64
	fsyncNs atomic.Int64
	pinNs   atomic.Int64
}

// flagSet is an immutable snapshot of the flagged statements; the hot
// path reads it through one atomic pointer load.
type flagSet struct {
	m map[uint64]*flagEntry
}

var emptyFlags = &flagSet{m: map[uint64]*flagEntry{}}

// FlaggedStatement is one row of the ima_flags snapshot.
type FlaggedStatement struct {
	Hash    uint64
	Text    string
	Reason  string
	Manual  bool
	Since   time.Time
	Expires time.Time // zero for manual flags (never expire)

	Samples int64
	Waits   WaitBreakdown
}

// WaitBreakdown is a per-statement wait-state attribution: where the
// wallclock of the flagged statement's executions went. All values are
// cumulative nanoseconds since the statement was flagged.
type WaitBreakdown struct {
	WallNs    int64 // total measured wallclock
	ExecNs    int64 // executor work (wall in the engine minus waits)
	LockNs    int64 // lock-manager acquisition waits
	IONs      int64 // buffer-pool page loads and write-backs
	FsyncNs   int64 // WAL group-commit / fsync waits
	PinWaitNs int64 // backpressure on a fully pinned pool shard
}

// Sum returns the attributed total (everything but WallNs).
func (w WaitBreakdown) Sum() int64 {
	return w.ExecNs + w.LockNs + w.IONs + w.FsyncNs + w.PinWaitNs
}

// WaitTotals are the monitor-global cumulative wait counters behind
// the engine_wait_* /metrics series. They advance only for flagged
// statements (phase 2), in the same Finish call that feeds the
// per-statement breakdown, so at any quiesced moment the sums over
// ima_waits rows of never-expired flags equal these totals exactly.
type WaitTotals struct {
	ExecNs    int64
	LockNs    int64
	IONs      int64
	FsyncNs   int64
	PinWaitNs int64
}

// FlagCount returns the number of currently flagged statements (one
// atomic load; this is the hot-path gate).
func (m *Monitor) FlagCount() int64 {
	if m == nil {
		return 0
	}
	return m.flaggedCount.Load()
}

// Flag enables phase-2 wait attribution for a statement by text. A
// manual flag never expires and survives Flagger evaluation; a
// non-manual flag expires ttl after the call (ttl <= 0 means it only
// leaves by Unflag). Returns false when the bounded flag set is full.
func (m *Monitor) Flag(text, reason string, manual bool, ttl time.Duration) bool {
	if m == nil {
		return false
	}
	return m.flagHash(HashStatement(text), text, reason, manual, ttl)
}

func (m *Monitor) flagHash(hash uint64, text, reason string, manual bool, ttl time.Duration) bool {
	now := time.Now()
	m.flagMu.Lock()
	defer m.flagMu.Unlock()
	cur := m.flags.Load()
	if fe := cur.m[hash]; fe != nil {
		// Already flagged: refresh the TTL (the statement is still
		// misbehaving) and let a manual request pin it. Manual flags
		// are never demoted to expiring ones.
		if manual {
			fe.manual = true
			fe.expiry.Store(0)
		} else if !fe.manual && ttl > 0 {
			fe.expiry.Store(now.Add(ttl).UnixNano())
		}
		return true
	}
	if len(cur.m) >= m.flagCap {
		return false
	}
	fe := &flagEntry{hash: hash, text: text, reason: reason, manual: manual, since: now}
	if !manual && ttl > 0 {
		fe.expiry.Store(now.Add(ttl).UnixNano())
	}
	next := make(map[uint64]*flagEntry, len(cur.m)+1)
	for k, v := range cur.m {
		next[k] = v
	}
	next[hash] = fe
	m.flags.Store(&flagSet{m: next})
	m.flaggedCount.Store(int64(len(next)))
	return true
}

// Unflag removes a statement's phase-2 flag by text (manual override
// in the other direction). Returns whether it was flagged.
func (m *Monitor) Unflag(text string) bool {
	if m == nil {
		return false
	}
	return m.unflagLocked(func(cur *flagSet) []uint64 {
		hash := HashStatement(text)
		if _, ok := cur.m[hash]; ok {
			return []uint64{hash}
		}
		return nil
	}) > 0
}

// ExpireFlags removes non-manual flags whose TTL has passed. The
// Flagger calls it each evaluation; it is exported so embedders
// driving the monitor without a Flagger can run expiry themselves.
func (m *Monitor) ExpireFlags(now time.Time) int {
	if m == nil {
		return 0
	}
	return m.unflagLocked(func(cur *flagSet) []uint64 {
		var dead []uint64
		for h, fe := range cur.m {
			if e := fe.expiry.Load(); e != 0 && e <= now.UnixNano() {
				dead = append(dead, h)
			}
		}
		return dead
	})
}

// unflagLocked removes the hashes pick selects from the current flag
// set via one copy-on-write swap, returning how many were removed.
func (m *Monitor) unflagLocked(pick func(*flagSet) []uint64) int {
	m.flagMu.Lock()
	defer m.flagMu.Unlock()
	cur := m.flags.Load()
	dead := pick(cur)
	if len(dead) == 0 {
		return 0
	}
	next := make(map[uint64]*flagEntry, len(cur.m))
	for k, v := range cur.m {
		next[k] = v
	}
	for _, h := range dead {
		delete(next, h)
	}
	m.flags.Store(&flagSet{m: next})
	m.flaggedCount.Store(int64(len(next)))
	return len(dead)
}

// SnapshotFlags returns the current flag set with accumulated wait
// breakdowns, oldest flag first (ima_flags order).
func (m *Monitor) SnapshotFlags() []FlaggedStatement {
	if m == nil {
		return nil
	}
	fs := m.flags.Load()
	out := make([]FlaggedStatement, 0, len(fs.m))
	for _, fe := range fs.m {
		f := FlaggedStatement{
			Hash:    fe.hash,
			Text:    fe.text,
			Reason:  fe.reason,
			Manual:  fe.manual,
			Since:   fe.since,
			Samples: fe.samples.Load(),
			Waits: WaitBreakdown{
				WallNs:    fe.wallNs.Load(),
				ExecNs:    fe.execNs.Load(),
				LockNs:    fe.lockNs.Load(),
				IONs:      fe.ioNs.Load(),
				FsyncNs:   fe.fsyncNs.Load(),
				PinWaitNs: fe.pinNs.Load(),
			},
		}
		if e := fe.expiry.Load(); e != 0 {
			f.Expires = time.Unix(0, e)
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Since.Equal(out[j].Since) {
			return out[i].Since.Before(out[j].Since)
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// WaitTotals returns the monitor-global cumulative wait counters.
func (m *Monitor) WaitTotals() WaitTotals {
	if m == nil {
		return WaitTotals{}
	}
	return WaitTotals{
		ExecNs:    m.waitExec.Load(),
		LockNs:    m.waitLock.Load(),
		IONs:      m.waitIO.Load(),
		FsyncNs:   m.waitFsync.Load(),
		PinWaitNs: m.waitPin.Load(),
	}
}

// Phase2Overhead returns the cumulative time spent inside the phase-2
// machinery itself: flag lookups and wait recording. Phase-1 sensor
// time is TotalMonitorTime; their sum over total statement wallclock
// is the monitor_overhead_ratio gauge.
func (m *Monitor) Phase2Overhead() time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.phase2Nanos.Load())
}

// recordWaits commits one profiled execution's breakdown: into the
// statement's flag entry (→ ima_waits) and the global totals
// (→ engine_wait_*), in the same call so the two stay in parity.
func (m *Monitor) recordWaits(hash uint64, wallNs, execNs, lockNs, ioNs, fsyncNs, pinNs int64) {
	t0 := time.Now()
	fe := m.flags.Load().m[hash]
	if fe == nil {
		// Unflagged while executing: drop the sample entirely rather
		// than let the global counters drift from the table sums.
		return
	}
	fe.samples.Add(1)
	fe.wallNs.Add(wallNs)
	fe.execNs.Add(execNs)
	fe.lockNs.Add(lockNs)
	fe.ioNs.Add(ioNs)
	fe.fsyncNs.Add(fsyncNs)
	fe.pinNs.Add(pinNs)
	m.waitExec.Add(execNs)
	m.waitLock.Add(lockNs)
	m.waitIO.Add(ioNs)
	m.waitFsync.Add(fsyncNs)
	m.waitPin.Add(pinNs)
	m.phase2Nanos.Add(int64(time.Since(t0)))
}

// Profiled reports whether this statement is phase-2 flagged, latching
// the answer so Finish commits the breakdown. The zero-flagged fast
// path is one atomic load; the lookup cost when flags exist is counted
// as phase-2 overhead.
func (h *Handle) Profiled() bool {
	if h == nil || h.m == nil || h.m.flaggedCount.Load() == 0 {
		return false
	}
	t0 := time.Now()
	_, ok := h.m.flags.Load().m[HashStatement(h.text)]
	h.profiled = ok
	if ok {
		h.pm = h.m
	}
	h.m.phase2Nanos.Add(int64(time.Since(t0)))
	return ok
}

// FlushWaits commits the accumulated breakdown of a profiled statement.
// The engine calls it once, after Finish (which latches the wall time)
// and after every wait source — including the autocommit durability
// wait, which runs later than some Finish call sites — has accumulated.
// Idempotent; a no-op for unprofiled statements.
func (h *Handle) FlushWaits() {
	if h == nil || !h.profiled || h.pm == nil {
		return
	}
	m := h.pm
	h.pm = nil
	// The exec window closes a few clock reads after the wall clock
	// stops (the dispatch return path), so the buckets can overshoot the
	// wall by nanoseconds. Shave the skew from exec self-time first; if
	// the wait measurements alone exceed the wall (inconsistent clock
	// reads), scale them down to fit, so the invariant "breakdown sum ≤
	// wall" holds exactly at the commit point.
	if over := h.execNs + h.lockNs + h.ioNs + h.fsyncNs + h.pinNs - h.wallNs; over > 0 {
		h.execNs -= over
		if h.execNs < 0 {
			h.execNs = 0
			if waits := h.lockNs + h.ioNs + h.fsyncNs + h.pinNs; waits > h.wallNs {
				f := float64(h.wallNs) / float64(waits)
				h.lockNs = int64(float64(h.lockNs) * f)
				h.ioNs = int64(float64(h.ioNs) * f)
				h.fsyncNs = int64(float64(h.fsyncNs) * f)
				h.pinNs = int64(float64(h.pinNs) * f)
			}
		}
	}
	m.recordWaits(HashStatement(h.text), h.wallNs,
		h.execNs, h.lockNs, h.ioNs, h.fsyncNs, h.pinNs)
}

// AddLockWait accumulates lock-manager acquisition wait for a
// profiled statement (no-op otherwise).
func (h *Handle) AddLockWait(d time.Duration) {
	if h != nil && h.profiled {
		h.lockNs += int64(d)
	}
}

// AddWaits accumulates the remaining breakdown buckets for a profiled
// statement; the engine calls it once per execution window with the
// deltas it measured (no-op when the statement is not profiled).
func (h *Handle) AddWaits(execNs, ioNs, fsyncNs, pinNs int64) {
	if h == nil || !h.profiled {
		return
	}
	h.execNs += execNs
	h.ioNs += ioNs
	h.fsyncNs += fsyncNs
	h.pinNs += pinNs
}

// FlaggerConfig tunes the adaptive flagging policy.
type FlaggerConfig struct {
	// MinSamples is the minimum executions a statement needs within one
	// evaluation interval before its tail is judged (default 16).
	MinSamples int64
	// P95Threshold flags any statement whose interval p95 exceeds it
	// (default 0 = disabled; set explicitly to use absolute flagging).
	P95Threshold time.Duration
	// TrendFactor flags a statement whose interval p95 exceeds
	// TrendFactor × its smoothed baseline p95 — the trend trigger
	// (default 3; values <= 1 disable it).
	TrendFactor float64
	// TTL is how long an automatic flag lives without being renewed by
	// a subsequent evaluation (default 2 minutes).
	TTL time.Duration
}

// DefaultFlagTTL is how long an automatic flag outlives the anomaly
// that raised it.
const DefaultFlagTTL = 2 * time.Minute

// Flagger is the phase-1 → phase-2 selection policy: it differences
// per-statement latency histograms between evaluations and flags
// statements whose interval p95 crosses an absolute threshold or
// diverges from their own smoothed baseline. The storage daemon drives
// Evaluate once per poll; tests and embedders may call it directly.
type Flagger struct {
	m   *Monitor
	cfg FlaggerConfig

	mu   sync.Mutex
	prev map[uint64]LatencyCounts // cumulative histogram at last evaluation
	base map[uint64]float64       // EWMA of interval p95, nanoseconds
}

// NewFlagger builds a flagger over m with defaults filled in.
func NewFlagger(m *Monitor, cfg FlaggerConfig) *Flagger {
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 16
	}
	if cfg.TrendFactor == 0 {
		cfg.TrendFactor = 3
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultFlagTTL
	}
	return &Flagger{
		m:    m,
		cfg:  cfg,
		prev: map[uint64]LatencyCounts{},
		base: map[uint64]float64{},
	}
}

// Evaluate runs one adaptive-monitoring step: expire stale flags, then
// judge every statement's latency delta since the previous evaluation.
// It returns how many statements were flagged (or had their TTL
// renewed) and how many flags expired.
func (f *Flagger) Evaluate(now time.Time) (flagged, expired int) {
	if f == nil || f.m == nil {
		return 0, 0
	}
	expired = f.m.ExpireFlags(now)
	stmts := f.m.SnapshotStatements()

	f.mu.Lock()
	defer f.mu.Unlock()
	prev := f.prev
	next := make(map[uint64]LatencyCounts, len(stmts))
	for i := range stmts {
		st := &stmts[i]
		next[st.Hash] = st.Lat
		delta := st.Lat
		if p, ok := prev[st.Hash]; ok {
			for b := range delta {
				delta[b] -= p[b]
				if delta[b] < 0 { // statement evicted + re-inserted
					delta[b] = 0
				}
			}
		}
		n := delta.Total()
		if n < f.cfg.MinSamples {
			continue
		}
		p95 := float64(delta.Quantile(0.95))
		base, seen := f.base[st.Hash]
		if !seen {
			f.base[st.Hash] = p95
		} else {
			f.base[st.Hash] = 0.7*base + 0.3*p95
		}
		reason := ""
		switch {
		case f.cfg.P95Threshold > 0 && p95 >= float64(f.cfg.P95Threshold):
			reason = FlagReasonP95
		case seen && f.cfg.TrendFactor > 1 && p95 > f.cfg.TrendFactor*base:
			reason = FlagReasonTrend
		}
		if reason != "" && f.m.flagHash(st.Hash, st.Text, reason, false, f.cfg.TTL) {
			flagged++
		}
	}
	f.prev = next
	// Drop baselines for statements that left the monitor's ring so
	// the maps stay bounded by the statement capacity.
	for h := range f.base {
		if _, ok := next[h]; !ok {
			delete(f.base, h)
		}
	}
	return flagged, expired
}
