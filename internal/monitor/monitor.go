// Package monitor implements the paper's core contribution: integrated
// performance monitoring inside the DBMS. Sensors along the statement
// path (parse → optimize → execute) record query text, referenced
// objects, estimated and actual costs and wallclock times into fixed
// size in-memory ring buffers. The monitor never touches disk; the
// storage daemon (internal/daemon) persists snapshots, and internal/ima
// exposes the buffers as virtual SQL tables.
//
// Every sensor measures its own execution time so that the share of
// monitoring in total statement time (the paper's Figure 5) can be
// reproduced exactly.
//
// The hot path is sharded (see shard.go): sensor commits from
// concurrent sessions take one shard lock each, so monitoring overhead
// stays sensor-bound rather than contention-bound as sessions scale.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStatementCapacity is the number of distinct statements the
// statement ring holds before wrapping around, as in the prototype
// ("by default, the monitoring can capture up to 1000 different
// statements until the buffer wraps around").
const DefaultStatementCapacity = 1000

// DefaultWorkloadCapacity is the number of workload (execution) entries
// kept in memory between daemon polls.
const DefaultWorkloadCapacity = 4096

// ObjType classifies a referenced database object.
type ObjType uint8

// Referenced object kinds.
const (
	ObjTable ObjType = iota
	ObjAttribute
	ObjIndex
)

// String returns "table", "attribute" or "index".
func (o ObjType) String() string {
	switch o {
	case ObjTable:
		return "table"
	case ObjAttribute:
		return "attribute"
	case ObjIndex:
		return "index"
	}
	return "?"
}

// StatementInfo is one row of the statements ring: a unique statement
// identified by the FNV-64 hash of its text.
type StatementInfo struct {
	Hash      uint64
	Text      string
	Kind      string // SELECT, INSERT, ...
	Frequency int64
	FirstSeen time.Time
	LastSeen  time.Time

	// Lat is the per-statement wallclock latency histogram. It is
	// plain (non-atomic) counters on purpose: it is bumped in the same
	// critical section as Frequency, so its total always equals
	// Frequency exactly, and StatementInfo stays copyable for the
	// snapshot path and the shard freelist.
	Lat LatencyCounts

	seq uint64 // global insertion order, for the cross-shard merge
}

// WorkloadEntry is one row of the workload ring: a single execution of
// a statement with its cost breakdown.
type WorkloadEntry struct {
	Hash     uint64
	Start    time.Time
	Wall     time.Duration // total statement wallclock
	OptTime  time.Duration // time spent in the optimizer
	ExecCPU  int64         // actual tuple operations
	ExecIO   int64         // actual page I/Os (buffer pool misses + writes)
	EstCPU   float64       // optimizer estimate, tuple operations
	EstIO    float64       // optimizer estimate, page I/Os
	EstRows  float64       // optimizer cardinality estimate
	Rows     int64         // rows produced
	MonNanos int64         // time spent inside monitor sensors
	Err      bool
}

// Reference is one row of the references ring: statement hash → object.
type Reference struct {
	Hash  uint64
	Type  ObjType
	Name  string // object name (attribute as "table.column")
	Table string // owning table (= Name for tables)
}

// Config sizes the monitor's ring buffers.
type Config struct {
	StatementCapacity int
	WorkloadCapacity  int
	ReferenceCapacity int
	// Shards is the number of ways the hot path is split (rounded up
	// to a power of two, capped at 64). Zero derives it from
	// GOMAXPROCS. The shard count never changes observable semantics,
	// only contention.
	Shards int
	// TraceCapacity bounds the ring of per-operator statement traces
	// (EXPLAIN ANALYZE). Zero means DefaultTraceCapacity.
	TraceCapacity int
	// MaxFlagged bounds the phase-2 flag set (flags.go). Zero means
	// DefaultMaxFlagged.
	MaxFlagged int
}

// Monitor is the in-core monitoring component. A disabled monitor adds
// only a nil check to the statement path, which is the paper's
// "Original" baseline.
type Monitor struct {
	enabled atomic.Bool

	// Statement table, reference ring and frequency maps, sharded by
	// statement hash.
	shards    []stmtShard
	shardMask uint64
	stmtCap   int          // global distinct-statement capacity
	liveStmts atomic.Int64 // distinct statements across shards, ≤ stmtCap
	evict     evictFIFO    // statement insertions in global order

	// Workload ring, sharded round-robin by execution sequence so the
	// union of shard rings is exactly the newest workCap entries.
	workShards []workShard
	workMask   uint64
	workCap    int // total capacity across shards
	workSeq    atomic.Uint64
	liveWork   atomic.Int64 // entries currently buffered, ≤ workCap

	// fullHandler, when set, is invoked (outside any monitor lock)
	// once when the workload ring crosses ~90% of its capacity, and is
	// re-armed by DrainWorkload. This is the paper's §IV-B extension:
	// writing to the workload DB "only when the main memory buffers
	// are full" instead of on a fixed schedule.
	fullHandler atomic.Value // func()
	fullFired   atomic.Bool

	// workDropped counts workload entries lost to ring wraparound
	// before any drain persisted them. When the storage daemon's
	// carryover buffer is full it deliberately stops draining and lets
	// the ring wrap — this counter makes that bounded loss observable.
	workDropped atomic.Int64

	// traces is the bounded ring of per-operator statement traces
	// (see trace.go); written only by EXPLAIN ANALYZE, never by the
	// regular statement hot path.
	traces traceRing

	// Two-phase adaptive monitoring (flags.go). flaggedCount gates the
	// hot path: while it is zero, StartStatement/Finish stay on the
	// phase-1-only path at the cost of a single extra atomic load.
	flaggedCount atomic.Int64
	flags        atomic.Pointer[flagSet]
	flagMu       sync.Mutex // serializes copy-on-write flag set swaps
	flagCap      int

	// Monitor-global cumulative wait counters (phase 2), mirrored by
	// the per-statement breakdowns in the flag entries.
	waitExec  atomic.Int64
	waitLock  atomic.Int64
	waitIO    atomic.Int64
	waitFsync atomic.Int64
	waitPin   atomic.Int64
	// phase2Nanos is the self-measured cost of the phase-2 machinery
	// (flag lookups + wait recording); phase 1 is monNanosTotal.
	phase2Nanos atomic.Int64
}

// New creates an enabled monitor with the given configuration. Zero
// capacities fall back to the defaults.
func New(cfg Config) *Monitor {
	if cfg.StatementCapacity <= 0 {
		cfg.StatementCapacity = DefaultStatementCapacity
	}
	if cfg.WorkloadCapacity <= 0 {
		cfg.WorkloadCapacity = DefaultWorkloadCapacity
	}
	if cfg.ReferenceCapacity <= 0 {
		cfg.ReferenceCapacity = cfg.StatementCapacity * 8
	}
	nShards := cfg.Shards
	if nShards <= 0 {
		nShards = defaultShards()
	}
	nShards = ceilPow2(nShards)
	if nShards > maxShards {
		nShards = maxShards
	}
	// The workload shard count must divide the capacity so the union
	// of per-shard rings holds exactly the newest WorkloadCapacity
	// entries (odd capacities degrade to a single shard).
	nWork := largestPow2Dividing(cfg.WorkloadCapacity)
	if nWork > nShards {
		nWork = nShards
	}
	perWork := cfg.WorkloadCapacity / nWork
	// References round up to a whole ring per shard.
	perRef := (cfg.ReferenceCapacity + nShards - 1) / nShards

	m := &Monitor{
		shards:     make([]stmtShard, nShards),
		shardMask:  uint64(nShards - 1),
		stmtCap:    cfg.StatementCapacity,
		workShards: make([]workShard, nWork),
		workMask:   uint64(nWork - 1),
		workCap:    perWork * nWork,
	}
	m.evict.init(cfg.StatementCapacity)
	m.traces.init(cfg.TraceCapacity)
	m.flagCap = cfg.MaxFlagged
	if m.flagCap <= 0 {
		m.flagCap = DefaultMaxFlagged
	}
	m.flags.Store(emptyFlags)
	for i := range m.shards {
		m.shards[i].init(perRef)
	}
	for i := range m.workShards {
		m.workShards[i].ring = make([]WorkloadEntry, perWork)
		m.workShards[i].seqs = make([]uint64, perWork)
	}
	m.enabled.Store(true)
	return m
}

// SetEnabled switches the monitor on or off at runtime.
func (m *Monitor) SetEnabled(v bool) { m.enabled.Store(v) }

// Enabled reports whether sensors are active.
func (m *Monitor) Enabled() bool { return m.enabled.Load() }

// ShardCount reports how many ways the statement-side hot path is
// split (the workload ring may use fewer shards; see New).
func (m *Monitor) ShardCount() int { return len(m.shards) }

// Handle accumulates sensor data for one executing statement. It is
// returned by value so the hot path allocates nothing; the zero Handle
// (and a nil *Handle) is inert, which is how a disabled monitor keeps
// the statement path down to a couple of nil checks. A handle is
// single-use: Finish commits it and further calls are no-ops.
type Handle struct {
	m     *Monitor
	text  string
	kind  string
	start time.Time

	tables  []string
	attrs   []string // "table.column"
	indexes []string

	optTime time.Duration
	estCPU  float64
	estIO   float64
	estRows float64

	// Phase-2 wait accumulation, populated by the engine only when the
	// statement is flagged (see flags.go). Plain fields: a handle is
	// owned by one session goroutine. wallNs is latched by Finish so
	// FlushWaits — which the engine calls after the commit-path waits
	// have landed — can report the breakdown against the full wall time.
	profiled bool
	pm       *Monitor // latched by Profiled; survives Finish's h.m reset
	execNs   int64
	lockNs   int64
	ioNs     int64
	fsyncNs  int64
	pinNs    int64
	wallNs   int64
}

// HashStatement returns the FNV-64a hash the monitor keys statements
// by. The loop is written out (rather than using hash/fnv) so the hot
// path pays no interface dispatch and no string→[]byte copy.
func HashStatement(text string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= prime64
	}
	return h
}

// StartStatement begins monitoring one statement execution. It is the
// "Wallclock Start" sensor at the query interface. The returned handle
// is a value — callers keep it on their stack, so starting a statement
// costs one clock read and a struct fill, with no allocation. Hashing
// of the statement text is deferred to Finish, where it is covered by
// the self-measurement that feeds the paper's Figure 5.
func (m *Monitor) StartStatement(text string) Handle {
	if m == nil || !m.enabled.Load() {
		return Handle{}
	}
	return Handle{m: m, text: text, start: time.Now()}
}

// Parsed is the parser sensor: statement kind and referenced tables,
// logged "right at the source" while the parser has them in hand. The
// slice is retained by reference and must not be mutated afterwards.
// Its cost is a handful of stores; the self-measurement that feeds
// Figure 5 happens in StartStatement and Finish, which carry the real
// work (hashing and the ring-buffer commit).
func (h *Handle) Parsed(kind string, tables []string) {
	if h == nil {
		return
	}
	h.kind = kind
	h.tables = tables
}

// Optimized is the optimizer sensor: estimated costs, referenced
// attributes and the indexes the plan uses. Both slices are retained
// by reference (the engine passes the cached plan's immutable slices).
func (h *Handle) Optimized(estCPU, estIO, estRows float64, attrs, indexes []string, optTime time.Duration) {
	if h == nil {
		return
	}
	h.estCPU, h.estIO, h.estRows = estCPU, estIO, estRows
	h.attrs = attrs
	h.indexes = indexes
	h.optTime = optTime
}

// Finish is the "Wallclock Stop" sensor: it commits the collected data
// into the ring buffers under two short, sharded critical sections
// (statement table, then workload ring). Finish is idempotent — the
// first call commits, later calls on the same handle are no-ops — so
// error paths that stop the wallclock early cannot double-count an
// execution.
func (h *Handle) Finish(execCPU, execIO, rows int64, execErr error) {
	if h == nil || h.m == nil {
		return
	}
	t0 := time.Now()
	m := h.m
	h.m = nil
	hash := HashStatement(h.text)
	// Per-statement histogram bucket, derived from the clock read the
	// sensor already paid for. The few hundred nanoseconds of Finish
	// itself excluded here cannot move a sample across a power-of-two
	// bucket boundary in any regime where the histogram is meaningful.
	wallBucket := latencyBucket(t0.Sub(h.start))

	entry := WorkloadEntry{
		Hash:    hash,
		Start:   h.start,
		OptTime: h.optTime,
		ExecCPU: execCPU,
		ExecIO:  execIO,
		EstCPU:  h.estCPU,
		EstIO:   h.estIO,
		EstRows: h.estRows,
		Rows:    rows,
		Err:     execErr != nil,
	}

	// Statement table, references and object frequencies: one shard,
	// selected by statement hash.
	sh := &m.shards[hash&m.shardMask]
	sh.mu.Lock()
	si := sh.stmts[hash]
	if si == nil {
		// New statement: acquire one slot of the global capacity.
		// While capacity remains, a CAS reservation succeeds without
		// dropping the shard lock. When the table is full, the slot
		// comes from evicting the globally oldest statement, which
		// lives in some other shard — drop this shard's lock for the
		// eviction (at most one shard lock is ever held), then
		// re-check for a racing insert.
		reserved := false
		for {
			n := m.liveStmts.Load()
			if n >= int64(m.stmtCap) {
				break
			}
			if m.liveStmts.CompareAndSwap(n, n+1) {
				reserved = true
				break
			}
		}
		if !reserved {
			// Evicting inline keeps this shard's lock held: the victim
			// usually lives in another shard, taken with TryLock, which
			// never blocks and therefore cannot deadlock regardless of
			// lock order.
			if victimHash, ok := m.evict.claimOldest(); ok {
				victim := &m.shards[victimHash&m.shardMask]
				if victim == sh {
					sh.removeLocked(victimHash)
				} else if victim.mu.TryLock() {
					victim.removeLocked(victimHash)
					victim.mu.Unlock()
				} else {
					// Victim shard busy: finish the claimed eviction
					// the blocking way, which requires dropping this
					// shard's lock first (at most one blocking shard
					// lock is ever held), then re-checking for a
					// racing insert.
					sh.mu.Unlock()
					victim.mu.Lock()
					victim.removeLocked(victimHash)
					victim.mu.Unlock()
					sh.mu.Lock()
					si = sh.stmts[hash]
				}
			} else {
				// Table full but nothing published to evict yet: the
				// capacity is held by in-flight inserts. Take the
				// general retry path without this shard's lock.
				sh.mu.Unlock()
				m.acquireStmtSlot()
				sh.mu.Lock()
				si = sh.stmts[hash]
			}
		}
		if si == nil {
			si = sh.newStmtLocked()
			*si = StatementInfo{Hash: hash, Text: h.text, Kind: h.kind, FirstSeen: h.start}
			si.seq = m.evict.publish(hash)
			sh.stmts[hash] = si

			// References: recorded once per insertion, in the same
			// critical section, so their merge order is derived from
			// the statement's insertion sequence — no extra global
			// counter on the hot path.
			seq := si.seq << 16
			for _, t := range h.tables {
				sh.addRefLocked(Reference{Hash: hash, Type: ObjTable, Name: t, Table: t}, seq)
				seq++
			}
			for _, a := range h.attrs {
				sh.addRefLocked(Reference{Hash: hash, Type: ObjAttribute, Name: a, Table: tablePart(a)}, seq)
				seq++
			}
			for _, ix := range h.indexes {
				sh.addRefLocked(Reference{Hash: hash, Type: ObjIndex, Name: ix}, seq)
				seq++
			}
		} else {
			// Lost the insert race. The acquired slot is surplus either
			// way: a reservation is returned, an evicted slot means the
			// table shrank by one — the live count drops by one in both
			// cases.
			m.liveStmts.Add(-1)
		}
	}
	si.Frequency++
	si.LastSeen = h.start
	si.Lat[wallBucket]++ // same critical section as Frequency: totals match exactly

	// Object frequencies (merged by summing across shards at snapshot).
	for _, t := range h.tables {
		sh.tableFreq[t]++
	}
	for _, a := range h.attrs {
		sh.attrFreq[a]++
	}
	for _, ix := range h.indexes {
		sh.indexFreq[ix]++
	}
	sh.mu.Unlock()

	// Workload ring: round-robin shard by execution sequence, so load
	// spreads evenly even when every session runs the same statement.
	// Monitor time includes this commit, estimated from the sensors so
	// far plus the elapsed time in Finish. One clock read serves both
	// durations.
	now := time.Now()
	entry.MonNanos = int64(now.Sub(t0))
	entry.Wall = now.Sub(h.start)
	wseq := m.workSeq.Add(1)
	ws := &m.workShards[wseq&m.workMask]
	ws.mu.Lock()
	var live int64
	if ws.n < len(ws.ring) {
		ws.n++
		live = m.liveWork.Add(1)
	} else {
		live = int64(m.workCap) // overwrote this shard's oldest entry
		m.workDropped.Add(1)
	}
	ws.ring[ws.pos] = entry
	ws.seqs[ws.pos] = wseq
	ws.pos = (ws.pos + 1) % len(ws.ring)
	ws.stmtTotal++
	ws.monNanosTotal += entry.MonNanos
	ws.wallNanosTotal += int64(entry.Wall)
	ws.optNanosTotal += int64(entry.OptTime)
	ws.mu.Unlock()

	// Global latency histograms: lock-free atomic bumps on this
	// shard's counters, outside the critical section. Round-robin
	// shard selection means the counters are usually uncontended even
	// when every session runs the same statement.
	ws.wallHist.record(entry.Wall)
	ws.optHist.record(entry.OptTime)

	// Phase 2: latch the wall time for flagged statements. The wait
	// breakdown itself is committed by FlushWaits, which the engine
	// calls once every wait source (including the autocommit durability
	// wait, which runs after some Finish call sites) has accumulated.
	// h.profiled is only ever set through Profiled(), which the engine
	// calls when the flag set is non-empty, so the idle path skips this
	// without even a load.
	if h.profiled {
		h.wallNs = int64(entry.Wall)
	}

	if live*10 >= int64(m.workCap)*9 && !m.fullFired.Load() &&
		m.fullFired.CompareAndSwap(false, true) {
		if fn, ok := m.fullHandler.Load().(func()); ok && fn != nil {
			fn()
		}
	}
}

// SetFullHandler registers fn to be called once whenever the workload
// ring crosses ~90% of its capacity; DrainWorkload re-arms it. The
// storage daemon uses this to flush early instead of losing entries to
// ring wraparound under statement bursts.
func (m *Monitor) SetFullHandler(fn func()) { m.fullHandler.Store(fn) }

// WorkloadDepth returns the number of workload entries currently
// buffered in the ring (one atomic load; safe on the hot path). The
// storage daemon reads it to decide how much is pending while its own
// carryover buffer is saturated.
func (m *Monitor) WorkloadDepth() int64 { return m.liveWork.Load() }

// WorkloadDropped returns the cumulative number of workload entries
// overwritten by ring wraparound before a drain could persist them.
func (m *Monitor) WorkloadDropped() int64 { return m.workDropped.Load() }

func tablePart(attr string) string {
	for i := 0; i < len(attr); i++ {
		if attr[i] == '.' {
			return attr[:i]
		}
	}
	return ""
}

// TotalStatements returns the cumulative number of monitored
// executions, unaffected by ring wraparound.
func (m *Monitor) TotalStatements() int64 {
	m.lockWorkShards()
	defer m.unlockWorkShards()
	var n int64
	for i := range m.workShards {
		n += m.workShards[i].stmtTotal
	}
	return n
}

// TotalMonitorTime returns the cumulative time spent inside sensors.
func (m *Monitor) TotalMonitorTime() time.Duration {
	m.lockWorkShards()
	defer m.unlockWorkShards()
	var n int64
	for i := range m.workShards {
		n += m.workShards[i].monNanosTotal
	}
	return time.Duration(n)
}

// StatementCount returns the number of distinct statements currently in
// the ring.
func (m *Monitor) StatementCount() int {
	m.lockStmtShards()
	defer m.unlockStmtShards()
	n := 0
	for i := range m.shards {
		n += len(m.shards[i].stmts)
	}
	return n
}
