// Package monitor implements the paper's core contribution: integrated
// performance monitoring inside the DBMS. Sensors along the statement
// path (parse → optimize → execute) record query text, referenced
// objects, estimated and actual costs and wallclock times into fixed
// size in-memory ring buffers. The monitor never touches disk; the
// storage daemon (internal/daemon) persists snapshots, and internal/ima
// exposes the buffers as virtual SQL tables.
//
// Every sensor measures its own execution time so that the share of
// monitoring in total statement time (the paper's Figure 5) can be
// reproduced exactly.
package monitor

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStatementCapacity is the number of distinct statements the
// statement ring holds before wrapping around, as in the prototype
// ("by default, the monitoring can capture up to 1000 different
// statements until the buffer wraps around").
const DefaultStatementCapacity = 1000

// DefaultWorkloadCapacity is the number of workload (execution) entries
// kept in memory between daemon polls.
const DefaultWorkloadCapacity = 4096

// ObjType classifies a referenced database object.
type ObjType uint8

// Referenced object kinds.
const (
	ObjTable ObjType = iota
	ObjAttribute
	ObjIndex
)

// String returns "table", "attribute" or "index".
func (o ObjType) String() string {
	switch o {
	case ObjTable:
		return "table"
	case ObjAttribute:
		return "attribute"
	case ObjIndex:
		return "index"
	}
	return "?"
}

// StatementInfo is one row of the statements ring: a unique statement
// identified by the FNV-64 hash of its text.
type StatementInfo struct {
	Hash      uint64
	Text      string
	Kind      string // SELECT, INSERT, ...
	Frequency int64
	FirstSeen time.Time
	LastSeen  time.Time
}

// WorkloadEntry is one row of the workload ring: a single execution of
// a statement with its cost breakdown.
type WorkloadEntry struct {
	Hash     uint64
	Start    time.Time
	Wall     time.Duration // total statement wallclock
	OptTime  time.Duration // time spent in the optimizer
	ExecCPU  int64         // actual tuple operations
	ExecIO   int64         // actual page I/Os (buffer pool misses + writes)
	EstCPU   float64       // optimizer estimate, tuple operations
	EstIO    float64       // optimizer estimate, page I/Os
	EstRows  float64       // optimizer cardinality estimate
	Rows     int64         // rows produced
	MonNanos int64         // time spent inside monitor sensors
	Err      bool
}

// Reference is one row of the references ring: statement hash → object.
type Reference struct {
	Hash  uint64
	Type  ObjType
	Name  string // object name (attribute as "table.column")
	Table string // owning table (= Name for tables)
}

// Config sizes the monitor's ring buffers.
type Config struct {
	StatementCapacity int
	WorkloadCapacity  int
	ReferenceCapacity int
}

// Monitor is the in-core monitoring component. A disabled monitor adds
// only a nil check to the statement path, which is the paper's
// "Original" baseline.
type Monitor struct {
	enabled atomic.Bool

	mu sync.Mutex

	stmtCap  int
	stmts    map[uint64]*StatementInfo
	stmtFIFO []uint64 // insertion order for eviction
	stmtHead int      // next eviction position

	workCap  int
	workload []WorkloadEntry // ring
	workPos  int
	workLen  int

	refCap   int
	refs     []Reference // ring
	refPos   int
	refLen   int
	seenRefs map[uint64]bool // statements whose references are recorded

	tableFreq map[string]int64
	attrFreq  map[string]int64
	indexFreq map[string]int64

	// totals are cumulative counters that survive ring wraparound.
	totalStatements atomic.Int64
	totalMonNanos   atomic.Int64

	// fullHandler, when set, is invoked (outside the monitor lock)
	// once when the workload ring crosses ~90% of its capacity, and is
	// re-armed by DrainWorkload. This is the paper's §IV-B extension:
	// writing to the workload DB "only when the main memory buffers
	// are full" instead of on a fixed schedule.
	fullHandler atomic.Value // func()
	fullFired   atomic.Bool
}

// New creates an enabled monitor with the given configuration. Zero
// capacities fall back to the defaults.
func New(cfg Config) *Monitor {
	if cfg.StatementCapacity <= 0 {
		cfg.StatementCapacity = DefaultStatementCapacity
	}
	if cfg.WorkloadCapacity <= 0 {
		cfg.WorkloadCapacity = DefaultWorkloadCapacity
	}
	if cfg.ReferenceCapacity <= 0 {
		cfg.ReferenceCapacity = cfg.StatementCapacity * 8
	}
	m := &Monitor{
		stmtCap:   cfg.StatementCapacity,
		stmts:     make(map[uint64]*StatementInfo, cfg.StatementCapacity),
		workCap:   cfg.WorkloadCapacity,
		workload:  make([]WorkloadEntry, cfg.WorkloadCapacity),
		refCap:    cfg.ReferenceCapacity,
		refs:      make([]Reference, cfg.ReferenceCapacity),
		seenRefs:  map[uint64]bool{},
		tableFreq: map[string]int64{},
		attrFreq:  map[string]int64{},
		indexFreq: map[string]int64{},
	}
	m.enabled.Store(true)
	return m
}

// SetEnabled switches the monitor on or off at runtime.
func (m *Monitor) SetEnabled(v bool) { m.enabled.Store(v) }

// Enabled reports whether sensors are active.
func (m *Monitor) Enabled() bool { return m.enabled.Load() }

// Handle accumulates sensor data for one executing statement. All of
// its methods are nil-safe: a disabled monitor hands out nil handles
// and the statement path pays only for the nil checks.
type Handle struct {
	m     *Monitor
	hash  uint64
	text  string
	kind  string
	start time.Time

	mon int64 // nanoseconds spent in sensors

	tables  []string
	attrs   []string // "table.column"
	indexes []string

	optTime time.Duration
	estCPU  float64
	estIO   float64
	estRows float64
}

// HashStatement returns the FNV-64a hash the monitor keys statements
// by.
func HashStatement(text string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(text))
	return h.Sum64()
}

// StartStatement begins monitoring one statement execution. It is the
// "Wallclock Start" sensor at the query interface.
func (m *Monitor) StartStatement(text string) *Handle {
	if m == nil || !m.enabled.Load() {
		return nil
	}
	t0 := time.Now()
	h := &Handle{m: m, text: text, start: t0}
	h.hash = HashStatement(text)
	h.mon += int64(time.Since(t0))
	return h
}

// Parsed is the parser sensor: statement kind and referenced tables,
// logged "right at the source" while the parser has them in hand. The
// slice is retained by reference and must not be mutated afterwards.
// Its cost is a handful of stores; the self-measurement that feeds
// Figure 5 happens in StartStatement and Finish, which carry the real
// work (hashing and the ring-buffer commit).
func (h *Handle) Parsed(kind string, tables []string) {
	if h == nil {
		return
	}
	h.kind = kind
	h.tables = tables
}

// Optimized is the optimizer sensor: estimated costs, referenced
// attributes and the indexes the plan uses. Both slices are retained
// by reference (the engine passes the cached plan's immutable slices).
func (h *Handle) Optimized(estCPU, estIO, estRows float64, attrs, indexes []string, optTime time.Duration) {
	if h == nil {
		return
	}
	h.estCPU, h.estIO, h.estRows = estCPU, estIO, estRows
	h.attrs = attrs
	h.indexes = indexes
	h.optTime = optTime
}

// Finish is the "Wallclock Stop" sensor: it commits the collected data
// into the ring buffers under one short critical section.
func (h *Handle) Finish(execCPU, execIO, rows int64, execErr error) {
	if h == nil {
		return
	}
	t0 := time.Now()
	m := h.m
	entry := WorkloadEntry{
		Hash:    h.hash,
		Start:   h.start,
		OptTime: h.optTime,
		ExecCPU: execCPU,
		ExecIO:  execIO,
		EstCPU:  h.estCPU,
		EstIO:   h.estIO,
		EstRows: h.estRows,
		Rows:    rows,
		Err:     execErr != nil,
	}

	m.mu.Lock()
	// Statement ring.
	si := m.stmts[h.hash]
	isNew := si == nil
	if isNew {
		si = &StatementInfo{Hash: h.hash, Text: h.text, Kind: h.kind, FirstSeen: h.start}
		if len(m.stmts) >= m.stmtCap {
			m.evictOldestLocked()
		}
		m.stmts[h.hash] = si
		m.stmtFIFO = append(m.stmtFIFO, h.hash)
	}
	si.Frequency++
	si.LastSeen = h.start

	// References: recorded once per statement hash.
	if isNew || !m.seenRefs[h.hash] {
		m.seenRefs[h.hash] = true
		for _, t := range h.tables {
			m.addRefLocked(Reference{Hash: h.hash, Type: ObjTable, Name: t, Table: t})
		}
		for _, a := range h.attrs {
			m.addRefLocked(Reference{Hash: h.hash, Type: ObjAttribute, Name: a, Table: tablePart(a)})
		}
		for _, ix := range h.indexes {
			m.addRefLocked(Reference{Hash: h.hash, Type: ObjIndex, Name: ix})
		}
	}

	// Object frequencies.
	for _, t := range h.tables {
		m.tableFreq[t]++
	}
	for _, a := range h.attrs {
		m.attrFreq[a]++
	}
	for _, ix := range h.indexes {
		m.indexFreq[ix]++
	}

	// Workload ring. Monitor time includes this commit, estimated from
	// the sensors so far plus the elapsed time in Finish.
	entry.MonNanos = h.mon + int64(time.Since(t0))
	entry.Wall = time.Since(h.start)
	m.workload[m.workPos] = entry
	m.workPos = (m.workPos + 1) % m.workCap
	if m.workLen < m.workCap {
		m.workLen++
	}
	nearFull := m.workLen*10 >= m.workCap*9
	m.mu.Unlock()

	m.totalStatements.Add(1)
	m.totalMonNanos.Add(entry.MonNanos)

	if nearFull && m.fullFired.CompareAndSwap(false, true) {
		if fn, ok := m.fullHandler.Load().(func()); ok && fn != nil {
			fn()
		}
	}
}

// SetFullHandler registers fn to be called once whenever the workload
// ring crosses ~90% of its capacity; DrainWorkload re-arms it. The
// storage daemon uses this to flush early instead of losing entries to
// ring wraparound under statement bursts.
func (m *Monitor) SetFullHandler(fn func()) { m.fullHandler.Store(fn) }

func tablePart(attr string) string {
	for i := 0; i < len(attr); i++ {
		if attr[i] == '.' {
			return attr[:i]
		}
	}
	return ""
}

// evictOldestLocked drops the oldest statement and its references.
func (m *Monitor) evictOldestLocked() {
	for m.stmtHead < len(m.stmtFIFO) {
		hash := m.stmtFIFO[m.stmtHead]
		m.stmtHead++
		if _, ok := m.stmts[hash]; ok {
			delete(m.stmts, hash)
			delete(m.seenRefs, hash)
			break
		}
	}
	// Compact the FIFO slice occasionally.
	if m.stmtHead > m.stmtCap {
		m.stmtFIFO = append([]uint64(nil), m.stmtFIFO[m.stmtHead:]...)
		m.stmtHead = 0
	}
}

func (m *Monitor) addRefLocked(r Reference) {
	m.refs[m.refPos] = r
	m.refPos = (m.refPos + 1) % m.refCap
	if m.refLen < m.refCap {
		m.refLen++
	}
}

// Snapshot is a consistent copy of all ring buffers, taken by the IMA
// layer and the storage daemon.
type Snapshot struct {
	Taken      time.Time
	Statements []StatementInfo
	Workload   []WorkloadEntry
	References []Reference
	TableFreq  map[string]int64
	AttrFreq   map[string]int64
	IndexFreq  map[string]int64
}

// Snapshot copies the current monitor state. Workload entries are
// returned oldest first.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Taken:     time.Now(),
		TableFreq: make(map[string]int64, len(m.tableFreq)),
		AttrFreq:  make(map[string]int64, len(m.attrFreq)),
		IndexFreq: make(map[string]int64, len(m.indexFreq)),
	}
	for h := m.stmtHead; h < len(m.stmtFIFO); h++ {
		if si, ok := m.stmts[m.stmtFIFO[h]]; ok {
			s.Statements = append(s.Statements, *si)
		}
	}
	s.Workload = make([]WorkloadEntry, 0, m.workLen)
	start := m.workPos - m.workLen
	if start < 0 {
		start += m.workCap
	}
	for i := 0; i < m.workLen; i++ {
		s.Workload = append(s.Workload, m.workload[(start+i)%m.workCap])
	}
	s.References = make([]Reference, 0, m.refLen)
	rstart := m.refPos - m.refLen
	if rstart < 0 {
		rstart += m.refCap
	}
	for i := 0; i < m.refLen; i++ {
		s.References = append(s.References, m.refs[(rstart+i)%m.refCap])
	}
	for k, v := range m.tableFreq {
		s.TableFreq[k] = v
	}
	for k, v := range m.attrFreq {
		s.AttrFreq[k] = v
	}
	for k, v := range m.indexFreq {
		s.IndexFreq[k] = v
	}
	return s
}

// DrainWorkload returns and clears the workload ring. The daemon uses
// it so that each poll sees every execution exactly once even when the
// poll interval is long.
func (m *Monitor) DrainWorkload() []WorkloadEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkloadEntry, 0, m.workLen)
	start := m.workPos - m.workLen
	if start < 0 {
		start += m.workCap
	}
	for i := 0; i < m.workLen; i++ {
		out = append(out, m.workload[(start+i)%m.workCap])
	}
	m.workLen = 0
	m.workPos = 0
	m.fullFired.Store(false)
	return out
}

// TotalStatements returns the cumulative number of monitored
// executions, unaffected by ring wraparound.
func (m *Monitor) TotalStatements() int64 { return m.totalStatements.Load() }

// TotalMonitorTime returns the cumulative time spent inside sensors.
func (m *Monitor) TotalMonitorTime() time.Duration {
	return time.Duration(m.totalMonNanos.Load())
}

// StatementCount returns the number of distinct statements currently in
// the ring.
func (m *Monitor) StatementCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.stmts)
}
