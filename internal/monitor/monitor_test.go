package monitor

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func record(m *Monitor, text string, tables []string) {
	h := m.StartStatement(text)
	h.Parsed("SELECT", tables)
	h.Optimized(10, 5, 100, []string{"t.a"}, []string{"ix_a"}, time.Microsecond)
	h.Finish(120, 7, 100, nil)
}

func TestBasicRecording(t *testing.T) {
	m := New(Config{})
	record(m, "SELECT a FROM t WHERE a = 1", []string{"t"})
	record(m, "SELECT a FROM t WHERE a = 1", []string{"t"})
	record(m, "SELECT b FROM u", []string{"u"})

	s := m.Snapshot()
	if len(s.Statements) != 2 {
		t.Fatalf("statements = %d", len(s.Statements))
	}
	var freq1 int64
	for _, si := range s.Statements {
		if si.Text == "SELECT a FROM t WHERE a = 1" {
			freq1 = si.Frequency
			if si.Kind != "SELECT" {
				t.Errorf("kind = %q", si.Kind)
			}
		}
	}
	if freq1 != 2 {
		t.Errorf("frequency = %d", freq1)
	}
	if len(s.Workload) != 3 {
		t.Errorf("workload entries = %d", len(s.Workload))
	}
	w := s.Workload[0]
	if w.ExecCPU != 120 || w.ExecIO != 7 || w.EstCPU != 10 || w.EstIO != 5 || w.Rows != 100 {
		t.Errorf("workload entry: %+v", w)
	}
	if w.Wall <= 0 || w.MonNanos <= 0 {
		t.Errorf("timings not recorded: wall=%v mon=%v", w.Wall, w.MonNanos)
	}
	if m.TotalStatements() != 3 {
		t.Errorf("TotalStatements = %d", m.TotalStatements())
	}
	if s.TableFreq["t"] != 2 || s.TableFreq["u"] != 1 {
		t.Errorf("table freq: %v", s.TableFreq)
	}
	if s.AttrFreq["t.a"] != 3 {
		t.Errorf("attr freq: %v", s.AttrFreq)
	}
	if s.IndexFreq["ix_a"] != 3 {
		t.Errorf("index freq: %v", s.IndexFreq)
	}
}

func TestReferencesRecordedOncePerStatement(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 5; i++ {
		record(m, "SELECT a FROM t", []string{"t"})
	}
	s := m.Snapshot()
	var tableRefs int
	for _, r := range s.References {
		if r.Type == ObjTable && r.Name == "t" {
			tableRefs++
		}
	}
	if tableRefs != 1 {
		t.Errorf("table reference rows = %d, want 1", tableRefs)
	}
}

func TestStatementRingEviction(t *testing.T) {
	m := New(Config{StatementCapacity: 10})
	for i := 0; i < 25; i++ {
		record(m, fmt.Sprintf("SELECT %d FROM t", i), []string{"t"})
	}
	if got := m.StatementCount(); got != 10 {
		t.Fatalf("StatementCount = %d, want 10", got)
	}
	s := m.Snapshot()
	if len(s.Statements) != 10 {
		t.Fatalf("snapshot statements = %d", len(s.Statements))
	}
	// The survivors must be the most recent 10.
	for _, si := range s.Statements {
		var n int
		fmt.Sscanf(si.Text, "SELECT %d FROM t", &n)
		if n < 15 {
			t.Errorf("old statement %q survived eviction", si.Text)
		}
	}
	if m.TotalStatements() != 25 {
		t.Errorf("TotalStatements = %d (must survive eviction)", m.TotalStatements())
	}
}

func TestWorkloadRingWraps(t *testing.T) {
	m := New(Config{WorkloadCapacity: 8})
	for i := 0; i < 20; i++ {
		record(m, "SELECT 1 FROM t", []string{"t"})
	}
	s := m.Snapshot()
	if len(s.Workload) != 8 {
		t.Fatalf("workload = %d, want 8", len(s.Workload))
	}
}

func TestDrainWorkload(t *testing.T) {
	m := New(Config{WorkloadCapacity: 100})
	for i := 0; i < 5; i++ {
		record(m, "SELECT 1 FROM t", []string{"t"})
	}
	got := m.DrainWorkload()
	if len(got) != 5 {
		t.Fatalf("drained %d", len(got))
	}
	if len(m.DrainWorkload()) != 0 {
		t.Error("second drain returned data")
	}
	record(m, "SELECT 1 FROM t", []string{"t"})
	if len(m.DrainWorkload()) != 1 {
		t.Error("drain after refill broken")
	}
}

func TestDisabledMonitorIsNoop(t *testing.T) {
	m := New(Config{})
	m.SetEnabled(false)
	h := m.StartStatement("SELECT 1 FROM t")
	// The zero handle (and all methods on it) must be inert.
	h.Parsed("SELECT", []string{"t"})
	h.Optimized(1, 1, 1, nil, nil, 0)
	h.Finish(1, 1, 1, nil)
	if m.TotalStatements() != 0 {
		t.Error("disabled monitor recorded data")
	}

	var nilMon *Monitor
	h2 := nilMon.StartStatement("x")
	h2.Finish(0, 0, 0, nil)
	var nilHandle *Handle
	nilHandle.Parsed("SELECT", nil)
	nilHandle.Finish(0, 0, 0, nil)
}

func TestErrorFlag(t *testing.T) {
	m := New(Config{})
	h := m.StartStatement("SELECT broken")
	h.Parsed("SELECT", nil)
	h.Finish(0, 0, 0, errors.New("boom"))
	s := m.Snapshot()
	if len(s.Workload) != 1 || !s.Workload[0].Err {
		t.Errorf("error flag not recorded: %+v", s.Workload)
	}
}

func TestHashStability(t *testing.T) {
	if HashStatement("abc") != HashStatement("abc") {
		t.Error("hash not deterministic")
	}
	if HashStatement("abc") == HashStatement("abd") {
		t.Error("suspicious hash collision")
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := New(Config{StatementCapacity: 50, WorkloadCapacity: 1000})
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				record(m, fmt.Sprintf("SELECT %d FROM t%d", i%20, g), []string{fmt.Sprintf("t%d", g)})
			}
		}()
	}
	wg.Wait()
	if m.TotalStatements() != goroutines*perG {
		t.Errorf("TotalStatements = %d, want %d", m.TotalStatements(), goroutines*perG)
	}
	s := m.Snapshot()
	var totalFreq int64
	for _, f := range s.TableFreq {
		totalFreq += f
	}
	if totalFreq != goroutines*perG {
		t.Errorf("table frequency sum = %d", totalFreq)
	}
}

func TestMonitorOverheadIsMicrosecondScale(t *testing.T) {
	// Not a benchmark assertion, just a sanity bound: a full sensor
	// cycle must stay well under a millisecond.
	m := New(Config{})
	start := time.Now()
	const n = 1000
	for i := 0; i < n; i++ {
		record(m, "SELECT a FROM t WHERE a = 1", []string{"t"})
	}
	perStmt := time.Since(start) / n
	if perStmt > time.Millisecond {
		t.Errorf("monitor cycle took %v per statement", perStmt)
	}
	if m.TotalMonitorTime() <= 0 {
		t.Error("monitor self-time not accumulated")
	}
}

func TestWorkloadDepthAndDropped(t *testing.T) {
	m := New(Config{WorkloadCapacity: 10, Shards: 2})
	if m.WorkloadDepth() != 0 || m.WorkloadDropped() != 0 {
		t.Fatalf("fresh monitor: depth=%d dropped=%d", m.WorkloadDepth(), m.WorkloadDropped())
	}
	for i := 0; i < 15; i++ {
		record(m, "SELECT 1 FROM t", []string{"t"})
	}
	if got := m.WorkloadDepth(); got != 10 {
		t.Errorf("WorkloadDepth = %d, want 10 (ring capacity)", got)
	}
	// 15 commits into a 10-entry ring: 5 entries were overwritten
	// before any drain could persist them.
	if got := m.WorkloadDropped(); got != 5 {
		t.Errorf("WorkloadDropped = %d, want 5", got)
	}
	if n := len(m.DrainWorkload()); n != 10 {
		t.Fatalf("drained %d, want 10", n)
	}
	if got := m.WorkloadDepth(); got != 0 {
		t.Errorf("WorkloadDepth after drain = %d", got)
	}
	// The dropped counter is cumulative, not reset by draining.
	if got := m.WorkloadDropped(); got != 5 {
		t.Errorf("WorkloadDropped after drain = %d, want 5", got)
	}
}
