package monitor_test

// Concurrency stress suite for the sharded monitor hot path: writers
// hammer the statement/workload rings while readers loop Snapshot and
// DrainWorkload, and every global invariant the sharding must preserve
// is asserted — the capacity bound, lossless cumulative totals, and
// the exactly-once §IV-B flush trigger. Run with -race.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/monitor"
)

func stressScale(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		return full / 10
	}
	return full
}

// TestStressCapacityInvariant churns far more distinct statements than
// the capacity through concurrent writers while a reader continuously
// snapshots, and asserts the distinct-statement bound is never
// exceeded — neither in any snapshot nor in the final state.
func TestStressCapacityInvariant(t *testing.T) {
	const (
		capacity = 64
		writers  = 8
	)
	perWriter := stressScale(t, 5000)
	m := monitor.New(monitor.Config{StatementCapacity: capacity, Shards: 8})

	var wg, readerWG sync.WaitGroup
	stop := make(chan struct{})
	var snapErr atomic.Value
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := len(m.SnapshotStatements()); n > capacity {
				snapErr.Store(fmt.Sprintf("snapshot saw %d statements, capacity %d", n, capacity))
				return
			}
			if n := m.StatementCount(); n > capacity {
				snapErr.Store(fmt.Sprintf("StatementCount saw %d, capacity %d", n, capacity))
				return
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h := m.StartStatement(fmt.Sprintf("SELECT %d FROM t WHERE w = %d", i, w))
				h.Parsed("SELECT", []string{"t"})
				h.Finish(1, 0, 1, nil)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if msg := snapErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	if n := m.StatementCount(); n != capacity {
		t.Fatalf("final statement count = %d, want exactly %d (capacity, after churn)", n, capacity)
	}
	if got, want := m.TotalStatements(), int64(writers*perWriter); got != want {
		t.Fatalf("TotalStatements = %d, want %d", got, want)
	}
}

// TestStressNoLostTotals interleaves writers with a reader that drains
// the workload ring, and asserts nothing is lost: the drained entries
// plus the final drain account for every execution exactly once, and
// the cumulative totals match.
func TestStressNoLostTotals(t *testing.T) {
	const writers = 8
	perWriter := stressScale(t, 5000)
	total := writers * perWriter
	// Capacity ≥ total outstanding writes between drains is not needed
	// for the cumulative counters, but it is for exactly-once drained
	// entries — so make the ring big enough to never wrap.
	m := monitor.New(monitor.Config{
		StatementCapacity: 128,
		WorkloadCapacity:  total,
	})

	var drained atomic.Int64
	var wg, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			drained.Add(int64(len(m.DrainWorkload())))
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h := m.StartStatement(fmt.Sprintf("SELECT %d FROM t", i%97))
				h.Parsed("SELECT", []string{"t"})
				h.Finish(1, 0, 1, nil)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	drained.Add(int64(len(m.DrainWorkload())))

	if got := drained.Load(); got != int64(total) {
		t.Fatalf("drained %d workload entries across polls, want exactly %d", got, total)
	}
	if got := m.TotalStatements(); got != int64(total) {
		t.Fatalf("TotalStatements = %d, want %d (cumulative totals must survive drains)", got, total)
	}
	if m.TotalMonitorTime() <= 0 {
		t.Fatal("TotalMonitorTime not accumulated")
	}
	// Frequencies across the (small) distinct set also sum to the total.
	var freq int64
	for _, si := range m.SnapshotStatements() {
		freq += si.Frequency
	}
	if freq != int64(total) {
		t.Fatalf("sum of statement frequencies = %d, want %d", freq, total)
	}
}

// TestStressFlushTriggerExactlyOnce fills the workload ring past its
// ~90% threshold from many goroutines at once and asserts the §IV-B
// near-full handler fires exactly once per fill/drain cycle, however
// the concurrent commits interleave.
func TestStressFlushTriggerExactlyOnce(t *testing.T) {
	const capacity = 256
	cycles := stressScale(t, 50)
	if cycles < 5 {
		cycles = 5
	}
	m := monitor.New(monitor.Config{
		StatementCapacity: 64,
		WorkloadCapacity:  capacity,
		Shards:            8,
	})
	var fired atomic.Int64
	m.SetFullHandler(func() { fired.Add(1) })

	const writers = 8
	for cycle := 1; cycle <= cycles; cycle++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Together the writers overfill the ring (capacity+64
				// commits), crossing the threshold exactly once.
				for i := 0; i < (capacity+64)/writers; i++ {
					h := m.StartStatement(fmt.Sprintf("SELECT %d FROM t", (w*31+i)%50))
					h.Parsed("SELECT", []string{"t"})
					h.Finish(1, 0, 1, nil)
				}
			}(w)
		}
		wg.Wait()
		if got := fired.Load(); got != int64(cycle) {
			t.Fatalf("cycle %d: flush trigger fired %d times, want exactly %d", cycle, got, cycle)
		}
		m.DrainWorkload() // re-arms the trigger
	}
}

// TestStressSnapshotConsistencyUnderChurn verifies that snapshots taken
// while the statement table churns are internally consistent: no
// duplicate hashes, and never more than the capacity.
func TestStressSnapshotConsistencyUnderChurn(t *testing.T) {
	const capacity = 32
	iters := stressScale(t, 2000)
	m := monitor.New(monitor.Config{StatementCapacity: capacity, Shards: 4})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := m.StartStatement(fmt.Sprintf("SELECT %d FROM t%d", i, w))
				h.Parsed("SELECT", []string{fmt.Sprintf("t%d", w)})
				h.Finish(1, 0, 1, nil)
				i++
			}
		}(w)
	}

	for i := 0; i < iters; i++ {
		stmts := m.SnapshotStatements()
		if len(stmts) > capacity {
			t.Errorf("snapshot %d: %d statements, capacity %d", i, len(stmts), capacity)
			break
		}
		seen := make(map[uint64]bool, len(stmts))
		for _, si := range stmts {
			if seen[si.Hash] {
				t.Errorf("snapshot %d: duplicate hash %d", i, si.Hash)
			}
			seen[si.Hash] = true
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}
