package monitor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// profiledRecord drives one execution through the full phase-2 path the
// engine uses: Profiled → wait accumulation → Finish → FlushWaits.
func profiledRecord(m *Monitor, text string, execNs, lockNs, ioNs, fsyncNs, pinNs int64) bool {
	h := m.StartStatement(text)
	h.Parsed("SELECT", nil)
	ok := h.Profiled()
	h.AddLockWait(time.Duration(lockNs))
	h.AddWaits(execNs, ioNs, fsyncNs, pinNs)
	h.Finish(1, 0, 1, nil)
	h.FlushWaits()
	return ok
}

func TestFlagUnflagLifecycle(t *testing.T) {
	m := New(Config{MaxFlagged: 2})
	if n := m.FlagCount(); n != 0 {
		t.Fatalf("FlagCount = %d at start", n)
	}
	if !m.Flag("q1", FlagReasonManual, true, 0) {
		t.Fatal("Flag(q1) refused")
	}
	if !m.Flag("q2", FlagReasonP95, false, time.Hour) {
		t.Fatal("Flag(q2) refused")
	}
	// Bounded set: a third flag must be refused at MaxFlagged=2.
	if m.Flag("q3", FlagReasonP95, false, time.Hour) {
		t.Fatal("Flag(q3) accepted beyond MaxFlagged")
	}
	if n := m.FlagCount(); n != 2 {
		t.Fatalf("FlagCount = %d, want 2", n)
	}

	fs := m.SnapshotFlags()
	if len(fs) != 2 || fs[0].Text != "q1" || fs[1].Text != "q2" {
		t.Fatalf("SnapshotFlags = %+v", fs)
	}
	if !fs[0].Manual || !fs[0].Expires.IsZero() {
		t.Fatalf("manual flag not pinned: %+v", fs[0])
	}
	if fs[1].Expires.IsZero() {
		t.Fatalf("TTL flag has no expiry: %+v", fs[1])
	}

	// TTL expiry removes q2 but never the manual q1.
	if n := m.ExpireFlags(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("ExpireFlags = %d, want 1", n)
	}
	if !m.Unflag("q1") {
		t.Fatal("Unflag(q1) = false")
	}
	if m.Unflag("q1") {
		t.Fatal("Unflag(q1) twice = true")
	}
	if n := m.FlagCount(); n != 0 {
		t.Fatalf("FlagCount = %d after teardown", n)
	}
}

func TestFlagRefreshAndManualPinning(t *testing.T) {
	m := New(Config{})
	m.Flag("q", FlagReasonTrend, false, time.Minute)
	exp1 := m.SnapshotFlags()[0].Expires
	time.Sleep(time.Millisecond)
	m.Flag("q", FlagReasonTrend, false, time.Minute) // renew
	if exp2 := m.SnapshotFlags()[0].Expires; !exp2.After(exp1) {
		t.Fatalf("TTL not renewed: %v -> %v", exp1, exp2)
	}
	m.Flag("q", FlagReasonManual, true, 0) // promote to manual
	if f := m.SnapshotFlags()[0]; !f.Manual || !f.Expires.IsZero() {
		t.Fatalf("manual promotion failed: %+v", f)
	}
	// A later automatic flag must not demote the manual pin.
	m.Flag("q", FlagReasonTrend, false, time.Minute)
	if f := m.SnapshotFlags()[0]; !f.Manual || !f.Expires.IsZero() {
		t.Fatalf("manual flag demoted: %+v", f)
	}
	if n := m.ExpireFlags(time.Now().Add(24 * time.Hour)); n != 0 {
		t.Fatalf("manual flag expired: %d", n)
	}
}

// TestWaitParity is the satellite parity check at the source: the sums
// over the per-statement breakdowns (what ima_waits renders) must equal
// the monitor-global totals (what the engine_wait_* metrics render),
// because recordWaits advances both in the same call.
func TestWaitParity(t *testing.T) {
	m := New(Config{})
	texts := []string{"q0", "q1", "q2"}
	for _, q := range texts {
		m.Flag(q, FlagReasonManual, true, 0)
	}
	rng := rand.New(rand.NewSource(7))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		seed := rng.Int63()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				q := texts[r.Intn(len(texts))]
				if !profiledRecord(m, q, r.Int63n(1000), r.Int63n(1000),
					r.Int63n(1000), r.Int63n(1000), r.Int63n(1000)) {
					t.Error("flagged statement not profiled")
					return
				}
			}
		}()
	}
	wg.Wait()

	var sum WaitTotals
	var samples int64
	for _, f := range m.SnapshotFlags() {
		samples += f.Samples
		sum.ExecNs += f.Waits.ExecNs
		sum.LockNs += f.Waits.LockNs
		sum.IONs += f.Waits.IONs
		sum.FsyncNs += f.Waits.FsyncNs
		sum.PinWaitNs += f.Waits.PinWaitNs
	}
	if samples != 800 {
		t.Fatalf("samples = %d, want 800", samples)
	}
	if got := m.WaitTotals(); got != sum {
		t.Fatalf("WaitTotals %+v != sum over flags %+v", got, sum)
	}
	if m.Phase2Overhead() <= 0 {
		t.Error("Phase2Overhead not accounted")
	}
}

// TestWaitRecordDroppedAfterUnflag: a breakdown arriving after its flag
// vanished is dropped entirely — the global counters must not drift
// from the per-statement sums.
func TestWaitRecordDroppedAfterUnflag(t *testing.T) {
	m := New(Config{})
	m.Flag("q", FlagReasonManual, true, 0)
	h := m.StartStatement("q")
	h.Parsed("SELECT", nil)
	if !h.Profiled() {
		t.Fatal("not profiled")
	}
	h.AddWaits(100, 100, 100, 100)
	h.Finish(1, 0, 1, nil)
	m.Unflag("q") // races the in-flight execution
	h.FlushWaits()
	if got := m.WaitTotals(); got != (WaitTotals{}) {
		t.Fatalf("WaitTotals advanced after unflag: %+v", got)
	}
}

// TestWaitBreakdownNeverExceedsWall is the satellite property test:
// whatever the engine accumulates, the committed per-statement
// breakdown sum stays within the measured wall latency.
func TestWaitBreakdownNeverExceedsWall(t *testing.T) {
	m := New(Config{MaxFlagged: 64})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		q := fmt.Sprintf("q%d", i)
		m.Flag(q, FlagReasonManual, true, 0)
		// Exaggerated buckets: the engine's measured windows can
		// overshoot the wall by clock-read skew, so feed breakdowns far
		// beyond any plausible wall time and rely on the flush clamp.
		profiledRecord(m, q, rng.Int63n(1e9), rng.Int63n(1e9),
			rng.Int63n(1e9), rng.Int63n(1e9), rng.Int63n(1e9))
	}
	for _, f := range m.SnapshotFlags() {
		if f.Waits.Sum() > f.Waits.WallNs {
			t.Fatalf("breakdown %d ns exceeds wall %d ns: %+v",
				f.Waits.Sum(), f.Waits.WallNs, f)
		}
	}
}

// TestFlaggerP95Threshold drives the policy end to end over real
// recorded latencies with an absolute threshold low enough that every
// statement qualifies.
func TestFlaggerP95Threshold(t *testing.T) {
	m := New(Config{})
	fl := NewFlagger(m, FlaggerConfig{MinSamples: 8, P95Threshold: time.Nanosecond, TTL: time.Minute})
	for i := 0; i < 16; i++ {
		record(m, "SELECT slow FROM t", []string{"t"})
	}
	flagged, _ := fl.Evaluate(time.Now())
	if flagged != 1 {
		t.Fatalf("flagged = %d, want 1", flagged)
	}
	fs := m.SnapshotFlags()
	if len(fs) != 1 || fs[0].Reason != FlagReasonP95 {
		t.Fatalf("flags = %+v", fs)
	}
	// Second interval with no further executions: nothing new to judge,
	// the existing flag stays until its TTL.
	flagged, expired := fl.Evaluate(time.Now())
	if flagged != 0 || expired != 0 {
		t.Fatalf("idle evaluate: flagged=%d expired=%d", flagged, expired)
	}
	// And once the TTL passes, evaluation expires it.
	if _, expired = fl.Evaluate(time.Now().Add(2 * time.Minute)); expired != 1 {
		t.Fatalf("expired = %d, want 1", expired)
	}
}

// TestFlaggerTrend: a statement running at a steady baseline is left
// alone; when its interval p95 blows past TrendFactor × baseline it is
// flagged with the trend reason. Latency histograms are injected
// directly through the record path by busy-waiting a controlled time.
func TestFlaggerTrend(t *testing.T) {
	m := New(Config{})
	fl := NewFlagger(m, FlaggerConfig{MinSamples: 4, TrendFactor: 3, TTL: time.Minute})

	slowRecord := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			h := m.StartStatement("SELECT x FROM t")
			h.Parsed("SELECT", nil)
			deadline := time.Now().Add(d)
			for time.Now().Before(deadline) {
			}
			h.Finish(1, 0, 1, nil)
		}
	}

	slowRecord(50*time.Microsecond, 8) // establish the baseline
	if flagged, _ := fl.Evaluate(time.Now()); flagged != 0 {
		t.Fatal("baseline interval flagged")
	}
	slowRecord(50*time.Microsecond, 8) // steady: still unflagged
	if flagged, _ := fl.Evaluate(time.Now()); flagged != 0 {
		t.Fatal("steady interval flagged")
	}
	slowRecord(5*time.Millisecond, 8) // 100× regression
	if flagged, _ := fl.Evaluate(time.Now()); flagged != 1 {
		t.Fatal("regressed interval not flagged")
	}
	if fs := m.SnapshotFlags(); len(fs) != 1 || fs[0].Reason != FlagReasonTrend {
		t.Fatalf("flags = %+v", fs)
	}
}

// TestFlagChurnRace hammers flag/unflag/expiry from several goroutines
// while sessions record profiled statements — the -race churn stress of
// the satellite list. Invariants: FlagCount never exceeds the cap and
// always matches the snapshot length at quiesce.
func TestFlagChurnRace(t *testing.T) {
	m := New(Config{MaxFlagged: 8})
	const texts = 16
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ { // recorders
		seed := int64(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				profiledRecord(m, fmt.Sprintf("q%d", r.Intn(texts)),
					10, 10, 10, 10, 10)
			}
		}()
	}
	for g := 0; g < 2; g++ { // flag churners
		seed := int64(100 + g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf("q%d", r.Intn(texts))
				switch r.Intn(3) {
				case 0:
					m.Flag(q, FlagReasonP95, false, time.Millisecond)
				case 1:
					m.Unflag(q)
				case 2:
					m.ExpireFlags(time.Now())
				}
				if n := m.FlagCount(); n > 8 {
					t.Errorf("FlagCount %d exceeds cap", n)
					return
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n, l := m.FlagCount(), len(m.SnapshotFlags()); n != int64(l) {
		t.Fatalf("FlagCount %d != snapshot length %d", n, l)
	}
}
