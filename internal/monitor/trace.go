package monitor

import (
	"sync"
	"time"
)

// The trace ring is the monitor's deep-inspection tier: where the
// workload ring records one row per execution, a trace records one row
// per plan operator — rows produced, Next() calls and inclusive time —
// for executions the user explicitly asked to trace (EXPLAIN ANALYZE).
// Traces are bounded by a small ring so an unattended tracing session
// cannot grow memory; ima_spans exposes the ring over SQL.

// DefaultTraceCapacity is the number of traces kept before the ring
// wraps. Traces are opt-in and operator counts are small, so a short
// ring suffices for "what did my last few EXPLAIN ANALYZEs do".
const DefaultTraceCapacity = 128

// TraceSpan is the record of one plan operator within a trace, in
// pre-order (parents before children, as Plan.String renders).
type TraceSpan struct {
	Op      string  // operator kind (SeqScan, HashJoin, ...)
	Detail  string  // operator-specific detail (table, index, ...)
	Depth   int     // depth in the plan tree; root is 0
	EstRows float64 // optimizer cardinality estimate
	Rows      int64 // rows the operator actually produced
	Nanos     int64 // inclusive wall time inside the operator
	SelfNanos int64 // Nanos minus the direct children's inclusive time
	Calls     int64 // Next() invocations
}

// Trace is one fully traced statement execution.
type Trace struct {
	Seq   uint64 // monotonic trace sequence, for stable ordering
	Hash  uint64 // statement hash, joins against ima_statements
	Text  string
	Start time.Time
	Wall  time.Duration
	Rows  int64
	Spans []TraceSpan
}

// traceRing is mutex-guarded: traces are recorded at most once per
// EXPLAIN ANALYZE, never on the regular hot path.
type traceRing struct {
	mu   sync.Mutex
	ring []Trace
	pos  int
	n    int
	seq  uint64
}

func (r *traceRing) init(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	r.ring = make([]Trace, capacity)
}

// RecordTrace appends one trace to the ring, overwriting the oldest
// when full, and returns its sequence number.
func (m *Monitor) RecordTrace(t Trace) uint64 {
	if m == nil || !m.enabled.Load() {
		return 0
	}
	r := &m.traces
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	t.Seq = r.seq
	r.ring[r.pos] = t
	r.pos = (r.pos + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	return t.Seq
}

// SnapshotTraces returns the buffered traces, oldest first. Span slices
// are shared with the ring and must be treated as read-only.
func (m *Monitor) SnapshotTraces() []Trace {
	r := &m.traces
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, r.n)
	start := r.pos - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// TraceCount returns the number of traces currently buffered.
func (m *Monitor) TraceCount() int {
	r := &m.traces
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
