package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analyzer"
	"repro/internal/charts"
	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/nref"
)

// Fig7Row is one configuration of the analyzer experiment.
type Fig7Row struct {
	Name            string
	RuntimeSec      float64
	RuntimePercent  float64 // vs Unoptimised
	DBBytes         int64
	SecondaryIdx    int // secondary indexes beyond primary keys
	AnalysisSeconds float64
}

// Fig7Result compares unoptimized, manually optimized and
// analyzer-optimized configurations on the 50-query workload, plus the
// analyzer detail the paper reports in §V-B (statements flagged for
// statistics, tables flagged for restructuring, indexes recommended).
type Fig7Result struct {
	Rows []Fig7Row

	FlaggedStatements int // est vs actual divergence ("31 statements")
	ModifyRecs        int // B-Tree recommendations ("all six tables")
	IndexRecs         int // recommended secondary indexes ("12")
	ReferenceIdx      int // the manual reference set ("33")

	// Fig6 is the cost diagram of the ten most expensive statements
	// (actual vs estimated vs estimate with virtual indexes), produced
	// by the same analyzer run.
	Fig6 string
	// Report keeps the full analyzer output for inspection.
	Report *analyzer.Report
}

// RunFig7 reproduces Figures 6 and 7: it loads three identical NREF
// databases, tunes one manually (reference indexes + B-Tree + full
// statistics), lets the analyzer tune another from monitored workload
// data, and measures workload runtime and database size for all three.
func RunFig7(cfg Config) (*Fig7Result, error) {
	cfg.fill()
	workload := nref.Complex50(cfg.Scale)[:cfg.ComplexN]
	res := &Fig7Result{ReferenceIdx: len(nref.ReferenceIndexes())}

	// --- Unoptimised -------------------------------------------------
	unopt, err := newInstance(cfg, filepath.Join(cfg.Dir, "fig7_unopt"), "Unoptimised", false, false)
	if err != nil {
		return nil, err
	}
	if _, err := runStatements(unopt.db, workload); err != nil { // warm
		unopt.close()
		return nil, err
	}
	d, err := runStatements(unopt.db, workload)
	if err != nil {
		unopt.close()
		return nil, err
	}
	unopt.db.Checkpoint()
	res.Rows = append(res.Rows, Fig7Row{
		Name: "Unoptimised", RuntimeSec: d.Seconds(), RuntimePercent: 100,
		DBBytes: unopt.db.SizeBytes(), SecondaryIdx: 0,
	})
	unopt.close()

	// --- Manually optimised ------------------------------------------
	manual, err := newInstance(cfg, filepath.Join(cfg.Dir, "fig7_manual"), "Manual", false, false)
	if err != nil {
		return nil, err
	}
	ms := manual.db.NewSession()
	for _, tbl := range nref.Tables {
		if _, err := ms.Exec("MODIFY " + tbl + " TO BTREE"); err != nil {
			ms.Close()
			manual.close()
			return nil, err
		}
		if _, err := ms.Exec("CREATE STATISTICS FOR " + tbl); err != nil {
			ms.Close()
			manual.close()
			return nil, err
		}
	}
	for _, ddl := range nref.ReferenceIndexes() {
		if _, err := ms.Exec(ddl); err != nil {
			ms.Close()
			manual.close()
			return nil, err
		}
	}
	ms.Close()
	if _, err := runStatements(manual.db, workload); err != nil { // warm
		manual.close()
		return nil, err
	}
	d, err = runStatements(manual.db, workload)
	if err != nil {
		manual.close()
		return nil, err
	}
	manual.db.Checkpoint()
	res.Rows = append(res.Rows, Fig7Row{
		Name: "Manual", RuntimeSec: d.Seconds(),
		DBBytes: manual.db.SizeBytes(), SecondaryIdx: res.ReferenceIdx,
	})
	manual.close()

	// --- Analyzer-optimised -------------------------------------------
	auto, err := newInstance(cfg, filepath.Join(cfg.Dir, "fig7_auto"), "Analyser", true, false)
	if err != nil {
		return nil, err
	}
	defer auto.close()
	// Record the workload with the monitor on.
	if _, err := runStatements(auto.db, workload); err != nil {
		return nil, err
	}
	wdb, err := engine.Open(engine.Config{Dir: filepath.Join(cfg.Dir, "fig7_auto", "wdb"), PoolPages: 512})
	if err != nil {
		return nil, err
	}
	defer wdb.Close()
	dm, err := daemon.New(daemon.Config{Source: auto.db, Mon: auto.mon, Target: wdb})
	if err != nil {
		return nil, err
	}
	if err := dm.Poll(); err != nil {
		return nil, err
	}
	an, err := analyzer.New(analyzer.Config{Source: auto.db, WorkloadDB: wdb})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	rep, err := an.Analyze()
	if err != nil {
		return nil, err
	}
	if err := an.Apply(rep); err != nil {
		return nil, err
	}
	analysisTime := time.Since(t0)
	res.Report = rep
	res.Fig6 = rep.CostDiagram
	res.FlaggedStatements = rep.DivergentCount
	for _, r := range rep.Recommendations {
		switch r.Kind {
		case analyzer.KindModify:
			res.ModifyRecs++
		case analyzer.KindIndex:
			res.IndexRecs++
		}
	}
	// Measure without the monitoring overhead, as the paper does.
	auto.mon.SetEnabled(false)
	if _, err := runStatements(auto.db, workload); err != nil { // warm
		return nil, err
	}
	d, err = runStatements(auto.db, workload)
	if err != nil {
		return nil, err
	}
	auto.db.Checkpoint()
	res.Rows = append(res.Rows, Fig7Row{
		Name: "Analyser", RuntimeSec: d.Seconds(),
		DBBytes: auto.db.SizeBytes(), SecondaryIdx: res.IndexRecs,
		AnalysisSeconds: analysisTime.Seconds(),
	})

	base := res.Rows[0].RuntimeSec
	for i := range res.Rows {
		res.Rows[i].RuntimePercent = res.Rows[i].RuntimeSec / base * 100
	}
	return res, nil
}

// String renders the comparison table and charts.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 — Analyser Results (50-query workload)\n")
	fmt.Fprintf(&b, "%-14s %12s %10s %14s %10s\n", "setup", "runtime", "relative", "db size", "2nd idx")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %11.3fs %9.1f%% %12.1fMB %10d\n",
			row.Name, row.RuntimeSec, row.RuntimePercent,
			float64(row.DBBytes)/1e6, row.SecondaryIdx)
	}
	fmt.Fprintf(&b, "\nanalysis of the workload took %.1fs\n", r.Rows[len(r.Rows)-1].AnalysisSeconds)
	fmt.Fprintf(&b, "statements flagged for statistics (est vs actual diverge): %d of %d\n",
		r.FlaggedStatements, len(r.Report.Statements))
	fmt.Fprintf(&b, "tables recommended for MODIFY TO BTREE: %d\n", r.ModifyRecs)
	fmt.Fprintf(&b, "secondary indexes recommended: %d (reference set: %d)\n", r.IndexRecs, r.ReferenceIdx)

	var rt, sz []charts.BarGroup
	for _, row := range r.Rows {
		rt = append(rt, charts.BarGroup{Label: row.Name, Values: []float64{row.RuntimePercent}})
		sz = append(sz, charts.BarGroup{Label: row.Name, Values: []float64{float64(row.DBBytes) / 1e6}})
	}
	b.WriteByte('\n')
	b.WriteString(charts.BarChart("workload runtime (% of unoptimised)", []string{"runtime"}, rt, 48))
	b.WriteByte('\n')
	b.WriteString(charts.BarChart("database size (MB)", []string{"size"}, sz, 48))
	b.WriteString("\nFigure 6 — Cost Diagram\n")
	b.WriteString(r.Fig6)
	return b.String()
}
