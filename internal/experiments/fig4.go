package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/charts"
)

// Fig4Result is the System Performance experiment: wall time of the
// three workloads on the three setups, reported relative to Original.
type Fig4Result struct {
	Tests    []string                      // "50", "50k", "1m" (scaled)
	Setups   []string                      // Original, Monitoring, Daemon
	Seconds  map[string]map[string]float64 // setup -> test -> wall seconds
	Relative map[string]map[string]float64 // setup -> test -> vs Original
	// MonitorShare is the fraction of total time spent in monitor
	// sensors during the point-select test (the text's 11% discussion).
	MonitorShare float64
}

// RunFig4 reproduces Figure 4: three Ingres instances (Original,
// Monitoring, Daemon), three workloads each, all runs repeated on the
// same loaded data.
func RunFig4(cfg Config) (*Fig4Result, error) {
	cfg.fill()
	complex50, joins, selects := generate(cfg)
	res := &Fig4Result{
		Tests:    []string{"50", "50k", "1m"},
		Setups:   []string{"Original", "Monitoring", "Daemon"},
		Seconds:  map[string]map[string]float64{},
		Relative: map[string]map[string]float64{},
	}
	type setup struct {
		name                    string
		withMonitor, withDaemon bool
	}
	for _, st := range []setup{
		{"Original", false, false},
		{"Monitoring", true, false},
		{"Daemon", true, true},
	} {
		inst, err := newInstance(cfg, filepath.Join(cfg.Dir, "fig4_"+strings.ToLower(st.name)), st.name, st.withMonitor, st.withDaemon)
		if err != nil {
			return nil, err
		}
		res.Seconds[st.name] = map[string]float64{}

		// Warm up: run a slice of the complex set so caches and plans
		// are comparable across setups, then, as in the paper, repeat
		// each test three times "to minimize local anomalies" — we
		// keep the fastest run.
		if _, err := runStatements(inst.db, complex50[:5]); err != nil {
			inst.close()
			return nil, err
		}
		const repeats = 5
		for ti, stmts := range [][]string{complex50, joins, selects} {
			best := time.Duration(0)
			var monBest time.Duration
			for rep := 0; rep < repeats; rep++ {
				var mon0 time.Duration
				if inst.mon != nil {
					mon0 = inst.mon.TotalMonitorTime()
				}
				d, err := runStatements(inst.db, stmts)
				if err != nil {
					inst.close()
					return nil, err
				}
				if best == 0 || d < best {
					best = d
					if inst.mon != nil {
						monBest = inst.mon.TotalMonitorTime() - mon0
					}
				}
			}
			res.Seconds[st.name][res.Tests[ti]] = best.Seconds()
			if st.name == "Monitoring" && res.Tests[ti] == "1m" && inst.mon != nil {
				res.MonitorShare = float64(monBest) / float64(best)
			}
		}
		inst.close()
	}
	for _, s := range res.Setups {
		res.Relative[s] = map[string]float64{}
		for _, t := range res.Tests {
			res.Relative[s][t] = res.Seconds[s][t] / res.Seconds["Original"][t]
		}
	}
	return res, nil
}

// String renders the figure as the paper does: relative runtimes per
// test and setup.
func (r *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4 — System Performance (relative to Original)\n")
	fmt.Fprintf(&b, "%-12s", "setup")
	for _, t := range r.Tests {
		fmt.Fprintf(&b, "%12s", t)
	}
	b.WriteByte('\n')
	for _, s := range r.Setups {
		fmt.Fprintf(&b, "%-12s", s)
		for _, t := range r.Tests {
			fmt.Fprintf(&b, "%11.1f%%", r.Relative[s][t]*100)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nabsolute seconds:\n")
	for _, s := range r.Setups {
		fmt.Fprintf(&b, "%-12s", s)
		for _, t := range r.Tests {
			fmt.Fprintf(&b, "%11.3fs", r.Seconds[s][t])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nmonitor share of the 1m test (Monitoring setup): %.1f%%\n", r.MonitorShare*100)

	var groups []charts.BarGroup
	for _, t := range r.Tests {
		g := charts.BarGroup{Label: t}
		for _, s := range r.Setups {
			g.Values = append(g.Values, r.Relative[s][t]*100)
		}
		groups = append(groups, g)
	}
	b.WriteByte('\n')
	b.WriteString(charts.BarChart("relative runtime (%)", r.Setups, groups, 48))
	return b.String()
}
