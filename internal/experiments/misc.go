package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/nref"
	"repro/internal/workloaddb"
)

// GrowthResult is the workload-DB capacity experiment from §V-A: the
// paper reports ≈28 MB/hour at 33 logged statements per second, capped
// at ≈4.7 GB by the 7-day retention window.
type GrowthResult struct {
	MeasuredBytesPerRow float64
	PaperModel          workloaddb.GrowthModel
	MeasuredModel       workloaddb.GrowthModel
}

// RunGrowth measures the storage cost per logged statement by pushing
// a known number of workload entries through the daemon and dividing
// the workload-DB size delta, then projects growth at the paper's
// logging rate.
func RunGrowth(cfg Config) (*GrowthResult, error) {
	cfg.fill()
	cfg.Scale = 500 // tiny: only the workload DB matters here
	inst, err := newInstance(cfg, filepath.Join(cfg.Dir, "growth"), "Monitoring", true, false)
	if err != nil {
		return nil, err
	}
	defer inst.close()
	wdb, err := engine.Open(engine.Config{Dir: filepath.Join(cfg.Dir, "growth", "wdb"), PoolPages: 256})
	if err != nil {
		return nil, err
	}
	defer wdb.Close()
	d, err := daemon.New(daemon.Config{Source: inst.db, Mon: inst.mon, Target: wdb})
	if err != nil {
		return nil, err
	}
	if err := d.Poll(); err != nil { // baseline poll: schema + snapshot tables
		return nil, err
	}
	wdb.Checkpoint()
	before := wdb.SizeBytes()

	const n = 2000
	s := inst.db.NewSession()
	for i := 0; i < n; i++ {
		if _, err := s.Exec(nref.PointSelectStatement(i, cfg.Scale)); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.Close()
	if err := d.Poll(); err != nil {
		return nil, err
	}
	wdb.Checkpoint()
	perRow := float64(wdb.SizeBytes()-before) / n

	const paperRate = 33 // statements per second at full resolution
	res := &GrowthResult{
		MeasuredBytesPerRow: perRow,
		PaperModel: workloaddb.GrowthModel{
			StatementsPerSecond: paperRate,
			BytesPerWorkloadRow: 28e6 / 3600 / paperRate,
			Retention:           7 * 24 * time.Hour,
		},
		MeasuredModel: workloaddb.GrowthModel{
			StatementsPerSecond: paperRate,
			BytesPerWorkloadRow: perRow,
			Retention:           7 * 24 * time.Hour,
		},
	}
	return res, nil
}

// String renders paper vs measured growth.
func (r *GrowthResult) String() string {
	var b strings.Builder
	b.WriteString("Workload-DB growth (§V-A)\n")
	fmt.Fprintf(&b, "measured bytes per logged statement: %.0f\n", r.MeasuredBytesPerRow)
	fmt.Fprintf(&b, "%-10s %16s %16s\n", "", "MB per hour", "7-day cap GB")
	fmt.Fprintf(&b, "%-10s %15.1f %16.2f\n", "paper",
		r.PaperModel.BytesPerHour()/1e6, r.PaperModel.CapBytes()/1e9)
	fmt.Fprintf(&b, "%-10s %15.1f %16.2f\n", "measured",
		r.MeasuredModel.BytesPerHour()/1e6, r.MeasuredModel.CapBytes()/1e9)
	return b.String()
}

// SensorCostResult measures the per-statement monitoring cost in
// microseconds, the paper's "one or two microseconds per call, 30–70µs
// per statement" discussion.
type SensorCostResult struct {
	PerStatementUs float64
	Statements     int64
}

// RunSensorCost measures the average sensor time per statement over a
// point-select run.
func RunSensorCost(cfg Config) (*SensorCostResult, error) {
	cfg.fill()
	cfg.Scale = 2000
	inst, err := newInstance(cfg, filepath.Join(cfg.Dir, "sensorcost"), "Monitoring", true, false)
	if err != nil {
		return nil, err
	}
	defer inst.close()
	s := inst.db.NewSession()
	defer s.Close()
	const n = 20000
	mon0 := inst.mon.TotalMonitorTime()
	cnt0 := inst.mon.TotalStatements()
	for i := 0; i < n; i++ {
		if _, err := s.Exec(nref.PointSelectStatement(i, cfg.Scale)); err != nil {
			return nil, err
		}
	}
	monD := inst.mon.TotalMonitorTime() - mon0
	cntD := inst.mon.TotalStatements() - cnt0
	return &SensorCostResult{
		PerStatementUs: float64(monD) / 1e3 / float64(cntD),
		Statements:     cntD,
	}, nil
}

// String renders the sensor cost.
func (r *SensorCostResult) String() string {
	return fmt.Sprintf("Monitor sensor cost: %.2fµs per statement over %d statements (paper: 30–70µs per statement on 2006-era hardware)\n",
		r.PerStatementUs, r.Statements)
}
