package experiments

import (
	"strings"
	"testing"
)

// smallConfig keeps experiment tests fast; the real proportions run in
// the benchmarks and cmd/benchrunner.
func smallConfig(t *testing.T) Config {
	return Config{
		Dir:      t.TempDir(),
		Scale:    1200,
		ComplexN: 10,
		JoinsN:   300,
		SelectsN: 2000,
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFig4(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"Original", "Monitoring", "Daemon", "relative"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Shape: overhead on the complex test is small; the relative cost
	// of monitoring is largest for the point-select test.
	if res.Relative["Monitoring"]["50"] > 1.30 {
		t.Errorf("complex-test monitoring overhead = %.2f, want near 1.0", res.Relative["Monitoring"]["50"])
	}
	if res.Relative["Monitoring"]["1m"] < 1.005 {
		t.Errorf("point-select monitoring overhead = %.3f, expected measurable", res.Relative["Monitoring"]["1m"])
	}
	if res.MonitorShare <= 0 {
		t.Errorf("monitor share not measured: %v", res.MonitorShare)
	}
}

func TestFig5ShareGrowsWithWarmCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFig5(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Complex) != 5 || len(res.Simple) < 4 {
		t.Fatalf("samples: %d complex, %d simple", len(res.Complex), len(res.Simple))
	}
	// Complex statements: monitoring share is negligible.
	for _, s := range res.Complex {
		if s.Share > 0.10 {
			t.Errorf("complex query %d: monitor share %.1f%%, want negligible", s.Position, s.Share*100)
		}
	}
	// Simple statements: the share at position 1000 must exceed the
	// share of the first (cold) statement by a wide margin.
	first := res.Simple[0]
	var late Fig5Sample
	for _, s := range res.Simple {
		if s.Position == 1000 {
			late = s
		}
	}
	if late.Position == 0 {
		t.Fatal("no probe at position 1000")
	}
	if raceEnabled {
		t.Log("race detector active: skipping timing-ratio assertions")
	} else {
		if late.Share <= first.Share {
			t.Errorf("share did not grow: first %.2f%%, at 1000 %.2f%%", first.Share*100, late.Share*100)
		}
		if late.TotalUs >= first.TotalUs {
			t.Errorf("warm statement (%.0fµs) not faster than cold (%.0fµs)", late.TotalUs, first.TotalUs)
		}
	}
	if !strings.Contains(res.String(), "stmt#") {
		t.Error("rendering broken")
	}
}

func TestFig7AnalyzerMatchesManualShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	cfg.ComplexN = 20
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	unopt, manual, auto := res.Rows[0], res.Rows[1], res.Rows[2]
	// Shape: both tuned variants beat unoptimised.
	if manual.RuntimeSec >= unopt.RuntimeSec {
		t.Errorf("manual (%.3fs) not faster than unoptimised (%.3fs)", manual.RuntimeSec, unopt.RuntimeSec)
	}
	if auto.RuntimeSec >= unopt.RuntimeSec {
		t.Errorf("analyser (%.3fs) not faster than unoptimised (%.3fs)", auto.RuntimeSec, unopt.RuntimeSec)
	}
	// Shape: the analyzer's index set is smaller, and so is its DB.
	if auto.SecondaryIdx >= manual.SecondaryIdx {
		t.Errorf("analyser set (%d) not smaller than reference (%d)", auto.SecondaryIdx, manual.SecondaryIdx)
	}
	if auto.DBBytes >= manual.DBBytes {
		t.Errorf("analyser DB (%d) not smaller than manual (%d)", auto.DBBytes, manual.DBBytes)
	}
	if unopt.DBBytes >= manual.DBBytes {
		t.Errorf("manual tuning should grow the DB: %d vs %d", manual.DBBytes, unopt.DBBytes)
	}
	if res.ModifyRecs == 0 {
		t.Error("no MODIFY recommendations")
	}
	if res.IndexRecs == 0 {
		t.Error("no index recommendations")
	}
	if !strings.Contains(res.String(), "Cost Diagram") {
		t.Error("figure 6 chart missing from rendering")
	}
}

func TestFig8ProducesWaits(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig(t)
	cfg.Scale = 600
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 3 {
		t.Errorf("too few statistics samples: %d", res.Samples)
	}
	if res.LockWaits == 0 {
		t.Error("no lock waits under a contending workload")
	}
	if !strings.Contains(res.Diagram, "Locks in use") {
		t.Errorf("diagram:\n%s", res.Diagram)
	}
}

func TestGrowthAndSensorCost(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := RunGrowth(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if g.MeasuredBytesPerRow <= 0 {
		t.Errorf("bytes per row: %v", g.MeasuredBytesPerRow)
	}
	if !strings.Contains(g.String(), "7-day cap") {
		t.Error("growth rendering broken")
	}
	sc, err := RunSensorCost(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if sc.PerStatementUs <= 0 || sc.PerStatementUs > 1000 {
		t.Errorf("sensor cost per statement: %vµs", sc.PerStatementUs)
	}
}
