package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sqltypes"
)

// The bench trajectory: a small fixed set of engine benchmarks run
// in-process (via testing.Benchmark) and emitted as machine-readable
// JSON, so CI can archive one file per commit and performance can be
// compared across the PR sequence instead of eyeballed from logs.

// BenchResult is one benchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchReport is the machine-readable trajectory file: enough host
// context to interpret the numbers, plus one entry per benchmark.
type BenchReport struct {
	GeneratedAt string        `json:"generated_at"`
	GitRev      string        `json:"git_rev"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Results     []BenchResult `json:"results"`
}

// WriteFile writes the report as indented JSON.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the human-readable summary printed next to the file.
func (r *BenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench trajectory @ %s (go %s, GOMAXPROCS=%d)\n",
		r.GitRev, r.GoVersion, r.GOMAXPROCS)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "  %-28s %12.0f ns/op %10.1f ops/s %8d B/op %6d allocs/op\n",
			res.Name, res.NsPerOp, res.OpsPerSec, res.BytesPerOp, res.AllocsPerOp)
	}
	return b.String()
}

// gitRev returns the short commit hash, or "unknown" outside a
// checkout (benchrunner may run from an exported tree).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// benchTrajectoryRows sizes the fixture so the heap spans several
// 64-page morsels and the parallel benchmarks actually fan out.
const benchTrajectoryRows = 20000

// RunBenchTrajectory builds the scan fixture once and measures the
// trajectory benchmarks: the morsel scaling curve (1, 4, 8 workers
// over one session) and point selects under a concurrent updater (the
// MVCC fast path). Results carry the same semantics as `go test
// -bench`: NsPerOp is wall time per executed statement.
func RunBenchTrajectory(cfg Config) (*BenchReport, error) {
	cfg.fill()
	dir := filepath.Join(cfg.Dir, "benchout")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "db"), PoolPages: 4096})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	s := db.NewSession()
	_, err = s.Exec("CREATE TABLE scanrows (id INTEGER PRIMARY KEY, a INTEGER, f FLOAT, grp INTEGER, x INTEGER, y FLOAT)")
	s.Close()
	if err != nil {
		return nil, err
	}
	rows := make([]sqltypes.Row, benchTrajectoryRows)
	for i := range rows {
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i * 7919 % 1000)),
			sqltypes.NewFloat(float64(i%977) * 1.5),
			sqltypes.NewInt(int64(i % 16)),
			sqltypes.NewInt(int64(i % 8191)),
			sqltypes.NewFloat(float64(i) * 0.25),
		}
	}
	if err := db.BulkInsert("scanrows", rows); err != nil {
		return nil, err
	}

	report := &BenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GitRev:      gitRev(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	var benchErr error
	record := func(name string, f func(b *testing.B)) {
		if benchErr != nil {
			return
		}
		res := testing.Benchmark(f)
		if res.N == 0 {
			benchErr = fmt.Errorf("benchmark %s did not run", name)
			return
		}
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		report.Results = append(report.Results, BenchResult{
			Name:        name,
			Iters:       res.N,
			NsPerOp:     ns,
			OpsPerSec:   1e9 / ns,
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}

	const scanAggQ = "SELECT grp, COUNT(*), SUM(f) FROM scanrows WHERE a < 300 GROUP BY grp"
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		record(fmt.Sprintf("ScanAggMorsel%d", workers), func(b *testing.B) {
			bs := db.NewSession()
			defer bs.Close()
			bs.SetParallel(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := bs.Exec(scanAggQ)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 16 {
					b.Fatalf("groups = %d", len(res.Rows))
				}
			}
		})
	}

	record("PointSelectUnderUpdates", func(b *testing.B) {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			w := db.NewSession()
			defer w.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Exec(fmt.Sprintf("UPDATE scanrows SET x = x + 1 WHERE id = %d", i%benchTrajectoryRows)); err != nil {
					return
				}
			}
		}()
		bs := db.NewSession()
		defer bs.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := bs.Exec(fmt.Sprintf("SELECT a, f FROM scanrows WHERE id = %d", i%benchTrajectoryRows))
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
		b.StopTimer()
		close(stop)
		<-done
	})

	if benchErr != nil {
		return nil, benchErr
	}
	return report, nil
}
