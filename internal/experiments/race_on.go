//go:build race

package experiments

// raceEnabled reports whether the race detector is active; timing
// sensitive test assertions relax under its ~10× slowdown.
const raceEnabled = true
