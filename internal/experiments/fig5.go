package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/nref"
)

// Fig5Sample is one probed statement: its position in the sequence,
// total execution time and the share spent in monitoring sensors.
type Fig5Sample struct {
	Position int
	TotalUs  float64
	MonUs    float64
	Share    float64
}

// Fig5Result is the Share of Monitoring experiment.
type Fig5Result struct {
	// Complex samples the first five queries of the 50 test; Simple
	// samples the point-select sequence at exponentially spaced
	// positions (1, 2, 10, 100, 1000, ...), reproducing both panels of
	// Figure 5.
	Complex []Fig5Sample
	Simple  []Fig5Sample
}

// RunFig5 measures the share of monitoring per statement. The first
// statement pays cold caches (catalog, buffer pool, plan compile);
// once everything is warm the fixed monitoring cost dominates very
// simple statements — the paper saw the share grow from a fraction of
// a percent to 90–98%.
func RunFig5(cfg Config) (*Fig5Result, error) {
	cfg.fill()
	inst, err := newInstance(cfg, filepath.Join(cfg.Dir, "fig5"), "Monitoring", true, false)
	if err != nil {
		return nil, err
	}
	defer inst.close()

	res := &Fig5Result{}
	s := inst.db.NewSession()
	defer s.Close()

	probe := func(sql string, pos int) (Fig5Sample, error) {
		mon0 := inst.mon.TotalMonitorTime()
		t0 := time.Now()
		if _, err := s.Exec(sql); err != nil {
			return Fig5Sample{}, err
		}
		total := time.Since(t0)
		monD := inst.mon.TotalMonitorTime() - mon0
		return Fig5Sample{
			Position: pos,
			TotalUs:  float64(total) / 1e3,
			MonUs:    float64(monD) / 1e3,
			Share:    float64(monD) / float64(total),
		}, nil
	}

	// Panel 1: the first five complex queries.
	for i, q := range nref.Complex50(cfg.Scale)[:5] {
		sample, err := probe(q, i+1)
		if err != nil {
			return nil, err
		}
		res.Complex = append(res.Complex, sample)
	}

	// Panel 2: the point-select sequence with probes at 1, 2, 10, 100,
	// 1000, 10000, ... up to the configured count.
	probes := map[int]bool{1: true, 2: true, 10: true, 100: true, 1000: true, 10000: true, 100000: true}
	n := cfg.SelectsN
	for i := 1; i <= n; i++ {
		sql := nref.PointSelectStatement(i-1, cfg.Scale)
		if probes[i] {
			sample, err := probe(sql, i)
			if err != nil {
				return nil, err
			}
			res.Simple = append(res.Simple, sample)
			continue
		}
		if _, err := s.Exec(sql); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// String renders both panels.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — Share of Monitoring in total statement time\n\n")
	b.WriteString("first five queries of the 50 test:\n")
	fmt.Fprintf(&b, "%8s %14s %12s %8s\n", "query", "total µs", "monitor µs", "share")
	for _, s := range r.Complex {
		fmt.Fprintf(&b, "%8d %14.1f %12.2f %7.2f%%\n", s.Position, s.TotalUs, s.MonUs, s.Share*100)
	}
	b.WriteString("\npoint-select sequence (the 1m test):\n")
	fmt.Fprintf(&b, "%8s %14s %12s %8s\n", "stmt#", "total µs", "monitor µs", "share")
	for _, s := range r.Simple {
		fmt.Fprintf(&b, "%8d %14.1f %12.2f %7.2f%%\n", s.Position, s.TotalUs, s.MonUs, s.Share*100)
	}
	return b.String()
}
