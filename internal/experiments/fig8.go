package experiments

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/analyzer"
	"repro/internal/nref"
)

// Fig8Result is the locks diagram experiment.
type Fig8Result struct {
	Diagram   string
	Samples   int
	MaxLocks  int64
	LockWaits int64
	Deadlocks int64
}

// RunFig8 reproduces Figure 8: a concurrent mixed workload (readers on
// joins, writers updating two tables in opposite orders to provoke
// waits and deadlocks) runs while the storage daemon samples the lock
// system; the analyzer then renders the persisted series.
func RunFig8(cfg Config) (*Fig8Result, error) {
	cfg.fill()
	cfg.DaemonPeriod = 20 * time.Millisecond // high-resolution sampling
	inst, err := newInstance(cfg, filepath.Join(cfg.Dir, "fig8"), "Daemon", true, true)
	if err != nil {
		return nil, err
	}
	defer inst.close()

	const (
		readers  = 4
		writers  = 4
		duration = 1200 * time.Millisecond
	)
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		w := w
		go func() {
			defer wg.Done()
			s := inst.db.NewSession()
			defer s.Close()
			i := w
			for time.Now().Before(stop) {
				s.Exec(nref.SimpleJoinStatement(i, cfg.Scale))
				i += 7
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		w := w
		go func() {
			defer wg.Done()
			s := inst.db.NewSession()
			defer s.Close()
			i := 0
			for time.Now().Before(stop) {
				// Transactions update one hot row each in protein and
				// annotation, in alternating orders: their row X locks
				// collide, producing lock waits, write conflicts, and
				// the occasional deadlock (the victim's transaction
				// aborts and retries on the next round).
				var first, second string
				if (i+w)%2 == 0 {
					first, second = "protein", "annotation"
				} else {
					first, second = "annotation", "protein"
				}
				s.Begin()
				upd := func(tbl string) error {
					_, err := s.Exec(fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s",
						tbl, keyCol(tbl), keyCol(tbl), hotRowPred(tbl)))
					return err
				}
				if err := upd(first); err == nil {
					upd(second)
				}
				s.Commit()
				i++
			}
		}()
	}
	wg.Wait()
	// One final poll so the tail of the series is captured.
	if err := inst.daemon.Poll(); err != nil {
		return nil, err
	}

	an, err := analyzer.New(analyzer.Config{Source: inst.db, WorkloadDB: inst.wdb})
	if err != nil {
		return nil, err
	}
	diagram, err := an.LocksDiagram()
	if err != nil {
		return nil, err
	}
	ls := inst.db.LockStats()
	ws := inst.wdb.NewSession()
	defer ws.Close()
	cnt, err := ws.Exec("SELECT COUNT(*), MAX(locks_held) FROM ws_statistics")
	if err != nil {
		return nil, err
	}
	return &Fig8Result{
		Diagram:   diagram,
		Samples:   int(cnt.Rows[0][0].I),
		MaxLocks:  cnt.Rows[0][1].I,
		LockWaits: ls.Waits,
		Deadlocks: ls.Deadlocks,
	}, nil
}

func keyCol(table string) string {
	if table == "protein" {
		return "length"
	}
	return "ordinal"
}

// hotRowPred pins every writer to the same single row per table so
// their row write locks actually collide (a predicate matching no rows
// takes no row locks under MVCC and produces no contention).
func hotRowPred(table string) string {
	if table == "protein" {
		return fmt.Sprintf("nref_id = '%s'", nref.NrefID(0))
	}
	return "annotation_id = 0"
}

// String renders the experiment.
func (r *Fig8Result) String() string {
	return fmt.Sprintf(
		"Figure 8 — Locks Diagram\n%s\nsamples: %d, peak locks held: %d, lock waits: %d, deadlocks: %d\n",
		r.Diagram, r.Samples, r.MaxLocks, r.LockWaits, r.Deadlocks)
}
