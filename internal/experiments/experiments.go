// Package experiments implements the paper's evaluation (§V): one
// driver per figure, each returning structured results plus a rendered
// report. The absolute numbers depend on the host; what must hold is
// the shape the paper reports — who wins, by roughly what factor, and
// where the crossovers are. EXPERIMENTS.md records paper vs. measured.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/nref"
)

// Config scales the experiments. The paper used 100M NREF rows, 50
// complex queries, 50,000 simple joins and 1,000,000 point selects; we
// keep the 50 complex queries and scale the rest proportionally so a
// run finishes in seconds.
type Config struct {
	Dir          string // working directory (databases are created below it)
	Scale        int    // proteins (default 8000)
	ComplexN     int    // complex queries (default 50)
	JoinsN       int    // simple-join statements (default 10000)
	SelectsN     int    // point-select statements (default 50000)
	PoolPages    int    // buffer pool (default 2048)
	DaemonPeriod time.Duration
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 8000
	}
	if c.ComplexN <= 0 {
		c.ComplexN = 50
	}
	if c.JoinsN <= 0 {
		c.JoinsN = 10000
	}
	if c.SelectsN <= 0 {
		c.SelectsN = 50000
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 2048
	}
	if c.DaemonPeriod <= 0 {
		c.DaemonPeriod = 500 * time.Millisecond
	}
}

// instance is one Ingres setup: Original (no monitoring code),
// Monitoring (sensors in core), or Daemon (sensors + storage daemon).
type instance struct {
	name   string
	db     *engine.DB
	mon    *monitor.Monitor
	wdb    *engine.DB
	daemon *daemon.Daemon
	stop   chan struct{}
	done   chan struct{}
}

// newInstance loads a fresh NREF database under dir with the requested
// monitoring setup.
func newInstance(cfg Config, dir, name string, withMonitor, withDaemon bool) (*instance, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	inst := &instance{name: name}
	if withMonitor {
		// The workload ring matches the prototype's data resolution:
		// up to 1000 statements per daemon interval; beyond that the
		// ring wraps and "the daemon always writes the same amount of
		// rows per interval, no matter how high the throughput".
		inst.mon = monitor.New(monitor.Config{WorkloadCapacity: 1000})
	}
	db, err := engine.Open(engine.Config{
		Dir:       filepath.Join(dir, "db"),
		PoolPages: cfg.PoolPages,
		Monitor:   inst.mon,
	})
	if err != nil {
		return nil, err
	}
	inst.db = db
	if withMonitor {
		if err := ima.Register(db, inst.mon); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := nref.NewGenerator(cfg.Scale, 42).Load(db); err != nil {
		db.Close()
		return nil, err
	}
	if withDaemon {
		wdb, err := engine.Open(engine.Config{
			Dir:       filepath.Join(dir, "workloaddb"),
			PoolPages: 512,
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		inst.wdb = wdb
		d, err := daemon.New(daemon.Config{
			Source:   db,
			Mon:      inst.mon,
			Target:   wdb,
			Interval: cfg.DaemonPeriod,
		})
		if err != nil {
			db.Close()
			wdb.Close()
			return nil, err
		}
		inst.daemon = d
		inst.stop = make(chan struct{})
		inst.done = make(chan struct{})
		go func() {
			defer close(inst.done)
			ticker := time.NewTicker(cfg.DaemonPeriod)
			defer ticker.Stop()
			for {
				select {
				case <-inst.stop:
					return
				case <-ticker.C:
					if err := d.Poll(); err != nil {
						return
					}
				}
			}
		}()
	}
	return inst, nil
}

func (i *instance) close() {
	if i.stop != nil {
		close(i.stop)
		<-i.done
	}
	if i.db != nil {
		i.db.Close()
	}
	if i.wdb != nil {
		i.wdb.Close()
	}
}

// runStatements executes the statements on one session and returns the
// elapsed wall time.
func runStatements(db *engine.DB, stmts []string) (time.Duration, error) {
	s := db.NewSession()
	defer s.Close()
	start := time.Now()
	for _, q := range stmts {
		if _, err := s.Exec(q); err != nil {
			return 0, fmt.Errorf("%w (statement: %.80s)", err, q)
		}
	}
	return time.Since(start), nil
}

// generate builds the three workloads of §V-A at the configured scale.
func generate(cfg Config) (complex50, joins, selects []string) {
	complex50 = nref.Complex50(cfg.Scale)[:cfg.ComplexN]
	joins = make([]string, cfg.JoinsN)
	for i := range joins {
		joins[i] = nref.SimpleJoinStatement(i, cfg.Scale)
	}
	selects = make([]string, cfg.SelectsN)
	for i := range selects {
		selects[i] = nref.PointSelectStatement(i, cfg.Scale)
	}
	return
}
