package catalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqltypes"
)

// TestHistogramCDFMonotonic checks with random data that the range
// selectivity up to a growing upper bound is (approximately)
// non-decreasing. The linear interpolation inside buckets can dip by a
// small fraction at bucket boundaries, so a 2% tolerance is allowed —
// what must never happen is a large inversion or an out-of-range
// probability.
func TestHistogramCDFMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const tolerance = 0.02
	for trial := 0; trial < 50; trial++ {
		n := 100 + r.Intn(2000)
		vals := make([]sqltypes.Value, n)
		for i := range vals {
			vals[i] = sqltypes.NewInt(int64(r.Intn(500)))
		}
		h := BuildHistogram("t", "c", vals, 1+r.Intn(30))
		prev := -1.0
		for hi := int64(-10); hi <= 510; hi += 7 {
			sel := h.SelectivityRange(sqltypes.Value{}, false, sqltypes.NewInt(hi), true)
			if sel < prev-tolerance {
				t.Fatalf("trial %d: CDF decreased at %d: %g < %g", trial, hi, sel, prev)
			}
			if sel < 0 || sel > 1+1e-9 {
				t.Fatalf("trial %d: selectivity out of range: %g", trial, sel)
			}
			if sel > prev {
				prev = sel
			}
		}
	}
}

// TestHistogramEqWithinBounds checks that equality selectivity is a
// valid probability and roughly consistent with the true frequency for
// uniform data.
func TestHistogramEqWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		distinct := 1 + r.Intn(100)
		n := distinct * (1 + r.Intn(50))
		vals := make([]sqltypes.Value, n)
		for i := range vals {
			vals[i] = sqltypes.NewInt(int64(i % distinct))
		}
		h := BuildHistogram("t", "c", vals, 10)
		v := sqltypes.NewInt(int64(r.Intn(distinct)))
		sel := h.SelectivityEq(v)
		truth := 1.0 / float64(distinct)
		return sel > 0 && sel <= 1 && sel < truth*5+0.01 && sel > truth/5-0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHistogramTotalsConserved checks row accounting: bucket rows sum
// to the non-null row count.
func TestHistogramTotalsConserved(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(3000)
		vals := make([]sqltypes.Value, n)
		nulls := 0
		for i := range vals {
			if r.Intn(10) == 0 {
				vals[i] = sqltypes.NullValue()
				nulls++
			} else {
				vals[i] = sqltypes.NewInt(r.Int63n(1000))
			}
		}
		h := BuildHistogram("t", "c", vals, 16)
		var sum int64
		for _, b := range h.Buckets {
			sum += b.Rows
		}
		return sum == h.Rows && h.Rows == int64(n-nulls) && h.Nulls == int64(nulls)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
