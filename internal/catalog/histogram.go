package catalog

import (
	"sort"
	"time"

	"repro/internal/sqltypes"
)

// DefaultBuckets is the number of equi-depth buckets a histogram is
// built with.
const DefaultBuckets = 20

// Bucket is one equi-depth histogram cell; Hi is its inclusive upper
// bound. The lower bound is the previous bucket's Hi (exclusive), or
// the histogram Min for the first bucket (inclusive).
type Bucket struct {
	Hi       sqltypes.Value `json:"hi"`
	Rows     int64          `json:"rows"`
	Distinct int64          `json:"distinct"`
}

// Histogram holds equi-depth statistics for one column — what Ingres
// optimizedb collects and the optimizer consumes for selectivity
// estimates.
type Histogram struct {
	Table     string         `json:"table"`
	Column    string         `json:"column"`
	Min       sqltypes.Value `json:"min"`
	Max       sqltypes.Value `json:"max"`
	Rows      int64          `json:"rows"`  // non-null rows
	Nulls     int64          `json:"nulls"` // null rows
	Distinct  int64          `json:"distinct"`
	Buckets   []Bucket       `json:"buckets"`
	Collected time.Time      `json:"collected"`
}

// BuildHistogram computes an equi-depth histogram over the sampled
// column values (nulls included; they are counted separately).
func BuildHistogram(table, column string, values []sqltypes.Value, nbuckets int) *Histogram {
	if nbuckets <= 0 {
		nbuckets = DefaultBuckets
	}
	h := &Histogram{Table: table, Column: column, Collected: time.Now()}
	nonNull := make([]sqltypes.Value, 0, len(values))
	for _, v := range values {
		if v.IsNull() {
			h.Nulls++
			continue
		}
		nonNull = append(nonNull, v)
	}
	h.Rows = int64(len(nonNull))
	if h.Rows == 0 {
		return h
	}
	sort.Slice(nonNull, func(i, j int) bool {
		return sqltypes.Compare(nonNull[i], nonNull[j]) < 0
	})
	h.Min = nonNull[0]
	h.Max = nonNull[len(nonNull)-1]

	depth := (len(nonNull) + nbuckets - 1) / nbuckets
	if depth < 1 {
		depth = 1
	}
	i := 0
	for i < len(nonNull) {
		end := i + depth
		if end > len(nonNull) {
			end = len(nonNull)
		}
		// Extend the bucket so equal values never straddle a boundary.
		for end < len(nonNull) && sqltypes.Equal(nonNull[end], nonNull[end-1]) {
			end++
		}
		b := Bucket{Hi: nonNull[end-1], Rows: int64(end - i)}
		d := int64(1)
		for j := i + 1; j < end; j++ {
			if !sqltypes.Equal(nonNull[j], nonNull[j-1]) {
				d++
			}
		}
		b.Distinct = d
		h.Distinct += d
		h.Buckets = append(h.Buckets, b)
		i = end
	}
	return h
}

// SelectivityEq estimates the fraction of rows equal to v.
func (h *Histogram) SelectivityEq(v sqltypes.Value) float64 {
	total := h.Rows + h.Nulls
	if total == 0 {
		return 0
	}
	if v.IsNull() {
		return float64(h.Nulls) / float64(total)
	}
	if sqltypes.Compare(v, h.Min) < 0 || sqltypes.Compare(v, h.Max) > 0 {
		return 0
	}
	lo := h.Min
	for _, b := range h.Buckets {
		if sqltypes.Compare(v, b.Hi) <= 0 {
			if b.Distinct == 0 {
				return 0
			}
			_ = lo
			return float64(b.Rows) / float64(b.Distinct) / float64(total)
		}
		lo = b.Hi
	}
	return 1 / float64(h.Distinct+1)
}

// SelectivityRange estimates the fraction of rows in [lo, hi]. Either
// bound may be absent (hasLo/hasHi false = unbounded). Bounds are
// treated as inclusive; for our page-level cost estimates the
// difference from open intervals is noise.
func (h *Histogram) SelectivityRange(lo sqltypes.Value, hasLo bool, hi sqltypes.Value, hasHi bool) float64 {
	total := h.Rows + h.Nulls
	if total == 0 || h.Rows == 0 {
		return 0
	}
	if !hasLo && !hasHi {
		return float64(h.Rows) / float64(total)
	}
	covered := 0.0
	prevHi := h.Min
	first := true
	for _, b := range h.Buckets {
		bLo := prevHi
		if !first {
			// lower bound is exclusive of the previous Hi
		}
		frac := bucketOverlap(bLo, b.Hi, lo, hasLo, hi, hasHi, first)
		covered += frac * float64(b.Rows)
		prevHi = b.Hi
		first = false
	}
	return covered / float64(total)
}

// bucketOverlap estimates which fraction of a bucket spanning
// (bLo, bHi] overlaps [lo, hi], interpolating linearly for numeric
// values and falling back to thirds for text.
func bucketOverlap(bLo, bHi sqltypes.Value, lo sqltypes.Value, hasLo bool, hi sqltypes.Value, hasHi bool, firstBucket bool) float64 {
	// Entirely below or above the range?
	if hasLo && sqltypes.Compare(bHi, lo) < 0 {
		return 0
	}
	if hasHi && sqltypes.Compare(bLo, hi) > 0 && !firstBucket {
		return 0
	}
	if hasHi && firstBucket && sqltypes.Compare(bLo, hi) > 0 {
		return 0
	}
	loInside := !hasLo || sqltypes.Compare(lo, bLo) <= 0
	hiInside := !hasHi || sqltypes.Compare(hi, bHi) >= 0
	if loInside && hiInside {
		return 1
	}
	// Partial overlap: interpolate when the bounds are numeric.
	bl, blNum := asNum(bLo)
	bh, bhNum := asNum(bHi)
	if blNum && bhNum && bh > bl {
		start, end := bl, bh
		if hasLo {
			if lv, ok := asNum(lo); ok && lv > start {
				start = lv
			}
		}
		if hasHi {
			if hv, ok := asNum(hi); ok && hv < end {
				end = hv
			}
		}
		if end <= start {
			// A point (or inverted) range inside one bucket: estimate a
			// single distinct value's share of the bucket.
			return 0.05
		}
		return (end - start) / (bh - bl)
	}
	// Non-numeric partial overlap: assume a third of the bucket.
	return 1.0 / 3.0
}

func asNum(v sqltypes.Value) (float64, bool) {
	switch v.T {
	case sqltypes.Int:
		return float64(v.I), true
	case sqltypes.Float:
		return v.F, true
	}
	return 0, false
}

// Age returns how long ago the histogram was collected.
func (h *Histogram) Age() time.Duration { return time.Since(h.Collected) }
