// Package catalog implements the system catalog: descriptions of
// tables, attributes, secondary indexes (real and virtual) and column
// histograms. The catalog is an in-memory structure persisted as JSON
// in the database directory — it plays the role of the Ingres system
// catalogs that the paper's monitor reads "right at the source".
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqltypes"
)

// Structure names a table's storage structure.
type Structure string

// The storage structures of the engine. Heap is the Ingres default;
// BTree keeps rows ordered by a key and never accumulates overflow
// pages.
const (
	Heap  Structure = "HEAP"
	BTree Structure = "BTREE"
)

// Table describes one base table.
type Table struct {
	Name       string          `json:"name"`
	Schema     sqltypes.Schema `json:"schema"`
	Structure  Structure       `json:"structure"`
	PrimaryKey []string        `json:"primary_key,omitempty"`
	// StorageKey is the key the BTREE storage structure clusters on
	// (MODIFY ... TO BTREE ON ...); it defaults to the primary key and,
	// unlike it, does not imply uniqueness.
	StorageKey []string  `json:"storage_key,omitempty"`
	MainPages  uint32    `json:"main_pages"`
	Rows       int64     `json:"rows"`
	Created    time.Time `json:"created"`
}

// Index describes a secondary index. In Ingres, a secondary index is
// itself a table of (key columns, TID); a Virtual index exists only in
// the catalog so the optimizer can cost it without building it — the
// what-if mechanism of [Chaudhuri & Narasayya 1998] the paper reuses.
type Index struct {
	Name    string    `json:"name"`
	Table   string    `json:"table"`
	Columns []string  `json:"columns"`
	Unique  bool      `json:"unique"`
	Virtual bool      `json:"virtual"`
	Created time.Time `json:"created"`
	// Building marks an online index build in progress: the entry
	// reserves the name but the index is invisible to the optimizer and
	// to DML maintenance until the build publishes it. A Building entry
	// found at engine open is a crashed build; recovery drops it and
	// removes its file.
	Building bool `json:"building,omitempty"`
}

// Catalog is the set of tables, indexes and histograms of one database.
// It is safe for concurrent use.
type Catalog struct {
	mu         sync.RWMutex
	path       string // file path; empty for purely in-memory catalogs
	tables     map[string]*Table
	indexes    map[string]*Index
	histograms map[string]*Histogram // key: table + "." + column (lower)
	txn        TxnStatus
}

// TxnStatus is the persisted MVCC transaction state, written at
// checkpoint. NextTxnID is a lower bound on the id allocator after
// restart (recovery also scans WAL owners for a higher floor). Aborted
// lists transaction ids whose versions are invisible but may still be
// referenced by on-disk records; vacuum retires them. Inflight lists
// ids that were open at checkpoint time — recovery treats any of them
// without a durable WAL commit record as aborted.
type TxnStatus struct {
	NextTxnID uint64   `json:"next_txn_id,omitempty"`
	Aborted   []uint64 `json:"aborted,omitempty"`
	Inflight  []uint64 `json:"inflight,omitempty"`
}

type catalogFile struct {
	Tables     []*Table     `json:"tables"`
	Indexes    []*Index     `json:"indexes"`
	Histograms []*Histogram `json:"histograms"`
	Txn        TxnStatus    `json:"txn,omitempty"`
}

// New creates an empty in-memory catalog.
func New() *Catalog {
	return &Catalog{
		tables:     map[string]*Table{},
		indexes:    map[string]*Index{},
		histograms: map[string]*Histogram{},
	}
}

// Load opens the catalog stored in dir (creating an empty one if the
// file does not exist) and ties the catalog to that file for Save.
func Load(dir string) (*Catalog, error) {
	c := New()
	c.path = filepath.Join(dir, "catalog.json")
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	var cf catalogFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("catalog: corrupt %s: %w", c.path, err)
	}
	for _, t := range cf.Tables {
		c.tables[lower(t.Name)] = t
	}
	for _, ix := range cf.Indexes {
		c.indexes[lower(ix.Name)] = ix
	}
	for _, h := range cf.Histograms {
		c.histograms[histKey(h.Table, h.Column)] = h
	}
	c.txn = cf.Txn
	return c, nil
}

// TxnStatus returns the persisted MVCC transaction state.
func (c *Catalog) TxnStatus() TxnStatus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.txn
}

// SetTxnStatus replaces the persisted MVCC transaction state. The
// caller follows with Save (typically at checkpoint).
func (c *Catalog) SetTxnStatus(ts TxnStatus) {
	c.mu.Lock()
	c.txn = ts
	c.mu.Unlock()
}

// SyncTableStats updates the physical counters of a table entry under
// the catalog lock. Commit paths call this concurrently with
// checkpoint's Save, which marshals the same Table structs — the lock
// is what keeps the JSON encoder from reading the fields mid-write.
func (c *Catalog) SyncTableStats(name string, rows int64, mainPages uint32) {
	c.mu.Lock()
	if t := c.tables[lower(name)]; t != nil {
		t.Rows = rows
		t.MainPages = mainPages
	}
	c.mu.Unlock()
}

// Save writes the catalog to its backing file, if any.
func (c *Catalog) Save() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.saveLocked()
}

func (c *Catalog) saveLocked() error {
	if c.path == "" {
		return nil
	}
	var cf catalogFile
	cf.Txn = c.txn
	for _, t := range c.tables {
		cf.Tables = append(cf.Tables, t)
	}
	for _, ix := range c.indexes {
		cf.Indexes = append(cf.Indexes, ix)
	}
	for _, h := range c.histograms {
		cf.Histograms = append(cf.Histograms, h)
	}
	sort.Slice(cf.Tables, func(i, j int) bool { return cf.Tables[i].Name < cf.Tables[j].Name })
	sort.Slice(cf.Indexes, func(i, j int) bool { return cf.Indexes[i].Name < cf.Indexes[j].Name })
	sort.Slice(cf.Histograms, func(i, j int) bool {
		if cf.Histograms[i].Table != cf.Histograms[j].Table {
			return cf.Histograms[i].Table < cf.Histograms[j].Table
		}
		return cf.Histograms[i].Column < cf.Histograms[j].Column
	})
	data, err := json.MarshalIndent(&cf, "", " ")
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	// The temp file must be durable BEFORE the rename publishes it: a
	// crash after an unsynced rename can leave the catalog pointing at
	// empty or partial content — rename orders nothing by itself.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	fsyncs.Add(1)
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return err
	}
	// And the directory entry for the rename itself.
	if d, err := os.Open(filepath.Dir(c.path)); err == nil {
		serr := d.Sync()
		d.Close()
		if serr == nil {
			fsyncs.Add(1)
		}
	}
	return nil
}

// fsyncs counts catalog fsyncs (temp-file and directory syncs) for
// durability regression tests.
var fsyncs atomic.Int64

// Fsyncs returns the process-wide count of fsyncs the catalog issued
// while saving.
func Fsyncs() int64 { return fsyncs.Load() }

func lower(s string) string { return strings.ToLower(s) }

func histKey(table, col string) string { return lower(table) + "." + lower(col) }

// AddTable registers a new table.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := lower(t.Name)
	if _, exists := c.tables[key]; exists {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	if t.Created.IsZero() {
		t.Created = time.Now()
	}
	c.tables[key] = t
	return c.saveLocked()
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[lower(name)]
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropTable removes a table, its indexes and its histograms.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := lower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, key)
	for ixName, ix := range c.indexes {
		if lower(ix.Table) == key {
			delete(c.indexes, ixName)
		}
	}
	for hk, h := range c.histograms {
		if lower(h.Table) == key {
			delete(c.histograms, hk)
		}
	}
	return c.saveLocked()
}

// UpdateTable applies fn to the named table under the catalog lock and
// persists the result.
func (c *Catalog) UpdateTable(name string, fn func(*Table)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[lower(name)]
	if !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	fn(t)
	return c.saveLocked()
}

// AddIndex registers a secondary index (real or virtual).
func (c *Catalog) AddIndex(ix *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := lower(ix.Name)
	if _, exists := c.indexes[key]; exists {
		return fmt.Errorf("catalog: index %s already exists", ix.Name)
	}
	if _, exists := c.tables[lower(ix.Table)]; !exists {
		return fmt.Errorf("catalog: index %s references unknown table %s", ix.Name, ix.Table)
	}
	t := c.tables[lower(ix.Table)]
	for _, col := range ix.Columns {
		if t.Schema.ColIndex(col) < 0 {
			return fmt.Errorf("catalog: index %s references unknown column %s.%s", ix.Name, ix.Table, col)
		}
	}
	if ix.Created.IsZero() {
		ix.Created = time.Now()
	}
	c.indexes[key] = ix
	return c.saveLocked()
}

// Index returns the named index, or nil.
func (c *Catalog) Index(name string) *Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.indexes[lower(name)]
}

// DropIndex removes an index.
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[lower(name)]; !ok {
		return fmt.Errorf("catalog: index %s does not exist", name)
	}
	delete(c.indexes, lower(name))
	return c.saveLocked()
}

// FinishIndexBuild clears the Building flag on an online-built index,
// publishing it to the optimizer and to DML maintenance, and persists
// the catalog. The caller must have made the index file durable first.
func (c *Catalog) FinishIndexBuild(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, ok := c.indexes[lower(name)]
	if !ok {
		return fmt.Errorf("catalog: index %s does not exist", name)
	}
	if !ix.Building {
		return fmt.Errorf("catalog: index %s is not being built", name)
	}
	ix.Building = false
	return c.saveLocked()
}

// TableIndexes returns the indexes on a table, sorted by name. Virtual
// indexes are included only when withVirtual is set — the executor asks
// without, the what-if optimizer with.
func (c *Catalog) TableIndexes(table string, withVirtual bool) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.indexes {
		if ix.Building {
			continue // half-built: invisible until the build publishes it
		}
		if lower(ix.Table) == lower(table) && (withVirtual || !ix.Virtual) {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Indexes returns every index, sorted by name.
func (c *Catalog) Indexes() []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetHistogram stores a histogram for table.column.
func (c *Catalog) SetHistogram(h *Histogram) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.histograms[histKey(h.Table, h.Column)] = h
	return c.saveLocked()
}

// Histogram returns the histogram for table.column, or nil if the
// column has no statistics — the condition the analyzer's "create
// statistics" rule looks for.
func (c *Catalog) Histogram(table, col string) *Histogram {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.histograms[histKey(table, col)]
}

// Histograms returns every histogram.
func (c *Catalog) Histograms() []*Histogram {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Histogram, 0, len(c.histograms))
	for _, h := range c.histograms {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}
