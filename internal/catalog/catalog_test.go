package catalog

import (
	"os"
	"testing"

	"repro/internal/sqltypes"
)

func sampleTable(name string) *Table {
	return &Table{
		Name: name,
		Schema: sqltypes.NewSchema(
			sqltypes.Column{Name: "id", Type: sqltypes.Int},
			sqltypes.Column{Name: "name", Type: sqltypes.Text},
		),
		Structure:  Heap,
		PrimaryKey: []string{"id"},
		MainPages:  1,
	}
}

func TestCatalogTableLifecycle(t *testing.T) {
	c := New()
	if err := c.AddTable(sampleTable("t1")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(sampleTable("T1")); err == nil {
		t.Fatal("duplicate table (case-insensitive) accepted")
	}
	if c.Table("T1") == nil {
		t.Fatal("case-insensitive lookup failed")
	}
	if err := c.UpdateTable("t1", func(tb *Table) { tb.Rows = 42 }); err != nil {
		t.Fatal(err)
	}
	if c.Table("t1").Rows != 42 {
		t.Error("UpdateTable did not persist in memory")
	}
	if err := c.DropTable("t1"); err != nil {
		t.Fatal(err)
	}
	if c.Table("t1") != nil {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("t1"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestCatalogIndexes(t *testing.T) {
	c := New()
	c.AddTable(sampleTable("t1"))
	if err := c.AddIndex(&Index{Name: "ix1", Table: "t1", Columns: []string{"name"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "ix1", Table: "t1", Columns: []string{"id"}}); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := c.AddIndex(&Index{Name: "ix2", Table: "missing", Columns: []string{"id"}}); err == nil {
		t.Error("index on missing table accepted")
	}
	if err := c.AddIndex(&Index{Name: "ix3", Table: "t1", Columns: []string{"bogus"}}); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := c.AddIndex(&Index{Name: "vx1", Table: "t1", Columns: []string{"id"}, Virtual: true}); err != nil {
		t.Fatal(err)
	}
	real := c.TableIndexes("t1", false)
	all := c.TableIndexes("t1", true)
	if len(real) != 1 || len(all) != 2 {
		t.Errorf("TableIndexes: real=%d all=%d", len(real), len(all))
	}
	// Dropping the table removes its indexes.
	c.DropTable("t1")
	if c.Index("ix1") != nil || c.Index("vx1") != nil {
		t.Error("indexes survived table drop")
	}
}

func TestCatalogPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.AddTable(sampleTable("protein"))
	c.AddIndex(&Index{Name: "ix_name", Table: "protein", Columns: []string{"name"}})
	vals := []sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewInt(3)}
	c.SetHistogram(BuildHistogram("protein", "id", vals, 4))

	c2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Table("protein") == nil {
		t.Fatal("table not persisted")
	}
	if c2.Table("protein").Schema.ColIndex("name") != 1 {
		t.Error("schema not persisted")
	}
	if c2.Index("ix_name") == nil {
		t.Error("index not persisted")
	}
	h := c2.Histogram("protein", "id")
	if h == nil || h.Rows != 3 {
		t.Errorf("histogram not persisted: %+v", h)
	}
	if got := c2.Histogram("protein", "missing"); got != nil {
		t.Error("phantom histogram")
	}
}

func TestLoadCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	c, _ := Load(dir)
	c.AddTable(sampleTable("x")) // force a file
	// Corrupt it.
	if err := writeFile(c.path, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupt catalog loaded without error")
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	var vals []sqltypes.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, sqltypes.NewInt(int64(i)))
	}
	h := BuildHistogram("t", "c", vals, 10)
	if len(h.Buckets) != 10 {
		t.Fatalf("buckets = %d", len(h.Buckets))
	}
	if h.Rows != 1000 || h.Distinct != 1000 {
		t.Fatalf("rows=%d distinct=%d", h.Rows, h.Distinct)
	}
	for _, b := range h.Buckets {
		if b.Rows != 100 {
			t.Errorf("bucket depth %d, want 100", b.Rows)
		}
	}
	if h.Min.I != 0 || h.Max.I != 999 {
		t.Errorf("min/max: %v/%v", h.Min, h.Max)
	}
}

func TestHistogramSelectivityEq(t *testing.T) {
	var vals []sqltypes.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, sqltypes.NewInt(int64(i%100))) // 100 distinct, 10 each
	}
	h := BuildHistogram("t", "c", vals, 10)
	sel := h.SelectivityEq(sqltypes.NewInt(42))
	if sel < 0.005 || sel > 0.02 { // true selectivity 0.01
		t.Errorf("SelectivityEq = %g, want ≈0.01", sel)
	}
	if h.SelectivityEq(sqltypes.NewInt(5000)) != 0 {
		t.Error("out-of-range value should have zero selectivity")
	}
	if h.SelectivityEq(sqltypes.NewInt(-1)) != 0 {
		t.Error("below-min value should have zero selectivity")
	}
}

func TestHistogramSelectivityRange(t *testing.T) {
	var vals []sqltypes.Value
	for i := 0; i < 10000; i++ {
		vals = append(vals, sqltypes.NewInt(int64(i)))
	}
	h := BuildHistogram("t", "c", vals, 20)

	cases := []struct {
		lo, hi       int64
		hasLo, hasHi bool
		want         float64
	}{
		{0, 9999, true, true, 1.0},
		{0, 4999, true, true, 0.5},
		{2500, 7499, true, true, 0.5},
		{0, 99, true, true, 0.01},
		{9000, 0, true, false, 0.1},
		{0, 999, false, true, 0.1},
	}
	for _, c := range cases {
		got := h.SelectivityRange(sqltypes.NewInt(c.lo), c.hasLo, sqltypes.NewInt(c.hi), c.hasHi)
		if got < c.want*0.7-0.01 || got > c.want*1.3+0.01 {
			t.Errorf("SelectivityRange(%d..%d) = %g, want ≈%g", c.lo, c.hi, got, c.want)
		}
	}
}

func TestHistogramNulls(t *testing.T) {
	vals := []sqltypes.Value{
		sqltypes.NullValue(), sqltypes.NullValue(),
		sqltypes.NewInt(1), sqltypes.NewInt(2),
	}
	h := BuildHistogram("t", "c", vals, 4)
	if h.Nulls != 2 || h.Rows != 2 {
		t.Fatalf("nulls=%d rows=%d", h.Nulls, h.Rows)
	}
	if sel := h.SelectivityEq(sqltypes.NullValue()); sel != 0.5 {
		t.Errorf("null selectivity = %g", sel)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := BuildHistogram("t", "c", nil, 4)
	if h.SelectivityEq(sqltypes.NewInt(1)) != 0 {
		t.Error("empty histogram should estimate 0")
	}
	if h.SelectivityRange(sqltypes.NewInt(0), true, sqltypes.NewInt(9), true) != 0 {
		t.Error("empty histogram range should estimate 0")
	}
}

func TestHistogramSkewKeepsDuplicatesTogether(t *testing.T) {
	var vals []sqltypes.Value
	for i := 0; i < 900; i++ {
		vals = append(vals, sqltypes.NewInt(7)) // heavy hitter
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, sqltypes.NewInt(int64(100+i)))
	}
	h := BuildHistogram("t", "c", vals, 10)
	sel := h.SelectivityEq(sqltypes.NewInt(7))
	if sel < 0.5 {
		t.Errorf("heavy hitter selectivity = %g, want ≥0.5", sel)
	}
	// Equal values must never straddle buckets, so no bucket other than
	// the one ending at 7 may contain value 7.
	seen := 0
	for _, b := range h.Buckets {
		if sqltypes.Equal(b.Hi, sqltypes.NewInt(7)) {
			seen++
			if b.Rows < 900 {
				t.Errorf("heavy-hitter bucket has only %d rows", b.Rows)
			}
		}
	}
	if seen != 1 {
		t.Errorf("value 7 ends %d buckets, want 1", seen)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestSaveFsyncsBeforeRename is the durability regression test for
// Save: the temp file must be fsynced BEFORE the rename publishes it
// and the directory entry after — a rename without either can leave a
// zero-length catalog after a crash. The fsync counter observes both.
func TestSaveFsyncsBeforeRename(t *testing.T) {
	dir := t.TempDir()
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	n0 := Fsyncs()
	if err := c.AddTable(sampleTable("t1")); err != nil { // AddTable saves
		t.Fatal(err)
	}
	if got := Fsyncs() - n0; got < 2 {
		t.Fatalf("Save issued %d fsyncs, want >= 2 (temp file + directory)", got)
	}
	// No stale temp file left behind, and the published file reloads.
	if _, err := os.Stat(c.path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file still present after Save: %v", err)
	}
	c2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Table("t1") == nil {
		t.Error("saved catalog does not reload")
	}
}
