package analyzer

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/nref"
)

// fixture loads a small NREF database, runs a workload through the
// monitored engine and persists it with one daemon poll.
type fixture struct {
	source *engine.DB
	wdb    *engine.DB
	an     *Analyzer
}

func newFixture(t *testing.T, scale int) *fixture {
	t.Helper()
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{})
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 512, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := ima.Register(source, mon); err != nil {
		t.Fatal(err)
	}
	if err := nref.NewGenerator(scale, 1).Load(source); err != nil {
		t.Fatal(err)
	}
	wdb, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { source.Close(); wdb.Close() })

	// Run a workload: repeated selective queries that would benefit
	// from indexes, plus the complex mix.
	s := source.NewSession()
	defer s.Close()
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf("SELECT name FROM protein WHERE taxonomy_id = %d", i%7))
		mustExec(t, s, fmt.Sprintf("SELECT organism_name FROM organism WHERE nref_id = '%s'", nref.NrefID(i)))
	}
	for _, q := range nref.Complex50(scale)[:10] {
		mustExec(t, s, q)
	}

	d, err := daemon.New(daemon.Config{Source: source, Mon: mon, Target: wdb})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}

	an, err := New(Config{Source: source, WorkloadDB: wdb})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{source: source, wdb: wdb, an: an}
}

func mustExec(t *testing.T, s *engine.Session, sql string) *engine.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestAnalyzeProducesAllRuleKinds(t *testing.T) {
	f := newFixture(t, 1500)
	rep, err := f.an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, r := range rep.Recommendations {
		kinds[r.Kind]++
	}
	if kinds[KindStatistics] == 0 {
		t.Error("no statistics recommendations (histograms are missing, estimates diverge)")
	}
	if kinds[KindModify] == 0 {
		t.Error("no MODIFY TO BTREE recommendations despite heap overflow pages")
	}
	if kinds[KindIndex] == 0 {
		t.Error("no index recommendations for a selective repeated workload")
	}
	if rep.DivergentCount == 0 {
		t.Error("no divergent statements flagged (defaults without histograms should misestimate)")
	}
	if len(rep.Statements) == 0 {
		t.Fatal("no statements analyzed")
	}
	if !strings.Contains(rep.CostDiagram, "Q1") {
		t.Errorf("cost diagram missing:\n%s", rep.CostDiagram)
	}
	if rep.WhatIfEstCost >= rep.BaselineEstCost {
		t.Errorf("what-if cost %.1f not below baseline %.1f",
			rep.WhatIfEstCost, rep.BaselineEstCost)
	}
	// No stray virtual indexes may survive the analysis.
	for _, ix := range f.source.Catalog().Indexes() {
		if ix.Virtual {
			t.Errorf("leftover virtual index %s", ix.Name)
		}
	}
}

func TestRecommendedIndexesAreUsedByOptimizer(t *testing.T) {
	f := newFixture(t, 1500)
	rep, err := f.an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var idxRecs []Recommendation
	for _, r := range rep.Recommendations {
		if r.Kind == KindIndex {
			idxRecs = append(idxRecs, r)
		}
	}
	if len(idxRecs) == 0 {
		t.Skip("no index recommendations to verify")
	}
	if err := f.an.Apply(rep, KindIndex); err != nil {
		t.Fatal(err)
	}
	// At least one recommended index must show up in a real plan.
	s := f.source.NewSession()
	defer s.Close()
	res := mustExec(t, s, "SELECT name FROM protein WHERE taxonomy_id = 3")
	if res.Plan == nil {
		t.Fatal("no plan")
	}
	used := strings.Join(res.Plan.UsedIndexes, ",")
	if !strings.Contains(used, "ix_protein") {
		t.Errorf("recommended index not used; plan uses %q:\n%s", used, res.Plan.String())
	}
}

func TestApplyAllImprovesWorkload(t *testing.T) {
	f := newFixture(t, 1500)
	rep, err := f.an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	s := f.source.NewSession()
	defer s.Close()

	probe := "SELECT name FROM protein WHERE taxonomy_id = 3"
	before := mustExec(t, s, probe)

	if err := f.an.Apply(rep); err != nil {
		t.Fatal(err)
	}

	after := mustExec(t, s, probe)
	if len(after.Rows) != len(before.Rows) {
		t.Fatalf("apply changed results: %d vs %d rows", len(after.Rows), len(before.Rows))
	}
	if after.Plan.Est.Total() >= before.Plan.Est.Total() {
		t.Errorf("estimated cost did not improve: before %.1f after %.1f",
			before.Plan.Est.Total(), after.Plan.Est.Total())
	}
	// MODIFY recommendations were applied: no heap table with high
	// overflow remains among the NREF tables.
	for _, tbl := range nref.Tables {
		meta := f.source.Catalog().Table(tbl)
		st := f.source.TableState(tbl)
		if meta.Structure == "HEAP" && st.Pages > 10 && st.OverflowPages*10 > st.Pages {
			t.Errorf("table %s still heap with %d/%d overflow pages", tbl, st.OverflowPages, st.Pages)
		}
	}
	// Statistics were collected for flagged tables.
	if f.source.Catalog().Histogram("protein", "taxonomy_id") == nil {
		t.Error("no histogram on protein.taxonomy_id after apply")
	}
}

func TestLocksDiagram(t *testing.T) {
	f := newFixture(t, 300)
	out, err := f.an.LocksDiagram()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Locks in use") {
		t.Errorf("diagram:\n%s", out)
	}
}

func TestAnalyzeOnEmptyWorkloadDB(t *testing.T) {
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{})
	source, _ := engine.Open(engine.Config{Dir: filepath.Join(dir, "s"), Monitor: mon})
	wdb, _ := engine.Open(engine.Config{Dir: filepath.Join(dir, "w")})
	defer source.Close()
	defer wdb.Close()
	// Schema exists but is empty.
	d, err := daemon.New(daemon.Config{Source: source, Mon: mon, Target: wdb})
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	an, err := New(Config{Source: source, WorkloadDB: wdb})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recommendations) != 0 || len(rep.Statements) != 0 {
		t.Errorf("expected empty report: %+v", rep)
	}
}

func TestReportRendering(t *testing.T) {
	f := newFixture(t, 1200)
	rep, err := f.an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{
		"Analyzer report:", "statistics collection", "storage structure changes",
		"most expensive statements", "Cost diagram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	empty := (&Report{}).String()
	if !strings.Contains(empty, "no recommendations") {
		t.Errorf("empty report: %s", empty)
	}
}

func TestStatisticsRecommendationsDeduped(t *testing.T) {
	f := newFixture(t, 1500)
	rep, err := f.an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	perTable := map[string]int{}
	for _, r := range rep.Recommendations {
		if r.Kind == KindStatistics {
			perTable[strings.ToLower(r.Table)]++
		}
	}
	for tbl, n := range perTable {
		if n > 1 {
			t.Errorf("table %s has %d statistics recommendations, want 1", tbl, n)
		}
	}
}
