// Package analyzer implements the rule-based analysis of the collected
// monitoring data, as in §IV-C of the paper. It scans the workload
// database, identifies problems and recommends changes to the physical
// database design:
//
//   - statements whose estimated and actual costs differ significantly
//     → collect statistics (the optimizer is flying blind);
//   - attributes used by the workload without histograms → collect
//     statistics;
//   - heap tables with more than 10% overflow pages → MODIFY TO BTREE;
//   - a secondary index set found greedily by feeding the optimizer
//     virtual indexes and letting its what-if costing decide which
//     hypothetical indexes would actually be used.
//
// The analyzer only recommends; Apply implements the recommendations,
// which the paper leaves to the DBA ("we restricted ourselves to a
// manual implementation of changes").
package analyzer

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/charts"
	"repro/internal/engine"
	"repro/internal/sqlparser"
	"repro/internal/workloaddb"
)

// Kind classifies a recommendation.
type Kind string

// Recommendation kinds.
const (
	KindStatistics Kind = "collect-statistics"
	KindModify     Kind = "modify-to-btree"
	KindIndex      Kind = "create-index"
	// KindBufferPool is executed by the Applier as a live resize
	// (engine.ResizePool); plain Apply still skips it because there is
	// no SQL statement to run.
	KindBufferPool Kind = "enlarge-buffer-pool"
	// KindLockWait and KindGroupCommit come from the wait-state rule
	// over the phase-2 attribution data (ws_waits). Both are advisory:
	// shortening transactions and retuning the group-commit window are
	// application/configuration changes, not DDL.
	KindLockWait    Kind = "reduce-lock-waits"
	KindGroupCommit Kind = "tune-group-commit"
	// KindMvccSnapshot and KindMvccConflict come from the MVCC health
	// rule over ws_mvcc. Both are advisory: closing long transactions
	// and de-contending hot rows are application changes.
	KindMvccSnapshot Kind = "close-long-snapshots"
	KindMvccConflict Kind = "reduce-write-conflicts"
)

// Recommendation is one proposed change with the DDL that implements
// it.
type Recommendation struct {
	Kind    Kind
	Table   string
	Columns []string
	SQL     string
	Reason  string
	// Score orders recommendations within a kind: supporting statement
	// count for rules, estimated total cost saving for indexes.
	Score float64
}

// StmtCost aggregates one statement's workload history.
type StmtCost struct {
	Hash       uint64
	Text       string
	Executions int64
	ActualCost float64 // avg per execution, combined units
	EstCost    float64 // avg optimizer estimate
	WhatIfCost float64 // estimate with the recommended virtual indexes
	AvgWallUs  float64
	Diverges   bool
}

// Report is the analyzer's output.
type Report struct {
	Recommendations []Recommendation
	Statements      []StmtCost // all analyzed statements, most expensive first
	DivergentCount  int
	// CostDiagram is the Figure 6 chart: actual vs estimated vs
	// what-if estimate for the ten most expensive statements.
	CostDiagram string
	// BaselineEstCost and WhatIfEstCost total the workload's estimated
	// cost without and with the recommended index set.
	BaselineEstCost float64
	WhatIfEstCost   float64
}

// Config tunes the analyzer.
type Config struct {
	// Source is the monitored database: what-if planning runs against
	// its optimizer and Apply executes DDL on it.
	Source *engine.DB
	// WorkloadDB holds the collected monitoring data.
	WorkloadDB *engine.DB
	// DivergenceFactor flags statements whose actual cost differs from
	// the estimate by more than this factor (default 2).
	DivergenceFactor float64
	// OverflowRatio triggers the restructuring rule (default 0.10, the
	// paper's "more than 10% overflow pages").
	OverflowRatio float64
	// MaxIndexes bounds the recommended index set (default 16).
	MaxIndexes int
	// MinImprovement stops the greedy index search when the best
	// remaining candidate improves total estimated cost by less than
	// this fraction (default 0.005).
	MinImprovement float64
	// MinHitRatio triggers the buffer-pool rule when an interval's cache
	// hit ratio falls below it while evictions are nonzero (default
	// 0.90).
	MinHitRatio float64
	// MinCacheRequests is the minimum page requests an interval needs
	// before its hit ratio is judged (default 100; quieter intervals are
	// noise).
	MinCacheRequests int64
	// WaitDominance is the fraction of a flagged statement's wall-clock
	// a single wait class must account for before the wait-state rule
	// fires on it (default 0.4).
	WaitDominance float64
	// MinWaitSamples is the minimum differenced execution count a
	// flagged statement needs in ws_waits before its breakdown is
	// judged (default 8).
	MinWaitSamples int64
	// MaxSnapshotAge triggers the MVCC long-snapshot advisory when the
	// latest poll's oldest active snapshot is older than this (default
	// 60s — twice the daemon's poll interval).
	MaxSnapshotAge time.Duration
	// MinWriteConflicts is the differenced write-conflict count an
	// interval needs before the conflict rule fires (default 5).
	MinWriteConflicts int64
}

// Analyzer scans collected data and recommends design changes.
type Analyzer struct {
	cfg Config
	// applyFailures counts recommendations that could not be executed
	// (by Apply or by an Applier), surfaced through ws_statistics.
	applyFailures atomic.Int64
}

// ApplyFailures returns the cumulative count of recommendations whose
// execution failed.
func (a *Analyzer) ApplyFailures() int64 { return a.applyFailures.Load() }

// New validates the configuration.
func New(cfg Config) (*Analyzer, error) {
	if cfg.Source == nil || cfg.WorkloadDB == nil {
		return nil, fmt.Errorf("analyzer: Source and WorkloadDB are required")
	}
	if cfg.DivergenceFactor <= 1 {
		cfg.DivergenceFactor = 2
	}
	if cfg.OverflowRatio <= 0 {
		cfg.OverflowRatio = 0.10
	}
	if cfg.MaxIndexes <= 0 {
		cfg.MaxIndexes = 16
	}
	if cfg.MinImprovement <= 0 {
		cfg.MinImprovement = 0.005
	}
	if cfg.MinHitRatio <= 0 || cfg.MinHitRatio >= 1 {
		cfg.MinHitRatio = 0.90
	}
	if cfg.MinCacheRequests <= 0 {
		cfg.MinCacheRequests = 100
	}
	if cfg.WaitDominance <= 0 || cfg.WaitDominance >= 1 {
		cfg.WaitDominance = 0.4
	}
	if cfg.MinWaitSamples <= 0 {
		cfg.MinWaitSamples = 8
	}
	if cfg.MaxSnapshotAge <= 0 {
		cfg.MaxSnapshotAge = 60 * time.Second
	}
	if cfg.MinWriteConflicts <= 0 {
		cfg.MinWriteConflicts = 5
	}
	return &Analyzer{cfg: cfg}, nil
}

// combined folds CPU and IO into the cost unit used throughout: one
// page I/O ≈ 100 tuple operations.
func combined(cpu, io float64) float64 { return io + cpu/100 }

// Analyze scans the workload DB and builds the report.
func (a *Analyzer) Analyze() (*Report, error) {
	rep := &Report{}
	stmts, err := a.loadStatements()
	if err != nil {
		return nil, err
	}
	rep.Statements = stmts

	if err := a.ruleDivergence(rep); err != nil {
		return nil, err
	}
	if err := a.ruleMissingHistograms(rep); err != nil {
		return nil, err
	}
	if err := a.ruleOverflowPages(rep); err != nil {
		return nil, err
	}
	if err := a.ruleBufferPool(rep); err != nil {
		return nil, err
	}
	if err := a.ruleWaitStates(rep); err != nil {
		return nil, err
	}
	if err := a.ruleMvcc(rep); err != nil {
		return nil, err
	}
	if err := a.adviseIndexes(rep); err != nil {
		return nil, err
	}
	a.renderCostDiagram(rep)
	a.dedupeStatistics(rep)

	sort.SliceStable(rep.Recommendations, func(i, j int) bool {
		if rep.Recommendations[i].Kind != rep.Recommendations[j].Kind {
			return rep.Recommendations[i].Kind < rep.Recommendations[j].Kind
		}
		return rep.Recommendations[i].Score > rep.Recommendations[j].Score
	})
	return rep, nil
}

// dedupeStatistics keeps one statistics recommendation per table: the
// divergence rule (whole table) and the missing-histogram rule
// (specific columns) often flag the same table, and applying both is
// redundant — the "global" view of §IV-C avoids such overlapping
// changes.
func (a *Analyzer) dedupeStatistics(rep *Report) {
	wholeTable := map[string]int{} // table -> index of whole-table rec
	for i, r := range rep.Recommendations {
		if r.Kind == KindStatistics && len(r.Columns) == 0 {
			wholeTable[strings.ToLower(r.Table)] = i
		}
	}
	if len(wholeTable) == 0 {
		return
	}
	// First fold scores, then filter into a fresh slice (mutating and
	// compacting in place would corrupt indices).
	drop := map[int]bool{}
	for i, r := range rep.Recommendations {
		if r.Kind == KindStatistics && len(r.Columns) > 0 {
			if wi, ok := wholeTable[strings.ToLower(r.Table)]; ok {
				rep.Recommendations[wi].Score += r.Score
				drop[i] = true
			}
		}
	}
	out := make([]Recommendation, 0, len(rep.Recommendations)-len(drop))
	for i, r := range rep.Recommendations {
		if !drop[i] {
			out = append(out, r)
		}
	}
	rep.Recommendations = out
}

// loadStatements aggregates the workload history per statement hash.
func (a *Analyzer) loadStatements() ([]StmtCost, error) {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()

	// Latest text per hash.
	texts := map[int64]string{}
	lastTS := map[int64]int64{}
	res, err := s.Exec("SELECT hash, query_text, ts_us FROM " + workloaddb.Statements)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		h, ts := r[0].I, r[2].I
		if ts >= lastTS[h] {
			lastTS[h] = ts
			texts[h] = r[1].S
		}
	}

	res, err = s.Exec(`SELECT hash, COUNT(*), AVG(exec_cpu), AVG(exec_io),
		AVG(est_cpu), AVG(est_io), AVG(wall_us)
		FROM ` + workloaddb.Workload + ` GROUP BY hash`)
	if err != nil {
		return nil, err
	}
	var out []StmtCost
	for _, r := range res.Rows {
		sc := StmtCost{
			Hash:       uint64(r[0].I),
			Text:       texts[r[0].I],
			Executions: r[1].I,
			ActualCost: combined(r[2].AsFloat(), r[3].AsFloat()),
			EstCost:    combined(r[4].AsFloat(), r[5].AsFloat()),
			AvgWallUs:  r[6].AsFloat(),
		}
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].ActualCost*float64(out[i].Executions) >
			out[j].ActualCost*float64(out[j].Executions)
	})
	return out, nil
}

// ruleDivergence flags statements whose actual cost differs from the
// optimizer's estimate by more than the configured factor and
// recommends statistics on the tables they reference.
func (a *Analyzer) ruleDivergence(rep *Report) error {
	const minCost = 1.0 // ignore statements too cheap to matter
	needStats := map[string]int{}
	for i := range rep.Statements {
		sc := &rep.Statements[i]
		if sc.ActualCost < minCost && sc.EstCost < minCost {
			continue
		}
		ratio := (sc.ActualCost + 0.01) / (sc.EstCost + 0.01)
		if ratio > a.cfg.DivergenceFactor || ratio < 1/a.cfg.DivergenceFactor {
			sc.Diverges = true
			rep.DivergentCount++
			for _, tbl := range a.tablesOf(sc.Text) {
				needStats[tbl]++
			}
		}
	}
	for tbl, n := range needStats {
		rep.Recommendations = append(rep.Recommendations, Recommendation{
			Kind:   KindStatistics,
			Table:  tbl,
			SQL:    fmt.Sprintf("CREATE STATISTICS FOR %s", tbl),
			Reason: fmt.Sprintf("estimated and actual costs differ significantly for %d statement(s) referencing %s; statistics may be missing or outdated", n, tbl),
			Score:  float64(n),
		})
	}
	return nil
}

// tablesOf re-parses a statement text for its referenced tables
// (returns nil on parse failures, e.g. truncated texts).
func (a *Analyzer) tablesOf(text string) []string {
	stmt, err := sqlparser.Parse(text)
	if err != nil {
		return nil
	}
	tables := sqlparser.ReferencedTables(stmt)
	var out []string
	for _, t := range tables {
		if a.cfg.Source.Catalog().Table(t) != nil {
			out = append(out, strings.ToLower(t))
		}
	}
	return out
}

// ruleMissingHistograms recommends statistics for workload-touched
// attributes without histograms.
func (a *Analyzer) ruleMissingHistograms(rep *Report) error {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()
	res, err := s.Exec(`SELECT attr_name, table_name, MAX(frequency)
		FROM ` + workloaddb.Attributes + `
		WHERE has_histogram = 0 GROUP BY attr_name, table_name`)
	if err != nil {
		return err
	}
	perTable := map[string][]string{}
	weight := map[string]float64{}
	for _, r := range res.Rows {
		attr, tbl := r[0].S, r[1].S
		col := strings.TrimPrefix(attr, tbl+".")
		// The snapshot may predate statistics collected since: check
		// the live catalog.
		if a.cfg.Source.Catalog().Histogram(tbl, col) != nil {
			continue
		}
		perTable[tbl] = append(perTable[tbl], col)
		weight[tbl] += r[2].AsFloat()
	}
	for tbl, cols := range perTable {
		sort.Strings(cols)
		rep.Recommendations = append(rep.Recommendations, Recommendation{
			Kind:    KindStatistics,
			Table:   tbl,
			Columns: cols,
			SQL:     fmt.Sprintf("CREATE STATISTICS FOR %s (%s)", tbl, strings.Join(cols, ", ")),
			Reason:  fmt.Sprintf("attributes %s are used by the workload but have no histograms", strings.Join(cols, ", ")),
			Score:   weight[tbl],
		})
	}
	return nil
}

// ruleOverflowPages recommends restructuring heap tables whose overflow
// share exceeds the threshold.
func (a *Analyzer) ruleOverflowPages(rep *Report) error {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()
	res, err := s.Exec(`SELECT table_name, MAX(data_pages), MAX(overflow_pages)
		FROM ` + workloaddb.Tables + `
		WHERE structure = 'HEAP' GROUP BY table_name`)
	if err != nil {
		return err
	}
	for _, r := range res.Rows {
		tbl := r[0].S
		pages, overflow := r[1].AsFloat(), r[2].AsFloat()
		if pages <= 0 || overflow/pages <= a.cfg.OverflowRatio {
			continue
		}
		meta := a.cfg.Source.Catalog().Table(tbl)
		if meta == nil || meta.Structure != "HEAP" {
			continue // already restructured
		}
		rep.Recommendations = append(rep.Recommendations, Recommendation{
			Kind:   KindModify,
			Table:  tbl,
			SQL:    fmt.Sprintf("MODIFY %s TO BTREE", tbl),
			Reason: fmt.Sprintf("%.0f of %.0f pages (%.0f%%) are overflow pages; the table should be restructured to B-Tree", overflow, pages, overflow/pages*100),
			Score:  overflow / pages,
		})
	}
	return nil
}

// renderCostDiagram builds the Figure 6 chart from the ten most
// expensive statements.
func (a *Analyzer) renderCostDiagram(rep *Report) {
	n := len(rep.Statements)
	if n > 10 {
		n = 10
	}
	var groups []charts.BarGroup
	for i := 0; i < n; i++ {
		sc := rep.Statements[i]
		groups = append(groups, charts.BarGroup{
			Label:  fmt.Sprintf("Q%d", i+1),
			Values: []float64{sc.ActualCost, sc.EstCost, sc.WhatIfCost},
		})
	}
	rep.CostDiagram = charts.BarChart(
		"Cost diagram: 10 most expensive statements (combined cost units)",
		[]string{"actual", "estimated", "est. w/ virtual indexes"},
		groups, 48)
}

// Apply executes the recommendations of the given kinds (all kinds if
// none are named) against the source database, in the order MODIFY →
// CREATE INDEX → CREATE STATISTICS so histograms reflect the final
// physical layout. A failing recommendation does not stop the rest:
// every one is attempted, failures are counted (see ApplyFailures) and
// returned joined. For the canary/observe/rollback protocol use an
// Applier instead.
func (a *Analyzer) Apply(rep *Report, kinds ...Kind) error {
	want := map[Kind]bool{}
	if len(kinds) == 0 {
		want[KindModify], want[KindIndex], want[KindStatistics] = true, true, true
	}
	for _, k := range kinds {
		want[k] = true
	}
	s := a.cfg.Source.NewSession()
	defer s.Close()
	var errs []error
	order := []Kind{KindModify, KindIndex, KindStatistics}
	for _, k := range order {
		if !want[k] {
			continue
		}
		for _, rec := range rep.Recommendations {
			if rec.Kind != k {
				continue
			}
			if _, err := s.Exec(rec.SQL); err != nil {
				a.applyFailures.Add(1)
				errs = append(errs, fmt.Errorf("analyzer: applying %q: %w", rec.SQL, err))
			}
		}
	}
	a.cfg.Source.InvalidatePlans()
	return errors.Join(errs...)
}
