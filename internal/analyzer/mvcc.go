package analyzer

import (
	"fmt"
	"sort"

	"repro/internal/workloaddb"
)

// MVCC health analysis over the ws_mvcc series: where the wait-state
// rules ask "where does wall-clock go?", these ask "is snapshot
// isolation itself degrading?" — a stalled vacuum horizon bloats
// version chains for every reader, and a high write-conflict rate
// means the workload's writers keep aborting each other.

// ruleMvcc evaluates the two MVCC symptoms:
//
//   - long snapshots: the latest poll's oldest_snapshot_ns gauge above
//     MaxSnapshotAge means some session pins an old visibility horizon,
//     blocking vacuum from reclaiming dead versions;
//   - conflict-hot statements: the differenced write_conflicts counter
//     above MinWriteConflicts points at first-updater-wins aborts; the
//     statements responsible are ranked by their error counts in
//     ws_workload (restricted to write statements via ws_statements).
//
// A missing ws_mvcc table (workload DBs collected before MVCC existed)
// skips the rule rather than failing the analysis.
func (a *Analyzer) ruleMvcc(rep *Report) error {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()
	res, err := s.Exec(`SELECT ts_us, write_conflicts, oldest_snapshot_ns, txn_aborts
		FROM ` + workloaddb.Mvcc + ` ORDER BY ts_us`)
	if err != nil || len(res.Rows) == 0 {
		return nil
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	conflicts := last[1].I
	if len(res.Rows) > 1 {
		conflicts -= first[1].I
	}
	oldestNs := last[2].I

	if oldestNs >= a.cfg.MaxSnapshotAge.Nanoseconds() {
		rep.Recommendations = append(rep.Recommendations, Recommendation{
			Kind: KindMvccSnapshot,
			SQL:  "-- close long-running transactions or read sessions (oldest snapshot pins the vacuum horizon)",
			Reason: fmt.Sprintf("the oldest active snapshot is %.1fs old (threshold %.1fs); vacuum cannot reclaim versions deleted after it was taken, so version chains and dead-tuple scans grow for every reader",
				float64(oldestNs)/1e9, a.cfg.MaxSnapshotAge.Seconds()),
			Score: float64(oldestNs),
		})
	}

	if conflicts >= a.cfg.MinWriteConflicts {
		hot := a.conflictHotStatements(3)
		reason := fmt.Sprintf("%d first-updater-wins write conflict(s) in the collected interval", conflicts)
		if len(hot) > 0 {
			reason += "; statements failing most often: "
			for i, h := range hot {
				if i > 0 {
					reason += ", "
				}
				reason += fmt.Sprintf("%.40q (%d errors)", oneLine(h.text), h.errs)
			}
		}
		rec := Recommendation{
			Kind:   KindMvccConflict,
			SQL:    "-- serialize hot-row writers (queue them application-side) or split the contended rows",
			Reason: reason,
			Score:  float64(conflicts),
		}
		if len(hot) > 0 {
			if ts := a.tablesOf(hot[0].text); len(ts) > 0 {
				rec.Table = ts[0]
			}
		}
		rep.Recommendations = append(rep.Recommendations, rec)
	}
	return nil
}

// conflictHot is one write statement's cumulative error count.
type conflictHot struct {
	hash int64
	text string
	errs int64
}

// conflictHotStatements ranks write statements by their error counts in
// ws_workload. Write-conflict aborts surface as statement errors, so
// under a conflict-heavy interval the ranking singles out the UPDATE /
// DELETE / INSERT statements writers keep losing on. Best effort: any
// query failure yields an empty list.
func (a *Analyzer) conflictHotStatements(limit int) []conflictHot {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()

	kinds := map[int64]string{}
	texts := map[int64]string{}
	if res, err := s.Exec(`SELECT hash, query_text, kind FROM ` + workloaddb.Statements); err == nil {
		for _, r := range res.Rows {
			kinds[r[0].I] = r[2].S
			texts[r[0].I] = r[1].S
		}
	} else {
		return nil
	}

	errs := map[int64]int64{}
	if res, err := s.Exec(`SELECT hash, error FROM ` + workloaddb.Workload); err == nil {
		for _, r := range res.Rows {
			if r[1].I != 0 {
				errs[r[0].I]++
			}
		}
	} else {
		return nil
	}

	var out []conflictHot
	for h, n := range errs {
		switch kinds[h] {
		case "UPDATE", "DELETE", "INSERT":
			out = append(out, conflictHot{hash: h, text: texts[h], errs: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].errs != out[j].errs {
			return out[i].errs > out[j].errs
		}
		return out[i].hash < out[j].hash
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
