package analyzer

import (
	"repro/internal/charts"
	"repro/internal/workloaddb"
)

// LocksDiagram renders the paper's Figure 8: the number of locks in
// use over time, with 'W' markers where lock waits occurred and 'D'
// markers for deadlocks, read from the persisted statistics series.
func (a *Analyzer) LocksDiagram() (string, error) {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()
	res, err := s.Exec(`SELECT ts_us, locks_held, lock_waits, deadlocks
		FROM ` + workloaddb.Statistics + ` ORDER BY ts_us`)
	if err != nil {
		return "", err
	}
	if len(res.Rows) == 0 {
		return charts.SeriesChart("Locks in use", nil, nil, 60, 10), nil
	}
	t0 := res.Rows[0][0].I
	var pts []charts.Point
	var markers []charts.Marker
	prevWaits, prevDeadlocks := int64(0), int64(0)
	for i, r := range res.Rows {
		t := float64(r[0].I-t0) / 1e6
		pts = append(pts, charts.Point{T: t, V: r[1].AsFloat()})
		waits, deadlocks := r[2].I, r[3].I
		if i > 0 {
			if deadlocks > prevDeadlocks {
				markers = append(markers, charts.Marker{T: t, Label: 'D'})
			} else if waits > prevWaits {
				markers = append(markers, charts.Marker{T: t, Label: 'W'})
			}
		}
		prevWaits, prevDeadlocks = waits, deadlocks
	}
	return charts.SeriesChart("Locks in use over time (W = lock waits, D = deadlocks)",
		pts, markers, 64, 10), nil
}
