package analyzer

import (
	"fmt"
	"time"

	"repro/internal/monitor"
	"repro/internal/workloaddb"
)

// LatencyPoint is one per-interval latency quantile, computed from the
// difference between consecutive ws_latency histogram snapshots.
type LatencyPoint struct {
	At      time.Time     // poll timestamp of the snapshot
	Q       time.Duration // the requested quantile (bucket upper bound)
	Samples int64         // executions in the interval
}

// LatencyQuantiles computes the q-quantile (e.g. 0.99) of the named
// histogram scope ("wall" or "opt") for every polling interval
// persisted in ws_latency. The stored counts are cumulative, so each
// point is the difference between consecutive snapshots: the paper's
// trend analysis over tail latency, not just means. The first point
// covers everything since monitor start; intervals without executions
// are skipped.
func (a *Analyzer) LatencyQuantiles(scope string, q float64) ([]LatencyPoint, error) {
	if q <= 0 || q > 1 {
		return nil, fmt.Errorf("analyzer: quantile must be in (0, 1], got %g", q)
	}
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()
	res, err := s.Exec(fmt.Sprintf(
		"SELECT ts_us, bucket, bucket_count FROM %s WHERE scope = '%s' ORDER BY ts_us",
		workloaddb.Latency, scope))
	if err != nil {
		return nil, err
	}

	var out []LatencyPoint
	var prev, cur monitor.LatencyCounts
	curTS := int64(-1)
	flush := func() {
		if curTS < 0 {
			return
		}
		var delta monitor.LatencyCounts
		for i := range cur {
			delta[i] = cur[i] - prev[i]
		}
		if n := delta.Total(); n > 0 {
			out = append(out, LatencyPoint{
				At:      time.UnixMicro(curTS),
				Q:       delta.Quantile(q),
				Samples: n,
			})
		}
		prev = cur
		cur = monitor.LatencyCounts{}
	}
	for _, r := range res.Rows {
		ts, bucket, count := r[0].I, r[1].I, r[2].I
		if ts != curTS {
			flush()
			curTS = ts
		}
		if bucket >= 0 && bucket < monitor.NumLatencyBuckets {
			cur[bucket] = count
		}
	}
	flush()
	return out, nil
}
