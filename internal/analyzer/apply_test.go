package analyzer

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/monitor"
)

// applyFixture is a minimal source+workload DB pair for driving the
// Applier with synthetic latency series.
type applyFixture struct {
	source *engine.DB
	an     *Analyzer
}

func newApplyFixture(t *testing.T) *applyFixture {
	t.Helper()
	dir := t.TempDir()
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	wdb, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { source.Close(); wdb.Close() })
	s := source.NewSession()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE ct (id INTEGER PRIMARY KEY, a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO ct VALUES (%d, %d)", i, i%7)); err != nil {
			t.Fatal(err)
		}
	}
	an, err := New(Config{Source: source, WorkloadDB: wdb})
	if err != nil {
		t.Fatal(err)
	}
	return &applyFixture{source: source, an: an}
}

// counts returns a cumulative histogram with n samples in bucket b.
func counts(b int, n int64) monitor.LatencyCounts {
	var c monitor.LatencyCounts
	c[b] = n
	return c
}

// addCounts sums cumulative histograms.
func addCounts(a, b monitor.LatencyCounts) monitor.LatencyCounts {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// latencySeries replays a fixed sequence of cumulative snapshots; after
// the sequence is exhausted the last snapshot repeats.
func latencySeries(seq ...monitor.LatencyCounts) func() monitor.LatencyCounts {
	i := 0
	return func() monitor.LatencyCounts {
		c := seq[i]
		if i < len(seq)-1 {
			i++
		}
		return c
	}
}

const (
	fastBucket = 8  // baseline latency bucket
	slowBucket = 30 // far slower bucket: an unambiguous regression
)

// applierFor builds an Applier with a synthetic latency series and no
// real sleeping. The observe windows consume the series in order:
// baseline(before, after), canary(before, after).
func applierFor(f *applyFixture, seq ...monitor.LatencyCounts) *Applier {
	return f.an.NewApplier(ApplyConfig{
		CanaryWindow: time.Millisecond,
		MinSamples:   10,
		Latency:      latencySeries(seq...),
		Sleep:        func(time.Duration) {},
	})
}

// steadySeries is a four-snapshot series whose baseline and canary
// windows both show 100 fast executions: no regression.
func steadySeries() []monitor.LatencyCounts {
	c0 := counts(fastBucket, 0)
	c1 := counts(fastBucket, 100)
	c2 := c1
	c3 := addCounts(c2, counts(fastBucket, 100))
	return []monitor.LatencyCounts{c0, c1, c2, c3}
}

// regressingSeries shows 100 fast executions in the baseline window and
// 100 slow ones in the canary window.
func regressingSeries() []monitor.LatencyCounts {
	c0 := counts(fastBucket, 0)
	c1 := counts(fastBucket, 100)
	c2 := c1
	c3 := addCounts(c2, counts(slowBucket, 100))
	return []monitor.LatencyCounts{c0, c1, c2, c3}
}

func indexRec() Recommendation {
	return Recommendation{
		Kind:   KindIndex,
		Table:  "ct",
		SQL:    "CREATE INDEX ix_ct_a ON ct (a)",
		Reason: "test",
	}
}

// lastStateOf returns the final state row of the given action kind.
func lastStateOf(ap *Applier, kind Kind) (state, detail string) {
	for _, r := range ap.ActionRows() {
		if r.Kind == string(kind) {
			state, detail = r.State, r.Detail
		}
	}
	return state, detail
}

func TestApplierAcceptsIndexWhenCanaryIsClean(t *testing.T) {
	f := newApplyFixture(t)
	ap := applierFor(f, steadySeries()...)
	rep := &Report{Recommendations: []Recommendation{indexRec()}}
	if err := ap.ApplyOnline(rep); err != nil {
		t.Fatal(err)
	}
	if f.source.Catalog().Index("ix_ct_a") == nil {
		t.Fatal("accepted index is not in the catalog")
	}
	state, _ := lastStateOf(ap, KindIndex)
	if state != string(StateAccepted) {
		t.Fatalf("final state %q, want accepted", state)
	}
	accepted, rolledBack, failed := ap.Stats()
	if accepted != 1 || rolledBack != 0 || failed != 0 {
		t.Fatalf("stats accepted=%d rolledBack=%d failed=%d", accepted, rolledBack, failed)
	}
	// The audit trail walks the full state machine with monotone Seq.
	var states []string
	prevSeq := int64(0)
	for _, r := range ap.ActionRows() {
		if r.Seq <= prevSeq {
			t.Fatalf("Seq not monotone: %d after %d", r.Seq, prevSeq)
		}
		prevSeq = r.Seq
		states = append(states, r.State)
	}
	want := []string{"proposed", "applying", "canary", "accepted"}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Fatalf("state sequence %v, want %v", states, want)
	}
	// The executed SQL was upgraded to an online build.
	rows := ap.ActionRows()
	if !strings.HasSuffix(rows[len(rows)-1].SQL, " ONLINE") {
		t.Fatalf("index apply did not run online: %q", rows[len(rows)-1].SQL)
	}
}

func TestApplierRollsBackIndexOnRegression(t *testing.T) {
	f := newApplyFixture(t)
	ap := applierFor(f, regressingSeries()...)
	rep := &Report{Recommendations: []Recommendation{indexRec()}}
	if err := ap.ApplyOnline(rep); err != nil {
		t.Fatal(err)
	}
	if f.source.Catalog().Index("ix_ct_a") != nil {
		t.Fatal("regressing index was not dropped")
	}
	state, detail := lastStateOf(ap, KindIndex)
	if state != string(StateRolledBack) {
		t.Fatalf("final state %q (%s), want rolled-back", state, detail)
	}
	if _, rolledBack, _ := ap.Stats(); rolledBack != 1 {
		t.Fatalf("rolledBack=%d, want 1", rolledBack)
	}
}

func TestApplierBufferPoolResizeAndRollback(t *testing.T) {
	f := newApplyFixture(t)
	before := f.source.PoolCapacity()
	rec := Recommendation{Kind: KindBufferPool, SQL: "-- enlarge", Reason: "low hit ratio"}

	ap := applierFor(f, steadySeries()...)
	if err := ap.ApplyOnline(&Report{Recommendations: []Recommendation{rec}}); err != nil {
		t.Fatal(err)
	}
	grown := f.source.PoolCapacity()
	if grown <= before {
		t.Fatalf("pool did not grow: %d -> %d", before, grown)
	}

	ap2 := applierFor(f, regressingSeries()...)
	if err := ap2.ApplyOnline(&Report{Recommendations: []Recommendation{rec}}); err != nil {
		t.Fatal(err)
	}
	if got := f.source.PoolCapacity(); got != grown {
		t.Fatalf("rollback did not restore capacity: %d, want %d", got, grown)
	}
	state, _ := lastStateOf(ap2, KindBufferPool)
	if state != string(StateRolledBack) {
		t.Fatalf("final state %q, want rolled-back", state)
	}
}

func TestApplierAcceptsOnInsufficientSamples(t *testing.T) {
	f := newApplyFixture(t)
	// Only 3 executions per window, below MinSamples=10: the regression
	// signal is noise, so the action stands.
	c0 := counts(fastBucket, 0)
	c1 := counts(fastBucket, 3)
	c3 := addCounts(c1, counts(slowBucket, 3))
	ap := applierFor(f, c0, c1, c1, c3)
	if err := ap.ApplyOnline(&Report{Recommendations: []Recommendation{indexRec()}}); err != nil {
		t.Fatal(err)
	}
	state, detail := lastStateOf(ap, KindIndex)
	if state != string(StateAccepted) {
		t.Fatalf("final state %q, want accepted", state)
	}
	if !strings.Contains(detail, "insufficient") {
		t.Fatalf("detail %q does not explain the insufficient evidence", detail)
	}
}

func TestApplierContinuesPastFailures(t *testing.T) {
	f := newApplyFixture(t)
	bad := Recommendation{Kind: KindIndex, Table: "nosuch", SQL: "CREATE INDEX ix_no ON nosuch (a)"}
	series := append(steadySeries(), steadySeries()...)
	ap := applierFor(f, series...)
	rep := &Report{Recommendations: []Recommendation{bad, indexRec()}}
	err := ap.ApplyOnline(rep)
	if err == nil {
		t.Fatal("failing recommendation did not surface an error")
	}
	// The failure did not stop the good recommendation.
	if f.source.Catalog().Index("ix_ct_a") == nil {
		t.Fatal("later recommendation was not applied after an earlier failure")
	}
	if _, _, failed := ap.Stats(); failed != 1 {
		t.Fatalf("failed=%d, want 1", failed)
	}
	if f.an.ApplyFailures() != 1 {
		t.Fatalf("ApplyFailures()=%d, want 1", f.an.ApplyFailures())
	}
	state, _ := lastStateOf(ap, KindIndex)
	if state != string(StateAccepted) {
		t.Fatalf("good action final state %q, want accepted", state)
	}
}

func TestApplyContinuesPastFailures(t *testing.T) {
	// The plain (non-canary) Apply path: same continue-past-failure
	// contract, same counter.
	f := newApplyFixture(t)
	rep := &Report{Recommendations: []Recommendation{
		{Kind: KindIndex, Table: "nosuch", SQL: "CREATE INDEX ix_no ON nosuch (a)"},
		indexRec(),
	}}
	err := f.an.Apply(rep)
	if err == nil {
		t.Fatal("failing recommendation did not surface an error")
	}
	if f.source.Catalog().Index("ix_ct_a") == nil {
		t.Fatal("later recommendation was not applied after an earlier failure")
	}
	if f.an.ApplyFailures() != 1 {
		t.Fatalf("ApplyFailures()=%d, want 1", f.an.ApplyFailures())
	}
}
