package analyzer

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workloaddb"
)

// waitSample is one synthetic ws_waits poll row: cumulative counters
// for one statement hash.
type waitSample struct {
	hash                             int64
	text                             string
	samples                          int64
	wall, exec, lock, io, fsync, pin int64
}

func insertWaitSeries(t *testing.T, wdb *engine.DB, polls [][]waitSample) {
	t.Helper()
	s := wdb.NewSession()
	defer s.Close()
	base := time.Now()
	for i, rows := range polls {
		ts := base.Add(time.Duration(i) * time.Minute).UnixMicro()
		for _, w := range rows {
			if _, err := s.Exec(fmt.Sprintf(
				"INSERT INTO %s VALUES (%d, %d, '%s', 'manual', %d, %d, %d, %d, %d, %d, %d)",
				workloaddb.Waits, ts, w.hash, w.text, w.samples,
				w.wall, w.exec, w.lock, w.io, w.fsync, w.pin)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func recsOf(rep *Report, k Kind) []Recommendation {
	var out []Recommendation
	for _, r := range rep.Recommendations {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

// TestWaitRuleClassification seeds two ws_waits snapshots per statement
// and checks each dominant wait class routes to its rule: lock → the
// per-statement contention advisory, I/O → buffer pool, fsync → group
// commit. The first snapshot is a decoy with a different mix, proving
// the rule differences snapshots instead of reading cumulative values.
func TestWaitRuleClassification(t *testing.T) {
	an, wdb := newStatsOnlyFixture(t)
	const ms = int64(time.Millisecond)
	insertWaitSeries(t, wdb, [][]waitSample{
		{ // poll 1: small cumulative baselines
			{hash: 1, text: "UPDATE hot SET v = 1", samples: 5, wall: 10 * ms, exec: 9 * ms, lock: 1 * ms},
			{hash: 2, text: "SELECT * FROM big", samples: 5, wall: 10 * ms, exec: 9 * ms, io: 1 * ms},
			{hash: 3, text: "INSERT INTO log VALUES (1)", samples: 5, wall: 10 * ms, exec: 9 * ms, fsync: 1 * ms},
		},
		{ // poll 2: the interval since poll 1 is dominated per class
			{hash: 1, text: "UPDATE hot SET v = 1", samples: 105, wall: 110 * ms, exec: 29 * ms, lock: 81 * ms},
			{hash: 2, text: "SELECT * FROM big", samples: 105, wall: 110 * ms, exec: 29 * ms, io: 51 * ms, pin: 30 * ms},
			{hash: 3, text: "INSERT INTO log VALUES (1)", samples: 105, wall: 110 * ms, exec: 29 * ms, fsync: 81 * ms},
		},
	})
	rep := &Report{}
	if err := an.ruleWaitStates(rep); err != nil {
		t.Fatal(err)
	}

	locks := recsOf(rep, KindLockWait)
	if len(locks) != 1 {
		t.Fatalf("lock advisories = %+v", rep.Recommendations)
	}
	if locks[0].Reason == "" || locks[0].Score != float64(80*ms) {
		t.Fatalf("lock advisory = %+v", locks[0])
	}
	if pools := recsOf(rep, KindBufferPool); len(pools) != 1 {
		t.Fatalf("buffer-pool recs = %+v", rep.Recommendations)
	}
	if gcs := recsOf(rep, KindGroupCommit); len(gcs) != 1 {
		t.Fatalf("group-commit recs = %+v", rep.Recommendations)
	}
}

// TestWaitRuleThresholds: statements below MinWaitSamples or below the
// dominance fraction stay unflagged, and an exec-dominant statement
// (the monitor says "it is just expensive") produces no advisory.
func TestWaitRuleThresholds(t *testing.T) {
	an, wdb := newStatsOnlyFixture(t)
	const ms = int64(time.Millisecond)
	insertWaitSeries(t, wdb, [][]waitSample{
		{
			// Lock-dominated but only 3 samples: noise.
			{hash: 1, text: "q1", samples: 3, wall: 10 * ms, lock: 9 * ms},
			// Plenty of samples but exec-dominant: correctly no advisory.
			{hash: 2, text: "q2", samples: 100, wall: 100 * ms, exec: 90 * ms, lock: 5 * ms},
			// Every class below the 40% dominance line.
			{hash: 3, text: "q3", samples: 100, wall: 100 * ms, exec: 30 * ms, lock: 25 * ms, io: 25 * ms, fsync: 20 * ms},
		},
	})
	rep := &Report{}
	if err := an.ruleWaitStates(rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Recommendations) != 0 {
		t.Fatalf("unexpected recommendations: %+v", rep.Recommendations)
	}
}

// TestWaitRuleRespectsExistingPoolRec: when the hit-ratio rule already
// recommended the pool enlargement, the wait rule must not duplicate
// it.
func TestWaitRuleRespectsExistingPoolRec(t *testing.T) {
	an, wdb := newStatsOnlyFixture(t)
	const ms = int64(time.Millisecond)
	insertWaitSeries(t, wdb, [][]waitSample{
		{{hash: 2, text: "SELECT * FROM big", samples: 100, wall: 100 * ms, exec: 20 * ms, io: 80 * ms}},
	})
	rep := &Report{Recommendations: []Recommendation{
		{Kind: KindBufferPool, Reason: "hit ratio"},
	}}
	if err := an.ruleWaitStates(rep); err != nil {
		t.Fatal(err)
	}
	if pools := recsOf(rep, KindBufferPool); len(pools) != 1 {
		t.Fatalf("duplicated pool recommendation: %+v", pools)
	}
}
