package analyzer

import (
	"fmt"
	"strings"
)

// String renders the full analyzer report: the statement summary, the
// recommendations grouped by kind with reasons, the estimated cost
// effect of the index set, and the Figure 6 cost diagram. This is the
// "results and recommendations presented in textual and graphical
// form" output of §IV-D.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Analyzer report: %d statements analyzed, %d with significantly diverging cost estimates\n",
		len(r.Statements), r.DivergentCount)

	if len(r.Recommendations) == 0 {
		b.WriteString("\nno recommendations — the physical design fits the observed workload\n")
	} else {
		order := []Kind{KindModify, KindIndex, KindStatistics, KindBufferPool, KindLockWait, KindGroupCommit, KindMvccSnapshot, KindMvccConflict}
		titles := map[Kind]string{
			KindModify:       "storage structure changes",
			KindIndex:        "secondary indexes",
			KindStatistics:   "statistics collection",
			KindBufferPool:   "configuration changes (manual)",
			KindLockWait:     "lock-contention advisories (wait-state analysis)",
			KindGroupCommit:  "group-commit advisories (wait-state analysis)",
			KindMvccSnapshot: "snapshot-age advisories (MVCC health)",
			KindMvccConflict: "write-conflict advisories (MVCC health)",
		}
		for _, k := range order {
			var recs []Recommendation
			for _, rec := range r.Recommendations {
				if rec.Kind == k {
					recs = append(recs, rec)
				}
			}
			if len(recs) == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n%s (%d):\n", titles[k], len(recs))
			for _, rec := range recs {
				fmt.Fprintf(&b, "  %s\n    -- %s\n", rec.SQL, rec.Reason)
			}
		}
	}

	if r.BaselineEstCost > 0 {
		fmt.Fprintf(&b, "\nestimated workload cost: %.0f now, %.0f with the recommended indexes (%.0f%% saved)\n",
			r.BaselineEstCost, r.WhatIfEstCost,
			(1-r.WhatIfEstCost/(r.BaselineEstCost+1e-9))*100)
	}
	if n := len(r.Statements); n > 0 {
		b.WriteString("\nmost expensive statements:\n")
		max := 5
		if n < max {
			max = n
		}
		for i := 0; i < max; i++ {
			sc := r.Statements[i]
			flag := " "
			if sc.Diverges {
				flag = "!"
			}
			fmt.Fprintf(&b, " %s x%-4d act=%8.1f est=%8.1f  %.60s\n",
				flag, sc.Executions, sc.ActualCost, sc.EstCost, oneLine(sc.Text))
		}
		b.WriteString("  ('!' = estimated and actual costs diverge)\n")
	}
	if r.CostDiagram != "" {
		b.WriteByte('\n')
		b.WriteString(r.CostDiagram)
	}
	return b.String()
}

func oneLine(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
