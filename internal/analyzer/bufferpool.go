package analyzer

import (
	"fmt"

	"repro/internal/workloaddb"
)

// ruleBufferPool recommends a larger buffer pool when the collected
// ws_statistics series shows poll intervals whose cache hit ratio fell
// below MinHitRatio while the pool was actively evicting — the classic
// "working set exceeds the cache" signature. A low hit ratio with zero
// evictions is a cold cache (first touch of the data), not pressure,
// so it does not fire the rule.
//
// The recommendation is report-level: resizing the pool needs a restart
// (engine.Config.PoolPages), so Apply never executes it — matching the
// paper's stance that the analyzer recommends and the DBA implements.
func (a *Analyzer) ruleBufferPool(rep *Report) error {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()
	res, err := s.Exec(`SELECT ts_us, cache_hits, cache_misses, cache_evictions, pin_waits
		FROM ` + workloaddb.Statistics + ` ORDER BY ts_us`)
	if err != nil {
		// Workload databases collected before the buffer-manager columns
		// existed cannot be judged; skip the rule rather than fail the
		// whole analysis.
		return nil
	}
	if len(res.Rows) < 2 {
		return nil
	}

	var (
		badIntervals  int
		goodIntervals int
		worstRatio    = 1.0
		missVolume    int64
		evictions     int64
		pinWaits      int64
	)
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		dHits := cur[1].I - prev[1].I
		dMisses := cur[2].I - prev[2].I
		dEvict := cur[3].I - prev[3].I
		dWaits := cur[4].I - prev[4].I
		requests := dHits + dMisses
		if requests < a.cfg.MinCacheRequests {
			continue // too quiet to judge
		}
		ratio := float64(dHits) / float64(requests)
		if ratio < a.cfg.MinHitRatio && dEvict > 0 {
			badIntervals++
			missVolume += dMisses
			evictions += dEvict
			pinWaits += dWaits
			if ratio < worstRatio {
				worstRatio = ratio
			}
		} else {
			goodIntervals++
		}
	}
	if badIntervals == 0 {
		return nil
	}

	reason := fmt.Sprintf(
		"%d poll interval(s) ran below the %.0f%% cache hit-ratio target (worst %.1f%%) while evicting %d frame(s): the working set does not fit the buffer pool",
		badIntervals, a.cfg.MinHitRatio*100, worstRatio*100, evictions)
	if pinWaits > 0 {
		reason += fmt.Sprintf("; %d pin wait(s) show sessions stalling for frames", pinWaits)
	}
	rep.Recommendations = append(rep.Recommendations, Recommendation{
		Kind:   KindBufferPool,
		SQL:    "-- restart with a larger buffer pool (engine.Config.PoolPages)",
		Reason: reason,
		Score:  float64(missVolume),
	})
	return nil
}
