package analyzer

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
)

// latencyFixture is smaller than the advisor fixture: just a monitored
// source, a workload DB and a daemon, so interval sample counts stay
// exactly predictable.
func latencyFixture(t *testing.T) (*engine.Session, *monitor.Monitor, *daemon.Daemon, *Analyzer) {
	t.Helper()
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{})
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := ima.Register(source, mon); err != nil {
		t.Fatal(err)
	}
	wdb, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { source.Close(); wdb.Close() })
	d, err := daemon.New(daemon.Config{Source: source, Mon: mon, Target: wdb})
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(Config{Source: source, WorkloadDB: wdb})
	if err != nil {
		t.Fatal(err)
	}
	s := source.NewSession()
	t.Cleanup(s.Close)
	return s, mon, d, an
}

func TestLatencyQuantilesPerInterval(t *testing.T) {
	s, mon, d, an := latencyFixture(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
	for i := 0; i < 9; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	first := mon.TotalStatements()
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustExec(t, s, fmt.Sprintf("SELECT id FROM t WHERE id = %d", i))
	}
	second := mon.TotalStatements() - first
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}

	points, err := an.LatencyQuantiles("wall", 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2 (one per poll): %+v", len(points), points)
	}
	if points[0].Samples != first {
		t.Errorf("interval 1 samples = %d, want %d", points[0].Samples, first)
	}
	if points[1].Samples != second {
		t.Errorf("interval 2 samples = %d, want %d", points[1].Samples, second)
	}
	for i, p := range points {
		if p.Q <= 0 {
			t.Errorf("point %d: quantile %v, want > 0", i, p.Q)
		}
		if p.At.IsZero() {
			t.Errorf("point %d: zero timestamp", i)
		}
	}
	if !points[1].At.After(points[0].At) {
		t.Errorf("points not time-ordered: %v then %v", points[0].At, points[1].At)
	}

	// The opt scope is persisted alongside wall.
	optPoints, err := an.LatencyQuantiles("opt", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(optPoints) == 0 {
		t.Error("no opt-scope points")
	}
}

func TestLatencyQuantilesValidation(t *testing.T) {
	s, _, d, an := latencyFixture(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, -1, 1.5} {
		if _, err := an.LatencyQuantiles("wall", q); err == nil {
			t.Errorf("quantile %v accepted", q)
		}
	}
	// Unknown scopes yield no points, not an error.
	points, err := an.LatencyQuantiles("nope", 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Errorf("unknown scope returned %d points", len(points))
	}
}

// TestPollIdleIntervalSkipped: an interval with no executions adds no
// point (the cumulative counts did not move).
func TestPollIdleIntervalSkipped(t *testing.T) {
	s, _, d, an := latencyFixture(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Poll(); err != nil { // nothing ran on source in between
		t.Fatal(err)
	}
	points, err := an.LatencyQuantiles("wall", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("got %d points, want 1 (idle interval skipped): %+v", len(points), points)
	}
}
