package analyzer

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sqltypes"
	"repro/internal/workloaddb"
)

// Trend is a least-squares fit over one statistics column's time
// series — the third analysis level of §IV-C: "identify trends and
// patterns and start predicting potential problems in advance".
type Trend struct {
	Metric    string
	Samples   int
	First     time.Time
	Last      time.Time
	Current   float64
	PerHour   float64 // fitted slope
	Intercept float64
	// R2 is the coefficient of determination of the fit; predictions
	// from low-R2 trends are noise.
	R2 float64
}

// PredictCrossing estimates when the metric reaches the threshold by
// extrapolating the fitted line. ok is false when the trend never
// reaches it (flat or moving away) or the fit explains too little
// variance.
func (t *Trend) PredictCrossing(threshold float64) (time.Time, bool) {
	if t.Samples < 3 || t.R2 < 0.5 || t.PerHour == 0 {
		return time.Time{}, false
	}
	hours := (threshold - t.Current) / t.PerHour
	if hours < 0 {
		return time.Time{}, false
	}
	return t.Last.Add(time.Duration(hours * float64(time.Hour))), true
}

// String renders the trend.
func (t *Trend) String() string {
	return fmt.Sprintf("%s: %.1f now, %+.2f/hour over %d samples (R²=%.2f)",
		t.Metric, t.Current, t.PerHour, t.Samples, t.R2)
}

// statisticsColumns lists the ws_statistics columns Trends analyzes.
var statisticsColumns = []string{
	"statements", "locks_held", "lock_waits", "deadlocks",
	"cache_misses", "disk_writes", "db_bytes", "peak_sessions",
}

// Trends fits a linear trend to every system-statistics column in the
// workload DB. Columns without at least three samples are omitted.
func (a *Analyzer) Trends() ([]Trend, error) {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()
	var out []Trend
	for _, col := range statisticsColumns {
		res, err := s.Exec(fmt.Sprintf(
			"SELECT ts_us, %s FROM %s ORDER BY ts_us", col, workloaddb.Statistics))
		if err != nil {
			return nil, err
		}
		if len(res.Rows) < 3 {
			continue
		}
		out = append(out, fitTrend(col, res.Rows))
	}
	return out, nil
}

// fitTrend least-squares fits value against hours since the first
// sample. rows are (ts_us, value) pairs ordered by time.
func fitTrend(metric string, rows []sqltypes.Row) Trend {
	t0 := rows[0][0].I
	n := float64(len(rows))
	var sx, sy, sxx, sxy float64
	for _, r := range rows {
		x := float64(r[0].I-t0) / 3.6e9 // hours
		y := r[1].AsFloat()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	tr := Trend{
		Metric:  metric,
		Samples: len(rows),
		First:   time.UnixMicro(t0),
		Last:    time.UnixMicro(rows[len(rows)-1][0].I),
		Current: rows[len(rows)-1][1].AsFloat(),
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		tr.Intercept = sy / n
		return tr
	}
	tr.PerHour = (n*sxy - sx*sy) / denom
	tr.Intercept = (sy - tr.PerHour*sx) / n
	// R²: 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for _, r := range rows {
		x := float64(r[0].I-t0) / 3.6e9
		y := r[1].AsFloat()
		fit := tr.Intercept + tr.PerHour*x
		ssRes += (y - fit) * (y - fit)
		ssTot += (y - meanY) * (y - meanY)
	}
	if ssTot > 0 {
		tr.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		tr.R2 = 1
	}
	if math.IsNaN(tr.R2) || math.IsInf(tr.R2, 0) {
		tr.R2 = 0
	}
	return tr
}
