package analyzer

import (
	"fmt"
	"sort"

	"repro/internal/workloaddb"
)

// Wait-state analysis: the rules over the phase-2 attribution data in
// ws_waits. Where the cost-based rules ask "is this statement more
// expensive than the optimizer thought?", these ask "where does the
// wall-clock of a flagged statement actually go?" and route the answer
// to the subsystem that can absorb it — the tuning direction the
// integrated monitor's wait breakdown exists to enable.

// waitDelta is one statement's per-interval wait breakdown, obtained by
// differencing the earliest and latest ws_waits snapshots of its hash
// (counter semantics, like ws_latency).
type waitDelta struct {
	hash    int64
	text    string
	samples int64
	wall    int64
	exec    int64
	lock    int64
	io      int64
	fsync   int64
	pin     int64
}

// ruleWaitStates classifies each flagged statement's differenced wait
// breakdown and recommends by dominant wait class:
//
//   - lock-dominant → per-statement advisory: shorten the transaction or
//     narrow its lock footprint with an index;
//   - I/O-dominant (page loads + pin waits) → a buffer-pool enlargement,
//     reusing KindBufferPool so ApplyOnline can live-resize under the
//     usual canary;
//   - fsync-dominant → advisory to widen the WAL group-commit window
//     (storage.WALOptions.GroupCommitInterval / SetGroupCommitInterval).
//
// Statements below MinWaitSamples differenced executions are skipped as
// noise. A missing ws_waits table (workload DBs collected before the
// two-phase monitor existed) skips the rule rather than failing the
// analysis.
func (a *Analyzer) ruleWaitStates(rep *Report) error {
	deltas, err := a.loadWaitDeltas()
	if err != nil || len(deltas) == 0 {
		return nil
	}

	var (
		ioWait, ioWall, fsyncWait, fsyncWall int64
		ioStmts, fsyncStmts                  int
	)
	for _, d := range deltas {
		if d.samples < a.cfg.MinWaitSamples || d.wall <= 0 {
			continue
		}
		wall := float64(d.wall)
		lockFrac := float64(d.lock) / wall
		ioFrac := float64(d.io+d.pin) / wall
		fsyncFrac := float64(d.fsync) / wall

		if lockFrac >= a.cfg.WaitDominance {
			tbl := ""
			if ts := a.tablesOf(d.text); len(ts) > 0 {
				tbl = ts[0]
			}
			rep.Recommendations = append(rep.Recommendations, Recommendation{
				Kind:  KindLockWait,
				Table: tbl,
				SQL:   fmt.Sprintf("-- lock-bound statement %d: shorten its transaction or add an index to narrow its lock footprint", d.hash),
				Reason: fmt.Sprintf("%.0f%% of its wall-clock over %d execution(s) was spent parked on lock queues: %.40q",
					lockFrac*100, d.samples, oneLine(d.text)),
				Score: float64(d.lock),
			})
		}
		if ioFrac >= a.cfg.WaitDominance {
			ioStmts++
			ioWait += d.io + d.pin
			ioWall += d.wall
		}
		if fsyncFrac >= a.cfg.WaitDominance {
			fsyncStmts++
			fsyncWait += d.fsync
			fsyncWall += d.wall
		}
	}

	// The I/O and fsync classes aggregate across statements: they point
	// at shared resources (the pool, the log), so one recommendation
	// covers every statement stalling on them.
	if ioStmts > 0 && !hasKind(rep, KindBufferPool) {
		rep.Recommendations = append(rep.Recommendations, Recommendation{
			Kind: KindBufferPool,
			SQL:  "-- enlarge the buffer pool (live: Applier resizes; offline: engine.Config.PoolPages)",
			Reason: fmt.Sprintf("%d flagged statement(s) spent %.0f%% of their wall-clock waiting on page loads or pinned-pool backpressure",
				ioStmts, float64(ioWait)/float64(ioWall)*100),
			Score: float64(ioWait),
		})
	}
	if fsyncStmts > 0 {
		rep.Recommendations = append(rep.Recommendations, Recommendation{
			Kind: KindGroupCommit,
			SQL:  "-- widen the WAL group-commit window (storage.WALOptions.GroupCommitInterval)",
			Reason: fmt.Sprintf("%d flagged statement(s) spent %.0f%% of their wall-clock in commit fsync waits; a wider batching window amortizes them across more transactions",
				fsyncStmts, float64(fsyncWait)/float64(fsyncWall)*100),
			Score: float64(fsyncWait),
		})
	}
	return nil
}

// hasKind reports whether the report already carries a recommendation
// of the given kind (the hit-ratio rule may have recommended the pool
// enlargement first; one is enough).
func hasKind(rep *Report, k Kind) bool {
	for _, r := range rep.Recommendations {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// loadWaitDeltas differences each hash's earliest and latest ws_waits
// snapshots. A hash seen in a single poll keeps its cumulative values —
// for a freshly flagged statement that IS the interval since flagging.
func (a *Analyzer) loadWaitDeltas() ([]waitDelta, error) {
	s := a.cfg.WorkloadDB.NewSession()
	defer s.Close()
	res, err := s.Exec(`SELECT ts_us, hash, query_text, samples, wall_ns,
		exec_ns, lock_ns, io_ns, fsync_ns, pinwait_ns
		FROM ` + workloaddb.Waits + ` ORDER BY ts_us`)
	if err != nil {
		return nil, err
	}
	first := map[int64]waitDelta{}
	last := map[int64]waitDelta{}
	var order []int64
	for _, r := range res.Rows {
		d := waitDelta{
			hash: r[1].I, text: r[2].S, samples: r[3].I, wall: r[4].I,
			exec: r[5].I, lock: r[6].I, io: r[7].I, fsync: r[8].I, pin: r[9].I,
		}
		if _, ok := first[d.hash]; !ok {
			first[d.hash] = d
			order = append(order, d.hash)
		}
		last[d.hash] = d
	}
	out := make([]waitDelta, 0, len(order))
	for _, h := range order {
		f, l := first[h], last[h]
		d := l
		if f.samples < l.samples { // ≥2 snapshots: difference them
			d.samples = l.samples - f.samples
			d.wall = l.wall - f.wall
			d.exec = l.exec - f.exec
			d.lock = l.lock - f.lock
			d.io = l.io - f.io
			d.fsync = l.fsync - f.fsync
			d.pin = l.pin - f.pin
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].wall > out[j].wall })
	return out, nil
}
