package analyzer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/sqlparser"
)

// ActionState is a state of the apply state machine.
type ActionState string

// The states an action moves through: Proposed → Applying → Canary →
// Accepted | RolledBack, with Failed reachable from Applying (the
// change could not be executed) and from Canary (the rollback itself
// failed).
const (
	StateProposed   ActionState = "proposed"
	StateApplying   ActionState = "applying"
	StateCanary     ActionState = "canary"
	StateAccepted   ActionState = "accepted"
	StateRolledBack ActionState = "rolled-back"
	StateFailed     ActionState = "failed"
)

// ApplyConfig tunes the apply state machine.
type ApplyConfig struct {
	// CanaryWindow is how long the canary observes traffic before and
	// after applying an action (default 5s).
	CanaryWindow time.Duration
	// Quantile is the tail quantile the canary judges (default 0.95).
	Quantile float64
	// RegressThreshold rolls an action back when the observed quantile
	// exceeds baseline * (1 + RegressThreshold) (default 0.25).
	RegressThreshold float64
	// MinSamples is the minimum executions each canary window needs
	// before its verdict counts; with fewer the action is accepted with
	// an "insufficient samples" note — too little evidence to condemn
	// it (default 20).
	MinSamples int64
	// PoolGrowFactor sizes buffer-pool grow actions: new capacity =
	// current * factor (default 1.5).
	PoolGrowFactor float64
	// MaxHistory bounds the retained audit rows (default 1024; older
	// transitions are dropped oldest-first after the daemon had a poll
	// to persist them).
	MaxHistory int

	// Latency returns the cumulative wallclock latency histogram the
	// canary differences. Defaults to the source monitor's wall
	// snapshot; tests inject synthetic series here.
	Latency func() monitor.LatencyCounts
	// Sleep and Now are injectable for tests (default time.Sleep and
	// time.Now).
	Sleep func(time.Duration)
	Now   func() time.Time
	// Logf, when set, receives one line per state transition.
	Logf func(format string, args ...any)
}

// Applier executes recommendations through the canary/observe/rollback
// state machine and keeps the append-only audit trail that ima_actions
// and ws_actions expose. It is safe for concurrent use, but actions
// run sequentially within one ApplyOnline call so their canary windows
// do not overlap.
type Applier struct {
	a   *Analyzer
	cfg ApplyConfig

	mu      sync.Mutex
	applyMu sync.Mutex // serializes ApplyOnline runs (overlapping canaries measure each other)
	seq     int64
	nextID  int64
	history []ima.ActionRow

	accepted   atomic.Int64
	rolledBack atomic.Int64
	failed     atomic.Int64
}

// NewApplier builds the apply state machine on top of an Analyzer.
func (a *Analyzer) NewApplier(cfg ApplyConfig) *Applier {
	if cfg.CanaryWindow <= 0 {
		cfg.CanaryWindow = 5 * time.Second
	}
	if cfg.Quantile <= 0 || cfg.Quantile > 1 {
		cfg.Quantile = 0.95
	}
	if cfg.RegressThreshold <= 0 {
		cfg.RegressThreshold = 0.25
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 20
	}
	if cfg.PoolGrowFactor <= 1 {
		cfg.PoolGrowFactor = 1.5
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = 1024
	}
	if cfg.Latency == nil {
		mon := a.cfg.Source.Monitor()
		cfg.Latency = func() monitor.LatencyCounts {
			if mon == nil {
				return monitor.LatencyCounts{}
			}
			wall, _ := mon.SnapshotLatency()
			return wall
		}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Applier{a: a, cfg: cfg}
}

// ActionRows returns the audit trail (oldest first) for ima_actions
// and the daemon.
func (ap *Applier) ActionRows() []ima.ActionRow {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	out := make([]ima.ActionRow, len(ap.history))
	copy(out, ap.history)
	return out
}

// Stats returns the outcome counters (accepted, rolled back, failed).
func (ap *Applier) Stats() (accepted, rolledBack, failed int64) {
	return ap.accepted.Load(), ap.rolledBack.Load(), ap.failed.Load()
}

// action is the in-flight state of one recommendation being applied.
type action struct {
	id       int64
	kind     Kind
	target   string
	sql      string
	state    ActionState
	baseline time.Duration
	observed time.Duration
	deltaPct float64
	samples  int64
	detail   string

	rollback func() error // how to undo the applied change; nil = irreversible
}

// transition records a state change in the audit trail.
func (ap *Applier) transition(ac *action, state ActionState, detail string) {
	ac.state = state
	if detail != "" {
		ac.detail = detail
	}
	ap.mu.Lock()
	ap.seq++
	row := ima.ActionRow{
		Seq:      ap.seq,
		ActionID: ac.id,
		Kind:     string(ac.kind),
		Target:   ac.target,
		SQL:      ac.sql,
		State:    string(state),
		Baseline: ac.baseline.Microseconds(),
		Observed: ac.observed.Microseconds(),
		DeltaPct: ac.deltaPct,
		Samples:  ac.samples,
		AtUs:     ap.cfg.Now().UnixMicro(),
		Detail:   ac.detail,
	}
	ap.history = append(ap.history, row)
	if over := len(ap.history) - ap.cfg.MaxHistory; over > 0 {
		ap.history = append(ap.history[:0], ap.history[over:]...)
	}
	ap.mu.Unlock()
	if ap.cfg.Logf != nil {
		ap.cfg.Logf("analyzer: action %d [%s %s] -> %s %s", ac.id, ac.kind, ac.target, state, ac.detail)
	}
}

// observeWindow differences the cumulative latency histogram across
// one canary window and returns the configured quantile plus the
// sample count.
func (ap *Applier) observeWindow() (time.Duration, int64) {
	before := ap.cfg.Latency()
	ap.cfg.Sleep(ap.cfg.CanaryWindow)
	after := ap.cfg.Latency()
	var delta monitor.LatencyCounts
	for i := range delta {
		delta[i] = after[i] - before[i]
	}
	return delta.Quantile(ap.cfg.Quantile), delta.Total()
}

// ApplyOnline executes the recommendations of the given kinds (all
// executable kinds if none are named) through the state machine:
// observe a baseline window, apply, observe a canary window, then
// accept or automatically roll back actions whose tail quantile
// regressed beyond the threshold. Index builds run online (CREATE
// INDEX ... ONLINE) so the canary measures the workload, not a stalled
// workload; buffer-pool recommendations execute as live resizes.
// MODIFY and CREATE STATISTICS are applied directly with an audit
// record but no canary — a heap rebuild has no cheap rollback.
// Failures do not stop the remaining recommendations; they are counted
// and joined into the returned error.
func (ap *Applier) ApplyOnline(rep *Report, kinds ...Kind) error {
	ap.applyMu.Lock()
	defer ap.applyMu.Unlock()
	want := map[Kind]bool{}
	if len(kinds) == 0 {
		want[KindModify], want[KindIndex], want[KindStatistics], want[KindBufferPool] = true, true, true, true
	}
	for _, k := range kinds {
		want[k] = true
	}
	var errs []error
	order := []Kind{KindModify, KindIndex, KindBufferPool, KindStatistics}
	for _, k := range order {
		if !want[k] {
			continue
		}
		for _, rec := range rep.Recommendations {
			if rec.Kind != k {
				continue
			}
			if err := ap.applyOne(rec); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// applyOne drives a single recommendation through the state machine.
func (ap *Applier) applyOne(rec Recommendation) error {
	ap.mu.Lock()
	ap.nextID++
	id := ap.nextID
	ap.mu.Unlock()
	ac := &action{id: id, kind: rec.Kind, target: rec.Table, sql: rec.SQL}
	if rec.Kind == KindBufferPool {
		ac.target = "bufferpool"
	}
	ap.transition(ac, StateProposed, rec.Reason)

	canary := rec.Kind == KindIndex || rec.Kind == KindBufferPool
	if canary {
		// Baseline window before touching anything: the accept signal
		// is relative, not absolute.
		ac.baseline, ac.samples = ap.observeWindow()
	}

	ap.transition(ac, StateApplying, "")
	if err := ap.execute(ac, rec); err != nil {
		ap.failed.Add(1)
		ap.a.applyFailures.Add(1)
		ap.transition(ac, StateFailed, err.Error())
		return fmt.Errorf("analyzer: applying %q: %w", rec.SQL, err)
	}
	if !canary {
		ap.accepted.Add(1)
		ap.transition(ac, StateAccepted, "applied without canary")
		return nil
	}

	ap.transition(ac, StateCanary, "")
	baselineSamples := ac.samples
	observed, samples := ap.observeWindow()
	ac.observed, ac.samples = observed, samples
	if ac.baseline > 0 {
		ac.deltaPct = (float64(observed) - float64(ac.baseline)) / float64(ac.baseline) * 100
	}

	switch {
	case baselineSamples < ap.cfg.MinSamples || samples < ap.cfg.MinSamples:
		ap.accepted.Add(1)
		ap.transition(ac, StateAccepted, fmt.Sprintf(
			"insufficient canary evidence (%d baseline / %d observed samples, need %d); accepted",
			baselineSamples, samples, ap.cfg.MinSamples))
	case float64(observed) > float64(ac.baseline)*(1+ap.cfg.RegressThreshold):
		if ac.rollback != nil {
			if rerr := ac.rollback(); rerr != nil {
				ap.failed.Add(1)
				ap.a.applyFailures.Add(1)
				ap.transition(ac, StateFailed, fmt.Sprintf("p%.0f regressed %.1f%% but rollback failed: %v",
					ap.cfg.Quantile*100, ac.deltaPct, rerr))
				return fmt.Errorf("analyzer: rolling back %q: %w", rec.SQL, rerr)
			}
		}
		ap.rolledBack.Add(1)
		ap.transition(ac, StateRolledBack, fmt.Sprintf("p%.0f regressed %.1f%% (%v -> %v), beyond %.0f%% threshold",
			ap.cfg.Quantile*100, ac.deltaPct, ac.baseline, observed, ap.cfg.RegressThreshold*100))
	default:
		ap.accepted.Add(1)
		ap.transition(ac, StateAccepted, fmt.Sprintf("p%.0f delta %.1f%% (%v -> %v) within threshold",
			ap.cfg.Quantile*100, ac.deltaPct, ac.baseline, observed))
	}
	return nil
}

// execute applies the change and arms the rollback.
func (ap *Applier) execute(ac *action, rec Recommendation) error {
	db := ap.a.cfg.Source
	switch rec.Kind {
	case KindIndex:
		stmt, err := sqlparser.Parse(rec.SQL)
		if err != nil {
			return err
		}
		ci, ok := stmt.(*sqlparser.CreateIndexStmt)
		if !ok {
			return fmt.Errorf("recommendation SQL is not CREATE INDEX: %s", rec.SQL)
		}
		online := rec.SQL
		if !ci.Online {
			online += " ONLINE"
			ac.sql = online
		}
		s := db.NewSession()
		defer s.Close()
		if _, err := s.Exec(online); err != nil {
			return err
		}
		name := ci.Name
		ac.rollback = func() error {
			rs := db.NewSession()
			defer rs.Close()
			_, err := rs.Exec("DROP INDEX " + name)
			return err
		}
		return nil
	case KindBufferPool:
		oldCap := db.PoolCapacity()
		target := int(float64(oldCap) * ap.cfg.PoolGrowFactor)
		newCap := db.ResizePool(target)
		ac.sql = fmt.Sprintf("-- resize buffer pool %d -> %d pages", oldCap, newCap)
		ac.rollback = func() error {
			db.ResizePool(oldCap)
			return nil
		}
		return nil
	default: // KindModify, KindStatistics: plain SQL, no rollback
		s := db.NewSession()
		defer s.Close()
		_, err := s.Exec(rec.SQL)
		return err
	}
}
