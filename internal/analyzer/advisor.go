package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlparser"
)

// predUse records how a statement uses a column.
type predUse struct {
	table string
	col   string
	kind  string // "eq", "range", "join"
}

// candidate is one potential index.
type candidate struct {
	table  string
	cols   []string
	weight float64 // supporting executions
}

func (c candidate) key() string {
	return strings.ToLower(c.table) + "(" + strings.ToLower(strings.Join(c.cols, ",")) + ")"
}

// adviseIndexes generates index candidates from the workload, evaluates
// them with the optimizer's what-if mode (virtual indexes) and keeps a
// greedy set while total estimated workload cost keeps improving.
func (a *Analyzer) adviseIndexes(rep *Report) error {
	type stmtInfo struct {
		sc   *StmtCost
		stmt *sqlparser.SelectStmt
	}
	var stmts []stmtInfo
	cands := map[string]*candidate{}

	for i := range rep.Statements {
		sc := &rep.Statements[i]
		parsed, err := sqlparser.Parse(sc.Text)
		if err != nil {
			continue
		}
		sel, ok := parsed.(*sqlparser.SelectStmt)
		if !ok {
			continue
		}
		stmts = append(stmts, stmtInfo{sc: sc, stmt: sel})
		uses := a.extractUses(sel)
		weight := float64(sc.Executions)
		addCand := func(table string, cols ...string) {
			c := candidate{table: table, cols: cols, weight: weight}
			if a.coveredByRealIndex(table, cols) {
				return
			}
			if prev, ok := cands[c.key()]; ok {
				prev.weight += weight
			} else {
				cands[c.key()] = &c
			}
		}
		// Single-column candidates for every predicate column.
		perTable := map[string][]predUse{}
		for _, u := range uses {
			if u.kind == "other" {
				continue
			}
			addCand(u.table, u.col)
			perTable[u.table] = append(perTable[u.table], u)
		}
		// Two-column candidates: equality columns first.
		for table, us := range perTable {
			var eqs, ranges []string
			seen := map[string]bool{}
			for _, u := range us {
				if seen[u.kind+u.col] {
					continue
				}
				seen[u.kind+u.col] = true
				switch u.kind {
				case "eq", "join":
					eqs = append(eqs, u.col)
				case "range":
					ranges = append(ranges, u.col)
				}
			}
			sort.Strings(eqs)
			sort.Strings(ranges)
			for i := 0; i < len(eqs); i++ {
				for j := 0; j < len(eqs); j++ {
					if i != j {
						addCand(table, eqs[i], eqs[j])
					}
				}
				for _, rc := range ranges {
					if eqs[i] != rc {
						addCand(table, eqs[i], rc)
					}
				}
			}
		}
	}
	if len(stmts) == 0 || len(cands) == 0 {
		return nil
	}

	// Order candidates by support so evaluation is deterministic.
	ordered := make([]*candidate, 0, len(cands))
	for _, c := range cands {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].weight != ordered[j].weight {
			return ordered[i].weight > ordered[j].weight
		}
		return ordered[i].key() < ordered[j].key()
	})
	// Cap the evaluated pool: what-if planning costs one optimizer run
	// per (candidate, statement).
	const maxPool = 48
	if len(ordered) > maxPool {
		ordered = ordered[:maxPool]
	}

	sess := a.cfg.Source.NewSession()
	defer sess.Close()
	total := func(withVirtual bool) float64 {
		sum := 0.0
		for _, si := range stmts {
			plan, err := sess.Explain(si.sc.Text, withVirtual)
			if err != nil {
				continue
			}
			sum += plan.Est.Total() * float64(si.sc.Executions)
		}
		return sum
	}

	baseline := total(false)
	rep.BaselineEstCost = baseline
	current := total(true) // existing virtual indexes, if any
	if baseline < current {
		current = baseline
	}

	var tempNames []string
	defer func() {
		for _, n := range tempNames {
			sess.Exec("DROP INDEX IF EXISTS " + n)
		}
	}()

	var accepted []*candidate
	acceptedNames := make(map[string]string) // candidate key -> virtual index name
	for len(accepted) < a.cfg.MaxIndexes {
		var best *candidate
		bestCost := current
		for _, c := range ordered {
			if _, done := acceptedNames[c.key()]; done {
				continue
			}
			tmp := fmt.Sprintf("vax_tmp_%d", len(tempNames))
			ddl := fmt.Sprintf("CREATE VIRTUAL INDEX %s ON %s (%s)", tmp, c.table, strings.Join(c.cols, ", "))
			if _, err := sess.Exec(ddl); err != nil {
				continue
			}
			cost := total(true)
			sess.Exec("DROP INDEX " + tmp)
			if cost < bestCost {
				bestCost = cost
				best = c
			}
		}
		if best == nil || (current-bestCost)/(current+1e-9) < a.cfg.MinImprovement {
			break
		}
		name := fmt.Sprintf("vax_%d", len(accepted))
		ddl := fmt.Sprintf("CREATE VIRTUAL INDEX %s ON %s (%s)", name, best.table, strings.Join(best.cols, ", "))
		if _, err := sess.Exec(ddl); err != nil {
			break
		}
		tempNames = append(tempNames, name)
		acceptedNames[best.key()] = name
		accepted = append(accepted, best)
		current = bestCost
	}
	rep.WhatIfEstCost = current

	// Per-statement what-if estimates with the accepted virtual set in
	// place (for the Figure 6 cost diagram).
	for _, si := range stmts {
		if plan, err := sess.Explain(si.sc.Text, true); err == nil {
			si.sc.WhatIfCost = plan.Est.Total()
		}
	}

	for _, c := range accepted {
		name := fmt.Sprintf("ix_%s_%s", strings.ToLower(c.table), strings.ToLower(strings.Join(c.cols, "_")))
		rep.Recommendations = append(rep.Recommendations, Recommendation{
			Kind:    KindIndex,
			Table:   c.table,
			Columns: c.cols,
			SQL:     fmt.Sprintf("CREATE INDEX %s ON %s (%s)", name, c.table, strings.Join(c.cols, ", ")),
			Reason:  fmt.Sprintf("the optimizer chooses this index for the observed workload (supporting executions: %.0f)", c.weight),
			Score:   c.weight,
		})
	}
	return nil
}

// coveredByRealIndex reports whether an existing real index already has
// the candidate's columns as its leading prefix.
func (a *Analyzer) coveredByRealIndex(table string, cols []string) bool {
	for _, ix := range a.cfg.Source.Catalog().TableIndexes(table, false) {
		if len(ix.Columns) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if !strings.EqualFold(ix.Columns[i], c) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// extractUses walks a SELECT statement and records predicate columns
// per base table.
func (a *Analyzer) extractUses(st *sqlparser.SelectStmt) []predUse {
	cat := a.cfg.Source.Catalog()
	// alias (lower) -> table name
	aliases := map[string]string{}
	addRef := func(tr sqlparser.TableRef) {
		if cat.Table(tr.Name) != nil {
			aliases[strings.ToLower(tr.AliasOrName())] = strings.ToLower(tr.Name)
		}
	}
	for _, tr := range st.From {
		addRef(tr)
	}
	for _, j := range st.Joins {
		addRef(j.Table)
	}
	resolve := func(c sqlparser.ColumnRef) (string, string, bool) {
		if c.Table != "" {
			tbl, ok := aliases[strings.ToLower(c.Table)]
			if !ok {
				return "", "", false
			}
			meta := cat.Table(tbl)
			if meta == nil || meta.Schema.ColIndex(c.Name) < 0 {
				return "", "", false
			}
			return tbl, strings.ToLower(c.Name), true
		}
		found := ""
		for _, tbl := range aliases {
			if meta := cat.Table(tbl); meta != nil && meta.Schema.ColIndex(c.Name) >= 0 {
				if found != "" {
					return "", "", false // ambiguous
				}
				found = tbl
			}
		}
		if found == "" {
			return "", "", false
		}
		return found, strings.ToLower(c.Name), true
	}

	var conjuncts []sqlparser.Expr
	conjuncts = collectConjuncts(st.Where, conjuncts)
	for _, j := range st.Joins {
		conjuncts = collectConjuncts(j.Cond, conjuncts)
	}

	var uses []predUse
	isConst := func(e sqlparser.Expr) bool {
		ok := true
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) {
			if _, isCol := x.(sqlparser.ColumnRef); isCol {
				ok = false
			}
		})
		return ok
	}
	for _, c := range conjuncts {
		switch x := c.(type) {
		case sqlparser.BinaryExpr:
			lc, lok := x.Left.(sqlparser.ColumnRef)
			rc, rok := x.Right.(sqlparser.ColumnRef)
			switch {
			case lok && rok && x.Op == "=":
				if lt, lcol, ok := resolve(lc); ok {
					if rt, rcol, ok2 := resolve(rc); ok2 && lt != rt {
						uses = append(uses,
							predUse{table: lt, col: lcol, kind: "join"},
							predUse{table: rt, col: rcol, kind: "join"})
					}
				}
			case lok && isConst(x.Right):
				if t, col, ok := resolve(lc); ok {
					uses = append(uses, predUse{table: t, col: col, kind: opKind(x.Op)})
				}
			case rok && isConst(x.Left):
				if t, col, ok := resolve(rc); ok {
					uses = append(uses, predUse{table: t, col: col, kind: opKind(x.Op)})
				}
			}
		case sqlparser.BetweenExpr:
			if lc, ok := x.Expr.(sqlparser.ColumnRef); ok && !x.Not {
				if t, col, ok := resolve(lc); ok {
					uses = append(uses, predUse{table: t, col: col, kind: "range"})
				}
			}
		case sqlparser.InExpr:
			if lc, ok := x.Expr.(sqlparser.ColumnRef); ok && !x.Not {
				if t, col, ok := resolve(lc); ok {
					uses = append(uses, predUse{table: t, col: col, kind: "eq"})
				}
			}
		}
	}
	return uses
}

func opKind(op string) string {
	switch op {
	case "=":
		return "eq"
	case "<", "<=", ">", ">=":
		return "range"
	}
	return "other"
}

func collectConjuncts(e sqlparser.Expr, out []sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return out
	}
	if b, ok := e.(sqlparser.BinaryExpr); ok && b.Op == "AND" {
		out = collectConjuncts(b.Left, out)
		return collectConjuncts(b.Right, out)
	}
	return append(out, e)
}
