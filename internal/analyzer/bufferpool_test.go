package analyzer

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workloaddb"
)

// newStatsOnlyFixture builds an analyzer over a workload DB holding
// only a synthetic ws_statistics series (no statements), so the
// buffer-pool rule is judged in isolation.
func newStatsOnlyFixture(t *testing.T) (*Analyzer, *engine.DB) {
	t.Helper()
	dir := t.TempDir()
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	wdb, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { source.Close(); wdb.Close() })
	if err := workloaddb.EnsureSchema(wdb); err != nil {
		t.Fatal(err)
	}
	an, err := New(Config{Source: source, WorkloadDB: wdb})
	if err != nil {
		t.Fatal(err)
	}
	return an, wdb
}

// statSample is one synthetic ws_statistics poll: cumulative hit/miss/
// eviction/pin-wait counters.
type statSample struct {
	hits, misses, evictions, pinWaits int64
}

func insertStatSeries(t *testing.T, wdb *engine.DB, samples []statSample) {
	t.Helper()
	s := wdb.NewSession()
	defer s.Close()
	base := time.Now()
	for i, sm := range samples {
		ts := base.Add(time.Duration(i) * time.Minute).UnixMicro()
		// Columns: ts_us, current_sessions, peak_sessions, statements,
		// locks_held, lock_waits, deadlocks, cache_hits, cache_misses,
		// disk_reads, disk_writes, db_bytes, poll_errors, retries,
		// carryover_depth, alert_errors, cache_evictions, cache_resident,
		// pin_waits, wal_bytes, wal_fsyncs, redo_records, redo_nanos.
		if _, err := s.Exec(fmt.Sprintf(
			"INSERT INTO %s VALUES (%d, 1, 1, %d, 0, 0, 0, %d, %d, %d, 0, 0, 0, 0, 0, 0, %d, 64, %d, 0, 0, 0, 0, 0, 0, 0, 0)",
			workloaddb.Statistics, ts, int64(i)*10,
			sm.hits, sm.misses, sm.misses, sm.evictions, sm.pinWaits)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBufferPoolRuleFires(t *testing.T) {
	an, wdb := newStatsOnlyFixture(t)
	// Three intervals, each with 1000 requests at a 70% hit ratio and
	// active eviction — a working set that clearly does not fit.
	insertStatSeries(t, wdb, []statSample{
		{hits: 0, misses: 0, evictions: 0, pinWaits: 0},
		{hits: 700, misses: 300, evictions: 250, pinWaits: 2},
		{hits: 1400, misses: 600, evictions: 500, pinWaits: 4},
		{hits: 2100, misses: 900, evictions: 750, pinWaits: 4},
	})
	rep, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var rec *Recommendation
	for i := range rep.Recommendations {
		if rep.Recommendations[i].Kind == KindBufferPool {
			rec = &rep.Recommendations[i]
		}
	}
	if rec == nil {
		t.Fatalf("no %s recommendation; got %+v", KindBufferPool, rep.Recommendations)
	}
	if !strings.Contains(rec.Reason, "hit-ratio") || !strings.Contains(rec.Reason, "pin wait") {
		t.Errorf("reason lacks detail: %q", rec.Reason)
	}
	if rec.Score <= 0 {
		t.Errorf("score = %v, want > 0 (miss volume)", rec.Score)
	}
	if !strings.Contains(rep.String(), "configuration changes (manual)") {
		t.Error("report rendering omits the buffer-pool section")
	}
	// Report-level only: Apply must never execute the pseudo-SQL.
	if err := an.Apply(rep); err != nil {
		t.Errorf("Apply tried to execute the report-level recommendation: %v", err)
	}
}

func TestBufferPoolRuleColdCacheDoesNotFire(t *testing.T) {
	an, wdb := newStatsOnlyFixture(t)
	// Low hit ratio but zero evictions: a cold cache filling up, not
	// pressure.
	insertStatSeries(t, wdb, []statSample{
		{hits: 0, misses: 0},
		{hits: 200, misses: 800},
		{hits: 400, misses: 1600},
	})
	rep, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Recommendations {
		if r.Kind == KindBufferPool {
			t.Fatalf("rule fired on a cold cache: %+v", r)
		}
	}
}

func TestBufferPoolRuleHealthyAndQuietDoNotFire(t *testing.T) {
	an, wdb := newStatsOnlyFixture(t)
	// One healthy interval (97% hits, some evictions) and one below
	// threshold but far too quiet to judge (10 requests).
	insertStatSeries(t, wdb, []statSample{
		{hits: 0, misses: 0, evictions: 0},
		{hits: 970, misses: 30, evictions: 30},
		{hits: 975, misses: 35, evictions: 35},
	})
	rep, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Recommendations {
		if r.Kind == KindBufferPool {
			t.Fatalf("rule fired on a healthy pool: %+v", r)
		}
	}
}
