package analyzer

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sqltypes"
	"repro/internal/workloaddb"
)

func rowsFor(points [][2]float64) []sqltypes.Row {
	out := make([]sqltypes.Row, len(points))
	for i, p := range points {
		out[i] = sqltypes.Row{
			sqltypes.NewInt(int64(p[0] * 3.6e9)), // hours -> micros
			sqltypes.NewFloat(p[1]),
		}
	}
	return out
}

func TestFitTrendLinear(t *testing.T) {
	// y = 10 + 5x, exact.
	tr := fitTrend("m", rowsFor([][2]float64{{0, 10}, {1, 15}, {2, 20}, {3, 25}}))
	if tr.PerHour < 4.99 || tr.PerHour > 5.01 {
		t.Errorf("slope = %v", tr.PerHour)
	}
	if tr.R2 < 0.999 {
		t.Errorf("R2 = %v", tr.R2)
	}
	if tr.Current != 25 {
		t.Errorf("current = %v", tr.Current)
	}
	when, ok := tr.PredictCrossing(50)
	if !ok {
		t.Fatal("no crossing predicted")
	}
	want := tr.Last.Add(5 * time.Hour) // (50-25)/5
	if d := when.Sub(want); d < -time.Minute || d > time.Minute {
		t.Errorf("crossing at %v, want %v", when, want)
	}
}

func TestFitTrendFlatAndNoisy(t *testing.T) {
	flat := fitTrend("m", rowsFor([][2]float64{{0, 7}, {1, 7}, {2, 7}}))
	if _, ok := flat.PredictCrossing(10); ok {
		t.Error("flat series predicted a crossing")
	}
	// Already above threshold in a decreasing series: no future crossing.
	down := fitTrend("m", rowsFor([][2]float64{{0, 30}, {1, 20}, {2, 10}}))
	if _, ok := down.PredictCrossing(40); ok {
		t.Error("decreasing series predicted an upward crossing")
	}
	// Pure noise: R2 too low for predictions.
	noise := fitTrend("m", rowsFor([][2]float64{{0, 0}, {1, 100}, {2, 3}, {3, 97}, {4, 1}}))
	if _, ok := noise.PredictCrossing(1000); ok && noise.R2 < 0.5 {
		t.Errorf("noisy series (R2=%v) predicted a crossing", noise.R2)
	}
}

func TestTrendsOverWorkloadDB(t *testing.T) {
	f := newFixture(t, 300)
	// Insert a synthetic, strongly increasing db_bytes series after
	// the fixture's real daemon sample so the series stays monotonic.
	s := f.wdb.NewSession()
	base := time.Now().Add(time.Hour)
	for i := 0; i < 6; i++ {
		ts := base.Add(time.Duration(i) * 30 * time.Minute).UnixMicro()
		if _, err := s.Exec(fmt.Sprintf(
			"INSERT INTO %s VALUES (%d, 1, 1, %d, 0, 0, 0, 0, 0, 0, 0, %d, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)",
			workloaddb.Statistics, ts, 100*(i+1), 1000000*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	trends, err := f.an.Trends()
	if err != nil {
		t.Fatal(err)
	}
	var dbBytes *Trend
	for i := range trends {
		if trends[i].Metric == "db_bytes" {
			dbBytes = &trends[i]
		}
	}
	if dbBytes == nil {
		t.Fatal("no db_bytes trend")
	}
	if dbBytes.PerHour < 1e6 {
		t.Errorf("db_bytes slope = %v", dbBytes.PerHour)
	}
	when, ok := dbBytes.PredictCrossing(20e6)
	if !ok {
		t.Fatal("no crossing predicted for a growing series")
	}
	if when.Before(dbBytes.Last) {
		t.Errorf("crossing in the past: %v", when)
	}
	if dbBytes.String() == "" {
		t.Error("empty rendering")
	}
}
