package analyzer

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workloaddb"
)

// mvccSample is one synthetic ws_mvcc poll. Only the columns the rule
// reads get knobs; the rest are filled with plausible constants.
type mvccSample struct {
	conflicts int64 // cumulative write_conflicts
	oldestNs  int64 // oldest_snapshot_ns gauge
}

func insertMvccSeries(t *testing.T, wdb *engine.DB, samples []mvccSample) {
	t.Helper()
	s := wdb.NewSession()
	defer s.Close()
	base := time.Now()
	for i, sm := range samples {
		ts := base.Add(time.Duration(i) * time.Minute).UnixMicro()
		// Columns: ts_us, txn_begins, txn_commits, txn_aborts,
		// write_conflicts, inflight_txns, active_snapshots, aborted_ids,
		// oldest_snapshot_ns, vacuum_runs, vacuum_reclaimed,
		// vacuum_cleared, retired_ids, chain_len_p95.
		if _, err := s.Exec(fmt.Sprintf(
			"INSERT INTO %s VALUES (%d, %d, %d, %d, %d, 1, 1, 0, %d, %d, 0, 0, 0, 1)",
			workloaddb.Mvcc, ts, 100*int64(i+1), 90*int64(i+1), sm.conflicts,
			sm.conflicts, sm.oldestNs, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMvccRulesSilentWithoutData(t *testing.T) {
	an, _ := newStatsOnlyFixture(t)
	rep, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(recsOf(rep, KindMvccSnapshot)) + len(recsOf(rep, KindMvccConflict)); n != 0 {
		t.Fatalf("empty ws_mvcc produced %d MVCC recommendation(s)", n)
	}
}

func TestMvccRulesQuietBelowThresholds(t *testing.T) {
	an, wdb := newStatsOnlyFixture(t)
	// 3 conflicts over the interval (< MinWriteConflicts 5) and a 2s
	// oldest snapshot (< MaxSnapshotAge 60s): healthy, no advisories.
	insertMvccSeries(t, wdb, []mvccSample{
		{conflicts: 10, oldestNs: 0},
		{conflicts: 13, oldestNs: 2 * int64(time.Second)},
	})
	rep, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(recsOf(rep, KindMvccSnapshot)) + len(recsOf(rep, KindMvccConflict)); n != 0 {
		t.Fatalf("healthy series produced %d MVCC recommendation(s): %+v", n, rep.Recommendations)
	}
}

func TestMvccSnapshotRuleFires(t *testing.T) {
	// The gauge is instantaneous: only the LAST poll matters. An old
	// spike that has since resolved must not fire.
	oldSpike := 90 * int64(time.Second)
	an, wdb := newStatsOnlyFixture(t)
	insertMvccSeries(t, wdb, []mvccSample{
		{conflicts: 0, oldestNs: oldSpike},
		{conflicts: 0, oldestNs: 1 * int64(time.Second)},
	})
	rep, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(recsOf(rep, KindMvccSnapshot)); n != 0 {
		t.Fatalf("resolved snapshot spike still produced %d advisory(ies)", n)
	}

	// Now a series whose latest poll itself pins a 90s snapshot.
	an, wdb = newStatsOnlyFixture(t)
	insertMvccSeries(t, wdb, []mvccSample{
		{conflicts: 0, oldestNs: 1 * int64(time.Second)},
		{conflicts: 0, oldestNs: oldSpike},
	})
	rep, err = an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	recs := recsOf(rep, KindMvccSnapshot)
	if len(recs) != 1 {
		t.Fatalf("got %d snapshot advisories, want 1: %+v", len(recs), rep.Recommendations)
	}
	if !strings.Contains(recs[0].Reason, "90.0s") {
		t.Fatalf("reason does not report the snapshot age: %q", recs[0].Reason)
	}
	if recs[0].Score != float64(oldSpike) {
		t.Fatalf("score = %v, want %v", recs[0].Score, float64(oldSpike))
	}
}

func TestMvccConflictRuleFiresAndRanksHotStatements(t *testing.T) {
	an, wdb := newStatsOnlyFixture(t)
	// The advisory's Table field is resolved against the source catalog,
	// so the contended table must exist there.
	src := an.cfg.Source.NewSession()
	if _, err := src.Exec("CREATE TABLE accounts (id INTEGER PRIMARY KEY, bal INTEGER)"); err != nil {
		t.Fatal(err)
	}
	src.Close()
	// Conflicts are counters: the rule differences last-first, so a
	// large absolute value with no growth must stay quiet — covered by
	// the QuietBelowThresholds case above (10 -> 13). Here the interval
	// gains 8 conflicts (>= 5).
	insertMvccSeries(t, wdb, []mvccSample{
		{conflicts: 40, oldestNs: 0},
		{conflicts: 48, oldestNs: 0},
	})

	// Two write statements and one SELECT with errors: the UPDATE loses
	// most often, the SELECT must be ignored despite erroring the most.
	s := wdb.NewSession()
	ts := time.Now().UnixMicro()
	stmts := []struct {
		hash int64
		text string
		kind string
		errs int
	}{
		{hash: 1, text: "UPDATE accounts SET bal = bal - 1 WHERE id = 7", kind: "UPDATE", errs: 6},
		{hash: 2, text: "DELETE FROM accounts WHERE id = 9", kind: "DELETE", errs: 2},
		{hash: 3, text: "SELECT * FROM accounts", kind: "SELECT", errs: 9},
	}
	for _, st := range stmts {
		if _, err := s.Exec(fmt.Sprintf(
			"INSERT INTO %s VALUES (%d, %d, '%s', '%s', %d, %d, %d)",
			workloaddb.Statements, ts, st.hash, st.text, st.kind, int64(st.errs), ts, ts)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < st.errs; i++ {
			if _, err := s.Exec(fmt.Sprintf(
				"INSERT INTO %s VALUES (%d, %d, %d, 100, 10, 50, 50, 1.0, 1.0, 1.0, 0, 10, 1)",
				workloaddb.Workload, ts, st.hash, ts)); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()

	rep, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	recs := recsOf(rep, KindMvccConflict)
	if len(recs) != 1 {
		t.Fatalf("got %d conflict advisories, want 1: %+v", len(recs), rep.Recommendations)
	}
	r := recs[0]
	if !strings.Contains(r.Reason, "8 first-updater-wins") {
		t.Fatalf("reason does not report the differenced count: %q", r.Reason)
	}
	// The UPDATE (6 errors) must be ranked ahead of the DELETE (2); the
	// SELECT (9 errors) must not appear at all.
	up := strings.Index(r.Reason, "UPDATE accounts")
	del := strings.Index(r.Reason, "DELETE FROM accounts")
	if up < 0 || del < 0 || up > del {
		t.Fatalf("hot-statement ranking wrong in reason: %q", r.Reason)
	}
	if strings.Contains(r.Reason, "SELECT") {
		t.Fatalf("read statement ranked as conflict-hot: %q", r.Reason)
	}
	if r.Table != "accounts" {
		t.Fatalf("advisory table = %q, want accounts (from the hottest statement)", r.Table)
	}
}
