package executor

import (
	"testing"

	"repro/internal/sqltypes"
)

func intRows(n int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i * 2))}
	}
	return rows
}

// countingRowIter wraps SliceRowIter and counts Next calls after
// exhaustion — the EOF-latch regression check for RowsToBatch.
type countingRowIter struct {
	SliceRowIter
	callsAfterEOF int
	eof           bool
}

func (it *countingRowIter) Next() (sqltypes.Row, bool, error) {
	if it.eof {
		it.callsAfterEOF++
	}
	row, ok, err := it.SliceRowIter.Next()
	if !ok {
		it.eof = true
	}
	return row, ok, err
}

func TestRowsToBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, BatchSize - 1, BatchSize, BatchSize + 1, 3 * BatchSize} {
		want := intRows(n)
		src := &countingRowIter{SliceRowIter: SliceRowIter{Rows: want}}
		got, err := CollectBatches(RowsToBatch(src))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d rows", n, len(got))
		}
		for i := range got {
			if got[i][0].I != want[i][0].I || got[i][1].I != want[i][1].I {
				t.Fatalf("n=%d: row %d = %v, want %v", n, i, got[i], want[i])
			}
		}
		if src.callsAfterEOF != 0 {
			t.Errorf("n=%d: %d Next calls after EOF (adapter must latch exhaustion)", n, src.callsAfterEOF)
		}
	}
}

func TestBatchToRowsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, BatchSize, 2*BatchSize + 7} {
		want := intRows(n)
		got, err := Collect(BatchToRows(&SliceRowIter{Rows: want}))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d rows", n, len(got))
		}
		for i := range got {
			if got[i][0].I != want[i][0].I {
				t.Fatalf("n=%d: row %d = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestRowArenaStability verifies carved rows are never clobbered by
// later arena appends, across chunk growth boundaries.
func TestRowArenaStability(t *testing.T) {
	var arena RowArena
	var carved []sqltypes.Row
	for i := 0; i < 5000; i++ {
		carved = append(carved, arena.Combine(
			sqltypes.Row{sqltypes.NewInt(int64(i))},
			sqltypes.Row{sqltypes.NewInt(int64(-i)), sqltypes.NewText("x")}))
	}
	for i, r := range carved {
		if len(r) != 3 || r[0].I != int64(i) || r[1].I != int64(-i) || r[2].S != "x" {
			t.Fatalf("carved row %d corrupted: %v", i, r)
		}
	}
}

func TestSliceRowIterBatches(t *testing.T) {
	it := &SliceRowIter{Rows: intRows(BatchSize + 5)}
	var b Batch
	ok, err := it.NextBatch(&b)
	if err != nil || !ok || len(b.Rows) != BatchSize {
		t.Fatalf("first batch: ok=%v err=%v len=%d", ok, err, len(b.Rows))
	}
	ok, _ = it.NextBatch(&b)
	if !ok || len(b.Rows) != 5 {
		t.Fatalf("second batch: ok=%v len=%d", ok, len(b.Rows))
	}
	ok, _ = it.NextBatch(&b)
	if ok || len(b.Rows) != 0 {
		t.Fatalf("after exhaustion: ok=%v len=%d", ok, len(b.Rows))
	}
}
