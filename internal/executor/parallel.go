package executor

// Morsel-driven intra-query parallelism (Leis et al., SIGMOD 2013
// adapted to this engine's batch pipeline): a parallel-safe
// Agg(SeqScan) subtree partitions the table's heap pages into
// fixed-size morsels handed out by a shared atomic dispenser. Each
// worker drives its own copy of the serial machinery — page-range
// batch scan, MVCC visibility against the statement snapshot captured
// once, vectorized filter, partial aggregation in a private arena —
// over the morsels it claims. A single merge step then combines the
// partial aggregation states and hands the unchanged upstream
// operators one materialized result, exactly as the serial path would.
//
// Safety rests on three properties of the existing code: compiled
// expressions are immutable and evaluate through per-worker Envs, the
// statement snapshot is read-only and lock-free, and each page-range
// scan pins and latches independently, so workers share no mutable
// state except the dispenser and the stop flag.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/sqltypes"
)

// MorselPages is the number of heap pages one morsel covers. Small
// enough that a table worth parallelizing yields many times more
// morsels than workers (the dispenser balances skew), large enough
// that claiming one amortizes the atomic increment.
const MorselPages = 64

// maxMorselWorkers bounds the fan-out regardless of the session knob.
const maxMorselWorkers = 64

// MorselSource enumerates one table's heap pages and opens independent
// page-range scans over them.
type MorselSource interface {
	// Pages returns the table's page count at open time; morsels
	// partition [0, Pages). Pages appended afterwards belong to versions
	// the statement snapshot cannot see anyway.
	Pages() uint32
	// ScanRange opens a batch scan confined to heap pages [lo, hi).
	// Every returned iterator is independent — driven and closed by
	// exactly one worker goroutine — and applies the same snapshot
	// visibility as a full-table scan.
	ScanRange(lo, hi uint32) (RowBatchIter, error)
}

// MorselStorage is optionally implemented by Storage backends that can
// partition a base-table scan into page-range morsels. ok=false (with
// nil error) means the table cannot be morsel-scanned — virtual
// tables, for instance — and the caller falls back to the serial path.
type MorselStorage interface {
	MorselTable(name string) (MorselSource, bool, error)
}

// openBatchParallel runs the scan→filter→partial-agg pipeline across
// morsel workers and merges the partial states. handled=false means
// the plan shape, storage backend, session knob or table size keeps
// the query on the serial path (which the caller then takes); with
// handled=true the result or error is final.
func (c *aggC) openBatchParallel(rt *runtime) (_ RowBatchIter, handled bool, _ error) {
	if c.scan == nil || rt.ctx.Parallel <= 1 {
		return nil, false, nil
	}
	ms, ok := rt.st.(MorselStorage)
	if !ok {
		return nil, false, nil
	}
	src, ok, err := ms.MorselTable(c.scan.table)
	if err != nil {
		return nil, true, err
	}
	if !ok || src == nil {
		return nil, false, nil
	}
	pages := src.Pages()
	nMorsels := int((uint64(pages) + MorselPages - 1) / MorselPages)
	if nMorsels < 2 {
		// A single morsel cannot fan out; the serial path skips the
		// goroutine round-trip, which keeps small scans regression-free.
		return nil, false, nil
	}
	workers := rt.ctx.Parallel
	if workers > nMorsels {
		workers = nMorsels
	}
	if workers > maxMorselWorkers {
		workers = maxMorselWorkers
	}

	var (
		next     atomic.Uint32 // the morsel dispenser
		stop     atomic.Bool   // first failure cancels every worker
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	// partial is one worker's contribution, written only by that worker
	// until wg.Wait establishes the happens-before edge to the merger.
	type partial struct {
		run      *aggRun
		tuples   int64 // raw scanned rows (filter-input accounting)
		filtered int64 // rows that reached the aggregate
		nanos    int64 // worker wall time
	}
	parts := make([]partial, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(p *partial) {
			defer wg.Done()
			// Workers share no mutable state: each gets its own tuple
			// counter, expression Env, scan iterators and agg arena.
			wctx := &Ctx{Params: rt.ctx.Params}
			run := c.newRunParams(wctx.Params)
			p.run = run
			t0 := time.Now()
			defer func() {
				p.nanos = time.Since(t0).Nanoseconds()
				p.tuples = wctx.Tuples
			}()
			var b Batch
			for !stop.Load() {
				m := next.Add(1) - 1
				if m >= uint32(nMorsels) {
					return
				}
				lo := m * MorselPages
				hi := lo + MorselPages
				if hi > pages {
					hi = pages
				}
				it, err := src.ScanRange(lo, hi)
				if err != nil {
					fail(err)
					return
				}
				var in RowBatchIter
				if c.scan.filter != nil {
					in = &filterBatchIter{in: it, pred: c.scan.filter,
						env: expr.Env{Params: wctx.Params}, ctx: wctx}
				} else {
					in = &countingBatchIter{in: it, ctx: wctx}
				}
				run.ordBase = uint64(m) << 32
				run.ordCount = 0
				err = func() error {
					// The deferred Close releases the morsel's page pins
					// and heap latch on every exit path, including
					// cancellation between batches.
					defer in.Close()
					for !stop.Load() {
						ok, err := in.NextBatch(&b)
						if err != nil {
							return err
						}
						if !ok {
							return nil
						}
						p.filtered += int64(len(b.Rows))
						for _, row := range b.Rows {
							if err := run.addRow(row); err != nil {
								return err
							}
						}
					}
					return nil
				}()
				if err != nil {
					fail(err)
					return
				}
			}
		}(&parts[w])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, true, firstErr
	}

	merged := c.newRunParams(rt.ctx.Params)
	var totalFiltered, sumNanos, maxNanos int64
	for i := range parts {
		p := &parts[i]
		// Tuple accounting matches the serial path exactly: every raw
		// scanned row (filter input) plus every row the aggregate saw.
		rt.ctx.Tuples += p.tuples + p.filtered
		totalFiltered += p.filtered
		sumNanos += p.nanos
		if p.nanos > maxNanos {
			maxNanos = p.nanos
		}
		merged.merge(p.run)
	}
	merged.sortByFirstSeen()
	rt.ctx.Morsels += int64(nMorsels)
	rt.ctx.WorkerNanos += sumNanos
	rt.ctx.ParallelRuns++
	if tr := rt.ctx.Trace; tr != nil {
		// The per-worker span counters aggregate into one per-operator
		// actual for the scan: rows and calls exactly what the serial
		// spanBatchIter would record (N rows, N+1 calls), wall clamped to
		// the slowest worker rather than summed across workers.
		sc := &tr.Counts[c.scanSpanID]
		sc.Rows += totalFiltered
		sc.Calls += totalFiltered + 1
		sc.Nanos += maxNanos
	}
	rows, err := merged.rows()
	if err != nil {
		return nil, true, err
	}
	return &SliceRowIter{Rows: rows}, true, nil
}

// merge folds a worker's partial run into the receiver. Iterating
// src.order (never the map) keeps the fold deterministic per worker;
// cross-worker determinism of the output order comes from firstOrd.
func (r *aggRun) merge(src *aggRun) {
	if src == nil {
		return
	}
	if src.sawRow {
		r.sawRow = true
	}
	for _, key := range src.order {
		st := src.groups[key]
		if dst, ok := r.groups[key]; ok {
			r.c.mergeState(dst, st)
		} else {
			r.groups[key] = st
			r.order = append(r.order, key)
		}
	}
}

// mergeState combines two partial aggregation states for the same
// group: counts and sums add, intOnly ands, MIN/MAX compare, and the
// first-seen ordinal keeps its minimum. DISTINCT seen-sets cannot be
// merged without double counting, which is why the optimizer never
// marks a DISTINCT aggregate parallel-safe.
func (c *aggC) mergeState(dst, src *aggState) {
	for i, a := range c.aggs {
		dst.count[i] += src.count[i]
		dst.sum[i] += src.sum[i]
		dst.sumI[i] += src.sumI[i]
		dst.intOnly[i] = dst.intOnly[i] && src.intOnly[i]
		if src.hasMM[i] {
			if !dst.hasMM[i] ||
				(a.fn == "MIN" && sqltypes.Compare(src.minMax[i], dst.minMax[i]) < 0) ||
				(a.fn == "MAX" && sqltypes.Compare(src.minMax[i], dst.minMax[i]) > 0) {
				dst.minMax[i] = src.minMax[i]
				dst.hasMM[i] = true
			}
		}
	}
	if src.firstOrd < dst.firstOrd {
		dst.firstOrd = src.firstOrd
	}
}

// sortByFirstSeen restores the serial first-seen group order after a
// parallel merge: ordinals are morsel-major and scan-ordered within a
// morsel, so sorting by them reproduces exactly the order a single
// front-to-back scan would have born the groups in.
func (r *aggRun) sortByFirstSeen() {
	sort.Slice(r.order, func(i, j int) bool {
		return r.groups[r.order[i]].firstOrd < r.groups[r.order[j]].firstOrd
	})
}
