package executor

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// memStorage is an in-memory executor.Storage for direct operator
// tests. Index entries are sorted lazily per call.
type memStorage struct {
	tables  map[string][]sqltypes.Row
	indexes map[string]memIndex // name -> index over a table
	primary map[string]memIndex // table -> primary index
}

type memIndex struct {
	table string
	cols  []int // column offsets forming the key
}

func (m *memStorage) ScanTable(name string) (RowIter, error) {
	rows, ok := m.tables[name]
	if !ok {
		return nil, fmt.Errorf("mem: no table %q", name)
	}
	return &SliceRowIter{Rows: rows}, nil
}

func (m *memStorage) rangeOver(idx memIndex, lo, hi []byte) (RowIter, error) {
	var out []sqltypes.Row
	for _, row := range m.tables[idx.table] {
		var key []byte
		for _, c := range idx.cols {
			key = sqltypes.EncodeKey(key, row[c])
		}
		if bytes.Compare(key, lo) >= 0 && bytes.Compare(key, hi) < 0 {
			out = append(out, row)
		}
	}
	return &SliceRowIter{Rows: out}, nil
}

func (m *memStorage) IndexRange(table, index string, lo, hi []byte) (RowIter, error) {
	idx, ok := m.indexes[index]
	if !ok {
		return nil, fmt.Errorf("mem: no index %q", index)
	}
	return m.rangeOver(idx, lo, hi)
}

func (m *memStorage) PrimaryRange(table string, lo, hi []byte) (RowIter, error) {
	idx, ok := m.primary[table]
	if !ok {
		return nil, fmt.Errorf("mem: no primary on %q", table)
	}
	return m.rangeOver(idx, lo, hi)
}

func newMemStorage() *memStorage {
	m := &memStorage{
		tables:  map[string][]sqltypes.Row{},
		indexes: map[string]memIndex{},
		primary: map[string]memIndex{},
	}
	// users(id, name, dept)
	for i := 0; i < 100; i++ {
		m.tables["users"] = append(m.tables["users"], sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewText(fmt.Sprintf("user%02d", i)),
			sqltypes.NewInt(int64(i % 5)),
		})
	}
	// depts(dept, title)
	for i := 0; i < 5; i++ {
		m.tables["depts"] = append(m.tables["depts"], sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewText(fmt.Sprintf("dept-%d", i)),
		})
	}
	m.primary["users"] = memIndex{table: "users", cols: []int{0}}
	m.indexes["ix_dept"] = memIndex{table: "users", cols: []int{2}}
	return m
}

func usersCols() []optimizer.OutCol {
	return []optimizer.OutCol{
		{Table: "u", Name: "id", Type: sqltypes.Int},
		{Table: "u", Name: "name", Type: sqltypes.Text},
		{Table: "u", Name: "dept", Type: sqltypes.Int},
	}
}

func deptsCols() []optimizer.OutCol {
	return []optimizer.OutCol{
		{Table: "d", Name: "dept", Type: sqltypes.Int},
		{Table: "d", Name: "title", Type: sqltypes.Text},
	}
}

func whereOf(t *testing.T, cond string) sqlparser.Expr {
	t.Helper()
	st, err := sqlparser.Parse("SELECT * FROM x WHERE " + cond)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqlparser.SelectStmt).Where
}

func runPlan(t *testing.T, root optimizer.Node, params []sqltypes.Value) []sqltypes.Row {
	t.Helper()
	prep, err := Compile(&optimizer.Plan{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Params: params}
	it, err := prep.Run(newMemStorage(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Tuples == 0 && len(rows) > 0 {
		t.Error("actual-CPU counter not advanced")
	}
	return rows
}

func TestSeqScanWithFilter(t *testing.T) {
	scan := &optimizer.SeqScan{
		Table: "users", Alias: "u", Cols: usersCols(),
		Filter: whereOf(t, "dept = 3"),
	}
	rows := runPlan(t, scan, nil)
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	for _, r := range rows {
		if r[2].I != 3 {
			t.Errorf("filter leak: %v", r)
		}
	}
}

func TestIndexScanEqAndRange(t *testing.T) {
	eq := &optimizer.IndexScan{
		Table: "users", Alias: "u", Index: "ix_dept", Cols: usersCols(),
		Eq: []sqlparser.Expr{sqlparser.Literal{Val: sqltypes.NewInt(2)}},
	}
	rows := runPlan(t, eq, nil)
	if len(rows) != 20 {
		t.Fatalf("eq probe rows = %d", len(rows))
	}

	// Range on the primary: 10 <= id <= 19.
	rng := &optimizer.IndexScan{
		Table: "users", Alias: "u", Primary: true, Cols: usersCols(),
		Lo: sqlparser.Literal{Val: sqltypes.NewInt(10)}, LoIncl: true,
		Hi: sqlparser.Literal{Val: sqltypes.NewInt(19)}, HiIncl: true,
	}
	rows = runPlan(t, rng, nil)
	if len(rows) != 10 {
		t.Fatalf("range rows = %d, want 10", len(rows))
	}

	// Exclusive bounds.
	rng.LoIncl, rng.HiIncl = false, false
	rows = runPlan(t, rng, nil)
	if len(rows) != 8 {
		t.Fatalf("exclusive range rows = %d, want 8", len(rows))
	}

	// NULL probe matches nothing.
	eq.Eq = []sqlparser.Expr{sqlparser.Literal{Val: sqltypes.NullValue()}}
	rows = runPlan(t, eq, nil)
	if len(rows) != 0 {
		t.Fatalf("NULL probe rows = %d", len(rows))
	}
}

func joinTree(t *testing.T) (*optimizer.SeqScan, *optimizer.SeqScan) {
	left := &optimizer.SeqScan{Table: "users", Alias: "u", Cols: usersCols()}
	right := &optimizer.SeqScan{Table: "depts", Alias: "d", Cols: deptsCols()}
	return left, right
}

func TestHashJoin(t *testing.T) {
	left, right := joinTree(t)
	j := &optimizer.HashJoin{
		Left: left, Right: right,
		LeftKeys:  []sqlparser.Expr{sqlparser.ColumnRef{Table: "u", Name: "dept"}},
		RightKeys: []sqlparser.Expr{sqlparser.ColumnRef{Table: "d", Name: "dept"}},
	}
	rows := runPlan(t, j, nil)
	if len(rows) != 100 {
		t.Fatalf("join rows = %d, want 100", len(rows))
	}
	if len(rows[0]) != 5 {
		t.Fatalf("combined width = %d", len(rows[0]))
	}
	// Residual condition filters pairs.
	j.Residual = whereOf(t, "u.id < 10")
	rows = runPlan(t, j, nil)
	if len(rows) != 10 {
		t.Fatalf("residual rows = %d", len(rows))
	}
}

func TestLoopJoinCross(t *testing.T) {
	left, right := joinTree(t)
	j := &optimizer.LoopJoin{Left: left, Right: right}
	rows := runPlan(t, j, nil)
	if len(rows) != 500 {
		t.Fatalf("cross rows = %d", len(rows))
	}
	j.Cond = whereOf(t, "u.dept = d.dept")
	rows = runPlan(t, j, nil)
	if len(rows) != 100 {
		t.Fatalf("theta rows = %d", len(rows))
	}
}

func TestIndexJoin(t *testing.T) {
	right := &optimizer.SeqScan{Table: "depts", Alias: "d", Cols: deptsCols()}
	j := &optimizer.IndexJoin{
		Left: right, Table: "users", Alias: "u", Index: "ix_dept", Cols: usersCols(),
		LeftKeys: []sqlparser.Expr{sqlparser.ColumnRef{Table: "d", Name: "dept"}},
	}
	rows := runPlan(t, j, nil)
	if len(rows) != 100 {
		t.Fatalf("index join rows = %d", len(rows))
	}
	if len(rows[0]) != 5 {
		t.Fatalf("width = %d", len(rows[0]))
	}
}

func TestAggregationOperators(t *testing.T) {
	scan := &optimizer.SeqScan{Table: "users", Alias: "u", Cols: usersCols()}
	agg := &optimizer.Agg{
		Input:   scan,
		GroupBy: []sqlparser.Expr{sqlparser.ColumnRef{Table: "u", Name: "dept"}},
		Aggs: []optimizer.AggSpec{
			{Func: "COUNT", Star: true},
			{Func: "SUM", Arg: sqlparser.ColumnRef{Table: "u", Name: "id"}},
			{Func: "MIN", Arg: sqlparser.ColumnRef{Table: "u", Name: "name"}},
			{Func: "MAX", Arg: sqlparser.ColumnRef{Table: "u", Name: "id"}},
			{Func: "AVG", Arg: sqlparser.ColumnRef{Table: "u", Name: "id"}},
		},
	}
	setAggOut(agg)
	rows := runPlan(t, agg, nil)
	if len(rows) != 5 {
		t.Fatalf("groups = %d", len(rows))
	}
	var totalCount int64
	for _, r := range rows {
		// Layout: [dept, COUNT, SUM, MIN(name), MAX(id), AVG(id)].
		totalCount += r[1].I
		if !strings.HasPrefix(r[3].S, "user") {
			t.Errorf("MIN name = %v", r[3])
		}
		if r[4].I < 95 {
			t.Errorf("MAX id = %v", r[4])
		}
		if r[5].T != sqltypes.Float {
			t.Errorf("AVG type = %v", r[5].T)
		}
	}
	if totalCount != 100 {
		t.Errorf("counts sum to %d", totalCount)
	}
}

// setAggOut fills the unexported output columns via the public helper
// path: Agg computes Out() from outCols, which PlanSelect normally
// populates. For direct tests we rebuild the same layout.
func setAggOut(a *optimizer.Agg) {
	cols := []optimizer.OutCol{{Table: "#", Name: "g0", Type: sqltypes.Int}}
	for j := range a.Aggs {
		cols = append(cols, optimizer.OutCol{Table: "#", Name: fmt.Sprintf("a%d", j)})
	}
	a.SetOutCols(cols)
}

func TestSortDistinctLimitStrip(t *testing.T) {
	scan := &optimizer.SeqScan{Table: "users", Alias: "u", Cols: usersCols()}
	proj := &optimizer.Project{
		Input: scan,
		Exprs: []sqlparser.Expr{
			sqlparser.ColumnRef{Table: "u", Name: "dept"},
			sqlparser.ColumnRef{Table: "u", Name: "id"},
		},
		Names: []optimizer.OutCol{
			{Name: "dept", Type: sqltypes.Int},
			{Name: "id", Type: sqltypes.Int},
		},
	}
	dist := &optimizer.Distinct{Input: &optimizer.Project{
		Input: scan,
		Exprs: []sqlparser.Expr{sqlparser.ColumnRef{Table: "u", Name: "dept"}},
		Names: []optimizer.OutCol{{Name: "dept", Type: sqltypes.Int}},
	}}
	rows := runPlan(t, dist, nil)
	if len(rows) != 5 {
		t.Fatalf("distinct rows = %d", len(rows))
	}

	sorted := &optimizer.Sort{Input: proj, Keys: []optimizer.SortKey{{Col: 0, Desc: true}, {Col: 1}}}
	rows = runPlan(t, sorted, nil)
	if rows[0][0].I != 4 || rows[0][1].I != 4 {
		t.Errorf("sort head = %v", rows[0])
	}

	limited := &optimizer.Limit{Input: sorted, N: 3, Offset: 2}
	rows = runPlan(t, limited, nil)
	if len(rows) != 3 || rows[0][1].I != 14 {
		t.Errorf("limit rows = %v", rows)
	}

	stripped := &optimizer.Strip{Input: sorted, Keep: 1}
	rows = runPlan(t, stripped, nil)
	if len(rows[0]) != 1 {
		t.Errorf("strip width = %d", len(rows[0]))
	}
}

func TestParamsInProbe(t *testing.T) {
	eq := &optimizer.IndexScan{
		Table: "users", Alias: "u", Primary: true, Cols: usersCols(),
		Eq: []sqlparser.Expr{sqlparser.Param{Idx: 0}},
	}
	rows := runPlan(t, eq, []sqltypes.Value{sqltypes.NewInt(42)})
	if len(rows) != 1 || rows[0][0].I != 42 {
		t.Fatalf("param probe rows = %v", rows)
	}
}

func TestCompileErrors(t *testing.T) {
	// A filter referencing an unknown column must fail at compile time.
	scan := &optimizer.SeqScan{
		Table: "users", Alias: "u", Cols: usersCols(),
		Filter: whereOf(t, "bogus = 1"),
	}
	if _, err := Compile(&optimizer.Plan{Root: scan}); err == nil {
		t.Fatal("unknown column compiled")
	}
}

func TestStorageErrorsPropagate(t *testing.T) {
	scan := &optimizer.SeqScan{Table: "missing", Alias: "m", Cols: usersCols()}
	prep, err := Compile(&optimizer.Plan{Root: scan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Run(newMemStorage(), &Ctx{}); err == nil {
		t.Fatal("missing table did not error")
	}
}
