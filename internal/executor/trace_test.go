package executor

import "testing"

// TestSelfTimes checks the pre-order self-time derivation: each span's
// inclusive time minus its direct children's, clamped at zero.
func TestSelfTimes(t *testing.T) {
	// Tree (pre-order):      root
	//                       /    \
	//                    childA  childB
	//                      |
	//                   grandkid
	metas := []SpanMeta{
		{Kind: "root", Depth: 0},
		{Kind: "childA", Depth: 1},
		{Kind: "grandkid", Depth: 2},
		{Kind: "childB", Depth: 1},
	}
	counts := []SpanCount{
		{Nanos: 100},
		{Nanos: 50},
		{Nanos: 20},
		{Nanos: 30},
	}
	got := SelfTimes(metas, counts)
	want := []int64{20, 30, 20, 30} // root: 100-50-30; childA: 50-20; leaves keep their own
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelfTimes = %v, want %v", got, want)
		}
	}
}

// TestSelfTimesClampsNegative: measurement skew can make a child's
// inclusive time exceed its parent's; self time clamps at zero rather
// than going negative.
func TestSelfTimesClampsNegative(t *testing.T) {
	metas := []SpanMeta{{Kind: "root", Depth: 0}, {Kind: "child", Depth: 1}}
	counts := []SpanCount{{Nanos: 10}, {Nanos: 25}}
	got := SelfTimes(metas, counts)
	if got[0] != 0 || got[1] != 25 {
		t.Fatalf("SelfTimes = %v, want [0 25]", got)
	}
}

func TestSelfTimesEmpty(t *testing.T) {
	if got := SelfTimes(nil, nil); len(got) != 0 {
		t.Fatalf("SelfTimes(nil) = %v", got)
	}
}
