package executor

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/sqltypes"
)

type aggC struct {
	input   compiled
	groupBy []expr.Compiled
	aggs    []aggSpecC
	having  expr.Compiled // bound against the agg output
	outLen  int
}

type aggSpecC struct {
	fn       string
	star     bool
	distinct bool
	arg      expr.Compiled
}

func (cp *compiler) compileAgg(n *optimizer.Agg, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	inRes := resolverFor(n.Input.Out())
	c := &aggC{input: input, outLen: len(n.Out())}
	for _, g := range n.GroupBy {
		ce, err := expr.Bind(g, inRes)
		if err != nil {
			return nil, err
		}
		c.groupBy = append(c.groupBy, ce)
	}
	for _, a := range n.Aggs {
		spec := aggSpecC{fn: a.Func, star: a.Star, distinct: a.Distinct}
		if a.Arg != nil {
			if spec.arg, err = expr.Bind(a.Arg, inRes); err != nil {
				return nil, err
			}
		}
		c.aggs = append(c.aggs, spec)
	}
	if c.having, err = bindOpt(n.Having, resolverFor(n.Out())); err != nil {
		return nil, err
	}
	return c, nil
}

// aggState accumulates one group.
type aggState struct {
	groupVals sqltypes.Row
	count     []int64
	sum       []float64
	sumI      []int64
	intOnly   []bool
	minMax    []sqltypes.Value
	hasMM     []bool
	seen      []map[string]bool // for DISTINCT
}

func (c *aggC) newState(groupVals sqltypes.Row) *aggState {
	n := len(c.aggs)
	st := &aggState{
		groupVals: groupVals,
		count:     make([]int64, n),
		sum:       make([]float64, n),
		sumI:      make([]int64, n),
		intOnly:   make([]bool, n),
		minMax:    make([]sqltypes.Value, n),
		hasMM:     make([]bool, n),
	}
	for i := range st.intOnly {
		st.intOnly[i] = true
	}
	st.seen = make([]map[string]bool, n)
	for i, a := range c.aggs {
		if a.distinct {
			st.seen[i] = map[string]bool{}
		}
	}
	return st
}

func (c *aggC) accumulate(st *aggState, env *expr.Env) error {
	for i, a := range c.aggs {
		if a.star {
			st.count[i]++
			continue
		}
		v, err := a.arg.Eval(env)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue // aggregates skip NULLs
		}
		if a.distinct {
			key := string(sqltypes.EncodeKey(nil, v))
			if st.seen[i][key] {
				continue
			}
			st.seen[i][key] = true
		}
		st.count[i]++
		switch a.fn {
		case "SUM", "AVG":
			if v.T == sqltypes.Int {
				st.sumI[i] += v.I
			} else {
				st.intOnly[i] = false
			}
			st.sum[i] += v.AsFloat()
		case "MIN":
			if !st.hasMM[i] || sqltypes.Compare(v, st.minMax[i]) < 0 {
				st.minMax[i] = v
				st.hasMM[i] = true
			}
		case "MAX":
			if !st.hasMM[i] || sqltypes.Compare(v, st.minMax[i]) > 0 {
				st.minMax[i] = v
				st.hasMM[i] = true
			}
		}
	}
	return nil
}

func (c *aggC) finalize(st *aggState) (sqltypes.Row, error) {
	row := make(sqltypes.Row, 0, c.outLen)
	row = append(row, st.groupVals...)
	for i, a := range c.aggs {
		switch a.fn {
		case "COUNT":
			row = append(row, sqltypes.NewInt(st.count[i]))
		case "SUM":
			if st.count[i] == 0 {
				row = append(row, sqltypes.NullValue())
			} else if st.intOnly[i] {
				row = append(row, sqltypes.NewInt(st.sumI[i]))
			} else {
				row = append(row, sqltypes.NewFloat(st.sum[i]))
			}
		case "AVG":
			if st.count[i] == 0 {
				row = append(row, sqltypes.NullValue())
			} else {
				row = append(row, sqltypes.NewFloat(st.sum[i]/float64(st.count[i])))
			}
		case "MIN", "MAX":
			if !st.hasMM[i] {
				row = append(row, sqltypes.NullValue())
			} else {
				row = append(row, st.minMax[i])
			}
		default:
			return nil, fmt.Errorf("executor: unknown aggregate %q", a.fn)
		}
	}
	return row, nil
}

func (c *aggC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	env := expr.Env{Params: rt.ctx.Params}
	groups := map[string]*aggState{}
	var order []string // deterministic output: first-seen order
	sawRow := false
	for {
		row, ok, err := in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		sawRow = true
		rt.ctx.Tuples++
		env.Row = row
		groupVals := make(sqltypes.Row, len(c.groupBy))
		var keyBuf []byte
		for i, g := range c.groupBy {
			v, err := g.Eval(&env)
			if err != nil {
				return nil, err
			}
			groupVals[i] = v
			keyBuf = sqltypes.EncodeKey(keyBuf, v)
		}
		key := string(keyBuf)
		st := groups[key]
		if st == nil {
			st = c.newState(groupVals)
			groups[key] = st
			order = append(order, key)
		}
		if err := c.accumulate(st, &env); err != nil {
			return nil, err
		}
	}
	// A global aggregate over zero rows still yields one row.
	if !sawRow && len(c.groupBy) == 0 {
		st := c.newState(nil)
		groups[""] = st
		order = append(order, "")
	}
	rows := make([]sqltypes.Row, 0, len(order))
	henv := expr.Env{Params: rt.ctx.Params}
	for _, key := range order {
		row, err := c.finalize(groups[key])
		if err != nil {
			return nil, err
		}
		if c.having != nil {
			henv.Row = row
			v, err := c.having.Eval(&henv)
			if err != nil {
				return nil, err
			}
			if !v.Bool() {
				continue
			}
		}
		rows = append(rows, row)
	}
	return &sliceIter{rows: rows}, nil
}

type projectC struct {
	input compiled
	exprs []expr.Compiled
}

func (cp *compiler) compileProject(n *optimizer.Project, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	res := resolverFor(n.Input.Out())
	c := &projectC{input: input}
	for _, e := range n.Exprs {
		ce, err := expr.Bind(e, res)
		if err != nil {
			return nil, err
		}
		c.exprs = append(c.exprs, ce)
	}
	return c, nil
}

func (c *projectC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	return &projectIter{in: in, exprs: c.exprs, env: expr.Env{Params: rt.ctx.Params}, ctx: rt.ctx}, nil
}

type projectIter struct {
	in    RowIter
	exprs []expr.Compiled
	env   expr.Env
	ctx   *Ctx
}

func (it *projectIter) Next() (sqltypes.Row, bool, error) {
	row, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.ctx.Tuples++
	it.env.Row = row
	out := make(sqltypes.Row, len(it.exprs))
	for i, e := range it.exprs {
		if out[i], err = e.Eval(&it.env); err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

func (it *projectIter) Close() error { return it.in.Close() }

type sortC struct {
	input compiled
	keys  []optimizer.SortKey
}

func (cp *compiler) compileSort(n *optimizer.Sort, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	return &sortC{input: input, keys: n.Keys}, nil
}

func (c *sortC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	rows, err := Collect(in)
	if err != nil {
		return nil, err
	}
	rt.ctx.Tuples += int64(len(rows))
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range c.keys {
			cmp := sqltypes.Compare(rows[i][k.Col], rows[j][k.Col])
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return &sliceIter{rows: rows}, nil
}

type distinctC struct{ input compiled }

func (cp *compiler) compileDistinct(n *optimizer.Distinct, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	return &distinctC{input: input}, nil
}

func (c *distinctC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	return &distinctIter{in: in, seen: map[string]bool{}, ctx: rt.ctx}, nil
}

type distinctIter struct {
	in   RowIter
	seen map[string]bool
	ctx  *Ctx
}

func (it *distinctIter) Next() (sqltypes.Row, bool, error) {
	for {
		row, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.ctx.Tuples++
		key := string(sqltypes.EncodeKey(nil, row...))
		if it.seen[key] {
			continue
		}
		it.seen[key] = true
		return row, true, nil
	}
}

func (it *distinctIter) Close() error { return it.in.Close() }

type limitC struct {
	input  compiled
	n      int64
	offset int64
}

func (cp *compiler) compileLimit(n *optimizer.Limit, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	return &limitC{input: input, n: n.N, offset: n.Offset}, nil
}

func (c *limitC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	return &limitIter{in: in, n: c.n, skip: c.offset}, nil
}

type limitIter struct {
	in      RowIter
	n       int64
	skip    int64
	yielded int64
}

func (it *limitIter) Next() (sqltypes.Row, bool, error) {
	for it.skip > 0 {
		_, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.skip--
	}
	if it.n >= 0 && it.yielded >= it.n {
		return nil, false, nil
	}
	row, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.yielded++
	return row, true, nil
}

func (it *limitIter) Close() error { return it.in.Close() }

type stripC struct {
	input compiled
	keep  int
}

func (cp *compiler) compileStrip(n *optimizer.Strip, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	return &stripC{input: input, keep: n.Keep}, nil
}

func (c *stripC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	return &stripIter{in: in, keep: c.keep}, nil
}

type stripIter struct {
	in   RowIter
	keep int
}

func (it *stripIter) Next() (sqltypes.Row, bool, error) {
	row, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return row[:it.keep], true, nil
}

func (it *stripIter) Close() error { return it.in.Close() }
