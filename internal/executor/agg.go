package executor

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/sqltypes"
)

type aggC struct {
	input   compiled
	groupBy []expr.Compiled
	aggs    []aggSpecC
	having  expr.Compiled // bound against the agg output
	outLen  int
	// scan, when non-nil, is the leaf sequential scan directly under
	// this aggregate of a parallel-safe subtree; openBatch may then
	// partition it into page-range morsels (see parallel.go).
	// scanSpanID is the scan's trace span, filled once at merge time.
	scan       *seqScanC
	scanSpanID int
}

type aggSpecC struct {
	fn       string
	star     bool
	distinct bool
	arg      expr.Compiled
}

func (cp *compiler) compileAgg(n *optimizer.Agg, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	inRes := resolverFor(n.Input.Out())
	c := &aggC{input: input, outLen: len(n.Out())}
	for _, g := range n.GroupBy {
		ce, err := expr.Bind(g, inRes)
		if err != nil {
			return nil, err
		}
		c.groupBy = append(c.groupBy, ce)
	}
	for _, a := range n.Aggs {
		spec := aggSpecC{fn: a.Func, star: a.Star, distinct: a.Distinct}
		if a.Arg != nil {
			if spec.arg, err = expr.Bind(a.Arg, inRes); err != nil {
				return nil, err
			}
		}
		c.aggs = append(c.aggs, spec)
	}
	if c.having, err = bindOpt(n.Having, resolverFor(n.Out())); err != nil {
		return nil, err
	}
	if n.ParallelSafe {
		// The optimizer vouches for shape; re-derive the scan handle here
		// so hand-assembled plans cannot fan out an unsupported subtree.
		if tc, ok := input.(*tracedC); ok {
			if sc, ok := tc.inner.(*seqScanC); ok {
				distinct := false
				for _, a := range c.aggs {
					distinct = distinct || a.distinct
				}
				if !distinct {
					c.scan, c.scanSpanID = sc, tc.id
				}
			}
		}
	}
	return c, nil
}

// aggState accumulates one group. Every field except the DISTINCT
// seen-sets composes across partial states (see mergeState in
// parallel.go), which is what makes morsel-parallel aggregation legal.
type aggState struct {
	groupVals sqltypes.Row
	count     []int64
	sum       []float64
	sumI      []int64
	intOnly   []bool
	minMax    []sqltypes.Value
	hasMM     []bool
	seen      []map[string]bool // for DISTINCT
	// firstOrd is the global first-seen ordinal of the group (morsel
	// index in the high half, row position within the morsel in the low
	// half); merges keep the minimum so a parallel run can reproduce the
	// serial first-seen output order.
	firstOrd uint64
}

func (c *aggC) newState(groupVals sqltypes.Row) *aggState {
	n := len(c.aggs)
	st := &aggState{
		groupVals: groupVals,
		count:     make([]int64, n),
		sum:       make([]float64, n),
		sumI:      make([]int64, n),
		intOnly:   make([]bool, n),
		minMax:    make([]sqltypes.Value, n),
		hasMM:     make([]bool, n),
	}
	for i := range st.intOnly {
		st.intOnly[i] = true
	}
	st.seen = make([]map[string]bool, n)
	for i, a := range c.aggs {
		if a.distinct {
			st.seen[i] = map[string]bool{}
		}
	}
	return st
}

func (c *aggC) accumulate(st *aggState, env *expr.Env) error {
	for i, a := range c.aggs {
		if a.star {
			st.count[i]++
			continue
		}
		v, err := a.arg.Eval(env)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue // aggregates skip NULLs
		}
		if a.distinct {
			key := string(sqltypes.EncodeKey(nil, v))
			if st.seen[i][key] {
				continue
			}
			st.seen[i][key] = true
		}
		st.count[i]++
		switch a.fn {
		case "SUM", "AVG":
			if v.T == sqltypes.Int {
				st.sumI[i] += v.I
			} else {
				st.intOnly[i] = false
			}
			st.sum[i] += v.AsFloat()
		case "MIN":
			if !st.hasMM[i] || sqltypes.Compare(v, st.minMax[i]) < 0 {
				st.minMax[i] = v
				st.hasMM[i] = true
			}
		case "MAX":
			if !st.hasMM[i] || sqltypes.Compare(v, st.minMax[i]) > 0 {
				st.minMax[i] = v
				st.hasMM[i] = true
			}
		}
	}
	return nil
}

func (c *aggC) finalize(st *aggState) (sqltypes.Row, error) {
	row := make(sqltypes.Row, 0, c.outLen)
	row = append(row, st.groupVals...)
	for i, a := range c.aggs {
		switch a.fn {
		case "COUNT":
			row = append(row, sqltypes.NewInt(st.count[i]))
		case "SUM":
			if st.count[i] == 0 {
				row = append(row, sqltypes.NullValue())
			} else if st.intOnly[i] {
				row = append(row, sqltypes.NewInt(st.sumI[i]))
			} else {
				row = append(row, sqltypes.NewFloat(st.sum[i]))
			}
		case "AVG":
			if st.count[i] == 0 {
				row = append(row, sqltypes.NullValue())
			} else {
				row = append(row, sqltypes.NewFloat(st.sum[i]/float64(st.count[i])))
			}
		case "MIN", "MAX":
			if !st.hasMM[i] {
				row = append(row, sqltypes.NullValue())
			} else {
				row = append(row, st.minMax[i])
			}
		default:
			return nil, fmt.Errorf("executor: unknown aggregate %q", a.fn)
		}
	}
	return row, nil
}

// aggRun is the per-execution accumulation state shared by the row and
// batch paths. The group-key buffer and group-value scratch are reused
// across rows; group values are copied out when a new group is born.
type aggRun struct {
	c         *aggC
	env       expr.Env
	groups    map[string]*aggState
	order     []string // deterministic output: first-seen order
	keyBuf    []byte
	groupVals sqltypes.Row // scratch, copied on new group
	sawRow    bool
	// ordBase/ordCount stamp each newborn group with its global
	// first-seen ordinal: a morsel worker sets ordBase to morsel<<32
	// before scanning it, so ordinals sort morsel-major and, within a
	// morsel, in scan order. Serial runs leave ordBase 0.
	ordBase  uint64
	ordCount uint64
}

func (c *aggC) newRun(rt *runtime) *aggRun {
	return c.newRunParams(rt.ctx.Params)
}

func (c *aggC) newRunParams(params []sqltypes.Value) *aggRun {
	return &aggRun{
		c:         c,
		env:       expr.Env{Params: params},
		groups:    map[string]*aggState{},
		groupVals: make(sqltypes.Row, len(c.groupBy)),
	}
}

func (r *aggRun) addRow(row sqltypes.Row) error {
	c := r.c
	r.sawRow = true
	r.env.Row = row
	r.keyBuf = r.keyBuf[:0]
	for i, g := range c.groupBy {
		v, err := g.Eval(&r.env)
		if err != nil {
			return err
		}
		r.groupVals[i] = v
		r.keyBuf = sqltypes.EncodeKey(r.keyBuf, v)
	}
	key := string(r.keyBuf)
	st := r.groups[key]
	if st == nil {
		st = c.newState(append(sqltypes.Row(nil), r.groupVals...))
		st.firstOrd = r.ordBase + r.ordCount
		r.groups[key] = st
		r.order = append(r.order, key)
	}
	r.ordCount++
	return c.accumulate(st, &r.env)
}

// rows finalizes every group (applying HAVING) in first-seen order.
func (r *aggRun) rows() ([]sqltypes.Row, error) {
	c := r.c
	// A global aggregate over zero rows still yields one row.
	if !r.sawRow && len(c.groupBy) == 0 {
		r.groups[""] = c.newState(nil)
		r.order = append(r.order, "")
	}
	rows := make([]sqltypes.Row, 0, len(r.order))
	henv := expr.Env{Params: r.env.Params}
	for _, key := range r.order {
		row, err := c.finalize(r.groups[key])
		if err != nil {
			return nil, err
		}
		if c.having != nil {
			henv.Row = row
			v, err := c.having.Eval(&henv)
			if err != nil {
				return nil, err
			}
			if !v.Bool() {
				continue
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (c *aggC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	run := c.newRun(rt)
	for {
		row, ok, err := in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		rt.ctx.Tuples++
		if err := run.addRow(row); err != nil {
			return nil, err
		}
	}
	rows, err := run.rows()
	if err != nil {
		return nil, err
	}
	return &SliceRowIter{Rows: rows}, nil
}

// openBatch consumes the input batch-at-a-time (aggregation is
// materializing, so the output is a slice iterator either way). A
// parallel-safe subtree over a large enough table fans out into morsel
// workers first; everything else takes the serial path below.
func (c *aggC) openBatch(rt *runtime) (RowBatchIter, error) {
	if it, handled, err := c.openBatchParallel(rt); handled {
		return it, err
	}
	in, err := openBatchOf(c.input, rt)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	run := c.newRun(rt)
	var b Batch
	for {
		ok, err := in.NextBatch(&b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		rt.ctx.Tuples += int64(len(b.Rows))
		for _, row := range b.Rows {
			if err := run.addRow(row); err != nil {
				return nil, err
			}
		}
	}
	rows, err := run.rows()
	if err != nil {
		return nil, err
	}
	return &SliceRowIter{Rows: rows}, nil
}

type projectC struct {
	input compiled
	exprs []expr.Compiled
}

func (cp *compiler) compileProject(n *optimizer.Project, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	res := resolverFor(n.Input.Out())
	c := &projectC{input: input}
	for _, e := range n.Exprs {
		ce, err := expr.Bind(e, res)
		if err != nil {
			return nil, err
		}
		c.exprs = append(c.exprs, ce)
	}
	return c, nil
}

func (c *projectC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	return &projectIter{in: in, exprs: c.exprs, env: expr.Env{Params: rt.ctx.Params}, ctx: rt.ctx}, nil
}

// projectIter evaluates the select list row-at-a-time. Output rows are
// carved from a chunked arena — stable forever, one allocation per
// chunk instead of one per row, which is what keeps the
// row-only-operator bridge (RowsToBatch over this iterator) from
// paying a backing-slice allocation on every crossing row.
type projectIter struct {
	in    RowIter
	exprs []expr.Compiled
	env   expr.Env
	ctx   *Ctx
	arena RowArena
}

func (it *projectIter) Next() (sqltypes.Row, bool, error) {
	row, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.ctx.Tuples++
	it.env.Row = row
	out := it.arena.Alloc(len(it.exprs))
	for i, e := range it.exprs {
		if out[i], err = e.Eval(&it.env); err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

func (it *projectIter) Close() error { return it.in.Close() }

func (c *projectC) openBatch(rt *runtime) (RowBatchIter, error) {
	in, err := openBatchOf(c.input, rt)
	if err != nil {
		return nil, err
	}
	return &projectBatchIter{in: in, exprs: c.exprs,
		env: expr.Env{Params: rt.ctx.Params}, ctx: rt.ctx,
		cols: make([][]sqltypes.Value, len(c.exprs))}, nil
}

// projectBatchIter evaluates each output expression column-at-a-time
// with expr.EvalBatch, then gathers the columns into row-major output
// rows carved from one reused backing slice. Tuple accounting matches
// projectIter: every input row counts.
type projectBatchIter struct {
	in    RowBatchIter
	exprs []expr.Compiled
	env   expr.Env
	ctx   *Ctx
	raw   Batch              // input scratch
	cols  [][]sqltypes.Value // per-expression column scratch
	vals  []sqltypes.Value   // row-major output backing
}

func (it *projectBatchIter) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	ok, err := it.in.NextBatch(&it.raw)
	if err != nil || !ok {
		return false, err
	}
	n := len(it.raw.Rows)
	it.ctx.Tuples += int64(n)
	for j, e := range it.exprs {
		it.cols[j] = it.cols[j][:0]
		if it.cols[j], err = expr.EvalBatch(e, &it.env, it.raw.Rows, it.cols[j]); err != nil {
			return false, err
		}
	}
	w := len(it.exprs)
	if cap(it.vals) < n*w {
		it.vals = make([]sqltypes.Value, n*w)
	}
	it.vals = it.vals[:n*w]
	for i := 0; i < n; i++ {
		out := it.vals[i*w : i*w+w : i*w+w]
		for j := 0; j < w; j++ {
			out[j] = it.cols[j][i]
		}
		b.Rows = append(b.Rows, sqltypes.Row(out))
	}
	return true, nil
}

func (it *projectBatchIter) Close() error { return it.in.Close() }

type sortC struct {
	input compiled
	keys  []optimizer.SortKey
}

func (cp *compiler) compileSort(n *optimizer.Sort, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	return &sortC{input: input, keys: n.Keys}, nil
}

func (c *sortC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	rows, err := Collect(in)
	if err != nil {
		return nil, err
	}
	rt.ctx.Tuples += int64(len(rows))
	c.sortRows(rows)
	return &SliceRowIter{Rows: rows}, nil
}

// openBatch consumes the input batch-at-a-time; CollectBatches copies
// the rows out of the transient batches before sorting.
func (c *sortC) openBatch(rt *runtime) (RowBatchIter, error) {
	in, err := openBatchOf(c.input, rt)
	if err != nil {
		return nil, err
	}
	rows, err := CollectBatches(in)
	if err != nil {
		return nil, err
	}
	rt.ctx.Tuples += int64(len(rows))
	c.sortRows(rows)
	return &SliceRowIter{Rows: rows}, nil
}

func (c *sortC) sortRows(rows []sqltypes.Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range c.keys {
			cmp := sqltypes.Compare(rows[i][k.Col], rows[j][k.Col])
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}

type distinctC struct{ input compiled }

func (cp *compiler) compileDistinct(n *optimizer.Distinct, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	return &distinctC{input: input}, nil
}

func (c *distinctC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	return &distinctIter{in: in, seen: map[string]bool{}, ctx: rt.ctx}, nil
}

type distinctIter struct {
	in     RowIter
	seen   map[string]bool
	ctx    *Ctx
	keyBuf []byte // reused; duplicate rows cost zero allocations
}

func (it *distinctIter) Next() (sqltypes.Row, bool, error) {
	for {
		row, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.ctx.Tuples++
		it.keyBuf = sqltypes.EncodeKey(it.keyBuf[:0], row...)
		if it.seen[string(it.keyBuf)] {
			continue
		}
		it.seen[string(it.keyBuf)] = true
		return row, true, nil
	}
}

func (it *distinctIter) Close() error { return it.in.Close() }

type limitC struct {
	input  compiled
	n      int64
	offset int64
}

func (cp *compiler) compileLimit(n *optimizer.Limit, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	return &limitC{input: input, n: n.N, offset: n.Offset}, nil
}

func (c *limitC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	return &limitIter{in: in, n: c.n, skip: c.offset}, nil
}

type limitIter struct {
	in      RowIter
	n       int64
	skip    int64
	yielded int64
}

func (it *limitIter) Next() (sqltypes.Row, bool, error) {
	for it.skip > 0 {
		_, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.skip--
	}
	if it.n >= 0 && it.yielded >= it.n {
		return nil, false, nil
	}
	row, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.yielded++
	return row, true, nil
}

func (it *limitIter) Close() error { return it.in.Close() }

type stripC struct {
	input compiled
	keep  int
}

func (cp *compiler) compileStrip(n *optimizer.Strip, depth int) (compiled, error) {
	input, err := cp.compile(n.Input, depth+1)
	if err != nil {
		return nil, err
	}
	return &stripC{input: input, keep: n.Keep}, nil
}

func (c *stripC) open(rt *runtime) (RowIter, error) {
	in, err := c.input.open(rt)
	if err != nil {
		return nil, err
	}
	return &stripIter{in: in, keep: c.keep}, nil
}

type stripIter struct {
	in   RowIter
	keep int
}

func (it *stripIter) Next() (sqltypes.Row, bool, error) {
	row, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return row[:it.keep], true, nil
}

func (it *stripIter) Close() error { return it.in.Close() }

func (c *stripC) openBatch(rt *runtime) (RowBatchIter, error) {
	in, err := openBatchOf(c.input, rt)
	if err != nil {
		return nil, err
	}
	return &stripBatchIter{in: in, keep: c.keep}, nil
}

// stripBatchIter reslices each row header in place; the rows' backing
// arrays are untouched, so the producer's batch stays intact.
type stripBatchIter struct {
	in   RowBatchIter
	keep int
}

func (it *stripBatchIter) NextBatch(b *Batch) (bool, error) {
	ok, err := it.in.NextBatch(b)
	for i, row := range b.Rows {
		b.Rows[i] = row[:it.keep]
	}
	return ok, err
}

func (it *stripBatchIter) Close() error { return it.in.Close() }
