// Package executor compiles optimizer plans into Volcano-style
// iterators and runs them against a Storage implementation provided by
// the engine. Compiled plans are immutable and reusable — the engine's
// plan cache holds them across executions, which produces the cache
// warm-up effect of the paper's Figure 5.
package executor

import (
	"fmt"

	"repro/internal/optimizer"
	"repro/internal/sqltypes"
)

// RowIter produces rows one at a time. Implementations are not safe
// for concurrent use.
type RowIter interface {
	Next() (sqltypes.Row, bool, error)
	Close() error
}

// Storage is the data-access surface the executor runs against. Key
// ranges use the order-preserving sqltypes.EncodeKey encoding; hi is
// exclusive.
type Storage interface {
	// ScanTable iterates all rows of a base or virtual table.
	ScanTable(name string) (RowIter, error)
	// IndexRange yields base rows whose entry in the named secondary
	// index falls in [lo, hi).
	IndexRange(table, index string, lo, hi []byte) (RowIter, error)
	// PrimaryRange yields rows of a BTREE-structured table whose
	// primary key falls in [lo, hi).
	PrimaryRange(table string, lo, hi []byte) (RowIter, error)
}

// Ctx carries per-execution state: bound parameters, the actual-CPU
// counter the monitor records (one unit ≈ one tuple operation) and an
// optional per-operator trace (see trace.go).
type Ctx struct {
	Params []sqltypes.Value
	Tuples int64
	// Trace, when non-nil, receives per-operator row/time counts for
	// this execution. It must come from the same Prepared's NewTrace.
	Trace *ExecTrace
	// Parallel is the maximum intra-query worker count for morsel-driven
	// subtrees (see parallel.go). 0 or 1 keeps execution serial.
	Parallel int
	// Morsels, WorkerNanos and ParallelRuns accumulate morsel-execution
	// telemetry for this statement: morsels dispatched, summed worker
	// wall time, and how many operators fanned out.
	Morsels      int64
	WorkerNanos  int64
	ParallelRuns int64
}

// Prepared is a compiled, reusable plan.
type Prepared struct {
	root  compiled
	out   []optimizer.OutCol
	spans []SpanMeta // operator descriptions in pre-order
}

// Columns returns the output column descriptions.
func (p *Prepared) Columns() []optimizer.OutCol { return p.out }

// Run opens the plan against storage. The returned iterator must be
// closed.
func (p *Prepared) Run(st Storage, ctx *Ctx) (RowIter, error) {
	rt := &runtime{st: st, ctx: ctx}
	return p.root.open(rt)
}

type runtime struct {
	st  Storage
	ctx *Ctx
}

// compiled is a factory for one plan operator's iterator.
type compiled interface {
	open(rt *runtime) (RowIter, error)
}

// Compile binds every expression in the plan and returns a reusable
// Prepared.
func Compile(plan *optimizer.Plan) (*Prepared, error) {
	var cp compiler
	root, err := cp.compile(plan.Root, 0)
	if err != nil {
		return nil, err
	}
	return &Prepared{root: root, out: plan.Root.Out(), spans: cp.spans}, nil
}

// compiler walks the plan tree assigning pre-order span IDs; operators
// with inputs compile their children through it so IDs stay aligned
// with the SpanMeta slice.
type compiler struct {
	spans []SpanMeta
}

func (cp *compiler) compile(n optimizer.Node, depth int) (compiled, error) {
	id := len(cp.spans)
	cp.spans = append(cp.spans, spanMetaFor(n, depth))
	var inner compiled
	var err error
	switch x := n.(type) {
	case *optimizer.SeqScan:
		inner, err = compileSeqScan(x)
	case *optimizer.IndexScan:
		inner, err = compileIndexScan(x)
	case *optimizer.HashJoin:
		inner, err = cp.compileHashJoin(x, depth)
	case *optimizer.LoopJoin:
		inner, err = cp.compileLoopJoin(x, depth)
	case *optimizer.IndexJoin:
		inner, err = cp.compileIndexJoin(x, depth)
	case *optimizer.Agg:
		inner, err = cp.compileAgg(x, depth)
	case *optimizer.Project:
		inner, err = cp.compileProject(x, depth)
	case *optimizer.Sort:
		inner, err = cp.compileSort(x, depth)
	case *optimizer.Strip:
		inner, err = cp.compileStrip(x, depth)
	case *optimizer.Distinct:
		inner, err = cp.compileDistinct(x, depth)
	case *optimizer.Limit:
		inner, err = cp.compileLimit(x, depth)
	default:
		return nil, fmt.Errorf("executor: unsupported plan node %T", n)
	}
	if err != nil {
		return nil, err
	}
	return &tracedC{inner: inner, id: id}, nil
}

// SliceRowIter iterates a materialized row slice. The engine uses it
// for virtual tables; materializing operators (sort, agg) use it for
// their outputs. It serves both the row and the batch interface — the
// rows are stable, so batches may alias them.
type SliceRowIter struct {
	Rows []sqltypes.Row
	pos  int
}

// Next implements RowIter.
func (it *SliceRowIter) Next() (sqltypes.Row, bool, error) {
	if it.pos >= len(it.Rows) {
		return nil, false, nil
	}
	r := it.Rows[it.pos]
	it.pos++
	return r, true, nil
}

// NextBatch implements RowBatchIter.
func (it *SliceRowIter) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	end := it.pos + BatchSize
	if end > len(it.Rows) {
		end = len(it.Rows)
	}
	b.Rows = append(b.Rows, it.Rows[it.pos:end]...)
	it.pos = end
	return len(b.Rows) > 0, nil
}

// Close implements RowIter.
func (it *SliceRowIter) Close() error { return nil }

// Collect drains an iterator into a slice and closes it.
func Collect(it RowIter) ([]sqltypes.Row, error) {
	defer it.Close()
	var out []sqltypes.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}
