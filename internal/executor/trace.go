package executor

import (
	"fmt"
	"time"

	"repro/internal/optimizer"
	"repro/internal/sqltypes"
)

// Statement tracing: Compile assigns every plan operator a pre-order
// span ID and wraps its compiled form in tracedC. When Ctx.Trace is
// nil (every normal execution, including cached plans) the wrapper
// costs one nil check per operator open and nothing per row. When a
// trace is attached (EXPLAIN ANALYZE), each operator's iterator is
// wrapped to count rows and Next() calls and to accumulate inclusive
// wall time — including time spent in open(), where blocking operators
// (hash-join build, sort, aggregate) do their real work.

// SpanMeta is the static description of one plan operator, fixed at
// compile time. Spans are stored in pre-order: parents precede
// children, exactly as Plan.String renders the tree.
type SpanMeta struct {
	Kind    string  // operator kind (SeqScan, HashJoin, ...)
	Detail  string  // operator-specific detail (table, index, ...)
	Depth   int     // depth in the plan tree; root is 0
	EstRows float64 // optimizer cardinality estimate
}

// SpanCount is the actual execution record of one operator.
type SpanCount struct {
	Rows  int64 // rows the operator produced
	Nanos int64 // inclusive wall time (open + Next), includes children
	Calls int64 // Next() invocations
}

// ExecTrace collects per-operator actuals for a single execution; index
// corresponds to SpanMetas(). It is not safe for concurrent use.
type ExecTrace struct {
	Counts []SpanCount
}

// SpanMetas returns the plan's operator descriptions in pre-order.
func (p *Prepared) SpanMetas() []SpanMeta { return p.spans }

// SelfTimes derives each operator's self time — inclusive Nanos minus
// the inclusive Nanos of its direct children — from the pre-order span
// layout. Children are exactly the following spans at Depth+1 until a
// span at the operator's own depth (or shallower) closes the subtree.
// Clock granularity can make a parent's measured inclusive time
// marginally smaller than its children's sum; those are clamped to 0.
func SelfTimes(metas []SpanMeta, counts []SpanCount) []int64 {
	self := make([]int64, len(metas))
	for i := range metas {
		self[i] = counts[i].Nanos
		for j := i + 1; j < len(metas) && metas[j].Depth > metas[i].Depth; j++ {
			if metas[j].Depth == metas[i].Depth+1 {
				self[i] -= counts[j].Nanos
			}
		}
		if self[i] < 0 {
			self[i] = 0
		}
	}
	return self
}

// NewTrace returns a trace sized for this plan, to be set on Ctx.Trace
// before Run.
func (p *Prepared) NewTrace() *ExecTrace {
	return &ExecTrace{Counts: make([]SpanCount, len(p.spans))}
}

// tracedC wraps every compiled operator with its span ID.
type tracedC struct {
	inner compiled
	id    int
}

func (c *tracedC) open(rt *runtime) (RowIter, error) {
	tr := rt.ctx.Trace
	if tr == nil {
		return c.inner.open(rt)
	}
	sc := &tr.Counts[c.id]
	t0 := time.Now()
	it, err := c.inner.open(rt)
	sc.Nanos += time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	return &spanIter{in: it, sc: sc}, nil
}

// openBatch mirrors open for the batch path. Batch-native operators
// get a spanBatchIter; row-only operators open row-at-a-time, are
// counted by a spanIter exactly as in the row path, and are bridged
// upward with RowsToBatch (outside the span wrapper, so the bridge is
// never double-counted).
func (c *tracedC) openBatch(rt *runtime) (RowBatchIter, error) {
	tr := rt.ctx.Trace
	bc, isBatch := c.inner.(batchCompiled)
	if tr == nil {
		if isBatch {
			return bc.openBatch(rt)
		}
		it, err := c.inner.open(rt)
		if err != nil {
			return nil, err
		}
		return RowsToBatch(it), nil
	}
	sc := &tr.Counts[c.id]
	if !isBatch {
		t0 := time.Now()
		it, err := c.inner.open(rt)
		sc.Nanos += time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, err
		}
		return RowsToBatch(&spanIter{in: it, sc: sc}), nil
	}
	t0 := time.Now()
	bi, err := bc.openBatch(rt)
	sc.Nanos += time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	return &spanBatchIter{in: bi, sc: sc}, nil
}

type spanIter struct {
	in RowIter
	sc *SpanCount
}

func (it *spanIter) Next() (sqltypes.Row, bool, error) {
	t0 := time.Now()
	row, ok, err := it.in.Next()
	it.sc.Nanos += time.Since(t0).Nanoseconds()
	it.sc.Calls++
	if ok {
		it.sc.Rows++
	}
	return row, ok, err
}

func (it *spanIter) Close() error { return it.in.Close() }

// spanBatchIter keeps batch-path actuals exactly equal to the row
// path's: a delivered batch of n rows is what n row-at-a-time Next
// calls would have been (n rows, n calls), and exhaustion is the final
// not-ok call. Batch subtrees are always fully drained (Limit, the one
// early-terminating operator, runs row-only), so a traced operator
// records the same N rows and N+1 calls either way.
type spanBatchIter struct {
	in RowBatchIter
	sc *SpanCount
}

func (it *spanBatchIter) NextBatch(b *Batch) (bool, error) {
	t0 := time.Now()
	ok, err := it.in.NextBatch(b)
	it.sc.Nanos += time.Since(t0).Nanoseconds()
	if ok {
		n := int64(len(b.Rows))
		it.sc.Rows += n
		it.sc.Calls += n
	} else {
		it.sc.Calls++
	}
	return ok, err
}

func (it *spanBatchIter) Close() error { return it.in.Close() }

// spanMetaFor derives the static span description from a plan node,
// matching Plan.String's vocabulary so EXPLAIN and EXPLAIN ANALYZE
// render the same operators.
func spanMetaFor(n optimizer.Node, depth int) SpanMeta {
	m := SpanMeta{Depth: depth, EstRows: n.Est().Rows}
	switch x := n.(type) {
	case *optimizer.SeqScan:
		m.Kind = "SeqScan"
		m.Detail = x.Table
		if x.Alias != "" && x.Alias != x.Table {
			m.Detail += " (as " + x.Alias + ")"
		}
	case *optimizer.IndexScan:
		m.Kind = "IndexScan"
		m.Detail = x.Table + " via " + indexName(x.Table, x.Index, x.Primary)
	case *optimizer.HashJoin:
		m.Kind = "HashJoin"
	case *optimizer.LoopJoin:
		m.Kind = "LoopJoin"
	case *optimizer.IndexJoin:
		m.Kind = "IndexJoin"
		m.Detail = x.Table + " via " + indexName(x.Table, x.Index, x.Primary)
	case *optimizer.Agg:
		m.Kind = "Agg"
		m.Detail = fmt.Sprintf("groups=%d aggs=%d", len(x.GroupBy), len(x.Aggs))
	case *optimizer.Project:
		m.Kind = "Project"
		m.Detail = fmt.Sprintf("cols=%d", len(x.Exprs))
	case *optimizer.Sort:
		m.Kind = "Sort"
		m.Detail = fmt.Sprintf("keys=%d", len(x.Keys))
	case *optimizer.Strip:
		m.Kind = "Strip"
		m.Detail = fmt.Sprintf("keep=%d", x.Keep)
	case *optimizer.Distinct:
		m.Kind = "Distinct"
	case *optimizer.Limit:
		m.Kind = "Limit"
		m.Detail = fmt.Sprintf("%d offset %d", x.N, x.Offset)
	default:
		m.Kind = fmt.Sprintf("%T", n)
	}
	return m
}

func indexName(table, index string, primary bool) string {
	if primary {
		return table + ".primary"
	}
	return index
}
