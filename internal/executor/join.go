package executor

import (
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/sqltypes"
)

type hashJoinC struct {
	left, right compiled
	leftKeys    []expr.Compiled // bound against left output
	rightKeys   []expr.Compiled // bound against right output
	residual    expr.Compiled   // bound against combined output
	leftWidth   int
}

func (cp *compiler) compileHashJoin(n *optimizer.HashJoin, depth int) (compiled, error) {
	left, err := cp.compile(n.Left, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := cp.compile(n.Right, depth+1)
	if err != nil {
		return nil, err
	}
	c := &hashJoinC{left: left, right: right, leftWidth: len(n.Left.Out())}
	lres := resolverFor(n.Left.Out())
	rres := resolverFor(n.Right.Out())
	for _, e := range n.LeftKeys {
		ce, err := expr.Bind(e, lres)
		if err != nil {
			return nil, err
		}
		c.leftKeys = append(c.leftKeys, ce)
	}
	for _, e := range n.RightKeys {
		ce, err := expr.Bind(e, rres)
		if err != nil {
			return nil, err
		}
		c.rightKeys = append(c.rightKeys, ce)
	}
	if c.residual, err = bindOpt(n.Residual, resolverFor(n.Out())); err != nil {
		return nil, err
	}
	return c, nil
}

// joinKey encodes the key values into buf, reusing its capacity, and
// returns the extended buffer; ok=false if any value is NULL (SQL equi
// joins never match on NULL). Callers keep one buffer per execution so
// key encoding is allocation-free after the first row.
func joinKey(buf []byte, env *expr.Env, keys []expr.Compiled) ([]byte, bool, error) {
	buf = buf[:0]
	for _, k := range keys {
		v, err := k.Eval(env)
		if err != nil {
			return buf, false, err
		}
		if v.IsNull() {
			return buf, false, nil
		}
		buf = sqltypes.EncodeKey(buf, v)
	}
	return buf, true, nil
}

// buildHashTable drains the build side into the key→rows table. In
// batch mode build rows are copied into an arena (batch producers
// reuse row backing); row iterators yield stable rows, stored as-is.
func (c *hashJoinC) buildHashTable(rt *runtime, batch bool) (map[string][]sqltypes.Row, error) {
	table := map[string][]sqltypes.Row{}
	env := expr.Env{Params: rt.ctx.Params}
	var keyBuf []byte
	addRow := func(row sqltypes.Row) error {
		env.Row = row
		var ok bool
		var err error
		keyBuf, ok, err = joinKey(keyBuf, &env, c.rightKeys)
		if err != nil {
			return err
		}
		if ok {
			table[string(keyBuf)] = append(table[string(keyBuf)], row)
		}
		return nil
	}
	if batch {
		rit, err := openBatchOf(c.right, rt)
		if err != nil {
			return nil, err
		}
		defer rit.Close()
		var arena RowArena
		var b Batch
		for {
			ok, err := rit.NextBatch(&b)
			if err != nil {
				return nil, err
			}
			if !ok {
				return table, nil
			}
			rt.ctx.Tuples += int64(len(b.Rows))
			for _, row := range b.Rows {
				if err := addRow(arena.Clone(row)); err != nil {
					return nil, err
				}
			}
		}
	}
	rit, err := c.right.open(rt)
	if err != nil {
		return nil, err
	}
	defer rit.Close()
	for {
		row, ok, err := rit.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return table, nil
		}
		rt.ctx.Tuples++
		if err := addRow(row); err != nil {
			return nil, err
		}
	}
}

func (c *hashJoinC) open(rt *runtime) (RowIter, error) {
	// Build phase on the right input.
	table, err := c.buildHashTable(rt, false)
	if err != nil {
		return nil, err
	}
	lit, err := c.left.open(rt)
	if err != nil {
		return nil, err
	}
	out := RowIter(&hashProbeIter{
		left: lit, table: table, keys: c.leftKeys,
		env: expr.Env{Params: rt.ctx.Params}, ctx: rt.ctx,
	})
	return maybeFilter(out, c.residual, rt), nil
}

// openBatch runs both join inputs batch-at-a-time: the build side is
// drained directly, the probe side feeds the row-at-a-time probe loop
// through BatchToRows (probing is inherently row-at-a-time here), and
// the output is re-batched. All tuple counts match open exactly.
func (c *hashJoinC) openBatch(rt *runtime) (RowBatchIter, error) {
	table, err := c.buildHashTable(rt, true)
	if err != nil {
		return nil, err
	}
	lit, err := openBatchOf(c.left, rt)
	if err != nil {
		return nil, err
	}
	out := RowIter(&hashProbeIter{
		left: BatchToRows(lit), table: table, keys: c.leftKeys,
		env: expr.Env{Params: rt.ctx.Params}, ctx: rt.ctx,
	})
	return RowsToBatch(maybeFilter(out, c.residual, rt)), nil
}

type hashProbeIter struct {
	left    RowIter
	table   map[string][]sqltypes.Row
	keys    []expr.Compiled
	env     expr.Env
	ctx     *Ctx
	current sqltypes.Row
	matches []sqltypes.Row
	mpos    int
	keyBuf  []byte
	arena   RowArena
}

func (it *hashProbeIter) Next() (sqltypes.Row, bool, error) {
	for {
		if it.mpos < len(it.matches) {
			r := it.matches[it.mpos]
			it.mpos++
			it.ctx.Tuples++
			return it.arena.Combine(it.current, r), true, nil
		}
		row, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.ctx.Tuples++
		it.env.Row = row
		it.keyBuf, ok, err = joinKey(it.keyBuf, &it.env, it.keys)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		it.current = row
		it.matches = it.table[string(it.keyBuf)]
		it.mpos = 0
	}
}

func (it *hashProbeIter) Close() error { return it.left.Close() }

type loopJoinC struct {
	left, right compiled
	cond        expr.Compiled
}

func (cp *compiler) compileLoopJoin(n *optimizer.LoopJoin, depth int) (compiled, error) {
	left, err := cp.compile(n.Left, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := cp.compile(n.Right, depth+1)
	if err != nil {
		return nil, err
	}
	c := &loopJoinC{left: left, right: right}
	if c.cond, err = bindOpt(n.Cond, resolverFor(n.Out())); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *loopJoinC) open(rt *runtime) (RowIter, error) {
	rit, err := c.right.open(rt)
	if err != nil {
		return nil, err
	}
	rights, err := Collect(rit)
	if err != nil {
		return nil, err
	}
	lit, err := c.left.open(rt)
	if err != nil {
		return nil, err
	}
	out := RowIter(&loopJoinIter{left: lit, rights: rights, ctx: rt.ctx, rpos: len(rights)})
	return maybeFilter(out, c.cond, rt), nil
}

type loopJoinIter struct {
	left    RowIter
	rights  []sqltypes.Row
	ctx     *Ctx
	current sqltypes.Row
	rpos    int
	arena   RowArena
}

func (it *loopJoinIter) Next() (sqltypes.Row, bool, error) {
	for {
		if it.rpos < len(it.rights) {
			r := it.rights[it.rpos]
			it.rpos++
			it.ctx.Tuples++
			return it.arena.Combine(it.current, r), true, nil
		}
		row, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.ctx.Tuples++
		it.current = row
		it.rpos = 0
	}
}

func (it *loopJoinIter) Close() error { return it.left.Close() }

type indexJoinC struct {
	left     compiled
	table    string
	index    string
	primary  bool
	keys     []expr.Compiled // bound against left output
	residual expr.Compiled   // bound against combined output
}

func (cp *compiler) compileIndexJoin(n *optimizer.IndexJoin, depth int) (compiled, error) {
	left, err := cp.compile(n.Left, depth+1)
	if err != nil {
		return nil, err
	}
	c := &indexJoinC{left: left, table: n.Table, index: n.Index, primary: n.Primary}
	lres := resolverFor(n.Left.Out())
	for _, e := range n.LeftKeys {
		ce, err := expr.Bind(e, lres)
		if err != nil {
			return nil, err
		}
		c.keys = append(c.keys, ce)
	}
	if c.residual, err = bindOpt(n.Residual, resolverFor(n.Out())); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *indexJoinC) open(rt *runtime) (RowIter, error) {
	lit, err := c.left.open(rt)
	if err != nil {
		return nil, err
	}
	out := RowIter(&indexJoinIter{c: c, rt: rt, left: lit, env: expr.Env{Params: rt.ctx.Params}})
	return maybeFilter(out, c.residual, rt), nil
}

type indexJoinIter struct {
	c       *indexJoinC
	rt      *runtime
	left    RowIter
	env     expr.Env
	current sqltypes.Row
	inner   RowIter
	arena   RowArena
}

func (it *indexJoinIter) Next() (sqltypes.Row, bool, error) {
	for {
		if it.inner != nil {
			r, ok, err := it.inner.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				it.rt.ctx.Tuples++
				return it.arena.Combine(it.current, r), true, nil
			}
			it.inner.Close()
			it.inner = nil
		}
		row, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.rt.ctx.Tuples++
		it.current = row
		it.env.Row = row
		lo, hi, ok, err := buildRange(&it.env, it.c.keys, nil, nil, false, false)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue // NULL probe key: no matches
		}
		var inner RowIter
		if it.c.primary {
			inner, err = it.rt.st.PrimaryRange(it.c.table, lo, hi)
		} else {
			inner, err = it.rt.st.IndexRange(it.c.table, it.c.index, lo, hi)
		}
		if err != nil {
			return nil, false, err
		}
		it.inner = inner
	}
}

func (it *indexJoinIter) Close() error {
	if it.inner != nil {
		it.inner.Close()
	}
	return it.left.Close()
}
