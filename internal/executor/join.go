package executor

import (
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/sqltypes"
)

type hashJoinC struct {
	left, right compiled
	leftKeys    []expr.Compiled // bound against left output
	rightKeys   []expr.Compiled // bound against right output
	residual    expr.Compiled   // bound against combined output
	leftWidth   int
}

func (cp *compiler) compileHashJoin(n *optimizer.HashJoin, depth int) (compiled, error) {
	left, err := cp.compile(n.Left, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := cp.compile(n.Right, depth+1)
	if err != nil {
		return nil, err
	}
	c := &hashJoinC{left: left, right: right, leftWidth: len(n.Left.Out())}
	lres := resolverFor(n.Left.Out())
	rres := resolverFor(n.Right.Out())
	for _, e := range n.LeftKeys {
		ce, err := expr.Bind(e, lres)
		if err != nil {
			return nil, err
		}
		c.leftKeys = append(c.leftKeys, ce)
	}
	for _, e := range n.RightKeys {
		ce, err := expr.Bind(e, rres)
		if err != nil {
			return nil, err
		}
		c.rightKeys = append(c.rightKeys, ce)
	}
	if c.residual, err = bindOpt(n.Residual, resolverFor(n.Out())); err != nil {
		return nil, err
	}
	return c, nil
}

// joinKey encodes the key values; ok=false if any is NULL (SQL equi
// joins never match on NULL).
func joinKey(env *expr.Env, keys []expr.Compiled) (string, bool, error) {
	var buf []byte
	for _, k := range keys {
		v, err := k.Eval(env)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil
		}
		buf = sqltypes.EncodeKey(buf, v)
	}
	return string(buf), true, nil
}

func (c *hashJoinC) open(rt *runtime) (RowIter, error) {
	// Build phase on the right input.
	rit, err := c.right.open(rt)
	if err != nil {
		return nil, err
	}
	table := map[string][]sqltypes.Row{}
	env := expr.Env{Params: rt.ctx.Params}
	for {
		row, ok, err := rit.Next()
		if err != nil {
			rit.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rt.ctx.Tuples++
		env.Row = row
		key, ok, err := joinKey(&env, c.rightKeys)
		if err != nil {
			rit.Close()
			return nil, err
		}
		if !ok {
			continue
		}
		table[key] = append(table[key], row)
	}
	if err := rit.Close(); err != nil {
		return nil, err
	}
	lit, err := c.left.open(rt)
	if err != nil {
		return nil, err
	}
	out := RowIter(&hashProbeIter{
		left: lit, table: table, keys: c.leftKeys,
		env: expr.Env{Params: rt.ctx.Params}, ctx: rt.ctx,
	})
	return maybeFilter(out, c.residual, rt), nil
}

type hashProbeIter struct {
	left    RowIter
	table   map[string][]sqltypes.Row
	keys    []expr.Compiled
	env     expr.Env
	ctx     *Ctx
	current sqltypes.Row
	matches []sqltypes.Row
	mpos    int
}

func (it *hashProbeIter) Next() (sqltypes.Row, bool, error) {
	for {
		if it.mpos < len(it.matches) {
			r := it.matches[it.mpos]
			it.mpos++
			it.ctx.Tuples++
			combined := make(sqltypes.Row, 0, len(it.current)+len(r))
			combined = append(combined, it.current...)
			combined = append(combined, r...)
			return combined, true, nil
		}
		row, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.ctx.Tuples++
		it.env.Row = row
		key, ok, err := joinKey(&it.env, it.keys)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		it.current = row
		it.matches = it.table[key]
		it.mpos = 0
	}
}

func (it *hashProbeIter) Close() error { return it.left.Close() }

type loopJoinC struct {
	left, right compiled
	cond        expr.Compiled
}

func (cp *compiler) compileLoopJoin(n *optimizer.LoopJoin, depth int) (compiled, error) {
	left, err := cp.compile(n.Left, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := cp.compile(n.Right, depth+1)
	if err != nil {
		return nil, err
	}
	c := &loopJoinC{left: left, right: right}
	if c.cond, err = bindOpt(n.Cond, resolverFor(n.Out())); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *loopJoinC) open(rt *runtime) (RowIter, error) {
	rit, err := c.right.open(rt)
	if err != nil {
		return nil, err
	}
	rights, err := Collect(rit)
	if err != nil {
		return nil, err
	}
	lit, err := c.left.open(rt)
	if err != nil {
		return nil, err
	}
	out := RowIter(&loopJoinIter{left: lit, rights: rights, ctx: rt.ctx, rpos: len(rights)})
	return maybeFilter(out, c.cond, rt), nil
}

type loopJoinIter struct {
	left    RowIter
	rights  []sqltypes.Row
	ctx     *Ctx
	current sqltypes.Row
	rpos    int
}

func (it *loopJoinIter) Next() (sqltypes.Row, bool, error) {
	for {
		if it.rpos < len(it.rights) {
			r := it.rights[it.rpos]
			it.rpos++
			it.ctx.Tuples++
			combined := make(sqltypes.Row, 0, len(it.current)+len(r))
			combined = append(combined, it.current...)
			combined = append(combined, r...)
			return combined, true, nil
		}
		row, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.ctx.Tuples++
		it.current = row
		it.rpos = 0
	}
}

func (it *loopJoinIter) Close() error { return it.left.Close() }

type indexJoinC struct {
	left     compiled
	table    string
	index    string
	primary  bool
	keys     []expr.Compiled // bound against left output
	residual expr.Compiled   // bound against combined output
}

func (cp *compiler) compileIndexJoin(n *optimizer.IndexJoin, depth int) (compiled, error) {
	left, err := cp.compile(n.Left, depth+1)
	if err != nil {
		return nil, err
	}
	c := &indexJoinC{left: left, table: n.Table, index: n.Index, primary: n.Primary}
	lres := resolverFor(n.Left.Out())
	for _, e := range n.LeftKeys {
		ce, err := expr.Bind(e, lres)
		if err != nil {
			return nil, err
		}
		c.keys = append(c.keys, ce)
	}
	if c.residual, err = bindOpt(n.Residual, resolverFor(n.Out())); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *indexJoinC) open(rt *runtime) (RowIter, error) {
	lit, err := c.left.open(rt)
	if err != nil {
		return nil, err
	}
	out := RowIter(&indexJoinIter{c: c, rt: rt, left: lit, env: expr.Env{Params: rt.ctx.Params}})
	return maybeFilter(out, c.residual, rt), nil
}

type indexJoinIter struct {
	c       *indexJoinC
	rt      *runtime
	left    RowIter
	env     expr.Env
	current sqltypes.Row
	inner   RowIter
}

func (it *indexJoinIter) Next() (sqltypes.Row, bool, error) {
	for {
		if it.inner != nil {
			r, ok, err := it.inner.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				it.rt.ctx.Tuples++
				combined := make(sqltypes.Row, 0, len(it.current)+len(r))
				combined = append(combined, it.current...)
				combined = append(combined, r...)
				return combined, true, nil
			}
			it.inner.Close()
			it.inner = nil
		}
		row, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.rt.ctx.Tuples++
		it.current = row
		it.env.Row = row
		lo, hi, ok, err := buildRange(&it.env, it.c.keys, nil, nil, false, false)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue // NULL probe key: no matches
		}
		var inner RowIter
		if it.c.primary {
			inner, err = it.rt.st.PrimaryRange(it.c.table, lo, hi)
		} else {
			inner, err = it.rt.st.IndexRange(it.c.table, it.c.index, lo, hi)
		}
		if err != nil {
			return nil, false, err
		}
		it.inner = inner
	}
}

func (it *indexJoinIter) Close() error {
	if it.inner != nil {
		it.inner.Close()
	}
	return it.left.Close()
}
