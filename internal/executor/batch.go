package executor

import (
	"repro/internal/sqltypes"
)

// Vectorized execution: alongside the row-at-a-time RowIter pipeline,
// operators can move rows in batches of ~BatchSize. The batch path and
// the row path are semantically identical — same rows, same Ctx.Tuples
// counts, same per-operator trace counts — the batch path just
// amortizes per-row interpretation overhead (page pins, record
// allocations, iterator virtual calls) across a whole batch.
//
// Ownership contract: the rows delivered in a Batch are valid only
// until the next NextBatch or Close call on the same iterator.
// Producers reuse the batch backing; consumers that retain rows beyond
// one batch (sort, hash-join build, result collection) must copy them,
// e.g. through a RowArena. Row-at-a-time iterators, by contrast,
// always yield stable rows, which is what lets RowsToBatch alias them.

// BatchSize is the target number of rows per batch: large enough to
// amortize per-batch costs over many pages, small enough to stay
// cache-resident.
const BatchSize = 1024

// Batch is a reusable container of rows. The caller owns the struct;
// producers fill Rows reusing its capacity.
type Batch struct {
	Rows []sqltypes.Row
}

// Reset empties the batch, keeping capacity.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

// RowBatchIter produces rows a batch at a time. NextBatch fills b
// (reusing its capacity) and reports whether the batch holds any rows;
// ok=false means the input is exhausted and b is empty. Implementations
// are not safe for concurrent use.
type RowBatchIter interface {
	NextBatch(b *Batch) (bool, error)
	Close() error
}

// batchCompiled is implemented by compiled operators that can open a
// batch-at-a-time iterator. Operators without it run row-at-a-time and
// are bridged with RowsToBatch (the shim that keeps row-only operators
// — index join, loop join probe, distinct, limit — correct without a
// rewrite).
type batchCompiled interface {
	openBatch(rt *runtime) (RowBatchIter, error)
}

// openBatchOf opens c in batch mode, bridging row-only operators.
func openBatchOf(c compiled, rt *runtime) (RowBatchIter, error) {
	if bc, ok := c.(batchCompiled); ok {
		return bc.openBatch(rt)
	}
	it, err := c.open(rt)
	if err != nil {
		return nil, err
	}
	return RowsToBatch(it), nil
}

// RunBatch opens the plan in batch mode against storage. Operators
// that support vectorized execution run batch-at-a-time; the rest run
// row-at-a-time behind shims. Results, Ctx.Tuples and trace counts are
// identical to Run. The returned iterator must be closed.
func (p *Prepared) RunBatch(st Storage, ctx *Ctx) (RowBatchIter, error) {
	rt := &runtime{st: st, ctx: ctx}
	return openBatchOf(p.root, rt)
}

// RowsToBatch adapts a row iterator to the batch interface by pulling
// up to BatchSize rows per batch. Row iterators yield stable rows, so
// the batch may alias them.
func RowsToBatch(it RowIter) RowBatchIter { return &rowsToBatchIter{in: it} }

type rowsToBatchIter struct {
	in   RowIter
	done bool
}

func (a *rowsToBatchIter) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	if a.done {
		return false, nil
	}
	for len(b.Rows) < BatchSize {
		row, ok, err := a.in.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			// Latch exhaustion: the caller's final drain call must not
			// hit the exhausted row subtree again (it would inflate
			// every span's call count below this point).
			a.done = true
			break
		}
		b.Rows = append(b.Rows, row)
	}
	return len(b.Rows) > 0, nil
}

func (a *rowsToBatchIter) Close() error { return a.in.Close() }

// BatchToRows adapts a batch iterator to the row interface. Rows are
// served out of the adapter's internal batch, so each row stays valid
// until the adapter refills — i.e. across at most one batch of Next
// calls, which satisfies every row-at-a-time consumer that does not
// retain rows (retaining consumers copy, as they must under the batch
// contract anyway).
func BatchToRows(bi RowBatchIter) RowIter { return &batchToRowsIter{in: bi} }

type batchToRowsIter struct {
	in   RowBatchIter
	b    Batch
	pos  int
	done bool
}

func (a *batchToRowsIter) Next() (sqltypes.Row, bool, error) {
	for {
		if a.pos < len(a.b.Rows) {
			r := a.b.Rows[a.pos]
			a.pos++
			return r, true, nil
		}
		if a.done {
			return nil, false, nil
		}
		ok, err := a.in.NextBatch(&a.b)
		if err != nil {
			return nil, false, err
		}
		a.pos = 0
		if !ok {
			a.done = true
			return nil, false, nil
		}
	}
}

func (a *batchToRowsIter) Close() error { return a.in.Close() }

// RowArena carves stable row copies out of shared chunks, so
// materializing rows costs one allocation per chunk instead of one per
// row. Chunks grow geometrically from a small start (point lookups
// materialize a handful of values; scans settle on maxArenaChunk-value
// chunks). Carved rows are never overwritten — full-capacity slicing
// keeps later appends from aliasing them — and abandoned chunks are
// garbage-collected as soon as their carved rows are dropped, so a
// consumer that discards rows never accumulates the whole scan.
// Exported for the engine's row iterators, which share the same
// stability contract.
type RowArena struct {
	buf []sqltypes.Value
}

const (
	minArenaChunk = 64
	maxArenaChunk = 8192
)

// grow ensures the current chunk has room for need more values,
// starting a fresh chunk otherwise.
func (a *RowArena) grow(need int) {
	if cap(a.buf)-len(a.buf) >= need {
		return
	}
	size := 2 * cap(a.buf)
	if size < minArenaChunk {
		size = minArenaChunk
	}
	if size > maxArenaChunk {
		size = maxArenaChunk
	}
	if need > size {
		size = need
	}
	a.buf = make([]sqltypes.Value, 0, size)
}

// Alloc carves an uninitialized stable row of n values the caller
// fills in place.
func (a *RowArena) Alloc(n int) sqltypes.Row {
	a.grow(n)
	start := len(a.buf)
	a.buf = a.buf[:start+n]
	return sqltypes.Row(a.buf[start : start+n : start+n])
}

// Clone copies row into the arena and returns the stable copy.
func (a *RowArena) Clone(row sqltypes.Row) sqltypes.Row {
	return a.Combine(row, nil)
}

// Combine copies the concatenation of left and right into the arena.
func (a *RowArena) Combine(left, right sqltypes.Row) sqltypes.Row {
	a.grow(len(left) + len(right))
	start := len(a.buf)
	a.buf = append(a.buf, left...)
	a.buf = append(a.buf, right...)
	return sqltypes.Row(a.buf[start:len(a.buf):len(a.buf)])
}

// CollectBatches drains a batch iterator into a slice of stable rows
// and closes it. The batch-path counterpart of Collect.
func CollectBatches(bi RowBatchIter) ([]sqltypes.Row, error) {
	defer bi.Close()
	var out []sqltypes.Row
	var arena RowArena
	var b Batch
	for {
		ok, err := bi.NextBatch(&b)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		for _, row := range b.Rows {
			out = append(out, arena.Clone(row))
		}
	}
}
