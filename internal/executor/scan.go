package executor

import (
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// resolverFor builds an expression resolver over a node's output
// columns.
func resolverFor(cols []optimizer.OutCol) *expr.SimpleResolver {
	r := &expr.SimpleResolver{Cols: make([]expr.ResolvedCol, len(cols))}
	for i, c := range cols {
		r.Cols[i] = expr.ResolvedCol{Table: c.Table, Name: c.Name, Type: c.Type}
	}
	return r
}

// bindOpt binds an optional expression (nil stays nil).
func bindOpt(e sqlparser.Expr, r expr.Resolver) (expr.Compiled, error) {
	if e == nil {
		return nil, nil
	}
	return expr.Bind(e, r)
}

// filterIter applies a predicate to its input.
type filterIter struct {
	in   RowIter
	pred expr.Compiled
	env  expr.Env
	ctx  *Ctx
}

func (it *filterIter) Next() (sqltypes.Row, bool, error) {
	for {
		row, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.ctx.Tuples++
		it.env.Row = row
		v, err := it.pred.Eval(&it.env)
		if err != nil {
			return nil, false, err
		}
		if v.Bool() {
			return row, true, nil
		}
	}
}

func (it *filterIter) Close() error { return it.in.Close() }

func maybeFilter(in RowIter, pred expr.Compiled, rt *runtime) RowIter {
	if pred == nil {
		return in
	}
	return &filterIter{in: in, pred: pred, env: expr.Env{Params: rt.ctx.Params}, ctx: rt.ctx}
}

// BatchStorage is optionally implemented by Storage backends that can
// scan base tables a batch at a time (page-at-a-time page pinning plus
// arena row decoding in the engine adapter). Sequential scans use it
// when present and fall back to row-at-a-time ScanTable otherwise.
type BatchStorage interface {
	ScanTableBatch(name string) (RowBatchIter, error)
}

// filterBatchIter applies a predicate batch-at-a-time: the predicate
// column is evaluated with expr.EvalBatch and passing rows are
// compacted into the output batch (aliasing the input batch, which is
// safe: the output is invalidated exactly when the input refills).
// Tuple accounting matches filterIter: every input row counts.
type filterBatchIter struct {
	in   RowBatchIter
	pred expr.Compiled
	env  expr.Env
	ctx  *Ctx
	raw  Batch            // input scratch
	vals []sqltypes.Value // predicate column scratch
}

func (it *filterBatchIter) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	for {
		ok, err := it.in.NextBatch(&it.raw)
		if err != nil {
			return false, err
		}
		if !ok {
			return len(b.Rows) > 0, nil
		}
		it.ctx.Tuples += int64(len(it.raw.Rows))
		it.vals = it.vals[:0]
		it.vals, err = expr.EvalBatch(it.pred, &it.env, it.raw.Rows, it.vals)
		if err != nil {
			return false, err
		}
		for i, row := range it.raw.Rows {
			if it.vals[i].Bool() {
				b.Rows = append(b.Rows, row)
			}
		}
		if len(b.Rows) > 0 {
			return true, nil
		}
	}
}

func (it *filterBatchIter) Close() error { return it.in.Close() }

// countingBatchIter counts tuples flowing through an unfiltered scan,
// mirroring countingIter.
type countingBatchIter struct {
	in  RowBatchIter
	ctx *Ctx
}

func (it *countingBatchIter) NextBatch(b *Batch) (bool, error) {
	ok, err := it.in.NextBatch(b)
	it.ctx.Tuples += int64(len(b.Rows))
	return ok, err
}

func (it *countingBatchIter) Close() error { return it.in.Close() }

type seqScanC struct {
	table  string
	filter expr.Compiled
}

func compileSeqScan(n *optimizer.SeqScan) (compiled, error) {
	f, err := bindOpt(n.Filter, resolverFor(n.Cols))
	if err != nil {
		return nil, err
	}
	return &seqScanC{table: n.Table, filter: f}, nil
}

func (c *seqScanC) open(rt *runtime) (RowIter, error) {
	it, err := rt.st.ScanTable(c.table)
	if err != nil {
		return nil, err
	}
	if c.filter == nil {
		return &countingIter{in: it, ctx: rt.ctx}, nil
	}
	return maybeFilter(it, c.filter, rt), nil
}

// openBatch scans the table batch-at-a-time when the storage backend
// supports it, applying the pushed-down filter vectorized. Otherwise
// the row-at-a-time open is bridged, which keeps counts identical.
func (c *seqScanC) openBatch(rt *runtime) (RowBatchIter, error) {
	bs, ok := rt.st.(BatchStorage)
	if !ok {
		it, err := c.open(rt)
		if err != nil {
			return nil, err
		}
		return RowsToBatch(it), nil
	}
	bi, err := bs.ScanTableBatch(c.table)
	if err != nil {
		return nil, err
	}
	if c.filter == nil {
		return &countingBatchIter{in: bi, ctx: rt.ctx}, nil
	}
	return &filterBatchIter{in: bi, pred: c.filter,
		env: expr.Env{Params: rt.ctx.Params}, ctx: rt.ctx}, nil
}

// countingIter counts tuples flowing through an unfiltered scan.
type countingIter struct {
	in  RowIter
	ctx *Ctx
}

func (it *countingIter) Next() (sqltypes.Row, bool, error) {
	row, ok, err := it.in.Next()
	if ok {
		it.ctx.Tuples++
	}
	return row, ok, err
}

func (it *countingIter) Close() error { return it.in.Close() }

type indexScanC struct {
	table   string
	index   string
	primary bool
	eq      []expr.Compiled
	lo, hi  expr.Compiled
	loIncl  bool
	hiIncl  bool
	filter  expr.Compiled
}

func compileIndexScan(n *optimizer.IndexScan) (compiled, error) {
	res := resolverFor(n.Cols)
	c := &indexScanC{table: n.Table, index: n.Index, primary: n.Primary,
		loIncl: n.LoIncl, hiIncl: n.HiIncl}
	// Key expressions are constant (literals/params): bind with an
	// empty row resolver.
	konst := &expr.SimpleResolver{}
	for _, e := range n.Eq {
		ce, err := expr.Bind(e, konst)
		if err != nil {
			return nil, err
		}
		c.eq = append(c.eq, ce)
	}
	var err error
	if c.lo, err = bindOpt(n.Lo, konst); err != nil {
		return nil, err
	}
	if c.hi, err = bindOpt(n.Hi, konst); err != nil {
		return nil, err
	}
	if c.filter, err = bindOpt(n.Filter, res); err != nil {
		return nil, err
	}
	return c, nil
}

// buildRange computes the [lo, hi) key range for an equality prefix
// plus optional range bounds. Returns ok=false when a probe value is
// NULL (no row can match).
func buildRange(env *expr.Env, eq []expr.Compiled, loE, hiE expr.Compiled, loIncl, hiIncl bool) (lo, hi []byte, ok bool, err error) {
	var prefix []byte
	for _, ce := range eq {
		v, err := ce.Eval(env)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			return nil, nil, false, nil
		}
		prefix = sqltypes.EncodeKey(prefix, v)
	}
	lo = append([]byte(nil), prefix...)
	hi = append([]byte(nil), prefix...)
	switch {
	case loE == nil && hiE == nil:
		hi = append(hi, 0xFF)
	default:
		if loE != nil {
			v, err := loE.Eval(env)
			if err != nil {
				return nil, nil, false, err
			}
			if v.IsNull() {
				return nil, nil, false, nil
			}
			lo = sqltypes.EncodeKey(lo, v)
			if !loIncl {
				lo = append(lo, 0xFF)
			}
		}
		if hiE != nil {
			v, err := hiE.Eval(env)
			if err != nil {
				return nil, nil, false, err
			}
			if v.IsNull() {
				return nil, nil, false, nil
			}
			hi = sqltypes.EncodeKey(hi, v)
			if hiIncl {
				hi = append(hi, 0xFF)
			}
		} else {
			hi = append(hi, 0xFF)
		}
	}
	return lo, hi, true, nil
}

func (c *indexScanC) open(rt *runtime) (RowIter, error) {
	env := expr.Env{Params: rt.ctx.Params}
	lo, hi, ok, err := buildRange(&env, c.eq, c.lo, c.hi, c.loIncl, c.hiIncl)
	if err != nil {
		return nil, err
	}
	if !ok {
		return &SliceRowIter{}, nil
	}
	var it RowIter
	if c.primary {
		it, err = rt.st.PrimaryRange(c.table, lo, hi)
	} else {
		it, err = rt.st.IndexRange(c.table, c.index, lo, hi)
	}
	if err != nil {
		return nil, err
	}
	if c.filter == nil {
		return &countingIter{in: it, ctx: rt.ctx}, nil
	}
	return maybeFilter(it, c.filter, rt), nil
}
