// Package charts renders the analyzer's graphical feedback as
// deterministic ASCII: grouped bar charts (the paper's Figure 6 cost
// diagram, Figure 7 results) and time-series charts with event markers
// (the Figure 8 locks diagram).
package charts

import (
	"fmt"
	"math"
	"strings"
)

// BarGroup is one labelled group of bars (e.g. one query with actual /
// estimated / what-if cost).
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart renders grouped horizontal bars. Series names the bars
// within each group; width is the maximum bar width in characters.
func BarChart(title string, series []string, groups []BarGroup, width int) string {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, g := range groups {
		for _, v := range g.Values {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	labelW := 0
	for _, g := range groups {
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
	}
	seriesW := 0
	for _, s := range series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	marks := []byte{'#', '=', '-', '+', '*'}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for gi, g := range groups {
		if gi > 0 {
			b.WriteByte('\n')
		}
		for si, v := range g.Values {
			name := ""
			if si < len(series) {
				name = series[si]
			}
			label := ""
			if si == 0 {
				label = g.Label
			}
			n := int(math.Round(v / max * float64(width)))
			if v > 0 && n == 0 {
				n = 1
			}
			mark := marks[si%len(marks)]
			fmt.Fprintf(&b, "%-*s %-*s |%s %s\n",
				labelW, label, seriesW, name,
				strings.Repeat(string(mark), n), formatNum(v))
		}
	}
	return b.String()
}

// Point is one sample of a time series.
type Point struct {
	T float64 // seconds since start
	V float64
}

// Marker flags an event on the time axis (lock waits, deadlocks).
type Marker struct {
	T     float64
	Label byte // printed in the marker row
}

// SeriesChart renders a scaled line chart of one series over time with
// a marker row underneath — the shape of the paper's locks diagram.
func SeriesChart(title string, pts []Point, markers []Marker, width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 10
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	tMin, tMax := pts[0].T, pts[0].T
	vMax := 0.0
	for _, p := range pts {
		if p.T < tMin {
			tMin = p.T
		}
		if p.T > tMax {
			tMax = p.T
		}
		if p.V > vMax {
			vMax = p.V
		}
	}
	if tMax == tMin {
		tMax = tMin + 1
	}
	if vMax == 0 {
		vMax = 1
	}
	// Downsample the series to the chart width.
	cols := make([]float64, width)
	filled := make([]bool, width)
	for _, p := range pts {
		x := int((p.T - tMin) / (tMax - tMin) * float64(width-1))
		if p.V > cols[x] || !filled[x] {
			cols[x] = p.V
			filled[x] = true
		}
	}
	// Forward-fill gaps.
	last := 0.0
	for x := 0; x < width; x++ {
		if filled[x] {
			last = cols[x]
		} else {
			cols[x] = last
		}
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		h := int(math.Round(cols[x] / vMax * float64(height-1)))
		for y := 0; y <= h; y++ {
			grid[height-1-y][x] = '.'
		}
		grid[height-1-h][x] = '*'
	}
	for y, rowBytes := range grid {
		axis := " "
		if y == 0 {
			axis = formatNum(vMax)
		}
		if y == height-1 {
			axis = "0"
		}
		fmt.Fprintf(&b, "%8s |%s\n", axis, string(rowBytes))
	}
	// Marker row.
	markRow := []byte(strings.Repeat(" ", width))
	for _, m := range markers {
		x := int((m.T - tMin) / (tMax - tMin) * float64(width-1))
		if x >= 0 && x < width {
			markRow[x] = m.Label
		}
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %s\n", "", string(markRow))
	fmt.Fprintf(&b, "%8s  t=%ss .. %ss\n", "", formatNum(tMin), formatNum(tMax))
	return b.String()
}

func formatNum(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
