package charts

import (
	"strings"
	"testing"
)

func TestBarChartBasics(t *testing.T) {
	out := BarChart("Cost Diagram", []string{"actual", "estimated", "what-if"},
		[]BarGroup{
			{Label: "Q1", Values: []float64{100, 40, 10}},
			{Label: "Q2", Values: []float64{50, 55, 50}},
		}, 40)
	if !strings.Contains(out, "Cost Diagram") {
		t.Error("title missing")
	}
	for _, want := range []string{"Q1", "Q2", "actual", "estimated", "what-if", "100", "55"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the longest bar.
	lines := strings.Split(out, "\n")
	maxHashes, q2Hashes := 0, 0
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes = n
		}
		if strings.HasPrefix(l, "Q2") {
			q2Hashes = strings.Count(l, "#")
		}
	}
	if maxHashes != 40 {
		t.Errorf("max bar = %d, want 40", maxHashes)
	}
	if q2Hashes >= maxHashes {
		t.Errorf("Q2 bar (%d) should be shorter than Q1 (%d)", q2Hashes, maxHashes)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	out := BarChart("", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{0}}}, 0)
	if !strings.Contains(out, "x") {
		t.Errorf("zero-value chart broken:\n%s", out)
	}
	if BarChart("t", nil, nil, 10) == "" {
		t.Error("empty chart should still render the title")
	}
}

func TestSeriesChart(t *testing.T) {
	var pts []Point
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{T: float64(i), V: float64(i % 20)})
	}
	out := SeriesChart("Locks", pts, []Marker{{T: 50, Label: 'D'}, {T: 10, Label: 'W'}}, 60, 8)
	if !strings.Contains(out, "Locks") || !strings.Contains(out, "*") {
		t.Errorf("series chart broken:\n%s", out)
	}
	if !strings.Contains(out, "D") || !strings.Contains(out, "W") {
		t.Errorf("markers missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 8 grid rows + title + separator + markers + time range.
	if len(lines) != 12 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestSeriesChartDegenerate(t *testing.T) {
	if out := SeriesChart("x", nil, nil, 10, 4); !strings.Contains(out, "no data") {
		t.Errorf("empty series: %q", out)
	}
	// Single point must not divide by zero.
	out := SeriesChart("x", []Point{{T: 5, V: 3}}, nil, 10, 4)
	if !strings.Contains(out, "*") {
		t.Errorf("single point chart broken:\n%s", out)
	}
}
