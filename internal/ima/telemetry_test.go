package ima

import (
	"fmt"
	"sync"
	"testing"
)

// TestLatencyTableMatchesFrequencies checks the telemetry-plane
// invariant: for every statement, the stmt-scope bucket counts in
// ima_latency sum exactly to its frequency in ima_statements, and the
// global wall histogram equals the sum over all statements.
func TestLatencyTableMatchesFrequencies(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)

	lat := exec(t, s, "SELECT scope, hash, bucket_count FROM ima_latency")
	perHash := map[int64]int64{}
	var wallTotal, stmtTotal int64
	for _, r := range lat.Rows {
		switch r[0].S {
		case "wall":
			wallTotal += r[2].I
		case "stmt":
			perHash[r[1].I] += r[2].I
			stmtTotal += r[2].I
		}
	}
	if wallTotal == 0 {
		t.Fatal("global wall histogram is empty after seed workload")
	}
	if wallTotal != stmtTotal {
		t.Errorf("global wall total %d != Σ per-statement totals %d", wallTotal, stmtTotal)
	}

	freq := exec(t, s, "SELECT hash, frequency FROM ima_statements")
	freqByHash := map[int64]int64{}
	for _, r := range freq.Rows {
		freqByHash[r[0].I] = r[1].I
	}
	for hash, n := range perHash {
		if freqByHash[hash] != n {
			t.Errorf("hash %d: ima_latency sum %d != ima_statements frequency %d",
				hash, n, freqByHash[hash])
		}
	}
}

func TestLatencyTableBucketBounds(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)
	res := exec(t, s, "SELECT bucket, lo_ns, hi_ns, bucket_count FROM ima_latency WHERE scope = 'wall'")
	if len(res.Rows) == 0 {
		t.Fatal("no wall-scope rows")
	}
	for _, r := range res.Rows {
		if r[1].I >= r[2].I {
			t.Errorf("bucket %d: lo %d >= hi %d", r[0].I, r[1].I, r[2].I)
		}
		if r[3].I <= 0 {
			t.Errorf("bucket %d: empty buckets must be skipped, count %d", r[0].I, r[3].I)
		}
	}
}

// TestSpansTableAfterExplainAnalyze checks that EXPLAIN ANALYZE leaves
// a per-operator trace in ima_spans that joins ima_statements on hash.
func TestSpansTableAfterExplainAnalyze(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)
	const sql = "EXPLAIN ANALYZE SELECT v FROM items WHERE id = 3"
	exec(t, s, sql)

	spans := exec(t, s, "SELECT trace_seq, hash, op, depth, rows, span_ns, calls FROM ima_spans")
	if len(spans.Rows) == 0 {
		t.Fatal("ima_spans is empty after EXPLAIN ANALYZE")
	}
	hash := spans.Rows[0][1].I
	sawRoot := false
	for _, r := range spans.Rows {
		if r[1].I != hash {
			t.Errorf("span hash %d differs from %d within one trace", r[1].I, hash)
		}
		if r[2].S == "" {
			t.Error("span with empty operator name")
		}
		if r[3].I == 0 {
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Error("no depth-0 root span")
	}

	// The trace hash joins back to the monitored statement text.
	joined := exec(t, s, fmt.Sprintf(
		"SELECT query_text FROM ima_statements WHERE hash = %d", hash))
	if len(joined.Rows) != 1 || joined.Rows[0][0].S != sql {
		t.Errorf("ima_spans.hash does not join ima_statements: %v", joined.Rows)
	}
}

func TestHealthTable(t *testing.T) {
	db, mon, s := newMonitoredDB(t)
	if err := RegisterHealth(db, func() []HealthMetric { return MonitorHealth(mon) }); err != nil {
		t.Fatal(err)
	}
	seed(t, s)
	res := exec(t, s, "SELECT component, metric, value FROM ima_health WHERE component = 'monitor'")
	vals := map[string]float64{}
	for _, r := range res.Rows {
		vals[r[1].S] = r[2].F
	}
	if vals["statements_total"] <= 0 {
		t.Errorf("statements_total = %v, want > 0; rows: %v", vals["statements_total"], res.Rows)
	}
	if vals["distinct_statements"] <= 0 {
		t.Errorf("distinct_statements = %v, want > 0", vals["distinct_statements"])
	}
	if _, ok := vals["traces_buffered"]; !ok {
		t.Error("traces_buffered metric missing")
	}
}

// TestIMATablesConcurrentWithWriter reads every ima_* table from
// several sessions while another session keeps executing statements.
// Run under -race this exercises every provider against the monitor's
// concurrent recording path.
func TestIMATablesConcurrentWithWriter(t *testing.T) {
	db, mon, s := newMonitoredDB(t)
	if err := RegisterHealth(db, func() []HealthMetric { return MonitorHealth(mon) }); err != nil {
		t.Fatal(err)
	}
	seed(t, s)

	tables := []string{
		"ima_statements", "ima_workload", "ima_references", "ima_tables",
		"ima_attributes", "ima_indexes", "ima_statistics",
		"ima_latency", "ima_spans", "ima_health",
	}

	stop := make(chan struct{})
	errc := make(chan error, 8)

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() { // writer: keeps the monitor's hot path busy
		defer writerWG.Done()
		ws := db.NewSession()
		defer ws.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sql := fmt.Sprintf("SELECT v FROM items WHERE id = %d", i%seedRows)
			if i%50 == 0 {
				sql = "EXPLAIN ANALYZE SELECT COUNT(*) FROM items"
			}
			if _, err := ws.Exec(sql); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
		}
	}()

	var readerWG sync.WaitGroup
	const readers = 4
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			rs := db.NewSession()
			defer rs.Close()
			for round := 0; round < 10; round++ {
				for _, tbl := range tables {
					if _, err := rs.Exec("SELECT * FROM " + tbl); err != nil {
						errc <- fmt.Errorf("%s: %v", tbl, err)
						return
					}
				}
			}
		}()
	}

	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
