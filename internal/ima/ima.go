// Package ima reproduces the Ingres Management Architecture: every
// class of in-memory monitoring objects is registered as a virtual
// table in the database, so the monitor's ring buffers become readable
// over plain SQL — no extra protocol, no disk access (the data lives
// only in main memory until the storage daemon persists it).
//
// The table set mirrors the paper's Figure 3:
//
//	ima_statements  — unique statements keyed by text hash
//	ima_workload    — execution history with estimated vs. actual costs
//	ima_references  — statement → object (table/attribute/index) usage
//	ima_tables      — per-table frequency and physical state
//	ima_attributes  — per-attribute frequency and histogram presence
//	ima_indexes     — per-index frequency
//	ima_statistics  — system-wide statistics (sessions, locks, cache)
//
// The telemetry plane adds three more:
//
//	ima_latency     — log-bucketed latency histograms (global wallclock
//	                  and optimize-time, plus per-statement wallclock)
//	ima_spans       — per-operator spans of recent EXPLAIN ANALYZE
//	                  traces, estimated vs. actual
//	ima_health      — self-observability counters of the monitor and
//	                  the storage daemon (see RegisterHealth)
//
// The adaptive two-phase layer adds two more:
//
//	ima_flags       — the phase-2 flag set: which statements are under
//	                  deep wait attribution, why, and since when
//	ima_waits       — per-flagged-statement wait-state breakdown
//	                  (exec / lock / io / fsync / pinwait vs. wall)
//
// The MVCC layer adds one more:
//
//	ima_mvcc        — snapshot-isolation health: txn begin/commit/abort
//	                  counters, write conflicts, oldest snapshot age,
//	                  vacuum reclaim progress and chain-length p95
package ima

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/monitor"
	"repro/internal/sqltypes"
)

// Register installs the IMA virtual tables on db, reading from mon.
// The statistics table also samples engine-wide counters.
func Register(db *engine.DB, mon *monitor.Monitor) error {
	if mon == nil {
		return fmt.Errorf("ima: monitor is required")
	}
	regs := []struct {
		name     string
		schema   sqltypes.Schema
		provider func() []sqltypes.Row
	}{
		{
			name: "ima_statements",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "hash", Type: sqltypes.Int},
				sqltypes.Column{Name: "query_text", Type: sqltypes.Text},
				sqltypes.Column{Name: "kind", Type: sqltypes.Text},
				sqltypes.Column{Name: "frequency", Type: sqltypes.Int},
				sqltypes.Column{Name: "first_seen_us", Type: sqltypes.Int},
				sqltypes.Column{Name: "last_seen_us", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				stmts := mon.SnapshotStatements()
				rows := make([]sqltypes.Row, 0, len(stmts))
				for _, s := range stmts {
					rows = append(rows, sqltypes.Row{
						sqltypes.NewInt(int64(s.Hash)),
						sqltypes.NewText(truncate(s.Text, engine.MaxTextBytes)),
						sqltypes.NewText(s.Kind),
						sqltypes.NewInt(s.Frequency),
						sqltypes.NewInt(s.FirstSeen.UnixMicro()),
						sqltypes.NewInt(s.LastSeen.UnixMicro()),
					})
				}
				return rows
			},
		},
		{
			name: "ima_workload",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "hash", Type: sqltypes.Int},
				sqltypes.Column{Name: "start_us", Type: sqltypes.Int},
				sqltypes.Column{Name: "wall_us", Type: sqltypes.Int},
				sqltypes.Column{Name: "opt_us", Type: sqltypes.Int},
				sqltypes.Column{Name: "exec_cpu", Type: sqltypes.Int},
				sqltypes.Column{Name: "exec_io", Type: sqltypes.Int},
				sqltypes.Column{Name: "est_cpu", Type: sqltypes.Float},
				sqltypes.Column{Name: "est_io", Type: sqltypes.Float},
				sqltypes.Column{Name: "est_rows", Type: sqltypes.Float},
				sqltypes.Column{Name: "rows", Type: sqltypes.Int},
				sqltypes.Column{Name: "mon_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "error", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				work := mon.SnapshotWorkload()
				rows := make([]sqltypes.Row, 0, len(work))
				for _, w := range work {
					rows = append(rows, workloadRow(w))
				}
				return rows
			},
		},
		{
			name: "ima_references",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "hash", Type: sqltypes.Int},
				sqltypes.Column{Name: "obj_type", Type: sqltypes.Text},
				sqltypes.Column{Name: "obj_name", Type: sqltypes.Text},
				sqltypes.Column{Name: "table_name", Type: sqltypes.Text},
			),
			provider: func() []sqltypes.Row {
				refs := mon.SnapshotReferences()
				rows := make([]sqltypes.Row, 0, len(refs))
				for _, r := range refs {
					rows = append(rows, sqltypes.Row{
						sqltypes.NewInt(int64(r.Hash)),
						sqltypes.NewText(r.Type.String()),
						sqltypes.NewText(r.Name),
						sqltypes.NewText(r.Table),
					})
				}
				return rows
			},
		},
		{
			name: "ima_tables",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "table_name", Type: sqltypes.Text},
				sqltypes.Column{Name: "frequency", Type: sqltypes.Int},
				sqltypes.Column{Name: "structure", Type: sqltypes.Text},
				sqltypes.Column{Name: "data_pages", Type: sqltypes.Int},
				sqltypes.Column{Name: "overflow_pages", Type: sqltypes.Int},
				sqltypes.Column{Name: "row_count", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				tableFreq, _, _ := mon.SnapshotFrequencies()
				var rows []sqltypes.Row
				for _, t := range db.Catalog().Tables() {
					ts := db.TableState(t.Name)
					rows = append(rows, sqltypes.Row{
						sqltypes.NewText(strings.ToLower(t.Name)),
						sqltypes.NewInt(tableFreq[strings.ToLower(t.Name)]),
						sqltypes.NewText(string(t.Structure)),
						sqltypes.NewInt(int64(ts.Pages)),
						sqltypes.NewInt(int64(ts.OverflowPages)),
						sqltypes.NewInt(ts.Rows),
					})
				}
				return rows
			},
		},
		{
			name: "ima_attributes",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "attr_name", Type: sqltypes.Text},
				sqltypes.Column{Name: "table_name", Type: sqltypes.Text},
				sqltypes.Column{Name: "frequency", Type: sqltypes.Int},
				sqltypes.Column{Name: "has_histogram", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				_, attrFreq, _ := mon.SnapshotFrequencies()
				var rows []sqltypes.Row
				for _, t := range db.Catalog().Tables() {
					tn := strings.ToLower(t.Name)
					for _, c := range t.Schema.Columns {
						attr := tn + "." + strings.ToLower(c.Name)
						hasHist := int64(0)
						if db.Catalog().Histogram(t.Name, c.Name) != nil {
							hasHist = 1
						}
						rows = append(rows, sqltypes.Row{
							sqltypes.NewText(attr),
							sqltypes.NewText(tn),
							sqltypes.NewInt(attrFreq[attr]),
							sqltypes.NewInt(hasHist),
						})
					}
				}
				return rows
			},
		},
		{
			name: "ima_indexes",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "index_name", Type: sqltypes.Text},
				sqltypes.Column{Name: "table_name", Type: sqltypes.Text},
				sqltypes.Column{Name: "frequency", Type: sqltypes.Int},
				sqltypes.Column{Name: "is_virtual", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				_, _, indexFreq := mon.SnapshotFrequencies()
				var rows []sqltypes.Row
				for _, ix := range db.Catalog().Indexes() {
					rows = append(rows, sqltypes.Row{
						sqltypes.NewText(strings.ToLower(ix.Name)),
						sqltypes.NewText(strings.ToLower(ix.Table)),
						sqltypes.NewInt(indexFreq[strings.ToLower(ix.Name)]),
						sqltypes.NewBool(ix.Virtual),
					})
				}
				// Primary structures show up under "<table>.primary".
				for name, freq := range indexFreq {
					if strings.HasSuffix(name, ".primary") {
						rows = append(rows, sqltypes.Row{
							sqltypes.NewText(name),
							sqltypes.NewText(strings.TrimSuffix(name, ".primary")),
							sqltypes.NewInt(freq),
							sqltypes.NewInt(0),
						})
					}
				}
				return rows
			},
		},
		{
			name: "ima_statistics",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "current_sessions", Type: sqltypes.Int},
				sqltypes.Column{Name: "peak_sessions", Type: sqltypes.Int},
				sqltypes.Column{Name: "statements", Type: sqltypes.Int},
				sqltypes.Column{Name: "locks_held", Type: sqltypes.Int},
				sqltypes.Column{Name: "lock_waits", Type: sqltypes.Int},
				sqltypes.Column{Name: "deadlocks", Type: sqltypes.Int},
				sqltypes.Column{Name: "cache_hits", Type: sqltypes.Int},
				sqltypes.Column{Name: "cache_misses", Type: sqltypes.Int},
				sqltypes.Column{Name: "disk_reads", Type: sqltypes.Int},
				sqltypes.Column{Name: "disk_writes", Type: sqltypes.Int},
				sqltypes.Column{Name: "db_bytes", Type: sqltypes.Int},
				sqltypes.Column{Name: "cache_evictions", Type: sqltypes.Int},
				sqltypes.Column{Name: "cache_resident", Type: sqltypes.Int},
				sqltypes.Column{Name: "pin_waits", Type: sqltypes.Int},
				sqltypes.Column{Name: "wal_bytes", Type: sqltypes.Int},
				sqltypes.Column{Name: "wal_fsyncs", Type: sqltypes.Int},
				sqltypes.Column{Name: "redo_records", Type: sqltypes.Int},
				sqltypes.Column{Name: "redo_nanos", Type: sqltypes.Int},
				sqltypes.Column{Name: "parallel_queries", Type: sqltypes.Int},
				sqltypes.Column{Name: "morsels_dispatched", Type: sqltypes.Int},
				sqltypes.Column{Name: "parallel_worker_nanos", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				st := db.Stats()
				return []sqltypes.Row{{
					sqltypes.NewInt(st.CurrentSessions),
					sqltypes.NewInt(st.PeakSessions),
					sqltypes.NewInt(st.Statements),
					sqltypes.NewInt(st.LocksHeld),
					sqltypes.NewInt(st.LockWaits),
					sqltypes.NewInt(st.Deadlocks),
					sqltypes.NewInt(st.CacheHits),
					sqltypes.NewInt(st.CacheMisses),
					sqltypes.NewInt(st.DiskReads),
					sqltypes.NewInt(st.DiskWrites),
					sqltypes.NewInt(st.DBBytes),
					sqltypes.NewInt(st.CacheEvictions),
					sqltypes.NewInt(st.CacheResident),
					sqltypes.NewInt(st.PinWaits),
					sqltypes.NewInt(st.WALBytes),
					sqltypes.NewInt(st.WALFsyncs),
					sqltypes.NewInt(st.RedoRecords),
					sqltypes.NewInt(st.RedoNanos),
					sqltypes.NewInt(st.ParallelQueries),
					sqltypes.NewInt(st.MorselsDispatched),
					sqltypes.NewInt(st.ParallelWorkerNanos),
				}}
			},
		},
		{
			name: "ima_latency",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "scope", Type: sqltypes.Text}, // wall | opt | stmt
				sqltypes.Column{Name: "hash", Type: sqltypes.Int},   // 0 for global scopes
				sqltypes.Column{Name: "bucket", Type: sqltypes.Int},
				sqltypes.Column{Name: "lo_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "hi_ns", Type: sqltypes.Int},
				// Not "count": that collides with the COUNT() aggregate
				// in the SQL grammar.
				sqltypes.Column{Name: "bucket_count", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				var rows []sqltypes.Row
				wall, opt := mon.SnapshotLatency()
				rows = appendLatencyRows(rows, "wall", 0, &wall)
				rows = appendLatencyRows(rows, "opt", 0, &opt)
				for _, s := range mon.SnapshotStatements() {
					lat := s.Lat
					rows = appendLatencyRows(rows, "stmt", s.Hash, &lat)
				}
				return rows
			},
		},
		{
			name: "ima_spans",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "trace_seq", Type: sqltypes.Int},
				sqltypes.Column{Name: "hash", Type: sqltypes.Int},
				sqltypes.Column{Name: "start_us", Type: sqltypes.Int},
				sqltypes.Column{Name: "wall_us", Type: sqltypes.Int},
				sqltypes.Column{Name: "op", Type: sqltypes.Text},
				sqltypes.Column{Name: "detail", Type: sqltypes.Text},
				sqltypes.Column{Name: "depth", Type: sqltypes.Int},
				sqltypes.Column{Name: "est_rows", Type: sqltypes.Float},
				sqltypes.Column{Name: "rows", Type: sqltypes.Int},
				sqltypes.Column{Name: "span_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "self_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "calls", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				var rows []sqltypes.Row
				for _, t := range mon.SnapshotTraces() {
					for _, sp := range t.Spans {
						rows = append(rows, sqltypes.Row{
							sqltypes.NewInt(int64(t.Seq)),
							sqltypes.NewInt(int64(t.Hash)),
							sqltypes.NewInt(t.Start.UnixMicro()),
							sqltypes.NewInt(t.Wall.Microseconds()),
							sqltypes.NewText(sp.Op),
							sqltypes.NewText(truncate(sp.Detail, engine.MaxTextBytes)),
							sqltypes.NewInt(int64(sp.Depth)),
							sqltypes.NewFloat(sp.EstRows),
							sqltypes.NewInt(sp.Rows),
							sqltypes.NewInt(sp.Nanos),
							sqltypes.NewInt(sp.SelfNanos),
							sqltypes.NewInt(sp.Calls),
						})
					}
				}
				return rows
			},
		},
		{
			name: "ima_flags",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "hash", Type: sqltypes.Int},
				sqltypes.Column{Name: "query_text", Type: sqltypes.Text},
				sqltypes.Column{Name: "reason", Type: sqltypes.Text},
				sqltypes.Column{Name: "manual", Type: sqltypes.Int},
				sqltypes.Column{Name: "since_us", Type: sqltypes.Int},
				sqltypes.Column{Name: "age_us", Type: sqltypes.Int},
				sqltypes.Column{Name: "expires_us", Type: sqltypes.Int}, // 0 = never
				sqltypes.Column{Name: "samples", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				now := time.Now()
				flags := mon.SnapshotFlags()
				rows := make([]sqltypes.Row, 0, len(flags))
				for _, f := range flags {
					expires := int64(0)
					if !f.Expires.IsZero() {
						expires = f.Expires.UnixMicro()
					}
					rows = append(rows, sqltypes.Row{
						sqltypes.NewInt(int64(f.Hash)),
						sqltypes.NewText(truncate(f.Text, engine.MaxTextBytes)),
						sqltypes.NewText(f.Reason),
						sqltypes.NewBool(f.Manual),
						sqltypes.NewInt(f.Since.UnixMicro()),
						sqltypes.NewInt(now.Sub(f.Since).Microseconds()),
						sqltypes.NewInt(expires),
						sqltypes.NewInt(f.Samples),
					})
				}
				return rows
			},
		},
		{
			name: "ima_mvcc",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "txn_begins", Type: sqltypes.Int},
				sqltypes.Column{Name: "txn_commits", Type: sqltypes.Int},
				sqltypes.Column{Name: "txn_aborts", Type: sqltypes.Int},
				sqltypes.Column{Name: "write_conflicts", Type: sqltypes.Int},
				sqltypes.Column{Name: "inflight_txns", Type: sqltypes.Int},
				sqltypes.Column{Name: "active_snapshots", Type: sqltypes.Int},
				sqltypes.Column{Name: "aborted_ids", Type: sqltypes.Int},
				sqltypes.Column{Name: "oldest_snapshot_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "vacuum_runs", Type: sqltypes.Int},
				sqltypes.Column{Name: "vacuum_reclaimed", Type: sqltypes.Int},
				sqltypes.Column{Name: "vacuum_cleared", Type: sqltypes.Int},
				sqltypes.Column{Name: "retired_ids", Type: sqltypes.Int},
				sqltypes.Column{Name: "chain_len_p95", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				mv := db.MvccStats()
				return []sqltypes.Row{{
					sqltypes.NewInt(mv.TxnBegins),
					sqltypes.NewInt(mv.TxnCommits),
					sqltypes.NewInt(mv.TxnAborts),
					sqltypes.NewInt(mv.WriteConflicts),
					sqltypes.NewInt(mv.InflightTxns),
					sqltypes.NewInt(mv.ActiveSnapshots),
					sqltypes.NewInt(mv.AbortedIDs),
					sqltypes.NewInt(mv.OldestSnapshotNanos),
					sqltypes.NewInt(mv.VacuumRuns),
					sqltypes.NewInt(mv.VacuumReclaimed),
					sqltypes.NewInt(mv.VacuumCleared),
					sqltypes.NewInt(mv.RetiredIDs),
					sqltypes.NewInt(mv.ChainLenP95),
				}}
			},
		},
		{
			name: "ima_waits",
			schema: sqltypes.NewSchema(
				sqltypes.Column{Name: "hash", Type: sqltypes.Int},
				sqltypes.Column{Name: "query_text", Type: sqltypes.Text},
				sqltypes.Column{Name: "samples", Type: sqltypes.Int},
				sqltypes.Column{Name: "wall_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "exec_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "lock_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "io_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "fsync_ns", Type: sqltypes.Int},
				sqltypes.Column{Name: "pinwait_ns", Type: sqltypes.Int},
			),
			provider: func() []sqltypes.Row {
				flags := mon.SnapshotFlags()
				rows := make([]sqltypes.Row, 0, len(flags))
				for _, f := range flags {
					rows = append(rows, sqltypes.Row{
						sqltypes.NewInt(int64(f.Hash)),
						sqltypes.NewText(truncate(f.Text, engine.MaxTextBytes)),
						sqltypes.NewInt(f.Samples),
						sqltypes.NewInt(f.Waits.WallNs),
						sqltypes.NewInt(f.Waits.ExecNs),
						sqltypes.NewInt(f.Waits.LockNs),
						sqltypes.NewInt(f.Waits.IONs),
						sqltypes.NewInt(f.Waits.FsyncNs),
						sqltypes.NewInt(f.Waits.PinWaitNs),
					})
				}
				return rows
			},
		},
	}
	for _, r := range regs {
		if err := db.RegisterVirtual(r.name, r.schema, r.provider); err != nil {
			return err
		}
	}
	return nil
}

// appendLatencyRows emits one row per non-empty histogram bucket.
func appendLatencyRows(rows []sqltypes.Row, scope string, hash uint64, c *monitor.LatencyCounts) []sqltypes.Row {
	for b, n := range c {
		if n == 0 {
			continue
		}
		lo, hi := monitor.LatencyBucketBounds(b)
		rows = append(rows, sqltypes.Row{
			sqltypes.NewText(scope),
			sqltypes.NewInt(int64(hash)),
			sqltypes.NewInt(int64(b)),
			sqltypes.NewInt(int64(lo)),
			sqltypes.NewInt(int64(hi)),
			sqltypes.NewInt(n),
		})
	}
	return rows
}

// HealthMetric is one row of the ima_health virtual table: a named
// self-observability counter of a monitoring component.
type HealthMetric struct {
	Component string // "monitor", "daemon", ...
	Metric    string
	Value     float64
}

// MonitorHealth returns the monitor's own counters in ima_health form;
// callers without a storage daemon can register it as the whole gather
// function.
func MonitorHealth(mon *monitor.Monitor) []HealthMetric {
	return []HealthMetric{
		{"monitor", "statements_total", float64(mon.TotalStatements())},
		{"monitor", "sensor_seconds_total", mon.TotalMonitorTime().Seconds()},
		{"monitor", "distinct_statements", float64(mon.StatementCount())},
		{"monitor", "workload_depth", float64(mon.WorkloadDepth())},
		{"monitor", "workload_dropped_total", float64(mon.WorkloadDropped())},
		{"monitor", "traces_buffered", float64(mon.TraceCount())},
		{"monitor", "flagged_statements", float64(mon.FlagCount())},
		{"monitor", "phase2_seconds_total", mon.Phase2Overhead().Seconds()},
	}
}

// RegisterHealth installs the ima_health virtual table. gather is
// called per query; core wires it to the telemetry registry so SQL and
// /metrics expose the same counters (monitor, engine and daemon).
func RegisterHealth(db *engine.DB, gather func() []HealthMetric) error {
	schema := sqltypes.NewSchema(
		sqltypes.Column{Name: "component", Type: sqltypes.Text},
		sqltypes.Column{Name: "metric", Type: sqltypes.Text},
		sqltypes.Column{Name: "value", Type: sqltypes.Float},
	)
	return db.RegisterVirtual("ima_health", schema, func() []sqltypes.Row {
		hm := gather()
		rows := make([]sqltypes.Row, 0, len(hm))
		for _, m := range hm {
			rows = append(rows, sqltypes.Row{
				sqltypes.NewText(m.Component),
				sqltypes.NewText(m.Metric),
				sqltypes.NewFloat(m.Value),
			})
		}
		return rows
	})
}

// workloadRow converts a workload entry to its IMA row form (shared
// with the storage daemon).
func workloadRow(w monitor.WorkloadEntry) sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewInt(int64(w.Hash)),
		sqltypes.NewInt(w.Start.UnixMicro()),
		sqltypes.NewInt(w.Wall.Microseconds()),
		sqltypes.NewInt(w.OptTime.Microseconds()),
		sqltypes.NewInt(w.ExecCPU),
		sqltypes.NewInt(w.ExecIO),
		sqltypes.NewFloat(w.EstCPU),
		sqltypes.NewFloat(w.EstIO),
		sqltypes.NewFloat(w.EstRows),
		sqltypes.NewInt(w.Rows),
		sqltypes.NewInt(w.MonNanos),
		sqltypes.NewBool(w.Err),
	}
}

// WorkloadRow is the exported form used by the storage daemon when it
// drains the monitor directly (the in-core variant of data collection
// the paper describes as the next step in §IV-B).
func WorkloadRow(w monitor.WorkloadEntry) sqltypes.Row { return workloadRow(w) }

// truncate bounds statement text without splitting a multi-byte rune.
func truncate(s string, n int) string { return sqltypes.TruncateUTF8(s, n) }
