package ima

import (
	"repro/internal/engine"
	"repro/internal/sqltypes"
)

// ActionRow is one audit record of the autonomous tuning loop: a state
// transition of an applied (or rolled back) tuning action. Rows are
// append-only — every transition of an action produces a new row with
// a higher Seq — so ima_actions and the persisted ws_actions are a
// complete history of what the apply state machine did and why.
type ActionRow struct {
	Seq      int64   // monotone across all rows; the daemon's watermark
	ActionID int64   // groups the rows of one action
	Kind     string  // recommendation kind (create-index, enlarge-buffer-pool, ...)
	Target   string  // table or subsystem the action touches
	SQL      string  // statement executed (or description for non-SQL actions)
	State    string  // proposed | applying | canary | accepted | rolled-back | failed
	Baseline int64   // canary baseline tail latency, microseconds (0 before canary)
	Observed int64   // canary observed tail latency, microseconds
	DeltaPct float64 // (observed-baseline)/baseline * 100
	Samples  int64   // executions observed in the canary window
	AtUs     int64   // transition timestamp, unix microseconds
	Detail   string  // decision reason or error text
}

// RegisterActions installs the ima_actions virtual table: the audit
// trail of the analyzer's apply state machine, queryable over plain
// SQL like every other IMA table. gather returns the accumulated
// transition rows (oldest first).
func RegisterActions(db *engine.DB, gather func() []ActionRow) error {
	schema := sqltypes.NewSchema(
		sqltypes.Column{Name: "seq", Type: sqltypes.Int},
		sqltypes.Column{Name: "action_id", Type: sqltypes.Int},
		sqltypes.Column{Name: "kind", Type: sqltypes.Text},
		sqltypes.Column{Name: "target", Type: sqltypes.Text},
		sqltypes.Column{Name: "sql_text", Type: sqltypes.Text},
		sqltypes.Column{Name: "state", Type: sqltypes.Text},
		sqltypes.Column{Name: "baseline_us", Type: sqltypes.Int},
		sqltypes.Column{Name: "observed_us", Type: sqltypes.Int},
		sqltypes.Column{Name: "delta_pct", Type: sqltypes.Float},
		sqltypes.Column{Name: "samples", Type: sqltypes.Int},
		sqltypes.Column{Name: "at_us", Type: sqltypes.Int},
		sqltypes.Column{Name: "detail", Type: sqltypes.Text},
	)
	return db.RegisterVirtual("ima_actions", schema, func() []sqltypes.Row {
		ar := gather()
		rows := make([]sqltypes.Row, 0, len(ar))
		for _, r := range ar {
			rows = append(rows, sqltypes.Row{
				sqltypes.NewInt(r.Seq),
				sqltypes.NewInt(r.ActionID),
				sqltypes.NewText(r.Kind),
				sqltypes.NewText(r.Target),
				sqltypes.NewText(truncate(r.SQL, engine.MaxTextBytes)),
				sqltypes.NewText(r.State),
				sqltypes.NewInt(r.Baseline),
				sqltypes.NewInt(r.Observed),
				sqltypes.NewFloat(r.DeltaPct),
				sqltypes.NewInt(r.Samples),
				sqltypes.NewInt(r.AtUs),
				sqltypes.NewText(truncate(r.Detail, engine.MaxTextBytes)),
			})
		}
		return rows
	})
}
