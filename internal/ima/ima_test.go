package ima

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/monitor"
)

func newMonitoredDB(t *testing.T) (*engine.DB, *monitor.Monitor, *engine.Session) {
	t.Helper()
	mon := monitor.New(monitor.Config{})
	db, err := engine.Open(engine.Config{Dir: t.TempDir(), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(db, mon); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := db.NewSession()
	t.Cleanup(s.Close)
	return db, mon, s
}

func exec(t *testing.T, s *engine.Session, sql string) *engine.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

// seedRows is large enough that primary-key lookups use the pk index.
const seedRows = 2000

func seed(t *testing.T, s *engine.Session) {
	exec(t, s, "CREATE TABLE items (id INTEGER PRIMARY KEY, v VARCHAR(16))")
	for base := 0; base < seedRows; base += 200 {
		stmt := "INSERT INTO items VALUES "
		for i := base; i < base+200; i++ {
			if i > base {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'v%d')", i, i)
		}
		exec(t, s, stmt)
	}
	exec(t, s, "SELECT v FROM items WHERE id = 3")
	exec(t, s, "SELECT v FROM items WHERE id = 3")
	exec(t, s, "SELECT COUNT(*) FROM items")
}

func TestRegisterRequiresMonitor(t *testing.T) {
	db, err := engine.Open(engine.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := Register(db, nil); err == nil {
		t.Fatal("Register accepted a nil monitor")
	}
}

func TestStatementsTableOverSQL(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)
	res := exec(t, s, "SELECT query_text, frequency FROM ima_statements WHERE frequency >= 2")
	found := false
	for _, r := range res.Rows {
		if r[0].S == "SELECT v FROM items WHERE id = 3" && r[1].I == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("repeated statement not visible over SQL: %v", res.Rows)
	}
}

func TestWorkloadTableCostColumns(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)
	res := exec(t, s, "SELECT wall_us, exec_cpu, est_cpu FROM ima_workload WHERE rows > 0")
	if len(res.Rows) == 0 {
		t.Fatal("no workload rows")
	}
	for _, r := range res.Rows {
		if r[0].I < 0 || r[1].I <= 0 {
			t.Errorf("suspicious workload row: %v", r)
		}
	}
}

func TestReferencesJoinStatements(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)
	// The IMA tables are plain relations: join them with SQL, exactly
	// as the paper's schema (Figure 3) intends.
	res := exec(t, s, `SELECT r.obj_name FROM ima_references r
		JOIN ima_statements st ON r.hash = st.hash
		WHERE r.obj_type = 'table' AND st.frequency >= 2`)
	found := false
	for _, r := range res.Rows {
		if r[0].S == "items" {
			found = true
		}
	}
	if !found {
		t.Errorf("reference join failed: %v", res.Rows)
	}
}

func TestTablesAndAttributesTables(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)
	res := exec(t, s, "SELECT table_name, frequency, structure, row_count FROM ima_tables WHERE table_name = 'items'")
	if len(res.Rows) != 1 {
		t.Fatalf("ima_tables: %v", res.Rows)
	}
	if res.Rows[0][1].I == 0 || res.Rows[0][2].S != "HEAP" || res.Rows[0][3].I != seedRows {
		t.Errorf("ima_tables row: %v", res.Rows[0])
	}

	res = exec(t, s, "SELECT attr_name, frequency FROM ima_attributes WHERE attr_name = 'items.id'")
	if len(res.Rows) != 1 || res.Rows[0][1].I == 0 {
		t.Errorf("ima_attributes: %v", res.Rows)
	}
}

func TestIndexesTableShowsPKUse(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)
	res := exec(t, s, "SELECT index_name, frequency FROM ima_indexes WHERE frequency > 0")
	if len(res.Rows) == 0 {
		t.Fatalf("no used indexes visible: %v", res.Rows)
	}
	found := false
	for _, r := range res.Rows {
		if r[0].S == "pk_items" {
			found = true
		}
	}
	if !found {
		t.Errorf("pk index usage missing: %v", res.Rows)
	}
}

func TestStatisticsTable(t *testing.T) {
	_, _, s := newMonitoredDB(t)
	seed(t, s)
	res := exec(t, s, "SELECT current_sessions, statements, db_bytes FROM ima_statistics")
	if len(res.Rows) != 1 {
		t.Fatalf("ima_statistics rows: %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].I < 1 || r[1].I == 0 || r[2].I == 0 {
		t.Errorf("statistics row: %v", r)
	}
}

func TestDoubleRegisterFails(t *testing.T) {
	db, mon, _ := newMonitoredDB(t)
	if err := Register(db, mon); err == nil {
		t.Fatal("double Register succeeded")
	}
}
