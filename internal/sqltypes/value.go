// Package sqltypes defines the SQL value model shared by every layer of
// the engine: typed values, schemas, rows, a compact row codec and an
// order-preserving key encoding used by the B-Tree storage structure.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

// TruncateUTF8 returns the longest prefix of s that is at most max
// bytes long and does not end in the middle of a multi-byte UTF-8
// rune. A plain s[:max] slice can split a rune and produce invalid
// text; every layer that bounds statement text (the IMA virtual
// tables, the storage daemon) truncates through this helper instead.
func TruncateUTF8(s string, max int) string {
	if max < 0 {
		max = 0
	}
	if len(s) <= max {
		return s
	}
	cut := max
	// Back up over continuation bytes: at most UTFMax-1 steps, so an
	// invalid byte sequence cannot walk the cut point arbitrarily far.
	for cut > 0 && cut > max-utf8.UTFMax && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut]
}

// Type identifies the runtime type of a Value.
type Type uint8

// The supported SQL types. Null is the type of the SQL NULL literal;
// typed columns may still hold NULL values.
const (
	Null Type = iota
	Int
	Float
	Text
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Int:
		return "INTEGER"
	case Float:
		return "FLOAT"
	case Text:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{T: Int, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{T: Float, F: f} }

// NewText returns a VARCHAR value.
func NewText(s string) Value { return Value{T: Text, S: s} }

// NullValue returns the SQL NULL value.
func NullValue() Value { return Value{T: Null} }

// NewBool returns the engine's boolean representation (an INTEGER 0/1),
// matching classic Ingres which has no standalone boolean column type.
func NewBool(b bool) Value {
	if b {
		return Value{T: Int, I: 1}
	}
	return Value{T: Int, I: 0}
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.T == Null }

// Bool interprets the value as a predicate result: NULL and zero are
// false, everything else is true.
func (v Value) Bool() bool {
	switch v.T {
	case Null:
		return false
	case Int:
		return v.I != 0
	case Float:
		return v.F != 0
	case Text:
		return v.S != ""
	}
	return false
}

// AsFloat converts a numeric value to float64. Text values that do not
// parse yield 0; NULL yields 0.
func (v Value) AsFloat() float64 {
	switch v.T {
	case Int:
		return float64(v.I)
	case Float:
		return v.F
	case Text:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
	return 0
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.T {
	case Int:
		return v.I
	case Float:
		return int64(v.F)
	case Text:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	}
	return 0
}

// String renders the value for display. NULL renders as "NULL", text is
// returned verbatim (unquoted).
func (v Value) String() string {
	switch v.T {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Text:
		return v.S
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a SQL literal (text quoted).
func (v Value) SQLLiteral() string {
	if v.T == Text {
		return "'" + escapeQuotes(v.S) + "'"
	}
	return v.String()
}

func escapeQuotes(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// Compare orders two values. NULL sorts before every non-NULL value and
// equal to NULL (three-valued logic is handled by the expression layer,
// not here — Compare defines the total order used for sorting and keys).
// Numeric values compare numerically across Int/Float; comparing a
// number with text orders numbers first, giving a deterministic total
// order over heterogeneous values.
func Compare(a, b Value) int {
	if a.T == Null || b.T == Null {
		switch {
		case a.T == Null && b.T == Null:
			return 0
		case a.T == Null:
			return -1
		default:
			return 1
		}
	}
	an, aIsNum := a.numeric()
	bn, bIsNum := b.numeric()
	switch {
	case aIsNum && bIsNum:
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		default:
			// Distinguish e.g. Int(1<<60) from nearby floats exactly.
			if a.T == Int && b.T == Int {
				switch {
				case a.I < b.I:
					return -1
				case a.I > b.I:
					return 1
				}
			}
			return 0
		}
	case aIsNum:
		return -1
	case bIsNum:
		return 1
	default:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	}
}

func (v Value) numeric() (float64, bool) {
	switch v.T {
	case Int:
		return float64(v.I), true
	case Float:
		return v.F, true
	}
	return 0, false
}

// Equal reports whether two values are identical under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit FNV-1a hash of the value, consistent with Equal
// for values of the same type class.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h ^= uint64(b); h *= prime64 }
	switch v.T {
	case Null:
		mix(0)
	case Int, Float:
		// Hash the numeric value so Int(2) and Float(2.0) collide, as
		// they compare equal.
		f := v.AsFloat()
		if v.T == Int && float64(v.I) != f {
			f = float64(v.I)
		}
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	case Text:
		mix(1)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	}
	return h
}
