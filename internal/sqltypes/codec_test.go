package sqltypes

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	rows := []Row{
		nil,
		{},
		{NewInt(0)},
		{NewInt(-123456789), NewFloat(3.25), NewText("hello"), NullValue()},
		{NewText(""), NewText(string([]byte{0, 1, 2, 255}))},
	}
	for _, r := range rows {
		enc := EncodeRow(nil, r)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if len(dec) != len(r) {
			t.Fatalf("round trip length mismatch: %d vs %d", len(dec), len(r))
		}
		for i := range r {
			if !Equal(dec[i], r[i]) || dec[i].T != r[i].T {
				t.Fatalf("column %d: got %+v want %+v", i, dec[i], r[i])
			}
		}
	}
}

func TestDecodeRowCorrupt(t *testing.T) {
	bad := [][]byte{
		{},                            // empty
		{0x05},                        // claims 5 columns, no data
		{0x01, 0x09},                  // unknown type tag
		{0x01, byte(Float)},           // truncated float
		{0x01, byte(Text), 0x05, 'a'}, // truncated text
		{0x02, byte(Int), 0x80},       // corrupt varint then missing col
	}
	for i, b := range bad {
		if _, err := DecodeRow(b); err == nil {
			t.Errorf("case %d: expected error for %v", i, b)
		}
	}
}

func TestEncodeRowRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		row := make(Row, r.Intn(8))
		for j := range row {
			row[j] = randomValue(r)
		}
		dec, err := DecodeRow(EncodeRow(nil, row))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		for j := range row {
			if dec[j].T != row[j].T || !Equal(dec[j], row[j]) {
				t.Fatalf("iteration %d col %d: got %+v want %+v", i, j, dec[j], row[j])
			}
		}
	}
}

func TestEncodeKeyOrderMatchesCompare(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		a, b := randomValue(r), randomValue(r)
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		want := Compare(a, b)
		got := bytes.Compare(ka, kb)
		if sign(got) != sign(want) {
			t.Fatalf("key order mismatch for %v (%x) vs %v (%x): key %d, compare %d",
				a, ka, b, kb, got, want)
		}
	}
}

func TestEncodeKeyCompositeOrder(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		a := Row{randomValue(r), randomValue(r)}
		b := Row{randomValue(r), randomValue(r)}
		ka := EncodeKey(nil, a...)
		kb := EncodeKey(nil, b...)
		want := Compare(a[0], b[0])
		if want == 0 {
			want = Compare(a[1], b[1])
		}
		if sign(bytes.Compare(ka, kb)) != sign(want) {
			t.Fatalf("composite key order mismatch: %v vs %v", a, b)
		}
	}
}

func TestEncodeKeyTextWithZeros(t *testing.T) {
	// "a\x00b" must sort between "a" and "a\x01".
	k1 := EncodeKey(nil, NewText("a"))
	k2 := EncodeKey(nil, NewText("a\x00b"))
	k3 := EncodeKey(nil, NewText("a\x01"))
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Errorf("zero-byte escaping broken: %x %x %x", k1, k2, k3)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// TestAppendDecodedRowMatchesDecodeRow asserts the arena decoder
// produces exactly what DecodeRow produces, across growth boundaries.
func TestAppendDecodedRowMatchesDecodeRow(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewText("alpha"), NewFloat(2.5), NullValue()},
		{},
		{NewText(""), NewInt(-1 << 60)},
		{NewFloat(-0.0), NewText("with\x00zero")},
	}
	arena := make([]Value, 0, 2) // force at least one growth
	var got []Row
	var bounds [][2]int
	for _, r := range rows {
		rec := EncodeRow(nil, r)
		start := len(arena)
		var err error
		arena, err = AppendDecodedRow(arena, rec)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, [2]int{start, len(arena)})
	}
	for _, bd := range bounds {
		got = append(got, Row(arena[bd[0]:bd[1]:bd[1]]))
	}
	for i, r := range rows {
		want, err := DecodeRow(EncodeRow(nil, r))
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("row %d: %d cols, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if !Equal(got[i][j], want[j]) || got[i][j].T != want[j].T {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[i][j], want[j])
			}
		}
	}
	// Corrupt input must not leave partial values in the arena.
	n := len(arena)
	if _, err := AppendDecodedRow(arena, []byte{0x05, 0x09}); err == nil {
		t.Fatal("corrupt row decoded")
	} else if arenaAfter, _ := AppendDecodedRow(arena, []byte{0x05, 0x09}); len(arenaAfter) != n {
		t.Fatalf("corrupt decode grew arena: %d -> %d", n, len(arenaAfter))
	}
}
