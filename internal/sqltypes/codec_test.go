package sqltypes

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	rows := []Row{
		nil,
		{},
		{NewInt(0)},
		{NewInt(-123456789), NewFloat(3.25), NewText("hello"), NullValue()},
		{NewText(""), NewText(string([]byte{0, 1, 2, 255}))},
	}
	for _, r := range rows {
		enc := EncodeRow(nil, r)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if len(dec) != len(r) {
			t.Fatalf("round trip length mismatch: %d vs %d", len(dec), len(r))
		}
		for i := range r {
			if !Equal(dec[i], r[i]) || dec[i].T != r[i].T {
				t.Fatalf("column %d: got %+v want %+v", i, dec[i], r[i])
			}
		}
	}
}

func TestDecodeRowCorrupt(t *testing.T) {
	bad := [][]byte{
		{},                            // empty
		{0x05},                        // claims 5 columns, no data
		{0x01, 0x09},                  // unknown type tag
		{0x01, byte(Float)},           // truncated float
		{0x01, byte(Text), 0x05, 'a'}, // truncated text
		{0x02, byte(Int), 0x80},       // corrupt varint then missing col
	}
	for i, b := range bad {
		if _, err := DecodeRow(b); err == nil {
			t.Errorf("case %d: expected error for %v", i, b)
		}
	}
}

func TestEncodeRowRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		row := make(Row, r.Intn(8))
		for j := range row {
			row[j] = randomValue(r)
		}
		dec, err := DecodeRow(EncodeRow(nil, row))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		for j := range row {
			if dec[j].T != row[j].T || !Equal(dec[j], row[j]) {
				t.Fatalf("iteration %d col %d: got %+v want %+v", i, j, dec[j], row[j])
			}
		}
	}
}

func TestEncodeKeyOrderMatchesCompare(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		a, b := randomValue(r), randomValue(r)
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		want := Compare(a, b)
		got := bytes.Compare(ka, kb)
		if sign(got) != sign(want) {
			t.Fatalf("key order mismatch for %v (%x) vs %v (%x): key %d, compare %d",
				a, ka, b, kb, got, want)
		}
	}
}

func TestEncodeKeyCompositeOrder(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		a := Row{randomValue(r), randomValue(r)}
		b := Row{randomValue(r), randomValue(r)}
		ka := EncodeKey(nil, a...)
		kb := EncodeKey(nil, b...)
		want := Compare(a[0], b[0])
		if want == 0 {
			want = Compare(a[1], b[1])
		}
		if sign(bytes.Compare(ka, kb)) != sign(want) {
			t.Fatalf("composite key order mismatch: %v vs %v", a, b)
		}
	}
}

func TestEncodeKeyTextWithZeros(t *testing.T) {
	// "a\x00b" must sort between "a" and "a\x01".
	k1 := EncodeKey(nil, NewText("a"))
	k2 := EncodeKey(nil, NewText("a\x00b"))
	k3 := EncodeKey(nil, NewText("a\x01"))
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Errorf("zero-byte escaping broken: %x %x %x", k1, k2, k3)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
