package sqltypes

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Null:    "NULL",
		Int:     "INTEGER",
		Float:   "FLOAT",
		Text:    "VARCHAR",
		Type(9): "Type(9)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.T != Int || v.I != 42 || v.AsInt() != 42 || v.AsFloat() != 42 {
		t.Errorf("NewInt broken: %+v", v)
	}
	if v := NewFloat(2.5); v.T != Float || v.F != 2.5 || v.AsFloat() != 2.5 || v.AsInt() != 2 {
		t.Errorf("NewFloat broken: %+v", v)
	}
	if v := NewText("abc"); v.T != Text || v.S != "abc" {
		t.Errorf("NewText broken: %+v", v)
	}
	if v := NullValue(); !v.IsNull() {
		t.Errorf("NullValue not null: %+v", v)
	}
	if v := NewText("17"); v.AsInt() != 17 || v.AsFloat() != 17 {
		t.Errorf("text numeric coercion broken: %+v", v)
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be NULL")
	}
}

func TestValueBool(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{NullValue(), false},
		{NewInt(0), false},
		{NewInt(1), true},
		{NewInt(-3), true},
		{NewFloat(0), false},
		{NewFloat(0.1), true},
		{NewText(""), false},
		{NewText("x"), true},
		{NewBool(true), true},
		{NewBool(false), false},
	}
	for _, c := range cases {
		if got := c.v.Bool(); got != c.want {
			t.Errorf("%v.Bool() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue(), "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewText("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if got := NewText("o'neil").SQLLiteral(); got != "'o''neil'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := NewInt(3).SQLLiteral(); got != "3" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NullValue(), NullValue(), 0},
		{NullValue(), NewInt(0), -1},
		{NewInt(0), NullValue(), 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(5), NewText("a"), -1}, // numbers before text
		{NewText("a"), NewInt(5), 1},
		{NewText("abc"), NewText("abd"), -1},
		{NewText("b"), NewText("b"), 0},
		{NewInt(1 << 62), NewInt(1<<62 + 1), -1}, // exact int tie-break
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualAndHashAgree(t *testing.T) {
	if !Equal(NewInt(2), NewFloat(2)) {
		t.Fatal("Int 2 should equal Float 2")
	}
	if NewInt(2).Hash() != NewFloat(2).Hash() {
		t.Error("hash of equal numeric values must match")
	}
	if NewText("2").Hash() == NewInt(2).Hash() {
		t.Error("text and int should not share a hash class by construction")
	}
}

// randomValue generates an arbitrary value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return NullValue()
	case 1:
		return NewInt(r.Int63() - r.Int63())
	case 2:
		return NewFloat(math.Trunc(r.NormFloat64() * 1e6)) // avoid NaN
	default:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(128))
		}
		return NewText(string(b))
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		// Antisymmetry.
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
		// Reflexivity.
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(%v, %v) != 0", a, a)
		}
		// Transitivity of <=.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %v <= %v <= %v", a, b, c)
		}
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	f := func(i int64) bool {
		return NewInt(i).Hash() == NewInt(i).Hash() &&
			NewFloat(float64(i)).Hash() == NewInt(i).Hash() == (float64(i) == float64(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(Column{"id", Int}, Column{"Name", Text})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ColIndex("ID") != 0 || s.ColIndex("name") != 1 || s.ColIndex("missing") != -1 {
		t.Errorf("ColIndex lookup broken: %d %d %d", s.ColIndex("ID"), s.ColIndex("name"), s.ColIndex("missing"))
	}
	if got := s.String(); got != "(id INTEGER, Name VARCHAR)" {
		t.Errorf("String = %q", got)
	}
	if !reflect.DeepEqual(s.Names(), []string{"id", "Name"}) {
		t.Errorf("Names = %v", s.Names())
	}
}

func TestRowCloneAndString(t *testing.T) {
	r := Row{NewInt(1), NewText("x")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].I != 1 {
		t.Error("Clone aliases the original")
	}
	if got := r.String(); got != "1, x" {
		t.Errorf("Row.String = %q", got)
	}
}

func TestTruncateUTF8(t *testing.T) {
	cases := []struct {
		in   string
		max  int
		want string
	}{
		{"hello", 10, "hello"},            // shorter than max: unchanged
		{"hello", 5, "hello"},             // exactly max: unchanged
		{"hello", 3, "hel"},               // ASCII: plain byte cut
		{"héllo", 2, "h"},                 // cut would split the 2-byte é
		{"héllo", 3, "hé"},                // boundary lands after é
		{"日本語", 4, "日"},                   // 3-byte runes
		{"日本語", 6, "日本"},                  // exact rune boundary
		{"a\U0001F600b", 4, "a"},          // 4-byte rune split
		{"a\U0001F600b", 5, "a\U0001F600"},
		{"hello", 0, ""},
		{"hello", -1, ""},
		{"\xff\xfe\xfd\xfc\xfb", 3, "\xff\xfe\xfd"}, // invalid UTF-8: bounded cut
	}
	for _, c := range cases {
		got := TruncateUTF8(c.in, c.max)
		if got != c.want {
			t.Errorf("TruncateUTF8(%q, %d) = %q, want %q", c.in, c.max, got, c.want)
		}
		if len(got) > c.max && c.max >= 0 {
			t.Errorf("TruncateUTF8(%q, %d) = %q exceeds max", c.in, c.max, got)
		}
	}
	// Valid input always stays valid after truncation.
	long := "péché-🎯-" // mixed widths
	for i := 0; i <= len(long); i++ {
		if got := TruncateUTF8(long, i); !utf8.ValidString(got) {
			t.Errorf("TruncateUTF8(%q, %d) = %q is invalid UTF-8", long, i, got)
		}
	}
}
