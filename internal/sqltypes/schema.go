package sqltypes

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Column names are matched
// case-insensitively, as in Ingres.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Columns) }

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a INTEGER, b VARCHAR)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of values positionally matching a schema.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a comma-separated list.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}
