package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeRow appends a compact, self-describing encoding of the row to
// dst and returns the extended slice. The encoding is:
//
//	varint(ncols) then per column: 1 type byte followed by
//	  Int   → zig-zag varint
//	  Float → 8 bytes little-endian IEEE-754
//	  Text  → varint length + bytes
//	  Null  → nothing
func EncodeRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = append(dst, byte(v.T))
		switch v.T {
		case Int:
			dst = binary.AppendVarint(dst, v.I)
		case Float:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case Text:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// DecodeRow decodes a row previously produced by EncodeRow.
func DecodeRow(b []byte) (Row, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("sqltypes: corrupt row header")
	}
	if n > uint64(len(b)) { // cheap sanity bound: ≥1 byte per column
		return nil, fmt.Errorf("sqltypes: implausible column count %d", n)
	}
	r := make(Row, n)
	return r, decodeRowInto(r, b, off)
}

// AppendDecodedRow decodes a row previously produced by EncodeRow,
// appending its values to arena and returning the extended arena. The
// decoded row is arena[len(arena):] of the input. Batch scans decode
// whole pages into one reused arena, so the per-row Row allocation of
// DecodeRow is amortized away (text values still copy their bytes, as
// DecodeRow does).
func AppendDecodedRow(arena []Value, b []byte) ([]Value, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return arena, fmt.Errorf("sqltypes: corrupt row header")
	}
	if n > uint64(len(b)) { // cheap sanity bound: ≥1 byte per column
		return arena, fmt.Errorf("sqltypes: implausible column count %d", n)
	}
	start := len(arena)
	if need := start + int(n); need > cap(arena) {
		grown := make([]Value, len(arena), need*2)
		copy(grown, arena)
		arena = grown
	}
	arena = arena[:start+int(n)]
	if err := decodeRowInto(arena[start:], b, off); err != nil {
		return arena[:start], err
	}
	return arena, nil
}

// decodeRowInto decodes len(r) column values starting at offset off.
func decodeRowInto(r []Value, b []byte, off int) error {
	for i := range r {
		if off >= len(b) {
			return fmt.Errorf("sqltypes: truncated row at column %d", i)
		}
		t := Type(b[off])
		off++
		switch t {
		case Null:
			r[i] = NullValue()
		case Int:
			v, n := binary.Varint(b[off:])
			if n <= 0 {
				return fmt.Errorf("sqltypes: corrupt int at column %d", i)
			}
			off += n
			r[i] = NewInt(v)
		case Float:
			if off+8 > len(b) {
				return fmt.Errorf("sqltypes: corrupt float at column %d", i)
			}
			r[i] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[off:])))
			off += 8
		case Text:
			l, n := binary.Uvarint(b[off:])
			if n <= 0 || off+n+int(l) > len(b) {
				return fmt.Errorf("sqltypes: corrupt text at column %d", i)
			}
			off += n
			r[i] = NewText(string(b[off : off+int(l)]))
			off += int(l)
		default:
			return fmt.Errorf("sqltypes: unknown type tag %d at column %d", t, i)
		}
	}
	return nil
}

// Key-encoding type tags, chosen so that encoded byte strings sort in
// the same order as Compare: NULL < numbers < text.
const (
	keyNull  byte = 0x01
	keyNum   byte = 0x02
	keyText  byte = 0x03
	keyIntHi byte = 0x04 // disambiguates huge ints that collide as floats
)

// EncodeKey appends an order-preserving encoding of the values to dst:
// bytes.Compare(EncodeKey(a), EncodeKey(b)) matches lexicographic
// Compare over the value slices. Used for B-Tree keys.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		switch v.T {
		case Null:
			dst = append(dst, keyNull)
		case Int, Float:
			dst = append(dst, keyNum)
			f := v.AsFloat()
			bits := math.Float64bits(f)
			// Flip so that negative floats sort before positive ones.
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits |= 1 << 63
			}
			dst = binary.BigEndian.AppendUint64(dst, bits)
			// Tie-break exact integers that round to the same float.
			if v.T == Int {
				dst = append(dst, keyIntHi)
				dst = binary.BigEndian.AppendUint64(dst, uint64(v.I)^(1<<63))
			} else {
				dst = append(dst, keyIntHi)
				dst = binary.BigEndian.AppendUint64(dst, uint64(int64(f))^(1<<63))
			}
		case Text:
			dst = append(dst, keyText)
			// Escape 0x00 as 0x00 0xFF so the 0x00 0x00 terminator
			// preserves prefix ordering.
			for i := 0; i < len(v.S); i++ {
				c := v.S[i]
				if c == 0x00 {
					dst = append(dst, 0x00, 0xFF)
					continue
				}
				dst = append(dst, c)
			}
			dst = append(dst, 0x00, 0x00)
		}
	}
	return dst
}
