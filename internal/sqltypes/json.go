package sqltypes

import (
	"encoding/json"
	"fmt"
)

// jsonValue is the wire form of a Value for catalog persistence.
type jsonValue struct {
	T Type     `json:"t"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	S *string  `json:"s,omitempty"`
}

// MarshalJSON encodes the value for catalog files.
func (v Value) MarshalJSON() ([]byte, error) {
	jv := jsonValue{T: v.T}
	switch v.T {
	case Int:
		jv.I = &v.I
	case Float:
		jv.F = &v.F
	case Text:
		jv.S = &v.S
	}
	return json.Marshal(jv)
}

// UnmarshalJSON decodes a value written by MarshalJSON.
func (v *Value) UnmarshalJSON(b []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(b, &jv); err != nil {
		return err
	}
	switch jv.T {
	case Null:
		*v = NullValue()
	case Int:
		if jv.I == nil {
			return fmt.Errorf("sqltypes: int value missing payload")
		}
		*v = NewInt(*jv.I)
	case Float:
		if jv.F == nil {
			return fmt.Errorf("sqltypes: float value missing payload")
		}
		*v = NewFloat(*jv.F)
	case Text:
		if jv.S == nil {
			return fmt.Errorf("sqltypes: text value missing payload")
		}
		*v = NewText(*jv.S)
	default:
		return fmt.Errorf("sqltypes: unknown type tag %d in JSON", jv.T)
	}
	return nil
}
