// Package core wires the paper's complete system together: the DBMS
// engine with the integrated monitor compiled in, the IMA virtual
// tables, the storage daemon with its workload database, and the
// analyzer — the full auto-tuning control loop of Figure 1
// (monitoring → storing → analysing → implementing).
//
// It is the top-level API the examples and command-line tools use:
//
//	sys, _ := core.Open(core.Options{Dir: "/tmp/mydb"})
//	defer sys.Close()
//	sess := sys.Session()
//	sess.Exec("CREATE TABLE t (a INTEGER PRIMARY KEY)")
//	...
//	sys.Poll()                   // persist monitoring data
//	report, _ := sys.Analyze()   // recommendations
//	sys.Apply(report)            // implement them
package core

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/analyzer"
	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/telemetry"
)

// Options configures an integrated system.
type Options struct {
	// Dir is the base directory; the monitored database lives in
	// Dir/db and the workload database in Dir/workloaddb.
	Dir string
	// PoolPages sizes the engine buffer pool (default 2048).
	PoolPages int
	// DisableMonitor opens the engine without any monitoring — the
	// paper's "Original" baseline. IMA, daemon and analyzer are then
	// unavailable.
	DisableMonitor bool
	// StatementCapacity sizes the monitor's statement ring
	// (default 1000, as in the prototype).
	StatementCapacity int
	// DaemonInterval is the storage daemon polling period
	// (default 30 s).
	DaemonInterval time.Duration
	// Retention is the workload DB retention window (default 7 days).
	Retention time.Duration
	// Alerts are threshold rules the daemon evaluates after each poll.
	Alerts []daemon.Alert
	// FlushOnFull makes the daemon's Run loop poll immediately when
	// the monitor's workload ring nears capacity (the in-core
	// collection trigger of §IV-B) instead of waiting for the tick.
	FlushOnFull bool
	// Apply tunes the canary/observe/rollback state machine behind
	// ApplyOnline (zero values take the analyzer defaults: 5 s windows,
	// p95, 25% regression threshold).
	Apply analyzer.ApplyConfig
	// Flagger tunes the adaptive two-phase monitoring policy the daemon
	// evaluates each poll (zero values take the monitor defaults:
	// trend-only flagging at 3× baseline p95, 2-minute TTL).
	Flagger monitor.FlaggerConfig
	// MaxFlagged bounds how many statements can be under phase-2 wait
	// attribution at once (default 16).
	MaxFlagged int
	// Logf receives daemon diagnostics: transient poll failures, retry
	// scheduling, alert errors. nil discards them.
	Logf func(format string, args ...any)
}

// System is the integrated monitored DBMS.
type System struct {
	DB         *engine.DB
	Monitor    *monitor.Monitor
	WorkloadDB *engine.DB
	Daemon     *daemon.Daemon
	Analyzer   *analyzer.Analyzer
	// Applier executes recommendations through the canary/observe/
	// rollback state machine; its audit trail backs ima_actions and
	// ws_actions. Nil when monitoring is disabled.
	Applier *analyzer.Applier
	// Telemetry gathers monitor, engine and daemon metrics; serve it
	// over HTTP with telemetry.Serve, or scrape it in-process. The
	// same samples back the ima_health virtual table. Nil when
	// monitoring is disabled.
	Telemetry *telemetry.Registry
	// Flagger is the adaptive two-phase selection policy; the daemon
	// evaluates it each poll, and callers may drive it directly (tests,
	// embedders without a running daemon). Nil when monitoring is
	// disabled.
	Flagger *monitor.Flagger
}

// Open builds the system in opts.Dir.
func Open(opts Options) (*System, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: Options.Dir is required")
	}
	sys := &System{}
	if !opts.DisableMonitor {
		sys.Monitor = monitor.New(monitor.Config{
			StatementCapacity: opts.StatementCapacity,
			MaxFlagged:        opts.MaxFlagged,
		})
		sys.Flagger = monitor.NewFlagger(sys.Monitor, opts.Flagger)
	}
	db, err := engine.Open(engine.Config{
		Dir:       filepath.Join(opts.Dir, "db"),
		PoolPages: opts.PoolPages,
		Monitor:   sys.Monitor,
	})
	if err != nil {
		return nil, err
	}
	sys.DB = db
	if opts.DisableMonitor {
		return sys, nil
	}
	if err := ima.Register(db, sys.Monitor); err != nil {
		db.Close()
		return nil, err
	}
	wdb, err := engine.Open(engine.Config{
		Dir:       filepath.Join(opts.Dir, "workloaddb"),
		PoolPages: 512,
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	sys.WorkloadDB = wdb
	an, err := analyzer.New(analyzer.Config{Source: db, WorkloadDB: wdb})
	if err != nil {
		db.Close()
		wdb.Close()
		return nil, err
	}
	sys.Analyzer = an
	ap := an.NewApplier(opts.Apply)
	sys.Applier = ap
	if err := ima.RegisterActions(db, ap.ActionRows); err != nil {
		db.Close()
		wdb.Close()
		return nil, err
	}
	d, err := daemon.New(daemon.Config{
		Source:        db,
		Mon:           sys.Monitor,
		Target:        wdb,
		Interval:      opts.DaemonInterval,
		Retention:     opts.Retention,
		Alerts:        opts.Alerts,
		FlushOnFull:   opts.FlushOnFull,
		Actions:       ap.ActionRows,
		ApplyFailures: an.ApplyFailures,
		Flagger:       sys.Flagger,
		Logf:          opts.Logf,
	})
	if err != nil {
		db.Close()
		wdb.Close()
		return nil, err
	}
	sys.Daemon = d

	// Telemetry plane: one registry over every component, served on
	// demand by the commands and mirrored into ima_health so the same
	// counters are queryable over SQL (labelled histogram series stay
	// on /metrics; SQL reads ima_latency instead).
	reg := telemetry.NewRegistry()
	reg.Register("monitor", telemetry.MonitorSource(sys.Monitor))
	reg.Register("engine", telemetry.EngineSource(db))
	reg.Register("daemon", telemetry.DaemonSource(d))
	reg.Register("tuning", telemetry.TuningSource(an, ap, db))
	sys.Telemetry = reg
	if err := ima.RegisterHealth(db, func() []ima.HealthMetric {
		var hm []ima.HealthMetric
		for _, s := range reg.Gather() {
			if len(s.Labels) > 0 {
				continue
			}
			hm = append(hm, ima.HealthMetric{Component: s.Component, Metric: s.Name, Value: s.Value})
		}
		return hm
	}); err != nil {
		db.Close()
		wdb.Close()
		return nil, err
	}
	return sys, nil
}

// Session opens a session on the monitored database.
func (s *System) Session() *engine.Session { return s.DB.NewSession() }

// Poll runs one storage-daemon collection cycle immediately.
func (s *System) Poll() error {
	if s.Daemon == nil {
		return fmt.Errorf("core: monitoring is disabled")
	}
	return s.Daemon.Poll()
}

// RunDaemon runs the storage daemon until the context is cancelled.
func (s *System) RunDaemon(ctx context.Context) error {
	if s.Daemon == nil {
		return fmt.Errorf("core: monitoring is disabled")
	}
	return s.Daemon.Run(ctx)
}

// Analyze scans the collected data and returns recommendations.
func (s *System) Analyze() (*analyzer.Report, error) {
	if s.Analyzer == nil {
		return nil, fmt.Errorf("core: monitoring is disabled")
	}
	return s.Analyzer.Analyze()
}

// Apply implements a report's recommendations on the database.
func (s *System) Apply(rep *analyzer.Report, kinds ...analyzer.Kind) error {
	if s.Analyzer == nil {
		return fmt.Errorf("core: monitoring is disabled")
	}
	return s.Analyzer.Apply(rep, kinds...)
}

// ApplyOnline implements a report's recommendations through the
// canary/observe/rollback state machine: index builds run online under
// concurrent DML, buffer-pool recommendations become live resizes, and
// actions whose canary window shows a tail-latency regression are
// rolled back automatically. The audit trail is queryable as
// ima_actions and persisted to ws_actions.
func (s *System) ApplyOnline(rep *analyzer.Report, kinds ...analyzer.Kind) error {
	if s.Applier == nil {
		return fmt.Errorf("core: monitoring is disabled")
	}
	return s.Applier.ApplyOnline(rep, kinds...)
}

// Close shuts down both databases.
func (s *System) Close() error {
	var firstErr error
	if s.DB != nil {
		if err := s.DB.Close(); err != nil {
			firstErr = err
		}
	}
	if s.WorkloadDB != nil {
		if err := s.WorkloadDB.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
