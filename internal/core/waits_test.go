package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/workloaddb"
)

// TestAdaptiveMonitoringLoop drives the two-phase layer through the
// integrated system: phase-1 histograms feed the daemon's Flagger,
// the flag enables phase-2 attribution, and the breakdown surfaces
// consistently through ima_flags/ima_waits (SQL), engine_wait_*
// (telemetry) and ws_waits (workload DB) — the satellite parity test
// at the outermost layer.
func TestAdaptiveMonitoringLoop(t *testing.T) {
	sys, err := Open(Options{
		Dir: t.TempDir(),
		// An absolute threshold every statement clears: the first poll
		// after MinSamples executions flags it, no trend history needed.
		Flagger: monitor.FlaggerConfig{MinSamples: 4, P95Threshold: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Flagger == nil {
		t.Fatal("System.Flagger not wired")
	}

	s := sys.Session()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE ev (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO ev VALUES (1, 0), (2, 0), (3, 0)"); err != nil {
		t.Fatal(err)
	}
	const q = "UPDATE ev SET v = v + 1 WHERE id = 2"
	for i := 0; i < 8; i++ {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}

	// First poll: the Flagger sees 8 samples past the 1 ns threshold.
	if err := sys.Poll(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("SELECT hash, reason, age_us, samples FROM ima_flags")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("ima_flags rows = %d", len(res.Rows))
	}
	wantHash := int64(monitor.HashStatement(q))
	if res.Rows[0][0].I != wantHash || res.Rows[0][1].S != monitor.FlagReasonP95 {
		t.Fatalf("ima_flags row = %v", res.Rows[0])
	}
	if res.Rows[0][2].I < 0 {
		t.Fatalf("negative flag age: %v", res.Rows[0])
	}

	// Phase 2 now active: further executions accumulate a breakdown.
	for i := 0; i < 8; i++ {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err = s.Exec("SELECT hash, samples, wall_ns, exec_ns, lock_ns, io_ns, fsync_ns, pinwait_ns FROM ima_waits")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != wantHash {
		t.Fatalf("ima_waits rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[1].I != 8 {
		t.Fatalf("ima_waits samples = %d, want 8", row[1].I)
	}
	breakdown := row[3].I + row[4].I + row[5].I + row[6].I + row[7].I
	if breakdown <= 0 || breakdown > row[2].I {
		t.Fatalf("breakdown %d outside (0, wall=%d]", breakdown, row[2].I)
	}

	// Parity with the telemetry plane: the engine_wait_* counters must
	// equal the ima_waits sums (one statement flagged, so they are its
	// row verbatim), and the flagged gauge must show it.
	metrics := map[string]float64{}
	for _, m := range sys.Telemetry.Gather() {
		if len(m.Labels) == 0 {
			metrics[m.Name] = m.Value
		}
	}
	for name, want := range map[string]int64{
		"engine_wait_exec_ns_total":    row[3].I,
		"engine_wait_lock_ns_total":    row[4].I,
		"engine_wait_io_ns_total":      row[5].I,
		"engine_wait_fsync_ns_total":   row[6].I,
		"engine_wait_pinwait_ns_total": row[7].I,
	} {
		if got := int64(metrics[name]); got != want {
			t.Errorf("%s = %d, metrics want %d", name, got, want)
		}
	}
	if metrics["engine_flagged_statements"] != 1 {
		t.Errorf("engine_flagged_statements = %v", metrics["engine_flagged_statements"])
	}
	if metrics["monitor_overhead_phase2_seconds_total"] <= 0 {
		t.Error("phase-2 overhead not accounted")
	}

	// Second poll persists the breakdown into ws_waits.
	if err := sys.Poll(); err != nil {
		t.Fatal(err)
	}
	ws := sys.WorkloadDB.NewSession()
	defer ws.Close()
	res, err = ws.Exec(fmt.Sprintf(
		"SELECT samples, wall_ns FROM %s WHERE hash = %d", workloaddb.Waits, wantHash))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 8 {
		t.Fatalf("ws_waits rows = %v", res.Rows)
	}

	// Manual unflag through the monitor drops it from ima_flags and the
	// gauge on the next scrape.
	if !sys.Monitor.Unflag(q) {
		t.Fatal("Unflag failed")
	}
	res, err = s.Exec("SELECT hash FROM ima_flags")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("ima_flags not empty after unflag: %v", res.Rows)
	}
}
