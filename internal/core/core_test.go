package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/daemon"
	"repro/internal/monitor"
)

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}

// TestFullControlLoop drives the paper's Figure 1 loop end to end:
// monitor a workload, store it, analyze it, implement the changes, and
// observe the workload getting cheaper.
func TestFullControlLoop(t *testing.T) {
	sys, err := Open(Options{Dir: t.TempDir(), PoolPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	s := sys.Session()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE ev (id INTEGER PRIMARY KEY, kind INTEGER, note VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	for base := 0; base < 3000; base += 250 {
		stmt := "INSERT INTO ev VALUES "
		for i := base; i < base+250; i++ {
			if i > base {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d, 'note-%d')", i, i%40, i)
		}
		if _, err := s.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	// Monitoring phase: a repeated selective query.
	for i := 0; i < 20; i++ {
		if _, err := s.Exec(fmt.Sprintf("SELECT note FROM ev WHERE kind = %d", i%40)); err != nil {
			t.Fatal(err)
		}
	}
	// Storing phase.
	if err := sys.Poll(); err != nil {
		t.Fatal(err)
	}
	// Analysis phase.
	rep, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recommendations) == 0 {
		t.Fatal("no recommendations for an index-starved workload")
	}
	var hasIndex bool
	for _, r := range rep.Recommendations {
		if r.Kind == analyzer.KindIndex && r.Table == "ev" {
			hasIndex = true
		}
	}
	if !hasIndex {
		t.Errorf("no index recommended on ev.kind; got %+v", rep.Recommendations)
	}

	before, _ := s.Exec("SELECT note FROM ev WHERE kind = 7")

	// Implementation phase.
	if err := sys.Apply(rep); err != nil {
		t.Fatal(err)
	}
	after, err := s.Exec("SELECT note FROM ev WHERE kind = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows) {
		t.Fatalf("tuning changed results: %d vs %d", len(after.Rows), len(before.Rows))
	}
	if !strings.Contains(after.Plan.String(), "IndexScan") {
		t.Errorf("tuned plan still scans:\n%s", after.Plan.String())
	}
}

func TestDisabledMonitorSystem(t *testing.T) {
	sys, err := Open(Options{Dir: t.TempDir(), DisableMonitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE t (a INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Poll(); err == nil {
		t.Error("Poll should fail without monitoring")
	}
	if _, err := sys.Analyze(); err == nil {
		t.Error("Analyze should fail without monitoring")
	}
	if err := sys.Apply(nil); err == nil {
		t.Error("Apply should fail without monitoring")
	}
	if err := sys.RunDaemon(nil); err == nil { //nolint:staticcheck
		t.Error("RunDaemon should fail without monitoring")
	}
}

func TestAlertsThroughSystem(t *testing.T) {
	fired := 0
	sys, err := Open(Options{
		Dir: t.TempDir(),
		Alerts: []daemon.Alert{{
			Name:      "sessions",
			Query:     "SELECT peak_sessions FROM ima_statistics",
			Op:        ">=",
			Threshold: 1,
			Action:    func(daemon.Event) { fired++ },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session()
	defer s.Close()
	if err := sys.Poll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("alert fired %d times", fired)
	}
}

// TestApplyOnlineAuditTrail drives the canary state machine through the
// wired system and asserts the verdicts where a DBA would read them:
// the ima_actions virtual table over plain SQL, and ws_actions after a
// daemon poll. An injected p95 regression must produce a rolled-back
// verdict (and actually drop the index); a clean canary must produce an
// accepted one.
func TestApplyOnlineAuditTrail(t *testing.T) {
	fast, slow := 8, 30 // latency buckets: unambiguous regression
	series := make([]monitor.LatencyCounts, 0, 8)
	mk := func(b int, n int64, prev monitor.LatencyCounts) monitor.LatencyCounts {
		prev[b] += n
		return prev
	}
	// First action (rolled back): clean baseline, slow canary. Second
	// action (accepted): clean baseline, clean canary.
	var c monitor.LatencyCounts
	series = append(series, c)
	c = mk(fast, 100, c)
	series = append(series, c, c)
	c = mk(slow, 100, c)
	series = append(series, c, c)
	c = mk(fast, 100, c)
	series = append(series, c, c)
	c = mk(fast, 100, c)
	series = append(series, c)
	i := 0
	sys, err := Open(Options{Dir: t.TempDir(), Apply: analyzer.ApplyConfig{
		CanaryWindow: time.Millisecond,
		MinSamples:   10,
		Sleep:        func(time.Duration) {},
		Latency: func() monitor.LatencyCounts {
			v := series[i]
			if i < len(series)-1 {
				i++
			}
			return v
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session()
	if _, err := s.Exec("CREATE TABLE at (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 40; r++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO at VALUES (%d, %d, %d)", r, r%5, r%7)); err != nil {
			t.Fatal(err)
		}
	}
	rep := &analyzer.Report{Recommendations: []analyzer.Recommendation{
		{Kind: analyzer.KindIndex, Table: "at", SQL: "CREATE INDEX ix_at_a ON at (a)"},
		{Kind: analyzer.KindIndex, Table: "at", SQL: "CREATE INDEX ix_at_b ON at (b)"},
	}}
	if err := sys.ApplyOnline(rep); err != nil {
		t.Fatal(err)
	}

	// The regressing index was dropped, the clean one kept.
	if sys.DB.Catalog().Index("ix_at_a") != nil {
		t.Fatal("regressing index survived its canary")
	}
	if sys.DB.Catalog().Index("ix_at_b") == nil {
		t.Fatal("clean index was not kept")
	}
	// Verdicts over SQL, exactly as a DBA would read them.
	res, err := s.Exec("SELECT target, state FROM ima_actions WHERE state = 'rolled-back' OR state = 'accepted'")
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]bool{}
	for _, r := range res.Rows {
		verdicts[r[0].S+"/"+r[1].S] = true
	}
	if !verdicts["at/rolled-back"] || !verdicts["at/accepted"] {
		t.Fatalf("ima_actions verdicts missing: %v", verdicts)
	}
	// And persisted into the workload DB by the next poll.
	if err := sys.Poll(); err != nil {
		t.Fatal(err)
	}
	ws := sys.WorkloadDB.NewSession()
	defer ws.Close()
	wres, err := ws.Exec("SELECT state FROM ws_actions WHERE state = 'rolled-back'")
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.Rows) != 1 {
		t.Fatalf("ws_actions has %d rolled-back rows, want 1", len(wres.Rows))
	}
}
