package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/daemon"
)

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}

// TestFullControlLoop drives the paper's Figure 1 loop end to end:
// monitor a workload, store it, analyze it, implement the changes, and
// observe the workload getting cheaper.
func TestFullControlLoop(t *testing.T) {
	sys, err := Open(Options{Dir: t.TempDir(), PoolPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	s := sys.Session()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE ev (id INTEGER PRIMARY KEY, kind INTEGER, note VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	for base := 0; base < 3000; base += 250 {
		stmt := "INSERT INTO ev VALUES "
		for i := base; i < base+250; i++ {
			if i > base {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d, 'note-%d')", i, i%40, i)
		}
		if _, err := s.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	// Monitoring phase: a repeated selective query.
	for i := 0; i < 20; i++ {
		if _, err := s.Exec(fmt.Sprintf("SELECT note FROM ev WHERE kind = %d", i%40)); err != nil {
			t.Fatal(err)
		}
	}
	// Storing phase.
	if err := sys.Poll(); err != nil {
		t.Fatal(err)
	}
	// Analysis phase.
	rep, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recommendations) == 0 {
		t.Fatal("no recommendations for an index-starved workload")
	}
	var hasIndex bool
	for _, r := range rep.Recommendations {
		if r.Kind == analyzer.KindIndex && r.Table == "ev" {
			hasIndex = true
		}
	}
	if !hasIndex {
		t.Errorf("no index recommended on ev.kind; got %+v", rep.Recommendations)
	}

	before, _ := s.Exec("SELECT note FROM ev WHERE kind = 7")

	// Implementation phase.
	if err := sys.Apply(rep); err != nil {
		t.Fatal(err)
	}
	after, err := s.Exec("SELECT note FROM ev WHERE kind = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows) {
		t.Fatalf("tuning changed results: %d vs %d", len(after.Rows), len(before.Rows))
	}
	if !strings.Contains(after.Plan.String(), "IndexScan") {
		t.Errorf("tuned plan still scans:\n%s", after.Plan.String())
	}
}

func TestDisabledMonitorSystem(t *testing.T) {
	sys, err := Open(Options{Dir: t.TempDir(), DisableMonitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE t (a INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Poll(); err == nil {
		t.Error("Poll should fail without monitoring")
	}
	if _, err := sys.Analyze(); err == nil {
		t.Error("Analyze should fail without monitoring")
	}
	if err := sys.Apply(nil); err == nil {
		t.Error("Apply should fail without monitoring")
	}
	if err := sys.RunDaemon(nil); err == nil { //nolint:staticcheck
		t.Error("RunDaemon should fail without monitoring")
	}
}

func TestAlertsThroughSystem(t *testing.T) {
	fired := 0
	sys, err := Open(Options{
		Dir: t.TempDir(),
		Alerts: []daemon.Alert{{
			Name:      "sessions",
			Query:     "SELECT peak_sessions FROM ima_statistics",
			Op:        ">=",
			Threshold: 1,
			Action:    func(daemon.Event) { fired++ },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session()
	defer s.Close()
	if err := sys.Poll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("alert fired %d times", fired)
	}
}
