package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/workloaddb"
)

// TestMvccTelemetryParity is the outermost-layer parity check for the
// MVCC counters: after a workload that exercises begins, commits,
// aborts, write conflicts and a vacuum pass, the engine_mvcc_* metrics
// on the telemetry plane must equal the columns of the latest ws_mvcc
// row the daemon persisted — same sensors, two exposure paths.
func TestMvccTelemetryParity(t *testing.T) {
	sys, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	s := sys.Session()
	if _, err := s.Exec("CREATE TABLE mp (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO mp VALUES (1, 0), (2, 0)"); err != nil {
		t.Fatal(err)
	}
	// A committed transaction, a rollback, update churn for vacuum...
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE mp SET v = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE mp SET v = 2 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	s.Rollback()

	// ...and a first-updater-wins conflict between two sessions.
	s2 := sys.Session()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("SELECT v FROM mp WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("UPDATE mp SET v = 7 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE mp SET v = 8 WHERE id = 2"); !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("want ErrWriteConflict, got %v", err)
	}
	s.Rollback()
	s2.Close()
	s.Close()

	// The poll runs vacuum and then snapshots MvccStats into ws_mvcc.
	// With every session closed the counters are quiescent, so a
	// Gather() afterwards reads the same values the row froze.
	if err := sys.Poll(); err != nil {
		t.Fatal(err)
	}

	ws := sys.WorkloadDB.NewSession()
	defer ws.Close()
	res, err := ws.Exec(fmt.Sprintf(`SELECT ts_us, txn_begins, txn_commits, txn_aborts,
		write_conflicts, inflight_txns, active_snapshots, aborted_ids,
		oldest_snapshot_ns, vacuum_runs, vacuum_reclaimed, vacuum_cleared,
		retired_ids, chain_len_p95 FROM %s ORDER BY ts_us`, workloaddb.Mvcc))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no ws_mvcc row persisted by the poll")
	}
	row := res.Rows[len(res.Rows)-1]

	metrics := map[string]float64{}
	for _, m := range sys.Telemetry.Gather() {
		if len(m.Labels) == 0 {
			metrics[m.Name] = m.Value
		}
	}
	for i, name := range []string{
		"engine_mvcc_txn_begins_total",
		"engine_mvcc_txn_commits_total",
		"engine_mvcc_txn_aborts_total",
		"engine_mvcc_write_conflicts_total",
		"engine_mvcc_inflight_txns",
		"engine_mvcc_active_snapshots",
		"engine_mvcc_aborted_ids",
		"engine_mvcc_oldest_snapshot_ns",
		"engine_mvcc_vacuum_runs_total",
		"engine_mvcc_vacuum_reclaimed_total",
		"engine_mvcc_vacuum_cleared_total",
		"engine_mvcc_retired_ids_total",
		"engine_mvcc_chain_len_p95",
	} {
		got, ok := metrics[name]
		if !ok {
			t.Errorf("metric %s not exported", name)
			continue
		}
		if want := row[i+1].I; int64(got) != want {
			t.Errorf("%s = %d, ws_mvcc column = %d", name, int64(got), want)
		}
	}

	// Spot-check the workload actually moved the interesting counters,
	// so the parity above is not a vacuous all-zeroes match.
	if row[1].I == 0 || row[2].I == 0 || row[3].I == 0 || row[4].I == 0 {
		t.Errorf("workload left begins/commits/aborts/conflicts at %d/%d/%d/%d, parity check vacuous",
			row[1].I, row[2].I, row[3].I, row[4].I)
	}
	if row[9].I == 0 {
		t.Error("poll did not run vacuum (vacuum_runs = 0)")
	}
}
