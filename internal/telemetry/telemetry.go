// Package telemetry is the HTTP face of the monitoring stack: a small
// registry of metric sources rendered in the Prometheus text exposition
// format under /metrics, with net/http/pprof mounted under
// /debug/pprof. It complements the IMA virtual tables — the same
// counters queryable over SQL are scrapeable by standard tooling — and
// stays stdlib-only like the rest of the reproduction.
package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Kind distinguishes Prometheus metric types.
type Kind uint8

// Metric kinds. Histogram series are emitted by sources as explicit
// *_bucket/*_sum/*_count samples (see HistogramMetrics).
const (
	Counter Kind = iota
	Gauge
)

func (k Kind) String() string {
	if k == Gauge {
		return "gauge"
	}
	return "counter"
}

// Label is one Prometheus label pair.
type Label struct{ Key, Value string }

// Metric is a single sample.
type Metric struct {
	Name   string // full metric name, e.g. "daemon_polls_total"
	Help   string
	Kind   Kind
	Value  float64
	Labels []Label
}

// Source produces the current samples of one component. Sources must
// be safe for concurrent invocation.
type Source func() []Metric

// Sample is a gathered metric tagged with its component.
type Sample struct {
	Component string
	Metric
}

// Registry holds named metric sources. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	order   []string
	sources map[string]Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: map[string]Source{}}
}

// Register adds a component's source. Registering the same component
// twice is an error (it would double-report every sample).
func (r *Registry) Register(component string, src Source) error {
	if src == nil {
		return fmt.Errorf("telemetry: nil source for %q", component)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[component]; dup {
		return fmt.Errorf("telemetry: component %q already registered", component)
	}
	r.sources[component] = src
	r.order = append(r.order, component)
	return nil
}

// Components lists registered component names in registration order.
func (r *Registry) Components() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Gather invokes every source and returns the flattened samples in
// registration order.
func (r *Registry) Gather() []Sample {
	r.mu.RLock()
	order := append([]string(nil), r.order...)
	sources := make([]Source, len(order))
	for i, c := range order {
		sources[i] = r.sources[c]
	}
	r.mu.RUnlock()
	var out []Sample
	for i, src := range sources {
		for _, m := range src() {
			out = append(out, Sample{Component: order[i], Metric: m})
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE comment per
// metric name followed by its samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()
	// Samples of one name must be contiguous and announced once.
	seen := map[string]bool{}
	var names []string
	byName := map[string][]Sample{}
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range names {
		group := byName[name]
		help := group[0].Help
		if help == "" {
			help = name
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, escapeHelp(help), name, group[0].Kind); err != nil {
			return err
		}
		for _, s := range group {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				name, formatLabels(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
