package telemetry

import (
	"strconv"

	"repro/internal/analyzer"
	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/monitor"
)

// Adapters turning the monitoring components into metric sources. They
// read only snapshot/atomic accessors, so scraping never blocks the
// statement hot path.

// HistogramMetrics renders a monitor latency histogram as Prometheus
// histogram series: cumulative <name>_bucket{le=...} samples plus
// <name>_sum (seconds) and <name>_count. Empty buckets are skipped —
// cumulative counts stay correct and the exposition stays small.
func HistogramMetrics(name, help string, c *monitor.LatencyCounts, sum float64) []Metric {
	total := c.Total()
	out := make([]Metric, 0, 8)
	var cum int64
	for i, v := range c {
		cum += v
		if v == 0 {
			continue
		}
		_, hi := monitor.LatencyBucketBounds(i)
		out = append(out, Metric{
			Name: name + "_bucket", Help: help, Kind: Counter, Value: float64(cum),
			Labels: []Label{{Key: "le", Value: strconv.FormatInt(int64(hi), 10)}},
		})
	}
	out = append(out,
		Metric{Name: name + "_bucket", Help: help, Kind: Counter, Value: float64(total),
			Labels: []Label{{Key: "le", Value: "+Inf"}}},
		Metric{Name: name + "_sum", Help: help, Kind: Counter, Value: sum},
		Metric{Name: name + "_count", Help: help, Kind: Counter, Value: float64(total)},
	)
	return out
}

// MonitorSource exposes the monitor's totals and latency histograms.
func MonitorSource(m *monitor.Monitor) Source {
	return func() []Metric {
		wall, opt := m.SnapshotLatency()
		wallSum, optSum := m.LatencySums()
		ms := []Metric{
			{Name: "monitor_statements_total", Help: "Monitored statement executions.", Kind: Counter, Value: float64(m.TotalStatements())},
			{Name: "monitor_sensor_seconds_total", Help: "Wallclock seconds spent inside monitor sensors.", Kind: Counter, Value: m.TotalMonitorTime().Seconds()},
			{Name: "monitor_distinct_statements", Help: "Distinct statements in the statement ring.", Kind: Gauge, Value: float64(m.StatementCount())},
			{Name: "monitor_workload_depth", Help: "Workload entries buffered awaiting drain.", Kind: Gauge, Value: float64(m.WorkloadDepth())},
			{Name: "monitor_workload_dropped_total", Help: "Workload entries lost to ring wraparound.", Kind: Counter, Value: float64(m.WorkloadDropped())},
			{Name: "monitor_traces_buffered", Help: "EXPLAIN ANALYZE traces in the trace ring.", Kind: Gauge, Value: float64(m.TraceCount())},
		}
		// Adaptive two-phase layer: the flag set, the per-class wait
		// attribution totals, and the monitor's own overhead split into
		// phase 1 (always-on sensors) and phase 2 (wait recording).
		wt := m.WaitTotals()
		phase1 := m.TotalMonitorTime().Seconds()
		phase2 := m.Phase2Overhead().Seconds()
		ms = append(ms,
			Metric{Name: "engine_flagged_statements", Help: "Statements currently under phase-2 wait attribution.", Kind: Gauge, Value: float64(m.FlagCount())},
			Metric{Name: "engine_wait_exec_ns_total", Help: "Executor self-time attributed to flagged statements, nanoseconds.", Kind: Counter, Value: float64(wt.ExecNs)},
			Metric{Name: "engine_wait_lock_ns_total", Help: "Lock acquisition wait attributed to flagged statements, nanoseconds.", Kind: Counter, Value: float64(wt.LockNs)},
			Metric{Name: "engine_wait_io_ns_total", Help: "Buffer-pool page I/O wait attributed to flagged statements, nanoseconds.", Kind: Counter, Value: float64(wt.IONs)},
			Metric{Name: "engine_wait_fsync_ns_total", Help: "WAL group-commit/fsync wait attributed to flagged statements, nanoseconds.", Kind: Counter, Value: float64(wt.FsyncNs)},
			Metric{Name: "engine_wait_pinwait_ns_total", Help: "Pinned-pool backpressure wait attributed to flagged statements, nanoseconds.", Kind: Counter, Value: float64(wt.PinWaitNs)},
			Metric{Name: "monitor_overhead_phase2_seconds_total", Help: "Wallclock seconds inside the phase-2 machinery (flag lookups, wait recording).", Kind: Counter, Value: phase2},
		)
		if wallSum > 0 {
			ms = append(ms, Metric{Name: "monitor_overhead_ratio",
				Help: "Monitor self-overhead (phase 1 + phase 2) over total statement wallclock.",
				Kind: Gauge, Value: (phase1 + phase2) / wallSum.Seconds()})
		}
		ms = append(ms, HistogramMetrics("monitor_statement_wall_ns",
			"Statement wallclock latency in nanoseconds.", &wall, wallSum.Seconds()*1e9)...)
		ms = append(ms, HistogramMetrics("monitor_statement_opt_ns",
			"Optimizer time per statement in nanoseconds.", &opt, optSum.Seconds()*1e9)...)
		return ms
	}
}

// EngineSource exposes the engine-wide counters that back
// ima_statistics.
func EngineSource(db *engine.DB) Source {
	return func() []Metric {
		st := db.Stats()
		lc, fsyncSumNanos := db.WALFsyncLatency()
		ms := []Metric{
			{Name: "engine_sessions_current", Help: "Open sessions.", Kind: Gauge, Value: float64(st.CurrentSessions)},
			{Name: "engine_sessions_peak", Help: "Peak concurrent sessions.", Kind: Gauge, Value: float64(st.PeakSessions)},
			{Name: "engine_statements_total", Help: "Statements executed.", Kind: Counter, Value: float64(st.Statements)},
			{Name: "engine_locks_held", Help: "Locks currently held.", Kind: Gauge, Value: float64(st.LocksHeld)},
			{Name: "engine_lock_waits_total", Help: "Lock acquisitions that waited.", Kind: Counter, Value: float64(st.LockWaits)},
			{Name: "engine_lock_wait_seconds_total", Help: "Wallclock seconds sessions spent parked on lock queues.", Kind: Counter, Value: float64(st.LockWaitNanos) / 1e9},
			{Name: "engine_deadlocks_total", Help: "Deadlocks detected.", Kind: Counter, Value: float64(st.Deadlocks)},
			{Name: "engine_cache_hits_total", Help: "Buffer pool hits.", Kind: Counter, Value: float64(st.CacheHits)},
			{Name: "engine_cache_misses_total", Help: "Buffer pool misses.", Kind: Counter, Value: float64(st.CacheMisses)},
			{Name: "engine_disk_reads_total", Help: "Pages read from disk.", Kind: Counter, Value: float64(st.DiskReads)},
			{Name: "engine_disk_writes_total", Help: "Pages written to disk.", Kind: Counter, Value: float64(st.DiskWrites)},
			{Name: "engine_db_bytes", Help: "Database size on disk in bytes.", Kind: Gauge, Value: float64(st.DBBytes)},
			{Name: "engine_cache_evictions_total", Help: "Buffer pool frames evicted to make room.", Kind: Counter, Value: float64(st.CacheEvictions)},
			{Name: "engine_cache_resident", Help: "Pages currently cached in the buffer pool.", Kind: Gauge, Value: float64(st.CacheResident)},
			{Name: "engine_cache_pin_waits_total", Help: "Backpressure waits on a fully pinned pool shard.", Kind: Counter, Value: float64(st.PinWaits)},
			{Name: "engine_wal_bytes_total", Help: "Bytes appended to the write-ahead log.", Kind: Counter, Value: float64(st.WALBytes)},
			{Name: "engine_wal_fsyncs_total", Help: "WAL fsyncs issued (group commit amortizes these).", Kind: Counter, Value: float64(st.WALFsyncs)},
			{Name: "engine_redo_records", Help: "WAL records replayed (redo + undo) by crash recovery at the last open.", Kind: Gauge, Value: float64(st.RedoRecords)},
			{Name: "engine_redo_nanos", Help: "Wallclock nanoseconds of the last crash-recovery pass.", Kind: Gauge, Value: float64(st.RedoNanos)},
			{Name: "engine_parallel_queries_total", Help: "Statements that ran a morsel-parallel plan subtree.", Kind: Counter, Value: float64(st.ParallelQueries)},
			{Name: "engine_parallel_morsels_total", Help: "Heap-page morsels dispatched to parallel scan workers.", Kind: Counter, Value: float64(st.MorselsDispatched)},
			{Name: "engine_parallel_worker_seconds_total", Help: "Summed wall time of parallel scan workers in seconds.", Kind: Counter, Value: float64(st.ParallelWorkerNanos) / 1e9},
		}
		ms = append(ms, HistogramMetrics("engine_wal_fsync_ns",
			"WAL fsync latency in nanoseconds.", &lc, float64(fsyncSumNanos))...)
		// MVCC snapshot-isolation health, mirroring ima_mvcc / ws_mvcc.
		mv := db.MvccStats()
		ms = append(ms,
			Metric{Name: "engine_mvcc_txn_begins_total", Help: "MVCC transactions begun.", Kind: Counter, Value: float64(mv.TxnBegins)},
			Metric{Name: "engine_mvcc_txn_commits_total", Help: "MVCC transactions committed.", Kind: Counter, Value: float64(mv.TxnCommits)},
			Metric{Name: "engine_mvcc_txn_aborts_total", Help: "MVCC transactions aborted (rollbacks, errors, conflicts).", Kind: Counter, Value: float64(mv.TxnAborts)},
			Metric{Name: "engine_mvcc_write_conflicts_total", Help: "First-updater-wins write conflicts raised.", Kind: Counter, Value: float64(mv.WriteConflicts)},
			Metric{Name: "engine_mvcc_inflight_txns", Help: "MVCC transactions currently open.", Kind: Gauge, Value: float64(mv.InflightTxns)},
			Metric{Name: "engine_mvcc_active_snapshots", Help: "Snapshots currently pinned by sessions.", Kind: Gauge, Value: float64(mv.ActiveSnapshots)},
			Metric{Name: "engine_mvcc_aborted_ids", Help: "Aborted transaction ids not yet retired by vacuum.", Kind: Gauge, Value: float64(mv.AbortedIDs)},
			Metric{Name: "engine_mvcc_oldest_snapshot_ns", Help: "Age of the oldest active snapshot in nanoseconds (vacuum horizon lag).", Kind: Gauge, Value: float64(mv.OldestSnapshotNanos)},
			Metric{Name: "engine_mvcc_vacuum_runs_total", Help: "Vacuum passes completed.", Kind: Counter, Value: float64(mv.VacuumRuns)},
			Metric{Name: "engine_mvcc_vacuum_reclaimed_total", Help: "Dead row versions reclaimed by vacuum.", Kind: Counter, Value: float64(mv.VacuumReclaimed)},
			Metric{Name: "engine_mvcc_vacuum_cleared_total", Help: "Aborted xmax stamps cleared by vacuum.", Kind: Counter, Value: float64(mv.VacuumCleared)},
			Metric{Name: "engine_mvcc_retired_ids_total", Help: "Aborted transaction ids retired after vacuum proved them unreferenced.", Kind: Counter, Value: float64(mv.RetiredIDs)},
			Metric{Name: "engine_mvcc_chain_len_p95", Help: "p95 surviving version-chain length at the last vacuum pass.", Kind: Gauge, Value: float64(mv.ChainLenP95)},
		)
		return ms
	}
}

// TuningSource exposes the autonomous-tuning loop: the apply state
// machine's outcome counters, the analyzer's apply failures, and the
// live buffer-pool capacity (which pool-resize actions change at
// runtime).
func TuningSource(a *analyzer.Analyzer, ap *analyzer.Applier, db *engine.DB) Source {
	return func() []Metric {
		accepted, rolledBack, failed := ap.Stats()
		return []Metric{
			{Name: "engine_tuning_actions_accepted_total", Help: "Tuning actions accepted after their canary window.", Kind: Counter, Value: float64(accepted)},
			{Name: "engine_tuning_actions_rolled_back_total", Help: "Tuning actions rolled back for regressing the tail latency.", Kind: Counter, Value: float64(rolledBack)},
			{Name: "engine_tuning_actions_failed_total", Help: "Tuning actions whose execution or rollback failed.", Kind: Counter, Value: float64(failed)},
			{Name: "engine_tuning_apply_failures_total", Help: "Recommendations the analyzer could not execute.", Kind: Counter, Value: float64(a.ApplyFailures())},
			{Name: "engine_tuning_pool_capacity_pages", Help: "Current buffer pool capacity in pages (live-resizable).", Kind: Gauge, Value: float64(db.PoolCapacity())},
		}
	}
}

// DaemonSource exposes the storage daemon's Stats() counters — the
// collector's own health, mirroring the fault-tolerance columns the
// daemon appends to ws_statistics.
func DaemonSource(d *daemon.Daemon) Source {
	return func() []Metric {
		st := d.Stats()
		ms := []Metric{
			{Name: "daemon_polls_total", Help: "Completed poll attempts.", Kind: Counter, Value: float64(st.Polls)},
			{Name: "daemon_rows_appended_total", Help: "Rows appended to the workload DB.", Kind: Counter, Value: float64(st.RowsAppended)},
			{Name: "daemon_rows_pruned_total", Help: "Rows pruned past retention.", Kind: Counter, Value: float64(st.RowsPruned)},
			{Name: "daemon_alerts_fired_total", Help: "Alert actions invoked.", Kind: Counter, Value: float64(st.AlertsFired)},
			{Name: "daemon_poll_errors_total", Help: "Polls that returned a transient error.", Kind: Counter, Value: float64(st.PollErrors)},
			{Name: "daemon_retries_total", Help: "Backoff retry polls executed.", Kind: Counter, Value: float64(st.Retries)},
			{Name: "daemon_alert_errors_total", Help: "Alert evaluations that failed.", Kind: Counter, Value: float64(st.AlertErrors)},
			{Name: "daemon_carryover_depth", Help: "Drained entries awaiting re-insert.", Kind: Gauge, Value: float64(st.CarryoverDepth)},
			{Name: "daemon_carryover_drops_total", Help: "Carryover entries dropped at the cap.", Kind: Counter, Value: float64(st.CarryoverDrops)},
		}
		if !st.LastPoll.IsZero() {
			ms = append(ms, Metric{Name: "daemon_last_poll_timestamp_seconds",
				Help: "Unix time of the last poll attempt.", Kind: Gauge,
				Value: float64(st.LastPoll.UnixNano()) / 1e9})
		}
		return ms
	}
}
