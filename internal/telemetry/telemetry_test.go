package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/workloaddb"
)

var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.e+-]+|NaN|[+-]Inf)$`)
)

// checkPrometheusText validates the exposition line by line: comments
// are well-formed HELP/TYPE pairs, samples parse, and each metric name
// is announced exactly once before its samples.
func checkPrometheusText(t *testing.T, body string) {
	t.Helper()
	announced := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("line %d: bad HELP: %q", ln+1, line)
			}
			name := strings.Fields(line)[2]
			if announced[name] {
				t.Errorf("line %d: %s announced twice", ln+1, name)
			}
			announced[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			if !typeRe.MatchString(line) {
				t.Errorf("line %d: bad TYPE: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unknown comment: %q", ln+1, line)
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("line %d: bad sample: %q", ln+1, line)
			}
			name := line[:strings.IndexAny(line, "{ ")]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if !announced[name] && !announced[base] {
				t.Errorf("line %d: sample %s before its HELP", ln+1, name)
			}
		}
	}
}

// metricValue extracts an unlabelled sample's value from the body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("%s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in body:\n%s", name, body)
	return 0
}

func TestRegistryRegisterAndGather(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("a", func() []Metric {
		return []Metric{{Name: "a_total", Kind: Counter, Value: 1}}
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("a", func() []Metric { return nil }); err == nil {
		t.Fatal("duplicate component accepted")
	}
	if err := reg.Register("b", nil); err == nil {
		t.Fatal("nil source accepted")
	}
	samples := reg.Gather()
	if len(samples) != 1 || samples[0].Component != "a" || samples[0].Name != "a_total" {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Register("test", func() []Metric {
		return []Metric{
			{Name: "test_ops_total", Help: "Ops with \"quotes\"\nand newline.", Kind: Counter, Value: 42},
			{Name: "test_ratio", Help: "A gauge.", Kind: Gauge, Value: 0.5},
			{Name: "test_labeled", Kind: Counter, Value: 1,
				Labels: []Label{{Key: "kind", Value: `a"b\c`}}},
			{Name: "test_labeled", Kind: Counter, Value: 2,
				Labels: []Label{{Key: "kind", Value: "plain"}}},
		}
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	checkPrometheusText(t, body)
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		"# TYPE test_ratio gauge",
		"test_ops_total 42",
		"test_ratio 0.5",
		`test_labeled{kind="a\"b\\c"} 1`,
		`test_labeled{kind="plain"} 2`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestHistogramMetricsCumulative(t *testing.T) {
	var c monitor.LatencyCounts
	c[3] = 5
	c[10] = 2
	ms := HistogramMetrics("h", "help", &c, 1234)
	var lastCum float64
	for _, m := range ms {
		if m.Name != "h_bucket" {
			continue
		}
		if m.Value < lastCum {
			t.Errorf("bucket values not cumulative: %v after %v", m.Value, lastCum)
		}
		lastCum = m.Value
	}
	last := ms[len(ms)-3:]
	if last[0].Labels[0].Value != "+Inf" || last[0].Value != 7 {
		t.Errorf("+Inf bucket = %+v", last[0])
	}
	if last[1].Name != "h_sum" || last[1].Value != 1234 {
		t.Errorf("sum = %+v", last[1])
	}
	if last[2].Name != "h_count" || last[2].Value != 7 {
		t.Errorf("count = %+v", last[2])
	}
}

func TestServerServesMetricsAndPprof(t *testing.T) {
	mon := monitor.New(monitor.Config{})
	for i := 0; i < 5; i++ {
		h := mon.StartStatement(fmt.Sprintf("SELECT %d", i))
		h.Parsed("SELECT", nil)
		h.Finish(1, 0, 1, nil)
	}
	reg := NewRegistry()
	reg.Register("monitor", MonitorSource(mon))

	ts := httptest.NewServer(NewMux(reg))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	checkPrometheusText(t, string(body))
	if got := metricValue(t, string(body), "monitor_statements_total"); got != 5 {
		t.Errorf("monitor_statements_total = %v, want 5", got)
	}
	if got := metricValue(t, string(body), "monitor_statement_wall_ns_count"); got != 5 {
		t.Errorf("histogram count = %v, want 5", got)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, r.StatusCode)
		}
	}
}

func TestServeListensAndCloses(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestMetricsAgreeWithWsStatistics scrapes /metrics after a daemon
// poll and cross-checks the daemon self-observability values against
// the columns the same poll appended to ws_statistics.
func TestMetricsAgreeWithWsStatistics(t *testing.T) {
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{})
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	if err := ima.Register(source, mon); err != nil {
		t.Fatal(err)
	}
	target, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	s := source.NewSession()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	d, err := daemon.New(daemon.Config{Source: source, Mon: mon, Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	reg.Register("engine", EngineSource(source))
	reg.Register("daemon", DaemonSource(d))
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	checkPrometheusText(t, body)

	ws := target.NewSession()
	defer ws.Close()
	res, err := ws.Exec("SELECT statements, poll_errors, retries, carryover_depth, alert_errors, " +
		"cache_evictions, cache_resident, pin_waits, wal_bytes, wal_fsyncs, redo_records, redo_nanos FROM " +
		workloaddb.Statistics + " ORDER BY ts_us DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("ws_statistics rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	checks := []struct {
		metric string
		col    string
		want   int64
	}{
		{"engine_statements_total", "statements", row[0].I},
		{"daemon_poll_errors_total", "poll_errors", row[1].I},
		{"daemon_retries_total", "retries", row[2].I},
		{"daemon_carryover_depth", "carryover_depth", row[3].I},
		{"daemon_alert_errors_total", "alert_errors", row[4].I},
		{"engine_cache_evictions_total", "cache_evictions", row[5].I},
		{"engine_cache_resident", "cache_resident", row[6].I},
		{"engine_cache_pin_waits_total", "pin_waits", row[7].I},
		{"engine_wal_bytes_total", "wal_bytes", row[8].I},
		{"engine_wal_fsyncs_total", "wal_fsyncs", row[9].I},
		{"engine_redo_records", "redo_records", row[10].I},
		{"engine_redo_nanos", "redo_nanos", row[11].I},
	}
	for _, c := range checks {
		if got := metricValue(t, body, c.metric); got != float64(c.want) {
			t.Errorf("%s = %v, but ws_statistics.%s = %d", c.metric, got, c.col, c.want)
		}
	}
	if got := metricValue(t, body, "daemon_polls_total"); got != 1 {
		t.Errorf("daemon_polls_total = %v, want 1", got)
	}
	if metricValue(t, body, "daemon_last_poll_timestamp_seconds") <= 0 {
		t.Error("daemon_last_poll_timestamp_seconds missing or zero")
	}
}
