package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the /metrics handler for the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux returns an http.ServeMux exposing /metrics and the standard
// pprof endpoints under /debug/pprof/. A dedicated mux (rather than
// http.DefaultServeMux, which importing net/http/pprof pollutes) keeps
// the surface explicit.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving /metrics and /debug/pprof on addr (e.g.
// "127.0.0.1:9090") in a background goroutine. The endpoint has no
// authentication and pprof can dump heap contents — bind it to
// loopback or a management network, never a public interface.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg)}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
