package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/sqltypes"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 256, Monitor: monitor.New(monitor.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

// peopleRows is the size of the test table: large enough that index
// access paths beat sequential scans.
const peopleRows = 2000

func setupPeople(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE people (id INTEGER PRIMARY KEY, name VARCHAR(64), age INTEGER, city VARCHAR(32))`)
	cities := []string{"berlin", "ilmenau", "munich"}
	for base := 0; base < peopleRows; base += 100 {
		var vals []string
		for i := base; i < base+100 && i < peopleRows; i++ {
			vals = append(vals, fmt.Sprintf("(%d, 'person%04d', %d, '%s')",
				i, i, 20+i%50, cities[i%3]))
		}
		mustExec(t, s, "INSERT INTO people (id, name, age, city) VALUES "+strings.Join(vals, ", "))
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	res := mustExec(t, s, "SELECT id, name FROM people WHERE id = 42")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 42 || res.Rows[0][1].S != "person0042" {
		t.Errorf("row = %v", res.Rows[0])
	}
	if len(res.Columns) != 2 || res.Columns[0] != "id" {
		t.Errorf("columns = %v", res.Columns)
	}

	// The primary key lookup should use the auto-created pk index.
	if res.Plan == nil || len(res.Plan.UsedIndexes) == 0 {
		t.Errorf("expected an index access path, plan:\n%v", res.Plan)
	}
}

func TestSelectFilterAndOrder(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	res := mustExec(t, s, "SELECT id FROM people WHERE city = 'berlin' AND age < 30 ORDER BY id DESC LIMIT 5")
	if len(res.Rows) == 0 || len(res.Rows) > 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := int64(1 << 60)
	for _, r := range res.Rows {
		if r[0].I >= prev {
			t.Errorf("not descending: %v", res.Rows)
		}
		prev = r[0].I
	}
}

func TestAggregation(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	res := mustExec(t, s, `SELECT city, COUNT(*) cnt, AVG(age), MIN(id), MAX(id)
	                       FROM people GROUP BY city ORDER BY city`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d: %v", len(res.Rows), res.Rows)
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].I
	}
	if total != peopleRows {
		t.Errorf("counts sum to %d", total)
	}
	if res.Rows[0][0].S != "berlin" {
		t.Errorf("order: %v", res.Rows)
	}

	// Global aggregate without GROUP BY.
	res = mustExec(t, s, "SELECT COUNT(*), SUM(age) FROM people")
	if len(res.Rows) != 1 || res.Rows[0][0].I != peopleRows {
		t.Fatalf("global agg: %v", res.Rows)
	}

	// HAVING.
	res = mustExec(t, s, "SELECT city, COUNT(*) FROM people GROUP BY city HAVING COUNT(*) > 666")
	if len(res.Rows) != 2 { // 667/667/666 split
		t.Errorf("having rows: %v", res.Rows)
	}

	// Aggregate over an empty input still yields one row.
	res = mustExec(t, s, "SELECT COUNT(*) FROM people WHERE id = -1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Errorf("empty agg: %v", res.Rows)
	}
}

func TestJoins(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)
	mustExec(t, s, "CREATE TABLE cities (name VARCHAR(32) PRIMARY KEY, country VARCHAR(32))")
	mustExec(t, s, "INSERT INTO cities VALUES ('berlin', 'de'), ('ilmenau', 'de'), ('munich', 'de'), ('paris', 'fr')")

	res := mustExec(t, s, `SELECT p.name, c.country FROM people p JOIN cities c ON p.city = c.name WHERE p.id < 10`)
	if len(res.Rows) != 10 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].S != "de" {
			t.Errorf("row: %v", r)
		}
	}

	// Comma join with WHERE condition gives the same result.
	res2 := mustExec(t, s, `SELECT p.name, c.country FROM people p, cities c WHERE p.city = c.name AND p.id < 10`)
	if len(res2.Rows) != 10 {
		t.Fatalf("comma join rows = %d", len(res2.Rows))
	}

	// Cross join.
	res3 := mustExec(t, s, `SELECT COUNT(*) FROM people p, cities c`)
	if res3.Rows[0][0].I != int64(peopleRows)*4 {
		t.Errorf("cross join count = %v", res3.Rows[0][0])
	}

	// Three-way join.
	mustExec(t, s, "CREATE TABLE countries (code VARCHAR(8) PRIMARY KEY, continent VARCHAR(16))")
	mustExec(t, s, "INSERT INTO countries VALUES ('de', 'europe'), ('fr', 'europe')")
	res4 := mustExec(t, s, `SELECT COUNT(*) FROM people p
	    JOIN cities c ON p.city = c.name
	    JOIN countries k ON c.country = k.code
	    WHERE k.continent = 'europe'`)
	if res4.Rows[0][0].I != int64(peopleRows) {
		t.Errorf("three-way join count = %v", res4.Rows[0][0])
	}
}

func TestSecondaryIndexUsedAfterCreation(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	before := mustExec(t, s, "SELECT id FROM people WHERE city = 'ilmenau'")
	planBefore := before.Plan.String()
	if strings.Contains(planBefore, "IndexScan") {
		t.Fatalf("unexpected index scan before index exists:\n%s", planBefore)
	}

	mustExec(t, s, "CREATE INDEX ix_city ON people (city)")
	after := mustExec(t, s, "SELECT id FROM people WHERE city = 'ilmenau'")
	if len(after.Rows) != len(before.Rows) {
		t.Fatalf("index changed result: %d vs %d", len(after.Rows), len(before.Rows))
	}
	if !strings.Contains(after.Plan.String(), "IndexScan") {
		t.Errorf("index not used:\n%s", after.Plan.String())
	}
}

func TestVirtualIndexWhatIf(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)
	mustExec(t, s, "CREATE VIRTUAL INDEX vx_age ON people (age)")

	// Normal execution must not touch the virtual index.
	res := mustExec(t, s, "SELECT id FROM people WHERE age = 25")
	if strings.Contains(res.Plan.String(), "vx_age") {
		t.Fatalf("virtual index used in execution:\n%s", res.Plan.String())
	}

	// What-if planning may use it.
	plan, err := s.Explain("SELECT id FROM people WHERE age = 25", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "vx_age") {
		t.Errorf("what-if plan ignores virtual index:\n%s", plan.String())
	}
	// And its estimate should beat the scan.
	noIdx, _ := s.Explain("SELECT id FROM people WHERE age = 25", false)
	if plan.Est.Total() >= noIdx.Est.Total() {
		t.Errorf("virtual index estimate %v not better than scan %v", plan.Est, noIdx.Est)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	res := mustExec(t, s, "UPDATE people SET age = age + 100 WHERE city = 'munich'")
	if res.RowsAffected == 0 {
		t.Fatal("no rows updated")
	}
	check := mustExec(t, s, "SELECT COUNT(*) FROM people WHERE age >= 100")
	if check.Rows[0][0].I != res.RowsAffected {
		t.Errorf("updated %d, found %v", res.RowsAffected, check.Rows[0][0])
	}

	del := mustExec(t, s, "DELETE FROM people WHERE age >= 100")
	if del.RowsAffected != res.RowsAffected {
		t.Errorf("deleted %d, want %d", del.RowsAffected, res.RowsAffected)
	}
	left := mustExec(t, s, "SELECT COUNT(*) FROM people")
	if left.Rows[0][0].I != int64(peopleRows)-del.RowsAffected {
		t.Errorf("remaining = %v", left.Rows[0][0])
	}

	// Index integrity after delete: pk lookups still work.
	one := mustExec(t, s, "SELECT name FROM people WHERE id = 0")
	if len(one.Rows) != 1 {
		t.Errorf("pk lookup after delete: %v", one.Rows)
	}
}

func TestUniqueConstraints(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE u (id INTEGER PRIMARY KEY, v VARCHAR(8))")
	mustExec(t, s, "INSERT INTO u VALUES (1, 'a')")
	if _, err := s.Exec("INSERT INTO u VALUES (1, 'b')"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	mustExec(t, s, "CREATE UNIQUE INDEX ux_v ON u (v)")
	if _, err := s.Exec("INSERT INTO u VALUES (2, 'a')"); err == nil {
		t.Fatal("duplicate unique key accepted")
	}
	mustExec(t, s, "INSERT INTO u VALUES (2, 'b')")
}

func TestModifyToBTree(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	tbl := db.Catalog().Table("people")
	h := db.handle("people")
	if h.heap.OverflowPages() == 0 {
		t.Fatal("expected overflow pages on a grown heap table")
	}
	mustExec(t, s, "MODIFY people TO BTREE")
	if tbl.Structure != "BTREE" {
		t.Errorf("structure = %s", tbl.Structure)
	}
	if h.heap.OverflowPages() != 0 {
		t.Errorf("overflow pages after MODIFY = %d", h.heap.OverflowPages())
	}
	// Data intact, primary range works.
	res := mustExec(t, s, "SELECT COUNT(*) FROM people")
	if res.Rows[0][0].I != peopleRows {
		t.Errorf("rows after MODIFY = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT name FROM people WHERE id = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "person0007" {
		t.Errorf("pk lookup after MODIFY: %v", res.Rows)
	}
	// Back to heap.
	mustExec(t, s, "MODIFY people TO HEAP")
	res = mustExec(t, s, "SELECT COUNT(*) FROM people")
	if res.Rows[0][0].I != peopleRows {
		t.Errorf("rows after MODIFY TO HEAP = %v", res.Rows[0][0])
	}
}

func TestCreateStatisticsImprovesEstimates(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE skewed (id INTEGER PRIMARY KEY, v INTEGER)")
	// 90% of rows have v = 1.
	for i := 0; i < 200; i++ {
		v := 1
		if i%10 == 0 {
			v = i
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO skewed VALUES (%d, %d)", i, v))
	}
	p1, _ := s.Explain("SELECT id FROM skewed WHERE v = 1", false)
	mustExec(t, s, "CREATE STATISTICS FOR skewed (v)")
	p2, _ := s.Explain("SELECT id FROM skewed WHERE v = 1", false)
	if p2.Est.Rows <= p1.Est.Rows {
		t.Errorf("statistics did not improve skew estimate: before %v after %v", p1.Est.Rows, p2.Est.Rows)
	}
	if p2.Est.Rows < 60 || p2.Est.Rows > 220 {
		t.Errorf("estimate with stats = %v, want the heavy hitter share (≈90-180)", p2.Est.Rows)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(16))")
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, 'val%d')", i, i))
	}
	mustExec(t, s, "CREATE INDEX ix_v ON t (v)")
	mustExec(t, s, "MODIFY t TO BTREE")
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Dir: dir, PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.NewSession()
	defer s2.Close()
	res := mustExec(t, s2, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 50 {
		t.Fatalf("rows after reopen = %v", res.Rows[0][0])
	}
	res = mustExec(t, s2, "SELECT id FROM t WHERE v = 'val33'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 33 {
		t.Errorf("index lookup after reopen: %v", res.Rows)
	}
	if db2.Catalog().Table("t").Structure != "BTREE" {
		t.Error("structure lost on reopen")
	}
}

func TestVirtualTables(t *testing.T) {
	db := testDB(t)
	schema := sqltypes.NewSchema(
		sqltypes.Column{Name: "k", Type: sqltypes.Text},
		sqltypes.Column{Name: "v", Type: sqltypes.Int},
	)
	calls := 0
	err := db.RegisterVirtual("vt", schema, func() []sqltypes.Row {
		calls++
		return []sqltypes.Row{
			{sqltypes.NewText("a"), sqltypes.NewInt(1)},
			{sqltypes.NewText("b"), sqltypes.NewInt(2)},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterVirtual("vt", schema, nil); err == nil {
		t.Error("duplicate virtual registration accepted")
	}
	s := db.NewSession()
	defer s.Close()
	res := mustExec(t, s, "SELECT k FROM vt WHERE v = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "b" {
		t.Fatalf("virtual query: %v", res.Rows)
	}
	if calls == 0 {
		t.Error("provider never called")
	}
	// Joining a virtual table with a base table works.
	mustExec(t, s, "CREATE TABLE base (k VARCHAR(8) PRIMARY KEY, n INTEGER)")
	mustExec(t, s, "INSERT INTO base VALUES ('a', 10), ('b', 20)")
	res = mustExec(t, s, "SELECT base.n FROM vt JOIN base ON vt.k = base.k WHERE vt.v = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 10 {
		t.Errorf("virtual join: %v", res.Rows)
	}
}

func TestMonitorRecordsStatementPath(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	mon := db.Monitor()
	base := mon.TotalStatements()
	mustExec(t, s, "SELECT id FROM people WHERE id = 5")
	mustExec(t, s, "SELECT id FROM people WHERE id = 6")
	if mon.TotalStatements() != base+2 {
		t.Fatalf("monitored statements: %d", mon.TotalStatements()-base)
	}
	snap := mon.Snapshot()
	var found *monitor.WorkloadEntry
	for i := range snap.Workload {
		if snap.Workload[i].Hash == monitor.HashStatement("SELECT id FROM people WHERE id = 5") {
			found = &snap.Workload[i]
		}
	}
	if found == nil {
		t.Fatal("workload entry missing")
	}
	if found.EstCPU <= 0 && found.EstIO <= 0 {
		t.Errorf("no cost estimates recorded: %+v", found)
	}
	if found.ExecCPU <= 0 {
		t.Errorf("no actual CPU recorded: %+v", found)
	}
	if found.Wall <= 0 || found.MonNanos <= 0 {
		t.Errorf("no timings recorded: %+v", found)
	}
	if snap.TableFreq["people"] == 0 {
		t.Errorf("table frequency missing: %v", snap.TableFreq)
	}
	foundAttr := false
	for a := range snap.AttrFreq {
		if a == "people.id" {
			foundAttr = true
		}
	}
	if !foundAttr {
		t.Errorf("attribute frequency missing: %v", snap.AttrFreq)
	}
}

func TestPlanCacheHitSkipsOptimizer(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	mustExec(t, s, "SELECT name FROM people WHERE id = 1")
	mustExec(t, s, "SELECT name FROM people WHERE id = 2")
	snap := db.Monitor().Snapshot()
	n := len(snap.Workload)
	if n < 2 {
		t.Fatal("missing workload entries")
	}
	first := snap.Workload[n-2]
	second := snap.Workload[n-1]
	if first.OptTime == 0 {
		t.Error("first execution should include optimizer time")
	}
	if second.OptTime != 0 {
		t.Error("second execution should hit the plan cache (OptTime 0)")
	}
	// Both return correct, different results.
	r1 := mustExec(t, s, "SELECT name FROM people WHERE id = 3")
	if r1.Rows[0][0].S != "person0003" {
		t.Errorf("cached plan returned wrong row: %v", r1.Rows)
	}
}

func TestDisabledMonitorPathWorks(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 128}) // no monitor
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE t (a INTEGER PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2)")
	res := mustExec(t, s, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 2 {
		t.Errorf("result with nil monitor: %v", res.Rows)
	}
	if db.Monitor() != nil {
		t.Error("monitor should be nil")
	}
}

func TestErrorCases(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)
	for _, sql := range []string{
		"SELECT * FROM missing",
		"SELECT bogus FROM people",
		"INSERT INTO people (id) VALUES ('text')", // type mismatch
		"INSERT INTO missing VALUES (1)",
		"CREATE TABLE people (x INTEGER)", // duplicate
		"CREATE INDEX ix ON missing (x)",
		"CREATE INDEX ix ON people (bogus)",
		"DROP TABLE missing",
		"DROP INDEX missing",
		"MODIFY missing TO BTREE",
		"CREATE STATISTICS FOR missing",
		"SELECT COUNT(*) FROM people GROUP BY city HAVING bogus > 1",
		"SELECT name, COUNT(*) FROM people", // non-grouped column
		"not sql at all",
	} {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("Exec(%q) unexpectedly succeeded", sql)
		}
	}
	// After all those failures the engine still works.
	res := mustExec(t, s, "SELECT COUNT(*) FROM people")
	if res.Rows[0][0].I != peopleRows {
		t.Errorf("engine wedged after errors: %v", res.Rows)
	}
	if st := db.LockStats(); st.Held != 0 {
		t.Errorf("locks leaked: %+v", st)
	}
}

func TestStatsSnapshot(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)
	st := db.Stats()
	if st.Statements == 0 || st.DBBytes == 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.CurrentSessions != 1 {
		t.Errorf("sessions: %+v", st)
	}
	if st.PeakSessions < 1 {
		t.Errorf("peak: %+v", st)
	}
}

func TestExplainFormatting(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)
	plan, err := s.Explain("SELECT city, COUNT(*) FROM people WHERE id > 10 GROUP BY city ORDER BY city LIMIT 2", false)
	if err != nil {
		t.Fatal(err)
	}
	str := plan.String()
	for _, want := range []string{"Limit", "Sort", "Project", "Agg"} {
		if !strings.Contains(str, want) {
			t.Errorf("plan missing %s:\n%s", want, str)
		}
	}
	if _, err := s.Explain("INSERT INTO people (id) VALUES (1)", false); err == nil {
		t.Error("Explain accepted a non-SELECT")
	}
}
