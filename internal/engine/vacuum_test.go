package engine

import (
	"fmt"
	"testing"
)

// Vacuum unit tests: reclaim of superseded and aborted versions,
// clearing of aborted deleters, retirement of aborted ids, and the
// snapshot horizon holding reclamation back.

func TestVacuumReclaimsSupersededVersions(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE v (id INTEGER PRIMARY KEY, n INTEGER)")
	mustExec(t, s, "INSERT INTO v VALUES (1, 0)")
	const updates = 10
	for i := 1; i <= updates; i++ {
		mustExec(t, s, fmt.Sprintf("UPDATE v SET n = %d WHERE id = 1", i))
	}

	st, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	// Every superseded version (the insert + all but the last update)
	// has a committed deleter below the horizon: all reclaimable.
	if st.Reclaimed < updates {
		t.Fatalf("Reclaimed = %d, want >= %d superseded versions", st.Reclaimed, updates)
	}
	res := mustExec(t, s, "SELECT n FROM v WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != updates {
		t.Fatalf("after vacuum: %v, want n=%d", res.Rows, updates)
	}
	// A second pass over the clean heap finds nothing.
	st2, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Reclaimed != 0 || st2.Cleared != 0 {
		t.Fatalf("second vacuum reclaimed %d / cleared %d on a clean heap", st2.Reclaimed, st2.Cleared)
	}
	if db.MvccStats().VacuumRuns < 2 {
		t.Errorf("VacuumRuns = %d", db.MvccStats().VacuumRuns)
	}
}

func TestVacuumReclaimsAbortedAndRetiresIDs(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE v (id INTEGER PRIMARY KEY, n INTEGER)")
	mustExec(t, s, "INSERT INTO v VALUES (1, 0)")

	// An aborted transaction leaves an aborted insert (reclaimable), an
	// aborted update (reclaimable new version + the old version's
	// aborted Xmax to clear), all invisible already.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "INSERT INTO v VALUES (2, 2)")
	mustExec(t, s, "UPDATE v SET n = 99 WHERE id = 1")
	s.Rollback()

	before := db.MvccStats()
	if before.AbortedIDs == 0 {
		t.Fatal("no aborted id tracked after rollback")
	}
	st, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reclaimed < 2 {
		t.Errorf("Reclaimed = %d, want >= 2 aborted versions", st.Reclaimed)
	}
	if st.Cleared < 1 {
		t.Errorf("Cleared = %d, want >= 1 aborted Xmax wiped", st.Cleared)
	}
	if st.Retired < before.AbortedIDs {
		t.Errorf("Retired = %d, want >= %d", st.Retired, before.AbortedIDs)
	}
	after := db.MvccStats()
	if after.AbortedIDs != 0 {
		t.Errorf("AbortedIDs = %d after retirement, want 0", after.AbortedIDs)
	}
	// The surviving row is intact and the aborted insert stays gone.
	res := mustExec(t, s, "SELECT id, n FROM v ORDER BY id")
	if len(res.Rows) != 1 || res.Rows[0][1].I != 0 {
		t.Fatalf("after vacuum: %v, want only (1,0)", res.Rows)
	}
}

func TestVacuumRespectsOpenSnapshots(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE v (id INTEGER PRIMARY KEY, n INTEGER)")
	mustExec(t, s, "INSERT INTO v VALUES (1, 0)")

	// A reader opens a snapshot that can still see version n=0...
	r := db.NewSession()
	defer r.Close()
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, r, "SELECT n FROM v WHERE id = 1")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("reader setup: %v", res.Rows)
	}

	// ...a writer supersedes it...
	mustExec(t, s, "UPDATE v SET n = 1 WHERE id = 1")

	// ...and vacuum must leave it alone: its deleter is not below the
	// reader's horizon.
	st, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reclaimed != 0 {
		t.Fatalf("vacuum reclaimed %d versions a live snapshot can see", st.Reclaimed)
	}
	res = mustExec(t, r, "SELECT n FROM v WHERE id = 1")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("reader's snapshot broken after vacuum: %v", res.Rows)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}

	// Snapshot closed: the horizon advances past the deleter.
	st, err = db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reclaimed == 0 {
		t.Fatal("vacuum reclaimed nothing after the snapshot closed")
	}
	res = mustExec(t, s, "SELECT n FROM v WHERE id = 1")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("after vacuum: %v, want n=1", res.Rows)
	}
}
