package engine

import (
	"fmt"
	"strings"
	"testing"
)

func planText(res *Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].S)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestExplainAnalyzeAnnotatesActuals(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	res := mustExec(t, s, "EXPLAIN ANALYZE SELECT name FROM people WHERE city = 'berlin'")
	text := planText(res)
	if !strings.Contains(text, "est rows=") || !strings.Contains(text, "actual rows=") {
		t.Fatalf("EXPLAIN ANALYZE output missing estimate/actual annotations:\n%s", text)
	}
	// berlin holds every third id: ceil(2000/3) rows must be reported
	// as the actual count somewhere in the operator tree.
	want := fmt.Sprintf("actual rows=%d", (peopleRows+2)/3)
	if !strings.Contains(text, want) {
		t.Errorf("output does not report %q:\n%s", want, text)
	}
	if !strings.Contains(text, "estimated: cpu=") {
		t.Errorf("missing estimated summary line:\n%s", text)
	}
	if !strings.Contains(text, "actual: wall=") {
		t.Errorf("missing actual summary line:\n%s", text)
	}

	// The trace landed in the monitor ring with per-operator spans.
	traces := db.Monitor().SnapshotTraces()
	if len(traces) != 1 {
		t.Fatalf("monitor holds %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Rows != int64((peopleRows+2)/3) {
		t.Errorf("trace rows = %d, want %d", tr.Rows, (peopleRows+2)/3)
	}
	if len(tr.Spans) == 0 {
		t.Fatalf("trace has no spans")
	}
	if tr.Spans[0].Depth != 0 {
		t.Errorf("first span depth = %d, want 0 (pre-order root)", tr.Spans[0].Depth)
	}
	var sawRows bool
	for _, sp := range tr.Spans {
		if sp.Rows == int64((peopleRows+2)/3) {
			sawRows = true
		}
	}
	if !sawRows {
		t.Errorf("no span produced the result row count; spans: %+v", tr.Spans)
	}
}

func TestExplainAnalyzeJoinCountsPerOperator(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER)")
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO a VALUES (%d, %d)", i, i*2))
		mustExec(t, s, fmt.Sprintf("INSERT INTO b VALUES (%d, %d)", i, i%10))
	}
	res := mustExec(t, s, "EXPLAIN ANALYZE SELECT a.v, b.id FROM a, b WHERE a.id = b.aid")
	text := planText(res)
	if !strings.Contains(text, "Join") {
		t.Fatalf("expected a join operator:\n%s", text)
	}
	traces := db.Monitor().SnapshotTraces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	// The root operator must have produced all 50 join matches, and
	// every span must have consistent call/row counts.
	spans := traces[0].Spans
	if spans[0].Rows != 50 {
		t.Errorf("root span rows = %d, want 50", spans[0].Rows)
	}
	for i, sp := range spans {
		if sp.Rows > sp.Calls {
			t.Errorf("span %d (%s): rows %d > calls %d", i, sp.Op, sp.Rows, sp.Calls)
		}
		if sp.Nanos < 0 {
			t.Errorf("span %d (%s): negative time %d", i, sp.Op, sp.Nanos)
		}
	}
}

// TestExplainAnalyzeSelfTime: every operator line reports self time
// next to cumulative time, leaves keep self == cumulative, and inner
// operators never charge their children's time to themselves.
func TestExplainAnalyzeSelfTime(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER)")
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO a VALUES (%d, %d)", i, i*2))
		mustExec(t, s, fmt.Sprintf("INSERT INTO b VALUES (%d, %d)", i, i%10))
	}
	res := mustExec(t, s, "EXPLAIN ANALYZE SELECT a.v, b.id FROM a, b WHERE a.id = b.aid")
	text := planText(res)
	if !strings.Contains(text, "self=") {
		t.Fatalf("operator lines missing self time:\n%s", text)
	}

	traces := db.Monitor().SnapshotTraces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	spans := traces[0].Spans
	var selfSum int64
	for i, sp := range spans {
		if sp.SelfNanos < 0 || sp.SelfNanos > sp.Nanos {
			t.Errorf("span %d (%s): self %d outside [0, %d]", i, sp.Op, sp.SelfNanos, sp.Nanos)
		}
		// A leaf (no following span deeper than it) owns all its time.
		isLeaf := i+1 >= len(spans) || spans[i+1].Depth <= sp.Depth
		if isLeaf && sp.SelfNanos != sp.Nanos {
			t.Errorf("leaf span %d (%s): self %d != cumulative %d", i, sp.Op, sp.SelfNanos, sp.Nanos)
		}
		selfSum += sp.SelfNanos
	}
	// The self times partition the root's inclusive time (clamping can
	// only lose time, never invent it).
	if selfSum > spans[0].Nanos {
		t.Errorf("self times sum to %d > root inclusive %d", selfSum, spans[0].Nanos)
	}
}

func TestExplainAnalyzeExecutesAndMonitors(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	before := db.Monitor().TotalStatements()
	mustExec(t, s, "EXPLAIN ANALYZE SELECT id FROM t")
	if got := db.Monitor().TotalStatements(); got != before+1 {
		t.Errorf("TotalStatements = %d, want %d (ANALYZE executions are monitored)", got, before+1)
	}
	// Plain EXPLAIN still renders estimates only.
	res := mustExec(t, s, "EXPLAIN SELECT id FROM t")
	if text := planText(res); strings.Contains(text, "actual") {
		t.Errorf("plain EXPLAIN must not report actuals:\n%s", text)
	}
}

func TestExplainWhatIfAnalyzeRejected(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
	if _, err := s.Exec("EXPLAIN WHATIF ANALYZE SELECT id FROM t"); err == nil {
		t.Fatal("EXPLAIN WHATIF ANALYZE should be rejected")
	}
	// Both modifier orders parse to the same rejection.
	if _, err := s.Exec("EXPLAIN ANALYZE WHATIF SELECT id FROM t"); err == nil {
		t.Fatal("EXPLAIN ANALYZE WHATIF should be rejected")
	}
}
