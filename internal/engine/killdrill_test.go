package engine

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// The kill drill: the crash-injection proof behind the WAL. The parent
// re-execs the test binary as a child running a multi-session commit
// storm against a shared database directory, SIGKILLs it at a random
// point, reopens the directory (running recovery) and checks the two
// invariants every acked commit buys:
//
//  1. durability — every transaction whose Commit returned before the
//     kill (the child acks it to a file AFTER Commit returns) has all
//     of its rows;
//  2. atomicity — no transaction is ever half-present: rows come in
//     full triples or not at all, so a transaction cut down mid-flight
//     leaves nothing behind.
//
// The ack file is the drill's ground truth: an O_APPEND line written
// only after Commit acked durability, exactly like a client that got
// its commit acknowledgment.
//
// Since the heaps became versioned, every transaction also churns the
// kv table — updating its own counter row (a version chain crossing
// the crash) and inserting then deleting a scratch row (a self-deleted
// version) — and the parent additionally checks:
//
//  3. version visibility — recovery leaves exactly the committed
//     version of each counter row visible, counters never regress
//     below the acked count, and no scratch row ever surfaces;
//  4. row accounting — the heap's persisted Rows() count matches a
//     full visible rescan after every recovery (the count is redone
//     MVCC-aware by recountAfterRecovery).

const (
	killDrillDirEnv  = "RECOVERY_KILL_DRILL_DIR"
	killDrillBaseEnv = "RECOVERY_KILL_DRILL_BASE"
	killDrillRowsPer = 3 // rows per transaction; ids are seq*4+0..2
	killDrillWriters = 4
)

// TestRecoveryChildMain is the child half of TestRecoveryKillDrill: a
// commit storm that runs until it is killed. It skips unless the drill
// environment is set, so a plain `go test` sweep never runs it.
func TestRecoveryChildMain(t *testing.T) {
	dir := os.Getenv(killDrillDirEnv)
	if dir == "" {
		t.Skip("re-exec child of TestRecoveryKillDrill")
	}
	base, err := strconv.ParseInt(os.Getenv(killDrillBaseEnv), 10, 64)
	if err != nil {
		fmt.Printf("CHILD_ERR bad base: %v\n", err)
		os.Exit(3)
	}
	db, err := Open(Config{Dir: dir, PoolPages: 64})
	if err != nil {
		fmt.Printf("CHILD_ERR open: %v\n", err)
		os.Exit(3)
	}
	ack, err := os.OpenFile(filepath.Join(dir, "acks.txt"),
		os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		fmt.Printf("CHILD_ERR ack file: %v\n", err)
		os.Exit(3)
	}
	var ackMu sync.Mutex
	fmt.Println("READY")
	for g := 0; g < killDrillWriters; g++ {
		go func(g int) {
			s := db.NewSession()
			for n := int64(0); ; n++ {
				seq := base + int64(g)*1_000_000 + n
				s.Begin()
				for i := int64(0); i < killDrillRowsPer; i++ {
					if _, err := s.Exec(fmt.Sprintf("INSERT INTO kd VALUES (%d)", seq*4+i)); err != nil {
						fmt.Printf("CHILD_ERR insert: %v\n", err)
						os.Exit(4)
					}
				}
				// Version churn: bump this writer's own counter row
				// (writers touch disjoint rows, so no write conflicts)
				// and cycle a scratch row inside the transaction.
				for _, q := range []string{
					fmt.Sprintf("UPDATE kv SET n = n + 1 WHERE id = %d", g),
					fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", g+100, seq),
					fmt.Sprintf("DELETE FROM kv WHERE id = %d", g+100),
				} {
					if _, err := s.Exec(q); err != nil {
						fmt.Printf("CHILD_ERR churn: %v\n", err)
						os.Exit(4)
					}
				}
				if err := s.Commit(); err != nil {
					fmt.Printf("CHILD_ERR commit: %v\n", err)
					os.Exit(4)
				}
				// The commit is durable: ack it the way a client that
				// received the acknowledgment would.
				ackMu.Lock()
				fmt.Fprintf(ack, "%d\n", seq)
				ackMu.Unlock()
			}
		}(g)
	}
	select {} // storm until SIGKILL
}

// TestRecoveryKillDrill is the parent half: spawn, kill, recover,
// verify — 20 times, at pseudo-random kill points (seeded, so a
// failure reproduces).
func TestRecoveryKillDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db := openDir(t, dir, 64)
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kd (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE kv (id INTEGER PRIMARY KEY, n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < killDrillWriters; g++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 0)", g)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(0xC0FFEE))
	acked := map[int64]bool{}
	const kills = 20
	for k := 0; k < kills; k++ {
		cmd := exec.Command(exe, "-test.run=^TestRecoveryChildMain$", "-test.v")
		cmd.Env = append(os.Environ(),
			killDrillDirEnv+"="+dir,
			fmt.Sprintf("%s=%d", killDrillBaseEnv, int64(k+1)*100_000_000))
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for the child to finish its own recovery+open and start
		// the storm before arming the kill.
		readyCh := make(chan error, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if strings.Contains(line, "CHILD_ERR") {
					readyCh <- fmt.Errorf("child: %s", line)
					break
				}
				if strings.Contains(line, "READY") {
					readyCh <- nil
					break
				}
			}
			io.Copy(io.Discard, stdout) // keep the pipe drained
		}()
		select {
		case err := <-readyCh:
			if err != nil {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("child never became ready")
		}
		time.Sleep(time.Duration(5+rng.Intn(115)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		err = cmd.Wait()
		if cmd.ProcessState != nil && cmd.ProcessState.Exited() {
			// The child exited on its own (CHILD_ERR path) instead of
			// dying by signal: a storm failure, not a crash.
			t.Fatalf("kill %d: child exited by itself: %v", k, err)
		}

		// Everything acked before the kill must have survived it.
		raw, err := os.ReadFile(filepath.Join(dir, "acks.txt"))
		if err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if line == "" {
				continue
			}
			seq, err := strconv.ParseInt(line, 10, 64)
			if err != nil {
				continue // torn final line: the kill landed mid-ack
			}
			acked[seq] = true
		}
		rdb := openDir(t, dir, 64)
		ids := tableIDs(t, rdb, "kd")

		// Version visibility: exactly the committed counter versions are
		// visible — one row per writer, never a scratch row — and no
		// counter regressed below its acked commit count.
		ackedPerWriter := map[int64]int64{}
		for seq := range acked {
			ackedPerWriter[(seq/1_000_000)%100]++
		}
		rs := rdb.NewSession()
		res, err := rs.Exec("SELECT id, n FROM kv ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != killDrillWriters {
			t.Fatalf("kill %d: kv has %d visible rows, want %d counters (scratch or torn versions leaked)",
				k, len(res.Rows), killDrillWriters)
		}
		for _, row := range res.Rows {
			g, n := row[0].I, row[1].I
			if g < 0 || g >= killDrillWriters {
				t.Fatalf("kill %d: unexpected kv row id=%d", k, g)
			}
			if n < ackedPerWriter[g] {
				t.Fatalf("kill %d: writer %d counter = %d, below its %d acked commits",
					k, g, n, ackedPerWriter[g])
			}
		}
		// Row accounting: the heap's persisted count must match a full
		// visible rescan after recovery (recountAfterRecovery is
		// MVCC-aware; dead versions on disk must not inflate it).
		for tbl, visible := range map[string]int64{
			"kd": int64(len(ids)),
			"kv": int64(len(res.Rows)),
		} {
			if got := rdb.TableState(tbl).Rows; got != visible {
				t.Fatalf("kill %d: %s heap Rows() = %d, visible rows = %d", k, tbl, got, visible)
			}
		}
		rs.Close()
		if err := rdb.Close(); err != nil {
			t.Fatal(err)
		}
		for seq := range acked {
			for i := int64(0); i < killDrillRowsPer; i++ {
				if !ids[seq*4+i] {
					t.Fatalf("kill %d: acked commit %d lost row %d", k, seq, seq*4+i)
				}
			}
		}
		// Atomicity: rows only ever appear in full triples.
		perTxn := map[int64]int{}
		for id := range ids {
			perTxn[id/4]++
		}
		for seq, n := range perTxn {
			if n != killDrillRowsPer {
				t.Fatalf("kill %d: transaction %d left %d of %d rows (torn commit)",
					k, seq, n, killDrillRowsPer)
			}
		}
	}
	if len(acked) == 0 {
		t.Fatal("no commit was ever acked: the drill exercised nothing")
	}
	t.Logf("kill drill: %d kills, %d acked commits verified", kills, len(acked))
}
