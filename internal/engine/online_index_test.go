package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// expectedIndexEntries rebuilds from scratch what the secondary index
// should contain: one tid-suffixed key per heap version (deleted
// versions keep their entries until vacuum reclaims both). Callers
// must have quiesced DML first.
func expectedIndexEntries(t *testing.T, db *DB, table string, cols []string) map[string]string {
	t.Helper()
	h := db.handle(table)
	want := map[string]string{}
	err := h.heap.Scan(func(tid storage.TID, rec []byte) (bool, error) {
		row, err := sqltypes.DecodeRow(storage.VersionPayload(rec))
		if err != nil {
			return false, err
		}
		key, err := keyFor(h.meta.Schema, row, cols)
		if err != nil {
			return false, err
		}
		want[string(tidSuffix(key, tid))] = string(tidBytes(tid))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// actualIndexEntries walks the published index.
func actualIndexEntries(t *testing.T, db *DB, table, index string) map[string]string {
	t.Helper()
	h := db.handle(table)
	db.mu.Lock()
	bt := h.indexes[strings.ToLower(index)]
	db.mu.Unlock()
	if bt == nil {
		t.Fatalf("index %s not published on %s", index, table)
	}
	got := map[string]string{}
	it := bt.Seek(nil)
	for it.Next() {
		got[string(it.Key())] = string(it.Value())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestOnlineCreateIndexConcurrentDMLEquivalence is the core online-build
// correctness test: CREATE INDEX ... ONLINE runs while writer goroutines
// insert and delete rows the whole time. Once the build returns and the
// writers stop, the index must contain exactly one entry per live heap
// row — the side-log replay may not lose, duplicate or resurrect
// anything. Run with -race.
func TestOnlineCreateIndexConcurrentDMLEquivalence(t *testing.T) {
	db := openDir(t, t.TempDir(), 128)
	defer db.Close()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE ob (id INTEGER PRIMARY KEY, a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO ob VALUES (%d, %d)", i, i%97)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws := db.NewSession()
			defer ws.Close()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			next := 10_000 + g*100_000
			for !stop.Load() {
				if rng.Intn(3) == 0 {
					victim := rng.Intn(2000)
					if _, err := ws.Exec(fmt.Sprintf("DELETE FROM ob WHERE id = %d", victim)); err != nil {
						errCh <- err
						return
					}
				} else {
					if _, err := ws.Exec(fmt.Sprintf("INSERT INTO ob VALUES (%d, %d)", next, next%89)); err != nil {
						errCh <- err
						return
					}
					next++
				}
			}
		}(g)
	}

	bs := db.NewSession()
	_, err := bs.Exec("CREATE INDEX ob_a ON ob (a) ONLINE")
	bs.Close()
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for werr := range errCh {
		t.Fatal(werr)
	}
	if err != nil {
		t.Fatal(err)
	}

	if ix := db.cat.Index("ob_a"); ix == nil || ix.Building {
		t.Fatalf("index not published cleanly: %+v", ix)
	}
	want := expectedIndexEntries(t, db, "ob", []string{"a"})
	got := actualIndexEntries(t, db, "ob", "ob_a")
	if len(want) != len(got) {
		t.Fatalf("index has %d entries, heap implies %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("index missing or mismatching entry for a live row")
		}
	}

	// The published index must also be maintained by ordinary DML now.
	s2 := db.NewSession()
	if _, err := s2.Exec("INSERT INTO ob VALUES (999999, 42)"); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	want = expectedIndexEntries(t, db, "ob", []string{"a"})
	got = actualIndexEntries(t, db, "ob", "ob_a")
	if len(want) != len(got) {
		t.Fatalf("post-publish DML not maintained: index %d entries, heap implies %d", len(got), len(want))
	}
}

// TestOnlineCreateIndexUniqueDuplicateRollsBack: a unique online build
// over data with duplicates must fail at the final verification and
// leave nothing behind — no catalog entry, no index file, no side-log.
func TestOnlineCreateIndexUniqueDuplicateRollsBack(t *testing.T) {
	db := openDir(t, t.TempDir(), 64)
	defer db.Close()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE du (id INTEGER PRIMARY KEY, a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO du VALUES (%d, %d)", i, i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec("CREATE UNIQUE INDEX du_a ON du (a) ONLINE"); err == nil {
		t.Fatal("unique online build over duplicates succeeded")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("unexpected error: %v", err)
	}
	s.Close()
	if db.cat.Index("du_a") != nil {
		t.Fatal("failed build left a catalog entry")
	}
	if _, err := os.Stat(db.indexPath("du_a")); !os.IsNotExist(err) {
		t.Fatalf("failed build left the index file (stat err %v)", err)
	}
	if db.handle("du").sideLog.Load() != nil {
		t.Fatal("failed build left the side-log installed")
	}
}

// TestCreateIndexErrorPathCleanup is the regression test for the
// headline bug: an error in the middle of the offline build loop (here
// an undecodable heap record) must remove the half-built index file AND
// the catalog entry — the seed leaked both on every error except
// duplicate-key.
func TestCreateIndexErrorPathCleanup(t *testing.T) {
	db := openDir(t, t.TempDir(), 64)
	defer db.Close()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE fz (id INTEGER PRIMARY KEY, a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO fz VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Inject the fault: a record the row codec cannot decode, planted
	// directly in the heap.
	h := db.handle("fz")
	badTID, err := h.heap.Insert([]byte{0xFF, 0xFE, 0xFD})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"CREATE INDEX fz_a ON fz (a)",
		"CREATE INDEX fz_a ON fz (a) ONLINE",
	} {
		if _, err := s.Exec(sql); err == nil {
			t.Fatalf("%s over a corrupt record succeeded", sql)
		}
		if db.cat.Index("fz_a") != nil {
			t.Fatalf("%s: dangling catalog entry after failure", sql)
		}
		if _, err := os.Stat(db.indexPath("fz_a")); !os.IsNotExist(err) {
			t.Fatalf("%s: leaked index file after failure (stat err %v)", sql, err)
		}
	}
	// With the fault removed the same name must be reusable — nothing
	// was reserved by the failed attempts.
	if err := h.heap.Delete(badTID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE INDEX fz_a ON fz (a)"); err != nil {
		t.Fatalf("rebuild after cleanup failed: %v", err)
	}
	s.Close()
}

// TestOpenDropsBuildingIndex: a Building catalog entry (crash mid
// online build) is dropped, with its file, at the next open.
func TestOpenDropsBuildingIndex(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir, 64)
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE bt1 (id INTEGER PRIMARY KEY, a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate the crash window: a Building entry plus a half-built file.
	if err := db.cat.AddIndex(&catalog.Index{
		Name: "bt1_a", Table: "bt1", Columns: []string{"a"}, Building: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(db.indexPath("bt1_a"), []byte("half-built"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDir(t, dir, 64)
	defer db2.Close()
	if db2.cat.Index("bt1_a") != nil {
		t.Fatal("Building index survived reopen")
	}
	if _, err := os.Stat(db2.indexPath("bt1_a")); !os.IsNotExist(err) {
		t.Fatalf("half-built index file survived reopen (stat err %v)", err)
	}
	// And the name is reusable.
	s2 := db2.NewSession()
	if _, err := s2.Exec("CREATE INDEX bt1_a ON bt1 (a)"); err != nil {
		t.Fatalf("rebuilding the dropped index failed: %v", err)
	}
	s2.Close()
}

// TestOpenSweepsOrphanFiles: data-shaped files no catalog entry
// references (the residue of a DROP TABLE cut down between catalog save
// and file removal) are deleted at open.
func TestOpenSweepsOrphanFiles(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir, 64)
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE keepme (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO keepme VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for _, orphan := range []string{"t_ghost.dat", "p_ghost.dat", "i_ghost.dat"} {
		if err := os.WriteFile(filepath.Join(dir, orphan), []byte("residue"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	db2 := openDir(t, dir, 64)
	defer db2.Close()
	for _, orphan := range []string{"t_ghost.dat", "p_ghost.dat", "i_ghost.dat"} {
		if _, err := os.Stat(filepath.Join(dir, orphan)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived reopen (stat err %v)", orphan, err)
		}
	}
	ids := tableIDs(t, db2, "keepme")
	if !ids[1] {
		t.Fatal("referenced table was damaged by the orphan sweep")
	}
}

// TestOpenReportsMissingTableFile: a catalog entry whose data file
// vanished (external deletion, or the old remove-files-first DROP TABLE
// order) must fail the open with a diagnosable error instead of
// silently serving an empty table.
func TestOpenReportsMissingTableFile(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir, 64)
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE gone (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO gone VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := db.tablePath("gone")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Config{Dir: dir, PoolPages: 64})
	if err == nil {
		t.Fatal("open succeeded with a missing table data file")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("undiagnosable error: %v", err)
	}
}

// TestDropTableRemovesEverything: the reordered (catalog-first) drop
// leaves neither catalog state nor files.
func TestDropTableRemovesEverything(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir, 64)
	defer db.Close()
	s := db.NewSession()
	for _, sql := range []string{
		"CREATE TABLE dr (id INTEGER PRIMARY KEY, a INTEGER)",
		"INSERT INTO dr VALUES (1, 1)",
		"CREATE INDEX dr_a ON dr (a)",
		"DROP TABLE dr",
	} {
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	s.Close()
	if db.cat.Table("dr") != nil || db.cat.Index("dr_a") != nil {
		t.Fatal("catalog still references the dropped table")
	}
	for _, p := range []string{db.tablePath("dr"), db.indexPath("dr_a")} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("dropped table left %s behind (stat err %v)", p, err)
		}
	}
}
