package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The blocking-vs-online CREATE INDEX experiment: build a secondary
// index over a populated table while one writer session keeps
// inserting, and report (a) the build's wallclock, (b) how many writes
// completed during the build, and (c) the longest single write stall.
// The blocking build holds the table X lock and the DDL gate for its
// whole duration, so its max stall approaches the build time; the
// online build bounds stalls to a backfill chunk plus the final
// catch-up under the gate.
func benchIndexBuild(b *testing.B, online bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := Open(Config{Dir: b.TempDir(), PoolPages: 256})
		if err != nil {
			b.Fatal(err)
		}
		s := d.NewSession()
		if _, err := s.Exec("CREATE TABLE bx (id INTEGER PRIMARY KEY, a INTEGER)"); err != nil {
			b.Fatal(err)
		}
		s.Begin()
		for r := 0; r < 20000; r++ {
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO bx VALUES (%d, %d)", r, r%997)); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Commit(); err != nil {
			b.Fatal(err)
		}

		var (
			stop     atomic.Bool
			writes   atomic.Int64
			maxStall atomic.Int64
			wg       sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := d.NewSession()
			defer ws.Close()
			for n := 100_000; !stop.Load(); n++ {
				t0 := time.Now()
				if _, err := ws.Exec(fmt.Sprintf("INSERT INTO bx VALUES (%d, %d)", n, n%997)); err != nil {
					b.Error(err)
					return
				}
				el := time.Since(t0).Nanoseconds()
				if el > maxStall.Load() {
					maxStall.Store(el)
				}
				writes.Add(1)
			}
		}()
		// Let the writer reach steady state before the build starts.
		time.Sleep(50 * time.Millisecond)

		sql := "CREATE INDEX bx_a ON bx (a)"
		if online {
			sql += " ONLINE"
		}
		b.StartTimer()
		t0 := time.Now()
		if _, err := s.Exec(sql); err != nil {
			b.Fatal(err)
		}
		build := time.Since(t0)
		b.StopTimer()
		stop.Store(true)
		wg.Wait()
		s.Close()
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(build.Milliseconds()), "build-ms")
		b.ReportMetric(float64(writes.Load()), "writes-during")
		b.ReportMetric(float64(maxStall.Load())/1e6, "max-stall-ms")
	}
}

func BenchmarkCreateIndexBlocking(b *testing.B) { benchIndexBuild(b, false) }
func BenchmarkCreateIndexOnline(b *testing.B)   { benchIndexBuild(b, true) }
