package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// MVCC transaction manager. Transaction ids are allocated monotonically
// starting at firstTxnID; id frozenTxnID marks bulk-loaded and rebuilt
// rows as committed-forever. A transaction is in exactly one of three
// states: inflight (open), committed (absent from both sets), or
// aborted. Aborted ids are kept in a copy-on-write set — the engine
// never undoes an aborted transaction's versions physically; they stay
// on disk, invisible to every snapshot, until vacuum reclaims them and
// retires the id.
const (
	frozenTxnID = 1
	firstTxnID  = 2
)

type txnManager struct {
	mu       sync.Mutex
	next     uint64
	inflight map[uint64]bool
	// snaps tracks active snapshots (keyed by a serial) so vacuum can
	// compute the oldest visibility horizon.
	snaps      map[uint64]*snapshot
	snapSerial uint64
	// aborted is copy-on-write: snapshots capture the pointer at
	// creation, making visibility checks lock-free. Ids are only added
	// while a transaction aborts and removed only by vacuum once no
	// on-disk record references them.
	aborted atomic.Pointer[map[uint64]bool]

	begins    atomic.Int64
	commits   atomic.Int64
	aborts    atomic.Int64
	conflicts atomic.Int64
	retired   atomic.Int64
}

func newTxnManager() *txnManager {
	m := &txnManager{
		next:     firstTxnID,
		inflight: map[uint64]bool{},
		snaps:    map[uint64]*snapshot{},
	}
	empty := map[uint64]bool{}
	m.aborted.Store(&empty)
	return m
}

// restore seeds the manager from the persisted catalog state plus what
// recovery derived from the WAL.
func (m *txnManager) restore(ts catalog.TxnStatus, extraAborted map[uint64]bool, maxSeen uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts.NextTxnID > m.next {
		m.next = ts.NextTxnID
	}
	if maxSeen >= m.next {
		m.next = maxSeen + 1
	}
	ab := map[uint64]bool{}
	for _, id := range ts.Aborted {
		ab[id] = true
	}
	for id := range extraAborted {
		ab[id] = true
	}
	delete(ab, 0)
	delete(ab, frozenTxnID)
	m.aborted.Store(&ab)
}

// begin allocates a transaction id and registers it as inflight.
func (m *txnManager) begin() uint64 {
	m.mu.Lock()
	id := m.next
	m.next++
	m.inflight[id] = true
	m.mu.Unlock()
	m.begins.Add(1)
	return id
}

// commit marks the transaction committed (simply: no longer inflight).
// The caller has already made the WAL commit record durable.
func (m *txnManager) commit(id uint64) {
	m.mu.Lock()
	delete(m.inflight, id)
	m.mu.Unlock()
	m.commits.Add(1)
}

// abort marks the transaction aborted: removed from inflight and added
// to the copy-on-write aborted set. Its versions stay on disk but no
// snapshot — current or future — will see them. Snapshots captured
// before the abort hold the id in their inflight set (or past their
// horizon), so their older aborted-map reference stays correct.
func (m *txnManager) abort(id uint64) {
	if id == 0 {
		return
	}
	m.mu.Lock()
	delete(m.inflight, id)
	old := *m.aborted.Load()
	ab := make(map[uint64]bool, len(old)+1)
	for k := range old {
		ab[k] = true
	}
	ab[id] = true
	m.aborted.Store(&ab)
	m.mu.Unlock()
	m.aborts.Add(1)
}

// retire drops aborted ids that vacuum proved unreferenced on disk.
func (m *txnManager) retire(ids []uint64) {
	if len(ids) == 0 {
		return
	}
	m.mu.Lock()
	old := *m.aborted.Load()
	ab := make(map[uint64]bool, len(old))
	for k := range old {
		ab[k] = true
	}
	for _, id := range ids {
		delete(ab, id)
	}
	m.aborted.Store(&ab)
	m.mu.Unlock()
	m.retired.Add(int64(len(ids)))
}

// snapshot is a point-in-time visibility cut: transaction ids below
// horizon and in neither the captured inflight set nor the aborted set
// are committed; everything else (besides self) is invisible.
type snapshot struct {
	serial   uint64
	self     uint64 // owning txn id; 0 for read-only statements
	horizon  uint64 // ids >= horizon started after the snapshot
	inflight map[uint64]bool
	aborted  *map[uint64]bool
	taken    time.Time
}

// capture takes a snapshot for the transaction self (0 for pure
// readers) and registers it with the manager until release.
func (m *txnManager) capture(self uint64) *snapshot {
	m.mu.Lock()
	sn := &snapshot{
		self:    self,
		horizon: m.next,
		aborted: m.aborted.Load(),
		taken:   time.Now(),
	}
	if len(m.inflight) > 0 {
		sn.inflight = make(map[uint64]bool, len(m.inflight))
		for id := range m.inflight {
			if id != self {
				sn.inflight[id] = true
			}
		}
	}
	m.snapSerial++
	sn.serial = m.snapSerial
	m.snaps[sn.serial] = sn
	m.mu.Unlock()
	return sn
}

// release unregisters the snapshot.
func (m *txnManager) release(sn *snapshot) {
	if sn == nil {
		return
	}
	m.mu.Lock()
	delete(m.snaps, sn.serial)
	m.mu.Unlock()
}

// setSelf attaches the lazily-allocated transaction id to a snapshot
// taken while the transaction was still read-only. Safe because the id
// was allocated after the snapshot's horizon — no other session's
// versions can carry it.
func (sn *snapshot) setSelf(id uint64) { sn.self = id }

// sees reports whether the snapshot treats transaction x as committed.
func (sn *snapshot) sees(x uint64) bool {
	if x == sn.self && x != 0 {
		return true
	}
	if x >= sn.horizon {
		return false
	}
	if sn.inflight[x] {
		return false
	}
	if (*sn.aborted)[x] {
		return false
	}
	return true
}

// visible reports whether the record version carrying header h exists
// for this snapshot: its creator is seen committed (or is self) and its
// deleter, if any, is not.
func (sn *snapshot) visible(h storage.VersionHeader) bool {
	if !sn.sees(h.Xmin) {
		return false
	}
	return h.Xmax == 0 || !sn.sees(h.Xmax)
}

// realitySnapshot is a snapshot of current committed reality (no
// registration, self = 0): what a brand-new transaction would see.
// Uniqueness checks and DDL rebuilds use it.
func (m *txnManager) realitySnapshot() *snapshot {
	m.mu.Lock()
	sn := &snapshot{horizon: m.next, aborted: m.aborted.Load()}
	if len(m.inflight) > 0 {
		sn.inflight = make(map[uint64]bool, len(m.inflight))
		for id := range m.inflight {
			sn.inflight[id] = true
		}
	}
	m.mu.Unlock()
	return sn
}

// vacuumHorizon returns the id floor below which a committed deleter is
// invisible to every active and future snapshot: the minimum over the
// next id, all inflight ids, and for each active snapshot its horizon
// and lowest captured-inflight id.
func (m *txnManager) vacuumHorizon() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.next
	for id := range m.inflight {
		if id < h {
			h = id
		}
	}
	for _, sn := range m.snaps {
		if sn.horizon < h {
			h = sn.horizon
		}
		for id := range sn.inflight {
			if id < h {
				h = id
			}
		}
	}
	return h
}

// oldestSnapshotAge returns the age of the oldest active snapshot, or 0
// when none is active.
func (m *txnManager) oldestSnapshotAge(now time.Time) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var oldest time.Time
	for _, sn := range m.snaps {
		if oldest.IsZero() || sn.taken.Before(oldest) {
			oldest = sn.taken
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}

// status snapshots the persistable transaction state for checkpoints.
func (m *txnManager) status() catalog.TxnStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := catalog.TxnStatus{NextTxnID: m.next}
	for id := range *m.aborted.Load() {
		ts.Aborted = append(ts.Aborted, id)
	}
	for id := range m.inflight {
		ts.Inflight = append(ts.Inflight, id)
	}
	sort.Slice(ts.Aborted, func(i, j int) bool { return ts.Aborted[i] < ts.Aborted[j] })
	sort.Slice(ts.Inflight, func(i, j int) bool { return ts.Inflight[i] < ts.Inflight[j] })
	return ts
}

// counts returns instantaneous set sizes.
func (m *txnManager) counts() (inflight, activeSnaps, abortedIDs int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight), len(m.snaps), len(*m.aborted.Load())
}

// abortedSet returns the current aborted-id set (shared, read-only).
func (m *txnManager) abortedSet() map[uint64]bool { return *m.aborted.Load() }

// txnState is the current (not snapshot-relative) state of a
// transaction id: write paths consult it under the table's statement
// write gate, where conflicting writers are serialized.
type txnState int

const (
	txnCommitted txnState = iota
	txnInflight
	txnAborted
)

// stateOf classifies a transaction id against current reality.
func (m *txnManager) stateOf(x uint64) txnState {
	if x == 0 || x == frozenTxnID {
		return txnCommitted
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inflight[x] {
		return txnInflight
	}
	if (*m.aborted.Load())[x] {
		return txnAborted
	}
	return txnCommitted
}
