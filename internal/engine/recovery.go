package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/storage"
)

// ARIES-style crash recovery over the physical-image WAL. Runs on
// engine.Open before the buffer pool exists, directly against the page
// files: scan the log from the last fuzzy checkpoint's scan-start LSN,
// redo after-images of finished transactions whose LSN exceeds the
// on-disk page LSN, then undo (restore before-images of) transactions
// that were still in flight at the crash and had managed to steal dirty
// pages onto disk. The log's CRC + LSN-sequence validation stops the
// scan cleanly at a torn tail, so a crash mid-append never blocks Open.

// recoveryStats summarizes one recovery pass for the telemetry plane
// and carries the MVCC transaction outcomes recovery derived from the
// log, so Open can seed the transaction manager.
type recoveryStats struct {
	Redo  int64 // after-images reapplied
	Undo  int64 // before-images restored
	Nanos int64 // wallclock nanoseconds spent recovering
	// OwnersSeen holds every MVCC transaction id that finished at least
	// one statement in the log; OwnersCommitted the subset whose
	// WALTxnCommit record (the MVCC commit point) made it. Seen but not
	// committed means the crash aborted the transaction.
	OwnersSeen      map[uint64]bool
	OwnersCommitted map[uint64]bool
	MaxOwner        uint64
	// ResetLSN, when non-zero, is the LSN the caller must reset the log
	// to after persisting the derived transaction status — resetting
	// inside recovery would open a crash window in which the commit
	// records are gone but the catalog still lists the owners in flight.
	ResetLSN uint64
}

// recoverWAL replays the log in dir against the page files. A missing
// log means a pre-WAL or fresh database: no-op. The caller resets the
// log at st.ResetLSN once the derived transaction status is persisted.
func recoverWAL(dir string) (recoveryStats, error) {
	var st recoveryStats
	path := filepath.Join(dir, storage.WALFileName)
	start := time.Now()
	recs, base, _, err := storage.ReadWALRecords(path)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, fmt.Errorf("engine: recovery: %w", err)
	}
	if len(recs) == 0 {
		return st, nil
	}

	// The redo scan starts at the last complete checkpoint's scan-start
	// LSN: everything older was durable in the data files when that
	// checkpoint finished.
	scanStart := base
	for _, r := range recs {
		if r.Type == storage.WALCheckpointEnd && r.ScanStart > scanStart {
			scanStart = r.ScanStart
		}
	}
	// Winners are transactions whose finish record made it to the log.
	// (Rollback writes one too — the engine keeps a rolled-back
	// transaction's effects, so recovery must as well.) Everything else
	// was in flight at the crash and gets undone.
	committed := make(map[uint64]bool)
	st.OwnersSeen = map[uint64]bool{}
	st.OwnersCommitted = map[uint64]bool{}
	for _, r := range recs {
		switch r.Type {
		case storage.WALCommit:
			committed[r.Txn] = true
			if r.Owner != 0 {
				st.OwnersSeen[r.Owner] = true
				if r.Owner > st.MaxOwner {
					st.MaxOwner = r.Owner
				}
			}
		case storage.WALTxnCommit:
			st.OwnersCommitted[r.Owner] = true
			if r.Owner > st.MaxOwner {
				st.MaxOwner = r.Owner
			}
		}
	}

	files := make(map[string]*os.File)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	open := func(name string) (*os.File, error) {
		if f, ok := files[name]; ok {
			return f, nil
		}
		if name == "" || name != filepath.Base(name) {
			return nil, fmt.Errorf("engine: recovery: invalid file name %q in wal", name)
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		files[name] = f
		return f, nil
	}
	// diskLSN reads a page's on-disk LSN trailer; pages past EOF (never
	// flushed) read as 0.
	diskLSN := func(f *os.File, page uint32) (uint64, error) {
		var tr [storage.PageTrailerSize]byte
		_, err := f.ReadAt(tr[:], int64(page)*storage.PageSize+storage.PageDataSize)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil
		}
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(tr[:]), nil
	}

	// Redo pass: reapply winners' after-images, oldest first, wherever
	// the on-disk page is older than the record.
	for _, r := range recs {
		if r.LSN < scanStart || r.Type != storage.WALAfterImage || !committed[r.Txn] {
			continue
		}
		f, err := open(r.File)
		if err != nil {
			return st, err
		}
		cur, err := diskLSN(f, r.Page)
		if err != nil {
			return st, err
		}
		if cur >= r.LSN {
			continue // page already reflects this (or a later) record
		}
		if _, err := f.WriteAt(r.Image, int64(r.Page)*storage.PageSize); err != nil {
			return st, err
		}
		st.Redo++
	}

	// Undo pass: losers newest first. A loser's before-image is applied
	// only where the on-disk page actually carries the loser's write
	// (trailer >= the before-image's LSN): a stolen dirty page. The
	// restored image gets the pre-transaction LSN back, keeping
	// recovery idempotent across repeated crashes.
	img := make([]byte, storage.PageSize)
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.LSN < scanStart {
			break
		}
		if r.Type != storage.WALBeforeImage || committed[r.Txn] {
			continue
		}
		f, err := open(r.File)
		if err != nil {
			return st, err
		}
		cur, err := diskLSN(f, r.Page)
		if err != nil {
			return st, err
		}
		if cur < r.LSN {
			continue // the loser's write never reached disk
		}
		copy(img, r.Image)
		storage.SetPageLSN(img, r.PrevLSN)
		if _, err := f.WriteAt(img, int64(r.Page)*storage.PageSize); err != nil {
			return st, err
		}
		st.Undo++
	}

	for name, f := range files {
		if err := f.Sync(); err != nil {
			return st, fmt.Errorf("engine: recovery: fsync %s: %w", name, err)
		}
	}
	// The replayed log is spent: Open restarts it just past the last LSN
	// (after persisting transaction outcomes) so new records never
	// collide with recovered page trailers.
	st.ResetLSN = recs[len(recs)-1].LSN + 1
	st.Nanos = time.Since(start).Nanoseconds()
	return st, nil
}

// recountAfterRecovery resynchronizes per-table row counts after a
// recovery pass touched data pages behind the catalog's back. The count
// is MVCC-aware: only versions visible to a fresh snapshot — creator
// committed, no committed deleter — are rows; versions of transactions
// the crash aborted stay on disk but are not counted (vacuum reclaims
// them).
func (db *DB) recountAfterRecovery() error {
	sn := db.txns.realitySnapshot()
	db.mu.RLock()
	handles := make([]*tableHandle, 0, len(db.tables))
	for _, h := range db.tables {
		handles = append(handles, h)
	}
	db.mu.RUnlock()
	for _, h := range handles {
		var rows int64
		err := h.heap.Scan(func(_ storage.TID, rec []byte) (bool, error) {
			if len(rec) < storage.VersionHeaderSize {
				return false, fmt.Errorf("engine: recovery: unversioned record in %s", h.meta.Name)
			}
			if sn.visible(storage.ReadVersionHeader(rec)) {
				rows++
			}
			return true, nil
		})
		if err != nil {
			return err
		}
		h.heap.ResetRows(rows)
		db.syncMeta(h)
	}
	return db.cat.Save()
}
