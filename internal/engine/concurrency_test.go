package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/monitor"
)

// TestConcurrentReadersAndWriters hammers the engine from many
// sessions at once; run with -race. Readers must always see a
// consistent row count for their own statements and the engine must
// not leak locks.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := testDB(t)
	setup := db.NewSession()
	mustExec(t, setup, "CREATE TABLE counters (id INTEGER PRIMARY KEY, n INTEGER)")
	for i := 0; i < 50; i++ {
		mustExec(t, setup, fmt.Sprintf("INSERT INTO counters VALUES (%d, 0)", i))
	}
	setup.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < 50; i++ {
				// First-updater-wins: a concurrent writer that committed
				// first aborts this statement's transaction; retrying
				// with a fresh snapshot is the client's job under SI.
				for {
					_, err := s.Exec(fmt.Sprintf("UPDATE counters SET n = n + 1 WHERE id = %d", i))
					if err == nil {
						break
					}
					if errors.Is(err, ErrWriteConflict) {
						continue
					}
					errCh <- err
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < 50; i++ {
				res, err := s.Exec("SELECT COUNT(*) FROM counters")
				if err != nil {
					errCh <- err
					return
				}
				if res.Rows[0][0].I != 50 {
					errCh <- fmt.Errorf("reader saw %v rows", res.Rows[0][0])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Every writer incremented every counter exactly once.
	s := db.NewSession()
	defer s.Close()
	res := mustExec(t, s, "SELECT SUM(n) FROM counters")
	if res.Rows[0][0].I != 4*50 {
		t.Errorf("SUM(n) = %v, want 200", res.Rows[0][0])
	}
	if st := db.LockStats(); st.Held != 0 || st.Waiting != 0 {
		t.Errorf("locks leaked: %+v", st)
	}
}

// TestTransactionsAndDeadlockViaSQL drives the Begin/Commit lock scope
// through SQL and checks that a cross-order transaction pair produces
// a detected deadlock with the victim's transaction released.
func TestTransactionsAndDeadlockViaSQL(t *testing.T) {
	db := testDB(t)
	setup := db.NewSession()
	mustExec(t, setup, "CREATE TABLE ta (id INTEGER PRIMARY KEY)")
	mustExec(t, setup, "CREATE TABLE tb (id INTEGER PRIMARY KEY)")
	mustExec(t, setup, "INSERT INTO ta VALUES (1)")
	mustExec(t, setup, "INSERT INTO tb VALUES (1)")
	setup.Close()

	s1 := db.NewSession()
	s2 := db.NewSession()
	defer s1.Close()
	defer s2.Close()

	s1.Begin()
	mustExec(t, s1, "UPDATE ta SET id = id WHERE id = 1") // row X on ta(1)

	s2.Begin()
	mustExec(t, s2, "UPDATE tb SET id = id WHERE id = 1") // row X on tb(1)

	// s1 now waits for s2's row lock on tb(1)...
	done := make(chan error, 1)
	go func() {
		_, err := s1.Exec("UPDATE tb SET id = id WHERE id = 1")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)

	// ...and s2 requesting ta(1) closes the cycle: s2 must be the victim.
	_, err := s2.Exec("UPDATE ta SET id = id WHERE id = 1")
	if !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	// The victim's transaction was aborted (locks released), so s1
	// proceeds.
	if err := <-done; err != nil {
		t.Fatalf("survivor errored: %v", err)
	}
	s1.Commit()
	if st := db.LockStats(); st.Held != 0 {
		t.Errorf("locks leaked after deadlock handling: %+v", st)
	}
	if db.Stats().Deadlocks != 1 {
		t.Errorf("deadlock counter = %d", db.Stats().Deadlocks)
	}
}

// TestTransactionHoldsLocks verifies the MVCC lock scope: an open
// transaction keeps its row write locks until Commit — a second writer
// on the same row blocks and then loses first-updater-wins — while
// readers never block on it and see the pre-transaction snapshot.
func TestTransactionHoldsLocks(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE tx (id INTEGER PRIMARY KEY, n INTEGER)")
	mustExec(t, s, "INSERT INTO tx VALUES (1, 0)")

	s.Begin()
	mustExec(t, s, "UPDATE tx SET n = 1 WHERE id = 1")
	if st := db.LockStats(); st.Held == 0 {
		t.Fatal("no lock held inside the transaction")
	}

	// Readers run against their snapshot: no blocking, no dirty read.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		s2 := db.NewSession()
		defer s2.Close()
		res, err := s2.Exec("SELECT n FROM tx WHERE id = 1")
		if err != nil {
			t.Errorf("reader: %v", err)
			return
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
			t.Errorf("reader saw %v, want the pre-transaction n=0", res.Rows)
		}
	}()
	select {
	case <-readerDone:
	case <-time.After(time.Second):
		t.Fatal("reader blocked on the open transaction")
	}

	// A second writer on the same row blocks on the row lock...
	blocked := make(chan error, 1)
	go func() {
		s3 := db.NewSession()
		defer s3.Close()
		_, err := s3.Exec("UPDATE tx SET n = 2 WHERE id = 1")
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("second writer was not blocked (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// ...and after the first committed, its recheck finds the row
	// superseded: first-updater-wins.
	select {
	case err := <-blocked:
		if !errors.Is(err, ErrWriteConflict) {
			t.Fatalf("second writer: got %v, want ErrWriteConflict", err)
		}
	case <-time.After(time.Second):
		t.Fatal("second writer still blocked after commit")
	}
	s.Close()
}

// TestMonitorUnderConcurrency checks the sensors stay consistent when
// many sessions execute simultaneously.
func TestMonitorUnderConcurrency(t *testing.T) {
	mon := monitor.New(monitor.Config{})
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setup := db.NewSession()
	mustExec(t, setup, "CREATE TABLE m (id INTEGER PRIMARY KEY)")
	mustExec(t, setup, "INSERT INTO m VALUES (1)")
	setup.Close()

	const goroutines = 6
	const each = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < each; i++ {
				if _, err := s.Exec("SELECT COUNT(*) FROM m"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// setup executed 2 statements as well.
	want := int64(goroutines*each + 2)
	if got := mon.TotalStatements(); got != want {
		t.Errorf("TotalStatements = %d, want %d", got, want)
	}
	snap := mon.Snapshot()
	for _, si := range snap.Statements {
		if si.Text == "SELECT COUNT(*) FROM m" && si.Frequency != goroutines*each {
			t.Errorf("frequency = %d, want %d", si.Frequency, goroutines*each)
		}
	}
}
