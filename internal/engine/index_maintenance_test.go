package engine

import (
	"fmt"
	"strings"
	"testing"
)

// checkIndexConsistency compares results of the same query via index
// scan and via a forced sequential scan (by querying before/after the
// physical change).
func queryVia(t *testing.T, s *Session, sql string) []string {
	t.Helper()
	res := mustExec(t, s, sql)
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r.String())
	}
	return out
}

// TestIndexStaysConsistentThroughDML updates and deletes rows on an
// indexed table and verifies index-driven results always match the
// base table.
func TestIndexStaysConsistentThroughDML(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE km (id INTEGER PRIMARY KEY, tag INTEGER, v VARCHAR(16))")
	for i := 0; i < 3000; i++ {
		if i%300 == 0 {
			continue // gaps
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO km VALUES (%d, %d, 'v%d')", i, i%10, i))
	}
	mustExec(t, s, "CREATE INDEX ix_tag ON km (tag)")

	verify := func(stage string) {
		t.Helper()
		// Index-driven query (tag is selective enough post-stats).
		res := mustExec(t, s, "SELECT COUNT(*) FROM km WHERE tag = 4")
		viaIndex := res.Rows[0][0].I
		// Ground truth via a predicate the index cannot serve.
		res = mustExec(t, s, "SELECT COUNT(*) FROM km WHERE tag + 0 = 4")
		viaScan := res.Rows[0][0].I
		if viaIndex != viaScan {
			t.Fatalf("%s: index says %d, scan says %d", stage, viaIndex, viaScan)
		}
	}
	verify("after load")

	mustExec(t, s, "UPDATE km SET tag = 4 WHERE tag = 5")
	verify("after update-into")

	mustExec(t, s, "UPDATE km SET tag = 99 WHERE tag = 4 AND id < 1000")
	verify("after update-out-of")

	mustExec(t, s, "DELETE FROM km WHERE tag = 4 AND id % 2 = 0")
	verify("after delete")

	mustExec(t, s, "MODIFY km TO BTREE")
	verify("after modify to btree")

	mustExec(t, s, "UPDATE km SET v = 'rewritten' WHERE tag = 4")
	verify("after post-modify update")
}

// TestModifyWithExplicitKeyColumns rebuilds clustered on a non-pk key.
func TestModifyWithExplicitKeyColumns(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)
	mustExec(t, s, "MODIFY people TO BTREE ON city, age")
	meta := db.Catalog().Table("people")
	if strings.Join(meta.StorageKey, ",") != "city,age" {
		t.Errorf("storage key cols: %v", meta.StorageKey)
	}
	// The logical primary key is untouched by restructuring.
	if strings.Join(meta.PrimaryKey, ",") != "id" {
		t.Errorf("primary key changed: %v", meta.PrimaryKey)
	}
	// Range over the leading key column uses the primary structure.
	res := mustExec(t, s, "SELECT COUNT(*) FROM people WHERE city = 'berlin'")
	if res.Rows[0][0].I == 0 {
		t.Fatal("no rows")
	}
	if !strings.Contains(res.Plan.String(), "people.primary") {
		t.Errorf("primary structure unused:\n%s", res.Plan.String())
	}
	// All rows survived the rebuild.
	res = mustExec(t, s, "SELECT COUNT(*) FROM people")
	if res.Rows[0][0].I != peopleRows {
		t.Errorf("rows after MODIFY ON: %v", res.Rows[0][0])
	}
}

// TestCompositeIndexPrefixQueries exercises multi-column index probes.
func TestCompositeIndexPrefixQueries(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE ci (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, c VARCHAR(8))")
	var vals []string
	for i := 0; i < 2000; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d, %d, 'c%d')", i, i%20, i%50, i%7))
	}
	mustExec(t, s, "INSERT INTO ci VALUES "+strings.Join(vals, ","))
	mustExec(t, s, "CREATE INDEX ix_ab ON ci (a, b)")
	mustExec(t, s, "CREATE STATISTICS FOR ci")

	// Full prefix: eq on a and b.
	res := mustExec(t, s, "SELECT COUNT(*) FROM ci WHERE a = 3 AND b = 3")
	if !strings.Contains(res.Plan.String(), "ix_ab") {
		t.Errorf("composite eq probe unused:\n%s", res.Plan.String())
	}
	want := mustExec(t, s, "SELECT COUNT(*) FROM ci WHERE a + 0 = 3 AND b + 0 = 3")
	if res.Rows[0][0].I != want.Rows[0][0].I {
		t.Errorf("composite probe wrong: %v vs %v", res.Rows[0][0], want.Rows[0][0])
	}

	// Prefix eq + range on the second column.
	res = mustExec(t, s, "SELECT COUNT(*) FROM ci WHERE a = 3 AND b BETWEEN 10 AND 30")
	want = mustExec(t, s, "SELECT COUNT(*) FROM ci WHERE a + 0 = 3 AND b + 0 BETWEEN 10 AND 30")
	if res.Rows[0][0].I != want.Rows[0][0].I {
		t.Errorf("prefix+range wrong: %v vs %v", res.Rows[0][0], want.Rows[0][0])
	}
}

// TestTextKeyRanges probes string-keyed indexes with BETWEEN ranges —
// the NREF workload's nref_id windows rely on this.
func TestTextKeyRanges(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE tk (k VARCHAR(16) PRIMARY KEY, n INTEGER)")
	var vals []string
	for i := 0; i < 1000; i++ {
		vals = append(vals, fmt.Sprintf("('K%04d', %d)", i, i))
	}
	mustExec(t, s, "INSERT INTO tk VALUES "+strings.Join(vals, ","))

	res := mustExec(t, s, "SELECT COUNT(*) FROM tk WHERE k BETWEEN 'K0100' AND 'K0199'")
	if res.Rows[0][0].I != 100 {
		t.Errorf("text range count: %v", res.Rows[0][0])
	}
	if !strings.Contains(res.Plan.String(), "IndexScan") {
		t.Errorf("text range not index-driven:\n%s", res.Plan.String())
	}
	// Open-ended ranges.
	res = mustExec(t, s, "SELECT COUNT(*) FROM tk WHERE k >= 'K0990'")
	if res.Rows[0][0].I != 10 {
		t.Errorf("open range count: %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM tk WHERE k < 'K0010'")
	if res.Rows[0][0].I != 10 {
		t.Errorf("upper open range count: %v", res.Rows[0][0])
	}
}
