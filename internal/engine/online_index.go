package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// onlineBuildChunk is how many live rows one backfill batch visits
// between releases of the table's S lock. Small enough that a writer
// never waits long, large enough that lock churn stays negligible.
const onlineBuildChunk = 512

// sideLogEntry is one index mutation captured while an online build
// scans the heap: the already tid-suffixed key and its TID payload.
// Entries are appended under the table's X lock, so log order equals
// DML order.
type sideLogEntry struct {
	del bool
	key []byte
	val []byte
}

// indexSideLog accumulates the index maintenance an in-progress online
// build owes for DML that ran while it scanned. insertVersion and
// dropVersionIndexEntries append through the handle's atomic pointer; the builder drains
// between backfill chunks and a final time under the DDL gate. If
// computing a key fails the error is parked for the builder — the DML
// statement itself never fails because of a background build.
type indexSideLog struct {
	cols []string

	mu      sync.Mutex
	entries []sideLogEntry
	err     error
}

func (sl *indexSideLog) add(del bool, key, val []byte) {
	sl.mu.Lock()
	sl.entries = append(sl.entries, sideLogEntry{del: del, key: key, val: val})
	sl.mu.Unlock()
}

func (sl *indexSideLog) fail(err error) {
	sl.mu.Lock()
	if sl.err == nil {
		sl.err = err
	}
	sl.mu.Unlock()
}

// drain removes and returns the accumulated entries (and any parked
// error) so the builder can replay them without holding the log lock.
func (sl *indexSideLog) drain() ([]sideLogEntry, error) {
	sl.mu.Lock()
	entries := sl.entries
	sl.entries = nil
	err := sl.err
	sl.mu.Unlock()
	return entries, err
}

// replay applies drained entries to the index in log order. Put
// overwrites and Delete tolerates missing keys, so an entry that races
// the backfill scan (both observed the same row) is idempotent.
func replaySideLog(bt *storage.BTree, entries []sideLogEntry) error {
	for _, e := range entries {
		if e.del {
			if _, err := bt.Delete(e.key); err != nil {
				return err
			}
		} else if err := bt.Put(e.key, e.val); err != nil {
			return err
		}
	}
	return nil
}

// logToSideLog is the insertVersion/dropVersionIndexEntries hook: if
// an online build is in progress on this table, record the index
// mutation it cannot see. The caller holds the table's statement write
// gate (or its X lock on DDL paths).
func logToSideLog(h *tableHandle, del bool, tid storage.TID, row sqltypes.Row) {
	sl := h.sideLog.Load()
	if sl == nil {
		return
	}
	key, err := keyFor(h.meta.Schema, row, sl.cols)
	if err != nil {
		sl.fail(err)
		return
	}
	sl.add(del, tidSuffix(key, tid), tidBytes(tid))
}

// execCreateIndexOnline builds a secondary index without stalling the
// workload: the catalog entry is registered with Building set (name
// reserved, index invisible to the optimizer and to DML maintenance),
// a side-log is installed under a brief X lock, the heap is backfilled
// in chunks under a shared lock (writers run between chunks and their
// index mutations land in the side-log), and the final catch-up +
// publish happens under the WAL's exclusive gate. Uniqueness is
// verified in one pass over the finished index — checking per-row
// during the build would raise false duplicates for rows whose delete
// is still queued in the side-log. The index file is fsynced before
// the catalog clears Building, so a crash at any point leaves either a
// Building entry (dropped, with its file, at the next open) or a fully
// durable published index.
func (db *DB) execCreateIndexOnline(st *sqlparser.CreateIndexStmt) (_ *Result, err error) {
	h := db.handle(st.Table)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	if h.sideLog.Load() != nil {
		return nil, fmt.Errorf("engine: another online index build is running on %s", st.Table)
	}
	ix := &catalog.Index{
		Name:     st.Name,
		Table:    st.Table,
		Columns:  st.Columns,
		Unique:   st.Unique,
		Building: true,
	}
	if err := db.cat.AddIndex(ix); err != nil {
		return nil, err
	}

	var (
		xf        *storage.File
		published bool
	)
	defer func() {
		if published {
			return
		}
		// Unified rollback, mirroring the offline path: stop side
		// logging, remove the half-built file and drop the reserved
		// catalog entry.
		h.sideLog.Store(nil)
		if xf != nil {
			if rerr := xf.Remove(); rerr != nil {
				err = errors.Join(err, rerr)
			}
		}
		if derr := db.cat.DropIndex(st.Name); derr != nil {
			err = errors.Join(err, derr)
		}
		db.plans.invalidate()
	}()

	if xf, err = db.newFile(db.indexPath(st.Name)); err != nil {
		return nil, err
	}
	bt, err := storage.CreateBTree(xf)
	if err != nil {
		return nil, err
	}

	// Install the side-log under a brief X lock: no DML statement is
	// mid-flight at that instant, so every mutation after this point is
	// captured and everything before it is in the heap where the scan
	// will find it.
	lockID := db.nextSession.Add(1)
	tkey := strings.ToLower(st.Table)
	if err = db.locks.Acquire(lockID, tkey, lockX); err != nil {
		return nil, err
	}
	sl := &indexSideLog{cols: st.Columns}
	h.sideLog.Store(sl)
	db.locks.ReleaseAll(lockID)

	// Backfill in chunks under a shared lock. A (page, slot) scan
	// position is stable across the unlock windows: deletes never
	// compact slots and inserts only append.
	var (
		page uint32
		slot int
		done bool
	)
	for !done {
		if err = db.locks.Acquire(lockID, tkey, lockS); err != nil {
			return nil, err
		}
		page, slot, done, err = h.heap.ScanChunk(page, slot, onlineBuildChunk, func(tid storage.TID, rec []byte) error {
			if len(rec) < storage.VersionHeaderSize {
				return fmt.Errorf("engine: unversioned record %v in %s", tid, h.meta.Name)
			}
			row, derr := sqltypes.DecodeRow(storage.VersionPayload(rec))
			if derr != nil {
				return derr
			}
			key, kerr := keyFor(h.meta.Schema, row, st.Columns)
			if kerr != nil {
				return kerr
			}
			return bt.Put(tidSuffix(key, tid), tidBytes(tid))
		})
		db.locks.ReleaseAll(lockID)
		if err != nil {
			return nil, err
		}
		// Drain between chunks so the final catch-up under the gate
		// replays only the tail of concurrent DML.
		entries, serr := sl.drain()
		if serr == nil {
			serr = replaySideLog(bt, entries)
		}
		if serr != nil {
			return nil, serr
		}
	}

	// Final catch-up and publish under the DDL gate: every in-flight
	// write transaction is waited out and no new one can start, so the
	// drained tail is complete and the publish is atomic.
	release := db.wal.BeginExclusive()
	defer release()
	entries, serr := sl.drain()
	if serr == nil {
		serr = replaySideLog(bt, entries)
	}
	h.sideLog.Store(nil)
	if serr != nil {
		return nil, serr
	}
	if st.Unique {
		if err = db.verifyUniqueLive(h, bt, st.Name); err != nil {
			return nil, err
		}
	}
	// Durability order: index file first, then the catalog flips
	// Building off. A crash in between leaves a Building entry, which
	// the next open drops along with the file.
	if err = bt.File().Sync(); err != nil {
		return nil, err
	}
	if err = db.cat.FinishIndexBuild(st.Name); err != nil {
		return nil, err
	}
	db.mu.Lock()
	h.indexes[strings.ToLower(st.Name)] = bt
	db.mu.Unlock()
	db.plans.invalidate()
	published = true
	if err = db.Checkpoint(); err != nil {
		// The index itself is durable (file synced, catalog saved);
		// surface the checkpoint failure without rolling it back.
		return nil, err
	}
	return &Result{RowsAffected: h.heap.Rows()}, nil
}

// verifyUniqueLive walks a freshly built index once and checks the
// unique constraint against version state. Entries with the same key
// modulo the TID suffix are one candidate group; within a group each
// version is classified as dead (aborted creator, or committed
// deleter), live (committed creator, no surviving deleter), or pending
// (in-flight creator or in-flight deleter). Two live versions are a
// duplicate. A potential duplicate that hinges on a pending
// transaction cannot be resolved without waiting for it — the build
// fails with a retryable error instead of blocking under the DDL gate.
// Offline builds run under the table's X lock, which excludes the IX
// locks write transactions hold until commit, so they never see
// pending versions.
func (db *DB) verifyUniqueLive(h *tableHandle, bt *storage.BTree, name string) error {
	var (
		prev          []byte
		live, pending int
	)
	check := func() error {
		if live >= 2 {
			return fmt.Errorf("engine: duplicate key while building unique index %s", name)
		}
		if pending > 0 && live+pending >= 2 {
			return fmt.Errorf("engine: unique index %s build raced a concurrent transaction, retry", name)
		}
		return nil
	}
	it := bt.Seek(nil)
	for it.Next() {
		k := it.Key()
		if len(k) < tidSuffixLen {
			return fmt.Errorf("engine: corrupt key in index %s", name)
		}
		stripped := k[:len(k)-tidSuffixLen]
		if prev == nil || string(prev) != string(stripped) {
			if err := check(); err != nil {
				return err
			}
			live, pending = 0, 0
			prev = append(prev[:0], stripped...)
		}
		rec, ok, gerr := h.heap.Get(tidFromBytes(it.Value()))
		if gerr != nil {
			return gerr
		}
		if !ok || len(rec) < storage.VersionHeaderSize {
			continue // dangling entry: version already reclaimed
		}
		vh := storage.ReadVersionHeader(rec)
		switch db.txns.stateOf(vh.Xmin) {
		case txnAborted:
			continue
		case txnInflight:
			pending++
			continue
		}
		if vh.Xmax == 0 {
			live++
			continue
		}
		switch db.txns.stateOf(vh.Xmax) {
		case txnInflight:
			pending++
		case txnAborted:
			live++
		default:
			// Committed delete: dead version.
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return check()
}
