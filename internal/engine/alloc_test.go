package engine

import (
	"fmt"
	"strings"
	"testing"
)

// TestScanAllocsPerRow pins the row-path allocation fix: projection
// rows are carved from a RowArena (one allocation per chunk), heap
// row decoding reuses a scratch slice, and DISTINCT key probes reuse
// an encode buffer. End to end, a 2000-row projection scan over an
// integer-only table must stay well under one allocation per row — a
// regression to per-row make() anywhere on the path trips the bound
// immediately. (VARCHAR columns are excluded deliberately: decoding a
// string value must copy it out of the pinned page, so each string
// column adds an unavoidable allocation per row.)
func TestScanAllocsPerRow(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()

	const rows = 2000
	mustExec(t, s, "CREATE TABLE nums (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
	for base := 0; base < rows; base += 200 {
		var vals []string
		for i := base; i < base+200; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, %d)", i, i%50, i%7))
		}
		mustExec(t, s, "INSERT INTO nums (id, a, b) VALUES "+strings.Join(vals, ", "))
	}

	queries := []string{
		"SELECT id, a + 1 FROM nums WHERE a >= 0",
		"SELECT DISTINCT a FROM nums",
	}
	for _, q := range queries {
		mustExec(t, s, q) // warm plan cache and buffer pool
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := s.Exec(q); err != nil {
				t.Fatal(err)
			}
		})
		perRow := allocs / rows
		t.Logf("%s: %.0f allocs (%.3f/row)", q, allocs, perRow)
		if perRow > 0.5 {
			t.Errorf("%s: %.0f allocs for %d rows (%.2f/row), want < 0.5/row", q, allocs, rows, perRow)
		}
	}
}
