package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/storage/walfault"
)

// Crash-recovery suite. A "crash" is simulated by copying the database
// directory while the engine is still open: committed WAL records are
// durable (Commit waits on the group-commit flusher), but dirty pool
// pages may or may not have reached the data files — exactly the state
// a kill -9 leaves behind. The copy is then reopened and recovery is
// checked against what was acked.

// copyDir copies every regular file of src into dst (flat layout: the
// database directory has no subdirectories).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			in.Close()
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// crashSnapshot captures the crash-state of dir into a fresh temp dir.
func crashSnapshot(t *testing.T, dir string) string {
	t.Helper()
	snap := t.TempDir()
	copyDir(t, dir, snap)
	return snap
}

// walBoundaries returns every byte offset of the log that ends a
// record (the header end first): the set of lengths a crash mid-append
// can leave a *fully valid* prefix at. The frame layout is the
// documented u32 length | u32 crc | body.
func walBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const headerSize, frameSize = 16, 8
	offs := []int64{headerSize}
	off := int64(headerSize)
	for off+frameSize <= int64(len(data)) {
		bodyLen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		next := off + frameSize + bodyLen
		if next > int64(len(data)) {
			break
		}
		off = next
		offs = append(offs, off)
	}
	return offs
}

func openDir(t *testing.T, dir string, poolPages int) *DB {
	t.Helper()
	db, err := Open(Config{Dir: dir, PoolPages: poolPages})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return db
}

func tableIDs(t *testing.T, db *DB, table string) map[int64]bool {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	res, err := s.Exec("SELECT id FROM " + table)
	if err != nil {
		t.Fatalf("SELECT from %s: %v", table, err)
	}
	ids := make(map[int64]bool, len(res.Rows))
	for _, r := range res.Rows {
		ids[r[0].I] = true
	}
	return ids
}

// truncationScript is the testing/quick-generated shape of one crash
// scenario: a run of committed transactions (each inserting 1-3 rows)
// followed by one transaction still in flight at the crash.
type truncationScript struct {
	Sizes []uint8
	Tail  uint8
}

// TestRecoveryTruncationProperty is the core recovery property: for a
// WAL cut at EVERY record boundary, reopening yields exactly the rows
// of the transactions whose finish record lies inside the prefix — no
// lost committed row, no phantom uncommitted row.
func TestRecoveryTruncationProperty(t *testing.T) {
	check := func(sc truncationScript) bool {
		if len(sc.Sizes) > 5 {
			sc.Sizes = sc.Sizes[:5]
		}
		if len(sc.Sizes) == 0 {
			sc.Sizes = []uint8{1}
		}
		base := t.TempDir()
		db := openDir(t, base, 256)
		s := db.NewSession()
		if _, err := s.Exec("CREATE TABLE kd (id INTEGER PRIMARY KEY)"); err != nil {
			t.Fatal(err)
		}
		// Committed transactions, in program order == log order.
		var finished [][]int64
		next := int64(0)
		for _, raw := range sc.Sizes {
			n := 1 + int(raw%3)
			s.Begin()
			var rows []int64
			for j := 0; j < n; j++ {
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO kd VALUES (%d)", next)); err != nil {
					t.Fatal(err)
				}
				rows = append(rows, next)
				next++
			}
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
			finished = append(finished, rows)
		}
		// One transaction left in flight at the crash; its rows must
		// never survive, whatever the cut.
		tail := db.NewSession()
		tail.Begin()
		for j := 0; j <= int(sc.Tail%3); j++ {
			if _, err := tail.Exec(fmt.Sprintf("INSERT INTO kd VALUES (%d)", 100000+int64(j))); err != nil {
				t.Fatal(err)
			}
		}
		snap := crashSnapshot(t, base)
		db.Close()

		walPath := filepath.Join(snap, storage.WALFileName)
		ok := true
		for _, cut := range walBoundaries(t, walPath) {
			work := t.TempDir()
			copyDir(t, snap, work)
			wp := filepath.Join(work, storage.WALFileName)
			if err := os.Truncate(wp, cut); err != nil {
				t.Fatal(err)
			}
			// The prefix itself defines the expectation: the first k
			// transaction-commit records cover the first k finished
			// transactions (one sequential committer). Per-statement
			// WALCommit units don't count — a transaction's rows exist
			// only once its WALTxnCommit made it into the prefix.
			recs, _, _, err := storage.ReadWALRecords(wp)
			if err != nil {
				t.Fatal(err)
			}
			commits := 0
			for _, r := range recs {
				if r.Type == storage.WALTxnCommit {
					commits++
				}
			}
			want := map[int64]bool{}
			for _, rows := range finished[:commits] {
				for _, id := range rows {
					want[id] = true
				}
			}
			rdb := openDir(t, work, 256)
			got := tableIDs(t, rdb, "kd")
			rdb.Close()
			if len(got) != len(want) {
				t.Errorf("cut=%d: %d rows, want %d", cut, len(got), len(want))
				ok = false
				continue
			}
			for id := range want {
				if !got[id] {
					t.Errorf("cut=%d: lost committed row %d", cut, id)
					ok = false
				}
			}
			for id := range got {
				if id >= 100000 {
					t.Errorf("cut=%d: phantom uncommitted row %d", cut, id)
					ok = false
				}
			}
		}
		return ok
	}
	cfg := &quick.Config{
		MaxCount: 3,
		Rand:     rand.New(rand.NewSource(0xC0FFEE)),
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestRecoveryStopsAtCorruptTail: a bit flip inside the last record
// (not just a short tail) must fail its checksum, stop the scan there
// and still open cleanly with everything before it intact.
func TestRecoveryStopsAtCorruptTail(t *testing.T) {
	base := t.TempDir()
	db := openDir(t, base, 256)
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kd (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	for txn := 0; txn < 2; txn++ {
		s.Begin()
		for j := 0; j < 2; j++ {
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO kd VALUES (%d)", txn*10+j)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	snap := crashSnapshot(t, base)
	db.Close()

	// The last record in the log is the second transaction's finish
	// record; flipping its final byte invalidates its CRC.
	wp := filepath.Join(snap, storage.WALFileName)
	f, err := os.OpenFile(wp, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	var b [1]byte
	if _, err := f.ReadAt(b[:], st.Size()-1); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], st.Size()-1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rdb := openDir(t, snap, 256) // must not error
	got := tableIDs(t, rdb, "kd")
	rdb.Close()
	for j := 0; j < 2; j++ {
		if !got[int64(j)] {
			t.Errorf("row %d of the intact first transaction lost", j)
		}
	}
	for j := 0; j < 2; j++ {
		if got[int64(10+j)] {
			t.Errorf("row %d redone past the corrupt finish record", 10+j)
		}
	}
}

// TestRecoveryUndoesFlushedUncommitted drives the STEAL path: a tiny
// pool forces dirty pages of a still-open transaction onto disk; after
// the crash, recovery must roll those stolen pages back to their
// before-images.
func TestRecoveryUndoesFlushedUncommitted(t *testing.T) {
	base := t.TempDir()
	db := openDir(t, base, 8) // 8 frames: eviction storm guaranteed
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kd (id INTEGER PRIMARY KEY, pad VARCHAR(512))"); err != nil {
		t.Fatal(err)
	}
	pad := make([]byte, 400)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO kd VALUES (%d, '%s')", i, pad)); err != nil {
			t.Fatal(err)
		}
	}
	w0 := db.PoolStats().DiskWrite

	open := db.NewSession()
	open.Begin()
	for i := 100; i < 300; i++ {
		if _, err := open.Exec(fmt.Sprintf("INSERT INTO kd VALUES (%d, '%s')", i, pad)); err != nil {
			t.Fatal(err)
		}
	}
	if db.PoolStats().DiskWrite == w0 {
		t.Fatal("no dirty page was stolen: the test is not exercising undo")
	}
	snap := crashSnapshot(t, base)
	db.Close()

	rdb := openDir(t, snap, 256)
	got := tableIDs(t, rdb, "kd")
	rdb.Close()
	if len(got) != 5 {
		t.Errorf("rows after recovery = %d, want the 5 committed", len(got))
	}
	for i := 0; i < 5; i++ {
		if !got[int64(i)] {
			t.Errorf("committed row %d lost", i)
		}
	}
	for id := range got {
		if id >= 100 {
			t.Errorf("uncommitted stolen row %d survived recovery", id)
		}
	}
}

// TestCheckpointFsyncs: a checkpoint that does not fsync guarantees
// nothing. Every checkpoint must fsync the data files and the catalog.
func TestCheckpointFsyncs(t *testing.T) {
	db := openDir(t, t.TempDir(), 256)
	defer db.Close()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kd (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO kd VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	f0 := db.PoolStats().Fsyncs
	c0 := catalog.Fsyncs()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.PoolStats().Fsyncs; got <= f0 {
		t.Errorf("checkpoint issued no data-file fsync (%d -> %d)", f0, got)
	}
	if got := catalog.Fsyncs(); got < c0+2 {
		t.Errorf("checkpoint catalog save fsyncs = %d, want >= %d (temp file + directory)", got-c0, 2)
	}
}

// TestWALFsyncFailureSurfaces: when the log device fails, Commit must
// return the error instead of acking — and the log must stay failed.
func TestWALFsyncFailureSurfaces(t *testing.T) {
	var wf *walfault.File
	db, err := Open(Config{
		Dir:       t.TempDir(),
		PoolPages: 256,
		WALOpen:   walfault.Opener(func(f *walfault.File) { wf = f }),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE kd (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO kd VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	wf.FailSync(errors.New("injected: log device gone"))
	if _, err := s.Exec("INSERT INTO kd VALUES (2)"); err == nil {
		t.Fatal("commit acked although the WAL fsync failed")
	}
	// Sticky: the engine must keep refusing commits rather than ack
	// against a log it cannot make durable.
	if _, err := s.Exec("INSERT INTO kd VALUES (3)"); err == nil {
		t.Fatal("commit acked on a failed WAL")
	}
}
