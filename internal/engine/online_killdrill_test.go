package engine

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The online-build kill drill: a child process runs a DML storm plus a
// CREATE INDEX ... ONLINE / DROP INDEX loop and is SIGKILLed at random
// points — including mid-backfill, mid-catch-up and mid-publish. After
// recovery the invariants are:
//
//  1. the directory opens cleanly (a half-built index never wedges
//     recovery);
//  2. no catalog entry is left Building — open drops crash residue;
//  3. every index file on disk is referenced by the catalog and every
//     catalog index has its file (no orphans either way);
//  4. durability — if the child acked a CREATE (ack written only after
//     Exec returned), the index exists, fully published.

const (
	onlineDrillDirEnv  = "ONLINE_KILL_DRILL_DIR"
	onlineDrillBaseEnv = "ONLINE_KILL_DRILL_BASE"
)

// TestOnlineBuildChildMain is the child half: insert storm + online
// index build/drop loop, until killed.
func TestOnlineBuildChildMain(t *testing.T) {
	dir := os.Getenv(onlineDrillDirEnv)
	if dir == "" {
		t.Skip("re-exec child of TestOnlineBuildKillDrill")
	}
	base, err := strconv.ParseInt(os.Getenv(onlineDrillBaseEnv), 10, 64)
	if err != nil {
		fmt.Printf("CHILD_ERR bad base: %v\n", err)
		os.Exit(3)
	}
	db, err := Open(Config{Dir: dir, PoolPages: 128})
	if err != nil {
		fmt.Printf("CHILD_ERR open: %v\n", err)
		os.Exit(3)
	}
	ack, err := os.OpenFile(filepath.Join(dir, "obacks.txt"),
		os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		fmt.Printf("CHILD_ERR ack file: %v\n", err)
		os.Exit(3)
	}
	fmt.Println("READY")
	for g := 0; g < 2; g++ {
		go func(g int) {
			s := db.NewSession()
			for n := int64(0); ; n++ {
				id := base + int64(g)*10_000_000 + n
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO obk VALUES (%d, %d)", id, id%101)); err != nil {
					fmt.Printf("CHILD_ERR insert: %v\n", err)
					os.Exit(4)
				}
			}
		}(g)
	}
	s := db.NewSession()
	for cycle := int64(0); ; cycle++ {
		if _, err := s.Exec("CREATE INDEX obk_a ON obk (a) ONLINE"); err != nil {
			fmt.Printf("CHILD_ERR create: %v\n", err)
			os.Exit(4)
		}
		fmt.Fprintf(ack, "C %d\n", cycle)
		// Ack the drop BEFORE executing it: once a drop may have started,
		// the index's absence after a crash is legitimate.
		fmt.Fprintf(ack, "d %d\n", cycle)
		if _, err := s.Exec("DROP INDEX obk_a"); err != nil {
			fmt.Printf("CHILD_ERR drop: %v\n", err)
			os.Exit(4)
		}
	}
}

// TestOnlineBuildKillDrill is the parent half: spawn, kill at a random
// point in the build/drop cycle, recover, verify.
func TestOnlineBuildKillDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db := openDir(t, dir, 128)
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE obk (id INTEGER PRIMARY KEY, a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO obk VALUES (%d, %d)", i, i%101)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(0xBEEF))
	const kills = 10
	for k := 0; k < kills; k++ {
		cmd := exec.Command(exe, "-test.run=^TestOnlineBuildChildMain$", "-test.v")
		cmd.Env = append(os.Environ(),
			onlineDrillDirEnv+"="+dir,
			fmt.Sprintf("%s=%d", onlineDrillBaseEnv, int64(k+1)*100_000_000))
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		readyCh := make(chan error, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if strings.Contains(line, "CHILD_ERR") {
					readyCh <- fmt.Errorf("child: %s", line)
					break
				}
				if strings.Contains(line, "READY") {
					readyCh <- nil
					break
				}
			}
			io.Copy(io.Discard, stdout)
		}()
		select {
		case err := <-readyCh:
			if err != nil {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("child never became ready")
		}
		time.Sleep(time.Duration(10+rng.Intn(250)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		err = cmd.Wait()
		if cmd.ProcessState != nil && cmd.ProcessState.Exited() {
			t.Fatalf("kill %d: child exited by itself: %v", k, err)
		}

		// Recover and check the invariants.
		rdb := openDir(t, dir, 128)
		ix := rdb.cat.Index("obk_a")
		if ix != nil && ix.Building {
			t.Fatalf("kill %d: Building index survived recovery", k)
		}
		// File ↔ catalog agreement, both directions.
		if ix != nil {
			if _, err := os.Stat(rdb.indexPath("obk_a")); err != nil {
				t.Fatalf("kill %d: published index lost its file: %v", k, err)
			}
		}
		referenced := map[string]bool{}
		for _, cix := range rdb.cat.Indexes() {
			referenced[rdb.indexPath(cix.Name)] = true
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "i_") && strings.HasSuffix(e.Name(), ".dat") {
				if !referenced[filepath.Join(dir, e.Name())] {
					t.Fatalf("kill %d: orphan index file %s survived recovery", k, e.Name())
				}
			}
		}
		// Durability: last complete ack "C <n>" means the CREATE INDEX
		// returned before the kill and no drop had started, so the index
		// must exist.
		lastAck := ""
		if raw, err := os.ReadFile(filepath.Join(dir, "obacks.txt")); err == nil {
			lines := strings.Split(string(raw), "\n")
			for i := len(lines) - 2; i >= 0; i-- { // last element is "" or torn
				if strings.HasPrefix(lines[i], "C ") || strings.HasPrefix(lines[i], "d ") {
					lastAck = lines[i][:1]
					break
				}
			}
		}
		if lastAck == "C" && ix == nil {
			t.Fatalf("kill %d: acked CREATE INDEX lost after recovery", k)
		}
		// The table itself must still be consistent enough to use, and a
		// fresh build must succeed whatever state the crash left.
		rs := rdb.NewSession()
		if ix == nil {
			if _, err := rs.Exec("CREATE INDEX obk_a ON obk (a)"); err != nil {
				t.Fatalf("kill %d: rebuild after recovery failed: %v", k, err)
			}
		}
		if _, err := rs.Exec("DROP INDEX obk_a"); err != nil {
			t.Fatalf("kill %d: drop after recovery failed: %v", k, err)
		}
		rs.Close()
		if err := rdb.Close(); err != nil {
			t.Fatal(err)
		}
		// Reset acks for the next round (the drop above invalidated them).
		os.Remove(filepath.Join(dir, "obacks.txt"))
	}
}
