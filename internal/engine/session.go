package engine

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/lock"
	"repro/internal/monitor"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

const (
	lockS  = lock.Shared
	lockIX = lock.Intent
	lockX  = lock.Exclusive
)

// ErrWriteConflict is returned (wrapped) when first-updater-wins
// conflict detection aborts a transaction: another transaction
// committed a newer version of a row this one tried to write.
var ErrWriteConflict = errors.New("engine: write conflict, transaction aborted")

// Session is one client connection. Sessions are not safe for
// concurrent use; open one per goroutine.
//
// Statements run under snapshot isolation: each statement (or each
// Begin..Commit transaction) captures an MVCC snapshot and sees exactly
// the versions committed when it was taken. Readers take only a shared
// table lock (DDL exclusion) — never row locks — and never block on
// writers. Writers take an intention lock on the table plus exclusive
// row locks on the versions they supersede, held until Commit or
// Rollback; write-write conflicts abort with ErrWriteConflict
// (first-updater-wins) and lock cycles with lock.ErrDeadlock.
type Session struct {
	db     *DB
	id     int64
	closed bool
	inTxn  bool
	// txnID is the MVCC transaction id, allocated lazily at the first
	// write of the transaction (0 = read-only so far).
	txnID uint64
	// snap is the current visibility snapshot: statement-scoped in
	// autocommit, transaction-scoped inside Begin..Commit.
	snap *snapshot
	// deltas accumulates the transaction's net row-count change per
	// table; applied to the heap counters only at commit, so aborted
	// inserts never show up in Rows().
	deltas map[string]int64
	// wtx is the WAL unit of the statement currently executing. It is
	// per-statement even inside a transaction: the WAL's physical
	// page-image undo cannot tolerate interleaved concurrent
	// transactions, so transaction atomicity comes from the MVCC commit
	// record (WALTxnCommit), not from WAL scoping.
	wtx *storage.WalTxn
	// batchExec selects the vectorized batch pipeline for SELECTs
	// (default). The row-at-a-time path is kept for comparison and as
	// the reference semantics; both produce identical results, tuple
	// counts and trace counts.
	batchExec bool
	// prof is the wait profiler of the currently executing statement,
	// non-nil only while a phase-2 flagged statement runs (Exec sets
	// and clears it; sessions execute one statement at a time).
	prof *storage.WaitProf
	// parallel is the maximum intra-query worker count for morsel-driven
	// plan subtrees; defaults to min(GOMAXPROCS, 8), adjustable with
	// SET PARALLEL n or SetParallel. 1 keeps execution serial.
	parallel int
}

// SetBatchExec switches the session between the vectorized batch
// execution pipeline (the default) and the row-at-a-time pipeline.
func (s *Session) SetBatchExec(on bool) { s.batchExec = on }

// maxSessionParallel caps SET PARALLEL; the executor enforces the same
// bound on its worker pool.
const maxSessionParallel = 64

// SetParallel sets the session's maximum intra-query parallel degree
// for morsel-driven plan subtrees. Values below 1 mean serial; values
// above the cap are clamped.
func (s *Session) SetParallel(n int) {
	if n < 1 {
		n = 1
	}
	if n > maxSessionParallel {
		n = maxSessionParallel
	}
	s.parallel = n
}

// Parallel reports the session's current parallel degree.
func (s *Session) Parallel() int { return s.parallel }

// defaultParallel is the issue-specified session default:
// min(GOMAXPROCS, 8) workers.
func defaultParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Begin starts a transaction: one snapshot covers all its statements
// and locks are held until Commit or Rollback. Nested BEGIN is an
// error — the already-open transaction is left untouched.
func (s *Session) Begin() error {
	if s.inTxn {
		return fmt.Errorf("engine: BEGIN inside an open transaction")
	}
	s.inTxn = true
	return nil
}

// Commit ends the transaction: the MVCC commit record is appended and
// made durable (parking on the group-commit flusher), the transaction
// leaves the in-flight set — making its versions visible to new
// snapshots — and its locks are released. A durability failure aborts
// the transaction instead: its versions stay invisible.
func (s *Session) Commit() error {
	err := s.finishWalTxn(false)
	if cerr := s.endTxn(err == nil); cerr != nil && err == nil {
		err = cerr
	}
	s.inTxn = false
	return err
}

// Rollback aborts the transaction: its id joins the aborted set, so
// every version it wrote is invisible to all snapshots — no physical
// undo happens; vacuum reclaims the versions later. Locks are released.
func (s *Session) Rollback() {
	s.finishWalTxn(false)
	s.endTxn(false)
	s.inTxn = false
}

// endTxn finishes the session's MVCC scope: commit or abort the open
// transaction id, apply (or drop) its row-count deltas, release its
// snapshot and all its locks. Safe to call with no transaction open —
// it then just releases snapshot and locks (read-only statement end).
func (s *Session) endTxn(commit bool) error {
	db := s.db
	var err error
	if s.txnID != 0 {
		if commit {
			// The commit record must be durable before the transaction
			// leaves the in-flight set: once visible, its effects must
			// survive a crash.
			err = db.wal.CommitTxn(s.txnID, true)
		}
		if commit && err == nil {
			db.txns.commit(s.txnID)
			for t, d := range s.deltas {
				if h := db.handle(t); h != nil && d != 0 {
					h.heap.AdjustRows(d)
					db.syncMeta(h)
				}
			}
		} else {
			db.txns.abort(s.txnID)
		}
		s.txnID = 0
	}
	s.deltas = nil
	if s.snap != nil {
		db.txns.release(s.snap)
		s.snap = nil
	}
	db.locks.ReleaseAll(s.id)
	return err
}

// ensureSnapshot captures the session's visibility snapshot if none is
// active (first statement of a transaction, or any autocommit
// statement). Called after the statement's table locks are granted.
func (s *Session) ensureSnapshot() *snapshot {
	if s.snap == nil {
		s.snap = s.db.txns.capture(s.txnID)
	}
	return s.snap
}

// ensureTxnID allocates the MVCC transaction id at the first write.
func (s *Session) ensureTxnID() uint64 {
	if s.txnID == 0 {
		s.txnID = s.db.txns.begin()
		if s.snap != nil {
			s.snap.setSelf(s.txnID)
		}
		if s.wtx != nil {
			s.wtx.SetOwner(s.txnID)
		}
	}
	return s.txnID
}

// addDelta accumulates a table's net row-count change.
func (s *Session) addDelta(table string, d int64) {
	if s.deltas == nil {
		s.deltas = map[string]int64{}
	}
	s.deltas[strings.ToLower(table)] += d
}

// ensureWalTxn opens the statement's WAL unit if none is active.
// Called before the statement's table locks are taken: the WAL's DDL
// gate is ordered strictly before table locks, everywhere.
func (s *Session) ensureWalTxn() {
	if s.wtx == nil {
		s.wtx = s.db.wal.Begin()
		s.wtx.SetOwner(s.txnID)
	}
}

// finishWalTxn closes the statement's WAL unit, logging the
// after-images and finish record; wait additionally blocks until they
// are durable. Must precede any lock release.
func (s *Session) finishWalTxn(wait bool) error {
	t := s.wtx
	if t == nil {
		return nil
	}
	s.wtx = nil
	return t.Commit(wait)
}

// NewSession opens a session.
func (db *DB) NewSession() *Session {
	cur := db.currentSessions.Add(1)
	for {
		peak := db.peakSessions.Load()
		if cur <= peak || db.peakSessions.CompareAndSwap(peak, cur) {
			break
		}
	}
	return &Session{db: db, id: db.nextSession.Add(1), batchExec: true, parallel: defaultParallel()}
}

// runPrepared executes a compiled plan in the session's execution mode
// and returns the materialized result rows.
func (s *Session) runPrepared(prep *executor.Prepared, ctx *executor.Ctx) ([]sqltypes.Row, error) {
	ctx.Parallel = s.parallel
	defer func() {
		// Parallel-execution telemetry lands in the engine counters even
		// when the statement fails after fanning out.
		if ctx.ParallelRuns > 0 {
			s.db.parallelQueries.Add(1)
			s.db.morselsDispatched.Add(ctx.Morsels)
			s.db.parallelWorkerNanos.Add(ctx.WorkerNanos)
		}
	}()
	if s.batchExec {
		it, err := prep.RunBatch(executorStorage{db: s.db, prof: s.prof, snap: s.snap}, ctx)
		if err != nil {
			return nil, err
		}
		return executor.CollectBatches(it)
	}
	it, err := prep.Run(executorStorage{db: s.db, prof: s.prof, snap: s.snap}, ctx)
	if err != nil {
		return nil, err
	}
	return executor.Collect(it)
}

// Close releases the session. An open transaction is aborted, as with
// Rollback: its versions become invisible.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.finishWalTxn(false)
	s.endTxn(false)
	s.db.currentSessions.Add(-1)
}

// Result is the outcome of one statement.
type Result struct {
	Columns      []string
	Rows         []sqltypes.Row
	RowsAffected int64
	// Plan is the optimizer plan for SELECTs (nil for other
	// statements); shared with the plan cache — read-only.
	Plan *optimizer.Plan
}

// Exec parses, plans and executes one SQL statement. This is the
// monitored statement path of the paper's Figure 2: wallclock start,
// parser sensor, optimizer sensor, execution cost sensor, wallclock
// stop.
func (s *Session) Exec(sql string) (*Result, error) {
	db := s.db
	db.statements.Add(1)

	h := db.mon.StartStatement(sql)

	// Phase 2: when the flagger (or a manual override) has flagged this
	// statement, attach a wait profiler for this execution. With zero
	// flagged statements Profiled is a single atomic load and the whole
	// block is skipped.
	var (
		dispatchStart           time.Time
		preIO, preFsync, prePin int64
		execNs                  int64
	)
	if h.Profiled() {
		s.prof = profPool.Get().(*storage.WaitProf)
		s.prof.Reset()
		defer func() {
			// Runs after the deferred lock release and (in autocommit)
			// the WAL durability wait: every wait source has landed and
			// Finish has latched the wall time on all paths.
			io, fsync, pin := s.prof.Totals()
			h.AddWaits(execNs, io, fsync, pin)
			h.FlushWaits()
			if s.wtx != nil {
				s.wtx.SetProf(nil)
			}
			profPool.Put(s.prof)
			s.prof = nil
		}()
	}

	parsed, err := sqlparser.ParseNormalized(sql)
	if err != nil {
		h.Finish(0, 0, 0, err)
		return nil, err
	}
	stmt := parsed.Stmt
	tables := sqlparser.ReferencedTables(stmt)
	h.Parsed(stmt.Kind(), tables)

	var isDML, isDDL, isOnlineDDL bool
	switch st := stmt.(type) {
	case *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt:
		isDML = true
	case *sqlparser.CreateIndexStmt:
		// CREATE INDEX ... ONLINE must not run behind the upfront
		// exclusive gate or the table X lock — the whole point is that
		// DML proceeds during the build. The builder takes its own
		// locks per chunk and the gate only for the final catch-up.
		if st.Online {
			isOnlineDDL = true
		} else {
			isDDL = true
		}
	case *sqlparser.CreateTableStmt, *sqlparser.DropTableStmt,
		*sqlparser.DropIndexStmt, *sqlparser.ModifyStmt:
		isDDL = true
	}

	var ddlRelease func()
	if isDDL || isOnlineDDL {
		// DDL implicitly commits the open transaction, then (offline
		// DDL) runs alone behind the WAL's exclusive gate: no logged
		// statement spans a file rebuild, so recovery can never replay a
		// stale pre-rebuild image onto the new file. The gate is
		// acquired before any table lock, matching the global
		// gate-before-locks order. An online build takes neither the
		// gate nor upfront locks — the builder takes its own per chunk.
		if err := s.finishWalTxn(false); err != nil {
			h.Finish(0, 0, 0, err)
			return nil, err
		}
		if err := s.endTxn(true); err != nil {
			s.inTxn = false
			h.Finish(0, 0, 0, err)
			return nil, err
		}
		s.inTxn = false
		if isDDL {
			ddlRelease = db.wal.BeginExclusive()
			defer func() {
				if ddlRelease != nil {
					ddlRelease()
				}
			}()
		}
	} else if isDML {
		// The statement's WAL unit (and with it the DDL gate's read
		// side) is opened before the first table lock — same global
		// order. SELECTs need no WAL unit: MVCC reads never write.
		s.ensureWalTxn()
	}
	if s.prof != nil && s.wtx != nil {
		// Commit-path waits (after-image page gets, the group-commit
		// durability wait) attribute to this statement's profiler. The
		// deferred flush detaches it, so a transaction outliving the
		// statement never writes into a recycled profiler.
		s.wtx.SetProf(s.prof)
	}

	// Table-lock acquisition, in sorted order to reduce deadlocks.
	// Readers take Shared (DDL exclusion only — they never block on or
	// behind writers), DML takes Intent, DDL takes Exclusive. Virtual
	// tables are lock-free snapshots. Row-level write locks are taken
	// inside the DML executors, per matched row.
	mode := lockS
	if isDML {
		mode = lockIX
	} else if isDDL {
		mode = lockX
	}
	var locked []string
	for _, t := range tables {
		if isOnlineDDL {
			break // the online builder takes its own short-lived locks
		}
		key := strings.ToLower(t)
		if db.virtualTable(key) != nil {
			continue
		}
		locked = append(locked, key)
	}
	sort.Strings(locked)
	for _, t := range locked {
		var lockStart time.Time
		if s.prof != nil {
			lockStart = time.Now()
		}
		err := db.locks.Acquire(s.id, t, mode)
		if s.prof != nil {
			h.AddLockWait(time.Since(lockStart))
		}
		if err != nil {
			// A deadlock victim aborts its whole transaction: versions
			// it wrote become invisible. The WAL finish lands before
			// the lock release so no later statement can commit over a
			// still-open one.
			s.finishWalTxn(false)
			s.endTxn(false)
			s.inTxn = false
			h.Finish(0, 0, 0, err)
			return nil, err
		}
	}
	if !isDDL && !isOnlineDDL {
		// The visibility snapshot: captured after the table locks so a
		// schema change cannot slide under it. One snapshot per
		// statement in autocommit; per transaction inside Begin..Commit.
		s.ensureSnapshot()
	}

	if s.prof != nil {
		// The dispatch window: executor self-time is its wall minus the
		// waits the profiler attributes inside it. Commit-path waits
		// accrue after the window closes and stay pure wait time.
		preIO, preFsync, prePin = s.prof.Totals()
		dispatchStart = time.Now()
	}
	var res *Result
	switch st := stmt.(type) {
	case *sqlparser.SelectStmt:
		res, err = s.execSelect(st, parsed, &h)
	case *sqlparser.ExplainStmt:
		res, err = s.execExplain(sql, st, parsed, &h)
	case *sqlparser.CreateTableStmt:
		res, err = db.execCreateTable(st)
	case *sqlparser.DropTableStmt:
		res, err = db.execDropTable(st)
	case *sqlparser.CreateIndexStmt:
		if st.Online {
			res, err = db.execCreateIndexOnline(st)
		} else {
			res, err = db.execCreateIndex(st)
		}
	case *sqlparser.DropIndexStmt:
		res, err = db.execDropIndex(st)
	case *sqlparser.ModifyStmt:
		res, err = db.execModify(st)
	case *sqlparser.CreateStatisticsStmt:
		res, err = db.execCreateStatistics(st)
	case *sqlparser.InsertStmt:
		res, err = s.execInsert(st, parsed.Params, &h)
	case *sqlparser.UpdateStmt:
		res, err = s.execUpdate(st, parsed.Params, &h)
	case *sqlparser.DeleteStmt:
		res, err = s.execDelete(st, parsed.Params, &h)
	case *sqlparser.SetStmt:
		res, err = s.execSet(st)
	default:
		err = fmt.Errorf("engine: unsupported statement %T", stmt)
	}
	if s.prof != nil {
		dwall := int64(time.Since(dispatchStart))
		io1, fs1, pin1 := s.prof.Totals()
		execNs = dwall - ((io1 - preIO) + (fs1 - preFsync) + (pin1 - prePin))
		if execNs < 0 {
			execNs = 0
		}
	}
	if !s.inTxn {
		// Autocommit: close the statement's WAL unit, then commit (or
		// abort) the statement's MVCC transaction. The commit record's
		// durability wait covers the statement's log records; a pure
		// read has no transaction id and just drops snapshot and locks.
		if ferr := s.finishWalTxn(false); ferr != nil && err == nil {
			err = ferr
		}
		if eerr := s.endTxn(err == nil); eerr != nil && err == nil {
			err = eerr
		}
	} else {
		if ferr := s.finishWalTxn(false); ferr != nil && err == nil {
			err = ferr
		}
		if err != nil && isDML {
			// A failed write statement aborts the whole transaction:
			// with no statement-level undo, the abort is what keeps its
			// partial effects invisible.
			s.endTxn(false)
			s.inTxn = false
		}
	}
	if isDDL && err == nil {
		// DDL bypasses the log (its file rebuilds are made durable
		// wholesale): checkpoint under the exclusive gate so the new
		// files and catalog hit disk and the redo scan start moves past
		// every pre-DDL record.
		err = db.Checkpoint()
	}
	if ddlRelease != nil {
		ddlRelease()
		ddlRelease = nil
	}
	if err != nil {
		h.Finish(0, 0, 0, err)
		return nil, err
	}
	if _, isSel := stmt.(*sqlparser.SelectStmt); !isSel {
		// DDL/DML sensors: execCreate*/execInsert record their own
		// costs through the handle when meaningful; here we only stop
		// the wallclock for statements that did not.
		h.Finish(res.RowsAffected, 0, int64(len(res.Rows)), nil)
	}
	return res, nil
}

// execSet applies a session configuration statement (SET <name> <n>).
func (s *Session) execSet(st *sqlparser.SetStmt) (*Result, error) {
	switch st.Name {
	case "parallel":
		s.SetParallel(int(st.Value))
	case "batch_exec":
		s.SetBatchExec(st.Value != 0)
	default:
		return nil, fmt.Errorf("engine: unknown SET option %q", st.Name)
	}
	return &Result{}, nil
}

// Query is Exec restricted to statements returning rows.
func (s *Session) Query(sql string) (*Result, error) { return s.Exec(sql) }

func (s *Session) execSelect(st *sqlparser.SelectStmt, parsed *sqlparser.ParseResult, h *monitor.Handle) (*Result, error) {
	db := s.db
	entry, ok := db.plans.get(parsed.Normalized)
	if !ok {
		t0 := time.Now()
		plan, err := optimizer.PlanSelect(st, db.catalogView(), optimizer.Options{Params: parsed.Params})
		if err != nil {
			return nil, err
		}
		prep, err := executor.Compile(plan)
		if err != nil {
			return nil, err
		}
		entry = &planEntry{plan: plan, prep: prep, optTime: time.Since(t0)}
		db.plans.put(parsed.Normalized, entry)
		h.Optimized(plan.Est.CPU, plan.Est.IO, plan.Est.Rows, plan.Attributes, plan.UsedIndexes, entry.optTime)
	} else {
		// Cache hit: the optimizer was bypassed entirely; estimates
		// come from the cached plan.
		h.Optimized(entry.plan.Est.CPU, entry.plan.Est.IO, entry.plan.Est.Rows,
			entry.plan.Attributes, entry.plan.UsedIndexes, 0)
	}

	ctx := executor.Ctx{Params: parsed.Params}
	io0 := db.pool.Stats()
	rows, err := s.runPrepared(entry.prep, &ctx)
	io1 := db.pool.Stats()
	ioDelta := (io1.Misses - io0.Misses) + (io1.DiskWrite - io0.DiskWrite)
	h.Finish(ctx.Tuples, ioDelta, int64(len(rows)), err)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(entry.prep.Columns()))
	for i, c := range entry.prep.Columns() {
		cols[i] = c.Name
	}
	return &Result{Columns: cols, Rows: rows, Plan: entry.plan}, nil
}

// execExplain handles the SQL form of EXPLAIN: it plans the embedded
// SELECT (optionally admitting virtual indexes with WHATIF) and
// returns the rendered plan as rows. With ANALYZE it also executes the
// statement under a per-operator trace.
func (s *Session) execExplain(sql string, st *sqlparser.ExplainStmt, parsed *sqlparser.ParseResult, h *monitor.Handle) (*Result, error) {
	if st.Analyze {
		if st.WhatIf {
			return nil, fmt.Errorf("engine: EXPLAIN WHATIF ANALYZE is not supported (virtual indexes cannot be executed)")
		}
		return s.execExplainAnalyze(sql, st, parsed, h)
	}
	plan, err := optimizer.PlanSelect(st.Select, s.db.catalogView(), optimizer.Options{
		Params:             parsed.Params,
		WithVirtualIndexes: st.WhatIf,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}, Plan: plan}
	for _, line := range strings.Split(strings.TrimRight(plan.String(), "\n"), "\n") {
		res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewText(line)})
	}
	res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewText(fmt.Sprintf(
		"estimated: cpu=%.0f io=%.0f rows=%.0f total=%.1f",
		plan.Est.CPU, plan.Est.IO, plan.Est.Rows, plan.Est.Total()))})
	return res, nil
}

// execExplainAnalyze executes the embedded SELECT with the per-operator
// span collector attached and renders the plan annotated with actual
// rows, inclusive time and Next() calls next to the estimates. The
// trace is also pushed into the monitor's trace ring, where ima_spans
// exposes it over SQL. The plan cache is bypassed: the point of
// ANALYZE is to observe a full plan+execute cycle.
func (s *Session) execExplainAnalyze(sql string, st *sqlparser.ExplainStmt, parsed *sqlparser.ParseResult, h *monitor.Handle) (*Result, error) {
	db := s.db
	t0 := time.Now()
	plan, err := optimizer.PlanSelect(st.Select, db.catalogView(), optimizer.Options{Params: parsed.Params})
	if err != nil {
		return nil, err
	}
	prep, err := executor.Compile(plan)
	if err != nil {
		return nil, err
	}
	optTime := time.Since(t0)
	h.Optimized(plan.Est.CPU, plan.Est.IO, plan.Est.Rows, plan.Attributes, plan.UsedIndexes, optTime)

	tr := prep.NewTrace()
	ctx := executor.Ctx{Params: parsed.Params, Trace: tr}
	io0 := db.pool.Stats()
	start := time.Now()
	rows, err := s.runPrepared(prep, &ctx)
	wall := time.Since(start)
	io1 := db.pool.Stats()
	ioDelta := (io1.Misses - io0.Misses) + (io1.DiskWrite - io0.DiskWrite)
	h.Finish(ctx.Tuples, ioDelta, int64(len(rows)), err)
	if err != nil {
		return nil, err
	}

	metas := prep.SpanMetas()
	selfNs := executor.SelfTimes(metas, tr.Counts)
	if db.mon != nil && db.mon.Enabled() {
		spans := make([]monitor.TraceSpan, len(metas))
		for i, m := range metas {
			c := tr.Counts[i]
			spans[i] = monitor.TraceSpan{
				Op: m.Kind, Detail: m.Detail, Depth: m.Depth, EstRows: m.EstRows,
				Rows: c.Rows, Nanos: c.Nanos, SelfNanos: selfNs[i], Calls: c.Calls,
			}
		}
		db.mon.RecordTrace(monitor.Trace{
			Hash:  monitor.HashStatement(sql),
			Text:  sql,
			Start: start,
			Wall:  wall,
			Rows:  int64(len(rows)),
			Spans: spans,
		})
	}

	res := &Result{Columns: []string{"plan"}, Plan: plan}
	for i, m := range metas {
		c := tr.Counts[i]
		line := strings.Repeat("  ", m.Depth) + m.Kind
		if m.Detail != "" {
			line += " " + m.Detail
		}
		line += fmt.Sprintf(" (est rows=%.0f) (actual rows=%d time=%s self=%s nexts=%d)",
			m.EstRows, c.Rows, time.Duration(c.Nanos).Round(time.Microsecond),
			time.Duration(selfNs[i]).Round(time.Microsecond), c.Calls)
		res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewText(line)})
	}
	res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewText(fmt.Sprintf(
		"estimated: cpu=%.0f io=%.0f rows=%.0f total=%.1f",
		plan.Est.CPU, plan.Est.IO, plan.Est.Rows, plan.Est.Total()))})
	res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewText(fmt.Sprintf(
		"actual: wall=%s opt=%s rows=%d tuples=%d io=%d",
		wall.Round(time.Microsecond), optTime.Round(time.Microsecond),
		len(rows), ctx.Tuples, ioDelta))})
	return res, nil
}

// Explain plans a SELECT without executing it and returns the plan,
// optionally admitting virtual indexes (what-if mode).
func (s *Session) Explain(sql string, withVirtual bool) (*optimizer.Plan, error) {
	parsed, err := sqlparser.ParseNormalized(sql)
	if err != nil {
		return nil, err
	}
	st, ok := parsed.Stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT only")
	}
	return optimizer.PlanSelect(st, s.db.catalogView(), optimizer.Options{
		Params:             parsed.Params,
		WithVirtualIndexes: withVirtual,
	})
}

// planEntry is one cached prepared statement.
type planEntry struct {
	plan    *optimizer.Plan
	prep    *executor.Prepared
	optTime time.Duration
}

// planCache is a small LRU over normalized statement text. The warm
// cache is what collapses per-statement cost for repeated statement
// shapes — the effect behind the paper's Figure 5.
type planCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List
}

type planCacheEntry struct {
	key   string
	entry *planEntry
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, m: map[string]*list.Element{}, lru: list.New()}
}

func (c *planCache) get(key string) (*planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planCacheEntry).entry, true
}

func (c *planCache) put(key string, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*planCacheEntry).entry = e
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&planCacheEntry{key: key, entry: e})
	c.m[key] = el
	for len(c.m) > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.m, last.Value.(*planCacheEntry).key)
	}
}

// Invalidate drops every cached plan; DDL and statistics changes call
// it so new plans see the new physical design.
func (c *planCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]*list.Element{}
	c.lru = list.New()
}

// InvalidatePlans clears the plan cache (exported for the analyzer,
// which changes the physical design out-of-band).
func (db *DB) InvalidatePlans() { db.plans.invalidate() }

// catalogView adapts the DB to the optimizer's CatalogView.
func (db *DB) catalogView() optimizer.CatalogView { return catView{db} }

type catView struct{ db *DB }

func (v catView) Table(name string) *catalog.Table {
	if vt := v.db.virtualTable(name); vt != nil {
		return vt.meta
	}
	return v.db.cat.Table(name)
}

func (v catView) TableIndexes(name string, withVirtual bool) []*catalog.Index {
	return v.db.cat.TableIndexes(name, withVirtual)
}

func (v catView) Histogram(table, col string) *catalog.Histogram {
	return v.db.cat.Histogram(table, col)
}

func (v catView) TableStats(name string) (optimizer.TableStats, bool) {
	if vt := v.db.virtualTable(name); vt != nil {
		return optimizer.TableStats{Rows: vt.meta.Rows, Pages: 1}, true
	}
	h := v.db.handle(name)
	if h == nil {
		return optimizer.TableStats{}, false
	}
	st := optimizer.TableStats{Rows: h.heap.Rows(), Pages: h.heap.Pages()}
	if h.primary != nil {
		if ht, err := h.primary.Height(); err == nil {
			st.BTreeHeight = ht
		}
	}
	return st, true
}

func (v catView) IndexStats(name string) (optimizer.IndexStats, bool) {
	ix := v.db.cat.Index(name)
	if ix == nil || ix.Virtual {
		return optimizer.IndexStats{}, false
	}
	h := v.db.handle(ix.Table)
	if h == nil {
		return optimizer.IndexStats{}, false
	}
	bt := h.indexes[strings.ToLower(name)]
	if bt == nil {
		return optimizer.IndexStats{}, false
	}
	height, err := bt.Height()
	if err != nil {
		return optimizer.IndexStats{}, false
	}
	return optimizer.IndexStats{Pages: bt.File().Pages(), Height: height}, true
}
