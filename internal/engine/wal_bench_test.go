package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Group-commit benchmarks: durable single-row transactions, with and
// without the batching window. Committers write disjoint tables (table
// locks would otherwise serialize them ahead of the log) so the only
// shared resource is the WAL — which is the thing under test. The
// extra fsyncs/txn metric is the paper-relevant number: group commit
// amortizes one fsync over every committer parked in the window.

func benchCommit(b *testing.B, interval time.Duration, par int) {
	db, err := Open(Config{Dir: b.TempDir(), PoolPages: 2048, GroupCommitInterval: interval})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	for g := 0; g < par; g++ {
		if _, err := s.Exec(fmt.Sprintf("CREATE TABLE bt%d (id INTEGER PRIMARY KEY)", g)); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	st0 := db.Stats()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				// Autocommit: one durable transaction per statement.
				if _, err := sess.Exec(fmt.Sprintf("INSERT INTO bt%d VALUES (%d)", g, n)); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	st1 := db.Stats()
	b.ReportMetric(float64(st1.WALFsyncs-st0.WALFsyncs)/float64(b.N), "fsyncs/txn")
}

func BenchmarkCommitNoGroupParallel1(b *testing.B)  { benchCommit(b, -1, 1) }
func BenchmarkCommitNoGroupParallel16(b *testing.B) { benchCommit(b, -1, 16) }
func BenchmarkCommitGroupParallel1(b *testing.B)    { benchCommit(b, time.Millisecond, 1) }
func BenchmarkCommitGroupParallel16(b *testing.B)   { benchCommit(b, time.Millisecond, 16) }
