package engine

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

func (db *DB) execCreateTable(st *sqlparser.CreateTableStmt) (*Result, error) {
	if db.cat.Table(st.Name) != nil || db.virtualTable(st.Name) != nil {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("engine: table %s already exists", st.Name)
	}
	if len(st.Columns) == 0 {
		return nil, fmt.Errorf("engine: table %s has no columns", st.Name)
	}
	var cols []sqltypes.Column
	var pk []string
	seen := map[string]bool{}
	for _, c := range st.Columns {
		key := strings.ToLower(c.Name)
		if seen[key] {
			return nil, fmt.Errorf("engine: duplicate column %s", c.Name)
		}
		seen[key] = true
		cols = append(cols, sqltypes.Column{Name: c.Name, Type: c.Type})
		if c.PrimaryKey {
			pk = append(pk, c.Name)
		}
	}
	if len(st.PrimaryKey) > 0 {
		if len(pk) > 0 {
			return nil, fmt.Errorf("engine: duplicate PRIMARY KEY specification")
		}
		pk = st.PrimaryKey
	}
	schema := sqltypes.NewSchema(cols...)
	for _, c := range pk {
		if schema.ColIndex(c) < 0 {
			return nil, fmt.Errorf("engine: primary key column %q not in table", c)
		}
	}
	meta := &catalog.Table{
		Name:       st.Name,
		Schema:     schema,
		Structure:  catalog.Heap, // Ingres default
		PrimaryKey: pk,
		MainPages:  1,
	}
	if err := db.cat.AddTable(meta); err != nil {
		return nil, err
	}
	if err := db.openTable(meta); err != nil {
		return nil, err
	}
	// A primary key is enforced through an automatically created
	// unique index (the storage structure stays HEAP until MODIFY, as
	// in Ingres).
	if len(pk) > 0 {
		_, err := db.execCreateIndex(&sqlparser.CreateIndexStmt{
			Name:    "pk_" + strings.ToLower(st.Name),
			Table:   st.Name,
			Columns: pk,
			Unique:  true,
		})
		if err != nil {
			return nil, err
		}
	}
	db.plans.invalidate()
	return &Result{}, nil
}

func (db *DB) execDropTable(st *sqlparser.DropTableStmt) (*Result, error) {
	h := db.handle(st.Name)
	if h == nil {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("engine: table %s does not exist", st.Name)
	}
	// Catalog first: once the entry is gone (and saved), a crash at any
	// later point leaves at worst orphan files, which the open-time
	// sweep removes — never a catalog pointing at missing files.
	if err := db.cat.DropTable(st.Name); err != nil {
		return nil, err
	}
	db.mu.Lock()
	delete(db.tables, strings.ToLower(st.Name))
	db.mu.Unlock()
	db.plans.invalidate()
	var errs []error
	if err := h.heap.File().Remove(); err != nil {
		errs = append(errs, err)
	}
	if h.primary != nil {
		if err := h.primary.File().Remove(); err != nil {
			errs = append(errs, err)
		}
	}
	for _, bt := range h.indexes {
		if err := bt.File().Remove(); err != nil {
			errs = append(errs, err)
		}
	}
	return &Result{}, errors.Join(errs...)
}

func (db *DB) execCreateIndex(st *sqlparser.CreateIndexStmt) (*Result, error) {
	h := db.handle(st.Table)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	ix := &catalog.Index{
		Name:    st.Name,
		Table:   st.Table,
		Columns: st.Columns,
		Unique:  st.Unique,
		Virtual: st.Virtual,
	}
	if err := db.cat.AddIndex(ix); err != nil {
		return nil, err
	}
	if st.Virtual {
		// Virtual indexes live only in the catalog: zero build cost,
		// zero storage — the optimizer may cost them in what-if mode.
		db.plans.invalidate()
		return &Result{}, nil
	}
	bt, err := db.buildIndexStorage(h, st.Name, st.Columns, st.Unique)
	if err != nil {
		// Unified rollback: no failure may leak the on-disk file or the
		// catalog entry (historically every build-loop error except the
		// duplicate-key path did both). buildIndexStorage removed the
		// file; drop the entry and flush plans that might have seen it.
		if derr := db.cat.DropIndex(st.Name); derr != nil {
			err = errors.Join(err, derr)
		}
		db.plans.invalidate()
		return nil, err
	}
	db.mu.Lock()
	h.indexes[strings.ToLower(st.Name)] = bt
	db.mu.Unlock()
	db.plans.invalidate()
	return &Result{}, nil
}

// buildIndexStorage creates the index file and backfills it with a
// blocking scan of the base table (the caller holds the table's X lock
// via the DDL path). On any error the file — and every pool frame
// backing it — is removed before returning, so the caller only has the
// catalog entry left to roll back.
func (db *DB) buildIndexStorage(h *tableHandle, name string, cols []string, unique bool) (_ *storage.BTree, err error) {
	xf, err := db.newFile(db.indexPath(name))
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			if rerr := xf.Remove(); rerr != nil {
				err = errors.Join(err, rerr)
			}
		}
	}()
	bt, err := storage.CreateBTree(xf)
	if err != nil {
		return nil, err
	}
	// Every heap version gets an entry — scans filter by visibility and
	// vacuum removes entries with the versions, exactly as on the DML
	// path. Uniqueness is verified afterwards over live versions only.
	it := h.heap.Iter()
	for {
		tid, rec, ok, nerr := it.Next()
		if nerr != nil {
			return nil, nerr
		}
		if !ok {
			break
		}
		if len(rec) < storage.VersionHeaderSize {
			return nil, fmt.Errorf("engine: unversioned record %v in %s", tid, h.meta.Name)
		}
		row, derr := sqltypes.DecodeRow(storage.VersionPayload(rec))
		if derr != nil {
			return nil, derr
		}
		key, kerr := keyFor(h.meta.Schema, row, cols)
		if kerr != nil {
			return nil, kerr
		}
		if perr := bt.Put(tidSuffix(key, tid), tidBytes(tid)); perr != nil {
			return nil, perr
		}
	}
	if unique {
		if err := db.verifyUniqueLive(h, bt, name); err != nil {
			return nil, err
		}
	}
	return bt, nil
}

func (db *DB) execDropIndex(st *sqlparser.DropIndexStmt) (*Result, error) {
	ix := db.cat.Index(st.Name)
	if ix == nil {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("engine: index %s does not exist", st.Name)
	}
	if !ix.Virtual {
		h := db.handle(ix.Table)
		if h != nil {
			if bt := h.indexes[strings.ToLower(st.Name)]; bt != nil {
				if err := bt.File().Remove(); err != nil {
					return nil, err
				}
				db.mu.Lock()
				delete(h.indexes, strings.ToLower(st.Name))
				db.mu.Unlock()
			}
		}
	}
	if err := db.cat.DropIndex(st.Name); err != nil {
		return nil, err
	}
	db.plans.invalidate()
	return &Result{}, nil
}

func (db *DB) execModify(st *sqlparser.ModifyStmt) (*Result, error) {
	h := db.handle(st.Table)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	switch st.Structure {
	case "BTREE":
		keyCols := st.KeyCols
		if len(keyCols) == 0 {
			keyCols = h.meta.PrimaryKey
		}
		if err := db.rebuildTable(h, catalog.BTree, keyCols); err != nil {
			return nil, err
		}
	case "HEAP":
		if err := db.rebuildTable(h, catalog.Heap, nil); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: unsupported storage structure %q", st.Structure)
	}
	db.plans.invalidate()
	return &Result{RowsAffected: h.heap.Rows()}, nil
}

// statisticsSampleCap bounds how many rows CREATE STATISTICS reads per
// table; sampling keeps statistics collection cheap on big tables.
const statisticsSampleCap = 200000

func (db *DB) execCreateStatistics(st *sqlparser.CreateStatisticsStmt) (*Result, error) {
	h := db.handle(st.Table)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	cols := st.Columns
	if len(cols) == 0 {
		cols = h.meta.Schema.Names()
	}
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idxs[i] = h.meta.Schema.ColIndex(c)
		if idxs[i] < 0 {
			return nil, fmt.Errorf("engine: unknown column %s.%s", st.Table, c)
		}
	}
	samples := make([][]sqltypes.Value, len(cols))
	sn := db.txns.realitySnapshot()
	it := h.heap.Iter()
	n := 0
	for n < statisticsSampleCap {
		_, rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(rec) < storage.VersionHeaderSize {
			return nil, fmt.Errorf("engine: unversioned record in %s", st.Table)
		}
		if !sn.visible(storage.ReadVersionHeader(rec)) {
			continue
		}
		row, err := sqltypes.DecodeRow(storage.VersionPayload(rec))
		if err != nil {
			return nil, err
		}
		for i, ci := range idxs {
			samples[i] = append(samples[i], row[ci])
		}
		n++
	}
	for i, c := range cols {
		hgram := catalog.BuildHistogram(h.meta.Name, h.meta.Schema.Columns[idxs[i]].Name, samples[i], catalog.DefaultBuckets)
		// Scale counts up when the scan was truncated by the sample cap.
		if total := h.heap.Rows(); total > int64(n) && n > 0 {
			scale := float64(total) / float64(n)
			hgram.Rows = int64(float64(hgram.Rows) * scale)
			hgram.Nulls = int64(float64(hgram.Nulls) * scale)
			for bi := range hgram.Buckets {
				hgram.Buckets[bi].Rows = int64(float64(hgram.Buckets[bi].Rows) * scale)
			}
		}
		if err := db.cat.SetHistogram(hgram); err != nil {
			return nil, err
		}
		_ = c
	}
	db.plans.invalidate()
	return &Result{RowsAffected: int64(len(cols))}, nil
}
