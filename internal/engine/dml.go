package engine

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/lock"
	"repro/internal/monitor"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// MVCC write protocol. Every DML statement runs in five phases:
//
//  1. Snapshot scan: matching (tid, row) pairs are collected against
//     the statement's snapshot, without any row lock.
//  2. Row locks: an exclusive row lock is taken per matched version, in
//     TID order (the heap scan already yields ascending TIDs), held
//     until the transaction commits or aborts. Readers never take these.
//  3. Statement write gate: one exclusive per-table gate serializes the
//     physical write-out of concurrent statements — it is what makes
//     version headers stable for the rechecks and keeps the per-file
//     WAL-transaction attachment single-writer. It is released at the
//     end of the statement, after the statement's WAL unit is finished.
//  4. Recheck: under the gate each locked version's header is reread.
//     A committed (or in-flight) superseding writer means another
//     transaction got there first: the statement fails with
//     ErrWriteConflict and the whole transaction aborts
//     (first-updater-wins). An aborted xmax is overwritten.
//  5. Write-out: updates stamp xmax on the old version and insert a new
//     one chained to it; deletes only stamp xmax. Old index entries stay
//     until vacuum — scans filter by visibility.
//
// A gate holder never waits on a row lock (locks are taken before the
// gate), so gate waits cannot extend deadlock cycles; row-row and
// table-lock cycles are caught by the lock manager's wait-for graph.

// rowLockKey names the row-level write-lock resource of (table, tid).
// The "r!" prefix keeps it disjoint from table names.
func rowLockKey(table string, tid storage.TID) string {
	return "r!" + table + "!" + strconv.FormatUint(uint64(tid), 16)
}

// writeGateKey names the per-table statement write gate.
func writeGateKey(table string) string { return "w!" + table }

// acquireLock takes a lock for the session, attributing wait time to a
// flagged statement's profiler.
func (s *Session) acquireLock(resource string, mode lock.Mode, h *monitor.Handle) error {
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	err := s.db.locks.Acquire(s.id, resource, mode)
	if s.prof != nil && h != nil {
		h.AddLockWait(time.Since(t0))
	}
	return err
}

// conflictErr counts and builds a first-updater-wins conflict error.
func (db *DB) conflictErr(format string, args ...any) error {
	db.txns.conflicts.Add(1)
	return fmt.Errorf("%w: %s", ErrWriteConflict, fmt.Sprintf(format, args...))
}

// withWriteGate runs fn holding the table's statement write gate with
// the statement's WAL transaction attached to the table's files. The
// statement's WAL unit is finished (not yet durable — transaction
// durability comes from the MVCC commit record) before the gate is
// released, so the next writer's attachment never overlaps this one's
// unfinished page captures.
func (s *Session) withWriteGate(th *tableHandle, h *monitor.Handle, fn func() error) error {
	db := s.db
	gate := writeGateKey(strings.ToLower(th.meta.Name))
	if err := s.acquireLock(gate, lockX, h); err != nil {
		return err
	}
	detach := db.attachWalTxn(th, s.wtx)
	err := fn()
	detach()
	if ferr := s.finishWalTxn(false); ferr != nil && err == nil {
		err = ferr
	}
	db.locks.Release(s.id, gate)
	return err
}

// evalConst evaluates an expression with no row context (INSERT
// values).
func evalConst(e sqlparser.Expr, params []sqltypes.Value) (sqltypes.Value, error) {
	c, err := expr.Bind(e, noColumns{})
	if err != nil {
		return sqltypes.Value{}, err
	}
	return c.Eval(&expr.Env{Params: params})
}

type noColumns struct{}

func (noColumns) Resolve(table, column string) (int, sqltypes.Type, error) {
	return 0, 0, fmt.Errorf("engine: column references are not allowed here")
}

func (s *Session) execInsert(st *sqlparser.InsertStmt, params []sqltypes.Value, h *monitor.Handle) (*Result, error) {
	db := s.db
	th := db.handle(st.Table)
	if th == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	schema := th.meta.Schema
	self := s.ensureTxnID()

	// Column mapping: position i of the VALUES row goes to colMap[i].
	colMap := make([]int, 0, schema.Len())
	if len(st.Columns) == 0 {
		for i := 0; i < schema.Len(); i++ {
			colMap = append(colMap, i)
		}
	} else {
		for _, c := range st.Columns {
			idx := schema.ColIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("engine: unknown column %s.%s", st.Table, c)
			}
			colMap = append(colMap, idx)
		}
	}

	// Evaluate all rows before taking the gate: expression errors should
	// not cost serialization.
	rows := make([]sqltypes.Row, 0, len(st.Rows))
	for _, valueRow := range st.Rows {
		if len(valueRow) != len(colMap) {
			return nil, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(valueRow), len(colMap))
		}
		row := make(sqltypes.Row, schema.Len())
		for i := range row {
			row[i] = sqltypes.NullValue()
		}
		for i, e := range valueRow {
			v, err := evalConst(e, params)
			if err != nil {
				return nil, err
			}
			row[colMap[i]] = v
		}
		coerced, err := coerceRow(schema, row)
		if err != nil {
			return nil, err
		}
		rows = append(rows, coerced)
	}

	var inserted int64
	err := s.withWriteGate(th, h, func() error {
		for _, row := range rows {
			if _, err := db.insertVersion(th, row, storage.VersionHeader{Xmin: self}, self); err != nil {
				return err
			}
			inserted++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.addDelta(th.meta.Name, inserted)
	return &Result{RowsAffected: inserted}, nil
}

// matchVisible scans a table and returns the TIDs and decoded rows of
// the versions visible to the session's snapshot that match the
// predicate (nil matches everything). TIDs come back in ascending
// (physical) order — the row-lock acquisition order.
func (s *Session) matchVisible(th *tableHandle, where sqlparser.Expr, params []sqltypes.Value) ([]storage.TID, []sqltypes.Row, error) {
	var pred expr.Compiled
	if where != nil {
		res := &expr.SimpleResolver{}
		alias := strings.ToLower(th.meta.Name)
		for _, c := range th.meta.Schema.Columns {
			res.Cols = append(res.Cols, expr.ResolvedCol{Table: alias, Name: c.Name, Type: c.Type})
		}
		var err error
		if pred, err = expr.Bind(where, res); err != nil {
			return nil, nil, err
		}
	}
	sn := s.snap
	env := expr.Env{Params: params}
	var tids []storage.TID
	var rows []sqltypes.Row
	it := th.heap.Iter()
	for {
		tid, rec, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return tids, rows, nil
		}
		if len(rec) < storage.VersionHeaderSize {
			return nil, nil, fmt.Errorf("engine: unversioned record %v in %s", tid, th.meta.Name)
		}
		if !sn.visible(storage.ReadVersionHeader(rec)) {
			continue
		}
		row, err := sqltypes.DecodeRow(storage.VersionPayload(rec))
		if err != nil {
			return nil, nil, err
		}
		if pred != nil {
			env.Row = row
			v, err := pred.Eval(&env)
			if err != nil {
				return nil, nil, err
			}
			if !v.Bool() {
				continue
			}
		}
		tids = append(tids, tid)
		rows = append(rows, row)
	}
}

// lockMatched acquires the exclusive row locks for the matched TIDs (in
// the ascending order matchVisible returned them).
func (s *Session) lockMatched(th *tableHandle, tids []storage.TID, h *monitor.Handle) error {
	table := strings.ToLower(th.meta.Name)
	for _, tid := range tids {
		if err := s.acquireLock(rowLockKey(table, tid), lockX, h); err != nil {
			return err
		}
	}
	return nil
}

// recheckWritable rereads the header of a locked version under the
// write gate and decides its fate: write it (true), skip it silently
// (false — this transaction already superseded it), or fail with a
// write conflict (a competing transaction committed a newer version
// between this statement's snapshot and its lock acquisition).
func (db *DB) recheckWritable(th *tableHandle, tid storage.TID, self uint64) (bool, error) {
	rec, ok, err := th.heap.Get(tid)
	if err != nil {
		return false, err
	}
	if !ok || len(rec) < storage.VersionHeaderSize {
		return false, db.conflictErr("version %v of %s was reclaimed under the statement", tid, th.meta.Name)
	}
	hdr := storage.ReadVersionHeader(rec)
	switch {
	case hdr.Xmax == 0:
		return true, nil
	case hdr.Xmax == self:
		return false, nil // an earlier statement of this transaction superseded it
	case db.txns.stateOf(hdr.Xmax) == txnAborted:
		return true, nil // stale stamp of an aborted writer: overwrite
	default:
		// Committed — or, impossibly under the row lock, still in
		// flight — superseding writer: first updater wins.
		return false, db.conflictErr("row %v of %s superseded by transaction %d", tid, th.meta.Name, hdr.Xmax)
	}
}

func (s *Session) execUpdate(st *sqlparser.UpdateStmt, params []sqltypes.Value, h *monitor.Handle) (*Result, error) {
	db := s.db
	th := db.handle(st.Table)
	if th == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	schema := th.meta.Schema
	self := s.ensureTxnID()

	// Bind SET expressions against the table row.
	res := &expr.SimpleResolver{}
	alias := strings.ToLower(th.meta.Name)
	for _, c := range schema.Columns {
		res.Cols = append(res.Cols, expr.ResolvedCol{Table: alias, Name: c.Name, Type: c.Type})
	}
	type setC struct {
		idx int
		c   expr.Compiled
	}
	var sets []setC
	for _, sc := range st.Set {
		idx := schema.ColIndex(sc.Column)
		if idx < 0 {
			return nil, fmt.Errorf("engine: unknown column %s.%s", st.Table, sc.Column)
		}
		ce, err := expr.Bind(sc.Expr, res)
		if err != nil {
			return nil, err
		}
		sets = append(sets, setC{idx: idx, c: ce})
	}

	tids, rows, err := s.matchVisible(th, st.Where, params)
	if err != nil {
		return nil, err
	}
	if err := s.lockMatched(th, tids, h); err != nil {
		return nil, err
	}
	var affected int64
	env := expr.Env{Params: params}
	err = s.withWriteGate(th, h, func() error {
		for i, tid := range tids {
			writable, err := db.recheckWritable(th, tid, self)
			if err != nil {
				return err
			}
			if !writable {
				continue
			}
			old := rows[i]
			updated := old.Clone()
			env.Row = old
			for _, sc := range sets {
				v, err := sc.c.Eval(&env)
				if err != nil {
					return err
				}
				updated[sc.idx] = v
			}
			coerced, err := coerceRow(schema, updated)
			if err != nil {
				return err
			}
			if err := th.heap.SetXmax(tid, self); err != nil {
				return err
			}
			if _, err := db.insertVersion(th, coerced, storage.VersionHeader{Xmin: self, Prev: tid}, self); err != nil {
				return err
			}
			affected++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.addDelta(th.meta.Name, 0) // net row count unchanged; keep the table in the delta map
	return &Result{RowsAffected: affected}, nil
}

func (s *Session) execDelete(st *sqlparser.DeleteStmt, params []sqltypes.Value, h *monitor.Handle) (*Result, error) {
	db := s.db
	th := db.handle(st.Table)
	if th == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	self := s.ensureTxnID()
	tids, _, err := s.matchVisible(th, st.Where, params)
	if err != nil {
		return nil, err
	}
	if err := s.lockMatched(th, tids, h); err != nil {
		return nil, err
	}
	var affected int64
	err = s.withWriteGate(th, h, func() error {
		for _, tid := range tids {
			writable, err := db.recheckWritable(th, tid, self)
			if err != nil {
				return err
			}
			if !writable {
				continue
			}
			// Deletes only stamp the deleter: the version (and its index
			// entries) stays for older snapshots until vacuum.
			if err := th.heap.SetXmax(tid, self); err != nil {
				return err
			}
			affected++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.addDelta(th.meta.Name, -affected)
	return &Result{RowsAffected: affected}, nil
}
