package engine

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// evalConst evaluates an expression with no row context (INSERT
// values).
func evalConst(e sqlparser.Expr, params []sqltypes.Value) (sqltypes.Value, error) {
	c, err := expr.Bind(e, noColumns{})
	if err != nil {
		return sqltypes.Value{}, err
	}
	return c.Eval(&expr.Env{Params: params})
}

type noColumns struct{}

func (noColumns) Resolve(table, column string) (int, sqltypes.Type, error) {
	return 0, 0, fmt.Errorf("engine: column references are not allowed here")
}

func (db *DB) execInsert(st *sqlparser.InsertStmt, params []sqltypes.Value, wtx *storage.WalTxn, h *monitor.Handle) (*Result, error) {
	th := db.handle(st.Table)
	if th == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	defer db.attachWalTxn(th, wtx)()
	schema := th.meta.Schema

	// Column mapping: position i of the VALUES row goes to colMap[i].
	colMap := make([]int, 0, schema.Len())
	if len(st.Columns) == 0 {
		for i := 0; i < schema.Len(); i++ {
			colMap = append(colMap, i)
		}
	} else {
		for _, c := range st.Columns {
			idx := schema.ColIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("engine: unknown column %s.%s", st.Table, c)
			}
			colMap = append(colMap, idx)
		}
	}

	var inserted int64
	for _, valueRow := range st.Rows {
		if len(valueRow) != len(colMap) {
			return nil, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(valueRow), len(colMap))
		}
		row := make(sqltypes.Row, schema.Len())
		for i := range row {
			row[i] = sqltypes.NullValue()
		}
		for i, e := range valueRow {
			v, err := evalConst(e, params)
			if err != nil {
				return nil, err
			}
			row[colMap[i]] = v
		}
		coerced, err := coerceRow(schema, row)
		if err != nil {
			return nil, err
		}
		if _, err := db.insertRow(th, coerced); err != nil {
			return nil, err
		}
		inserted++
	}
	db.syncMeta(th)
	return &Result{RowsAffected: inserted}, nil
}

// matchRows scans a table and returns TIDs and rows matching the
// predicate (nil matches everything).
func (db *DB) matchRows(th *tableHandle, where sqlparser.Expr, params []sqltypes.Value) ([]storage.TID, []sqltypes.Row, error) {
	var pred expr.Compiled
	if where != nil {
		res := &expr.SimpleResolver{}
		alias := strings.ToLower(th.meta.Name)
		for _, c := range th.meta.Schema.Columns {
			res.Cols = append(res.Cols, expr.ResolvedCol{Table: alias, Name: c.Name, Type: c.Type})
		}
		var err error
		if pred, err = expr.Bind(where, res); err != nil {
			return nil, nil, err
		}
	}
	env := expr.Env{Params: params}
	var tids []storage.TID
	var rows []sqltypes.Row
	it := th.heap.Iter()
	for {
		tid, rec, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return tids, rows, nil
		}
		row, err := sqltypes.DecodeRow(rec)
		if err != nil {
			return nil, nil, err
		}
		if pred != nil {
			env.Row = row
			v, err := pred.Eval(&env)
			if err != nil {
				return nil, nil, err
			}
			if !v.Bool() {
				continue
			}
		}
		tids = append(tids, tid)
		rows = append(rows, row)
	}
}

func (db *DB) execUpdate(st *sqlparser.UpdateStmt, params []sqltypes.Value, wtx *storage.WalTxn, h *monitor.Handle) (*Result, error) {
	th := db.handle(st.Table)
	if th == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	defer db.attachWalTxn(th, wtx)()
	schema := th.meta.Schema

	// Bind SET expressions against the table row.
	res := &expr.SimpleResolver{}
	alias := strings.ToLower(th.meta.Name)
	for _, c := range schema.Columns {
		res.Cols = append(res.Cols, expr.ResolvedCol{Table: alias, Name: c.Name, Type: c.Type})
	}
	type setC struct {
		idx int
		c   expr.Compiled
	}
	var sets []setC
	for _, sc := range st.Set {
		idx := schema.ColIndex(sc.Column)
		if idx < 0 {
			return nil, fmt.Errorf("engine: unknown column %s.%s", st.Table, sc.Column)
		}
		ce, err := expr.Bind(sc.Expr, res)
		if err != nil {
			return nil, err
		}
		sets = append(sets, setC{idx: idx, c: ce})
	}

	tids, rows, err := db.matchRows(th, st.Where, params)
	if err != nil {
		return nil, err
	}
	env := expr.Env{Params: params}
	for i, tid := range tids {
		old := rows[i]
		updated := old.Clone()
		env.Row = old
		for _, sc := range sets {
			v, err := sc.c.Eval(&env)
			if err != nil {
				return nil, err
			}
			updated[sc.idx] = v
		}
		coerced, err := coerceRow(schema, updated)
		if err != nil {
			return nil, err
		}
		// Update = delete + insert so index entries always track TIDs.
		if err := db.deleteRow(th, tid, old); err != nil {
			return nil, err
		}
		if _, err := db.insertRow(th, coerced); err != nil {
			return nil, err
		}
	}
	db.syncMeta(th)
	return &Result{RowsAffected: int64(len(tids))}, nil
}

func (db *DB) execDelete(st *sqlparser.DeleteStmt, params []sqltypes.Value, wtx *storage.WalTxn, h *monitor.Handle) (*Result, error) {
	th := db.handle(st.Table)
	if th == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	defer db.attachWalTxn(th, wtx)()
	tids, rows, err := db.matchRows(th, st.Where, params)
	if err != nil {
		return nil, err
	}
	for i, tid := range tids {
		if err := db.deleteRow(th, tid, rows[i]); err != nil {
			return nil, err
		}
	}
	db.syncMeta(th)
	return &Result{RowsAffected: int64(len(tids))}, nil
}
